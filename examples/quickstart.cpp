// Quickstart: verify a safety property of a small design with RFN.
//
// Builds a lock-step elevator-door controller with a watchdog for "the door
// is never open while the cabin is moving", runs the RFN
// abstraction-refinement loop, and prints the verdict, the abstract-model
// size, and (for violated properties) the error trace.
//
// Usage: quickstart [--buggy] [--verbose]

#include <cstdio>

#include "core/rfn.hpp"
#include "netlist/builder.hpp"
#include "netlist/writer.hpp"
#include "util/options.hpp"

using namespace rfn;

namespace {

// A door/motion controller:
//   * the cabin FSM: PARKED -> ACCEL -> CRUISE -> PARKED (on arrive)
//   * the door FSM: CLOSED -> OPENING -> OPEN -> CLOSING -> CLOSED
//   * interlock: the door may only start opening when the cabin is PARKED;
//     the cabin may only leave PARKED when the door is CLOSED.
// With --buggy the interlock on the cabin side is dropped, making the
// property falsifiable.
Netlist make_elevator(bool buggy, GateId* bad_out) {
  NetBuilder b;
  const GateId call = b.input("call");        // request to move
  const GateId arrive = b.input("arrive");    // floor sensor
  const GateId open_req = b.input("open_req");

  const Word cabin = b.reg_word("cabin", 2, 0);  // 0 parked, 1 accel, 2 cruise
  const Word door = b.reg_word("door", 2, 0);    // 0 closed, 1 opening, 2 open, 3 closing

  const GateId parked = b.eq_const(cabin, 0);
  const GateId closed = b.eq_const(door, 0);

  // Cabin transitions. The door only starts opening when there is no move
  // request in flight, so a same-cycle race between the two FSMs is
  // impossible — unless --buggy drops the cabin-side interlock.
  const GateId may_move = buggy ? call : b.and_(call, closed);
  Word cabin_next = b.mux_word(may_move, cabin, b.constant_word(1, 2));
  cabin_next = b.mux_word(b.eq_const(cabin, 1), cabin_next, b.constant_word(2, 2));
  cabin_next = b.mux_word(b.and_(b.eq_const(cabin, 2), arrive), cabin_next,
                          b.constant_word(0, 2));
  b.set_next_word(cabin, b.mux_word(parked, cabin_next,
                                    b.mux_word(may_move, cabin, b.constant_word(1, 2))));

  // Door transitions (only opens while parked and no move request pending).
  Word door_next = door;
  door_next = b.mux_word(b.and_n({closed, open_req, parked, b.not_(call)}), door_next,
                         b.constant_word(1, 2));
  door_next = b.mux_word(b.eq_const(door, 1), door_next, b.constant_word(2, 2));
  door_next = b.mux_word(b.and_(b.eq_const(door, 2), b.not_(open_req)), door_next,
                         b.constant_word(3, 2));
  door_next = b.mux_word(b.eq_const(door, 3), door_next, b.constant_word(0, 2));
  b.set_next_word(door, door_next);

  // Watchdog: door not closed while the cabin is not parked.
  const GateId violation = b.and_(b.not_(closed), b.not_(parked));
  const GateId bad = b.reg("bad", Tri::F);
  b.set_next(bad, b.or_(bad, violation));
  b.output("bad", bad);

  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.get_bool("verbose", false)) set_log_level(LogLevel::Info);
  const bool buggy = opts.get_bool("buggy", false);

  GateId bad = kNullGate;
  const Netlist design = make_elevator(buggy, &bad);
  std::printf("design: %s\n", stats_line(design).c_str());

  RfnOptions rfn_opts;
  rfn_opts.time_limit_s = opts.get_double("time-limit", 60.0);
  RfnVerifier verifier(design, bad, rfn_opts);
  const RfnResult result = verifier.run();

  std::printf("property 'door closed while moving': %s\n",
              result.verdict == Verdict::Holds   ? "HOLDS"
              : result.verdict == Verdict::Fails ? "VIOLATED"
                                                 : "UNKNOWN");
  std::printf("iterations: %zu, final abstract model: %zu of %zu registers\n",
              result.iterations, result.final_abstract_regs, design.num_regs());
  if (result.verdict == Verdict::Fails) {
    std::printf("error trace (%zu cycles):\n%s", result.error_trace.cycles(),
                trace_to_string(design, result.error_trace).c_str());
  }
  return result.verdict == Verdict::Unknown ? 1 : 0;
}
