// Two-phase traffic-light interlock: the crossing directions must never
// both show green. The watchdog register 'bad' latches any violation.
//
// The same design ships built into examples/verilog_frontend; this file is
// the standalone copy for driving the CLI directly, e.g.
//
//   rfn verify examples/traffic.v --bad bad --trace-json trace.jsonl
//
// which is also what the metrics golden-schema test and CI exercise.
module traffic(clk, go_ns, go_ew);
  input clk;
  input go_ns;
  input go_ew;

  reg [1:0] ns = 0;   // 0 red, 1 yellow, 2 green
  reg [1:0] ew = 0;
  reg bad = 0;

  wire ns_green;
  wire ew_green;
  assign ns_green = ns == 2;
  assign ew_green = ew == 2;

  always @(posedge clk) begin
    if (ns == 0) begin
      if (go_ns & !ew_green & (ew == 0)) ns <= 2;
    end else if (ns == 2) ns <= 1;
    else ns <= 0;

    if (ew == 0) begin
      if (go_ew & !ns_green & (ns == 0) & !go_ns) ew <= 2;
    end else if (ew == 2) ew <= 1;
    else ew <= 0;

    bad <= bad | (ns_green & ew_green);
  end
endmodule
