// Verifying the FIFO controller's flag properties — the paper's psh_hf /
// psh_af / psh_full workload (Table 1, rows 3-5).
//
// Demonstrates the full pipeline on a design that enters as Verilog source:
// the RTL frontend elaborates the generated FIFO controller, RFN verifies
// each watchdog, and the summary shows how small the final abstract models
// stay relative to the property COI.
//
// Usage: fifo_verification [--addr-bits N] [--data-bits N] [--dump-verilog]

#include <algorithm>
#include <cstdio>

#include "core/plain_mc.hpp"
#include "core/rfn.hpp"
#include "designs/fifo.hpp"
#include "netlist/analysis.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

using namespace rfn;
using namespace rfn::designs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  FifoParams params;
  params.addr_bits = static_cast<size_t>(opts.get_int("addr-bits", 4));
  params.data_bits = static_cast<size_t>(opts.get_int("data-bits", 6));

  const FifoDesign fifo = make_fifo(params);
  if (opts.get_bool("dump-verilog", false)) std::fputs(fifo.verilog.c_str(), stdout);

  std::printf("FIFO controller: %zu registers, %zu gates (from %zu lines of Verilog)\n\n",
              fifo.netlist.num_regs(), fifo.netlist.num_gates(),
              1 + static_cast<size_t>(std::count(fifo.verilog.begin(),
                                                 fifo.verilog.end(), '\n')));

  Table table({"property", "COI regs", "result", "abstract regs", "iters", "time (s)"});
  const std::pair<const char*, GateId> properties[] = {
      {"psh_full", fifo.bad_push_full},
      {"psh_af", fifo.bad_push_af},
      {"psh_hf", fifo.bad_push_hf},
  };
  for (const auto& [name, bad] : properties) {
    const size_t coi = coi_registers(fifo.netlist, {bad}).size();
    RfnOptions rfn_opts;
    rfn_opts.time_limit_s = opts.get_double("time-limit", 300.0);
    RfnVerifier verifier(fifo.netlist, bad, rfn_opts);
    const RfnResult r = verifier.run();
    table.add_row({name, fmt_int(static_cast<int64_t>(coi)), to_string(r.verdict),
                   fmt_int(static_cast<int64_t>(r.final_abstract_regs)),
                   fmt_int(static_cast<int64_t>(r.iterations)), fmt_double(r.seconds, 2)});
  }
  table.print();

  std::printf("\nFor comparison, plain symbolic model checking with COI reduction:\n");
  ReachOptions mc_opts;
  mc_opts.time_limit_s = opts.get_double("mc-time-limit", 10.0);
  const PlainMcResult mc = plain_model_check(fifo.netlist, fifo.bad_push_full, mc_opts);
  std::printf("psh_full via plain MC: %s after %.2f s (%zu COI registers)\n",
              to_string(mc.verdict), mc.seconds, mc.coi_regs);
  return 0;
}
