// Unreachable-coverage-state analysis on the USB controller — the paper's
// second experiment type (Table 2).
//
// Coverage signals are control-FSM registers; the analysis classifies each
// combination of their values as unreachable (proved on an abstract model),
// reachable (witnessed by a concrete trace), or unknown. The BFS topological
// baseline of Ho et al. [8] runs alongside for comparison.
//
// Usage: coverage_analysis [--set usb1|usb2] [--time-limit S] [--bfs-regs K]

#include <cstdio>

#include "core/bfs_baseline.hpp"
#include "core/status.hpp"
#include "core/coverage.hpp"
#include "designs/usb.hpp"
#include "netlist/analysis.hpp"
#include "util/options.hpp"

using namespace rfn;
using namespace rfn::designs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const UsbDesign usb = make_usb({});
  const std::string set_name = opts.get("set", "usb1");
  const std::vector<GateId>& cov = set_name == "usb2" ? usb.usb2 : usb.usb1;

  std::printf("USB controller: %zu registers, %zu gates\n", usb.netlist.num_regs(),
              usb.netlist.num_gates());
  std::printf("coverage set %s: %zu signals -> %llu coverage states\n",
              set_name.c_str(), cov.size(),
              static_cast<unsigned long long>(1ull << cov.size()));
  std::printf("COI of the coverage signals: %zu registers\n\n",
              coi_registers(usb.netlist, cov).size());

  CoverageOptions cov_opts;
  cov_opts.time_limit_s = opts.get_double("time-limit", 120.0);
  const CoverageResult rfn_res = rfn_coverage_analysis(usb.netlist, cov, cov_opts);
  std::printf("RFN:  %zu unreachable, %zu witnessed reachable, %zu unknown "
              "(abstract model grew to %zu registers, %zu iterations, %.1f s)\n",
              rfn_res.unreachable, rfn_res.reachable, rfn_res.unknown,
              rfn_res.final_abstract_regs, rfn_res.iterations, rfn_res.seconds);

  BfsBaselineOptions bfs_opts;
  bfs_opts.num_registers = static_cast<size_t>(opts.get_int("bfs-regs", 60));
  bfs_opts.reach.time_limit_s = cov_opts.time_limit_s;
  const BfsBaselineResult bfs = bfs_coverage_analysis(usb.netlist, cov, bfs_opts);
  std::printf("BFS:  %zu unreachable (abstract model %zu registers, fixpoint %s, %.1f s)\n",
              bfs.unreachable, bfs.abstract_regs, to_string(bfs.reach_status),
              bfs.seconds);

  if (rfn_res.unreachable >= bfs.unreachable)
    std::printf("\nRFN matched or beat the BFS baseline, as in the paper's Table 2.\n");
  return 0;
}
