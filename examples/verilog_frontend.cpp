// Driving the toolchain from Verilog source: parse -> elaborate -> verify.
//
// Reads a Verilog-subset module from a file (or uses a built-in traffic-
// light interlock demo), elaborates it to gates, and verifies the property
// named on the command line ("bad signal high is a violation").
//
// Usage: verilog_frontend [file.v] [--bad SIGNAL] [--dump-dot] [--emit-blif]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/rfn.hpp"
#include "netlist/writer.hpp"
#include "netlist/blif.hpp"
#include "rtlv/elaborate.hpp"
#include "util/options.hpp"

using namespace rfn;

namespace {

const char* kDemo = R"(
// Two-phase traffic-light interlock: the crossing directions must never
// both show green. The watchdog register 'bad' latches any violation.
module traffic(clk, go_ns, go_ew);
  input clk;
  input go_ns;
  input go_ew;

  reg [1:0] ns = 0;   // 0 red, 1 yellow, 2 green
  reg [1:0] ew = 0;
  reg bad = 0;

  wire ns_green;
  wire ew_green;
  assign ns_green = ns == 2;
  assign ew_green = ew == 2;

  always @(posedge clk) begin
    if (ns == 0) begin
      if (go_ns & !ew_green & (ew == 0)) ns <= 2;
    end else if (ns == 2) ns <= 1;
    else ns <= 0;

    if (ew == 0) begin
      if (go_ew & !ns_green & (ns == 0) & !go_ns) ew <= 2;
    end else if (ew == 2) ew <= 1;
    else ew <= 0;

    bad <= bad | (ns_green & ew_green);
  end
endmodule
)";

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  std::string source = kDemo;
  std::string origin = "<built-in traffic-light demo>";
  if (!opts.positionals().empty()) {
    origin = opts.positionals()[0];
    std::ifstream in(origin);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", origin.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  const auto design = rtlv::elaborate_verilog(source);
  std::printf("elaborated module '%s' from %s: %s\n", design.module_name.c_str(),
              origin.c_str(), stats_line(design.netlist).c_str());
  if (opts.get_bool("dump-dot", false))
    std::fputs(to_dot(design.netlist).c_str(), stdout);
  if (opts.get_bool("emit-blif", false))
    std::fputs(write_blif(design.netlist, design.module_name).c_str(), stdout);

  const std::string bad_name = opts.get("bad", "bad");
  const GateId bad = design.netlist.find(bad_name);
  if (bad == kNullGate) {
    std::fprintf(stderr, "no signal named '%s' in the design\n", bad_name.c_str());
    return 1;
  }

  RfnOptions rfn_opts;
  rfn_opts.time_limit_s = opts.get_double("time-limit", 120.0);
  RfnVerifier verifier(design.netlist, bad, rfn_opts);
  const RfnResult result = verifier.run();
  std::printf("property '!%s': %s (%zu iterations, abstract model %zu regs, %.2f s)\n",
              bad_name.c_str(),
              result.verdict == Verdict::Holds   ? "HOLDS"
              : result.verdict == Verdict::Fails ? "VIOLATED"
                                                 : "UNKNOWN",
              result.iterations, result.final_abstract_regs, result.seconds);
  if (result.verdict == Verdict::Fails)
    std::fputs(trace_to_string(design.netlist, result.error_trace).c_str(), stdout);
  return 0;
}
