// Hunting a deep bug with abstraction-guided sequential ATPG — the paper's
// error_flag scenario (Table 1, row 2; Section 2.3).
//
// The processor module hides a protocol bug ~30 cycles deep. Unguided
// sequential ATPG drowns in the search space; RFN's abstract error trace
// supplies cycle-by-cycle guidance that makes the concretization cheap.
// This example runs both and prints the comparison.
//
// Usage: bug_hunt [--units N] [--counter-bits N] [--unguided-backtracks N]

#include <cstdio>

#include "atpg/seq_atpg.hpp"
#include "core/rfn.hpp"
#include "core/status.hpp"
#include "designs/processor.hpp"
#include "netlist/writer.hpp"
#include "util/options.hpp"
#include "util/stopwatch.hpp"

using namespace rfn;
using namespace rfn::designs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  ProcessorParams params;
  params.units = static_cast<size_t>(opts.get_int("units", 6));
  params.pipe_depth = static_cast<size_t>(opts.get_int("pipe-depth", 8));
  params.pipe_width = static_cast<size_t>(opts.get_int("pipe-width", 8));
  params.result_regs = static_cast<size_t>(opts.get_int("result-regs", 64));
  params.counter_bits = static_cast<size_t>(opts.get_int("counter-bits", 5));

  const ProcessorDesign proc = make_processor(params);
  std::printf("processor module: %zu registers, %zu gates\n", proc.netlist.num_regs(),
              proc.netlist.num_gates());

  // 1. RFN: abstraction refinement + guided concretization.
  Stopwatch rfn_watch;
  RfnOptions rfn_opts;
  rfn_opts.time_limit_s = opts.get_double("time-limit", 600.0);
  RfnVerifier verifier(proc.netlist, proc.error_flag, rfn_opts);
  const RfnResult r = verifier.run();
  std::printf("\nRFN verdict: %s in %.2f s (%zu iterations, abstract model %zu regs)\n",
              to_string(r.verdict), rfn_watch.seconds(), r.iterations,
              r.final_abstract_regs);
  if (r.verdict == Verdict::Fails) {
    std::printf("error trace: %zu cycles\n", r.error_trace.cycles());
    if (opts.get_bool("dump-trace", false))
      std::fputs(trace_to_string(proc.netlist, r.error_trace).c_str(), stdout);
  }

  // 2. Unguided sequential ATPG at the same depth, with a bounded budget —
  // the paper's motivation for guidance (Section 2.3).
  const size_t depth = r.error_trace.cycles() ? r.error_trace.cycles() : 30;
  AtpgOptions unguided;
  unguided.max_backtracks =
      static_cast<uint64_t>(opts.get_int("unguided-backtracks", 200000));
  unguided.time_limit_s = opts.get_double("unguided-time-limit", 30.0);
  Stopwatch atpg_watch;
  const SeqAtpgResult direct =
      reach_target(proc.netlist, depth, proc.error_flag, true, {}, unguided);
  std::printf(
      "\nunguided sequential ATPG at depth %zu: %s after %llu backtracks, %.2f s\n",
      depth, to_string(direct.status),
      static_cast<unsigned long long>(direct.backtracks), atpg_watch.seconds());
  std::printf("(the paper: \"sequential ATPG with guidance can search for an order of "
              "magnitude more cycles\")\n");
  return 0;
}
