// Tests for the four evaluation designs: structural sanity, simulated
// behaviour, and property ground truth at small scale.

#include <gtest/gtest.h>

#include "designs/fifo.hpp"
#include "designs/iu.hpp"
#include "designs/processor.hpp"
#include "designs/usb.hpp"
#include "netlist/analysis.hpp"
#include "sim/sim3.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

using namespace rfn::designs;

// --- FIFO ---

TEST(FifoDesign, StructureAndCoi) {
  const FifoDesign d = make_fifo({});
  d.netlist.check();
  // Control + 16 entries of (6 data + 1 lock) = in the ~130 register range.
  EXPECT_GE(d.netlist.num_regs(), 120u);
  EXPECT_LE(d.netlist.num_regs(), 145u);
  // The lockable-pop path puts the memory into the properties' COI.
  const auto coi_regs_full = coi_registers(d.netlist, {d.bad_push_full});
  EXPECT_GT(coi_regs_full.size(), 100u);
}

TEST(FifoDesign, WatchdogsStayLowUnderRandomTraffic) {
  const FifoDesign d = make_fifo({});
  Sim64 sim(d.netlist);
  Rng rng(42), rinit(1);
  sim.load_initial_state(rinit);
  const Netlist& n = d.netlist;
  for (int cycle = 0; cycle < 300; ++cycle) {
    sim.randomize_inputs(rng);
    sim.eval();
    EXPECT_EQ(sim.value(d.bad_push_full), 0u) << "cycle " << cycle;
    EXPECT_EQ(sim.value(d.bad_push_af), 0u);
    EXPECT_EQ(sim.value(d.bad_push_hf), 0u);
    sim.step();
  }
  (void)n;
}

TEST(FifoDesign, CountTracksPushPop) {
  const FifoDesign d = make_fifo({});
  const Netlist& n = d.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  const GateId push = n.find("push"), pop = n.find("pop"), wlock = n.find("wlock");
  auto count = [&]() {
    uint64_t v = 0;
    for (int i = 0; i < 5; ++i)
      if (sim.value(n.find("count[" + std::to_string(i) + "]")) == Tri::T)
        v |= 1u << i;
    return v;
  };
  // Drive deterministic inputs (data zero, unlocked).
  for (GateId in : n.inputs()) sim.set(in, Tri::F);
  sim.set(push, Tri::T);
  sim.set(wlock, Tri::F);
  for (int i = 0; i < 20; ++i) {
    sim.eval();
    sim.step();
  }
  EXPECT_EQ(count(), 16u);  // saturates at capacity
  sim.set(push, Tri::F);
  sim.set(pop, Tri::T);
  for (int i = 0; i < 20; ++i) {
    sim.eval();
    sim.step();
  }
  EXPECT_EQ(count(), 0u);
}

TEST(FifoDesign, LockedEntryBlocksPop) {
  const FifoDesign d = make_fifo({});
  const Netlist& n = d.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  for (GateId in : n.inputs()) sim.set(in, Tri::F);
  // Push one locked entry whose data equals the lock key (0x2A & 0x3F = 42
  // needs 6 bits: 101010).
  sim.set(n.find("push"), Tri::T);
  sim.set(n.find("wlock"), Tri::T);
  const uint64_t key = 0x2A;
  for (int i = 0; i < 6; ++i)
    sim.set(n.find("wdata[" + std::to_string(i) + "]"), tri_of((key >> i) & 1));
  sim.eval();
  sim.step();
  // Now pop forever: the locked head must pin count at 1.
  sim.set(n.find("push"), Tri::F);
  sim.set(n.find("pop"), Tri::T);
  for (int i = 0; i < 10; ++i) {
    sim.eval();
    sim.step();
  }
  EXPECT_EQ(sim.value(n.find("count[0]")), Tri::T);
}

// --- Processor ---

ProcessorParams small_proc() {
  ProcessorParams p;
  p.units = 4;
  p.pipe_depth = 4;
  p.pipe_width = 4;
  p.result_regs = 8;
  p.counter_bits = 4;
  return p;
}

TEST(ProcessorDesign, StructureScalesWithParams) {
  const ProcessorDesign small = make_processor(small_proc());
  small.netlist.check();
  const ProcessorDesign big = make_processor({});
  EXPECT_GT(big.netlist.num_regs(), small.netlist.num_regs() * 3);
  // Paper-scale configuration reaches ~5,000 registers.
  ProcessorParams paper = paper_scale_processor();
  // Instantiating the full 5k-reg design here would slow the test suite;
  // extrapolate: units * (pipe + results) dominates.
  const size_t expected = paper.units * (paper.pipe_depth * paper.pipe_width +
                                         paper.result_regs);
  EXPECT_GE(expected, 4500u);
}

TEST(ProcessorDesign, MutexHoldsUnderRandomTraffic) {
  const ProcessorDesign d = make_processor(small_proc());
  Sim64 sim(d.netlist);
  Rng rng(7), rinit(2);
  sim.load_initial_state(rinit);
  for (int cycle = 0; cycle < 400; ++cycle) {
    sim.randomize_inputs(rng);
    sim.eval();
    EXPECT_EQ(sim.value(d.bad_mutex), 0u) << "cycle " << cycle;
    sim.step();
  }
}

TEST(ProcessorDesign, GrantsAreOneHotUnderRandomTraffic) {
  const auto p = small_proc();
  const ProcessorDesign d = make_processor(p);
  const Netlist& n = d.netlist;
  Sim64 sim(n);
  Rng rng(9), rinit(3);
  sim.load_initial_state(rinit);
  for (int cycle = 0; cycle < 300; ++cycle) {
    sim.randomize_inputs(rng);
    sim.eval();
    for (int k = 0; k < 64; ++k) {
      int grants = 0;
      for (size_t u = 0; u < p.units; ++u)
        grants += sim.value_bit(n.find("grant" + std::to_string(u)), k);
      EXPECT_LE(grants, 1) << "cycle " << cycle;
    }
    sim.step();
  }
}

TEST(ProcessorDesign, ErrorFlagIsReachableByDirectedStimulus) {
  const auto p = small_proc();  // counter_bits=4 -> magic = 8
  const ProcessorDesign d = make_processor(p);
  const Netlist& n = d.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  for (GateId in : n.inputs()) sim.set(in, Tri::F);

  auto cycle = [&]() {
    sim.eval();
    sim.step();
  };
  // Start unit 0, run until the session counter arms, cancel, collect the
  // grant and flush.
  sim.set(n.find("start0"), Tri::T);
  cycle();  // idle -> run
  sim.set(n.find("start0"), Tri::F);
  for (int i = 0; i < 9; ++i) cycle();  // session counts to the magic value
  EXPECT_EQ(sim.value(n.find("armed")), Tri::T);
  sim.set(n.find("cancel0"), Tri::T);
  cycle();  // run -> wait
  sim.set(n.find("cancel0"), Tri::F);
  cycle();  // arbiter grants unit 0
  EXPECT_EQ(sim.value(n.find("grant0")), Tri::T);
  sim.set(n.find("flush"), Tri::T);
  cycle();  // error flag latches
  EXPECT_EQ(sim.value(d.error_flag), Tri::T);
}

// --- IU ---

TEST(IuDesign, StallControllerStaysOneHot) {
  const IuDesign d = make_iu({});
  d.netlist.check();
  ASSERT_EQ(d.coverage_sets.size(), 5u);
  for (const auto& set : d.coverage_sets) EXPECT_EQ(set.size(), 10u);

  const Netlist& n = d.netlist;
  Sim64 sim(n);
  Rng rng(5), rinit(8);
  sim.load_initial_state(rinit);
  for (int cycle = 0; cycle < 300; ++cycle) {
    sim.randomize_inputs(rng);
    sim.eval();
    for (int k = 0; k < 64; ++k) {
      int hot = 0;
      for (int s = 0; s < 5; ++s)
        hot += sim.value_bit(n.find("stall" + std::to_string(s)), k);
      EXPECT_EQ(hot, 1) << "cycle " << cycle;
    }
    sim.step();
  }
}

TEST(IuDesign, DecodeFsmAvoidsIllegalStates) {
  const IuDesign d = make_iu({});
  const Netlist& n = d.netlist;
  Sim64 sim(n);
  Rng rng(6), rinit(9);
  sim.load_initial_state(rinit);
  for (int cycle = 0; cycle < 300; ++cycle) {
    sim.randomize_inputs(rng);
    sim.eval();
    for (int k = 0; k < 64; ++k) {
      int v = 0;
      for (int i = 0; i < 3; ++i)
        v |= sim.value_bit(n.find("dec[" + std::to_string(i) + "]"), k) << i;
      EXPECT_LE(v, 5) << "cycle " << cycle;
    }
    sim.step();
  }
}

TEST(IuDesign, CoverageSetsShareCoi) {
  const IuDesign d = make_iu({});
  std::vector<size_t> coi_sizes;
  for (const auto& set : d.coverage_sets)
    coi_sizes.push_back(coi_registers(d.netlist, set).size());
  // The control is strongly connected: all five COIs have the same size
  // (the paper remarks the same about its IU coverage sets).
  for (size_t i = 1; i < coi_sizes.size(); ++i) EXPECT_EQ(coi_sizes[i], coi_sizes[0]);
  EXPECT_GT(coi_sizes[0], 100u);  // clutter included
}

// --- USB ---

TEST(UsbDesign, ProtocolInvariantsUnderRandomTraffic) {
  const UsbDesign d = make_usb({});
  d.netlist.check();
  EXPECT_EQ(d.usb1.size(), 6u);
  EXPECT_EQ(d.usb2.size(), 21u);

  const Netlist& n = d.netlist;
  Sim64 sim(n);
  Rng rng(12), rinit(13);
  sim.load_initial_state(rinit);
  for (int cycle = 0; cycle < 400; ++cycle) {
    sim.randomize_inputs(rng);
    sim.eval();
    for (int k = 0; k < 64; ++k) {
      // Line register never holds SE1 (3).
      const int line = sim.value_bit(n.find("line[0]"), k) |
                       (sim.value_bit(n.find("line[1]"), k) << 1);
      EXPECT_NE(line, 3) << "cycle " << cycle;
      // Bit-stuff counter never reaches 7.
      int stuff = 0;
      for (int i = 0; i < 3; ++i)
        stuff |= sim.value_bit(n.find("stuff[" + std::to_string(i) + "]"), k) << i;
      EXPECT_NE(stuff, 7);
      // Packet FSM stays within its 6 defined states.
      int pkt = 0;
      for (int i = 0; i < 3; ++i)
        pkt |= sim.value_bit(n.find("pkt[" + std::to_string(i) + "]"), k) << i;
      EXPECT_LE(pkt, 5);
      // Frame counter never reaches its wrap bound's excluded range.
      int frame = 0;
      for (int i = 0; i < 11; ++i)
        frame |= sim.value_bit(n.find("frame[" + std::to_string(i) + "]"), k) << i;
      EXPECT_LT(frame, 1280);
    }
    sim.step();
  }
}

}  // namespace
}  // namespace rfn
