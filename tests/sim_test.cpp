// Unit + property tests for the 3-valued and 64-way simulators.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sim/sim3.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

TEST(Sim3, CombinationalEvaluation) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.and_(a, b.not_(c));
  Netlist n = b.take();
  Sim3 sim(n);
  sim.set(a, Tri::T);
  sim.set(c, Tri::F);
  sim.eval();
  EXPECT_EQ(sim.value(g), Tri::T);
  sim.set(c, Tri::X);
  sim.eval();
  EXPECT_EQ(sim.value(g), Tri::X);
  sim.set(a, Tri::F);
  sim.eval();
  EXPECT_EQ(sim.value(g), Tri::F);
}

TEST(Sim3, SequentialStepAndInit) {
  // Toggle register starting at 1.
  NetBuilder b;
  const GateId r = b.reg("t", Tri::T);
  b.set_next(r, b.not_(r));
  Netlist n = b.take();
  Sim3 sim(n);
  sim.load_initial_state();
  EXPECT_EQ(sim.value(r), Tri::T);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.value(r), Tri::F);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.value(r), Tri::T);
}

TEST(Sim3, RegisterChainLatchesPreEdgeValues) {
  // r2 <- r1 <- in : after one step r2 must hold r1's OLD value.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r1 = b.reg("r1", Tri::T);
  const GateId r2 = b.reg("r2", Tri::F);
  b.set_next(r1, in);
  b.set_next(r2, r1);
  Netlist n = b.take();
  Sim3 sim(n);
  sim.load_initial_state();
  sim.set(in, Tri::F);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.value(r1), Tri::F);
  EXPECT_EQ(sim.value(r2), Tri::T);  // old r1, not new
}

TEST(Sim3, XInitRegistersStartUnknown) {
  NetBuilder b;
  const GateId r = b.reg("r", Tri::X);
  b.set_next(r, r);
  Netlist n = b.take();
  Sim3 sim(n);
  sim.load_initial_state();
  EXPECT_EQ(sim.value(r), Tri::X);
  EXPECT_TRUE(sim.state_cube().empty());
}

TEST(Sim3, StateCubeSkipsX) {
  NetBuilder b;
  const GateId r1 = b.reg("r1", Tri::T);
  const GateId r2 = b.reg("r2", Tri::X);
  b.set_next(r1, r1);
  b.set_next(r2, r2);
  Netlist n = b.take();
  Sim3 sim(n);
  sim.load_initial_state();
  const Cube c = sim.state_cube();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].signal, r1);
  EXPECT_TRUE(c[0].value);
}

// Property: 3-valued simulation is a conservative abstraction of binary
// simulation — whenever Sim3 reports a binary value under X inputs, every
// concrete completion (sampled via Sim64) agrees.
TEST(SimProperty, Sim3ConservativeWrtSim64) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    // Random small combinational netlist.
    NetBuilder b;
    std::vector<GateId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(b.input("i" + std::to_string(i)));
    for (int i = 0; i < 30; ++i) {
      const GateId a = pool[rng.below(pool.size())];
      const GateId c = pool[rng.below(pool.size())];
      switch (rng.below(5)) {
        case 0: pool.push_back(b.and_(a, c)); break;
        case 1: pool.push_back(b.or_(a, c)); break;
        case 2: pool.push_back(b.xor_(a, c)); break;
        case 3: pool.push_back(b.not_(a)); break;
        case 4: pool.push_back(b.mux(a, c, pool[rng.below(pool.size())])); break;
      }
    }
    Netlist n = b.take();

    // Pick a random 3-valued input assignment.
    std::vector<Tri> in3;
    for (GateId i : n.inputs()) {
      (void)i;
      const uint64_t r = rng.below(3);
      in3.push_back(r == 0 ? Tri::F : (r == 1 ? Tri::T : Tri::X));
    }
    Sim3 s3(n);
    size_t idx = 0;
    for (GateId i : n.inputs()) s3.set(i, in3[idx++]);
    s3.eval();

    // 64 random completions of the X inputs.
    Sim64 s64(n);
    idx = 0;
    for (GateId i : n.inputs()) {
      const Tri v = in3[idx++];
      s64.set(i, v == Tri::X ? rng.next() : (v == Tri::T ? ~0ULL : 0ULL));
    }
    s64.eval();
    for (GateId g = 0; g < n.size(); ++g) {
      if (!n.is_comb(g)) continue;
      const Tri v3 = s3.value(g);
      if (v3 == Tri::X) continue;
      const uint64_t want = v3 == Tri::T ? ~0ULL : 0ULL;
      EXPECT_EQ(s64.value(g), want) << "gate " << g << " round " << round;
    }
  }
}

TEST(Sim64, SequentialCounter) {
  NetBuilder b;
  const Word cnt = b.reg_word("cnt", 8, 0);
  b.set_next_word(cnt, b.inc_word(cnt));
  Netlist n = b.take();
  Sim64 sim(n);
  Rng rng(1);
  sim.load_initial_state(rng);
  for (int cycle = 0; cycle < 10; ++cycle) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) v |= static_cast<uint64_t>(sim.value_bit(cnt[i], 0)) << i;
    EXPECT_EQ(v, static_cast<uint64_t>(cycle));
    sim.eval();
    sim.step();
  }
}

TEST(SimulateTrace, DrivesSignalsFromCubes) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r", Tri::F);
  b.set_next(r, in);
  b.output("p", r);
  Netlist n = b.take();
  Trace t;
  t.steps.push_back({{}, {{in, true}}});  // cycle 1: drive in=1
  t.steps.push_back({{}, {}});            // cycle 2: observe
  EXPECT_EQ(simulate_trace(n, t, r), Tri::T);
  Trace t0;
  t0.steps.push_back({{}, {{in, false}}});
  t0.steps.push_back({{}, {}});
  EXPECT_EQ(simulate_trace(n, t0, r), Tri::F);
}

}  // namespace
}  // namespace rfn
