// Resource-profiler tests (util/prof and its consumers): CPU clock
// monotonicity, byte-exact arena accounting in the BDD manager and the SAT
// solver (tracked == recomputed from the live containers), RssLog thinning
// with an exact peak, per-task executor / per-job portfolio CPU
// attribution, folded-stack self-time balance, the watchdog's memory
// budget, end-to-end --budget-mem-mb degradation to resource-out, and a
// golden check of the CLI's rfn-prof-v1 artifact cross-validated with
// tools/trace_report.py --prof when python3 is available.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/portfolio.hpp"
#include "core/rfn.hpp"
#include "core/trace_json.hpp"
#include "netlist/builder.hpp"
#include "sat/solver.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/prof.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace rfn {
namespace {

using sat::Lit;
using sat::Solver;

/// Burns CPU (not wall) until the calling thread's CPU clock has advanced
/// by at least `ns` — the way to make CPU-attribution tests deterministic
/// on loaded machines.
void burn_thread_cpu(int64_t ns) {
  const int64_t start = prof::thread_cpu_ns();
  volatile uint64_t sink = 1;
  while (prof::thread_cpu_ns() - start < ns) {
    for (int i = 0; i < 4096; ++i) sink = sink * 2862933555777941757ull + 3037ull;
  }
}

TEST(ProfClock, ThreadCpuAdvancesMonotone) {
  const int64_t t0 = prof::thread_cpu_ns();
  ASSERT_GE(t0, 0);
  burn_thread_cpu(2'000'000);  // 2 ms of real CPU work
  const int64_t t1 = prof::thread_cpu_ns();
  EXPECT_GE(t1 - t0, 2'000'000);
  EXPECT_GE(prof::thread_cpu_ns(), t1);  // monotone on re-read
}

TEST(ProfClock, ProcessCpuCoversThreadDelta) {
  // The process clock aggregates every thread, so over a bracketed burst of
  // single-thread work its delta can never be below the thread's own.
  const int64_t p0 = prof::process_cpu_ns();
  const int64_t t0 = prof::thread_cpu_ns();
  burn_thread_cpu(2'000'000);
  const int64_t t1 = prof::thread_cpu_ns();
  const int64_t p1 = prof::process_cpu_ns();
  EXPECT_GE(p1 - p0, t1 - t0);
}

TEST(ProfClock, RssReadableOnLinux) {
#if defined(__linux__)
  EXPECT_GT(prof::read_rss_bytes(), 0);
#else
  EXPECT_EQ(prof::read_rss_bytes(), 0);  // degrade to 0, never garbage
#endif
}

TEST(RssLog, PeakExactUnderThinningAndTimelineBounded) {
  prof::RssLog& log = prof::RssLog::global();
  log.enable();
  // 5x the capacity, with the spike at an index a doubled stride will skip:
  // the timeline must thin, the peak must survive exactly.
  constexpr int64_t kSpike = int64_t{1} << 40;
  const size_t n = prof::RssLog::kMaxSamples * 5;
  for (size_t i = 0; i < n; ++i)
    log.record(i == n / 2 + 3 ? kSpike : static_cast<int64_t>(i));
  log.disable();
  EXPECT_EQ(log.peak_bytes(), kSpike);
  const std::vector<prof::RssSample> samples = log.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), prof::RssLog::kMaxSamples);
  for (size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].t_ms, samples[i - 1].t_ms) << "sample " << i;
  for (const prof::RssSample& s : samples) EXPECT_LE(s.bytes, log.peak_bytes());
}

TEST(RssLog, DisabledRecordsNothingAndEnableResets) {
  prof::RssLog& log = prof::RssLog::global();
  log.enable();
  log.record(123);
  log.disable();
  log.record(1 << 30);  // dropped: disabled
  EXPECT_EQ(log.peak_bytes(), 123);
  EXPECT_EQ(log.sample(), 0);  // sample() is also a no-op when disabled
  log.enable();  // a new epoch drops the previous timeline
  EXPECT_EQ(log.peak_bytes(), 0);
  EXPECT_TRUE(log.samples().empty());
  log.disable();
}

TEST(BddArena, TrackedBytesMatchRecomputed) {
  BddMgr mgr(24);
  // The constructor's pre-sized pool/cache/buckets are already tracked.
  EXPECT_GT(mgr.heap_bytes(), 0u);
  EXPECT_EQ(mgr.heap_bytes(), mgr.heap_bytes_recomputed());

  // Grow through every instrumented path: fresh nodes (pool growth +
  // unique-table inserts), bucket rehashing, then GC and sifting, which
  // recycle nodes but never return capacity.
  Bdd f = mgr.bdd_true();
  for (BddVar i = 0; i < 12; ++i) f &= !(mgr.var(i) ^ mgr.var(i + 12));
  Bdd g = mgr.bdd_false();
  for (BddVar i = 0; i < 12; ++i) g |= mgr.var(i) & mgr.nvar(23 - i);
  EXPECT_EQ(mgr.heap_bytes(), mgr.heap_bytes_recomputed());

  g = mgr.bdd_false();  // drop refs, then collect
  mgr.garbage_collect();
  EXPECT_EQ(mgr.heap_bytes(), mgr.heap_bytes_recomputed());
  mgr.reorder_sift();
  EXPECT_EQ(mgr.heap_bytes(), mgr.heap_bytes_recomputed());

  // The arena never shrinks (freed nodes go to the free list), so within
  // one manager live == peak — the documented BddStats contract.
  EXPECT_EQ(mgr.stats().heap_bytes, mgr.stats().heap_peak_bytes);
}

TEST(SatArena, TrackedBytesMatchRecomputed) {
  Solver s;
  EXPECT_EQ(s.heap_bytes(), s.heap_bytes_recomputed());
  // A ring of implications plus pigeonhole-style conflicts: enough clauses
  // to grow the arena and the watch lists through several reallocations.
  std::vector<Lit> lits;
  for (int i = 0; i < 64; ++i) lits.push_back(Lit::make(s.new_var()));
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(s.add_clause({~lits[i], lits[(i + 1) % 64]}));
  for (int i = 0; i < 32; ++i)
    for (int j = i + 1; j < 32; ++j)
      ASSERT_TRUE(s.add_clause({~lits[i], ~lits[j], lits[63 - i]}));
  EXPECT_GT(s.heap_bytes(), 0u);
  EXPECT_EQ(s.heap_bytes(), s.heap_bytes_recomputed());

  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  // Solving attaches learnt clauses and swaps watches; the tally must
  // still be byte-exact against the live containers.
  EXPECT_EQ(s.heap_bytes(), s.heap_bytes_recomputed());
  EXPECT_EQ(s.heap_bytes(), s.heap_bytes_peak());  // capacities never shrink
}

TEST(ExecutorCpu, AccumulatesTaskCpuAcrossWorkers) {
  Executor exec(2);
  for (int i = 0; i < 4; ++i)
    exec.submit([] { burn_thread_cpu(2'000'000); });
  // Quiesce: enqueue nothing more and wait for the counter to reach the
  // total (each task adds its delta as it finishes).
  for (int spin = 0; spin < 2000 && exec.cpu_seconds() < 0.008; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(exec.cpu_seconds(), 0.008);  // 4 tasks x 2 ms
}

TEST(ExecutorCpu, InlineModeCountsToo) {
  Executor exec(0);  // no workers: submit() runs inline
  exec.submit([] { burn_thread_cpu(2'000'000); });
  EXPECT_GE(exec.cpu_seconds(), 0.002);
}

TEST(PortfolioCpu, RaceAttributesCpuToEngineTimers) {
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  Portfolio portfolio(2);
  std::vector<PortfolioJob> jobs;
  jobs.push_back({"spin-win", -1.0, [](const CancelToken&) {
                    burn_thread_cpu(3'000'000);
                    return true;
                  }});
  jobs.push_back({"spin-lose", -1.0, [](const CancelToken& token) {
                    while (!token.cancelled()) burn_thread_cpu(200'000);
                    return false;
                  }});
  const RaceResult r = portfolio.race(jobs);
  ASSERT_TRUE(r.conclusive);
  EXPECT_EQ(r.winner_name, "spin-win");

  const MetricsSnapshot delta = MetricsRegistry::global().snapshot().delta(before);
  const double win_cpu = delta.value("engine.cpu.spin-win.seconds");
  const double lose_cpu = delta.value("engine.cpu.spin-lose.seconds");
  EXPECT_GE(win_cpu, 0.003);
  EXPECT_GT(lose_cpu, 0.0);  // ran until cancelled, so it burned something
  // RaceResult.cpu_seconds is the sum over every launched job.
  EXPECT_NEAR(r.cpu_seconds, win_cpu + lose_cpu, 1e-6);
}

TEST(FoldedStacks, SelfTimesSumToRootDurationsPerThread) {
  SpanTracer::global().enable(1u << 12);
  SpanTracer::global().set_thread_name("prof-main");
  {
    Span outer("outer");
    burn_thread_cpu(1'000'000);
    {
      Span inner("inner");
      burn_thread_cpu(1'000'000);
    }
    { Span inner2("inner2"); }
  }
  { Span second_root("second-root"); }
  std::thread t([] {
    SpanTracer::global().set_thread_name("prof-worker");
    Span s("task");
    burn_thread_cpu(1'000'000);
  });
  t.join();
  SpanTracer::global().disable();
  const json::Value doc = SpanTracer::global().to_chrome_json();
  const std::string folded = prof::folded_stacks(doc);

  // Parse "thread;frame;... <us>" lines.
  std::map<std::string, long long> self_us;
  std::istringstream in(folded);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    self_us[line.substr(0, space)] = std::stoll(line.substr(space + 1));
    ++lines;
  }
  ASSERT_GT(lines, 0u);
  EXPECT_TRUE(self_us.count("prof-main;outer"));
  EXPECT_TRUE(self_us.count("prof-main;outer;inner"));
  EXPECT_TRUE(self_us.count("prof-worker;task"));

  // Balance: per thread, the folded self times sum to the root-span
  // durations (self = dur - children by construction). Recompute the root
  // durations from the same Chrome doc; allow 1 us of rounding per line.
  std::map<uint64_t, std::string> thread_names;
  std::map<uint64_t, int> depth;
  std::map<uint64_t, double> begin_ts;
  std::map<uint64_t, double> root_us;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    const std::string& ph = e.find("ph")->as_string();
    const uint64_t tid = e.find("tid")->as_uint();
    if (ph == "M") {
      if (e.find("name")->as_string() == "thread_name")
        thread_names[tid] = e.find_path("args.name")->as_string();
      continue;
    }
    if (ph == "B" && depth[tid]++ == 0) begin_ts[tid] = e.find("ts")->as_double();
    if (ph == "E" && --depth[tid] == 0)
      root_us[tid] += e.find("ts")->as_double() - begin_ts[tid];
  }
  for (const auto& [tid, total_us] : root_us) {
    ASSERT_TRUE(thread_names.count(tid));
    const std::string& prefix = thread_names[tid];
    long long folded_total = 0;
    for (const auto& [key, us] : self_us)
      if (key.rfind(prefix + ";", 0) == 0) folded_total += us;
    EXPECT_NEAR(static_cast<double>(folded_total), total_us,
                static_cast<double>(lines) + 1.0)
        << "thread " << prefix;
  }
}

TEST(Watchdog, MemBudgetTripsOnResidentSet) {
  // Any live test process is resident well past 1 MiB, so the first poll
  // trips — deterministically, without allocating anything.
  CancelToken token;
  WatchdogOptions opt;
  opt.mem_budget_mb = 1;
  opt.poll_interval_s = 0.005;
  Watchdog dog(opt, &token);
  dog.start();
  for (int i = 0; i < 400 && !token.cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.stop();
  ASSERT_TRUE(dog.tripped());
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(dog.trip_reason(), "mem-budget");
  EXPECT_GE(dog.trip_rss_bytes(), int64_t{1} << 20);
}

TEST(Watchdog, SampleRssAloneNeverTrips) {
  prof::RssLog::global().enable();
  CancelToken token;
  WatchdogOptions opt;
  opt.sample_rss = true;  // no budgets: the monitor runs purely as sampler
  opt.poll_interval_s = 0.005;
  Watchdog dog(opt, &token);
  dog.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  dog.stop();
  prof::RssLog::global().disable();
  EXPECT_FALSE(dog.tripped());
  EXPECT_FALSE(token.cancelled());
  const std::vector<prof::RssSample> samples = prof::RssLog::global().samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_GT(samples.front().bytes, 0);
}

/// 24-bit free-running counter (same design as tests/data/slow24.v): every
/// engine needs ~2^24 steps, so the run reliably outlives any small budget.
Netlist slow_counter_netlist() {
  NetBuilder b;
  const Word cnt = b.reg_word("cnt", 24);
  b.set_next_word(cnt, b.inc_word(cnt));
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, b.eq_const(cnt, (1u << 24) - 1)));
  b.output("bad", bad);
  return b.take();
}

TEST(ResourceOut, MemBudgetDegradesRunDeterministically) {
  // A 1 MiB budget is below any live process's footprint: the trip must be
  // deterministic, name the memory budget, and carry the RSS it saw — on
  // every run, which is what the CI negative self-check relies on.
  const Netlist n = slow_counter_netlist();
  for (int round = 0; round < 2; ++round) {
    RfnOptions opt;
    opt.portfolio_workers = 3;
    opt.budget_mem_mb = 1;
    RfnVerifier verifier(n, n.output("bad"), opt);
    const RfnResult res = verifier.run();
    EXPECT_EQ(res.verdict, Verdict::ResourceOut) << "round " << round;
    ASSERT_TRUE(res.budget_trip.tripped) << "round " << round;
    EXPECT_EQ(res.budget_trip.reason, "mem-budget");
    EXPECT_GE(res.budget_trip.rss_bytes, int64_t{1} << 20);
    EXPECT_LT(res.seconds, 30.0);  // degradation must be prompt

    const json::Value summary = summary_json(res);
    EXPECT_EQ(summary.find("verdict")->as_string(), "resource-out");
    EXPECT_EQ(summary.find_path("budget_trip.reason")->as_string(),
              "mem-budget");
    EXPECT_GE(summary.find_path("budget_trip.rss_bytes")->as_double(),
              static_cast<double>(int64_t{1} << 20));
  }
}

#ifdef RFN_CLI_PATH
std::string read_last_line(const std::string& path) {
  std::ifstream in(path);
  std::string line, last;
  while (std::getline(in, line))
    if (!line.empty()) last = line;
  return last;
}

json::Value parse_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  json::Value doc = json::parse(buf.str(), &err);
  EXPECT_TRUE(err.empty()) << path << ": " << err;
  return doc;
}

// End-to-end --budget-mem-mb through the CLI on the committed slow design:
// exit 1 (resource-out is inconclusive, never a crash or a hang) and the
// tripped budget named in the rfn-trace-v2 summary.
TEST(ProfCli, MemBudgetTripNamedInTrace) {
  const std::string design = std::string(RFN_TEST_DATA_DIR) + "/slow24.v";
  const std::string trace = ::testing::TempDir() + "/trace_mem.jsonl";
  const std::string cmd = std::string(RFN_CLI_PATH) + " verify " + design +
                          " --bad bad --workers 3 --budget-mem-mb 1" +
                          " --trace-json " + trace + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 1) << cmd;

  std::string err;
  const json::Value summary = json::parse(read_last_line(trace), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(summary.find("verdict")->as_string(), "resource-out");
  EXPECT_EQ(summary.find_path("budget_trip.reason")->as_string(),
            "mem-budget");
  EXPECT_GE(summary.find_path("budget_trip.rss_bytes")->as_double(),
            static_cast<double>(int64_t{1} << 20));
  std::remove(trace.c_str());
}

// Golden check of the rfn-prof-v1 artifact and the folded-stack export on
// the committed demo design, cross-validated with trace_report.py --prof.
TEST(ProfCli, ProfArtifactGoldenSchema) {
  const std::string design = std::string(RFN_TEST_DATA_DIR) + "/demo.v";
  const std::string prof = ::testing::TempDir() + "/prof.json";
  const std::string folded = ::testing::TempDir() + "/prof.folded";
  const std::string cmd = std::string(RFN_CLI_PATH) + " verify " + design +
                          " --bad bad_q --workers 2 --prof-json " + prof +
                          " --prof-folded " + folded + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const json::Value doc = parse_file(prof);
  EXPECT_EQ(doc.find("format")->as_string(), "rfn-prof-v1");
  EXPECT_GT(doc.find("wall_ms")->as_double(), 0.0);
  EXPECT_GT(doc.find("total_cpu_ms")->as_double(), 0.0);
  EXPECT_EQ(doc.find("workers")->as_uint(), 2u);
  ASSERT_NE(doc.find("engines"), nullptr);
  EXPECT_FALSE(doc.find("engines")->items().empty());
  // Per-engine CPU must be consistent with the portfolio's wall time: no
  // engine can burn more than race-wall x workers (the validator's bound).
  const double race_wall_ms = doc.find_path("portfolio.race_wall_ms")->as_double();
  double engine_cpu_ms = 0.0;
  for (const json::Value& e : doc.find("engines")->items()) {
    EXPECT_GE(e.find("cpu_ms")->as_double(), 0.0);
    engine_cpu_ms += e.find("cpu_ms")->as_double();
  }
  EXPECT_LE(engine_cpu_ms, race_wall_ms * 2 * 1.25 + 50.0);
  // The demo run exercises the BDD engine; its arena peak must be real.
  EXPECT_GT(doc.find_path("subsystems.bdd.peak_bytes")->as_double(), 0.0);
  EXPECT_GE(doc.find_path("subsystems.bdd.peak_bytes")->as_double(),
            doc.find_path("subsystems.bdd.live_bytes")->as_double());
  EXPECT_GT(doc.find_path("rss.peak_bytes")->as_double(), 0.0);
  ASSERT_NE(doc.find_path("rss.samples"), nullptr);
  EXPECT_FALSE(doc.find_path("rss.samples")->items().empty());

  // The folded export: every line is "thread;frame[;frame...] <integer>".
  std::ifstream fin(folded);
  std::string line;
  size_t folded_lines = 0;
  while (std::getline(fin, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NE(line.find(';'), std::string::npos) << line;
    EXPECT_GE(std::stoll(line.substr(space + 1)), 0) << line;
    ++folded_lines;
  }
  EXPECT_GT(folded_lines, 0u);

#ifdef RFN_TOOLS_DIR
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    std::remove(prof.c_str());
    std::remove(folded.c_str());
    GTEST_SKIP() << "python3 unavailable";
  }
  const std::string py_cmd = std::string("python3 ") + RFN_TOOLS_DIR +
                             "/trace_report.py --prof " + prof +
                             " > /dev/null";
  EXPECT_EQ(std::system(py_cmd.c_str()), 0) << py_cmd;
#endif  // RFN_TOOLS_DIR
  std::remove(prof.c_str());
  std::remove(folded.c_str());
}
#endif  // RFN_CLI_PATH

}  // namespace
}  // namespace rfn
