// Deterministic cross-engine fuzzing: ~200 seeded random netlists, each
// checked for agreement between every engine of the portfolio —
//
//   * BDD forward reachability (ground truth, onion rings);
//   * sequential ATPG by iterative deepening: first Sat depth must equal
//     the first bad ring index + 1, and Proved designs are Unsat at every
//     depth within the diameter;
//   * SAT BMC with every register enabled: same shortest-trace depth as the
//     BDD rings, decoded traces replay and certify, safe designs are Unsat
//     within the diameter with a core drawn from the register set;
//   * 64-way random simulation: every visited state lies in the BDD
//     fixpoint, hits imply BadReachable at a consistent depth;
//   * the portfolio's random-simulation trace adapter: returned traces
//     replay to bad = 1, safe designs yield no trace;
//   * the BFS coverage baseline: with the full register set its
//     unreachable-state count matches exhaustive enumeration of the BDD
//     fixpoint;
//   * the full RFN loop, sequential vs portfolio: same verdict.
//
// Disagreements dump the failing netlist (BLIF + generator seed) into
// RFN_FUZZ_DUMP_DIR for offline triage.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "aiger/aiger.hpp"
#include "atpg/seq_atpg.hpp"
#include "cert/check.hpp"
#include "cert/format.hpp"
#include "core/bfs_baseline.hpp"
#include "core/certificate.hpp"
#include "core/certify.hpp"
#include "core/portfolio.hpp"
#include "core/rfn.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "netlist/analysis.hpp"
#include "netlist/blif.hpp"
#include "netlist/builder.hpp"
#include "pdr/pdr.hpp"
#include "sat/bmc.hpp"
#include "sim/sim3.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

#ifndef RFN_FUZZ_DUMP_DIR
#define RFN_FUZZ_DUMP_DIR "."
#endif

namespace rfn {
namespace {

constexpr size_t kRoundsPerSeed = 25;  // x 8 seed instances = 200 netlists

/// Random sequential netlist whose last gate is exported as the property
/// signal `bad`. All registers are binary-initialized so every engine agrees
/// on the (single) initial state.
Netlist random_netlist(Rng& rng, size_t nins, size_t nregs, int gates) {
  NetBuilder b;
  std::vector<GateId> regs, pool;
  for (size_t i = 0; i < nins; ++i) pool.push_back(b.input("i" + std::to_string(i)));
  for (size_t i = 0; i < nregs; ++i) {
    regs.push_back(b.reg("r" + std::to_string(i), rng.flip() ? Tri::F : Tri::T));
    pool.push_back(regs.back());
  }
  for (int i = 0; i < gates; ++i) {
    const GateId x = pool[rng.below(pool.size())];
    const GateId y = pool[rng.below(pool.size())];
    const GateId z = pool[rng.below(pool.size())];
    switch (rng.below(5)) {
      case 0: pool.push_back(b.and_(x, y)); break;
      case 1: pool.push_back(b.or_(x, y)); break;
      case 2: pool.push_back(b.xor_(x, y)); break;
      case 3: pool.push_back(b.not_(x)); break;
      case 4: pool.push_back(b.mux(x, y, z)); break;
    }
  }
  for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(8)]);
  b.output("bad", pool.back());
  return b.take();
}

void dump_failure(const Netlist& m, uint64_t seed, size_t round) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(RFN_FUZZ_DUMP_DIR, ec);
  const std::string path = std::string(RFN_FUZZ_DUMP_DIR) + "/fuzz_seed_" +
                           std::to_string(seed) + "_round_" +
                           std::to_string(round) + ".blif";
  std::ofstream out(path);
  out << "# netlist_fuzz_test seed=" << seed << " round=" << round << "\n"
      << write_blif(m, "fuzz");
  ADD_FAILURE() << "cross-engine disagreement; netlist dumped to " << path;
}

void dump_failure_aiger(const Netlist& m, uint64_t seed, size_t round) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(RFN_FUZZ_DUMP_DIR, ec);
  const std::string path = std::string(RFN_FUZZ_DUMP_DIR) + "/fuzz_seed_" +
                           std::to_string(seed) + "_round_" +
                           std::to_string(round) + ".aag";
  std::ofstream out(path);
  out << aiger::write_aiger(m, false) << "c\nnetlist_fuzz_test seed=" << seed
      << " round=" << round << "\n";
  ADD_FAILURE() << "AIGER round-trip mismatch; netlist dumped to " << path;
}

/// AIGER round-trip: write -> read normalizes the netlist into and-inverter
/// form; one more write -> read must then be a fixpoint of design_hash, both
/// encodings must elaborate identically, and the normalized design must keep
/// the same BDD reachability verdict as the original.
void check_aiger_roundtrip(const Netlist& m, uint64_t seed, size_t round) {
  std::string error;
  aiger::AigerDesign d2, d2bin, d3;
  ASSERT_TRUE(aiger::read_aiger(aiger::write_aiger(m, false), &d2, &error))
      << "seed " << seed << " round " << round << ": " << error;
  ASSERT_TRUE(aiger::read_aiger(aiger::write_aiger(m, true), &d2bin, &error))
      << "seed " << seed << " round " << round << ": " << error;
  EXPECT_EQ(design_hash(d2.netlist), design_hash(d2bin.netlist))
      << "ASCII and binary encodings elaborate differently";
  ASSERT_TRUE(
      aiger::read_aiger(aiger::write_aiger(d2.netlist, false), &d3, &error))
      << error;
  EXPECT_EQ(design_hash(d2.netlist), design_hash(d3.netlist))
      << "write -> read is not idempotent on the design hash";

  // Verdict agreement: the decomposed and-inverter form must reach bad at
  // exactly the same depth (or prove it unreachable) as the source netlist.
  auto reach_of = [](const Netlist& n) {
    const GateId bad = n.output("bad");
    EXPECT_NE(bad, kNullGate);
    BddMgr mgr;
    Encoder enc(mgr, n);
    ImageComputer img(enc);
    const Bdd bad_set = mgr.exists(enc.signal_fn(bad), enc.input_vars());
    const ReachResult r = forward_reach(img, enc.initial_states(), bad_set);
    EXPECT_NE(r.status, ReachStatus::ResourceOut);
    return std::make_pair(r.status, r.steps);
  };
  const auto [st1, steps1] = reach_of(m);
  const auto [st2, steps2] = reach_of(d2.netlist);
  EXPECT_EQ(st1, st2) << "round-tripped design changed verdict";
  if (st1 == ReachStatus::BadReachable && st2 == ReachStatus::BadReachable)
    EXPECT_EQ(steps1, steps2) << "round-tripped design changed trace depth";
}

void check_engines_agree(const Netlist& m, uint64_t seed, size_t round) {
  const GateId bad = m.output("bad");
  ASSERT_NE(bad, kNullGate);

  // Ground truth: exact forward reachability with onion rings, stopping at
  // the first bad ring, plus the complete fixpoint for containment checks.
  BddMgr mgr;
  Encoder enc(mgr, m);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.exists(enc.signal_fn(bad), enc.input_vars());
  ASSERT_FALSE(bad_set.is_null());
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_NE(reach.status, ReachStatus::ResourceOut);
  const ReachResult full =
      forward_reach(img, enc.initial_states(), mgr.bdd_false());
  ASSERT_EQ(full.status, ReachStatus::Proved);
  EXPECT_TRUE(reach.reached.diff(full.reached).is_false())
      << "early-stopped fixpoint escaped the full one";

  // Sequential ATPG by iterative deepening: the shortest trace raising bad
  // at cycle k exists iff the ring first hit has index k-1, so the first
  // Sat depth is pinned exactly; Proved designs are Unsat at every depth
  // within the diameter + 1.
  size_t atpg_first_sat = 0;  // 0 = no Sat found
  for (size_t k = 1; k <= full.rings.size() + 1; ++k) {
    const SeqAtpgResult r = reach_target(m, k, bad, true);
    ASSERT_NE(r.status, AtpgStatus::Abort) << "depth " << k;
    if (r.status == AtpgStatus::Sat) {
      atpg_first_sat = k;
      EXPECT_EQ(r.trace.cycles(), k);
      EXPECT_EQ(simulate_trace(m, r.trace, bad), Tri::T)
          << "ATPG trace at depth " << k << " does not replay";
      break;
    }
  }
  if (reach.status == ReachStatus::BadReachable)
    EXPECT_EQ(atpg_first_sat, reach.steps + 1)
        << "ATPG minimal depth disagrees with the first bad ring";
  else
    EXPECT_EQ(atpg_first_sat, 0u)
        << "ATPG found a trace on a design the BDD engine proved safe";

  // SAT BMC with the full register set: a concrete bounded check whose
  // first Sat depth is pinned by the same ring index, and whose decoded
  // trace must replay and certify. Safe designs are Unsat through the
  // diameter + 1 with a core drawn from the design's registers.
  {
    SatBmc bmc(m);
    const SatBmcResult r = bmc.check(bad, full.rings.size() + 1, m.regs());
    ASSERT_NE(r.status, AtpgStatus::Abort);
    if (reach.status == ReachStatus::BadReachable) {
      EXPECT_EQ(r.status, AtpgStatus::Sat)
          << "SAT BMC missed a trace the BDD engine found";
      if (r.status == AtpgStatus::Sat) {
        EXPECT_EQ(r.depth, reach.steps + 1)
            << "SAT BMC minimal depth disagrees with the first bad ring";
        EXPECT_EQ(r.trace.cycles(), r.depth);
        EXPECT_EQ(simulate_trace(m, r.trace, bad), Tri::T)
            << "SAT BMC trace does not replay";
        EXPECT_TRUE(certify_error_trace(m, r.trace, bad).ok)
            << "SAT BMC trace fails certification";
      }
    } else {
      EXPECT_EQ(r.status, AtpgStatus::Unsat)
          << "SAT BMC found a trace on a design the BDD engine proved safe";
      for (const GateId reg : r.core_registers) {
        EXPECT_TRUE(m.is_reg(reg)) << "core names a non-register gate";
      }
    }
  }

  // IC3/PDR with the full register set: an unbounded concrete verdict in
  // both polarities, so it must mirror the BDD ground truth exactly. A
  // Holds frame is discharged through the independent rfn-cert-v1 checker
  // (the acceptance bar for PDR certificates); a Cex trace must replay.
  {
    std::vector<GateId> regs(m.regs().begin(), m.regs().end());
    std::sort(regs.begin(), regs.end());
    Pdr pdr(m, bad, std::move(regs));
    const PdrResult r = pdr.run();
    ASSERT_TRUE(r.status == PdrStatus::Holds || r.status == PdrStatus::Cex)
        << "PDR did not converge on a tiny netlist: " << to_string(r.status);
    if (reach.status == ReachStatus::BadReachable) {
      EXPECT_EQ(r.status, PdrStatus::Cex)
          << "PDR proved a design the BDD engine found a trace for";
      if (r.status == PdrStatus::Cex) {
        EXPECT_EQ(simulate_trace(m, r.trace, bad), Tri::T)
            << "PDR counterexample does not replay";
        EXPECT_GE(r.trace.cycles(), reach.steps + 1)
            << "PDR trace shorter than the BDD shortest trace";
      }
    } else {
      EXPECT_EQ(r.status, PdrStatus::Holds)
          << "PDR found a trace on a design the BDD engine proved safe";
      if (r.status == PdrStatus::Holds) {
        PdrInvariantWitness inv;
        inv.present = true;
        inv.registers = r.scope;
        inv.clauses = r.clauses;
        const CertificateBuild built =
            build_holds_certificate_from_invariant(m, bad, "bad", inv);
        ASSERT_TRUE(built.ok) << built.detail;
        const cert::CheckResult chk = cert::check_certificate(m, built.certificate);
        EXPECT_TRUE(chk.ok) << "PDR frame refused by the checker: obligation "
                            << chk.obligation << ": " << chk.detail;
      }
    }
  }

  // Random simulation: every visited state must lie inside the fixpoint,
  // and a bad hit at cycle c implies a trace of c+1 cycles, which the BDD
  // side caps from below by its first bad ring.
  {
    Sim64 sim(m);
    Rng srng(seed * 0x9E3779B97F4A7C15ull + round);
    sim.load_initial_state(srng);
    std::vector<bool> assign(mgr.num_vars(), false);
    bool hit = false;
    for (size_t c = 0; c < 24 && !hit; ++c) {
      for (const int lane : {0, 63}) {
        for (GateId r : m.regs())
          assign[enc.state_var(r)] = sim.value_bit(r, lane);
        EXPECT_TRUE(mgr.eval(full.reached, assign))
            << "simulation visited a state outside the BDD fixpoint (cycle "
            << c << " lane " << lane << ")";
      }
      sim.randomize_inputs(srng);
      sim.eval();
      if (sim.value(bad) != 0) {
        hit = true;
        EXPECT_EQ(reach.status, ReachStatus::BadReachable)
            << "simulation raised bad on a design the BDD engine proved safe";
        EXPECT_GE(c, reach.steps)
            << "simulation hit bad before the first bad ring";
      }
      sim.step();
    }
  }

  // The portfolio's simulation adapter: traces replay, safe designs stay
  // clean, and trace length respects the BDD shortest-trace bound.
  {
    const Trace cex = random_sim_error_trace(m, bad, 24, seed ^ round);
    if (reach.status == ReachStatus::Proved) {
      EXPECT_TRUE(cex.empty())
          << "sim adapter found a trace on a proved-safe design";
    }
    if (!cex.empty()) {
      EXPECT_EQ(simulate_trace(m, cex, bad), Tri::T);
      EXPECT_GE(cex.cycles(), reach.steps + 1);
    }
  }

  // BFS coverage baseline with the full register set degenerates to exact
  // reachable-state counting; cross-check against exhaustive enumeration of
  // the fixpoint (the state spaces here are tiny).
  {
    BfsBaselineOptions bopt;
    bopt.num_registers = m.regs().size();
    const BfsBaselineResult bfs = bfs_coverage_analysis(m, m.regs(), bopt);
    ASSERT_EQ(bfs.reach_status, ReachStatus::Proved);
    const size_t total = size_t{1} << m.regs().size();
    size_t reachable = 0;
    std::vector<bool> assign(mgr.num_vars(), false);
    for (size_t s = 0; s < total; ++s) {
      for (size_t i = 0; i < m.regs().size(); ++i)
        assign[enc.state_var(m.regs()[i])] = (s >> i) & 1;
      if (mgr.eval(full.reached, assign)) ++reachable;
    }
    EXPECT_EQ(bfs.total_states, total);
    EXPECT_EQ(bfs.unreachable, total - reachable)
        << "BFS baseline unreachable count disagrees with BDD enumeration";
  }

  // Full RFN loop, sequential vs portfolio: the acceptance criterion.
  // Expensive relative to the checks above, so sample every 8th netlist.
  if (round % 8 == 0) {
    const Verdict expect = reach.status == ReachStatus::BadReachable
                               ? Verdict::Fails
                               : Verdict::Holds;
    for (const size_t workers : {size_t{0}, size_t{2}}) {
      RfnOptions opt;
      opt.portfolio_workers = workers;
      opt.race_probe_time_s = 0.25;
      RfnVerifier v(m, bad, opt);
      const RfnResult res = v.run();
      EXPECT_EQ(res.verdict, expect)
          << "RFN (workers=" << workers << ") disagrees with the BDD ground "
          << "truth; note: " << res.note;
      if (res.verdict == Verdict::Fails) {
        EXPECT_EQ(simulate_trace(m, res.error_trace, bad), Tri::T)
            << "RFN error trace (workers=" << workers << ") does not replay";
      }

      // Certificate round trip on the concluded verdict: extraction,
      // serialize + reparse, and the independent SAT checker must accept
      // the witness the verdict earned...
      if (res.verdict != expect) continue;
      const CertificateBuild built =
          res.verdict == Verdict::Holds
              ? build_holds_certificate(m, bad, "bad", res.final_registers)
              : build_fails_certificate(m, bad, "bad", res.error_trace);
      ASSERT_TRUE(built.ok) << "workers=" << workers << ": " << built.detail;
      cert::Certificate back;
      std::string cert_err;
      ASSERT_TRUE(
          cert::from_json(cert::to_json(built.certificate), &back, &cert_err))
          << cert_err;
      const cert::CheckResult chk = cert::check_certificate(m, back);
      EXPECT_TRUE(chk.ok) << "workers=" << workers << ", verdict "
                          << to_string(res.verdict) << ": obligation "
                          << chk.obligation << ": " << chk.detail;

      // ...and a deliberately mutated invariant must be refused. Weakening
      // Inv to `true` on a design whose bad is truly reachable leaves the
      // safety obligation nothing to stand on.
      if (res.verdict == Verdict::Fails) {
        cert::Certificate mutated;
        mutated.kind = cert::CertKind::HoldsInvariant;
        mutated.design_hash = design_hash(m);
        mutated.design_regs = m.num_regs();
        mutated.property_name = "bad";
        mutated.bad = bad;
        mutated.registers = m.regs();
        const cert::CheckResult rej = cert::check_certificate(m, mutated);
        EXPECT_FALSE(rej.ok)
            << "checker accepted a holds witness for a violated property";
        EXPECT_EQ(rej.obligation, cert::kObligationSafety);
      }
    }

    // The proof-based shrink invariant: the grow/shrink loop must reach the
    // same verdict as grow-only on every netlist it is sampled on, and any
    // registers it drops must not cost the trace its replayability.
    {
      RfnOptions opt;
      opt.proof_shrink = true;
      opt.race_probe_time_s = 0.25;
      RfnVerifier v(m, bad, opt);
      const RfnResult res = v.run();
      EXPECT_EQ(res.verdict, expect)
          << "grow/shrink verdict diverged from grow-only; note: " << res.note;
      if (res.verdict == Verdict::Fails)
        EXPECT_EQ(simulate_trace(m, res.error_trace, bad), Tri::T)
            << "grow/shrink error trace does not replay";
    }
  }
}

class CrossEngineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossEngineFuzz, EnginesAgreeOnRandomNetlists) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  for (size_t round = 0; round < kRoundsPerSeed; ++round) {
    const size_t nins = 1 + rng.below(3);
    const size_t nregs = 3 + rng.below(3);
    const int gates = 10 + static_cast<int>(rng.below(11));
    const Netlist m = random_netlist(rng, nins, nregs, gates);
    const bool failed_before = ::testing::Test::HasFailure();
    check_engines_agree(m, seed, round);
    if (!failed_before && ::testing::Test::HasFailure())
      dump_failure(m, seed, round);
    const bool failed_before_aiger = ::testing::Test::HasFailure();
    check_aiger_roundtrip(m, seed, round);
    if (!failed_before_aiger && ::testing::Test::HasFailure())
      dump_failure_aiger(m, seed, round);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineFuzz,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

}  // namespace
}  // namespace rfn
