// Unit tests for the 3-valued implication engine.

#include "atpg/implication.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"

namespace rfn {
namespace {

TEST(Implication, ForwardPropagation) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.and_(a, c);
  const GateId h = b.or_(g, a);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  EXPECT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(g), Tri::X);
  EXPECT_EQ(eng.value(h), Tri::T);  // or(x, 1) = 1
  EXPECT_TRUE(eng.assign(c, true));
  EXPECT_EQ(eng.value(g), Tri::T);
}

TEST(Implication, BackwardAndRule) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.and_(a, c);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  // and = 1 forces both fanins to 1.
  EXPECT_TRUE(eng.assign(g, true));
  EXPECT_EQ(eng.value(a), Tri::T);
  EXPECT_EQ(eng.value(c), Tri::T);
}

TEST(Implication, BackwardLastXFanin) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.and_(a, c);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  EXPECT_TRUE(eng.assign(g, false));
  EXPECT_EQ(eng.value(a), Tri::X);  // two unknowns: no implication yet
  EXPECT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(c), Tri::F);  // and=0 with a=1 forces c=0
}

TEST(Implication, XorBothDirections) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.xor_(a, c);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  EXPECT_TRUE(eng.assign(g, true));
  EXPECT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(c), Tri::F);
}

TEST(Implication, MuxBackward) {
  NetBuilder b;
  const GateId s = b.input("s");
  const GateId d0 = b.input("d0");
  const GateId d1 = b.input("d1");
  const GateId g = b.mux(s, d0, d1);
  Netlist n = b.take();
  {
    ImplicationEngine eng(n);
    EXPECT_TRUE(eng.assign(g, true));
    EXPECT_TRUE(eng.assign(s, false));
    EXPECT_EQ(eng.value(d0), Tri::T);
    EXPECT_EQ(eng.value(d1), Tri::X);
  }
  {
    // Output 1 with d0=0 forces the select to 1 and d1 to 1.
    ImplicationEngine eng(n);
    EXPECT_TRUE(eng.assign(g, true));
    EXPECT_TRUE(eng.assign(d0, false));
    EXPECT_EQ(eng.value(s), Tri::T);
    EXPECT_EQ(eng.value(d1), Tri::T);
  }
}

TEST(Implication, ConflictDetection) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId g = b.not_(a);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  EXPECT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(g), Tri::F);
  EXPECT_FALSE(eng.assign(g, true));
}

TEST(Implication, TrailUndoRestoresX) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.and_(a, c);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  const size_t m0 = eng.mark();
  EXPECT_TRUE(eng.assign(g, true));
  EXPECT_EQ(eng.value(a), Tri::T);
  eng.undo_to(m0);
  EXPECT_EQ(eng.value(a), Tri::X);
  EXPECT_EQ(eng.value(g), Tri::X);
  // Constants are untouched by undo.
  EXPECT_TRUE(eng.assign(g, false));
}

TEST(Implication, JustificationFrontier) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.or_(a, c);
  Netlist n = b.take();
  ImplicationEngine eng(n);
  EXPECT_TRUE(eng.assign(g, true));
  // or=1 with both inputs X is unjustified.
  EXPECT_FALSE(eng.justified(g));
  EXPECT_EQ(eng.find_unjustified(), g);
  EXPECT_TRUE(eng.assign(a, true));
  EXPECT_TRUE(eng.justified(g));
  EXPECT_EQ(eng.find_unjustified(), kNullGate);
}

}  // namespace
}  // namespace rfn
