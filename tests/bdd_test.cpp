// Unit tests for the BDD manager: core operators, quantification, cubes,
// queries, and garbage collection.

#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

namespace rfn {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddMgr mgr{8};
};

TEST_F(BddTest, ConstantsAndLiterals) {
  EXPECT_TRUE(mgr.bdd_true().is_true());
  EXPECT_TRUE(mgr.bdd_false().is_false());
  const Bdd x = mgr.var(0);
  EXPECT_FALSE(x.is_terminal());
  EXPECT_EQ(!(!x), x);
  EXPECT_EQ(mgr.nvar(0), !x);
}

TEST_F(BddTest, BooleanAlgebraIdentities) {
  const Bdd x = mgr.var(0), y = mgr.var(1), z = mgr.var(2);
  EXPECT_EQ(x & mgr.bdd_true(), x);
  EXPECT_EQ(x & mgr.bdd_false(), mgr.bdd_false());
  EXPECT_EQ(x | !x, mgr.bdd_true());
  EXPECT_EQ(x & !x, mgr.bdd_false());
  EXPECT_EQ(x ^ x, mgr.bdd_false());
  EXPECT_EQ(x ^ !x, mgr.bdd_true());
  // Canonicity: algebraically equal expressions share a node.
  EXPECT_EQ((x & y) | (x & z), x & (y | z));
  EXPECT_EQ(!(x & y), (!x) | (!y));
  EXPECT_EQ(x ^ y, (x & (!y)) | ((!x) & y));
}

TEST_F(BddTest, IteMatchesDefinition) {
  const Bdd f = mgr.var(0), g = mgr.var(1), h = mgr.var(2);
  EXPECT_EQ(mgr.ite(f, g, h), (f & g) | ((!f) & h));
  EXPECT_EQ(mgr.ite(mgr.bdd_true(), g, h), g);
  EXPECT_EQ(mgr.ite(mgr.bdd_false(), g, h), h);
  EXPECT_EQ(mgr.ite(f, mgr.bdd_true(), mgr.bdd_false()), f);
}

TEST_F(BddTest, CofactorShannon) {
  const Bdd x = mgr.var(0), y = mgr.var(1);
  const Bdd f = (x & y) | ((!x) & (!y));  // xnor
  EXPECT_EQ(mgr.cofactor(f, 0, true), y);
  EXPECT_EQ(mgr.cofactor(f, 0, false), !y);
  // Shannon expansion reconstructs f.
  const Bdd rebuilt = mgr.ite(x, mgr.cofactor(f, 0, true), mgr.cofactor(f, 0, false));
  EXPECT_EQ(rebuilt, f);
  // Cofactor by a variable outside the support is the identity.
  EXPECT_EQ(mgr.cofactor(f, 5, true), f);
}

TEST_F(BddTest, ExistsForall) {
  const Bdd x = mgr.var(0), y = mgr.var(1);
  const Bdd f = x & y;
  EXPECT_EQ(mgr.exists(f, {0}), y);
  EXPECT_EQ(mgr.exists(f, {0, 1}), mgr.bdd_true());
  EXPECT_EQ(mgr.forall(f, {0}), mgr.bdd_false());
  const Bdd g = x | y;
  EXPECT_EQ(mgr.forall(g, {0}), y);
  // Quantifying a variable not in the support is the identity.
  EXPECT_EQ(mgr.exists(f, {7}), f);
  EXPECT_EQ(mgr.exists(f, {}), f);
}

TEST_F(BddTest, AndExistsEqualsComposition) {
  const Bdd x = mgr.var(0), y = mgr.var(1), z = mgr.var(2), w = mgr.var(3);
  const Bdd f = (x | y) & (z | w);
  const Bdd g = mgr.ite(x, z, !w);
  const std::vector<BddVar> vars{0, 2};
  EXPECT_EQ(mgr.and_exists(f, g, vars), mgr.exists(f & g, vars));
  EXPECT_EQ(mgr.and_exists(f, mgr.bdd_true(), vars), mgr.exists(f, vars));
  EXPECT_EQ(mgr.and_exists(f, mgr.bdd_false(), vars), mgr.bdd_false());
}

TEST_F(BddTest, RenameSwapsVariables) {
  const Bdd x = mgr.var(0), y = mgr.var(1);
  std::vector<BddVar> map(mgr.num_vars());
  for (BddVar v = 0; v < mgr.num_vars(); ++v) map[v] = v;
  map[0] = 1;
  map[1] = 0;
  EXPECT_EQ(mgr.rename(x, map), y);
  EXPECT_EQ(mgr.rename(x & !y, map), y & !x);
  // Identity map is the identity.
  std::vector<BddVar> id(mgr.num_vars());
  for (BddVar v = 0; v < mgr.num_vars(); ++v) id[v] = v;
  EXPECT_EQ(mgr.rename(x & y, id), x & y);
}

TEST_F(BddTest, RenameShiftNonAdjacent) {
  // Map var i -> i+4 (current-state to next-state style shift).
  const Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  std::vector<BddVar> map(mgr.num_vars());
  for (BddVar v = 0; v < mgr.num_vars(); ++v) map[v] = v;
  map[0] = 4;
  map[1] = 5;
  map[2] = 6;
  const Bdd g = mgr.rename(f, map);
  EXPECT_EQ(g, (mgr.var(4) & mgr.var(5)) | mgr.var(6));
}

TEST_F(BddTest, CubeAndEval) {
  const Bdd c = mgr.cube({{0, true}, {3, false}, {5, true}});
  std::vector<bool> a(8, false);
  a[0] = true;
  a[5] = true;
  EXPECT_TRUE(mgr.eval(c, a));
  a[3] = true;
  EXPECT_FALSE(mgr.eval(c, a));
  EXPECT_EQ(mgr.cube({}), mgr.bdd_true());
}

TEST_F(BddTest, SupportIsExact) {
  const Bdd f = (mgr.var(1) & mgr.var(4)) ^ mgr.var(6);
  const std::vector<BddVar> s = mgr.support(f);
  EXPECT_EQ(s, (std::vector<BddVar>{1, 4, 6}));
  // x & !x cancels: support of constants is empty.
  EXPECT_TRUE(mgr.support(mgr.bdd_true()).empty());
}

TEST_F(BddTest, SatCount) {
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true(), 8), 256.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false(), 8), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0), 8), 128.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0) & mgr.var(1), 8), 64.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0) | mgr.var(1), 8), 192.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0) ^ mgr.var(7), 8), 128.0);
}

TEST_F(BddTest, AnyCubeSatisfies) {
  const Bdd f = (mgr.var(0) & !mgr.var(2)) | (mgr.var(3) & mgr.var(5));
  const auto lits = mgr.any_cube(f);
  ASSERT_FALSE(lits.empty());
  std::vector<bool> a(8, false);
  for (const BddLit& l : lits) a[l.var] = l.positive;
  EXPECT_TRUE(mgr.eval(f, a));
}

TEST_F(BddTest, ShortestCubeIsFattest) {
  // f = (x0 & x1 & x2) | x5 : the fattest cube is the single literal x5.
  const Bdd f = (mgr.var(0) & mgr.var(1) & mgr.var(2)) | mgr.var(5);
  const auto lits = mgr.shortest_cube(f);
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_EQ(lits[0].var, 5u);
  EXPECT_TRUE(lits[0].positive);
  // The shortest cube must be an implicant: all completions satisfy f.
  std::vector<bool> a(8);
  for (int pattern = 0; pattern < 256; ++pattern) {
    for (int i = 0; i < 8; ++i) a[static_cast<size_t>(i)] = (pattern >> i) & 1;
    bool in_cube = true;
    for (const BddLit& l : lits) in_cube &= a[l.var] == l.positive;
    if (in_cube) {
      EXPECT_TRUE(mgr.eval(f, a));
    }
  }
}

TEST_F(BddTest, ShortestCubeOnTightFunction) {
  // Parity has no short implicant: every cube has n literals.
  const Bdd f = mgr.var(0) ^ mgr.var(1) ^ mgr.var(2);
  EXPECT_EQ(mgr.shortest_cube(f).size(), 3u);
}

TEST_F(BddTest, NodeCount) {
  EXPECT_EQ(mgr.node_count(mgr.bdd_true()), 0u);
  EXPECT_EQ(mgr.node_count(mgr.var(0)), 1u);
  const Bdd f = mgr.var(0) ^ mgr.var(1) ^ mgr.var(2);
  EXPECT_EQ(mgr.node_count(f), 5u);  // parity: 1 + 2 + 2
}

TEST_F(BddTest, GarbageCollectReclaimsDeadNodes) {
  const size_t base = mgr.live_nodes();
  {
    Bdd f = mgr.var(0);
    for (int i = 1; i < 8; ++i) f = f ^ mgr.var(static_cast<BddVar>(i));
    EXPECT_GT(mgr.live_nodes(), base);
  }
  mgr.garbage_collect();
  // Everything built in the block is unreferenced now; only literal nodes
  // may survive (they were created with handles that also died... they are
  // dead too). Live count returns to the baseline.
  EXPECT_LE(mgr.live_nodes(), base + 0u);
  mgr.check_integrity();
}

TEST_F(BddTest, HandlesSurviveGc) {
  Bdd keep = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  { Bdd junk = mgr.var(3) ^ mgr.var(4); (void)junk; }
  mgr.garbage_collect();
  mgr.check_integrity();
  // keep is still usable after GC.
  EXPECT_EQ(keep & mgr.bdd_true(), keep);
  EXPECT_EQ(mgr.support(keep), (std::vector<BddVar>{0, 1, 2}));
}

TEST_F(BddTest, ImpliesAndIntersects) {
  const Bdd x = mgr.var(0), y = mgr.var(1);
  EXPECT_TRUE((x & y).implies(x));
  EXPECT_FALSE(x.implies(x & y));
  EXPECT_TRUE(x.intersects(y));
  EXPECT_FALSE(x.intersects(!x));
  EXPECT_EQ(x.diff(y), x & !y);
}

TEST(BddMgrTest, NewVarExtendsOrder) {
  BddMgr mgr(0);
  EXPECT_EQ(mgr.num_vars(), 0u);
  const BddVar a = mgr.new_var();
  const BddVar b = mgr.new_var();
  EXPECT_EQ(mgr.level_of(a), 0u);
  EXPECT_EQ(mgr.level_of(b), 1u);
  EXPECT_EQ(mgr.var_at_level(0), a);
  const Bdd f = mgr.var(a) & mgr.var(b);
  EXPECT_EQ(mgr.node_count(f), 2u);
}

}  // namespace
}  // namespace rfn
