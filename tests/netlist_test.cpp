// Unit tests for the core netlist representation and cube helpers.

#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace rfn {
namespace {

TEST(Netlist, AddAndQueryGates) {
  Netlist n;
  const GateId a = n.add(GateType::Input);
  const GateId b = n.add(GateType::Input);
  const GateId g = n.add(GateType::And, {a, b});
  EXPECT_EQ(n.size(), 3u);
  EXPECT_TRUE(n.is_input(a));
  EXPECT_TRUE(n.is_comb(g));
  EXPECT_EQ(n.fanins(g).size(), 2u);
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_gates(), 1u);
  n.check();
}

TEST(Netlist, RegisterDataPatching) {
  Netlist n;
  const GateId r = n.add(GateType::Reg, {}, Tri::T);
  const GateId inv = n.add(GateType::Not, {r});
  n.set_reg_data(r, inv);
  EXPECT_TRUE(n.is_reg(r));
  EXPECT_EQ(n.reg_data(r), inv);
  EXPECT_EQ(n.reg_init(r), Tri::T);
  n.check();
}

TEST(Netlist, NamesAndOutputs) {
  Netlist n;
  const GateId a = n.add(GateType::Input);
  n.set_name(a, "req");
  EXPECT_EQ(n.find("req"), a);
  EXPECT_EQ(n.find("nope"), kNullGate);
  EXPECT_EQ(n.name(a), "req");
  n.add_output("prop", a);
  EXPECT_EQ(n.output("prop"), a);
  EXPECT_EQ(n.output("other"), kNullGate);
}

TEST(Netlist, NumGatesExcludesSourcesAndConstants) {
  Netlist n;
  const GateId a = n.add(GateType::Input);
  n.add(GateType::Const0);
  const GateId r = n.add(GateType::Reg);
  n.set_reg_data(r, a);
  n.add(GateType::Not, {a});
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.num_regs(), 1u);
}

TEST(EvalGate3, BasicTruthTables) {
  const Tri F = Tri::F, T = Tri::T, X = Tri::X;
  {
    Tri v[2] = {T, X};
    EXPECT_EQ(eval_gate3(GateType::And, v, 2), X);
    v[0] = F;
    EXPECT_EQ(eval_gate3(GateType::And, v, 2), F);  // controlling value beats X
    v[0] = T;
    v[1] = T;
    EXPECT_EQ(eval_gate3(GateType::And, v, 2), T);
  }
  {
    Tri v[2] = {X, T};
    EXPECT_EQ(eval_gate3(GateType::Or, v, 2), T);
    v[1] = F;
    EXPECT_EQ(eval_gate3(GateType::Or, v, 2), X);
  }
  {
    Tri v[1] = {X};
    EXPECT_EQ(eval_gate3(GateType::Not, v, 1), X);
    v[0] = F;
    EXPECT_EQ(eval_gate3(GateType::Not, v, 1), T);
  }
  {
    Tri v[2] = {T, X};
    EXPECT_EQ(eval_gate3(GateType::Xor, v, 2), X);
    v[1] = T;
    EXPECT_EQ(eval_gate3(GateType::Xor, v, 2), F);
    EXPECT_EQ(eval_gate3(GateType::Xnor, v, 2), T);
  }
}

TEST(EvalGate3, MuxIsXOptimistic) {
  const Tri F = Tri::F, T = Tri::T, X = Tri::X;
  // sel=X but both data inputs agree -> defined output.
  Tri v[3] = {X, T, T};
  EXPECT_EQ(eval_gate3(GateType::Mux, v, 3), T);
  Tri w[3] = {X, F, T};
  EXPECT_EQ(eval_gate3(GateType::Mux, w, 3), X);
  Tri u[3] = {T, F, T};
  EXPECT_EQ(eval_gate3(GateType::Mux, u, 3), T);
  Tri z[3] = {F, F, T};
  EXPECT_EQ(eval_gate3(GateType::Mux, z, 3), F);
}

TEST(EvalGate3, WideGates) {
  std::vector<Tri> v(10, Tri::T);
  EXPECT_EQ(eval_gate3(GateType::And, v.data(), v.size()), Tri::T);
  v[7] = Tri::X;
  EXPECT_EQ(eval_gate3(GateType::And, v.data(), v.size()), Tri::X);
  v[3] = Tri::F;
  EXPECT_EQ(eval_gate3(GateType::And, v.data(), v.size()), Tri::F);
  EXPECT_EQ(eval_gate3(GateType::Nand, v.data(), v.size()), Tri::T);
  EXPECT_EQ(eval_gate3(GateType::Or, v.data(), v.size()), Tri::T);
}

TEST(CubeHelpers, LookupAddSubsume) {
  Cube c;
  EXPECT_TRUE(cube_add(c, {3, true}));
  EXPECT_TRUE(cube_add(c, {5, false}));
  EXPECT_EQ(cube_lookup(c, 3), Tri::T);
  EXPECT_EQ(cube_lookup(c, 5), Tri::F);
  EXPECT_EQ(cube_lookup(c, 9), Tri::X);
  // Conflicting literal is rejected and the cube is unchanged.
  EXPECT_FALSE(cube_add(c, {3, false}));
  EXPECT_EQ(c.size(), 2u);
  // Duplicate same-polarity literal is a no-op success.
  EXPECT_TRUE(cube_add(c, {3, true}));
  EXPECT_EQ(c.size(), 2u);

  Cube sub{{3, true}};
  EXPECT_TRUE(cube_subsumes(c, sub));
  Cube other{{3, true}, {7, true}};
  EXPECT_FALSE(cube_subsumes(c, other));
  EXPECT_TRUE(cube_subsumes(c, {}));
}

TEST(NetlistDeathTest, CombinationalCycleIsRejected) {
  Netlist n;
  const GateId a = n.add(GateType::Input);
  // Build a cycle: g1 = and(a, g2), g2 = buf(g1). Constructed by patching
  // indices manually through a register-free loop.
  const GateId g1 = n.add(GateType::And, {a, a});
  const GateId g2 = n.add(GateType::Buf, {g1});
  // Introduce the cycle by re-adding with a forward reference.
  Netlist m;
  const GateId ma = m.add(GateType::Input);
  (void)ma;
  (void)g2;
  // We cannot forge dangling fanins through the public API, so validate the
  // checker on the legal netlist instead.
  n.check();
}

}  // namespace
}  // namespace rfn
