// Unit + property tests for the combinational justification ATPG.

#include "atpg/comb_atpg.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sim/sim3.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

// Validates a Sat result: replaying the free assignment through 3-valued
// simulation must reproduce every target literal.
void check_model(const Netlist& n, const Cube& targets, const CombAtpgResult& res) {
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  Sim3 sim(n);
  for (GateId g : n.regs()) sim.set(g, Tri::X);
  for (const Literal& lit : res.free_assignment) sim.set(lit.signal, tri_of(lit.value));
  sim.eval();
  for (const Literal& lit : targets) {
    EXPECT_EQ(sim.value(lit.signal), tri_of(lit.value))
        << "target " << lit.signal << " not satisfied";
  }
}

TEST(CombAtpg, SimpleJustification) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId d = b.input("d");
  const GateId g = b.and_(b.or_(a, c), b.not_(d));
  Netlist n = b.take();
  const Cube targets{{g, true}};
  const CombAtpgResult res = justify(n, targets);
  check_model(n, targets, res);
}

TEST(CombAtpg, UnsatConstantConflict) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId g = b.and_(a, b.not_(a));  // folds to const0
  Netlist n = b.take();
  const CombAtpgResult res = justify(n, {{g, true}});
  EXPECT_EQ(res.status, AtpgStatus::Unsat);
}

TEST(CombAtpg, UnsatStructural) {
  // g = a & c ; h = !a & c ; both true is unsatisfiable, and the gates do
  // not fold away because the netlist is built without sharing a & !a.
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g = b.and_(a, c);
  const GateId h = b.and_(b.not_(a), c);
  Netlist n = b.take();
  const CombAtpgResult res = justify(n, {{g, true}, {h, true}});
  EXPECT_EQ(res.status, AtpgStatus::Unsat);
}

TEST(CombAtpg, RegistersAreFreeSignals) {
  NetBuilder b;
  const GateId r = b.reg("r");
  const GateId a = b.input("a");
  b.set_next(r, a);
  const GateId g = b.xor_(r, a);
  Netlist n = b.take();
  const Cube targets{{g, true}};
  const CombAtpgResult res = justify(n, targets);
  check_model(n, targets, res);
  // The model must assign r and a opposite values.
  EXPECT_EQ(cube_lookup(res.free_assignment, r) != cube_lookup(res.free_assignment, a),
            true);
}

TEST(CombAtpg, RespectsBacktrackLimit) {
  // XOR chain parity target: trivially satisfiable but forces decisions;
  // with a zero backtrack budget an Abort can only happen on genuinely
  // conflicting instances, so craft one: parity(x) == 1 and parity(x) == 0.
  NetBuilder b;
  std::vector<GateId> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(b.input("x" + std::to_string(i)));
  GateId parity = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) parity = b.xor_(parity, xs[i]);
  const GateId dup = b.or_(parity, xs[0]);
  Netlist n = b.take();
  AtpgOptions opt;
  opt.max_backtracks = 0;
  const CombAtpgResult res = justify(n, {{parity, true}, {dup, false}}, opt);
  // parity=1, dup=0 requires x0=0 and parity=0: conflict. Either the engine
  // proves Unsat without backtracking (pure implication) or aborts.
  EXPECT_NE(res.status, AtpgStatus::Sat);
}

// Property: on random netlists, ATPG Sat answers re-simulate correctly and
// Unsat answers agree with exhaustive enumeration over the inputs.
class CombAtpgRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CombAtpgRandom, AgreesWithExhaustiveEnumeration) {
  Rng rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    NetBuilder b;
    std::vector<GateId> pool;
    const size_t num_inputs = 2 + rng.below(6);  // <= 7 inputs: enumerable
    for (size_t i = 0; i < num_inputs; ++i)
      pool.push_back(b.input("i" + std::to_string(i)));
    for (int i = 0; i < 25; ++i) {
      const GateId x = pool[rng.below(pool.size())];
      const GateId y = pool[rng.below(pool.size())];
      const GateId z = pool[rng.below(pool.size())];
      switch (rng.below(6)) {
        case 0: pool.push_back(b.and_(x, y)); break;
        case 1: pool.push_back(b.or_(x, y)); break;
        case 2: pool.push_back(b.xor_(x, y)); break;
        case 3: pool.push_back(b.not_(x)); break;
        case 4: pool.push_back(b.mux(x, y, z)); break;
        case 5: pool.push_back(b.nand_(x, y)); break;
      }
    }
    Netlist n = b.take();

    // Random target cube over 1-3 internal signals.
    Cube targets;
    const size_t want = 1 + rng.below(3);
    for (size_t t = 0; t < want; ++t)
      cube_add(targets, {pool[num_inputs + rng.below(pool.size() - num_inputs)],
                         rng.flip()});

    const CombAtpgResult res = justify(n, targets);
    ASSERT_NE(res.status, AtpgStatus::Abort);

    // Exhaustive ground truth via simulation.
    Sim3 sim(n);
    bool sat = false;
    for (uint32_t p = 0; p < (1u << num_inputs) && !sat; ++p) {
      size_t idx = 0;
      for (GateId in : n.inputs()) sim.set(in, tri_of((p >> idx++) & 1));
      sim.eval();
      bool all = true;
      for (const Literal& lit : targets) all &= sim.value(lit.signal) == tri_of(lit.value);
      sat |= all;
    }
    ASSERT_EQ(res.status == AtpgStatus::Sat, sat) << "round " << round;
    if (res.status == AtpgStatus::Sat) check_model(n, targets, res);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombAtpgRandom, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace rfn
