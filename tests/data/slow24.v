// Deterministically slow design for the resource-watchdog tests: a 24-bit
// free-running counter whose property signal fires only at the terminal
// count. Every engine needs ~2^24 steps of work (BDD fixpoint: that many
// image steps; ATPG/simulation: traces of that depth), so a run under a
// small wall or BDD-node budget reliably outlives the watchdog's poll and
// trips it, while the BDDs themselves stay small enough that nothing else
// fails first.
module slow24(clk, tick);
  input clk;
  input tick;
  reg [23:0] cnt = 0;
  reg bad = 0;
  always @(posedge clk) begin
    cnt <= cnt + 1;
    bad <= bad | (cnt == 16777215);
  end
endmodule
