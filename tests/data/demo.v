// Committed demo design used by the CLI smoke tests and the README.
// A bounded counter with a watchdog: cnt wraps at 5, so cnt==7 never
// happens and bad_q stays low (the property HOLDS).
module demo(clk, req, bad);
  input clk; input req;
  output bad;
  reg [2:0] cnt = 0;
  reg bad_q = 0;
  always @(posedge clk) begin
    if (req) begin
      if (cnt == 5) cnt <= 0;
      else cnt <= cnt + 1;
    end
    bad_q <= bad_q | (cnt == 7);
  end
  assign bad = bad_q;
endmodule
