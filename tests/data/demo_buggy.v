// The same counter with the wrap check off by two: cnt reaches 7 and the
// watchdog fires (the property is VIOLATED).
module demo_buggy(clk, req, bad);
  input clk; input req;
  output bad;
  reg [2:0] cnt = 0;
  reg bad_q = 0;
  always @(posedge clk) begin
    if (req) begin
      if (cnt == 7) cnt <= 0;
      else cnt <= cnt + 1;
    end
    bad_q <= bad_q | (cnt == 7);
  end
  assign bad = bad_q;
endmodule
