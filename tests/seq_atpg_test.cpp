// Tests for time-frame expansion and sequential ATPG.

#include "atpg/seq_atpg.hpp"

#include <gtest/gtest.h>

#include "atpg/unroll.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

// Validates a Sat trace by 3-valued replay: drive the recorded inputs from
// the initial state and check `signal` reaches `value` at the final cycle.
void check_trace(const Netlist& n, const Trace& t, GateId signal, bool value) {
  Sim3 sim(n);
  sim.load_initial_state();
  for (size_t cycle = 0; cycle < t.steps.size(); ++cycle) {
    sim.clear_inputs();
    // X-init registers at cycle 1 take the trace's chosen values.
    if (cycle == 0)
      for (const Literal& lit : t.steps[0].state)
        sim.set(lit.signal, tri_of(lit.value));
    sim.set_cube(t.steps[cycle].inputs);
    sim.eval();
    if (cycle + 1 < t.steps.size()) sim.step();
  }
  EXPECT_EQ(sim.value(signal), tri_of(value));
}

TEST(Unroll, CounterAliasesAndInitConstants) {
  NetBuilder b;
  const Word cnt = b.reg_word("cnt", 3, 0);
  b.set_next_word(cnt, b.inc_word(cnt));
  const GateId at5 = b.eq_const(cnt, 5);
  b.output("at5", at5);
  Netlist n = b.take();

  std::vector<std::vector<GateId>> needed(6);
  needed[5] = {at5};
  const Unrolled u = unroll_cone(n, 6, needed);
  // Frame-1 registers are constants (binary init).
  for (size_t i = 0; i < 3; ++i) {
    const GateId g = u.at(1, cnt[i]);
    ASSERT_NE(g, kNullGate);
    EXPECT_EQ(u.net.type(g), GateType::Const0);
  }
  // The target signal exists in the last frame.
  EXPECT_NE(u.at(6, at5), kNullGate);
}

TEST(Unroll, ConeRestrictionSkipsUnneededFrames) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r");
  b.set_next(r, in);
  const GateId other = b.reg("other");
  b.set_next(other, b.not_(other));
  Netlist n = b.take();
  std::vector<std::vector<GateId>> needed(3);
  needed[2] = {r};
  const Unrolled u = unroll_cone(n, 3, needed);
  // `other` is never needed.
  for (size_t f = 1; f <= 3; ++f) EXPECT_EQ(u.at(f, other), kNullGate);
  // r needed at frame 3 -> in needed at frame 2 only.
  EXPECT_EQ(u.at(3, in), kNullGate);
  EXPECT_NE(u.at(2, in), kNullGate);
}

TEST(SeqAtpg, CounterReachesFive) {
  NetBuilder b;
  const Word cnt = b.reg_word("cnt", 3, 0);
  b.set_next_word(cnt, b.inc_word(cnt));
  const GateId at5 = b.eq_const(cnt, 5);
  Netlist n = b.take();

  // Counter hits 5 at cycle 6 (value 0 at cycle 1) and at no earlier cycle.
  const SeqAtpgResult hit = reach_target(n, 6, at5, true);
  ASSERT_EQ(hit.status, AtpgStatus::Sat);
  check_trace(n, hit.trace, at5, true);

  const SeqAtpgResult miss = reach_target(n, 4, at5, true);
  EXPECT_EQ(miss.status, AtpgStatus::Unsat);
}

TEST(SeqAtpg, InputDrivenReachability) {
  // r latches the input; target r=1 at cycle 3 requires in=1 at cycle 2.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r", Tri::F);
  b.set_next(r, in);
  Netlist n = b.take();
  const SeqAtpgResult res = reach_target(n, 3, r, true);
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  check_trace(n, res.trace, r, true);
  EXPECT_EQ(cube_lookup(res.trace.steps[1].inputs, in), Tri::T);
}

TEST(SeqAtpg, InitialValueConflictIsUnsat) {
  NetBuilder b;
  const GateId r = b.reg("r", Tri::F);
  b.set_next(r, r);
  Netlist n = b.take();
  // r stuck at 0: asking for r=1 at any cycle is Unsat.
  EXPECT_EQ(reach_target(n, 1, r, true).status, AtpgStatus::Unsat);
  EXPECT_EQ(reach_target(n, 4, r, true).status, AtpgStatus::Unsat);
}

TEST(SeqAtpg, XInitRegistersAreFree) {
  NetBuilder b;
  const GateId r = b.reg("r", Tri::X);
  b.set_next(r, r);
  Netlist n = b.take();
  const SeqAtpgResult res = reach_target(n, 2, r, true);
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  // The trace must pin the initial value of r to 1.
  EXPECT_EQ(cube_lookup(res.trace.steps[0].state, r), Tri::T);
}

TEST(SeqAtpg, ConstraintCubesGuideAndRestrict) {
  // Two free inputs; target xor at cycle 2; constrain in0=0 at cycle 1... the
  // constraint forces the solution through in1.
  NetBuilder b;
  const GateId in0 = b.input("in0");
  const GateId in1 = b.input("in1");
  const GateId r = b.reg("r", Tri::F);
  b.set_next(r, b.or_(in0, in1));
  Netlist n = b.take();

  std::vector<Cube> cubes(2);
  cubes[0] = {{in0, false}};
  cubes[1] = {{r, true}};
  const SeqAtpgResult res = solve_cycle_cubes(n, cubes);
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  EXPECT_EQ(cube_lookup(res.trace.steps[0].inputs, in0), Tri::F);
  EXPECT_EQ(cube_lookup(res.trace.steps[0].inputs, in1), Tri::T);

  // Contradictory guidance: also force in1=0 -> Unsat.
  cubes[0] = {{in0, false}, {in1, false}};
  EXPECT_EQ(solve_cycle_cubes(n, cubes).status, AtpgStatus::Unsat);
}

TEST(SeqAtpg, CrossCycleAliasConflict) {
  // r at cycle 2 aliases in at cycle 1; demanding r=1 @2 and in=0 @1 must be
  // Unsat via flat-net conflict.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r", Tri::F);
  b.set_next(r, in);
  Netlist n = b.take();
  std::vector<Cube> cubes(2);
  cubes[0] = {{in, false}};
  cubes[1] = {{r, true}};
  EXPECT_EQ(solve_cycle_cubes(n, cubes).status, AtpgStatus::Unsat);
}

// Gated counter used by the depth tests: increments only while en=1.
Netlist make_gated_counter(size_t bits, uint64_t target_value, GateId* en_out,
                           GateId* hit_out) {
  NetBuilder b;
  const GateId en = b.input("en");
  const Word cnt = b.reg_word("cnt", bits, 0);
  b.set_next_word(cnt, b.mux_word(en, cnt, b.inc_word(cnt)));
  const GateId hit = b.eq_const(cnt, target_value);
  Netlist n = b.take();
  *en_out = n.find("en");
  *hit_out = hit;
  return n;
}

TEST(SeqAtpg, ModerateDepthGatedCounter) {
  // Reaching 12 needs 13 cycles with enable high throughout.
  GateId en, hit;
  Netlist n = make_gated_counter(4, 12, &en, &hit);
  const SeqAtpgResult res = reach_target(n, 13, hit, true);
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  check_trace(n, res.trace, hit, true);
  for (size_t c = 0; c + 1 < res.trace.steps.size(); ++c)
    EXPECT_EQ(cube_lookup(res.trace.steps[c].inputs, en), Tri::T) << "cycle " << c;
  EXPECT_EQ(reach_target(n, 12, hit, true).status, AtpgStatus::Unsat);
}

TEST(SeqAtpg, GuidanceEnablesDeepSearch) {
  // The paper's Step 3 rationale: unguided sequential ATPG drowns on deep
  // targets, while cycle-by-cycle constraint cubes make the same search
  // trivial ("sequential ATPG with guidance can search for an order of
  // magnitude more cycles").
  GateId en, hit;
  Netlist n = make_gated_counter(6, 40, &en, &hit);
  const size_t depth = 41;

  AtpgOptions tight;
  tight.max_backtracks = 2000;
  const SeqAtpgResult unguided = reach_target(n, depth, hit, true, {}, tight);
  EXPECT_EQ(unguided.status, AtpgStatus::Abort);

  // Guidance pins the enable at every cycle — the kind of cube an abstract
  // error trace provides.
  std::vector<Cube> guidance(depth);
  for (size_t c = 0; c + 1 < depth; ++c) guidance[c] = {{en, true}};
  const SeqAtpgResult guided = reach_target(n, depth, hit, true, guidance, tight);
  ASSERT_EQ(guided.status, AtpgStatus::Sat);
  check_trace(n, guided.trace, hit, true);
  EXPECT_LT(guided.backtracks, unguided.backtracks);
}

}  // namespace
}  // namespace rfn
