// Property tests: random expression forests cross-checked against explicit
// truth tables, canonicity, quantifier semantics, and cube extraction — with
// and without reordering in the loop.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

constexpr uint32_t kVars = 10;

// A function represented both as a BDD and as an explicit truth table.
struct Checked {
  Bdd bdd;
  std::vector<bool> tt;  // size 2^kVars
};

std::vector<bool> tt_var(uint32_t v) {
  std::vector<bool> tt(1u << kVars);
  for (uint32_t p = 0; p < tt.size(); ++p) tt[p] = (p >> v) & 1;
  return tt;
}

class BddRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddRandomTest, RandomExpressionsMatchTruthTables) {
  BddMgr mgr(kVars);
  Rng rng(GetParam());

  std::vector<Checked> pool;
  for (uint32_t v = 0; v < kVars; ++v) pool.push_back({mgr.var(v), tt_var(v)});
  pool.push_back({mgr.bdd_true(), std::vector<bool>(1u << kVars, true)});
  pool.push_back({mgr.bdd_false(), std::vector<bool>(1u << kVars, false)});

  for (int step = 0; step < 120; ++step) {
    const Checked& a = pool[rng.below(pool.size())];
    const Checked& b = pool[rng.below(pool.size())];
    const Checked& c = pool[rng.below(pool.size())];
    Checked r;
    switch (rng.below(6)) {
      case 0: {
        r.bdd = a.bdd & b.bdd;
        r.tt.resize(a.tt.size());
        for (size_t i = 0; i < r.tt.size(); ++i) r.tt[i] = a.tt[i] && b.tt[i];
        break;
      }
      case 1: {
        r.bdd = a.bdd | b.bdd;
        r.tt.resize(a.tt.size());
        for (size_t i = 0; i < r.tt.size(); ++i) r.tt[i] = a.tt[i] || b.tt[i];
        break;
      }
      case 2: {
        r.bdd = a.bdd ^ b.bdd;
        r.tt.resize(a.tt.size());
        for (size_t i = 0; i < r.tt.size(); ++i) r.tt[i] = a.tt[i] != b.tt[i];
        break;
      }
      case 3: {
        r.bdd = !a.bdd;
        r.tt.resize(a.tt.size());
        for (size_t i = 0; i < r.tt.size(); ++i) r.tt[i] = !a.tt[i];
        break;
      }
      case 4: {
        r.bdd = mgr.ite(a.bdd, b.bdd, c.bdd);
        r.tt.resize(a.tt.size());
        for (size_t i = 0; i < r.tt.size(); ++i) r.tt[i] = a.tt[i] ? b.tt[i] : c.tt[i];
        break;
      }
      case 5: {
        const BddVar v = static_cast<BddVar>(rng.below(kVars));
        r.bdd = mgr.exists(a.bdd, {v});
        r.tt.resize(a.tt.size());
        for (uint32_t i = 0; i < r.tt.size(); ++i)
          r.tt[i] = a.tt[i & ~(1u << v)] || a.tt[i | (1u << v)];
        break;
      }
    }
    pool.push_back(std::move(r));

    // Periodically reorder to exercise reordering under live handles.
    if (step % 40 == 39) {
      mgr.reorder_sift();
      mgr.check_integrity();
    }
  }

  // Verify every pool entry on 200 random assignments plus canonicity
  // (equal truth tables <=> same node).
  std::vector<bool> a(kVars);
  for (int round = 0; round < 200; ++round) {
    const uint32_t p = static_cast<uint32_t>(rng.below(1u << kVars));
    for (uint32_t v = 0; v < kVars; ++v) a[v] = (p >> v) & 1;
    for (const Checked& e : pool) {
      ASSERT_EQ(mgr.eval(e.bdd, a), e.tt[p]);
    }
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      const bool same_tt = pool[i].tt == pool[j].tt;
      const bool same_node = pool[i].bdd == pool[j].bdd;
      ASSERT_EQ(same_tt, same_node) << "canonicity violated between " << i << "," << j;
    }
  }

  // sat_count agrees with the truth table popcount.
  for (const Checked& e : pool) {
    size_t ones = 0;
    for (bool bit : e.tt) ones += bit;
    ASSERT_DOUBLE_EQ(mgr.sat_count(e.bdd, kVars), static_cast<double>(ones));
  }

  // shortest_cube is an implicant and no longer than any_cube.
  for (const Checked& e : pool) {
    if (e.bdd.is_false() || e.bdd.is_true()) continue;
    const auto sc = mgr.shortest_cube(e.bdd);
    const auto ac = mgr.any_cube(e.bdd);
    ASSERT_LE(sc.size(), ac.size());
    for (uint32_t p = 0; p < (1u << kVars); ++p) {
      bool in_cube = true;
      for (const BddLit& l : sc) in_cube &= (((p >> l.var) & 1) != 0) == l.positive;
      if (in_cube) {
        ASSERT_TRUE(e.tt[p]) << "shortest_cube not an implicant";
      }
    }
  }

  mgr.check_integrity();
  mgr.garbage_collect();
  mgr.check_integrity();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(BddStress, DeepAndExistsChainsWithAutoReorder) {
  BddMgr mgr(24);
  mgr.set_auto_reorder(true);
  Rng rng(7);
  // Random conjunction of clauses, quantified progressively — a miniature
  // image-computation workload.
  Bdd acc = mgr.bdd_true();
  for (int i = 0; i < 60; ++i) {
    Bdd clause = mgr.bdd_false();
    for (int j = 0; j < 3; ++j) {
      const BddVar v = static_cast<BddVar>(rng.below(24));
      clause |= rng.flip() ? mgr.var(v) : mgr.nvar(v);
    }
    acc &= clause;
  }
  const Bdd q = mgr.exists(acc, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(acc.implies(q));
  for (BddVar v : {0u, 1u, 2u, 3u, 4u, 5u}) {
    const auto sup = mgr.support(q);
    EXPECT_TRUE(std::find(sup.begin(), sup.end(), v) == sup.end());
  }
  mgr.check_integrity();
}

}  // namespace
}  // namespace rfn
