// Tests for dynamic variable reordering: in-place level swap, sifting, and
// order save/restore. Every test validates both semantics preservation (via
// eval over all assignments) and internal table integrity.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"

namespace rfn {

// Peer with access to the private swap primitive.
class BddReorderTestPeer {
 public:
  static size_t swap_levels(BddMgr& mgr, uint32_t lvl) { return mgr.swap_levels(lvl); }
};

namespace {

// Evaluates f over all 2^n assignments and returns the truth table bits.
std::vector<bool> truth_table(BddMgr& mgr, const Bdd& f, uint32_t nvars) {
  std::vector<bool> tt;
  std::vector<bool> a(nvars);
  for (uint32_t p = 0; p < (1u << nvars); ++p) {
    for (uint32_t i = 0; i < nvars; ++i) a[i] = (p >> i) & 1;
    tt.push_back(mgr.eval(f, a));
  }
  return tt;
}

TEST(BddReorder, AdjacentSwapPreservesSemantics) {
  BddMgr mgr(4);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
  const Bdd g = mgr.ite(mgr.var(1), mgr.var(3), !mgr.var(0));
  const auto tt_f = truth_table(mgr, f, 4);
  const auto tt_g = truth_table(mgr, g, 4);
  for (uint32_t lvl = 0; lvl + 1 < 4; ++lvl) {
    BddReorderTestPeer::swap_levels(mgr, lvl);
    mgr.check_integrity();
    EXPECT_EQ(truth_table(mgr, f, 4), tt_f) << "after swap at level " << lvl;
    EXPECT_EQ(truth_table(mgr, g, 4), tt_g);
  }
  // Swap back in reverse and re-check.
  for (int lvl = 2; lvl >= 0; --lvl) {
    BddReorderTestPeer::swap_levels(mgr, static_cast<uint32_t>(lvl));
    mgr.check_integrity();
    EXPECT_EQ(truth_table(mgr, f, 4), tt_f);
  }
}

TEST(BddReorder, SwapUpdatesPermutation) {
  BddMgr mgr(3);
  EXPECT_EQ(mgr.var_at_level(0), 0u);
  BddReorderTestPeer::swap_levels(mgr, 0);
  EXPECT_EQ(mgr.var_at_level(0), 1u);
  EXPECT_EQ(mgr.var_at_level(1), 0u);
  EXPECT_EQ(mgr.level_of(0), 1u);
  EXPECT_EQ(mgr.level_of(1), 0u);
}

TEST(BddReorder, SiftingShrinksInterleavedComparator) {
  // f = AND_i (a_i == b_i) with order a0..a3 b0..b3 is exponential; the
  // interleaved order a0 b0 a1 b1 ... is linear. Sifting must find a
  // significantly smaller order.
  BddMgr mgr(8);  // vars 0..3 = a, 4..7 = b
  Bdd f = mgr.bdd_true();
  for (BddVar i = 0; i < 4; ++i) {
    f &= !(mgr.var(i) ^ mgr.var(i + 4));
  }
  const auto tt = truth_table(mgr, f, 8);
  const size_t before = mgr.node_count(f);
  mgr.reorder_sift();
  mgr.check_integrity();
  const size_t after = mgr.node_count(f);
  EXPECT_LT(after, before);
  EXPECT_EQ(truth_table(mgr, f, 8), tt);
}

TEST(BddReorder, SetOrderRoundTrip) {
  BddMgr mgr(5);
  const Bdd f = (mgr.var(0) | mgr.var(4)) & (mgr.var(2) ^ mgr.var(1)) & !mgr.var(3);
  const auto tt = truth_table(mgr, f, 5);
  const std::vector<BddVar> original = mgr.current_order();

  const std::vector<BddVar> reversed(original.rbegin(), original.rend());
  mgr.set_order(reversed);
  mgr.check_integrity();
  EXPECT_EQ(mgr.current_order(), reversed);
  EXPECT_EQ(truth_table(mgr, f, 5), tt);

  mgr.set_order(original);
  mgr.check_integrity();
  EXPECT_EQ(mgr.current_order(), original);
  EXPECT_EQ(truth_table(mgr, f, 5), tt);
}

TEST(BddReorder, AutoReorderTriggersAndPreservesFunctions) {
  BddMgr mgr(16);
  mgr.set_auto_reorder(true);
  // Build a deliberately bad-order function big enough to cross the initial
  // threshold: comparator over 8 pairs with blocked order.
  std::vector<Bdd> keep;
  Bdd f = mgr.bdd_true();
  for (BddVar i = 0; i < 8; ++i) f &= !(mgr.var(i) ^ mgr.var(i + 8));
  keep.push_back(f);
  // Churn to trigger housekeeping-based reordering.
  for (int round = 0; round < 50; ++round) {
    Bdd g = f;
    for (BddVar i = 0; i < 8; ++i) g |= mgr.var(i) & mgr.var(15 - i);
    keep.push_back(g);
  }
  mgr.check_integrity();
  // Functions must still be correct regardless of whether reordering fired.
  std::vector<bool> a(16, false);
  EXPECT_TRUE(mgr.eval(f, a));  // all pairs equal (0==0)
  a[0] = true;
  EXPECT_FALSE(mgr.eval(f, a));
  a[8] = true;
  EXPECT_TRUE(mgr.eval(f, a));
}

TEST(BddReorder, HandlesRemainValidAfterSift) {
  BddMgr mgr(6);
  Bdd f = (mgr.var(5) & mgr.var(0)) | (mgr.var(3) & mgr.var(1));
  Bdd g = !f;
  const auto tt_f = truth_table(mgr, f, 6);
  mgr.reorder_sift();
  EXPECT_EQ(truth_table(mgr, f, 6), tt_f);
  EXPECT_EQ(f & g, mgr.bdd_false());
  EXPECT_EQ(f | g, mgr.bdd_true());
  // New operations still canonicalize against reordered nodes.
  EXPECT_EQ(!(!f), f);
}

TEST(BddReorder, QuantificationAfterReorder) {
  BddMgr mgr(6);
  Bdd f = (mgr.var(0) & mgr.var(3)) | (mgr.var(1) & mgr.var(4));
  mgr.reorder_sift();
  const Bdd ex = mgr.exists(f, {0, 1});
  // exists x0,x1: f == x3 | x4 ... wait: (x0&x3)|(x1&x4) with x0,x1 free
  // becomes x3 | x4.
  EXPECT_EQ(ex, mgr.var(3) | mgr.var(4));
}

}  // namespace
}  // namespace rfn
