// Unit tests for structural analyses: topo order, cones, COI, BFS distances.

#include "netlist/analysis.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"

namespace rfn {
namespace {

// A small 3-stage register pipeline:
//   in -> [r1] -> not -> [r2] -> and(in2) -> [r3] -> out
struct Pipeline {
  Netlist n;
  GateId in, in2, r1, r2, r3, out;
};

Pipeline make_pipeline() {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId in2 = b.input("in2");
  const GateId r1 = b.reg("r1");
  const GateId r2 = b.reg("r2");
  const GateId r3 = b.reg("r3");
  b.set_next(r1, in);
  const GateId inv = b.not_(r1);
  b.set_next(r2, inv);
  const GateId a = b.and_(r2, in2);
  b.set_next(r3, a);
  b.output("out", r3);
  Pipeline p;
  p.in = in;
  p.in2 = in2;
  p.r1 = r1;
  p.r2 = r2;
  p.r3 = r3;
  p.out = r3;
  p.n = b.take();
  return p;
}

TEST(Analysis, TopoOrderRespectsDependencies) {
  const Pipeline p = make_pipeline();
  const std::vector<GateId> order = topo_order(p.n);
  EXPECT_EQ(order.size(), p.n.size());
  std::vector<size_t> pos(p.n.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId g = 0; g < p.n.size(); ++g) {
    if (!p.n.is_comb(g)) continue;
    for (GateId f : p.n.fanins(g)) EXPECT_LT(pos[f], pos[g]) << "gate " << g;
  }
}

TEST(Analysis, FanoutListsAreInverseOfFanins) {
  const Pipeline p = make_pipeline();
  const auto fanouts = fanout_lists(p.n);
  for (GateId g = 0; g < p.n.size(); ++g) {
    for (GateId f : p.n.fanins(g)) {
      const auto& fo = fanouts[f];
      EXPECT_NE(std::find(fo.begin(), fo.end(), g), fo.end());
    }
  }
}

TEST(Analysis, CombFaninConeStopsAtRegisters) {
  const Pipeline p = make_pipeline();
  const auto cone = comb_fanin_cone(p.n, {p.r3});
  // r3's cone root is r3 itself; through its data we do NOT traverse
  // (roots are included but not expanded past registers).
  EXPECT_TRUE(cone[p.r3]);
  EXPECT_FALSE(cone[p.r2]);

  // Cone of r3's *data input* includes the and gate, r2, in2, but stops at r2.
  const auto cone2 = comb_fanin_cone(p.n, {p.n.reg_data(p.r3)});
  EXPECT_TRUE(cone2[p.r2]);
  EXPECT_TRUE(cone2[p.in2]);
  EXPECT_FALSE(cone2[p.r1]);
  EXPECT_FALSE(cone2[p.in]);
}

TEST(Analysis, CoiCrossesRegisters) {
  const Pipeline p = make_pipeline();
  const auto mask = coi(p.n, {p.r3});
  EXPECT_TRUE(mask[p.r3]);
  EXPECT_TRUE(mask[p.r2]);
  EXPECT_TRUE(mask[p.r1]);
  EXPECT_TRUE(mask[p.in]);
  EXPECT_TRUE(mask[p.in2]);
  const auto regs = coi_registers(p.n, {p.r3});
  EXPECT_EQ(regs.size(), 3u);

  // COI of r1 is just r1 and in.
  const auto regs1 = coi_registers(p.n, {p.r1});
  EXPECT_EQ(regs1.size(), 1u);
}

TEST(Analysis, CoiIgnoresUnrelatedLogic) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r");
  b.set_next(r, in);
  const GateId unrelated = b.reg("u");
  b.set_next(unrelated, b.not_(unrelated));
  Netlist n = b.take();
  const auto regs = coi_registers(n, {r});
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0], r);
}

TEST(Analysis, SupportRegistersAndInputs) {
  const Pipeline p = make_pipeline();
  const GateId and_gate = p.n.reg_data(p.r3);
  const auto regs = support_registers(p.n, {and_gate});
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0], p.r2);
  const auto ins = support_inputs(p.n, {and_gate});
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0], p.in2);
}

TEST(Analysis, RegisterBfsDistance) {
  const Pipeline p = make_pipeline();
  // Roots = r3's data input cone: r2 at distance 1, r1 at 2; r3 unreachable
  // (nothing feeds back).
  const auto dist = register_bfs_distance(p.n, {p.n.reg_data(p.r3)});
  EXPECT_EQ(dist[p.r2], 1);
  EXPECT_EQ(dist[p.r1], 2);
  EXPECT_EQ(dist[p.r3], -1);
}

TEST(Analysis, ClosestRegistersOrderAndCap) {
  const Pipeline p = make_pipeline();
  const auto close1 = closest_registers(p.n, {p.n.reg_data(p.r3)}, 1);
  ASSERT_EQ(close1.size(), 1u);
  EXPECT_EQ(close1[0], p.r2);
  const auto close5 = closest_registers(p.n, {p.n.reg_data(p.r3)}, 5);
  EXPECT_EQ(close5.size(), 2u);  // only two registers reachable
}

TEST(Analysis, CountRegsGates) {
  const Pipeline p = make_pipeline();
  std::vector<bool> all(p.n.size(), true);
  const auto [regs, gates] = count_regs_gates(p.n, all);
  EXPECT_EQ(regs, 3u);
  EXPECT_EQ(gates, p.n.num_gates());
}

}  // namespace
}  // namespace rfn
