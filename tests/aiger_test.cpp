// AIGER 1.9 frontend tests: elaboration structure, symbol tables, reset
// semantics against the 3-valued simulator, constraint folding, the B=0
// output compatibility rule, write/read round-trips across both encodings,
// witness export golden strings — and a negative suite asserting that every
// malformed-input class comes back as a clean diagnostic, never a crash.

#include <gtest/gtest.h>

#include "aiger/aiger.hpp"
#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

aiger::AigerDesign must_read(const std::string& text) {
  aiger::AigerDesign d;
  std::string error;
  EXPECT_TRUE(aiger::read_aiger(text, &d, &error)) << error;
  return d;
}

/// Asserts the parse fails and the diagnostic mentions `what`.
void expect_error(const std::string& text, const std::string& what) {
  aiger::AigerDesign d;
  std::string error;
  ASSERT_FALSE(aiger::read_aiger(text, &d, &error)) << "accepted: " << text;
  EXPECT_NE(error.find(what), std::string::npos)
      << "diagnostic '" << error << "' does not mention '" << what << "'";
}

// Two toggling latches, and-gate, one holds + one fails property. ASCII and
// a byte-equivalent binary twin (I=0, so the encodings differ only in the
// and section).
const char kTwoLatch[] =
    "aag 3 0 2 0 1 2\n"
    "2 3\n"
    "4 6\n"
    "6\n"
    "2\n"
    "6 4 2\n"
    "l0 b0r\n"
    "l1 b1r\n"
    "b0 both_high\n"
    "b1 bit0\n";

TEST(AigerReader, ElaboratesStructureAndSymbols) {
  const aiger::AigerDesign d = must_read(kTwoLatch);
  EXPECT_EQ(d.num_inputs, 0u);
  EXPECT_EQ(d.num_latches, 2u);
  EXPECT_EQ(d.num_ands, 1u);
  EXPECT_EQ(d.num_bad, 2u);
  EXPECT_FALSE(d.binary);
  EXPECT_FALSE(d.constraints_folded);

  const Netlist& n = d.netlist;
  EXPECT_EQ(n.num_regs(), 2u);
  EXPECT_EQ(n.num_inputs(), 0u);
  ASSERT_EQ(d.properties.size(), 2u);
  EXPECT_EQ(d.properties[0].name, "both_high");
  EXPECT_EQ(d.properties[1].name, "bit0");
  // Symbols land as gate names and properties as named outputs.
  EXPECT_NE(n.find("b0r"), kNullGate);
  EXPECT_NE(n.find("b1r"), kNullGate);
  EXPECT_EQ(n.output("both_high"), d.properties[0].signal);
  EXPECT_EQ(n.output("bit0"), d.properties[1].signal);
  EXPECT_TRUE(n.is_reg(d.properties[1].signal));
  EXPECT_EQ(n.type(d.properties[0].signal), GateType::And);
}

TEST(AigerReader, BinaryAndAsciiElaborateIdentically) {
  const aiger::AigerDesign a = must_read(kTwoLatch);
  const std::string bin = aiger::write_aiger(a.netlist, true);
  ASSERT_EQ(bin.rfind("aig ", 0), 0u);
  const aiger::AigerDesign b = must_read(bin);
  EXPECT_TRUE(b.binary);
  EXPECT_EQ(design_hash(a.netlist), design_hash(b.netlist));
  ASSERT_EQ(b.properties.size(), 2u);
  EXPECT_EQ(b.properties[0].name, "both_high");
}

TEST(AigerReader, AndGatesResolveOutOfFileOrder) {
  // a4 references a6, declared later: legal in ASCII mode.
  const aiger::AigerDesign d = must_read(
      "aag 3 1 0 1 2\n"
      "2\n"
      "4\n"
      "4 6 2\n"
      "6 2 2\n");  // strash folds a&a to a, so both gates collapse to i0
  ASSERT_EQ(d.properties.size(), 1u);
  EXPECT_TRUE(d.netlist.is_input(d.properties[0].signal));
}

TEST(AigerReader, ResetSemanticsMatchThreeValuedSimulation) {
  // Three latches: reset 0 (default), reset 1, uninitialized (own literal).
  const aiger::AigerDesign d = must_read(
      "aag 3 0 3 3 0\n"
      "2 2\n"
      "4 4 1\n"
      "6 6 6\n"
      "2\n"
      "4\n"
      "6\n"
      "l0 zero\nl1 one\nl2 wild\n");
  const Netlist& n = d.netlist;
  EXPECT_EQ(n.reg_init(n.find("zero")), Tri::F);
  EXPECT_EQ(n.reg_init(n.find("one")), Tri::T);
  EXPECT_EQ(n.reg_init(n.find("wild")), Tri::X);

  Sim3 sim(n);
  sim.load_initial_state();
  sim.eval();
  EXPECT_EQ(sim.value(n.find("zero")), Tri::F);
  EXPECT_EQ(sim.value(n.find("one")), Tri::T);
  EXPECT_EQ(sim.value(n.find("wild")), Tri::X);
  // Self-loop next-states: the values persist across a step.
  sim.step();
  sim.eval();
  EXPECT_EQ(sim.value(n.find("one")), Tri::T);
  EXPECT_EQ(sim.value(n.find("wild")), Tri::X);
}

TEST(AigerReader, OutputsBecomePropertiesWhenNoBadSection) {
  // Pre-1.9 style: B = 0, outputs are the properties.
  const aiger::AigerDesign d = must_read(
      "aag 1 0 1 1 0\n"
      "2 3\n"
      "2\n"
      "o0 toggles\n");
  ASSERT_EQ(d.properties.size(), 1u);
  EXPECT_EQ(d.properties[0].name, "toggles");
  EXPECT_EQ(d.num_bad, 0u);
  EXPECT_EQ(d.num_outputs, 1u);
}

TEST(AigerReader, PlainOutputsStayOutOfThePropertyListWhenBadsExist) {
  const aiger::AigerDesign d = must_read(
      "aag 1 0 1 1 0 1\n"
      "2 3\n"
      "2\n"    // o0: observable only
      "2\n");  // b0: the property
  ASSERT_EQ(d.properties.size(), 1u);
  EXPECT_EQ(d.properties[0].name, "b0");
  EXPECT_EQ(d.netlist.outputs().size(), 2u);  // b0 and o0 both registered
}

TEST(AigerReader, ConstraintsFoldIntoProperties) {
  // Latch t toggles; input i. bad = t, constraint = ~t. Unconstrained the
  // bad fires at cycle 1; under the invariant constraint "~t holds at every
  // step" the property can never fire (any step with t=1 violates the
  // constraint in the same step, and the monitor kills later steps).
  const aiger::AigerDesign d = must_read(
      "aag 2 1 1 0 0 1 1\n"
      "2\n"
      "4 5\n"
      "4\n"
      "5\n");
  EXPECT_TRUE(d.constraints_folded);
  ASSERT_EQ(d.properties.size(), 1u);
  const Netlist& n = d.netlist;
  // A fresh monitor register exists beyond the declared latch.
  EXPECT_EQ(n.num_regs(), 2u);
  EXPECT_NE(n.find("_aiger_constraints_ok"), kNullGate);
  // Unconstrained, bad = t fires at cycle 1 (the latch toggles from 0).
  // Folded as t AND ok AND ~t it can never fire: simulate a few cycles.
  Sim3 sim(n);
  sim.load_initial_state();
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.clear_inputs();
    sim.eval();
    EXPECT_EQ(sim.value(d.properties[0].signal), Tri::F) << "cycle " << cycle;
    sim.step();
  }
}

TEST(AigerWriter, RoundTripIsIdempotentOnTheDesignHash) {
  // A netlist using every decomposable gate type.
  NetBuilder b;
  const GateId i0 = b.input("i0");
  const GateId i1 = b.input("i1");
  const GateId r0 = b.reg("r0", Tri::T);
  const GateId r1 = b.reg("r1", Tri::X);
  b.set_next(r0, b.xor_(r0, i0));
  b.set_next(r1, b.mux(i1, r1, b.nor_(r0, i0)));
  b.output("bad", b.and_(b.or_(r0, r1), b.xnor_(i0, r1)));
  const Netlist m = b.take();

  std::string error;
  aiger::AigerDesign d2, d3;
  const std::string f1 = aiger::write_aiger(m, false);
  ASSERT_TRUE(aiger::read_aiger(f1, &d2, &error)) << error;
  const std::string f2 = aiger::write_aiger(d2.netlist, false);
  ASSERT_TRUE(aiger::read_aiger(f2, &d3, &error)) << error;
  EXPECT_EQ(design_hash(d2.netlist), design_hash(d3.netlist));
  EXPECT_EQ(f2, aiger::write_aiger(d3.netlist, false))
      << "normalized serialization is not a fixpoint";

  // The decomposition preserves semantics: exhaustive 2-input / 4-state
  // check of the property signal, one evaluation per input assignment with
  // registers forced through set().
  const GateId bad1 = m.output("bad");
  const GateId bad2 = d2.netlist.output("bad");
  ASSERT_NE(bad2, kNullGate);
  for (int bits = 0; bits < 16; ++bits) {
    Sim3 s1(m), s2(d2.netlist);
    auto drive = [bits](Sim3& s, const Netlist& n) {
      s.set(n.find("i0"), tri_of(bits & 1));
      s.set(n.find("i1"), tri_of(bits & 2));
      s.set(n.find("r0"), tri_of(bits & 4));
      s.set(n.find("r1"), tri_of(bits & 8));
      s.eval();
    };
    drive(s1, m);
    drive(s2, d2.netlist);
    EXPECT_EQ(s1.value(bad1), s2.value(bad2)) << "assignment " << bits;
  }
}

TEST(AigerWitness, GoldenFormats) {
  EXPECT_EQ(aiger::write_witness_holds(0), "0\nb0\n.\n");
  EXPECT_EQ(aiger::write_witness_holds(7), "0\nb7\n.\n");

  // One input, one latch (r' = in, reset 0), bad = r: a 2-cycle violation
  // driving in=1 then leaving cycle 1 unconstrained. The initial state line
  // comes from the reset value; unassigned inputs print as 'x'.
  const aiger::AigerDesign d = must_read(
      "aag 2 1 1 0 0 1\n"
      "2\n"
      "4 2\n"
      "4\n"
      "i0 in\nl0 r\n");
  Trace t;
  t.steps.resize(2);
  cube_add(t.steps[0].inputs, {d.netlist.find("in"), true});
  EXPECT_EQ(aiger::write_witness_fails(d.netlist, 0, t),
            "1\nb0\n0\n1\nx\n.\n");
}

// --- negative suite: every malformed class is a diagnostic, not a crash ---

TEST(AigerNegative, HeaderErrors) {
  expect_error("", "empty file");
  expect_error("agg 0 0 0 0 0\n", "aag");
  expect_error("aag 1 1 1\n", "header needs");
  expect_error("aag 5 1 1 0 1\n", "M = 5");          // M != I+L+A
  expect_error("aag x 0 0 0 0\n", "not a number");
  expect_error("aag 0 0 0 0 0 0 0 1\n", "justice");  // J = 1
  expect_error("aag 0 0 0 0 0 0 0 0 1\n", "justice");  // F = 1
}

TEST(AigerNegative, OutOfRangeAndUndeclaredLiterals) {
  // Output literal beyond 2M+1.
  expect_error("aag 1 1 0 1 0\n2\n9\n", "out of range");
  // Latch next-state beyond range: the "undeclared latch" class.
  expect_error("aag 1 0 1 0 0\n2 6\n", "out of range");
  // And operand beyond range.
  expect_error("aag 2 1 0 0 1\n2\n4 2 7\n", "out of range");
}

TEST(AigerNegative, Redefinitions) {
  expect_error("aag 2 2 0 0 0\n2\n2\n", "redefines");
  expect_error("aag 2 1 1 0 0\n2\n2 2\n", "redefines");
  expect_error("aag 1 1 0 0 0\n3\n", "must be even");
  expect_error("aag 1 1 0 0 0\n0\n", "constant");
}

TEST(AigerNegative, CombinationalCycle) {
  expect_error("aag 2 0 0 1 2\n2\n2 4 4\n4 2 2\n", "cycle");
  expect_error("aag 1 0 0 0 1\n2 2 2\n", "cycle");  // self-loop
}

TEST(AigerNegative, TruncatedFiles) {
  expect_error("aag 1 1 0 0 0\n", "truncated");       // missing input line
  expect_error("aag 1 0 1 0 0\n", "truncated");       // missing latch line
  expect_error("aag 1 0 1 1 0\n2 3\n", "truncated");  // missing output line
}

TEST(AigerNegative, TruncatedBinaryDeltaCodes) {
  // Binary header expects one and gate; the delta bytes are missing.
  expect_error("aig 1 0 0 0 1\n", "truncated delta");
  // First varint present (continuation bit set) but stream ends.
  expect_error(std::string("aig 1 0 0 0 1\n") + '\x82', "truncated delta");
  // Delta of 0 would make the gate its own operand.
  expect_error(std::string("aig 1 0 0 0 1\n") + '\x00' + '\x00',
               "outside [0, lhs)");
}

TEST(AigerNegative, BadResetValues) {
  expect_error("aag 2 1 1 0 0\n2\n4 2 3\n", "reset");  // arbitrary literal
  expect_error("aag 2 1 1 0 0\n2\n4 2 2\n", "reset");  // another latch's lit
}

TEST(AigerNegative, SymbolTableErrors) {
  const std::string base = "aag 1 1 0 1 0\n2\n2\n";
  expect_error(base + "i1 name\n", "out of range");
  expect_error(base + "i0 a\ni0 b\n", "duplicate symbol");
  expect_error(base + "q0 name\n", "malformed symbol");
  expect_error(base + "i0\n", "malformed symbol");
  // Two properties may not share a name (witness/cert files would collide).
  expect_error("aag 1 0 1 0 0 2\n2 2\n2\n3\nb0 p\nb1 p\n", "duplicate");
  // But a property aliasing a latch/input name is legal — write_aiger emits
  // exactly that for an output registered under its driving gate's name.
  const aiger::AigerDesign alias = must_read(base + "i0 shared\no0 shared\n");
  EXPECT_EQ(alias.properties.size(), 1u);
  // A lone "c" line is a comment though: everything after is ignored.
  const aiger::AigerDesign ok =
      must_read(base + "i0 name\nc\nanything at all\n");
  EXPECT_EQ(ok.properties.size(), 1u);
}

}  // namespace
}  // namespace rfn
