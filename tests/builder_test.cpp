// Unit tests for NetBuilder: folding, structural hashing, and word-level ops.

#include "netlist/builder.hpp"

#include <gtest/gtest.h>

#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

TEST(NetBuilder, ConstantFolding) {
  NetBuilder b;
  const GateId t = b.constant(true);
  const GateId f = b.constant(false);
  const GateId a = b.input("a");
  EXPECT_EQ(b.and_(a, t), a);
  EXPECT_EQ(b.and_(a, f), f);
  EXPECT_EQ(b.or_(a, f), a);
  EXPECT_EQ(b.or_(a, t), t);
  EXPECT_EQ(b.xor_(a, f), a);
  EXPECT_EQ(b.and_(a, a), a);
  EXPECT_EQ(b.xor_(a, a), f);
  EXPECT_EQ(b.not_(b.not_(a)), a);
  EXPECT_EQ(b.mux(t, a, f), f);
  EXPECT_EQ(b.mux(f, a, f), a);
}

TEST(NetBuilder, StructuralHashing) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId g1 = b.and_(a, c);
  const GateId g2 = b.and_(c, a);  // commutative normalization
  EXPECT_EQ(g1, g2);
  const GateId n1 = b.not_(a);
  const GateId n2 = b.not_(a);
  EXPECT_EQ(n1, n2);
}

TEST(NetBuilder, NandNorLowering) {
  NetBuilder b;
  const GateId a = b.input("a");
  const GateId c = b.input("c");
  const GateId nand = b.nand_(a, c);
  // Lowered to not(and): evaluating through the netlist must match.
  Netlist n = b.take();
  bool va[2];
  for (int i = 0; i < 4; ++i) {
    va[0] = i & 1;
    va[1] = i >> 1;
    // replicate evaluation by hand: nand gate id refers to a Not node.
    EXPECT_EQ(n.type(nand), GateType::Not);
    (void)va;
  }
}

// Word-level operators are validated against 64-bit software arithmetic by
// random simulation.
class WordOpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WordOpTest, AddSubIncMatchSoftwareArithmetic) {
  const size_t width = GetParam();
  NetBuilder b;
  const Word a = b.input_word("a", width);
  const Word c = b.input_word("c", width);
  const Word sum = b.add_word(a, c);
  const Word diff = b.sub_word(a, c);
  const Word inc = b.inc_word(a);
  const GateId eq = b.eq_word(a, c);
  const GateId lt = b.lt_word(a, c);
  Netlist n = b.take();

  Sim64 sim(n);
  Rng rng(42);
  const uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> av(width), cv(width);
    for (size_t i = 0; i < width; ++i) {
      av[i] = rng.next();
      cv[i] = rng.next();
      sim.set(a[i], av[i]);
      sim.set(c[i], cv[i]);
    }
    sim.eval();
    for (int k = 0; k < 64; ++k) {
      uint64_t va = 0, vc = 0;
      for (size_t i = 0; i < width; ++i) {
        va |= static_cast<uint64_t>((av[i] >> k) & 1) << i;
        vc |= static_cast<uint64_t>((cv[i] >> k) & 1) << i;
      }
      uint64_t vsum = 0, vdiff = 0, vinc = 0;
      for (size_t i = 0; i < width; ++i) {
        vsum |= static_cast<uint64_t>(sim.value_bit(sum[i], k)) << i;
        vdiff |= static_cast<uint64_t>(sim.value_bit(diff[i], k)) << i;
        vinc |= static_cast<uint64_t>(sim.value_bit(inc[i], k)) << i;
      }
      EXPECT_EQ(vsum, (va + vc) & mask);
      EXPECT_EQ(vdiff, (va - vc) & mask);
      EXPECT_EQ(vinc, (va + 1) & mask);
      EXPECT_EQ(sim.value_bit(eq, k), va == vc);
      EXPECT_EQ(sim.value_bit(lt, k), va < vc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WordOpTest, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(NetBuilder, DecodeIsOneHot) {
  NetBuilder b;
  const Word a = b.input_word("a", 3);
  const Word dec = b.decode(a);
  Netlist n = b.take();
  ASSERT_EQ(dec.size(), 8u);
  Sim64 sim(n);
  for (size_t i = 0; i < 3; ++i) {
    // pattern k has value k in lanes: set bit i of input to bit i of lane idx
    uint64_t w = 0;
    for (int k = 0; k < 64; ++k)
      if ((k >> i) & 1) w |= 1ULL << k;
    sim.set(a[i], w);
  }
  sim.eval();
  for (int k = 0; k < 8; ++k) {
    for (int v = 0; v < 8; ++v) EXPECT_EQ(sim.value_bit(dec[v], k), v == k);
  }
}

TEST(NetBuilder, RegWordInitialValues) {
  NetBuilder b;
  const Word r = b.reg_word("cnt", 4, 0b1010);
  const Word next = b.inc_word(r);
  b.set_next_word(r, next);
  Netlist n = b.take();
  EXPECT_EQ(n.reg_init(r[0]), Tri::F);
  EXPECT_EQ(n.reg_init(r[1]), Tri::T);
  EXPECT_EQ(n.reg_init(r[2]), Tri::F);
  EXPECT_EQ(n.reg_init(r[3]), Tri::T);
}

}  // namespace
}  // namespace rfn
