// rfn_serve tests: fair-share scheduling, admission control, the warm-state
// cache, strict rfn-req-v1 rejection, and — the acceptance check — CLI-vs-
// server equivalence through the shared rfn::api run path, plus the warm
// SavedOrder reuse a repeat request must show.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "serve/queue.hpp"
#include "serve/warm_cache.hpp"

namespace rfn {
namespace {

// ---------------------------------------------------------------------------
// FairQueue

serve::Job job(const std::string& tenant, double ms = 0.0, int64_t mem = 0,
               int64_t bdd = 0) {
  serve::Job j;
  j.tenant = tenant;
  j.demand_ms = ms;
  j.demand_mem_mb = mem;
  j.demand_bdd_nodes = bdd;
  j.run = [] {};
  return j;
}

TEST(FairQueue, InterleavesTenantsByStartedCount) {
  serve::FairQueue q(serve::AdmissionLimits{});
  std::string reason, detail;
  // Tenant a floods four jobs, then tenant b files two.
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(q.try_push(job("a"), &reason, &detail));
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(q.try_push(job("b"), &reason, &detail));
  std::vector<std::string> order;
  serve::Job j;
  while (q.pop_fairest(&j)) {
    order.push_back(j.tenant);
    q.finish(j);
  }
  // Fair share alternates until b drains; a's flood cannot starve b.
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b", "a", "a"}));
}

TEST(FairQueue, FifoWithinOneTenant) {
  serve::FairQueue q(serve::AdmissionLimits{});
  std::string reason, detail;
  for (double ms : {1.0, 2.0, 3.0})
    ASSERT_TRUE(q.try_push(job("t", ms), &reason, &detail));
  serve::Job j;
  for (double want : {1.0, 2.0, 3.0}) {
    ASSERT_TRUE(q.pop_fairest(&j));
    EXPECT_EQ(j.demand_ms, want);
    q.finish(j);
  }
  EXPECT_FALSE(q.pop_fairest(&j));
}

TEST(FairQueue, RejectsWithNamedReasons) {
  serve::AdmissionLimits lim;
  lim.queue_capacity = 2;
  lim.time_window_ms = 100.0;
  lim.mem_window_mb = 50;
  lim.bdd_node_window = 1000;
  std::string reason, detail;

  serve::FairQueue q2(lim);
  ASSERT_TRUE(q2.try_push(job("a", 60.0), &reason, &detail));
  EXPECT_FALSE(q2.try_push(job("b", 60.0), &reason, &detail));
  EXPECT_EQ(reason, "time-oversubscribed");
  EXPECT_NE(detail.find("window"), std::string::npos);

  serve::FairQueue q3(lim);
  ASSERT_TRUE(q3.try_push(job("a", 1.0, 30), &reason, &detail));
  EXPECT_FALSE(q3.try_push(job("b", 1.0, 30), &reason, &detail));
  EXPECT_EQ(reason, "mem-oversubscribed");

  serve::FairQueue q4(lim);
  ASSERT_TRUE(q4.try_push(job("a", 1.0, 0, 800), &reason, &detail));
  EXPECT_FALSE(q4.try_push(job("b", 1.0, 0, 800), &reason, &detail));
  EXPECT_EQ(reason, "bdd-oversubscribed");

  serve::FairQueue q5(lim);
  ASSERT_TRUE(q5.try_push(job("a", 1.0), &reason, &detail));
  ASSERT_TRUE(q5.try_push(job("b", 1.0), &reason, &detail));
  EXPECT_FALSE(q5.try_push(job("c", 1.0), &reason, &detail));
  EXPECT_EQ(reason, "queue-full");

  // finish() releases the demands: the queue admits again.
  serve::Job j;
  ASSERT_TRUE(q5.pop_fairest(&j));
  q5.finish(j);
  EXPECT_TRUE(q5.try_push(job("c", 1.0), &reason, &detail));
}

TEST(FairQueue, DropsIdleTenantRecords) {
  serve::FairQueue q(serve::AdmissionLimits{});
  std::string reason, detail;
  // Tenant names are client-controlled: a client cycling through unique
  // names must not grow the map for the daemon's lifetime.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        q.try_push(job("tenant-" + std::to_string(i)), &reason, &detail));
    serve::Job j;
    ASSERT_TRUE(q.pop_fairest(&j));
    q.finish(j);
    EXPECT_EQ(q.tenant_records(), 0u);
  }
  // A tenant with a queued or running job keeps its record.
  ASSERT_TRUE(q.try_push(job("t"), &reason, &detail));
  ASSERT_TRUE(q.try_push(job("t"), &reason, &detail));
  serve::Job j;
  ASSERT_TRUE(q.pop_fairest(&j));
  q.finish(j);
  EXPECT_EQ(q.tenant_records(), 1u);  // one job still queued
  ASSERT_TRUE(q.pop_fairest(&j));
  EXPECT_EQ(q.tenant_records(), 1u);  // popped but not finished: running
  q.finish(j);
  EXPECT_EQ(q.tenant_records(), 0u);
}

TEST(FairQueue, DemandFallsBackToTimeLimitThenDefault) {
  api::VerifyRequest req;
  req.options.budget_ms = 250.0;
  EXPECT_EQ(serve::request_demand_ms(req, 999.0), 250.0);
  req.options.budget_ms = -1.0;
  req.options.time_limit_s = 2.0;
  EXPECT_EQ(serve::request_demand_ms(req, 999.0), 2000.0);
  req.options.time_limit_s = -1.0;
  EXPECT_EQ(serve::request_demand_ms(req, 999.0), 999.0);
}

// ---------------------------------------------------------------------------
// WarmStateCache

api::LoadedDesign load_builtin_fifo() {
  api::DesignRef ref;
  ref.path = "builtin:fifo";
  api::LoadedDesign d;
  std::string error;
  EXPECT_TRUE(api::load_design(ref, &d, &error)) << error;
  return d;
}

TEST(WarmStateCache, HitMissCountersAcrossRepeatAcquires) {
  serve::WarmStateCache cache(/*byte_budget=*/0);
  auto lease1 = cache.acquire(load_builtin_fifo());
  EXPECT_FALSE(lease1.warm);
  EXPECT_FALSE(lease1.order_warm);
  const Netlist* first_instance = &lease1.design->netlist;
  // Warm the entry the way a session would: a saved order and a pooled
  // incremental SAT instance.
  lease1.cache->order.tokens.push_back({});
  lease1.cache->sat_bmc.get(lease1.design->netlist);
  cache.release(lease1);

  auto lease2 = cache.acquire(load_builtin_fifo());
  EXPECT_TRUE(lease2.warm);
  EXPECT_TRUE(lease2.order_warm);
  EXPECT_EQ(lease2.sat_pool_entries, 1u);
  // The cached instance answers the repeat request — pooled SatBmc entries
  // key the netlist by address, so instance stability is the contract.
  EXPECT_EQ(&lease2.design->netlist, first_instance);
  cache.release(lease2);

  const serve::WarmStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_GT(s.bytes, 0);
}

TEST(WarmStateCache, EvictsLruUnderByteBudget) {
  // A 1-byte budget cannot hold any entry: release evicts immediately.
  serve::WarmStateCache tiny(1);
  auto lease = tiny.acquire(load_builtin_fifo());
  tiny.release(lease);
  serve::WarmStats s = tiny.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0);

  // The next acquire on the same design is a miss again.
  auto again = tiny.acquire(load_builtin_fifo());
  EXPECT_FALSE(again.warm);
  tiny.release(again);
}

TEST(WarmStateCache, NeverEvictsALiveLease) {
  serve::WarmStateCache tiny(1);
  auto lease = tiny.acquire(load_builtin_fifo());
  // Over budget but in use: the entry must survive until release.
  EXPECT_EQ(tiny.stats().entries, 1u);
  EXPECT_EQ(tiny.stats().evictions, 0u);
  tiny.release(lease);
  EXPECT_EQ(tiny.stats().entries, 0u);
}

TEST(WarmStateCache, UnboundedBudgetKeepsEverything) {
  serve::WarmStateCache cache(0);
  for (int i = 0; i < 3; ++i) {
    auto lease = cache.acquire(load_builtin_fifo());
    cache.release(lease);
  }
  const serve::WarmStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);  // same design hash: one entry
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

// ---------------------------------------------------------------------------
// Strict rfn-req-v1 rejection

json::Value valid_request_doc() {
  api::VerifyRequest req;
  req.id = "r1";
  req.design.path = "builtin:fifo";
  api::PropertySpec spec;
  spec.signal = "bad_full_q";
  req.props.push_back(spec);
  return req.to_json();
}

TEST(RequestCodec, RoundTripsThroughJson) {
  const json::Value doc = valid_request_doc();
  api::VerifyRequest back;
  std::string error;
  ASSERT_TRUE(api::VerifyRequest::from_json(doc, &back, &error)) << error;
  EXPECT_EQ(back.id, "r1");
  EXPECT_EQ(back.design.path, "builtin:fifo");
  ASSERT_EQ(back.props.size(), 1u);
  EXPECT_EQ(back.props[0].signal, "bad_full_q");
}

TEST(RequestCodec, RejectsMalformedDocuments) {
  // Deterministic mutations of a valid document: every one must be rejected
  // with a non-empty diagnostic, never accepted or crashed on.
  std::vector<json::Value> bad;
  {
    json::Value v = valid_request_doc();
    v.set("version", "rfn-req-v0");
    bad.push_back(v);
  }
  {
    json::Value v = valid_request_doc();
    v.set("type", "destroy");
    bad.push_back(v);
  }
  {
    json::Value v = valid_request_doc();
    v.set("surprise", 1.0);
    bad.push_back(v);
  }
  {
    json::Value v = valid_request_doc();
    v.set("props", "not-an-array");
    bad.push_back(v);
  }
  {
    json::Value v = valid_request_doc();
    v.set("id", 42.0);
    bad.push_back(v);
  }
  {
    json::Value v = valid_request_doc();
    json::Value opts = json::Value::object();
    opts.set("warp-speed", true);
    v.set("options", std::move(opts));
    bad.push_back(v);
  }
  {
    json::Value v = valid_request_doc();
    json::Value sess = json::Value::object();
    sess.set("cluster-overlap", "lots");
    v.set("session", std::move(sess));
    bad.push_back(v);
  }
  {
    // No design at all.
    json::Value v = json::Value::object();
    v.set("type", "verify");
    v.set("version", api::kRequestVersion);
    bad.push_back(v);
  }
  bad.push_back(json::Value(3.0));
  bad.push_back(json::Value("verify"));
  for (size_t i = 0; i < bad.size(); ++i) {
    api::VerifyRequest out;
    std::string error;
    EXPECT_FALSE(api::VerifyRequest::from_json(bad[i], &out, &error))
        << "mutation " << i << " was accepted: " << bad[i].dump();
    EXPECT_FALSE(error.empty()) << "mutation " << i;
  }
}

TEST(RequestCodec, TruncationFuzz) {
  // Every strict prefix of a valid request either fails to parse as JSON or
  // fails the codec — a torn socket line can never half-apply.
  const std::string text = valid_request_doc().dump();
  for (size_t len = 0; len < text.size(); ++len) {
    std::string perr;
    const json::Value doc = json::parse(text.substr(0, len), &perr);
    if (doc.is_null()) continue;  // not JSON: rejected upstream
    api::VerifyRequest out;
    std::string error;
    EXPECT_FALSE(api::VerifyRequest::from_json(doc, &out, &error))
        << "prefix of length " << len << " was accepted";
  }
}

// ---------------------------------------------------------------------------
// End-to-end over a socket

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  /// Reads records until the next rfn-resp-v1 line; returns it and stashes
  /// the streamed records in `records`.
  json::Value read_response(std::vector<json::Value>* records = nullptr) {
    std::string line;
    while (read_line(&line)) {
      std::string perr;
      json::Value doc = json::parse(line, &perr);
      EXPECT_TRUE(perr.empty()) << perr << " in: " << line;
      const json::Value* type = doc.find("type");
      if (type != nullptr && type->is_string() &&
          type->as_string() == "response") {
        return doc;
      }
      if (records != nullptr) records->push_back(std::move(doc));
    }
    ADD_FAILURE() << "connection closed before a response";
    return json::Value();
  }

  json::Value transact(const json::Value& req,
                       std::vector<json::Value>* records = nullptr) {
    send_line(req.dump());
    return read_response(records);
  }

 private:
  bool read_line(std::string* out) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

json::Value fifo_request(const std::string& id, const std::string& tenant) {
  api::VerifyRequest req;
  req.id = id;
  req.tenant = tenant;
  req.design.path = "builtin:fifo";
  for (const char* sig : {"bad_full_q", "bad_af_q", "bad_hf_q"}) {
    api::PropertySpec spec;
    spec.signal = sig;
    req.props.push_back(spec);
  }
  req.batch = true;
  return req.to_json();
}

double num_at(const json::Value& doc, const char* path) {
  const json::Value* v = doc.find_path(path);
  EXPECT_NE(v, nullptr) << path << " missing in " << doc.dump();
  return v != nullptr && v->is_number() ? v->as_double() : -1.0;
}

TEST(ServeEndToEnd, WarmRepeatRequestsAndNamedRejects) {
  serve::ServerOptions opt;
  opt.tcp_port = 0;  // ephemeral
  opt.admission.mem_window_mb = 100;
  serve::Server server(opt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.tcp_port(), 0);

  Client client(server.tcp_port());
  ASSERT_TRUE(client.connected());

  // Readiness probe.
  json::Value ping = json::Value::object();
  ping.set("type", "ping");
  ping.set("id", "p");
  json::Value pong = client.transact(ping);
  EXPECT_TRUE(pong.find("ok")->as_bool());

  // First verify: a cold miss.
  std::vector<json::Value> rec1;
  json::Value r1 = client.transact(fifo_request("r1", "a"), &rec1);
  ASSERT_TRUE(r1.find("ok") != nullptr && r1.find("ok")->as_bool())
      << r1.dump();
  EXPECT_EQ(num_at(r1, "verdicts.T"), 3.0);
  EXPECT_EQ(r1.find_path("warm_cache.hit")->as_bool(), false);
  EXPECT_EQ(num_at(r1, "warm_cache.misses"), 1.0);

  // Streamed records arrive before the response: three property records
  // and the batch summary.
  size_t props = 0, summaries = 0;
  for (const json::Value& rec : rec1) {
    const json::Value* type = rec.find("type");
    ASSERT_NE(type, nullptr) << rec.dump();
    props += type->as_string() == "property";
    summaries += type->as_string() == "batch-summary";
  }
  EXPECT_EQ(props, 3u);
  EXPECT_EQ(summaries, 1u);

  // Repeat request on the same design hash: a warm hit that reuses the
  // saved BDD variable order (the SavedOrder survived in the cache entry).
  json::Value r2 = client.transact(fifo_request("r2", "a"));
  ASSERT_TRUE(r2.find("ok")->as_bool()) << r2.dump();
  EXPECT_TRUE(r2.find_path("warm_cache.hit")->as_bool());
  EXPECT_TRUE(r2.find_path("warm_cache.order_warm")->as_bool());
  EXPECT_GE(num_at(r2, "warm_cache.hits"), 1.0);
  EXPECT_GT(num_at(r2, "warm_cache.bytes"), 0.0);

  // The warm order actually seeds the repeat run: some member reports
  // order_seeded (the first property of the warmed session).
  bool any_seeded = false;
  const json::Value* results = r2.find("results");
  ASSERT_NE(results, nullptr);
  for (const json::Value& res : results->items())
    any_seeded |= res.find("order_seeded")->as_bool();
  EXPECT_TRUE(any_seeded);

  // Admission: a request whose declared mem budget oversubscribes the
  // window is rejected by name, before any engine work.
  api::VerifyRequest big;
  big.id = "big";
  big.design.path = "builtin:fifo";
  big.options.budget_mem_mb = 200;
  json::Value rejected = client.transact(big.to_json());
  EXPECT_FALSE(rejected.find("ok")->as_bool());
  EXPECT_EQ(rejected.find("reject_reason")->as_string(), "mem-oversubscribed");

  // Malformed line: named bad-request, connection stays usable.
  client.send_line("this is not json");
  json::Value bad = client.read_response();
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("reject_reason")->as_string(), "bad-request");
  EXPECT_NE(bad.find("error")->as_string().find("invalid JSON"),
            std::string::npos);

  // Unknown design: load-failed names the valid builtin set.
  api::VerifyRequest ghost;
  ghost.id = "ghost";
  ghost.design.path = "builtin:ghost";
  json::Value lf = client.transact(ghost.to_json());
  EXPECT_FALSE(lf.find("ok")->as_bool());
  EXPECT_EQ(lf.find("reject_reason")->as_string(), "load-failed");
  EXPECT_NE(lf.find("error")->as_string().find("fifo"), std::string::npos);

  const serve::WarmStats ws = server.warm_stats();
  EXPECT_GE(ws.hits, 1u);
  server.stop();
}

TEST(ServeEndToEnd, BatchSummaryMetricsAreRequestRelative) {
  // Each request's run_verify executes under a per-request MetricsScope, so
  // the batch-summary metrics block counts that request alone. Two identical
  // requests must therefore report identical run counters — before the
  // isolation the second summary included the first request's work too.
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  serve::Server server(opt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.tcp_port());
  ASSERT_TRUE(client.connected());

  auto summary_counter = [](const std::vector<json::Value>& records,
                            const char* name) {
    for (const json::Value& rec : records) {
      const json::Value* type = rec.find("type");
      if (type == nullptr || type->as_string() != "batch-summary") continue;
      const json::Value* counters = rec.find_path("metrics.counters");
      EXPECT_NE(counters, nullptr) << rec.dump();
      if (counters == nullptr) return -1.0;
      const json::Value* v = counters->find(name);
      return v != nullptr && v->is_number() ? v->as_double() : 0.0;
    }
    ADD_FAILURE() << "no batch-summary record";
    return -1.0;
  };

  std::vector<json::Value> rec1, rec2;
  json::Value r1 = client.transact(fifo_request("m1", "a"), &rec1);
  ASSERT_TRUE(r1.find("ok")->as_bool()) << r1.dump();
  json::Value r2 = client.transact(fifo_request("m2", "a"), &rec2);
  ASSERT_TRUE(r2.find("ok")->as_bool()) << r2.dump();

  const double runs1 = summary_counter(rec1, "rfn.runs");
  const double runs2 = summary_counter(rec2, "rfn.runs");
  EXPECT_GT(runs1, 0.0);
  EXPECT_EQ(runs1, runs2)
      << "second request's summary leaked the first request's counters";
  server.stop();
}

TEST(ServeEndToEnd, ConcurrentSummariesStayRequestRelative) {
  // The case the old process-global registry could not keep relative: two
  // requests in flight at once on two connections. Baseline subtraction
  // against a shared registry would fold the overlapping request's work into
  // each summary; per-request registries pin each summary to its own runs.
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  opt.workers = 2;
  serve::Server server(opt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client a(server.tcp_port());
  Client b(server.tcp_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  a.send_line(fifo_request("c1", "ta").dump());
  b.send_line(fifo_request("c2", "tb").dump());

  std::vector<json::Value> rec_a, rec_b;
  json::Value ra = a.read_response(&rec_a);
  json::Value rb = b.read_response(&rec_b);
  ASSERT_TRUE(ra.find("ok")->as_bool()) << ra.dump();
  ASSERT_TRUE(rb.find("ok")->as_bool()) << rb.dump();

  auto runs_of = [](const std::vector<json::Value>& records) {
    for (const json::Value& rec : records) {
      const json::Value* type = rec.find("type");
      if (type != nullptr && type->as_string() == "batch-summary") {
        const json::Value* counters = rec.find_path("metrics.counters");
        const json::Value* v =
            counters != nullptr ? counters->find("rfn.runs") : nullptr;
        return v != nullptr && v->is_number() ? v->as_double() : 0.0;
      }
    }
    return -1.0;
  };
  const double runs_a = runs_of(rec_a);
  const double runs_b = runs_of(rec_b);
  EXPECT_GT(runs_a, 0.0);
  // Identical requests: identical per-request counts, no cross-bleed from
  // the overlapping run.
  EXPECT_EQ(runs_a, runs_b);
  server.stop();
}

TEST(ServeEndToEnd, CliAndServerAgreeThroughSharedApi) {
  // The CLI path: api::run_verify with a collecting sink, post-run emission
  // (request order) — exactly what `rfn verify --trace-json` writes.
  api::VerifyRequest req;
  req.design.path = "builtin:fifo";
  for (const char* sig : {"bad_full_q", "bad_af_q", "bad_hf_q"}) {
    api::PropertySpec spec;
    spec.signal = sig;
    req.props.push_back(spec);
  }
  req.batch = true;
  api::LoadedDesign design;
  std::string error;
  ASSERT_TRUE(api::load_design(req.design, &design, &error)) << error;
  api::CollectTraceSink cli_sink;
  api::RunOutput cli_out;
  ASSERT_TRUE(api::run_verify(design, req, &cli_sink,
                              /*stream_properties=*/false, nullptr, &cli_out,
                              &error))
      << error;

  // The server path: the same request over a socket.
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  serve::Server server(opt);
  ASSERT_TRUE(server.start(&error)) << error;
  Client client(server.tcp_port());
  ASSERT_TRUE(client.connected());
  req.id = "eq";
  std::vector<json::Value> served_records;
  json::Value resp = client.transact(req.to_json(), &served_records);
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  server.stop();

  // Same verdicts per property, same cluster assignment, regardless of the
  // emission mode (the server streams in completion order; compare as maps).
  auto verdicts_of = [](const std::vector<json::Value>& records) {
    std::vector<std::pair<std::string, std::string>> out;
    for (const json::Value& rec : records) {
      const json::Value* type = rec.find("type");
      if (type == nullptr || type->as_string() != "property") continue;
      out.emplace_back(rec.find("name")->as_string(),
                       rec.find("verdict")->as_string());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(verdicts_of(cli_sink.records()), verdicts_of(served_records));

  // And the response document agrees with the CLI's RunOutput.
  EXPECT_EQ(num_at(resp, "verdicts.T"),
            static_cast<double>(cli_out.response.holds));
  EXPECT_EQ(num_at(resp, "properties"),
            static_cast<double>(cli_out.response.properties));
  EXPECT_EQ(resp.find("design_hash")->as_string(),
            cli_out.response.design_hash);

  // Both emitted exactly one batch summary with identical verdict counts.
  auto summary_of = [](const std::vector<json::Value>& records) {
    for (const json::Value& rec : records) {
      const json::Value* type = rec.find("type");
      if (type != nullptr && type->as_string() == "batch-summary")
        return rec.find("verdicts")->dump();
    }
    return std::string();
  };
  EXPECT_EQ(summary_of(cli_sink.records()), summary_of(served_records));
  EXPECT_FALSE(summary_of(served_records).empty());
}

TEST(ServeEndToEnd, ConcurrentRequestsOnOneDesignHash) {
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  opt.workers = 2;
  serve::Server server(opt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client a(server.tcp_port()), b(server.tcp_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  // Both requests are in flight before either response is read, so both
  // workers contend for the same warm entry: one lease runs while the
  // other waits on the entry's run mutex, and each release recharges the
  // byte accounting as the waiter takes over — the hand-off the cache must
  // survive (watched under TSan).
  for (int round = 0; round < 3; ++round) {
    const std::string r = std::to_string(round);
    a.send_line(fifo_request("a" + r, "a").dump());
    b.send_line(fifo_request("b" + r, "b").dump());
    json::Value ra = a.read_response();
    json::Value rb = b.read_response();
    ASSERT_TRUE(ra.find("ok")->as_bool()) << ra.dump();
    ASSERT_TRUE(rb.find("ok")->as_bool()) << rb.dump();
  }
  const serve::WarmStats ws = server.warm_stats();
  EXPECT_EQ(ws.misses, 1u);  // one design hash: everything after is warm
  EXPECT_EQ(ws.hits, 5u);
  server.stop();
}

TEST(ServeEndToEnd, TwoTenantsOnTwoConnections) {
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  opt.workers = 2;
  serve::Server server(opt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client a(server.tcp_port()), b(server.tcp_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  json::Value ra = a.transact(fifo_request("a1", "a"));
  json::Value rb = b.transact(fifo_request("b1", "b"));
  EXPECT_TRUE(ra.find("ok")->as_bool());
  EXPECT_TRUE(rb.find("ok")->as_bool());
  EXPECT_EQ(server.served(), 2u);
  server.stop();
}

}  // namespace
}  // namespace rfn
