// Span tracer + resource watchdog tests: ring-buffer balance under
// overflow, cross-thread flow causality, watchdog budget trips (wall and
// BDD-node), end-to-end resource-out degradation of the verifier, the
// write_trace_json edge cases, metrics-epoch run isolation, and a
// golden-schema check of the CLI's --trace-spans Chrome trace export
// (cross-validated with tools/trace_report.py when python3 is available).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rfn.hpp"
#include "core/trace_json.hpp"
#include "netlist/builder.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace rfn {
namespace {

// The tracer is process-global; every test starts its own trace epoch and
// disables on exit so tests stay independent.
struct TracerGuard {
  explicit TracerGuard(size_t capacity = 1u << 12) {
    SpanTracer::global().enable(capacity);
  }
  ~TracerGuard() { SpanTracer::global().disable(); }
};

struct EventCounts {
  int begins = 0, ends = 0, flows_out = 0, flows_in = 0, instants = 0;
};

EventCounts count_events(const json::Value& doc,
                         const std::string& name = std::string()) {
  EventCounts c;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    if (!name.empty() && e.find("name")->as_string() != name) continue;
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "B") ++c.begins;
    if (ph == "E") ++c.ends;
    if (ph == "s") ++c.flows_out;
    if (ph == "f") ++c.flows_in;
    if (ph == "i") ++c.instants;
  }
  return c;
}

/// Per-tid B/E balance and monotonic timestamps — the exporter's contract.
void expect_well_formed(const json::Value& doc) {
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  ASSERT_EQ(doc.find_path("otherData.trace_version")->as_string(),
            "rfn-spans-v1");
  std::map<uint64_t, int> depth;
  std::map<uint64_t, double> last_ts;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") continue;
    const uint64_t tid = e.find("tid")->as_uint();
    const double ts = e.find("ts")->as_double();
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]) << "tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      ASSERT_GT(depth[tid], 0) << "orphan end on tid " << tid;
      --depth[tid];
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(SpanTracer, DisabledRecordsNothing) {
  SpanTracer::global().disable();
  {
    Span s("never");
    s.annotate("k", 1.0);
  }
  SpanTracer::global().instant("never");
  TracerGuard guard;  // enable() drops all previous buffers
  const json::Value doc = SpanTracer::global().to_chrome_json();
  EXPECT_EQ(count_events(doc, "never").begins, 0);
  EXPECT_EQ(count_events(doc, "never").instants, 0);
}

TEST(SpanTracer, NestedSpansExportBalanced) {
  TracerGuard guard;
  {
    Span outer("outer");
    {
      Span inner("inner");
      inner.annotate("n", 42.0);
    }
  }
  SpanTracer::global().disable();
  const json::Value doc = SpanTracer::global().to_chrome_json();
  expect_well_formed(doc);
  EXPECT_EQ(count_events(doc, "outer").begins, 1);
  EXPECT_EQ(count_events(doc, "inner").begins, 1);
  // The annotation rides on the inner span's end event.
  bool found = false;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    if (e.find("name")->as_string() != "inner") continue;
    if (e.find("ph")->as_string() != "E") continue;
    ASSERT_NE(e.find_path("args.n"), nullptr);
    EXPECT_EQ(e.find_path("args.n")->as_double(), 42.0);
    found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(doc.find_path("otherData.dropped_events")->as_uint(), 0u);
}

TEST(SpanTracer, RingOverflowStaysBalancedAndCountsDropped) {
  TracerGuard guard(16);  // tiny ring: most of the stream is overwritten
  for (int i = 0; i < 200; ++i) Span s("churn");
  SpanTracer::global().disable();
  const json::Value doc = SpanTracer::global().to_chrome_json();
  expect_well_formed(doc);
  EXPECT_GT(doc.find_path("otherData.dropped_events")->as_uint(), 0u);
  const EventCounts c = count_events(doc, "churn");
  EXPECT_EQ(c.begins, c.ends);
  EXPECT_GT(c.begins, 0);
}

TEST(SpanTracer, UnclosedSpanGetsSynthesizedEnd) {
  TracerGuard guard;
  SpanTracer::global().begin("open");  // deliberately never ended
  SpanTracer::global().disable();
  const json::Value doc = SpanTracer::global().to_chrome_json();
  expect_well_formed(doc);  // balance restored by the synthesized end
  EXPECT_EQ(count_events(doc, "open").begins, 1);
  EXPECT_EQ(count_events(doc, "(unclosed)").ends, 1);
}

TEST(SpanTracer, FlowsLinkAcrossExecutorThreads) {
  TracerGuard guard;
  SpanTracer::global().set_thread_name("test-main");
  {
    Executor exec(2);
    for (int i = 0; i < 8; ++i) {
      const uint64_t id = SpanTracer::global().flow_out("handoff");
      exec.submit([id] {
        Span s("task");
        SpanTracer::global().flow_in("handoff", id);
      });
    }
    // ~Executor joins the workers: the quiescent point for export.
  }
  SpanTracer::global().disable();
  const json::Value doc = SpanTracer::global().to_chrome_json();
  expect_well_formed(doc);
  // Every flow id must appear exactly once as origin and once as target.
  std::map<uint64_t, std::set<std::string>> by_id;
  std::map<uint64_t, std::set<uint64_t>> tids_by_id;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph != "s" && ph != "f") continue;
    const uint64_t id = e.find("id")->as_uint();
    by_id[id].insert(ph);
    tids_by_id[id].insert(e.find("tid")->as_uint());
  }
  ASSERT_EQ(by_id.size(), 8u);
  size_t cross_thread = 0;
  for (const auto& [id, phases] : by_id) {
    EXPECT_EQ(phases.size(), 2u) << "flow " << id << " unpaired";
    if (tids_by_id[id].size() == 2) ++cross_thread;
  }
  // The submitting thread is not a worker, so every flow crosses threads.
  EXPECT_EQ(cross_thread, 8u);
}

TEST(SpanTracer, InternDeduplicates) {
  SpanTracer& t = SpanTracer::global();
  const char* a = t.intern("engine-x");
  const char* b = t.intern("engine-x");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "engine-x");
  EXPECT_NE(t.intern("engine-y"), a);
}

TEST(Watchdog, WallBudgetTripsAndCancels) {
  CancelToken token;
  WatchdogOptions opt;
  opt.wall_budget_s = 0.02;
  opt.poll_interval_s = 0.005;
  Watchdog dog(opt, &token);
  dog.start();
  for (int i = 0; i < 400 && !token.cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.stop();
  ASSERT_TRUE(dog.tripped());
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(dog.trip_reason(), "wall-budget");
  EXPECT_GE(dog.trip_seconds(), 0.02);
}

TEST(Watchdog, NodeBudgetTripsOnProbe) {
  CancelToken token;
  WatchdogOptions opt;
  opt.bdd_node_budget = 10;
  opt.poll_interval_s = 0.005;
  Watchdog dog(opt, &token);
  dog.node_probe()->store(1000, std::memory_order_relaxed);
  dog.start();
  for (int i = 0; i < 400 && !token.cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.stop();
  ASSERT_TRUE(dog.tripped());
  EXPECT_STREQ(dog.trip_reason(), "bdd-node-budget");
  EXPECT_EQ(dog.trip_bdd_nodes(), 1000);
}

TEST(Watchdog, NoBudgetNeverStartsOrTrips) {
  CancelToken token;
  Watchdog dog(WatchdogOptions{}, &token);
  dog.start();  // no budget: no monitor thread
  dog.stop();
  dog.stop();  // idempotent
  EXPECT_FALSE(dog.tripped());
  EXPECT_FALSE(token.cancelled());
}

/// 24-bit free-running counter: bad fires only at the terminal count, so
/// every engine needs ~2^24 steps of work and the run reliably outlives a
/// small budget (the committed tests/data/slow24.v is the same design).
Netlist slow_counter_netlist() {
  NetBuilder b;
  const Word cnt = b.reg_word("cnt", 24);
  b.set_next_word(cnt, b.inc_word(cnt));
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, b.eq_const(cnt, (1u << 24) - 1)));
  b.output("bad", bad);
  return b.take();
}

/// Small bounded counter whose property holds: cnt wraps at 5, bad is
/// cnt == 7 (mirrors tests/data/demo.v at the library level).
Netlist holds_netlist() {
  NetBuilder b;
  const GateId req = b.input("req");
  const Word cnt = b.reg_word("cnt", 3);
  const Word next = b.mux_word(b.eq_const(cnt, 5), b.inc_word(cnt),
                               b.constant_word(0, 3));
  b.set_next_word(cnt, b.mux_word(req, cnt, next));
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, b.eq_const(cnt, 7)));
  b.output("bad", bad);
  return b.take();
}

TEST(ResourceOut, WallBudgetDegradesRun) {
  const Netlist n = slow_counter_netlist();
  RfnOptions opt;
  opt.portfolio_workers = 3;
  opt.budget_ms = 120;
  RfnVerifier verifier(n, n.output("bad"), opt);
  const RfnResult res = verifier.run();
  EXPECT_EQ(res.verdict, Verdict::ResourceOut);
  ASSERT_TRUE(res.budget_trip.tripped);
  EXPECT_EQ(res.budget_trip.reason, "wall-budget");
  EXPECT_GE(res.budget_trip.at_seconds, 0.120);
  // Degradation must be prompt: cancellation is cooperative, but every
  // engine polls at step boundaries.
  EXPECT_LT(res.seconds, 30.0);

  // The summary carries the trip in the JSONL trace format.
  const json::Value summary = summary_json(res);
  EXPECT_EQ(summary.find("verdict")->as_string(), "resource-out");
  ASSERT_NE(summary.find("budget_trip"), nullptr);
  EXPECT_EQ(summary.find_path("budget_trip.reason")->as_string(),
            "wall-budget");
}

TEST(ResourceOut, NodeBudgetDegradesRunAndAnnotatesSpans) {
  TracerGuard guard;
  const Netlist n = slow_counter_netlist();
  RfnOptions opt;
  opt.portfolio_workers = 3;
  opt.budget_bdd_nodes = 2000;  // well below the run's natural peak
  RfnVerifier verifier(n, n.output("bad"), opt);
  const RfnResult res = verifier.run();
  SpanTracer::global().disable();
  EXPECT_EQ(res.verdict, Verdict::ResourceOut);
  ASSERT_TRUE(res.budget_trip.tripped);
  EXPECT_EQ(res.budget_trip.reason, "bdd-node-budget");
  EXPECT_GE(res.budget_trip.bdd_nodes, 2000);

  // The span trace carries the budget-trip instant with the same reason.
  const json::Value doc = SpanTracer::global().to_chrome_json();
  expect_well_formed(doc);
  bool trip_seen = false;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    if (e.find("name")->as_string() != "budget-trip") continue;
    EXPECT_EQ(e.find("ph")->as_string(), "i");
    EXPECT_EQ(e.find_path("args.reason")->as_string(), "bdd-node-budget");
    trip_seen = true;
  }
  EXPECT_TRUE(trip_seen);
}

TEST(ResourceOut, VerdictBeforeTripIsKept) {
  // A run that finishes without tripping keeps its verdict even with
  // budgets armed.
  const Netlist n = holds_netlist();
  RfnOptions opt;
  opt.budget_ms = 60000;
  opt.budget_bdd_nodes = 1 << 24;
  RfnVerifier verifier(n, n.output("bad"), opt);
  const RfnResult res = verifier.run();
  EXPECT_EQ(res.verdict, Verdict::Holds);
  EXPECT_FALSE(res.budget_trip.tripped);
}

TEST(TraceJsonEdge, ZeroIterationRunWritesSummaryOnly) {
  RfnResult res;  // default: Unknown, no iterations
  res.note = "never ran";
  std::ostringstream os;
  write_trace_json(os, res);
  std::istringstream in(os.str());
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string err;
    lines.push_back(json::parse(line, &err));
    ASSERT_TRUE(err.empty()) << err;
  }
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("type")->as_string(), "summary");
  EXPECT_EQ(lines[0].find("verdict")->as_string(), "?");
  EXPECT_EQ(lines[0].find("iterations")->as_uint(), 0u);
  EXPECT_EQ(lines[0].find("budget_trip"), nullptr);
  ASSERT_NE(lines[0].find("metrics"), nullptr);
}

TEST(TraceJsonEdge, ResourceOutSummarySchema) {
  RfnResult res;
  res.verdict = Verdict::ResourceOut;
  res.note = "budget exceeded: bdd-node-budget";
  res.budget_trip.tripped = true;
  res.budget_trip.reason = "bdd-node-budget";
  res.budget_trip.at_seconds = 1.25;
  res.budget_trip.bdd_nodes = 123456;
  const json::Value summary = summary_json(res);
  EXPECT_EQ(summary.find("verdict")->as_string(), "resource-out");
  EXPECT_EQ(summary.find_path("budget_trip.reason")->as_string(),
            "bdd-node-budget");
  EXPECT_EQ(summary.find_path("budget_trip.bdd_nodes")->as_uint(), 123456u);
  EXPECT_NEAR(summary.find_path("budget_trip.at_seconds")->as_double(), 1.25,
              1e-9);
  // Round-trips through the parser.
  std::string err;
  const json::Value parsed = json::parse(summary.dump(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_TRUE(parsed == summary);
}

TEST(TraceJsonEdge, CacheHitRateZeroLookupsIsZero) {
  RfnIteration it;  // all-zero BDD stats: a run that died before any lookup
  const json::Value o = iteration_json(0, it);
  ASSERT_NE(o.find_path("bdd.cache_hit_rate"), nullptr);
  const double rate = o.find_path("bdd.cache_hit_rate")->as_double();
  EXPECT_FALSE(std::isnan(rate));
  EXPECT_EQ(rate, 0.0);
  // And the document survives a parse (NaN would not serialize as JSON).
  std::string err;
  json::parse(o.dump(), &err);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(MetricsEpoch, TwoRunsDoNotConflateSummaries) {
  const Netlist n = holds_netlist();
  const auto run_once = [&] {
    RfnVerifier verifier(n, n.output("bad"), RfnOptions{});
    return verifier.run();
  };
  // Summaries are serialized at run end, like the CLI's --trace-json path:
  // the baseline subtraction scopes out *earlier* runs in the process.
  const RfnResult first = run_once();
  const json::Value first_summary = summary_json(first);
  const RfnResult second = run_once();
  const json::Value second_summary = summary_json(second);
  EXPECT_NE(first.metrics_epoch, second.metrics_epoch);

  // Each summary reports exactly one run's work even though the registry
  // accumulated both: rfn.runs is 1 in both, and each run's iteration
  // counter matches its own per_iteration size, not the sum.
  const struct {
    const json::Value* summary;
    const RfnResult* res;
  } runs[] = {{&first_summary, &first}, {&second_summary, &second}};
  for (const auto& [summary, res] : runs) {
    const json::Value* counters = summary->find_path("metrics.counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("rfn.runs")->as_uint(), 1u)
        << summary->find("metrics_epoch")->as_uint();
    EXPECT_EQ(counters->find("rfn.iterations")->as_uint(),
              res->per_iteration.size());
  }

  // Without the baseline the registry conflates the runs — this is exactly
  // what the epoch guard exists to prevent in the summary.
  const json::Value raw = MetricsRegistry::global().to_json();
  EXPECT_GE(raw.find_path("counters")->find("rfn.runs")->as_uint(), 2u);
}

TEST(MetricsEpoch, SpanCountsCrossCheckRegistry) {
  // The tentpole's consistency requirement: spans and the metrics registry
  // must agree on engine activity. Every post_image call emits exactly one
  // "bdd.image" span begin and one mc.post_images increment.
  TracerGuard guard;
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  const Netlist n = holds_netlist();
  RfnVerifier verifier(n, n.output("bad"), RfnOptions{});
  const RfnResult res = verifier.run();
  SpanTracer::global().disable();
  ASSERT_EQ(res.verdict, Verdict::Holds);
  const MetricsSnapshot delta =
      MetricsRegistry::global().snapshot().delta(before);

  const json::Value doc = SpanTracer::global().to_chrome_json();
  expect_well_formed(doc);
  EXPECT_EQ(count_events(doc, "bdd.image").begins,
            static_cast<int>(delta.value("mc.post_images")));
  EXPECT_EQ(count_events(doc, "mc.reach").begins,
            static_cast<int>(delta.value("mc.reach.calls")));
  EXPECT_EQ(count_events(doc, "rfn.iteration").begins,
            static_cast<int>(delta.value("rfn.iterations")));
  EXPECT_EQ(count_events(doc, "portfolio.race").begins,
            static_cast<int>(delta.value("portfolio.races")));
}

#ifdef RFN_CLI_PATH
std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

json::Value parse_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  json::Value doc = json::parse(buf.str(), &err);
  EXPECT_TRUE(err.empty()) << path << ": " << err;
  return doc;
}

// Golden-schema check of the CLI's span export on the committed demo
// design: Chrome-trace-format validity, >= 3 engine threads, flow linkage,
// and wall-time agreement between the rfn.run span, the run summary, and
// tools/trace_report.py.
TEST(TraceSpansCli, GoldenSchemaAndWallTimeAgreement) {
  const std::string design = std::string(RFN_TEST_DATA_DIR) + "/demo.v";
  const std::string spans = ::testing::TempDir() + "/spans.json";
  const std::string trace = ::testing::TempDir() + "/trace.jsonl";
  const std::string cmd = std::string(RFN_CLI_PATH) + " verify " + design +
                          " --bad bad_q --workers 3 --trace-spans " + spans +
                          " --trace-json " + trace + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const json::Value doc = parse_file(spans);
  expect_well_formed(doc);

  // Spans from >= 3 distinct threads actually doing engine work.
  std::set<uint64_t> tids_with_spans;
  for (const json::Value& e : doc.find("traceEvents")->items())
    if (e.find("ph")->as_string() == "B")
      tids_with_spans.insert(e.find("tid")->as_uint());
  EXPECT_GE(tids_with_spans.size(), 3u);

  // Flow linkage: every flow id pairs s with f, and at least one crosses
  // threads (race thread -> executor worker).
  std::map<uint64_t, std::set<std::string>> flow_phases;
  std::map<uint64_t, std::set<uint64_t>> flow_tids;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph != "s" && ph != "f") continue;
    const uint64_t id = e.find("id")->as_uint();
    flow_phases[id].insert(ph);
    flow_tids[id].insert(e.find("tid")->as_uint());
  }
  ASSERT_FALSE(flow_phases.empty());
  size_t cross = 0;
  for (const auto& [id, phases] : flow_phases) {
    EXPECT_EQ(phases.size(), 2u) << "flow " << id;
    if (flow_tids[id].size() == 2) ++cross;
  }
  EXPECT_GE(cross, 1u);

  // The rfn.run span must reproduce the summary's wall time within 5%.
  double run_begin = -1.0, run_end = -1.0;
  for (const json::Value& e : doc.find("traceEvents")->items()) {
    if (e.find("name")->as_string() != "rfn.run") continue;
    if (e.find("ph")->as_string() == "B") run_begin = e.find("ts")->as_double();
    if (e.find("ph")->as_string() == "E") run_end = e.find("ts")->as_double();
  }
  ASSERT_GE(run_begin, 0.0);
  ASSERT_GT(run_end, run_begin);
  const double span_s = (run_end - run_begin) * 1e-6;

  const std::vector<std::string> trace_lines = read_lines(trace);
  ASSERT_FALSE(trace_lines.empty());
  std::string err;
  const json::Value summary = json::parse(trace_lines.back(), &err);
  ASSERT_TRUE(err.empty()) << err;
  const double summary_s = summary.find("seconds")->as_double();
  ASSERT_GT(summary_s, 0.0);
  // 5% relative plus a 2 ms absolute floor: demo.v runs in ~10 ms, where a
  // single scheduler hiccup between the span end and the Stopwatch read
  // would otherwise dominate the relative error.
  EXPECT_NEAR(span_s, summary_s, summary_s * 0.05 + 0.002);

#ifdef RFN_TOOLS_DIR
  // trace_report.py must accept the file and reproduce the same total.
  const std::string report = ::testing::TempDir() + "/report.txt";
  const std::string py_cmd = std::string("python3 ") + RFN_TOOLS_DIR +
                             "/trace_report.py " + spans + " > " + report;
  const int py_rc = std::system(py_cmd.c_str());
  if (py_rc != 0) {
    GTEST_SKIP() << "python3 unavailable or trace_report failed (rc="
                 << py_rc << ")";
  }
  double reported_s = -1.0;
  for (const std::string& line : read_lines(report)) {
    if (line.rfind("total_wall_s=", 0) == 0)
      reported_s = std::atof(line.c_str() + std::string("total_wall_s=").size());
  }
  ASSERT_GT(reported_s, 0.0) << "total_wall_s line missing from report";
  EXPECT_NEAR(reported_s, summary_s, summary_s * 0.05 + 0.002);
  std::remove(report.c_str());
#endif  // RFN_TOOLS_DIR
  std::remove(spans.c_str());
  std::remove(trace.c_str());
}

// End-to-end resource-out through the CLI on the committed slow design:
// exit code 1, RESOURCE-OUT verdict, budget-trip annotation in both files.
TEST(TraceSpansCli, BudgetTripInBothTraceFormats) {
  const std::string design = std::string(RFN_TEST_DATA_DIR) + "/slow24.v";
  const std::string spans = ::testing::TempDir() + "/spans_ro.json";
  const std::string trace = ::testing::TempDir() + "/trace_ro.jsonl";
  const std::string cmd = std::string(RFN_CLI_PATH) + " verify " + design +
                          " --bad bad --workers 3 --budget-ms 150" +
                          " --trace-spans " + spans + " --trace-json " +
                          trace + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 1) << cmd;  // inconclusive verdicts exit 1

  const json::Value doc = parse_file(spans);
  expect_well_formed(doc);
  EXPECT_EQ(count_events(doc, "budget-trip").instants, 1);

  const std::vector<std::string> trace_lines = read_lines(trace);
  ASSERT_FALSE(trace_lines.empty());
  std::string err;
  const json::Value summary = json::parse(trace_lines.back(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(summary.find("verdict")->as_string(), "resource-out");
  EXPECT_EQ(summary.find_path("budget_trip.reason")->as_string(),
            "wall-budget");
  std::remove(spans.c_str());
  std::remove(trace.c_str());
}
#endif  // RFN_CLI_PATH

}  // namespace
}  // namespace rfn
