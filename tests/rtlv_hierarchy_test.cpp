// Tests for the frontend extensions: case statements, multi-module sources,
// and hierarchical elaboration (instantiation with flattening).

#include <gtest/gtest.h>

#include "rtlv/elaborate.hpp"
#include "rtlv/parser.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

using rtlv::elaborate_verilog;

TEST(RtlvCase, GrayCounterViaCase) {
  const auto design = elaborate_verilog(R"(
    module gray(clk, step, q);
      input clk; input step;
      output [1:0] q;
      reg [1:0] s = 0;
      always @(posedge clk) begin
        if (step) begin
          case (s)
            0: s <= 1;
            1: s <= 3;
            3: s <= 2;
            default: s <= 0;
          endcase
        end
      end
      assign q = s;
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  const GateId step = n.find("step");
  auto value = [&]() {
    return (sim.value(n.output("q[0]")) == Tri::T ? 1 : 0) |
           (sim.value(n.output("q[1]")) == Tri::T ? 2 : 0);
  };
  const int expect[] = {0, 1, 3, 2, 0, 1};
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(value(), expect[c]) << "cycle " << c;
    sim.set(step, Tri::T);
    sim.eval();
    sim.step();
  }
}

TEST(RtlvCase, MultipleLabelsAndNoDefaultHold) {
  const auto design = elaborate_verilog(R"(
    module m(clk, sel, hit);
      input clk;
      input [2:0] sel;
      output hit;
      reg h = 0;
      always @(posedge clk) begin
        case (sel)
          1, 3, 5, 7: h <= 1;
          0: h <= 0;
        endcase
      end
      assign hit = h;
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  auto drive = [&](int v) {
    for (int i = 0; i < 3; ++i)
      sim.set(n.find("sel[" + std::to_string(i) + "]"), tri_of((v >> i) & 1));
    sim.eval();
    sim.step();
  };
  drive(3);  // odd -> set
  EXPECT_EQ(sim.value(n.output("hit")), Tri::T);
  drive(6);  // unmatched, no default -> hold
  EXPECT_EQ(sim.value(n.output("hit")), Tri::T);
  drive(0);  // clear
  EXPECT_EQ(sim.value(n.output("hit")), Tri::F);
}

TEST(RtlvParser, MultiModuleSource) {
  const auto modules = rtlv::parse_modules(R"(
    module a(clk); input clk; endmodule
    module b(clk); input clk; endmodule
  )");
  ASSERT_EQ(modules.size(), 2u);
  EXPECT_EQ(modules[0].name, "a");
  EXPECT_EQ(modules[1].name, "b");
}

constexpr const char* kHierSource = R"(
  module toggler(clk, en, q);
    input clk; input en;
    output q;
    reg t = 0;
    always @(posedge clk) if (en) t <= ~t;
    assign q = t;
  endmodule

  module pair(clk, go, both);
    input clk; input go;
    output both;
    wire q0;
    wire q1;
    toggler first (.clk(clk), .en(go), .q(q0));
    toggler second (.clk(clk), .en(q0), .q(q1));
    assign both = q0 & q1;
  endmodule
)";

TEST(RtlvHierarchy, FlattensInstances) {
  const auto design = elaborate_verilog(kHierSource);
  EXPECT_EQ(design.module_name, "pair");
  const Netlist& n = design.netlist;
  // Two toggler registers, flattened with instance prefixes.
  EXPECT_EQ(n.num_regs(), 2u);
  EXPECT_NE(n.find("first.t"), kNullGate);
  EXPECT_NE(n.find("second.t"), kNullGate);
  // Only the parent's real input remains (clk implicit).
  EXPECT_EQ(n.num_inputs(), 1u);
}

TEST(RtlvHierarchy, BehaviorMatchesSemantics) {
  const auto design = elaborate_verilog(kHierSource);
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  const GateId go = n.find("go");
  // first toggles every cycle; second toggles when first's q is high.
  bool t0 = false, t1 = false;
  for (int c = 0; c < 12; ++c) {
    sim.set(go, Tri::T);
    sim.eval();
    EXPECT_EQ(sim.value(n.output("both")), tri_of(t0 && t1)) << "cycle " << c;
    const bool next_t0 = !t0;
    const bool next_t1 = t0 ? !t1 : t1;
    sim.step();
    t0 = next_t0;
    t1 = next_t1;
  }
}

TEST(RtlvHierarchy, PositionalConnections) {
  const auto design = elaborate_verilog(R"(
    module inv(clk, a, y);
      input clk; input a; output y;
      assign y = !a;
    endmodule
    module top(clk, x, z);
      input clk; input x; output z;
      wire mid;
      inv u0 (clk, x, mid);
      inv u1 (clk, mid, z);
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.set(n.find("x"), Tri::T);
  sim.eval();
  EXPECT_EQ(sim.value(n.output("z")), Tri::T);  // double inversion
  sim.set(n.find("x"), Tri::F);
  sim.eval();
  EXPECT_EQ(sim.value(n.output("z")), Tri::F);
}

TEST(RtlvHierarchy, InstancesInAnyDeclarationOrder) {
  // u1 consumes u0's output but is declared first: demand-driven
  // elaboration must handle it.
  const auto design = elaborate_verilog(R"(
    module inv(clk, a, y);
      input clk; input a; output y;
      assign y = !a;
    endmodule
    module top(clk, x, z);
      input clk; input x; output z;
      wire mid;
      inv u1 (.clk(clk), .a(mid), .y(z));
      inv u0 (.clk(clk), .a(x), .y(mid));
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.set(n.find("x"), Tri::T);
  sim.eval();
  EXPECT_EQ(sim.value(n.output("z")), Tri::T);
}

TEST(RtlvHierarchy, NestedHierarchy) {
  const auto design = elaborate_verilog(R"(
    module bit(clk, d, q);
      input clk; input d; output q;
      reg r = 0;
      always @(posedge clk) r <= d;
      assign q = r;
    endmodule
    module stage2(clk, d, q);
      input clk; input d; output q;
      wire m;
      bit b0 (.clk(clk), .d(d), .q(m));
      bit b1 (.clk(clk), .d(m), .q(q));
    endmodule
    module top(clk, d, q);
      input clk; input d; output q;
      wire m;
      stage2 s0 (.clk(clk), .d(d), .q(m));
      stage2 s1 (.clk(clk), .d(m), .q(q));
    endmodule
  )");
  const Netlist& n = design.netlist;
  EXPECT_EQ(n.num_regs(), 4u);  // 4-stage shift register, flattened twice
  EXPECT_NE(n.find("s0.b0.r"), kNullGate);
  EXPECT_NE(n.find("s1.b1.r"), kNullGate);
  Sim3 sim(n);
  sim.load_initial_state();
  sim.set(n.find("d"), Tri::T);
  for (int c = 0; c < 4; ++c) {
    sim.eval();
    sim.step();
  }
  sim.eval();
  EXPECT_EQ(sim.value(n.output("q")), Tri::T);
}

TEST(RtlvHierarchy, TopSelection) {
  const auto design = elaborate_verilog(R"(
    module helper(clk, a, y); input clk; input a; output y; assign y = a; endmodule
    module main_mod(clk, a, y); input clk; input a; output y;
      helper h (.clk(clk), .a(a), .y(y));
    endmodule
  )", "helper");
  EXPECT_EQ(design.module_name, "helper");
}

}  // namespace
}  // namespace rfn
