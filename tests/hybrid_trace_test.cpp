// Tests for the hybrid BDD-ATPG trace engine (paper Section 2.2) and the
// saved-variable-order machinery it shares the manager with.

#include <gtest/gtest.h>

#include "core/abstraction.hpp"
#include "core/hybrid_trace.hpp"
#include "mc/image.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

// Replays an abstract trace on the abstract model itself: pseudo-inputs are
// driven from the input cubes, registers evolve; the final state must
// satisfy `bad`.
void check_abstract_trace(const Netlist& n, const Trace& t, GateId bad_sig) {
  Sim3 sim(n);
  sim.load_initial_state();
  for (GateId r : n.regs())
    if (sim.value(r) == Tri::X) sim.set(r, cube_lookup(t.steps[0].state, r));
  for (size_t c = 0; c < t.steps.size(); ++c) {
    sim.clear_inputs();
    sim.set_cube(t.steps[c].inputs);
    sim.eval();
    if (c + 1 < t.steps.size()) sim.step();
  }
  EXPECT_EQ(sim.value(bad_sig), Tri::T);
}

// A "wide" abstract model: the watchdog fires when a funnel condition over
// many pseudo-inputs coincides with a register pattern. Pre-image on the
// model itself would see all the inputs; the min-cut sees only the funnels.
struct WideModel {
  Netlist n;
  GateId bad;
};

WideModel make_wide_model(size_t fan) {
  NetBuilder b;
  const GateId r0 = b.reg("r0");
  const GateId r1 = b.reg("r1");
  // Funnel 1: AND-tree over `fan` inputs.
  GateId all_ones = b.input("a0");
  for (size_t i = 1; i < fan; ++i) all_ones = b.and_(all_ones, b.input("a" + std::to_string(i)));
  // Funnel 2: XOR-tree.
  GateId parity = b.input("p0");
  for (size_t i = 1; i < fan; ++i) parity = b.xor_(parity, b.input("p" + std::to_string(i)));
  b.set_next(r0, all_ones);
  b.set_next(r1, b.and_(r0, parity));
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, r1));
  b.output("bad", bad);
  WideModel w;
  w.bad = bad;
  w.n = b.take();
  return w;
}

TEST(HybridTrace, FindsTraceOnWideInputModel) {
  const WideModel w = make_wide_model(16);
  BddMgr mgr;
  Encoder enc(mgr, w.n);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.var(enc.state_var(w.bad));
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_EQ(reach.status, ReachStatus::BadReachable);

  HybridTraceStats st;
  const Trace t = hybrid_error_trace(enc, w.n, reach, bad_set, {}, &st);
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t.cycles(), 4u);  // inputs@1 -> r0@2 -> r1@3 -> bad@4
  // The min cut compresses 32 inputs into 2 funnels.
  EXPECT_EQ(st.model_inputs, 32u);
  EXPECT_LE(st.mc_inputs, 4u);
  check_abstract_trace(w.n, t, w.bad);
}

TEST(HybridTrace, MinCutCubesRouteThroughAtpg) {
  const WideModel w = make_wide_model(12);
  BddMgr mgr;
  Encoder enc(mgr, w.n);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.var(enc.state_var(w.bad));
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_EQ(reach.status, ReachStatus::BadReachable);
  HybridTraceStats st;
  const Trace t = hybrid_error_trace(enc, w.n, reach, bad_set, {}, &st);
  ASSERT_FALSE(t.empty());
  // The funnels are internal signals of N, so at least one backward step
  // must have produced a min-cut cube that combinational ATPG justified.
  EXPECT_GT(st.mincut_cubes, 0u);
  EXPECT_GT(st.atpg_calls, 0u);
  // And the final trace drives real inputs: replay must reach bad.
  check_abstract_trace(w.n, t, w.bad);
}

TEST(HybridTrace, TraceStatesStayInRings) {
  const WideModel w = make_wide_model(8);
  BddMgr mgr;
  Encoder enc(mgr, w.n);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.var(enc.state_var(w.bad));
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_EQ(reach.status, ReachStatus::BadReachable);
  const Trace t = hybrid_error_trace(enc, w.n, reach, bad_set);
  ASSERT_FALSE(t.empty());
  for (size_t i = 0; i < t.steps.size(); ++i) {
    const Bdd sc = enc.cube_bdd(t.steps[i].state);
    EXPECT_TRUE(sc.implies(reach.rings[i])) << "step " << i;
  }
}

TEST(SavedOrder, RoundTripAcrossIterations) {
  // Build an abstraction, reorder it, save; rebuild a bigger abstraction
  // and apply: shared signals must preserve their relative order.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r0 = b.reg("r0");
  const GateId r1 = b.reg("r1");
  const GateId r2 = b.reg("r2");
  b.set_next(r0, in);
  b.set_next(r1, b.xor_(r0, in));
  b.set_next(r2, b.and_(r1, r0));
  b.output("p", r2);
  Netlist m = b.take();

  SavedOrder saved;
  {
    const Subcircuit sub = extract_abstract_model(m, {r2}, {r2});
    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    // Force a specific order: reverse everything.
    std::vector<BddVar> rev = mgr.current_order();
    std::reverse(rev.begin(), rev.end());
    mgr.set_order(rev);
    saved = save_order(mgr, enc, sub);
    EXPECT_FALSE(saved.empty());
  }
  {
    const Subcircuit sub = extract_abstract_model(m, {r2}, {r1, r2});
    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    apply_saved_order(mgr, enc, sub, saved);
    // The saved tokens that survive must appear in saved relative order.
    std::vector<GateId> seen;
    for (uint32_t lvl = 0; lvl < mgr.num_vars(); ++lvl) {
      const BddVar v = mgr.var_at_level(lvl);
      const GateId reg = enc.reg_of_var(v);
      if (reg != kNullGate && !enc.is_next_var(v)) seen.push_back(sub.to_old(reg));
    }
    // r2 was below r1 (its pseudo-input) in the reversed order... just
    // verify determinism and integrity rather than a specific order:
    mgr.check_integrity();
    EXPECT_EQ(seen.size(), 2u);
    // Applying again is idempotent.
    const auto order_before = mgr.current_order();
    apply_saved_order(mgr, enc, sub, saved);
    EXPECT_EQ(mgr.current_order(), order_before);
  }
}

TEST(SavedOrder, EmptySavedOrderIsNoop) {
  NetBuilder b;
  const GateId r = b.reg("r");
  b.set_next(r, b.not_(r));
  Netlist m = b.take();
  const Subcircuit sub = extract_abstract_model(m, {r}, {r});
  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  const auto before = mgr.current_order();
  apply_saved_order(mgr, enc, sub, SavedOrder{});
  EXPECT_EQ(mgr.current_order(), before);
}

}  // namespace
}  // namespace rfn
