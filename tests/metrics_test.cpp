// Metrics registry tests: concurrent counter increments from executor
// threads, scoped-timer nesting, JSON serialization round-trips, and a
// golden-schema check of the CLI's --trace-json event trace on a committed
// design (the CLI binary path is injected as RFN_CLI_PATH at compile time).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/executor.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace rfn {
namespace {

TEST(Metrics, ConcurrentCounterIncrements) {
  Counter& c = MetricsRegistry::global().counter("test.concurrent");
  c.reset();
  constexpr uint64_t kJobs = 64;
  constexpr uint64_t kAddsPerJob = 1000;
  {
    Executor exec(4);
    for (uint64_t j = 0; j < kJobs; ++j)
      exec.submit([&c] {
        for (uint64_t i = 0; i < kAddsPerJob; ++i) c.add(1);
      });
    // ~Executor drains the queue and joins the workers.
  }
  EXPECT_EQ(c.value(), kJobs * kAddsPerJob);
}

TEST(Metrics, RegistryReferencesSurviveReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("alpha");
  c.add(41);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // the cached reference still points at the live counter
  EXPECT_EQ(reg.counter("alpha").value(), 1u);
}

TEST(Metrics, GaugeLevelAndHighWaterMark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("nodes");
  g.set(10);
  g.set(3);
  g.record_max(7);  // below the mark: no effect on either
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 10);
}

TEST(Metrics, TimerNesting) {
  MetricsRegistry reg;
  Timer& outer = reg.timer("outer");
  Timer& inner = reg.timer("inner");
  {
    MetricTimer to(outer);
    {
      MetricTimer ti(inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 1u);
  // The outer scope strictly contains the inner one.
  EXPECT_GT(outer.total_seconds(), inner.total_seconds());
  EXPECT_GT(inner.total_seconds(), 0.0);
}

TEST(Metrics, MetricTimerStopIsIdempotent) {
  MetricsRegistry reg;
  Timer& t = reg.timer("t");
  MetricTimer mt(t);
  mt.stop();
  mt.stop();  // second stop records nothing
  EXPECT_EQ(t.count(), 1u);
}

TEST(Metrics, SnapshotFlattensAndDeltas) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(7);
  reg.timer("t").record(0.25);
  const MetricsSnapshot before = reg.snapshot();
  EXPECT_EQ(before.value("c"), 5.0);
  EXPECT_EQ(before.value("g"), 7.0);
  EXPECT_EQ(before.value("g.max"), 7.0);
  EXPECT_EQ(before.value("t.count"), 1.0);
  EXPECT_NEAR(before.value("t.seconds"), 0.25, 1e-9);
  EXPECT_EQ(before.value("missing", -1.0), -1.0);

  reg.counter("c").add(3);
  reg.timer("t").record(0.25);
  const MetricsSnapshot d = reg.snapshot().delta(before);
  EXPECT_EQ(d.value("c"), 3.0);
  EXPECT_EQ(d.value("t.count"), 1.0);
  EXPECT_NEAR(d.value("t.seconds"), 0.25, 1e-9);
}

TEST(Metrics, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("engine.calls").add(1234567);
  reg.gauge("engine.peak").set(42);
  reg.gauge("engine.peak").record_max(99);
  reg.timer("engine.race").record(1.5);
  const json::Value doc = reg.to_json();

  // Compact and pretty forms parse back to the identical document.
  for (const int indent : {-1, 2}) {
    std::string err;
    const json::Value parsed = json::parse(doc.dump(indent), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(parsed == doc) << "indent=" << indent;
  }

  // Dotted metric names collide with dotted-path hops, so look the flat
  // keys up through the nested objects rather than via find_path.
  ASSERT_NE(doc.find("counters"), nullptr);
  const json::Value* calls = doc.find("counters")->find("engine.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->as_uint(), 1234567u);
  const json::Value* peak = doc.find("gauges")->find("engine.peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->find("value")->as_uint(), 42u);
  EXPECT_EQ(peak->find("max")->as_uint(), 99u);
  const json::Value* race = doc.find("timers")->find("engine.race");
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->find("count")->as_uint(), 1u);
  EXPECT_NEAR(race->find("seconds")->as_double(), 1.5, 1e-9);
}

TEST(Metrics, BaselineRelativeJson) {
  MetricsRegistry reg;
  reg.counter("runs").add(1);
  reg.gauge("level").set(10);
  reg.timer("race").record(2.0);
  const MetricsSnapshot baseline = reg.snapshot();

  reg.counter("runs").add(1);
  reg.gauge("level").set(4);
  reg.timer("race").record(0.5);
  const json::Value doc = reg.to_json(&baseline);

  // Counters and timer totals are baseline-subtracted; gauges report the
  // current level (a level is not a difference).
  EXPECT_EQ(doc.find("counters")->find("runs")->as_uint(), 1u);
  EXPECT_EQ(doc.find("gauges")->find("level")->find("value")->as_uint(), 4u);
  const json::Value* race = doc.find("timers")->find("race");
  EXPECT_EQ(race->find("count")->as_uint(), 1u);
  EXPECT_NEAR(race->find("seconds")->as_double(), 0.5, 1e-9);

  // A baseline above the current value (registry reset between snapshot and
  // serialization) clamps to zero instead of going negative.
  reg.counter("runs").reset();
  EXPECT_EQ(reg.to_json(&baseline).find("counters")->find("runs")->as_uint(),
            0u);
}

TEST(Metrics, EpochGuardSnapshotsAndIncrements) {
  MetricsRegistry reg;
  reg.counter("work").add(7);
  const uint64_t before = reg.epoch();
  const MetricsEpoch epoch(reg);
  EXPECT_EQ(epoch.id(), before + 1);
  EXPECT_EQ(reg.epoch(), before + 1);
  EXPECT_EQ(epoch.baseline().value("work"), 7.0);
  // Distinct guards get distinct ids — two runs can never share an epoch.
  const MetricsEpoch other(reg);
  EXPECT_NE(other.id(), epoch.id());
}

TEST(Json, LargeCountersKeepExactIntegerForm) {
  // Counters are doubles in the document model; integers below 2^53 must
  // print without exponent or fraction so golden diffs stay byte-stable.
  json::Value v = json::Value::object();
  v.set("n", uint64_t{9007199254740992ull >> 1});
  EXPECT_EQ(v.dump(), "{\"n\":4503599627370496}");
}

TEST(Json, ParserRejectsTrailingGarbage) {
  std::string err;
  const json::Value v = json::parse("{\"a\":1} x", &err);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(err.empty());
}

#ifdef RFN_CLI_PATH
// Golden-schema check: run the real CLI on the committed demo design and
// validate the --trace-json document shape (one iteration object per CEGAR
// iteration plus a final summary carrying the registry dump).
TEST(TraceJson, CliGoldenSchema) {
  const std::string design = std::string(RFN_TEST_DATA_DIR) + "/demo.v";
  const std::string out = ::testing::TempDir() + "/trace.jsonl";
  const std::string cmd = std::string(RFN_CLI_PATH) + " verify " + design +
                          " --bad bad_q --trace-json " + out + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(out);
  ASSERT_TRUE(in.is_open()) << out;
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string err;
    lines.push_back(json::parse(line, &err));
    ASSERT_TRUE(err.empty()) << err << " in: " << line;
  }
  ASSERT_GE(lines.size(), 2u);  // at least one iteration + the summary

  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    const json::Value& it = lines[i];
    ASSERT_EQ(it.find("type")->as_string(), "iteration") << "line " << i;
    EXPECT_EQ(it.find("iter")->as_uint(), i);
    for (const char* key : {"abstraction", "reach", "bdd", "hybrid",
                            "concretize", "sat", "refine", "engines"})
      ASSERT_NE(it.find(key), nullptr) << key << " missing at line " << i;
    EXPECT_GE(it.find_path("abstraction.regs")->as_uint(), 1u);
    EXPECT_GT(it.find_path("bdd.peak_nodes")->as_uint(), 0u);
    for (const char* key : {"sat.conflicts", "sat.depth", "sat.core_size",
                            "refine.hint_candidates"})
      ASSERT_NE(it.find_path(key), nullptr) << key << " missing at line " << i;
    ASSERT_NE(it.find_path("engines.abstract.winner"), nullptr);
    ASSERT_NE(it.find_path("engines.abstract.seconds"), nullptr);
    EXPECT_FALSE(it.find_path("reach.status")->as_string().empty());
  }

  const json::Value& summary = lines.back();
  ASSERT_EQ(summary.find("type")->as_string(), "summary");
  EXPECT_EQ(summary.find("trace_version")->as_string(), "rfn-trace-v1");
  EXPECT_EQ(summary.find("verdict")->as_string(), "T");  // demo.v holds
  EXPECT_EQ(summary.find("iterations")->as_uint(), lines.size() - 1);
  const json::Value* metrics = summary.find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* key : {"counters", "gauges", "timers"})
    ASSERT_NE(metrics->find(key), nullptr) << key;
  // The run must have recorded CEGAR iterations and at least one race.
  EXPECT_EQ(metrics->find("counters")->find("rfn.iterations")->as_uint(),
            lines.size() - 1);
  EXPECT_GE(metrics->find("counters")->find("portfolio.races")->as_uint(), 1u);
  std::remove(out.c_str());
}
#endif  // RFN_CLI_PATH

}  // namespace
}  // namespace rfn
