// SAT subsystem tests: the CDCL solver's incremental-assumption contract,
// the BMC encoder's enable/trigger semantics on hand-built netlists, and the
// engine's integration contract with the CEGAR loop —
//
//   * solver: models, UNSAT assumption cores (final_conflict), incremental
//     re-solving after new clauses/variables, level-0 inconsistency (ok()),
//     cooperative cancellation that leaves the instance usable;
//   * BMC: exact shortest-trace depths on a counter, pseudo-input semantics
//     of excluded registers (abstraction by assumption flips), bounded-UNSAT
//     core registers, trace replay and certification, one instance reused
//     across depths, register sets and roots;
//   * loop: UNSAT-core hints never change a verdict (hint-on vs hint-off on
//     random designs, sequential bdd+sat races so the hint path is
//     deterministic), and RfnOptions::validate rejects unknown engine names.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/certify.hpp"
#include "core/rfn.hpp"
#include "netlist/builder.hpp"
#include "sat/bmc.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "sim/sim3.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

using sat::Lit;
using sat::Solver;

TEST(SatSolver, SatisfiableModel) {
  Solver s;
  const Lit a = Lit::make(s.new_var());
  const Lit b = Lit::make(s.new_var());
  ASSERT_TRUE(s.add_clause({a}));
  ASSERT_TRUE(s.add_clause({~a, b}));
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_EQ(s.lit_value(a), sat::LBool::True);
  EXPECT_EQ(s.lit_value(b), sat::LBool::True);
}

TEST(SatSolver, AssumptionCoreNamesOnlyUsedAssumptions) {
  Solver s;
  const Lit a = Lit::make(s.new_var());
  const Lit b = Lit::make(s.new_var());
  const Lit c = Lit::make(s.new_var());
  // a and b are jointly contradictory; c is irrelevant.
  ASSERT_TRUE(s.add_clause({~a, ~b}));
  ASSERT_EQ(s.solve({a, b, c}), Solver::Result::Unsat);
  std::vector<Lit> core = s.final_conflict();
  EXPECT_EQ(core.size(), 2u);
  EXPECT_NE(std::find(core.begin(), core.end(), a), core.end());
  EXPECT_NE(std::find(core.begin(), core.end(), b), core.end());
  EXPECT_EQ(std::find(core.begin(), core.end(), c), core.end());
  // The formula without the assumptions is still satisfiable: incremental
  // re-solve must succeed on the same instance.
  ASSERT_EQ(s.solve({a, c}), Solver::Result::Sat);
  EXPECT_EQ(s.lit_value(b), sat::LBool::False);
}

TEST(SatSolver, IncrementalClausesAndVariables) {
  Solver s;
  std::vector<Lit> chain;
  for (int i = 0; i < 8; ++i) chain.push_back(Lit::make(s.new_var()));
  for (size_t i = 0; i + 1 < chain.size(); ++i)
    ASSERT_TRUE(s.add_clause({~chain[i], chain[i + 1]}));  // chain[i] -> chain[i+1]
  ASSERT_EQ(s.solve({chain.front()}), Solver::Result::Sat);
  for (const Lit l : chain) EXPECT_EQ(s.lit_value(l), sat::LBool::True);

  // Close the contradiction after the first solve; the head assumption is
  // now refutable and the core is exactly that assumption.
  ASSERT_TRUE(s.add_clause({~chain.back()}));
  ASSERT_EQ(s.solve({chain.front()}), Solver::Result::Unsat);
  ASSERT_EQ(s.final_conflict().size(), 1u);
  EXPECT_EQ(s.final_conflict().front(), chain.front());

  // Fresh variables after solves keep working.
  const Lit d = Lit::make(s.new_var());
  ASSERT_TRUE(s.add_clause({d}));
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_EQ(s.lit_value(d), sat::LBool::True);
}

TEST(SatSolver, LevelZeroConflictTurnsOkFalse) {
  Solver s;
  const Lit a = Lit::make(s.new_var());
  ASSERT_TRUE(s.add_clause({a}));
  EXPECT_FALSE(s.add_clause({~a}));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
  EXPECT_TRUE(s.final_conflict().empty());
}

TEST(SatSolver, CancellationLeavesInstanceUsable) {
  // A pre-cancelled token must yield Undef without corrupting state; the
  // same instance then answers the query once the pressure is lifted.
  Solver s;
  std::vector<Lit> pigeons;
  // Pigeonhole instance (7 pigeons, 6 holes): resolution-hard enough that
  // the solver cannot answer before its first cancellation poll (every 256
  // search steps).
  const int np = 7, nh = 6;
  std::vector<std::vector<Lit>> p(np, std::vector<Lit>(nh));
  for (int i = 0; i < np; ++i)
    for (int j = 0; j < nh; ++j) p[i][j] = Lit::make(s.new_var());
  for (int i = 0; i < np; ++i) {
    std::vector<Lit> at_least = p[i];
    ASSERT_TRUE(s.add_clause(std::move(at_least)));
  }
  for (int j = 0; j < nh; ++j)
    for (int i = 0; i < np; ++i)
      for (int k = i + 1; k < np; ++k) ASSERT_TRUE(s.add_clause({~p[i][j], ~p[k][j]}));

  CancelToken cancelled;
  cancelled.cancel();
  EXPECT_EQ(s.solve({}, &cancelled), Solver::Result::Undef);
  EXPECT_TRUE(s.ok());

  CancelToken open;
  EXPECT_EQ(s.solve({}, &open), Solver::Result::Unsat);
}

/// 2-bit binary counter starting at 0; "bad" is the all-ones state, first
/// reached at cycle 4 (state after 3 steps). b1's next-state depends on b0,
/// so freeing b0 (excluding it from the abstraction) shortens the trace.
Netlist counter2() {
  NetBuilder b;
  const GateId b0 = b.reg("b0", Tri::F);
  const GateId b1 = b.reg("b1", Tri::F);
  b.set_next(b0, b.not_(b0));
  b.set_next(b1, b.xor_(b1, b0));
  b.output("bad", b.and_(b0, b1));
  return b.take();
}

TEST(SatBmcTest, CounterDepthsMatchStateDistance) {
  const Netlist m = counter2();
  const GateId bad = m.output("bad");
  SatBmc bmc(m);
  const std::vector<GateId> all = m.regs();

  // Full abstraction: 11 is the 4th counter state (frames are 1-based).
  const SatBmcResult full = bmc.check(bad, 8, all);
  ASSERT_EQ(full.status, AtpgStatus::Sat);
  EXPECT_EQ(full.depth, 4u);
  EXPECT_EQ(full.trace.cycles(), 4u);
  EXPECT_EQ(simulate_trace(m, full.trace, bad), Tri::T);
  EXPECT_TRUE(certify_error_trace(m, full.trace, bad).ok);

  // b1 free: bad needs only b0 = 1 with b1 chosen 1, reachable at cycle 2.
  std::vector<GateId> only_b0 = {all[0]};
  const SatBmcResult abs = bmc.check(bad, 8, only_b0);
  ASSERT_EQ(abs.status, AtpgStatus::Sat);
  EXPECT_EQ(abs.depth, 2u);

  // Both free: cycle 1.
  const SatBmcResult free_all = bmc.check(bad, 8, {});
  ASSERT_EQ(free_all.status, AtpgStatus::Sat);
  EXPECT_EQ(free_all.depth, 1u);
}

TEST(SatBmcTest, BoundedUnsatReportsCoreRegisters) {
  const Netlist m = counter2();
  const GateId bad = m.output("bad");
  SatBmc bmc(m);
  const std::vector<GateId> all = m.regs();

  // No trace of length <= 3 exists with both registers constrained; the
  // refutation must use both registers' enable assumptions (each alone
  // leaves a 2-cycle trace).
  const SatBmcResult r = bmc.check(bad, 3, all);
  ASSERT_EQ(r.status, AtpgStatus::Unsat);
  EXPECT_EQ(r.depth, 3u);
  EXPECT_EQ(r.core_registers, all);

  // Same instance, deeper bound: the learned clauses stay valid and the
  // answer flips to Sat at the true distance.
  const SatBmcResult deeper = bmc.check(bad, 4, all);
  ASSERT_EQ(deeper.status, AtpgStatus::Sat);
  EXPECT_EQ(deeper.depth, 4u);
}

TEST(SatBmcTest, CancelledCheckAborts) {
  const Netlist m = counter2();
  SatBmc bmc(m);
  CancelToken cancelled;
  cancelled.cancel();
  const SatBmcResult r = bmc.check(m.output("bad"), 8, m.regs(), &cancelled);
  EXPECT_EQ(r.status, AtpgStatus::Abort);
  // The instance survives cancellation and answers the next call.
  const SatBmcResult again = bmc.check(m.output("bad"), 8, m.regs());
  EXPECT_EQ(again.status, AtpgStatus::Sat);
  EXPECT_EQ(again.depth, 4u);
}

TEST(SatBmcTest, OneInstanceServesMultipleRoots) {
  // Two properties of one design answered by one instance: adding the
  // second root back-fills its cone into the frames the first root built.
  NetBuilder b;
  const GateId b0 = b.reg("b0", Tri::F);
  const GateId b1 = b.reg("b1", Tri::F);
  b.set_next(b0, b.not_(b0));
  b.set_next(b1, b.xor_(b1, b0));
  const GateId bad_both = b.and_(b0, b1);
  b.output("bad_both", bad_both);
  const GateId bad_b1 = b.and_(b1, b.not_(b0));
  b.output("bad_b1", bad_b1);
  const Netlist m = b.take();

  SatBmc bmc(m);
  const SatBmcResult r1 = bmc.check(m.output("bad_both"), 8, m.regs());
  ASSERT_EQ(r1.status, AtpgStatus::Sat);
  EXPECT_EQ(r1.depth, 4u);
  // 10 is the 3rd counter state.
  const SatBmcResult r2 = bmc.check(m.output("bad_b1"), 8, m.regs());
  ASSERT_EQ(r2.status, AtpgStatus::Sat);
  EXPECT_EQ(r2.depth, 3u);
  EXPECT_EQ(simulate_trace(m, r2.trace, m.output("bad_b1")), Tri::T);
}

Netlist random_netlist(Rng& rng, size_t nins, size_t nregs, int gates) {
  NetBuilder b;
  std::vector<GateId> regs, pool;
  for (size_t i = 0; i < nins; ++i) pool.push_back(b.input("i" + std::to_string(i)));
  for (size_t i = 0; i < nregs; ++i) {
    regs.push_back(b.reg("r" + std::to_string(i), rng.flip() ? Tri::F : Tri::T));
    pool.push_back(regs.back());
  }
  for (int i = 0; i < gates; ++i) {
    const GateId x = pool[rng.below(pool.size())];
    const GateId y = pool[rng.below(pool.size())];
    const GateId z = pool[rng.below(pool.size())];
    switch (rng.below(5)) {
      case 0: pool.push_back(b.and_(x, y)); break;
      case 1: pool.push_back(b.or_(x, y)); break;
      case 2: pool.push_back(b.xor_(x, y)); break;
      case 3: pool.push_back(b.not_(x)); break;
      case 4: pool.push_back(b.mux(x, y, z)); break;
    }
  }
  for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(8)]);
  b.output("bad", pool.back());
  return b.take();
}

TEST(SatHints, CoreHintsNeverChangeVerdicts) {
  // The acceptance contract for UNSAT-core refinement hints: with the race
  // lineup pinned to bdd+sat and sequential execution (so Step 3 is decided
  // by the SAT engine and the hint path actually fires), toggling
  // sat_core_hints may change iteration counts but never the verdict.
  Rng rng(20260805);
  for (int round = 0; round < 12; ++round) {
    const Netlist m =
        random_netlist(rng, 1 + rng.below(3), 4 + rng.below(3),
                       12 + static_cast<int>(rng.below(10)));
    const GateId bad = m.output("bad");
    Verdict verdicts[2];
    for (const bool hints : {false, true}) {
      RfnOptions opt;
      opt.engines = {"bdd", "sat"};
      opt.portfolio_workers = 0;
      opt.sat_core_hints = hints;
      opt.race_probe_time_s = 0.25;
      RfnVerifier v(m, bad, opt);
      verdicts[hints ? 1 : 0] = v.run().verdict;
    }
    EXPECT_EQ(verdicts[0], verdicts[1]) << "hints flipped a verdict (round "
                                        << round << ")";
    EXPECT_NE(verdicts[0], Verdict::Unknown) << "round " << round;
  }
}

TEST(SatOptions, ValidateRejectsUnknownEngines) {
  RfnOptions opt;
  opt.engines = {"bdd", "sat"};
  EXPECT_TRUE(opt.validate().empty());

  opt.engines = {"bdd", "bogus"};
  const std::vector<std::string> msgs = opt.validate();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_NE(msgs.front().find("unknown engine \"bogus\""), std::string::npos);
  // The rejection must spell out the whole valid engine set so a typo is
  // self-correcting from the message alone.
  for (const char* engine : {"bdd", "atpg", "sim", "sat"})
    EXPECT_NE(msgs.front().find(engine), std::string::npos)
        << "message does not name engine \"" << engine
        << "\": " << msgs.front();

  opt.engines.clear();
  opt.race_sat_max_depth = 0;
  EXPECT_FALSE(opt.validate().empty());
}

TEST(SatOptions, EngineEnabledDefaultsToAll) {
  RfnOptions opt;
  EXPECT_TRUE(opt.engine_enabled("bdd"));
  EXPECT_TRUE(opt.engine_enabled("sat"));
  opt.engines = {"sat"};
  EXPECT_TRUE(opt.engine_enabled("sat"));
  EXPECT_FALSE(opt.engine_enabled("bdd"));
}

}  // namespace
}  // namespace rfn
