// Tests for multi-trace extraction and set-guided concretization (the
// paper's second future-work direction).

#include <gtest/gtest.h>

#include "core/concretize.hpp"
#include "core/hybrid_trace.hpp"
#include "core/rfn.hpp"
#include "mc/image.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

// The scenario the feature exists for: the abstract model frees two cut
// registers a, b with bad' = a XOR b; on the real design `a` is stuck at 0,
// so an abstract trace choosing a=1 is spurious while the a=0/b=1 trace is
// real.
struct XorDesign {
  Netlist m;
  GateId a, b, bad, in;
};

XorDesign make_xor_design() {
  NetBuilder bld;
  XorDesign d;
  d.in = bld.input("in");
  d.a = bld.reg("a");
  // b powers up unconstrained, so a depth-2 error trace exists (pick b=1 at
  // cycle 1) — but only for abstract traces that choose a=0.
  d.b = bld.reg("b", Tri::X);
  bld.set_next(d.a, bld.constant(false));  // stuck at 0 in the real design
  bld.set_next(d.b, d.in);
  const GateId bad = bld.reg("bad");
  bld.set_next(bad, bld.or_(bad, bld.xor_(d.a, d.b)));
  bld.output("bad", bad);
  d.bad = bad;
  d.m = bld.take();
  return d;
}

TEST(MultiTrace, ExtractsDistinctTraces) {
  const XorDesign d = make_xor_design();
  // Abstract model: just the watchdog; a and b are free pseudo-inputs.
  const Subcircuit sub = extract_abstract_model(d.m, {d.bad}, {d.bad});
  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.var(enc.state_var(sub.to_new(d.bad)));
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_EQ(reach.status, ReachStatus::BadReachable);

  const std::vector<Trace> traces =
      hybrid_error_traces(enc, sub.net, reach, bad_set, 4);
  ASSERT_GE(traces.size(), 2u);
  // The traces must disagree on the a/b pseudo-input choice.
  const GateId a_new = sub.to_new(d.a);
  const Tri first = cube_lookup(traces[0].steps[0].inputs, a_new);
  bool diverse = false;
  for (const Trace& t : traces)
    diverse |= cube_lookup(t.steps[0].inputs, a_new) != first;
  EXPECT_TRUE(diverse);
}

TEST(MultiTrace, SetGuidanceFindsBugWhereFirstTraceIsSpurious) {
  const XorDesign d = make_xor_design();
  const Subcircuit sub = extract_abstract_model(d.m, {d.bad}, {d.bad});
  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.var(enc.state_var(sub.to_new(d.bad)));
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_EQ(reach.status, ReachStatus::BadReachable);
  std::vector<Trace> traces_n = hybrid_error_traces(enc, sub.net, reach, bad_set, 4);
  ASSERT_GE(traces_n.size(), 2u);
  std::vector<Trace> traces;
  for (const Trace& t : traces_n) traces.push_back(sub.trace_to_old(t));

  // Order so that a spurious trace (a=1 somewhere) comes first: the set
  // concretization must still succeed via a later trace or the consensus.
  std::stable_sort(traces.begin(), traces.end(), [&](const Trace& x, const Trace& y) {
    auto spurious = [&](const Trace& t) {
      for (const TraceStep& s : t.steps)
        if (cube_lookup(s.inputs, d.a) == Tri::T ||
            cube_lookup(s.state, d.a) == Tri::T)
          return 0;  // sorts first
      return 1;
    };
    return spurious(x) < spurious(y);
  });
  const ConcretizeResult single = concretize_trace(d.m, traces[0], d.bad);
  const ConcretizeResult multi = concretize_with_traces(d.m, traces, d.bad);
  ASSERT_EQ(multi.status, AtpgStatus::Sat);
  // The single spurious trace must have failed (that is the scenario).
  EXPECT_EQ(single.status, AtpgStatus::Unsat);

  // Replay the found trace (X-init registers take the trace's cycle-1
  // values).
  Sim3 sim(d.m);
  sim.load_initial_state();
  for (GateId r : d.m.regs())
    if (sim.value(r) == Tri::X)
      sim.set(r, cube_lookup(multi.trace.steps[0].state, r));
  for (size_t c = 0; c < multi.trace.steps.size(); ++c) {
    sim.clear_inputs();
    for (const Literal& lit : multi.trace.steps[c].inputs)
      if (d.m.is_input(lit.signal)) sim.set(lit.signal, tri_of(lit.value));
    sim.eval();
    if (c + 1 < multi.trace.steps.size()) sim.step();
  }
  EXPECT_EQ(sim.value(d.bad), Tri::T);
}

TEST(MultiTrace, ConsensusGuidanceKeepsOnlyAgreedLiterals) {
  NetBuilder b;
  const GateId in0 = b.input("i0");
  const GateId in1 = b.input("i1");
  const GateId r = b.reg("r");
  b.set_next(r, b.or_(in0, in1));
  Netlist m = b.take();

  Trace t1, t2;
  t1.steps.resize(2);
  t2.steps.resize(2);
  t1.steps[0].inputs = {{in0, true}, {in1, false}};
  t2.steps[0].inputs = {{in0, true}, {in1, true}};
  t1.steps[1].state = {{r, true}};
  t2.steps[1].state = {{r, true}};
  const std::vector<Cube> consensus = consensus_guidance(m, {t1, t2}, 2);
  // in0=1 agreed; in1 disagreed -> dropped; r=1 agreed.
  EXPECT_EQ(cube_lookup(consensus[0], in0), Tri::T);
  EXPECT_EQ(cube_lookup(consensus[0], in1), Tri::X);
  EXPECT_EQ(cube_lookup(consensus[1], r), Tri::T);
}

TEST(MultiTrace, RfnOptionReducesIterations) {
  const XorDesign d = make_xor_design();

  RfnOptions single;
  single.traces_per_iteration = 1;
  RfnVerifier v1(d.m, d.bad, single);
  const RfnResult r1 = v1.run();
  ASSERT_EQ(r1.verdict, Verdict::Fails);

  RfnOptions multi;
  multi.traces_per_iteration = 4;
  RfnVerifier v2(d.m, d.bad, multi);
  const RfnResult r2 = v2.run();
  ASSERT_EQ(r2.verdict, Verdict::Fails);
  EXPECT_LE(r2.iterations, r1.iterations);
}

}  // namespace
}  // namespace rfn
