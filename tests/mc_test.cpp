// Tests for the symbolic model checker: encoder, image ops, reachability,
// and BDD trace extraction.

#include <gtest/gtest.h>

#include "mc/encoder.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "mc/trace.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

TEST(Encoder, SignalFunctions) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r", Tri::T);
  b.set_next(r, b.xor_(r, in));
  Netlist n = b.take();

  BddMgr mgr;
  Encoder enc(mgr, n);
  const Bdd fn = enc.next_fn(r);
  EXPECT_EQ(fn, mgr.var(enc.state_var(r)) ^ mgr.var(enc.input_var(in)));
  const Bdd init = enc.initial_states();
  EXPECT_EQ(init, mgr.var(enc.state_var(r)));
}

TEST(Encoder, InitialStatesWithXInit) {
  NetBuilder b;
  const GateId r0 = b.reg("r0", Tri::F);
  const GateId r1 = b.reg("r1", Tri::X);
  b.set_next(r0, r0);
  b.set_next(r1, r1);
  Netlist n = b.take();
  BddMgr mgr;
  Encoder enc(mgr, n);
  // Only r0 is constrained.
  EXPECT_EQ(enc.initial_states(), mgr.nvar(enc.state_var(r0)));
}

TEST(Encoder, CubeRoundTrip) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r");
  b.set_next(r, in);
  Netlist n = b.take();
  BddMgr mgr;
  Encoder enc(mgr, n);
  const Cube c{{r, true}, {in, false}};
  const Bdd cb = enc.cube_bdd(c);
  const auto lits = mgr.any_cube(cb);
  const Cube back = enc.lits_to_cube(lits);
  EXPECT_EQ(cube_lookup(back, r), Tri::T);
  EXPECT_EQ(cube_lookup(back, in), Tri::F);
}

// A 3-bit counter with enable: closed-form reachability ground truth.
struct CounterDesign {
  Netlist n;
  Word cnt;
  GateId en;
};

CounterDesign make_counter() {
  NetBuilder b;
  CounterDesign d;
  d.en = b.input("en");
  d.cnt = b.reg_word("cnt", 3, 0);
  b.set_next_word(d.cnt, b.mux_word(d.en, d.cnt, b.inc_word(d.cnt)));
  d.n = b.take();
  return d;
}

TEST(Image, PostImageOfCounter) {
  CounterDesign d = make_counter();
  BddMgr mgr;
  Encoder enc(mgr, d.n);
  ImageComputer img(enc);
  // From state 0, one step reaches {0, 1}.
  const Bdd s0 = enc.cube_bdd({{d.cnt[0], false}, {d.cnt[1], false}, {d.cnt[2], false}});
  const Bdd next = img.post_image(s0);
  const Bdd s1 = enc.cube_bdd({{d.cnt[0], true}, {d.cnt[1], false}, {d.cnt[2], false}});
  EXPECT_EQ(next, s0 | s1);
}

TEST(Image, PreImageInvertsPostOnCounter) {
  CounterDesign d = make_counter();
  BddMgr mgr;
  Encoder enc(mgr, d.n);
  ImageComputer img(enc);
  // Pre-image of {3}: {3 (en=0), 2 (en=1)}.
  const Bdd s3 = enc.cube_bdd({{d.cnt[0], true}, {d.cnt[1], true}, {d.cnt[2], false}});
  const Bdd pre = img.pre_image(s3);
  const Bdd s2 = enc.cube_bdd({{d.cnt[0], false}, {d.cnt[1], true}, {d.cnt[2], false}});
  EXPECT_EQ(pre, s3 | s2);
  // With inputs kept, the en literal must distinguish the two.
  const Bdd pre_x = img.pre_image_with_inputs(s3);
  const Bdd en = mgr.var(enc.input_var(d.en));
  EXPECT_EQ(pre_x, (s3 & !en) | (s2 & en));
}

TEST(Reach, CounterFixpointIsFullRange) {
  CounterDesign d = make_counter();
  BddMgr mgr;
  Encoder enc(mgr, d.n);
  ImageComputer img(enc);
  const ReachResult res =
      forward_reach(img, enc.initial_states(), mgr.bdd_false());
  EXPECT_EQ(res.status, ReachStatus::Proved);
  // All 8 counter values reachable.
  EXPECT_DOUBLE_EQ(mgr.sat_count(res.reached, 3), 8.0);
  EXPECT_EQ(res.rings.size(), 8u);  // one new state per step
}

TEST(Reach, UnreachableBadStateIsProved) {
  // Counter over 3 bits that resets at 5: states 5,6,7 unreachable... the
  // comparison is cnt==4 ? 0 : cnt+1 so reachable = {0..4}.
  NetBuilder b;
  const Word cnt = b.reg_word("cnt", 3, 0);
  const GateId wrap = b.eq_const(cnt, 4);
  b.set_next_word(cnt, b.mux_word(wrap, b.inc_word(cnt), b.constant_word(0, 3)));
  const GateId bad_sig = b.eq_const(cnt, 6);
  Netlist n = b.take();

  BddMgr mgr;
  Encoder enc(mgr, n);
  ImageComputer img(enc);
  const Bdd bad = enc.signal_fn(bad_sig);
  const ReachResult res = forward_reach(img, enc.initial_states(), bad);
  EXPECT_EQ(res.status, ReachStatus::Proved);
  EXPECT_DOUBLE_EQ(mgr.sat_count(res.reached, 3), 5.0);
}

TEST(Reach, BadReachableStopsEarly) {
  CounterDesign d = make_counter();
  BddMgr mgr;
  Encoder enc(mgr, d.n);
  ImageComputer img(enc);
  const Bdd bad = enc.cube_bdd({{d.cnt[0], true}, {d.cnt[1], true}, {d.cnt[2], false}});
  const ReachResult res = forward_reach(img, enc.initial_states(), bad);
  EXPECT_EQ(res.status, ReachStatus::BadReachable);
  EXPECT_EQ(res.steps, 3u);  // 0 -> 1 -> 2 -> 3
}

TEST(Trace, ExtractedTraceReplaysOnDesign) {
  CounterDesign d = make_counter();
  BddMgr mgr;
  Encoder enc(mgr, d.n);
  ImageComputer img(enc);
  const GateId bad_sig = d.cnt[0];  // reuse: bad = cnt == 5
  (void)bad_sig;
  const Bdd bad = enc.cube_bdd({{d.cnt[0], true}, {d.cnt[1], false}, {d.cnt[2], true}});
  const ReachResult res = forward_reach(img, enc.initial_states(), bad);
  ASSERT_EQ(res.status, ReachStatus::BadReachable);
  const Trace t = extract_trace_bdd(img, res, bad);
  EXPECT_EQ(t.steps.size(), 6u);  // 0,1,2,3,4,5

  // Replay: the final state must be 5 = 101.
  Sim3 sim(d.n);
  sim.load_initial_state();
  for (size_t c = 0; c < t.steps.size(); ++c) {
    sim.clear_inputs();
    sim.set_cube(t.steps[c].inputs);
    sim.eval();
    if (c + 1 < t.steps.size()) sim.step();
  }
  EXPECT_EQ(sim.value(d.cnt[0]), Tri::T);
  EXPECT_EQ(sim.value(d.cnt[1]), Tri::F);
  EXPECT_EQ(sim.value(d.cnt[2]), Tri::T);
}

TEST(Trace, TraceStatesLieInRings) {
  CounterDesign d = make_counter();
  BddMgr mgr;
  Encoder enc(mgr, d.n);
  ImageComputer img(enc);
  const Bdd bad = enc.cube_bdd({{d.cnt[1], true}});  // any state with bit1 set
  const ReachResult res = forward_reach(img, enc.initial_states(), bad);
  ASSERT_EQ(res.status, ReachStatus::BadReachable);
  const Trace t = extract_trace_bdd(img, res, bad);
  for (size_t i = 0; i < t.steps.size(); ++i) {
    const Bdd sc = enc.cube_bdd(t.steps[i].state);
    EXPECT_TRUE(sc.implies(res.rings[i])) << "step " << i;
  }
}

// Property: post-image agrees with explicit-state successor computation on
// random small sequential designs.
class ImageRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImageRandomTest, PostImageMatchesExplicitStateSearch) {
  Rng rng(GetParam());
  NetBuilder b;
  const size_t nregs = 4, nins = 2;
  std::vector<GateId> ins, regs;
  for (size_t i = 0; i < nins; ++i) ins.push_back(b.input("i" + std::to_string(i)));
  for (size_t i = 0; i < nregs; ++i) regs.push_back(b.reg("r" + std::to_string(i)));
  std::vector<GateId> pool = ins;
  pool.insert(pool.end(), regs.begin(), regs.end());
  for (int i = 0; i < 20; ++i) {
    const GateId x = pool[rng.below(pool.size())];
    const GateId y = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(b.and_(x, y)); break;
      case 1: pool.push_back(b.or_(x, y)); break;
      case 2: pool.push_back(b.xor_(x, y)); break;
      case 3: pool.push_back(b.not_(x)); break;
    }
  }
  for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(6)]);
  Netlist n = b.take();

  BddMgr mgr;
  Encoder enc(mgr, n);
  ImageComputer img(enc);

  // Explicit successor relation via simulation.
  Sim3 sim(n);
  auto state_bits = [&](uint32_t s) {
    std::vector<bool> bits(nregs);
    for (size_t i = 0; i < nregs; ++i) bits[i] = (s >> i) & 1;
    return bits;
  };
  for (int round = 0; round < 8; ++round) {
    // Random source set.
    std::vector<bool> in_set(1u << nregs);
    for (auto&& v : in_set) v = rng.flip();
    std::vector<BddLit> dc;
    Bdd q = mgr.bdd_false();
    for (uint32_t s = 0; s < in_set.size(); ++s) {
      if (!in_set[s]) continue;
      std::vector<BddLit> lits;
      for (size_t i = 0; i < nregs; ++i)
        lits.push_back({enc.state_var(regs[i]), ((s >> i) & 1) != 0});
      q |= mgr.cube(lits);
    }
    const Bdd post = img.post_image(q);

    // Ground truth.
    std::vector<bool> succ(1u << nregs, false);
    for (uint32_t s = 0; s < in_set.size(); ++s) {
      if (!in_set[s]) continue;
      for (uint32_t x = 0; x < (1u << nins); ++x) {
        const auto bits = state_bits(s);
        for (size_t i = 0; i < nregs; ++i) sim.set(regs[i], tri_of(bits[i]));
        for (size_t i = 0; i < nins; ++i) sim.set(ins[i], tri_of((x >> i) & 1));
        sim.eval();
        uint32_t t = 0;
        for (size_t i = 0; i < nregs; ++i)
          if (sim.value(n.reg_data(regs[i])) == Tri::T) t |= 1u << i;
        succ[t] = true;
      }
    }
    for (uint32_t t = 0; t < succ.size(); ++t) {
      std::vector<bool> assign(mgr.num_vars(), false);
      for (size_t i = 0; i < nregs; ++i)
        assign[enc.state_var(regs[i])] = (t >> i) & 1;
      EXPECT_EQ(mgr.eval(post, assign), succ[t]) << "state " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageRandomTest, ::testing::Values(3, 14, 159, 265));

}  // namespace
}  // namespace rfn
