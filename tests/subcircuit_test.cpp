// Unit tests for abstract-model extraction (Step 1 of RFN).

#include "netlist/subcircuit.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

// Two-register chain with a property over the last register:
//   in -> [r1] -> not -> [r2] ; prop = r2
struct Chain {
  Netlist n;
  GateId in, r1, r2;
};

Chain make_chain() {
  NetBuilder b;
  Chain c;
  c.in = b.input("in");
  c.r1 = b.reg("r1");
  c.r2 = b.reg("r2");
  b.set_next(c.r1, c.in);
  b.set_next(c.r2, b.not_(c.r1));
  b.output("prop", c.r2);
  c.n = b.take();
  return c;
}

TEST(Subcircuit, InitialAbstractionCutsAtRegisters) {
  const Chain c = make_chain();
  // Include only r2: r1 must become a pseudo primary input.
  const Subcircuit sub = extract_abstract_model(c.n, {c.r2}, {c.r2});
  EXPECT_EQ(sub.net.num_regs(), 1u);
  ASSERT_EQ(sub.pseudo_inputs.size(), 1u);
  EXPECT_EQ(sub.to_old(sub.pseudo_inputs[0]), c.r1);
  EXPECT_TRUE(sub.net.is_input(sub.pseudo_inputs[0]));
  // The original primary input is not in the cone of r2's data logic... it
  // feeds r1 which was cut, so it must be absent.
  EXPECT_EQ(sub.to_new(c.in), kNullGate);
}

TEST(Subcircuit, RefinedAbstractionAbsorbsPseudoInput) {
  const Chain c = make_chain();
  const Subcircuit sub = extract_abstract_model(c.n, {c.r2}, {c.r1, c.r2});
  EXPECT_EQ(sub.net.num_regs(), 2u);
  EXPECT_TRUE(sub.pseudo_inputs.empty());
  // Now the real primary input appears.
  EXPECT_NE(sub.to_new(c.in), kNullGate);
  EXPECT_TRUE(sub.net.is_input(sub.to_new(c.in)));
}

TEST(Subcircuit, PreservesInitialValuesAndNames) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("state", Tri::T);
  b.set_next(r, b.xor_(r, in));
  b.output("p", r);
  Netlist n = b.take();
  const Subcircuit sub = extract_abstract_model(n, {r}, {r});
  const GateId nr = sub.to_new(r);
  ASSERT_NE(nr, kNullGate);
  EXPECT_EQ(sub.net.reg_init(nr), Tri::T);
  EXPECT_EQ(sub.net.name(nr), "state");
  EXPECT_NE(sub.net.output("p"), kNullGate);
}

TEST(Subcircuit, CoiReduceKeepsBehavior) {
  // COI reduction must be exact: simulate both designs in lockstep.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r1 = b.reg("r1");
  const GateId r2 = b.reg("r2");
  b.set_next(r1, b.xor_(r1, in));
  b.set_next(r2, b.and_(r1, in));
  // Unrelated logic that COI must drop.
  const GateId junk = b.reg("junk");
  b.set_next(junk, b.not_(junk));
  b.output("prop", b.or_(r2, r1));
  Netlist m = b.take();

  const GateId prop = m.output("prop");
  const Subcircuit sub = coi_reduce(m, {prop});
  EXPECT_EQ(sub.net.num_regs(), 2u);  // junk dropped
  EXPECT_TRUE(sub.pseudo_inputs.empty());

  Sim64 sim_m(m), sim_n(sub.net);
  Rng rng(7);
  Rng rng2(123);
  sim_m.load_initial_state(rng2);
  sim_n.load_initial_state(rng2);
  const GateId nprop = sub.net.output("prop");
  const GateId nin = sub.to_new(in);
  for (int cycle = 0; cycle < 20; ++cycle) {
    const uint64_t w = rng.next();
    sim_m.set(in, w);
    sim_n.set(nin, w);
    sim_m.eval();
    sim_n.eval();
    EXPECT_EQ(sim_m.value(prop), sim_n.value(nprop)) << "cycle " << cycle;
    sim_m.step();
    sim_n.step();
  }
}

TEST(Subcircuit, CubeTranslation) {
  const Chain c = make_chain();
  const Subcircuit sub = extract_abstract_model(c.n, {c.r2}, {c.r2});
  const GateId nr2 = sub.to_new(c.r2);
  Cube abstract{{nr2, true}, {sub.pseudo_inputs[0], false}};
  const Cube original = sub.cube_to_old(abstract);
  EXPECT_EQ(cube_lookup(original, c.r2), Tri::T);
  EXPECT_EQ(cube_lookup(original, c.r1), Tri::F);

  Cube big{{c.r2, false}, {c.in, true}};  // c.in not in N -> dropped
  const Cube back = sub.cube_to_new(big);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(cube_lookup(back, nr2), Tri::F);
}

// Two properties over one shared pipeline plus a private register each:
//   in -> [shared] -> not -> [ra] ; prop_a = ra
//                  \-> and -> [rb] ; prop_b = rb
struct TwoProps {
  Netlist n;
  GateId in, shared, ra, rb, prop_a, prop_b;
};

TwoProps make_two_props() {
  NetBuilder b;
  TwoProps t;
  t.in = b.input("in");
  t.shared = b.reg("shared");
  t.ra = b.reg("ra");
  t.rb = b.reg("rb");
  b.set_next(t.shared, t.in);
  b.set_next(t.ra, b.not_(t.shared));
  b.set_next(t.rb, b.and_(t.shared, t.in));
  t.prop_a = t.ra;
  t.prop_b = t.rb;
  b.output("prop_a", t.ra);
  b.output("prop_b", t.rb);
  t.n = b.take();
  return t;
}

TEST(Subcircuit, MultiSinkExtractionCoversEveryRoot) {
  const TwoProps t = make_two_props();
  // Both property roots, neither feeding the other: the multi-sink
  // extraction must contain both cones in one model.
  const Subcircuit sub = extract_abstract_model(t.n, {t.prop_a, t.prop_b},
                                                {t.ra, t.rb});
  EXPECT_NE(sub.to_new(t.prop_a), kNullGate);
  EXPECT_NE(sub.to_new(t.prop_b), kNullGate);
  EXPECT_EQ(sub.net.num_regs(), 2u);
  // The shared upstream register was not included: exactly one pseudo input
  // serves both cones.
  ASSERT_EQ(sub.pseudo_inputs.size(), 1u);
  EXPECT_EQ(sub.to_old(sub.pseudo_inputs[0]), t.shared);
}

TEST(Subcircuit, MultiSinkSupersetOfSingleSink) {
  const TwoProps t = make_two_props();
  const Subcircuit both = extract_abstract_model(t.n, {t.prop_a, t.prop_b},
                                                 {t.ra, t.rb});
  const Subcircuit only_a = extract_abstract_model(t.n, {t.prop_a}, {t.ra});
  // Everything in the single-sink model appears in the multi-sink one.
  for (GateId nw = 0; nw < only_a.net.size(); ++nw)
    EXPECT_TRUE(both.contains_old(only_a.to_old(nw)));
  EXPECT_FALSE(only_a.contains_old(t.rb));
}

TEST(Subcircuit, AppendDisjunctionKeepsExistingIds) {
  const TwoProps t = make_two_props();
  Netlist aug = t.n;
  const size_t before = aug.size();
  const GateId root = append_disjunction(aug, {t.prop_a, t.prop_b}, "bad_any");
  EXPECT_EQ(root, before);  // appended, nothing renumbered
  EXPECT_EQ(aug.size(), before + 1);
  EXPECT_EQ(aug.output("bad_any"), root);
  for (GateId g = 0; g < before; ++g) EXPECT_EQ(aug.type(g), t.n.type(g));
  // Cones computed on the original stay valid on the augmented design, and
  // the disjunction's cone is their union.
  const auto cone_a = coi_registers(t.n, {t.prop_a});
  const auto cone_any = coi_registers(aug, {root});
  for (GateId r : cone_a)
    EXPECT_NE(std::find(cone_any.begin(), cone_any.end(), r), cone_any.end());
}

TEST(Subcircuit, AppendDisjunctionSemantics) {
  const TwoProps t = make_two_props();
  Netlist aug = t.n;
  const GateId root = append_disjunction(aug, {t.prop_a, t.prop_b}, "bad_any");
  Sim64 sim(aug);
  Rng rng(11);
  Rng init(5);
  sim.load_initial_state(init);
  for (int cycle = 0; cycle < 16; ++cycle) {
    sim.set(aug.find("in"), rng.next());
    sim.eval();
    EXPECT_EQ(sim.value(root), sim.value(t.prop_a) | sim.value(t.prop_b));
    sim.step();
  }
}

TEST(Subcircuit, AppendDisjunctionSingleSignalIsBuffer) {
  const TwoProps t = make_two_props();
  Netlist aug = t.n;
  const GateId root = append_disjunction(aug, {t.prop_a}, "only");
  EXPECT_EQ(aug.type(root), GateType::Buf);
  EXPECT_EQ(aug.output("only"), root);
}

TEST(Subcircuit, AbstractionIsMonotone) {
  // Growing the included set never removes cells from the model.
  NetBuilder b;
  const GateId in = b.input("in");
  Word regs(4);
  regs[0] = b.reg("a");
  regs[1] = b.reg("b");
  regs[2] = b.reg("c");
  regs[3] = b.reg("d");
  b.set_next(regs[0], in);
  b.set_next(regs[1], b.not_(regs[0]));
  b.set_next(regs[2], b.and_(regs[1], in));
  b.set_next(regs[3], b.or_(regs[2], regs[0]));
  b.output("p", regs[3]);
  Netlist m = b.take();

  size_t prev_cells = 0;
  std::vector<GateId> included;
  for (int k = 3; k >= 0; --k) {
    included.push_back(regs[static_cast<size_t>(k)]);
    const Subcircuit sub = extract_abstract_model(m, {regs[3]}, included);
    EXPECT_GE(sub.net.size(), prev_cells);
    prev_cells = sub.net.size();
    EXPECT_EQ(sub.net.num_regs(), included.size());
  }
}

}  // namespace
}  // namespace rfn
