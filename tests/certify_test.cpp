// Tests for independent verdict certification: the in-process recompute
// path (core/certify.hpp) and the rfn-cert-v1 witness spec — JSON
// round-trips, the three checker obligations on every builtin design, and
// tampered witnesses refused with the right obligation named.

#include "core/certify.hpp"

#include <gtest/gtest.h>

#include <string>

#include "cert/check.hpp"
#include "cert/format.hpp"
#include "core/certificate.hpp"
#include "designs/builtin.hpp"
#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"

namespace rfn {
namespace {

// Chain design: r0 <- driver, r_i <- r_{i-1}; watchdog = last register.
Netlist make_chain(size_t len, bool driver_is_input, GateId* bad_out) {
  NetBuilder b;
  std::vector<GateId> regs;
  for (size_t i = 0; i < len; ++i) regs.push_back(b.reg("r" + std::to_string(i)));
  const GateId driver = driver_is_input ? b.input("in") : b.constant(false);
  b.set_next(regs[0], driver);
  for (size_t i = 1; i < len; ++i) b.set_next(regs[i], regs[i - 1]);
  b.output("bad", regs.back());
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

TEST(Certify, HoldsVerdictIsCertified) {
  GateId bad;
  Netlist m = make_chain(4, false, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Holds);
  const CertifyResult cert = certify(m, bad, res, rfn.abstract_registers());
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(Certify, FailsVerdictIsCertified) {
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Fails);
  const CertifyResult cert = certify(m, bad, res, rfn.abstract_registers());
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(Certify, RejectsBogusTrace) {
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  // A trace that never raises the input cannot raise bad.
  Trace bogus;
  bogus.steps.resize(4);
  for (auto& step : bogus.steps) step.inputs = {{m.find("in"), false}};
  const CertifyResult cert = certify_error_trace(m, bogus, bad);
  EXPECT_FALSE(cert.ok);
  EXPECT_FALSE(cert.detail.empty());
}

TEST(Certify, RejectsTraceStartingOutsideInit) {
  GateId bad;
  Netlist m = make_chain(2, true, &bad);
  Trace bogus;
  bogus.steps.resize(1);
  bogus.steps[0].state = {{m.find("r1"), true}};  // r1 inits to 0
  const CertifyResult cert = certify_error_trace(m, bogus, bad);
  EXPECT_FALSE(cert.ok);
}

TEST(Certify, RejectsNonInvariantAbstraction) {
  // The one-register abstraction of the falsifiable chain cannot certify a
  // Holds verdict: its "fixpoint" includes bad states.
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  const CertifyResult cert = certify_holds(m, bad, {m.find("r2")});
  EXPECT_FALSE(cert.ok);
}

TEST(Certify, UnknownIsNeverCertified) {
  GateId bad;
  Netlist m = make_chain(2, false, &bad);
  RfnResult unknown;
  unknown.verdict = Verdict::Unknown;
  EXPECT_FALSE(certify(m, bad, unknown, {}).ok);
}

// --- rfn-cert-v1 witness spec ---

// One self-latching register: bad = r is unreachable from r=0 and the
// unique inductive invariant is the single clause {¬r}.
Netlist make_latch(GateId* bad_out) {
  NetBuilder b;
  const GateId r = b.reg("r");
  b.set_next(r, r);
  b.output("bad", r);
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

std::string replaced(std::string text, const std::string& from,
                     const std::string& to) {
  const size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "document lacks '" << from << "'";
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

TEST(CertSpec, HoldsWitnessRoundTripsThroughJson) {
  GateId bad;
  const Netlist m = make_chain(4, false, &bad);
  RfnVerifier rfn(m, bad);
  ASSERT_EQ(rfn.run().verdict, Verdict::Holds);
  const CertificateBuild built =
      build_holds_certificate(m, bad, "bad", rfn.abstract_registers());
  ASSERT_TRUE(built.ok) << built.detail;

  cert::Certificate back;
  std::string err;
  ASSERT_TRUE(cert::from_json(cert::to_json(built.certificate), &back, &err))
      << err;
  EXPECT_EQ(back.kind, cert::CertKind::HoldsInvariant);
  EXPECT_EQ(back.design_hash, design_hash(m));
  EXPECT_EQ(back.design_regs, m.num_regs());
  EXPECT_EQ(back.property_name, "bad");
  EXPECT_EQ(back.bad, bad);
  EXPECT_EQ(back.registers, built.certificate.registers);
  EXPECT_EQ(back.clauses, built.certificate.clauses);
  EXPECT_TRUE(back.trace.empty());
}

TEST(CertSpec, FailsWitnessRoundTripsThroughJson) {
  GateId bad;
  const Netlist m = make_chain(3, true, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Fails);
  const CertificateBuild built =
      build_fails_certificate(m, bad, "bad", res.error_trace);
  ASSERT_TRUE(built.ok) << built.detail;

  cert::Certificate back;
  std::string err;
  ASSERT_TRUE(cert::from_json(cert::to_json(built.certificate), &back, &err))
      << err;
  EXPECT_EQ(back.kind, cert::CertKind::FailsTrace);
  EXPECT_EQ(back.design_hash, design_hash(m));
  ASSERT_EQ(back.trace.cycles(), res.error_trace.cycles());
  for (size_t i = 0; i < back.trace.cycles(); ++i) {
    const TraceStep& a = back.trace.steps[i];
    const TraceStep& b = res.error_trace.steps[i];
    ASSERT_EQ(a.state.size(), b.state.size()) << "cycle " << i;
    ASSERT_EQ(a.inputs.size(), b.inputs.size()) << "cycle " << i;
    for (size_t j = 0; j < a.state.size(); ++j) {
      EXPECT_EQ(a.state[j].signal, b.state[j].signal);
      EXPECT_EQ(a.state[j].value, b.state[j].value);
    }
  }
  EXPECT_TRUE(cert::check_certificate(m, back).ok);
}

TEST(CertSpec, ParserRejectsTamperedDocuments) {
  GateId bad;
  const Netlist m = make_latch(&bad);
  const CertificateBuild built =
      build_holds_certificate(m, bad, "bad", m.regs());
  ASSERT_TRUE(built.ok) << built.detail;
  const std::string good = cert::to_json(built.certificate);
  cert::Certificate parsed;
  std::string err;
  ASSERT_TRUE(cert::from_json(good, &parsed, &err)) << err;

  // Truncation, a foreign format tag, an unknown kind, and a mangled design
  // fingerprint must all fail the strict parse with a diagnostic.
  for (const std::string& bogus :
       {good.substr(0, good.size() / 2),
        replaced(good, "rfn-cert-v1", "rfn-cert-v0"),
        replaced(good, "holds-invariant", "holds-magic"),
        replaced(good, "\"hash\": \"", "\"hash\": \"zz")}) {
    err.clear();
    EXPECT_FALSE(cert::from_json(bogus, &parsed, &err));
    EXPECT_FALSE(err.empty());
  }

  // Structural validation: unsorted register scope, out-of-range clause
  // literal, empty clause, fails-trace without steps.
  cert::Certificate c = built.certificate;
  c.registers = {3, 1};
  EXPECT_FALSE(cert::from_json(cert::to_json(c), &parsed, &err));
  c = built.certificate;
  c.clauses = {{2}};  // scope has one register -> only ±1 is valid
  EXPECT_FALSE(cert::from_json(cert::to_json(c), &parsed, &err));
  c = built.certificate;
  c.clauses = {{}};
  EXPECT_FALSE(cert::from_json(cert::to_json(c), &parsed, &err));
  c = built.certificate;
  c.kind = cert::CertKind::FailsTrace;
  c.trace = Trace{};
  EXPECT_FALSE(cert::from_json(cert::to_json(c), &parsed, &err));
}

TEST(CertSpec, CheckerNamesTheFailingObligation) {
  GateId bad;
  const Netlist m = make_latch(&bad);
  const CertificateBuild built =
      build_holds_certificate(m, bad, "bad", m.regs());
  ASSERT_TRUE(built.ok) << built.detail;
  ASSERT_EQ(built.certificate.clauses,
            (std::vector<std::vector<int32_t>>{{-1}}));
  EXPECT_TRUE(cert::check_certificate(m, built.certificate).ok);

  // Tampered clause {r}: the reset state r=0 refutes initiation.
  cert::Certificate tampered = built.certificate;
  tampered.clauses = {{1}};
  cert::CheckResult res = cert::check_certificate(m, tampered);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.obligation, cert::kObligationInitiation);
  EXPECT_NE(res.detail.find("r=0"), std::string::npos) << res.detail;

  // Dropping every clause weakens Inv to `true`, which reaches bad: safety.
  cert::Certificate dropped = built.certificate;
  dropped.clauses.clear();
  res = cert::check_certificate(m, dropped);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.obligation, cert::kObligationSafety);

  // A latch whose next state leaves {¬r} (next = 1) refutes consecution:
  // initiation still passes (init r=0), so the checker must blame the
  // induction step, not the base case.
  NetBuilder b;
  const GateId r = b.reg("r");
  b.set_next(r, b.constant(true));
  b.output("bad", b.and_(r, b.not_(r)));
  const Netlist m2 = b.take();
  cert::Certificate drift = built.certificate;
  drift.design_hash = design_hash(m2);
  drift.bad = m2.output("bad");
  drift.registers = m2.regs();
  res = cert::check_certificate(m2, drift);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.obligation, cert::kObligationConsecution);

  // The same witness against a different design: fingerprint mismatch.
  GateId other_bad;
  const Netlist other = make_chain(3, false, &other_bad);
  res = cert::check_certificate(other, built.certificate);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.obligation, cert::kObligationDesignHash);
  EXPECT_NE(res.detail.find(design_hash_hex(other)), std::string::npos);

  // Structural misfit on the right design: a scope id that is no register.
  cert::Certificate misfit = built.certificate;
  misfit.registers = {bad == 0 ? GateId{1} : GateId{0}};
  if (!m.is_reg(misfit.registers[0])) {
    res = cert::check_certificate(m, misfit);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.obligation, cert::kObligationFormat);
  }
}

// End-to-end witness spec per builtin design: verify, build the
// polarity-matching witness, serialize, reparse, and discharge it through
// the independent checker — exactly the rfn_cli --certify + rfn_check path.
void builtin_witness_roundtrip(const char* design, const char* property,
                               Verdict expected) {
  bool ok = false;
  const Netlist m = designs::make_builtin(design, &ok);
  ASSERT_TRUE(ok);
  GateId bad = m.output(property);  // rfn_cli resolution: output, then name
  if (bad == kNullGate) bad = m.find(property);
  ASSERT_NE(bad, kNullGate);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, expected);

  const CertificateArtifact art = certify_with_witness(
      m, bad, property, res.verdict, res.error_trace, res.final_registers);
  ASSERT_TRUE(art.built) << art.detail;
  EXPECT_TRUE(art.checked) << art.obligation << ": " << art.detail;

  cert::Certificate back;
  std::string err;
  ASSERT_TRUE(cert::from_json(cert::to_json(art.certificate), &back, &err))
      << err;
  const cert::CheckResult chk = cert::check_certificate(m, back);
  EXPECT_TRUE(chk.ok) << chk.obligation << ": " << chk.detail;
}

TEST(CertSpec, FifoHoldsWitness) {
  builtin_witness_roundtrip("fifo", "bad_full_q", Verdict::Holds);
}

TEST(CertSpec, ProcessorHoldsWitness) {
  builtin_witness_roundtrip("processor", "bad_mutex", Verdict::Holds);
}

TEST(CertSpec, IuHoldsWitness) {
  builtin_witness_roundtrip("iu", "bad_dec", Verdict::Holds);
}

TEST(CertSpec, UsbHoldsWitness) {
  builtin_witness_roundtrip("usb", "bad_se1", Verdict::Holds);
}

TEST(CertSpec, IuCoverageFailsWitness) {
  builtin_witness_roundtrip("iu", "iu0", Verdict::Fails);
}

TEST(CertSpec, InconclusiveVerdictsCarryNoWitness) {
  GateId bad;
  const Netlist m = make_latch(&bad);
  const CertificateArtifact art =
      certify_with_witness(m, bad, "bad", Verdict::Unknown, Trace{}, m.regs());
  EXPECT_FALSE(art.built);
  EXPECT_FALSE(art.checked);
}

}  // namespace
}  // namespace rfn
