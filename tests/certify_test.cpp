// Tests for independent verdict certification.

#include "core/certify.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"

namespace rfn {
namespace {

// Chain design: r0 <- driver, r_i <- r_{i-1}; watchdog = last register.
Netlist make_chain(size_t len, bool driver_is_input, GateId* bad_out) {
  NetBuilder b;
  std::vector<GateId> regs;
  for (size_t i = 0; i < len; ++i) regs.push_back(b.reg("r" + std::to_string(i)));
  const GateId driver = driver_is_input ? b.input("in") : b.constant(false);
  b.set_next(regs[0], driver);
  for (size_t i = 1; i < len; ++i) b.set_next(regs[i], regs[i - 1]);
  b.output("bad", regs.back());
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

TEST(Certify, HoldsVerdictIsCertified) {
  GateId bad;
  Netlist m = make_chain(4, false, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Holds);
  const CertifyResult cert = certify(m, bad, res, rfn.abstract_registers());
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(Certify, FailsVerdictIsCertified) {
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Fails);
  const CertifyResult cert = certify(m, bad, res, rfn.abstract_registers());
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(Certify, RejectsBogusTrace) {
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  // A trace that never raises the input cannot raise bad.
  Trace bogus;
  bogus.steps.resize(4);
  for (auto& step : bogus.steps) step.inputs = {{m.find("in"), false}};
  const CertifyResult cert = certify_error_trace(m, bogus, bad);
  EXPECT_FALSE(cert.ok);
  EXPECT_FALSE(cert.detail.empty());
}

TEST(Certify, RejectsTraceStartingOutsideInit) {
  GateId bad;
  Netlist m = make_chain(2, true, &bad);
  Trace bogus;
  bogus.steps.resize(1);
  bogus.steps[0].state = {{m.find("r1"), true}};  // r1 inits to 0
  const CertifyResult cert = certify_error_trace(m, bogus, bad);
  EXPECT_FALSE(cert.ok);
}

TEST(Certify, RejectsNonInvariantAbstraction) {
  // The one-register abstraction of the falsifiable chain cannot certify a
  // Holds verdict: its "fixpoint" includes bad states.
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  const CertifyResult cert = certify_holds(m, bad, {m.find("r2")});
  EXPECT_FALSE(cert.ok);
}

TEST(Certify, UnknownIsNeverCertified) {
  GateId bad;
  Netlist m = make_chain(2, false, &bad);
  RfnResult unknown;
  unknown.verdict = Verdict::Unknown;
  EXPECT_FALSE(certify(m, bad, unknown, {}).ok);
}

}  // namespace
}  // namespace rfn
