// End-to-end tests for the RFN loop and its engines on small designs with
// known ground truth, including cross-checks against plain symbolic model
// checking.

#include <gtest/gtest.h>

#include "core/bfs_baseline.hpp"
#include "core/concretize.hpp"
#include "core/coverage.hpp"
#include "core/plain_mc.hpp"
#include "core/refine.hpp"
#include "core/rfn.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

// Replays a concrete error trace on M: inputs driven per trace from M's
// initial state; returns the final value of `bad`.
Tri replay(const Netlist& m, const Trace& t, GateId bad) {
  Sim3 sim(m);
  sim.load_initial_state();
  for (GateId r : m.regs())
    if (sim.value(r) == Tri::X && !t.steps.empty())
      sim.set(r, cube_lookup(t.steps[0].state, r));
  for (size_t c = 0; c < t.steps.size(); ++c) {
    sim.clear_inputs();
    for (const Literal& lit : t.steps[c].inputs)
      if (m.is_input(lit.signal)) sim.set(lit.signal, tri_of(lit.value));
    sim.eval();
    if (c + 1 < t.steps.size()) sim.step();
  }
  return sim.value(bad);
}

// Register chain: r0 <- driver, r_i <- r_{i-1}; bad = last register.
Netlist make_chain(size_t len, bool driver_is_input, GateId* bad_out) {
  NetBuilder b;
  std::vector<GateId> regs;
  for (size_t i = 0; i < len; ++i) regs.push_back(b.reg("r" + std::to_string(i)));
  const GateId driver = driver_is_input ? b.input("in") : b.constant(false);
  b.set_next(regs[0], driver);
  for (size_t i = 1; i < len; ++i) b.set_next(regs[i], regs[i - 1]);
  b.output("bad", regs.back());
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

TEST(Rfn, ProvesChainPropertyByIterativeRefinement) {
  GateId bad;
  Netlist m = make_chain(4, /*driver_is_input=*/false, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  EXPECT_EQ(res.verdict, Verdict::Holds);
  // The proof needs the whole chain: one register per refinement iteration.
  EXPECT_EQ(res.final_abstract_regs, 4u);
  EXPECT_GE(res.iterations, 2u);
  // Every intermediate iteration produced a spurious abstract trace.
  for (size_t i = 0; i + 1 < res.per_iteration.size(); ++i)
    EXPECT_EQ(res.per_iteration[i].reach_status, ReachStatus::BadReachable);
  EXPECT_EQ(res.per_iteration.back().reach_status, ReachStatus::Proved);
}

TEST(Rfn, FalsifiesChainWithConcreteTrace) {
  GateId bad;
  Netlist m = make_chain(3, /*driver_is_input=*/true, &bad);
  RfnVerifier rfn(m, bad);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Fails);
  EXPECT_EQ(res.error_trace.cycles(), 4u);  // in@1 -> r0@2 -> r1@3 -> r2@4
  EXPECT_EQ(replay(m, res.error_trace, bad), Tri::T);
}

TEST(Rfn, ImmediateProofWhenInitialAbstractionSuffices) {
  // bad = r & !r at the property level: structurally false once r included.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r");
  b.set_next(r, in);
  // Use two registers fed oppositely so folding does not erase the check.
  const GateId r2 = b.reg("r2", Tri::T);
  b.set_next(r2, b.not_(in));
  // bad: both low at the same time... r2 starts 1, r starts 0; next values
  // are in and !in — always complementary, so bad = !r & !r2 only holds in
  // no reachable state... wait: initial state r=0, r2=1 -> bad=0; after any
  // step r=in, r2=!in -> complementary. Property holds.
  const GateId bad = b.nor_(r, r2);
  b.output("bad", bad);
  Netlist m = b.take();

  RfnVerifier rfn(m, m.output("bad"));
  const RfnResult res = rfn.run();
  EXPECT_EQ(res.verdict, Verdict::Holds);
  EXPECT_EQ(res.iterations, 1u);
}

TEST(Rfn, DeepBugFoundThroughGuidedAtpg) {
  // Counter-triggered bug: bad rises when an 8-step one-hot token pipeline
  // delivers a token that the environment injects.
  NetBuilder b;
  const GateId go = b.input("go");
  std::vector<GateId> stage;
  for (int i = 0; i < 8; ++i) stage.push_back(b.reg("s" + std::to_string(i)));
  b.set_next(stage[0], go);
  for (int i = 1; i < 8; ++i) b.set_next(stage[static_cast<size_t>(i)], stage[static_cast<size_t>(i) - 1]);
  b.output("bad", stage.back());
  Netlist m = b.take();
  RfnVerifier rfn(m, m.output("bad"));
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Fails);
  EXPECT_EQ(res.error_trace.cycles(), 9u);
  EXPECT_EQ(replay(m, res.error_trace, m.output("bad")), Tri::T);
}

TEST(Refine, SimulationFindsConflictingRegister) {
  // r1 <- const0; abstract model {r2} with pseudo-input r1. A trace claiming
  // r1=1 at cycle 2 conflicts with the simulated 0.
  NetBuilder b;
  const GateId r1 = b.reg("r1");
  const GateId r2 = b.reg("r2");
  b.set_next(r1, b.constant(false));
  b.set_next(r2, r1);
  Netlist m = b.take();

  Trace t;
  t.steps.resize(3);
  t.steps[0].state = {{r2, false}};
  t.steps[0].inputs = {{r1, false}};
  t.steps[1].inputs = {{r1, true}};  // conflicts: r1 is 0 from cycle 2 on
  t.steps[2].state = {{r2, true}};
  const auto candidates = crucial_candidates_by_simulation(m, t, {r2}, 8);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], r1);
}

TEST(Refine, GreedyDropsRedundantCandidates) {
  // Two candidate registers; only r1 matters for invalidating the trace.
  NetBuilder b;
  const GateId r1 = b.reg("r1");
  const GateId junk = b.reg("junk");
  const GateId r2 = b.reg("r2");
  b.set_next(r1, b.constant(false));
  b.set_next(junk, b.constant(true));
  b.set_next(r2, r1);
  b.output("bad", r2);
  Netlist m = b.take();

  Trace t;  // claims r1=1@1 so that r2=1@2 — impossible once r1 is modeled
  t.steps.resize(2);
  t.steps[0].state = {{r2, false}};
  t.steps[0].inputs = {{r1, true}, {junk, false}};
  t.steps[1].state = {{r2, true}};

  RefineStats st;
  const auto crucial = identify_crucial_registers(m, {r2}, m.output("bad"), {r2}, t,
                                                  RefineOptions{}, &st);
  ASSERT_EQ(crucial.size(), 1u);
  EXPECT_EQ(crucial[0], r1);
  EXPECT_TRUE(st.trace_invalidated);
}

TEST(Concretize, DirectReplayShortCircuitsAtpg) {
  GateId bad;
  Netlist m = make_chain(2, /*driver_is_input=*/true, &bad);
  // Abstract trace that assigns only real inputs: in=1@1.
  Trace t;
  t.steps.resize(3);
  t.steps[0].inputs = {{m.find("in"), true}};
  const ConcretizeResult res = concretize_trace(m, t, bad);
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  EXPECT_TRUE(res.direct_replay);
  EXPECT_EQ(replay(m, res.trace, bad), Tri::T);
}

TEST(PlainMc, AgreesOnSmallDesigns) {
  GateId bad;
  Netlist t = make_chain(3, false, &bad);
  EXPECT_EQ(plain_model_check(t, bad, ReachOptions{}).verdict, Verdict::Holds);
  GateId bad2;
  Netlist f = make_chain(3, true, &bad2);
  EXPECT_EQ(plain_model_check(f, bad2, ReachOptions{}).verdict, Verdict::Fails);
}

// Property: RFN and plain MC agree on random small sequential designs.
class RfnVsPlainMc : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RfnVsPlainMc, VerdictsAgree) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    NetBuilder b;
    const size_t nins = 1 + rng.below(3);
    const size_t nregs = 3 + rng.below(5);
    std::vector<GateId> ins, regs, pool;
    for (size_t i = 0; i < nins; ++i) {
      ins.push_back(b.input("i" + std::to_string(i)));
      pool.push_back(ins.back());
    }
    for (size_t i = 0; i < nregs; ++i) {
      regs.push_back(b.reg("r" + std::to_string(i)));
      pool.push_back(regs.back());
    }
    for (int i = 0; i < 25; ++i) {
      const GateId x = pool[rng.below(pool.size())];
      const GateId y = pool[rng.below(pool.size())];
      switch (rng.below(4)) {
        case 0: pool.push_back(b.and_(x, y)); break;
        case 1: pool.push_back(b.or_(x, y)); break;
        case 2: pool.push_back(b.xor_(x, y)); break;
        case 3: pool.push_back(b.not_(x)); break;
      }
    }
    for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(10)]);
    // Property over registers only so that bad states are honest states.
    const GateId bad = b.and_(regs[0], b.not_(regs[1 + rng.below(nregs - 1)]));
    b.output("bad", bad);
    Netlist m = b.take();

    const PlainMcResult truth = plain_model_check(m, m.output("bad"), ReachOptions{});
    ASSERT_NE(truth.verdict, Verdict::Unknown);

    RfnOptions opt;
    opt.time_limit_s = 30.0;
    RfnVerifier rfn(m, m.output("bad"), opt);
    const RfnResult res = rfn.run();
    ASSERT_EQ(res.verdict, truth.verdict) << "round " << round << " note: " << res.note;
    if (res.verdict == Verdict::Fails) {
      EXPECT_EQ(replay(m, res.error_trace, m.output("bad")), Tri::T);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RfnVsPlainMc, ::testing::Values(101, 202, 303, 404, 505));

TEST(Coverage, OneHotRingGroundTruth) {
  // One-hot 3-stage ring: reachable coverage states are exactly the three
  // one-hot patterns.
  NetBuilder b;
  const GateId s0 = b.reg("s0", Tri::T);
  const GateId s1 = b.reg("s1");
  const GateId s2 = b.reg("s2");
  b.set_next(s0, s2);
  b.set_next(s1, s0);
  b.set_next(s2, s1);
  Netlist m = b.take();

  CoverageOptions opt;
  opt.time_limit_s = 30.0;
  const CoverageResult res = rfn_coverage_analysis(m, {s0, s1, s2}, opt);
  EXPECT_EQ(res.total_states, 8u);
  EXPECT_EQ(res.unreachable, 5u);
  EXPECT_EQ(res.reachable, 3u);
  EXPECT_EQ(res.unknown, 0u);

  BfsBaselineOptions bopt;
  bopt.num_registers = 3;
  const BfsBaselineResult bfs = bfs_coverage_analysis(m, {s0, s1, s2}, bopt);
  EXPECT_EQ(bfs.unreachable, 5u);
}

TEST(Coverage, RefinementTightensClassification) {
  // Coverage register c mirrors a constrained producer: p cycles 0->1->0...,
  // c follows p. With only {c} abstracted, all 2 states look reachable;
  // ground truth: both ARE reachable. Add an unreachable pattern: d = c & !c
  // ... instead use two coverage regs c0,c1 with c1 = c0 delayed, driven by
  // a toggler: reachable patterns are (0,0),(1,0),(1,1),(0,1) over time —
  // all four. Make the driver constant instead: only (0,0) reachable... use
  // a one-shot latch: l <- l | never... Keep it simple: driver const0.
  NetBuilder b;
  const GateId c0 = b.reg("c0");
  const GateId c1 = b.reg("c1");
  const GateId src = b.reg("src");
  b.set_next(src, b.constant(false));
  b.set_next(c0, src);
  b.set_next(c1, c0);
  Netlist m = b.take();
  CoverageOptions opt;
  opt.time_limit_s = 30.0;
  const CoverageResult res = rfn_coverage_analysis(m, {c0, c1}, opt);
  // Only (0,0) is reachable; the other three require src=1 at some cycle.
  EXPECT_EQ(res.unreachable, 3u);
  EXPECT_GE(res.reachable + res.unknown, 1u);
  EXPECT_EQ(res.state_class[0], 2u);  // (0,0) witnessed reachable
}

TEST(Rfn, ApproxFallbackProvesWhenExactFixpointIsCut) {
  // Many independent wrap-at-4 counters; `bad` = counter 0 reaches 6.
  // The exact fixpoint is artificially cut off by a tiny step budget, so
  // the overlapping-partition fallback must deliver the proof.
  NetBuilder b;
  std::vector<Word> counters;
  for (int c = 0; c < 8; ++c) {
    const GateId en = b.input("en" + std::to_string(c));
    const Word cnt = b.reg_word("c" + std::to_string(c), 3, 0);
    const GateId wrap = b.eq_const(cnt, 4);
    const Word next = b.mux_word(wrap, b.inc_word(cnt), b.constant_word(0, 3));
    b.set_next_word(cnt, b.mux_word(en, cnt, next));
    counters.push_back(cnt);
  }
  const GateId bad_sig = b.eq_const(counters[0], 6);
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, bad_sig));
  b.output("bad", bad);
  Netlist m = b.take();

  RfnOptions opt;
  opt.time_limit_s = 30.0;
  // Pin the pre-PDR lineup: this test exercises the approximate-traversal
  // fallback, and the IC3 engine would simply prove the property outright
  // before the race ever comes up winnerless.
  opt.engines = {"bdd", "atpg", "sim", "sat"};
  // Cripple the exact engine just enough: refinement traces stay shallow
  // (any still-free counter violates within ~2 steps), but the final full
  // model's fixpoint needs 5+ image steps, which only the fallback gets.
  opt.reach.max_steps = 3;
  opt.max_iterations = 60;
  opt.approx_block_size = 6;
  opt.approx_overlap = 2;
  RfnVerifier rfn(m, m.output("bad"), opt);
  const RfnResult res = rfn.run();
  EXPECT_EQ(res.verdict, Verdict::Holds) << res.note;
  // The proof must have come from the fallback.
  ASSERT_FALSE(res.per_iteration.empty());
  EXPECT_TRUE(res.per_iteration.back().approx_used);
  EXPECT_TRUE(res.per_iteration.back().approx_proved);

  // Without the fallback the same configuration is Unknown.
  opt.approx_fallback = false;
  RfnVerifier rfn2(m, m.output("bad"), opt);
  EXPECT_EQ(rfn2.run().verdict, Verdict::Unknown);
}

}  // namespace
}  // namespace rfn
