// Tests for the overlapping-partition approximate traversal (the paper's
// future-work engine, mc/approx_reach).

#include "mc/approx_reach.hpp"

#include <gtest/gtest.h>

#include "mc/image.hpp"
#include "netlist/builder.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

// Independent gated counters: per-block traversal is exact on each counter,
// so the approximation proves per-counter range properties.
Netlist make_counters(size_t count, size_t bits, std::vector<Word>* words) {
  NetBuilder b;
  for (size_t c = 0; c < count; ++c) {
    const GateId en = b.input("en" + std::to_string(c));
    const Word cnt = b.reg_word("c" + std::to_string(c), bits, 0);
    const GateId wrap = b.eq_const(cnt, 4);  // counts 0..4 then wraps
    const Word next = b.mux_word(wrap, b.inc_word(cnt), b.constant_word(0, bits));
    b.set_next_word(cnt, b.mux_word(en, cnt, next));
    words->push_back(cnt);
  }
  b.output("anchor", (*words)[0][0]);
  return b.take();
}

TEST(ApproxReach, ProvesPerBlockProperty) {
  std::vector<Word> counters;
  Netlist n = make_counters(6, 3, &counters);
  BddMgr mgr;
  Encoder enc(mgr, n);
  // Bad: counter 0 reaches 6 (unreachable: wraps at 4).
  const Bdd bad = enc.cube_bdd(
      {{counters[0][0], false}, {counters[0][1], true}, {counters[0][2], true}});
  ApproxReachOptions opt;
  opt.block_size = 3;
  opt.overlap = 1;
  const ApproxReachResult res = approx_forward_reach(enc, enc.initial_states(), bad, opt);
  EXPECT_EQ(res.status, ApproxStatus::Proved);
  EXPECT_GT(res.blocks, 1u);
}

TEST(ApproxReach, InconclusiveOnCrossBlockProperty) {
  // Two registers forced equal by construction (both latch the same input);
  // put them in different blocks: the approximation loses the correlation,
  // so "r0 != r1" looks reachable -> Inconclusive, even though exact
  // reachability would prove it unreachable.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r0 = b.reg("r0");
  // Pad registers so r0 and r1 land in different unit-size blocks.
  const GateId pad0 = b.reg("pad0");
  const GateId pad1 = b.reg("pad1");
  const GateId r1 = b.reg("r1");
  b.set_next(r0, in);
  b.set_next(pad0, b.not_(pad0));
  b.set_next(pad1, pad0);
  b.set_next(r1, in);
  b.output("anchor", b.xor_(r0, r1));
  Netlist n = b.take();

  BddMgr mgr;
  Encoder enc(mgr, n);
  const Bdd different = mgr.var(enc.state_var(r0)) ^ mgr.var(enc.state_var(r1));

  ApproxReachOptions tight;
  tight.block_size = 2;
  tight.overlap = 1;
  const ApproxReachResult approx =
      approx_forward_reach(enc, enc.initial_states(), different, tight);
  EXPECT_EQ(approx.status, ApproxStatus::Inconclusive);

  // A single all-covering block is exact and proves it.
  ApproxReachOptions whole;
  whole.block_size = 8;
  whole.overlap = 1;
  const ApproxReachResult exact =
      approx_forward_reach(enc, enc.initial_states(), different, whole);
  EXPECT_EQ(exact.status, ApproxStatus::Proved);
}

TEST(ApproxReach, OverApproximatesExactReachability) {
  // Property check: the product of block sets contains the exact reachable
  // set (randomized designs, exact reach via ImageComputer).
  Rng rng(31);
  for (int round = 0; round < 6; ++round) {
    NetBuilder b;
    const size_t nregs = 6;
    std::vector<GateId> regs, pool;
    for (size_t i = 0; i < 2; ++i) pool.push_back(b.input("i" + std::to_string(i)));
    for (size_t i = 0; i < nregs; ++i) {
      regs.push_back(b.reg("r" + std::to_string(i)));
      pool.push_back(regs.back());
    }
    for (int i = 0; i < 15; ++i) {
      const GateId x = pool[rng.below(pool.size())];
      const GateId y = pool[rng.below(pool.size())];
      switch (rng.below(3)) {
        case 0: pool.push_back(b.and_(x, y)); break;
        case 1: pool.push_back(b.or_(x, y)); break;
        case 2: pool.push_back(b.xor_(x, y)); break;
      }
    }
    for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(6)]);
    b.output("anchor", regs[0]);
    Netlist n = b.take();

    BddMgr mgr;
    Encoder enc(mgr, n);
    ImageComputer img(enc);
    const ReachResult exact = forward_reach(img, enc.initial_states(), mgr.bdd_false());
    ASSERT_EQ(exact.status, ReachStatus::Proved);

    ApproxReachOptions opt;
    opt.block_size = 3;
    opt.overlap = 1;
    const ApproxReachResult approx =
        approx_forward_reach(enc, enc.initial_states(), mgr.bdd_false(), opt);
    ASSERT_EQ(approx.status, ApproxStatus::Proved);  // bad=false is avoided

    Bdd product = mgr.bdd_true();
    for (const Bdd& r : approx.block_sets) product &= r;
    EXPECT_TRUE(exact.reached.implies(product)) << "round " << round;
  }
}

TEST(ApproxReach, SingleBlockMatchesExact) {
  std::vector<Word> counters;
  Netlist n = make_counters(1, 3, &counters);
  BddMgr mgr;
  Encoder enc(mgr, n);
  ImageComputer img(enc);
  const ReachResult exact = forward_reach(img, enc.initial_states(), mgr.bdd_false());
  ApproxReachOptions opt;
  opt.block_size = 8;
  opt.overlap = 2;
  const ApproxReachResult approx =
      approx_forward_reach(enc, enc.initial_states(), mgr.bdd_false(), opt);
  ASSERT_EQ(approx.blocks, 1u);
  EXPECT_EQ(approx.block_sets[0], exact.reached);
}

TEST(ApproxReach, RespectsTimeLimit) {
  std::vector<Word> counters;
  Netlist n = make_counters(8, 4, &counters);
  BddMgr mgr;
  Encoder enc(mgr, n);
  ApproxReachOptions opt;
  opt.time_limit_s = 0.0;  // instantly expired
  const ApproxReachResult res =
      approx_forward_reach(enc, enc.initial_states(), mgr.bdd_false(), opt);
  EXPECT_EQ(res.status, ApproxStatus::ResourceOut);
}

}  // namespace
}  // namespace rfn
