// Portfolio scheduler tests: racing semantics, cancellation latency,
// sequential degradation, per-engine cancellation hooks, and the
// one-BddMgr-per-worker ownership rule (exercised under TSan via
// -DRFN_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "atpg/seq_atpg.hpp"
#include "core/hybrid_trace.hpp"
#include "core/portfolio.hpp"
#include "core/rfn.hpp"
#include "designs/fifo.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rfn {
namespace {

void sleep_ms(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

/// Mod-8 counter with no inputs: state runs 000 -> 111 in 7 steps, and
/// `bad` = r0 & r1 & r2 first rises at cycle 8. The property fails.
Netlist make_counter_fail() {
  NetBuilder b;
  const GateId r0 = b.reg("r0", Tri::F);
  const GateId r1 = b.reg("r1", Tri::F);
  const GateId r2 = b.reg("r2", Tri::F);
  b.set_next(r0, b.not_(r0));
  b.set_next(r1, b.xor_(r1, r0));
  b.set_next(r2, b.xor_(r2, b.and_(r1, r0)));
  b.output("bad", b.and_(r2, b.and_(r1, r0)));
  return b.take();
}

/// Mod-3 counter: states cycle 00 -> 10 -> 01; state 11 is unreachable, so
/// `bad` = r0 & r1 never rises. The property holds.
Netlist make_counter_safe() {
  NetBuilder b;
  const GateId r0 = b.reg("r0", Tri::F);
  const GateId r1 = b.reg("r1", Tri::F);
  b.set_next(r0, b.and_(b.not_(r0), b.not_(r1)));
  b.set_next(r1, r0);
  b.output("bad", b.and_(r0, r1));
  return b.take();
}

TEST(Portfolio, FastConclusiveJobCancelsSlowJob) {
  Portfolio p(2);
  std::atomic<bool> slow_saw_cancel{false};
  std::vector<PortfolioJob> jobs;
  jobs.push_back({"slow", -1.0, [&](const CancelToken& token) {
                    // Would run ~5 s; must be cut short by the winner well
                    // within its 1 ms polling granularity.
                    for (int i = 0; i < 5000; ++i) {
                      if (token.cancelled()) {
                        slow_saw_cancel = true;
                        return false;
                      }
                      sleep_ms(1);
                    }
                    return false;
                  }});
  jobs.push_back({"fast", -1.0, [&](const CancelToken&) {
                    sleep_ms(10);
                    return true;
                  }});
  const RaceResult r = p.race(jobs);
  EXPECT_TRUE(r.conclusive);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_EQ(r.winner_name, "fast");
  EXPECT_TRUE(slow_saw_cancel.load());
  // Cancellation latency: the race ends when the loser notices the token,
  // which is bounded by its poll period, not by its 5 s natural runtime.
  EXPECT_LT(r.seconds, 1.0);
  EXPECT_EQ(r.launched, 2u);
  EXPECT_EQ(r.cancelled, 1u);
}

TEST(Portfolio, SequentialDegradationRunsInPriorityOrder) {
  for (const size_t workers : {size_t{0}, size_t{1}}) {
    Portfolio p(workers);
    std::vector<int> order;
    auto recording_job = [&](int id, bool conclusive) {
      return PortfolioJob{"job" + std::to_string(id), -1.0,
                          [&order, id, conclusive](const CancelToken&) {
                            order.push_back(id);
                            return conclusive;
                          }};
    };
    std::vector<PortfolioJob> jobs;
    jobs.push_back(recording_job(0, false));  // inconclusive, runs first
    jobs.push_back(recording_job(1, true));   // wins
    jobs.push_back(recording_job(2, true));   // behind the winner: skipped
    const RaceResult r = p.race(jobs);
    EXPECT_TRUE(r.conclusive) << "workers=" << workers;
    EXPECT_EQ(r.winner, 1u) << "workers=" << workers;
    EXPECT_EQ(order, (std::vector<int>{0, 1})) << "workers=" << workers;
    EXPECT_EQ(r.launched, 2u) << "workers=" << workers;
    EXPECT_EQ(r.cancelled, 1u) << "workers=" << workers;
  }
}

TEST(Portfolio, JobBudgetExpiresWithoutWinner) {
  Portfolio p(2);
  std::vector<PortfolioJob> jobs;
  jobs.push_back({"budgeted", 0.05, [&](const CancelToken& token) {
                    for (int i = 0; i < 5000; ++i) {
                      if (token.cancelled()) return false;  // budget expired
                      sleep_ms(1);
                    }
                    ADD_FAILURE() << "budget never expired";
                    return false;
                  }});
  const Stopwatch watch;
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  const RaceResult r = p.race(jobs);
  EXPECT_FALSE(r.conclusive);
  EXPECT_LT(watch.seconds(), 2.0);
  const MetricsSnapshot d = MetricsRegistry::global().snapshot().delta(before);
  EXPECT_EQ(d.value("portfolio.jobs_inconclusive"), 1.0);
}

TEST(Portfolio, CancelledParentTokenSkipsAllJobs) {
  Portfolio p(2);
  CancelToken parent;
  parent.cancel();
  std::atomic<int> ran{0};
  std::vector<PortfolioJob> jobs;
  for (int i = 0; i < 3; ++i)
    jobs.push_back({"j" + std::to_string(i), -1.0, [&](const CancelToken&) {
                      ++ran;
                      return true;
                    }});
  const RaceResult r = p.race(jobs, &parent);
  EXPECT_FALSE(r.conclusive);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(r.launched, 0u);
  EXPECT_EQ(r.cancelled, 3u);
}

TEST(Portfolio, StatsAccumulateAcrossRaces) {
  Portfolio p(0);
  std::vector<PortfolioJob> jobs;
  jobs.push_back({"alpha", -1.0, [](const CancelToken&) { return true; }});
  jobs.push_back({"beta", -1.0, [](const CancelToken&) { return true; }});
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  p.race(jobs);
  p.race(jobs);
  const MetricsSnapshot d = MetricsRegistry::global().snapshot().delta(before);
  EXPECT_EQ(d.value("portfolio.races"), 2.0);
  EXPECT_EQ(d.value("portfolio.jobs_launched"), 2.0);  // alpha wins inline;
  EXPECT_EQ(d.value("portfolio.jobs_cancelled"), 2.0);  // beta never starts
  EXPECT_EQ(d.value("portfolio.wins.alpha"), 2.0);
  EXPECT_EQ(d.value("portfolio.wins.beta"), 0.0);
  EXPECT_GE(d.value("portfolio.race.seconds"), 0.0);
}

// The ownership rule from DESIGN.md: every concurrent job owns its BddMgr
// outright. Eight reachability jobs over one shared (immutable) netlist on
// four workers; under -DRFN_SANITIZE=thread this test is the lock-in that
// per-worker managers plus read-only netlist sharing are race-free.
TEST(Portfolio, PerWorkerBddMgrOwnership) {
  const Netlist m = make_counter_fail();
  Portfolio p(4);
  std::vector<ReachStatus> status(8, ReachStatus::ResourceOut);
  std::vector<PortfolioJob> jobs;
  for (size_t i = 0; i < status.size(); ++i)
    jobs.push_back({"bdd" + std::to_string(i), -1.0,
                    [&m, &status, i](const CancelToken&) {
                      BddMgr mgr;  // owned by this job alone
                      Encoder enc(mgr, m);
                      ImageComputer img(enc);
                      const Bdd bad =
                          mgr.exists(enc.signal_fn(m.output("bad")), enc.input_vars());
                      status[i] =
                          forward_reach(img, enc.initial_states(), bad).status;
                      return false;  // inconclusive: every job runs fully
                    }});
  const RaceResult r = p.race(jobs);
  EXPECT_FALSE(r.conclusive);
  EXPECT_EQ(r.launched, jobs.size());
  for (size_t i = 0; i < status.size(); ++i)
    EXPECT_EQ(status[i], ReachStatus::BadReachable) << "job " << i;
}

TEST(Portfolio, EngineCancellationHooks) {
  const Netlist m = make_counter_fail();
  const GateId bad = m.output("bad");
  CancelToken tok;
  tok.cancel();

  BddMgr mgr;
  Encoder enc(mgr, m);
  ImageComputer img(enc);
  const Bdd bad_set = mgr.exists(enc.signal_fn(bad), enc.input_vars());

  // BDD reachability: a cancelled fixpoint reports ResourceOut.
  ReachOptions ro;
  ro.cancel = &tok;
  EXPECT_EQ(forward_reach(img, enc.initial_states(), bad_set, ro).status,
            ReachStatus::ResourceOut);

  // Sequential ATPG: a cancelled search reports Abort.
  AtpgOptions ao;
  ao.cancel = &tok;
  EXPECT_EQ(reach_target(m, 8, bad, true, {}, ao).status, AtpgStatus::Abort);

  // Hybrid trace engine: a cancelled walk yields no traces.
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set);
  ASSERT_EQ(reach.status, ReachStatus::BadReachable);
  HybridTraceOptions ho;
  ho.cancel = &tok;
  EXPECT_TRUE(hybrid_error_traces(enc, m, reach, bad_set, 1, ho).empty());

  // 3-valued simulation: a cancelled eval() reports stopped(), and a
  // cancelled trace replay answers X.
  Sim3 sim(m);
  sim.set_should_stop(&tok);
  sim.load_initial_state();
  sim.eval();
  EXPECT_TRUE(sim.stopped());
  const Trace cex = random_sim_error_trace(m, bad, 16, 1);
  ASSERT_FALSE(cex.empty());
  EXPECT_EQ(simulate_trace(m, cex, bad, &tok), Tri::X);
}

TEST(Portfolio, RandomSimErrorTraceReplaysToBad) {
  const Netlist fail = make_counter_fail();
  const Trace cex = random_sim_error_trace(fail, fail.output("bad"), 16, 99);
  ASSERT_FALSE(cex.empty());
  EXPECT_EQ(cex.cycles(), 8u);  // counter needs exactly 7 steps + 1 eval
  EXPECT_EQ(simulate_trace(fail, cex, fail.output("bad")), Tri::T);

  const Netlist safe = make_counter_safe();
  EXPECT_TRUE(random_sim_error_trace(safe, safe.output("bad"), 64, 99).empty());
}

// Race real engines against each other: every engine is sound, so whichever
// wins must report a verdict consistent with the design's ground truth.
TEST(Portfolio, EngineRaceVerdictsAgree) {
  for (const bool fails : {true, false}) {
    const Netlist m = fails ? make_counter_fail() : make_counter_safe();
    const GateId bad = m.output("bad");
    for (const size_t workers : {size_t{0}, size_t{2}}) {
      Portfolio p(workers);
      BddMgr mgr;
      Encoder enc(mgr, m);
      ImageComputer img(enc);
      const Bdd bad_set = mgr.exists(enc.signal_fn(bad), enc.input_vars());
      ReachResult reach;
      SeqAtpgResult atpg;
      Trace sim_cex;
      std::vector<PortfolioJob> jobs;
      jobs.push_back({"bdd-reach", -1.0, [&](const CancelToken& token) {
                        ReachOptions ro;
                        ro.cancel = &token;
                        reach = forward_reach(img, enc.initial_states(), bad_set, ro);
                        return reach.status != ReachStatus::ResourceOut;
                      }});
      jobs.push_back({"seq-atpg", -1.0, [&](const CancelToken& token) {
                        AtpgOptions ao;
                        ao.cancel = &token;
                        for (size_t k = 1; k <= 10; ++k) {
                          if (token.cancelled()) return false;
                          SeqAtpgResult r = reach_target(m, k, bad, true, {}, ao);
                          if (r.status == AtpgStatus::Sat) {
                            atpg = std::move(r);
                            return true;
                          }
                        }
                        return false;
                      }});
      jobs.push_back({"rand-sim", -1.0, [&](const CancelToken& token) {
                        sim_cex = random_sim_error_trace(m, bad, 32, 7, &token);
                        return !sim_cex.empty();
                      }});
      const RaceResult r = p.race(jobs);
      ASSERT_TRUE(r.conclusive) << "fails=" << fails << " workers=" << workers;
      if (r.winner == 0) {
        EXPECT_EQ(reach.status, fails ? ReachStatus::BadReachable
                                      : ReachStatus::Proved);
      } else if (r.winner == 1) {
        EXPECT_TRUE(fails);
        EXPECT_EQ(simulate_trace(m, atpg.trace, bad), Tri::T);
      } else {
        EXPECT_TRUE(fails);
        EXPECT_EQ(simulate_trace(m, sim_cex, bad), Tri::T);
      }
      // Only the formal engine can conclude on a safe design.
      if (!fails) EXPECT_EQ(r.winner_name, "bdd-reach");
      // Sequentially, priority order makes the formal engine the winner.
      if (workers == 0) EXPECT_EQ(r.winner_name, "bdd-reach");
    }
  }
}

TEST(Portfolio, RfnPortfolioAgreesWithSequential) {
  struct Case {
    Netlist netlist;
    GateId bad;
    Verdict expect;
  };
  std::vector<Case> cases;
  {
    Netlist m = make_counter_fail();
    const GateId bad = m.output("bad");
    cases.push_back({std::move(m), bad, Verdict::Fails});
  }
  {
    Netlist m = make_counter_safe();
    const GateId bad = m.output("bad");
    cases.push_back({std::move(m), bad, Verdict::Holds});
  }
  {
    designs::FifoDesign fifo = designs::make_fifo({.addr_bits = 2, .data_bits = 2});
    const GateId bad = fifo.bad_push_full;
    cases.push_back({std::move(fifo.netlist), bad, Verdict::Holds});
  }
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    std::vector<RfnResult> results;
    for (const size_t workers : {size_t{0}, size_t{2}}) {
      RfnOptions opt;
      opt.portfolio_workers = workers;
      opt.race_probe_time_s = 0.5;
      const MetricsSnapshot before = MetricsRegistry::global().snapshot();
      RfnVerifier v(c.netlist, c.bad, opt);
      results.push_back(v.run());
      const MetricsSnapshot d = MetricsRegistry::global().snapshot().delta(before);
      EXPECT_GE(d.value("portfolio.races"), 1.0) << "case " << ci;
    }
    for (const RfnResult& r : results) {
      EXPECT_EQ(r.verdict, c.expect) << "case " << ci << " note: " << r.note;
      if (r.verdict == Verdict::Fails)
        EXPECT_EQ(simulate_trace(c.netlist, r.error_trace, c.bad), Tri::T)
            << "case " << ci;
    }
    EXPECT_EQ(results[0].verdict, results[1].verdict) << "case " << ci;
  }
}

}  // namespace
}  // namespace rfn
