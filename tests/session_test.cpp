// Batch-session tests: options validation, the consolidated status strings,
// cone clustering, the subcircuit memo, and — the acceptance check — batch
// verdicts identical to independent single-property RfnVerifier runs on
// designs with identical / nested / overlapping / disjoint property cones.

#include "core/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/status.hpp"
#include "core/trace_json.hpp"
#include "designs/fifo.hpp"
#include "designs/iu.hpp"
#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"

namespace rfn {
namespace {

bool any_error_contains(const std::vector<std::string>& errors,
                        const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

TEST(RfnOptionsValidate, DefaultsAreValid) {
  EXPECT_TRUE(RfnOptions{}.validate().empty());
}

TEST(RfnOptionsValidate, ReportsEveryProblemAtOnce) {
  RfnOptions opt;
  opt.max_iterations = 0;
  opt.traces_per_iteration = 0;
  opt.budget_bdd_nodes = -1;
  const auto errors = opt.validate();
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_TRUE(any_error_contains(errors, "max_iterations"));
  EXPECT_TRUE(any_error_contains(errors, "traces_per_iteration"));
  EXPECT_TRUE(any_error_contains(errors, "budget_bdd_nodes"));
}

TEST(RfnOptionsValidate, ApproxOverlapMustLeaveProgress) {
  RfnOptions opt;
  opt.approx_block_size = 4;
  opt.approx_overlap = 4;  // no forward progress per block
  EXPECT_TRUE(any_error_contains(opt.validate(), "approx_overlap"));
  // With the fallback disabled the pair is never used: not an error.
  opt.approx_fallback = false;
  EXPECT_TRUE(opt.validate().empty());
}

TEST(RfnOptionsValidate, NegativeProbeTimeAndZeroBudgets) {
  RfnOptions opt;
  opt.race_probe_time_s = -1.0;
  opt.race_sim_cycles = 0;
  opt.reach.max_live_nodes = 0;
  opt.reach.max_steps = 0;
  const auto errors = opt.validate();
  EXPECT_EQ(errors.size(), 4u);
  EXPECT_TRUE(any_error_contains(errors, "race_probe_time_s"));
  EXPECT_TRUE(any_error_contains(errors, "max_live_nodes"));
}

TEST(StatusStrings, CanonicalSpellings) {
  // These strings are part of the rfn-trace-v1/v2 schemas — changing them
  // breaks every consumer (trace_report.py, bench_gate.py, the CI gate).
  EXPECT_STREQ(to_string(Verdict::Holds), "T");
  EXPECT_STREQ(to_string(Verdict::Fails), "F");
  EXPECT_STREQ(to_string(Verdict::Unknown), "?");
  EXPECT_STREQ(to_string(Verdict::ResourceOut), "resource-out");
  EXPECT_STREQ(to_string(ReachStatus::Proved), "proved");
  EXPECT_STREQ(to_string(ReachStatus::BadReachable), "bad-reachable");
  EXPECT_STREQ(to_string(ReachStatus::ResourceOut), "resource-out");
  EXPECT_STREQ(to_string(AtpgStatus::Sat), "sat");
  EXPECT_STREQ(to_string(AtpgStatus::Unsat), "unsat");
  EXPECT_STREQ(to_string(AtpgStatus::Abort), "abort");
}

TEST(ConeClustering, JaccardOverlap) {
  EXPECT_DOUBLE_EQ(jaccard_overlap({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_overlap({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_overlap({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_overlap({1, 2, 3, 4}, {3, 4, 5, 6}), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(jaccard_overlap({1, 2, 3, 4}, {1, 2}), 0.5);  // nested
}

TEST(ConeClustering, IdenticalNestedOverlappingDisjoint) {
  const std::vector<std::vector<GateId>> cones = {
      {1, 2, 3, 4},  // 0
      {1, 2, 3, 4},  // 1: identical to 0 -> same cluster
      {1, 2},        // 2: nested in 0, jaccard 0.5 -> joins at threshold
      {3, 4, 5, 6},  // 3: overlap 2/6 with 0 -> below 0.5, new cluster
      {7, 8},        // 4: disjoint -> own cluster
  };
  const auto clusters = cluster_by_cone_overlap(cones, 0.5, 8);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(clusters[1], (std::vector<size_t>{3}));
  EXPECT_EQ(clusters[2], (std::vector<size_t>{4}));
}

TEST(ConeClustering, RespectsMaxClusterSizeAndSolo) {
  const std::vector<std::vector<GateId>> cones = {{1}, {1}, {1}, {1}};
  const auto capped = cluster_by_cone_overlap(cones, 0.5, 2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped[0].size(), 2u);

  // A solo-pinned property never joins (or anchors) a shared cluster.
  const auto pinned =
      cluster_by_cone_overlap(cones, 0.5, 8, {false, true, false, false});
  ASSERT_EQ(pinned.size(), 2u);
  EXPECT_EQ(pinned[0], (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(pinned[1], (std::vector<size_t>{1}));
}

TEST(ConeClustering, ThresholdZeroDisablesClustering) {
  const std::vector<std::vector<GateId>> cones = {{1}, {1}, {1}};
  EXPECT_EQ(cluster_by_cone_overlap(cones, 0.0, 8).size(), 3u);
}

TEST(SubcircuitMemoTest, HitsOnRepeatedExtraction) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r1 = b.reg("r1");
  const GateId r2 = b.reg("r2");
  b.set_next(r1, in);
  b.set_next(r2, b.not_(r1));
  b.output("p", r2);
  const Netlist m = b.take();

  SubcircuitMemo memo;
  const auto a = memo.get(m, {r2}, {r2});
  const auto b2 = memo.get(m, {r2}, {r2});
  EXPECT_EQ(a.get(), b2.get());
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
  // A different register set is a different model.
  const auto c = memo.get(m, {r2}, {r1, r2});
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(memo.misses(), 2u);
}

// A 3-bit counter that counts 0..5 under an enable and wraps, with one
// reachable property (cnt == 3) and one unreachable one (cnt == 7). Both
// cones are the whole counter, so the two properties land in one cluster
// and exercise the Fails-attribution path: the shared disjunction run finds
// the cnt == 3 trace, attributes it to bad_a alone, and the re-run on the
// remainder proves bad_b.
struct Counter {
  Netlist n;
  GateId bad_a, bad_b;
};

Counter make_counter() {
  NetBuilder b;
  const GateId en = b.input("en");
  const Word cnt = b.reg_word("cnt", 3, 0);
  const Word wrapped =
      b.mux_word(b.eq_const(cnt, 5), b.inc_word(cnt), b.constant_word(0, 3));
  b.set_next_word(cnt, b.mux_word(en, cnt, wrapped));
  Counter c;
  c.bad_a = b.eq_const(cnt, 3);
  c.bad_b = b.eq_const(cnt, 7);
  b.name(c.bad_a, "bad_a");
  b.name(c.bad_b, "bad_b");
  b.output("bad_a", c.bad_a);
  b.output("bad_b", c.bad_b);
  c.n = b.take();
  return c;
}

TEST(VerifySessionTest, AttributesFailureWithinCluster) {
  const Counter c = make_counter();
  VerifySession session(c.n, {});
  const auto results =
      session.run({{"", c.bad_a, {}}, {"", c.bad_b, {}}});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(session.clusters().size(), 1u);  // identical cones
  EXPECT_EQ(results[0].verdict, Verdict::Fails);
  EXPECT_EQ(results[1].verdict, Verdict::Holds);
  EXPECT_TRUE(results[0].clustered);
  EXPECT_TRUE(results[1].clustered);
  EXPECT_EQ(results[0].name, "bad_a");
  EXPECT_EQ(results[1].name, "bad_b");
  EXPECT_GT(results[0].trace.cycles(), 0u);
  EXPECT_EQ(results[1].trace.cycles(), 0u);
  // The second round's first BDD manager starts from the first round's
  // saved variable order.
  EXPECT_TRUE(results[1].order_seeded);
}

TEST(VerifySessionTest, DisjointConesRunIndependently) {
  NetBuilder b;
  const GateId r1 = b.reg("toggler");
  b.set_next(r1, b.not_(r1));  // 0,1,0,1,... -> reachable
  const GateId r2 = b.reg("stuck");
  b.set_next(r2, r2);  // stays 0 -> unreachable
  b.output("bad1", r1);
  b.output("bad2", r2);
  const Netlist m = b.take();

  VerifySession session(m, {});
  const auto results = session.run({{"", r1, {}}, {"", r2, {}}});
  EXPECT_EQ(session.clusters().size(), 2u);
  EXPECT_EQ(results[0].verdict, Verdict::Fails);
  EXPECT_EQ(results[1].verdict, Verdict::Holds);
  EXPECT_FALSE(results[0].clustered);
  EXPECT_FALSE(results[1].clustered);
}

TEST(VerifySessionTest, OverridesForceSoloRuns) {
  const Counter c = make_counter();
  PropertyRequest pa{"a", c.bad_a, {}};
  PropertyRequest pb{"b", c.bad_b, {}};
  pb.overrides.max_iterations = 30;
  VerifySession session(c.n, {});
  const auto results = session.run({pa, pb});
  // Identical cones, but the override pins b into its own cluster.
  EXPECT_EQ(session.clusters().size(), 2u);
  EXPECT_FALSE(results[0].clustered);
  EXPECT_FALSE(results[1].clustered);
  EXPECT_EQ(results[0].verdict, Verdict::Fails);
  EXPECT_EQ(results[1].verdict, Verdict::Holds);
}

TEST(VerifySessionTest, EmptyBatch) {
  const Counter c = make_counter();
  VerifySession session(c.n, {});
  EXPECT_TRUE(session.run({}).empty());
  EXPECT_TRUE(session.clusters().empty());
}

TEST(VerifySessionTest, MatchesSingleRunsOnFifo) {
  // The acceptance cross-check, cross_engine_test style: the batch path and
  // the single-property compatibility path must report identical verdicts
  // for a four-property overlapping-cone suite — the FIFO's three occupancy
  // flags plus their disjunction ("some flag errs"), the composite any-error
  // line testbenches expose.
  designs::FifoDesign fifo = designs::make_fifo({.addr_bits = 2, .data_bits = 2});
  const GateId any = append_disjunction(
      fifo.netlist, {fifo.bad_push_full, fifo.bad_push_af, fifo.bad_push_hf},
      "bad_any");
  const std::vector<GateId> bads = {fifo.bad_push_full, fifo.bad_push_af,
                                    fifo.bad_push_hf, any};

  RfnOptions opt;
  opt.time_limit_s = 60.0;
  SessionOptions sopt;
  sopt.defaults = opt;
  VerifySession session(fifo.netlist, sopt);
  std::vector<PropertyRequest> props;
  for (GateId bad : bads) props.push_back({"", bad, {}});
  const auto batch = session.run(props);

  // The session's clustering must be exactly what the exposed heuristic
  // computes from the cones.
  std::vector<std::vector<GateId>> cones;
  for (GateId bad : bads) {
    cones.push_back(coi_registers(fifo.netlist, {bad}));
    std::sort(cones.back().begin(), cones.back().end());
  }
  EXPECT_EQ(session.clusters(),
            cluster_by_cone_overlap(cones, sopt.cluster_overlap,
                                    sopt.max_cluster_size,
                                    std::vector<bool>(bads.size(), false)));

  for (size_t i = 0; i < bads.size(); ++i) {
    RfnVerifier single(fifo.netlist, bads[i], opt);
    const RfnResult ref = single.run();
    EXPECT_EQ(batch[i].verdict, ref.verdict) << "property " << batch[i].name;
    EXPECT_EQ(batch[i].verdict, Verdict::Holds);
  }
}

TEST(VerifySessionTest, IuCoverageRegistersShareOneCluster) {
  // The IU control is strongly connected: coverage registers from different
  // sets have identical COIs (designs_test asserts this), so as properties
  // they must cluster together.
  const designs::IuDesign iu = designs::make_iu({});
  std::vector<GateId> bads = {iu.coverage_sets[0][0], iu.coverage_sets[1][0],
                              iu.coverage_sets[2][0], iu.coverage_sets[3][0]};
  std::vector<std::vector<GateId>> cones;
  std::vector<bool> solo(bads.size(), false);
  for (GateId bad : bads) {
    cones.push_back(coi_registers(iu.netlist, {bad}));
    std::sort(cones.back().begin(), cones.back().end());
  }
  for (size_t i = 1; i < cones.size(); ++i)
    EXPECT_DOUBLE_EQ(jaccard_overlap(cones[0], cones[i]), 1.0);
  const auto clusters = cluster_by_cone_overlap(cones, 0.5, 8, solo);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), bads.size());
}

TEST(VerifySessionTest, BatchTraceV2HasOneRecordPerProperty) {
  const Counter c = make_counter();
  VerifySession session(c.n, {});
  const auto results = session.run({{"", c.bad_a, {}}, {"", c.bad_b, {}}});

  std::ostringstream os;
  write_batch_trace_json(os, results, session.clusters().size(), 0.25);
  std::vector<std::string> lines;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), results.size() + 1);  // N properties + summary
  EXPECT_NE(lines[0].find("\"type\":\"property\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"bad_a\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"verdict\":\"F\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":\"T\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"batch-summary\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"trace_version\":\"rfn-trace-v2\""), std::string::npos);
}

TEST(VerifySessionTest, InvalidDefaultsDie) {
  const Counter c = make_counter();
  SessionOptions sopt;
  sopt.defaults.traces_per_iteration = 0;
  VerifySession session(c.n, sopt);
  EXPECT_DEATH(session.run({{"", c.bad_a, {}}}), "traces_per_iteration");
}

TEST(RfnVerifierShim, RunTwiceResumesFromRefinedAbstraction) {
  const Counter c = make_counter();
  RfnVerifier v(c.n, c.bad_b);
  const RfnResult first = v.run();
  EXPECT_EQ(first.verdict, Verdict::Holds);
  EXPECT_EQ(first.final_registers, v.abstract_registers());
  // A second run starts from the refined set: it must reach the same
  // verdict without shrinking the abstraction.
  const RfnResult second = v.run();
  EXPECT_EQ(second.verdict, Verdict::Holds);
  EXPECT_GE(second.final_registers.size(), first.final_registers.size());
}

}  // namespace
}  // namespace rfn
