// Edge-case tests across modules: degenerate designs, boundary parameters,
// and less-traveled API paths.

#include <gtest/gtest.h>

#include "atpg/comb_atpg.hpp"
#include "atpg/unroll.hpp"
#include "bdd/bdd.hpp"
#include "core/plain_mc.hpp"
#include "core/rfn.hpp"
#include "mc/image.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

TEST(EdgeCases, RfnOnCombinationalOnlyProperty) {
  // bad depends only on primary inputs: no registers anywhere. The property
  // is falsifiable in one cycle.
  NetBuilder b;
  const GateId x = b.input("x");
  const GateId y = b.input("y");
  const GateId bad = b.and_(x, b.not_(y));
  b.output("bad", bad);
  Netlist m = b.take();

  RfnVerifier rfn(m, m.output("bad"));
  const RfnResult res = rfn.run();
  EXPECT_EQ(res.verdict, Verdict::Fails);
  ASSERT_FALSE(res.error_trace.empty());
  // The trace's inputs must actually trigger the violation.
  Sim3 sim(m);
  sim.set_cube(res.error_trace.steps.back().inputs);
  sim.eval();
  EXPECT_EQ(sim.value(bad), Tri::T);
}

TEST(EdgeCases, RfnOnStructurallyFalseProperty) {
  // bad folds to a constant 0 at build time: one iteration, proved.
  NetBuilder b;
  const GateId x = b.input("x");
  const GateId bad = b.and_(x, b.not_(x));  // folds to const0
  b.output("bad", bad);
  Netlist m = b.take();
  RfnVerifier rfn(m, m.output("bad"));
  EXPECT_EQ(rfn.run().verdict, Verdict::Holds);
}

TEST(EdgeCases, RfnBadAlreadyTrueAtInit) {
  // The watchdog initializes to 1: a zero-length violation.
  NetBuilder b;
  const GateId bad = b.reg("bad", Tri::T);
  b.set_next(bad, bad);
  b.output("bad", bad);
  Netlist m = b.take();
  RfnVerifier rfn(m, m.output("bad"));
  const RfnResult res = rfn.run();
  EXPECT_EQ(res.verdict, Verdict::Fails);
  EXPECT_EQ(res.error_trace.cycles(), 1u);
}

TEST(EdgeCases, PlainMcOnSingleRegister) {
  NetBuilder b;
  const GateId r = b.reg("r", Tri::F);
  b.set_next(r, r);
  b.output("bad", r);
  Netlist m = b.take();
  EXPECT_EQ(plain_model_check(m, m.output("bad"), ReachOptions{}).verdict,
            Verdict::Holds);
}

TEST(EdgeCases, UnrollFullMaterializesEverything) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r");
  b.set_next(r, b.xor_(r, in));
  Netlist m = b.take();
  const Unrolled u = unroll_full(m, 3);
  for (size_t f = 1; f <= 3; ++f) {
    EXPECT_NE(u.at(f, in), kNullGate);
    EXPECT_NE(u.at(f, r), kNullGate);
  }
  // Frame 1 register is the init constant; later frames alias comb nets.
  EXPECT_EQ(u.net.type(u.at(1, r)), GateType::Const0);
}

TEST(EdgeCases, JustifyEmptyTargetIsTriviallySat) {
  NetBuilder b;
  const GateId x = b.input("x");
  b.output("o", b.not_(x));
  Netlist n = b.take();
  const CombAtpgResult res = justify(n, {});
  EXPECT_EQ(res.status, AtpgStatus::Sat);
  EXPECT_TRUE(res.free_assignment.empty());
}

TEST(EdgeCases, JustifyTargetOnInputItself) {
  NetBuilder b;
  const GateId x = b.input("x");
  b.output("o", x);
  Netlist n = b.take();
  const CombAtpgResult res = justify(n, {{x, true}});
  ASSERT_EQ(res.status, AtpgStatus::Sat);
  EXPECT_EQ(cube_lookup(res.free_assignment, x), Tri::T);
}

TEST(EdgeCases, CombAtpgDeadlineAborts) {
  // A hard random-ish instance with a zero deadline must abort, not hang.
  NetBuilder b;
  std::vector<GateId> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(b.input("x" + std::to_string(i)));
  GateId acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = b.xor_(acc, xs[i]);
  Netlist n = b.take();
  AtpgOptions opt;
  opt.time_limit_s = 0.0;
  opt.max_backtracks = 0;
  const CombAtpgResult res = justify(n, {{acc, true}}, opt);
  // With zero budget the only acceptable outcomes are an instant answer via
  // pure implication or an abort.
  EXPECT_NE(res.status, AtpgStatus::Unsat);
}

TEST(EdgeCases, FirstCubesRespectsLimit) {
  BddMgr mgr(6);
  Bdd f = mgr.bdd_false();
  for (BddVar v = 0; v < 6; ++v) f |= mgr.var(v);
  EXPECT_EQ(mgr.first_cubes(f, 3).size(), 3u);
  EXPECT_EQ(mgr.first_cubes(f, 0).size(), 0u);
  EXPECT_TRUE(mgr.first_cubes(mgr.bdd_false(), 8).empty());
  const auto all = mgr.first_cubes(mgr.bdd_true(), 8);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].empty());
}

TEST(EdgeCases, NodeBudgetReturnsNullGracefully) {
  BddMgr mgr(24);
  mgr.set_node_budget(16);  // absurdly tight
  Bdd f = mgr.var(0);
  for (BddVar v = 1; v < 24; ++v) {
    f = f ^ mgr.var(v);
    if (f.is_null()) break;
  }
  EXPECT_TRUE(f.is_null());  // parity of 24 vars cannot fit in 16 nodes
  // The manager remains consistent and usable under the budget.
  mgr.check_integrity();
  mgr.set_node_budget(0);
  const Bdd g = mgr.var(2) & mgr.var(3);
  EXPECT_FALSE(g.is_null());
}

TEST(EdgeCases, EvalGate2WideGates) {
  bool v[10];
  std::fill(std::begin(v), std::end(v), true);
  EXPECT_TRUE(eval_gate2(GateType::And, v, 10));
  v[4] = false;
  EXPECT_FALSE(eval_gate2(GateType::And, v, 10));
  EXPECT_TRUE(eval_gate2(GateType::Nand, v, 10));
  EXPECT_TRUE(eval_gate2(GateType::Or, v, 10));
  bool zeros[10] = {};
  EXPECT_TRUE(eval_gate2(GateType::Nor, zeros, 10));
}

TEST(EdgeCases, CubeToStringUsesNames) {
  NetBuilder b;
  const GateId x = b.input("request");
  const GateId y = b.input("");
  Netlist n = b.take();
  const std::string s = cube_to_string(n, {{x, true}, {y, false}});
  EXPECT_NE(s.find("request=1"), std::string::npos);
  EXPECT_NE(s.find("g"), std::string::npos);  // unnamed falls back to gN
}

TEST(EdgeCases, ImageComputerOnRegisterFreeModel) {
  NetBuilder b;
  const GateId x = b.input("x");
  b.output("o", b.not_(x));
  Netlist n = b.take();
  BddMgr mgr;
  Encoder enc(mgr, n);
  ImageComputer img(enc);
  EXPECT_EQ(img.num_partitions(), 0u);
  // Post-image of "all states" in a 0-register model is "all states".
  EXPECT_EQ(img.post_image(mgr.bdd_true()), mgr.bdd_true());
  const ReachResult r = forward_reach(img, enc.initial_states(), mgr.bdd_false());
  EXPECT_EQ(r.status, ReachStatus::Proved);
}

TEST(EdgeCases, SubcircuitOfEverythingIsIdentityShaped) {
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r = b.reg("r");
  b.set_next(r, b.xor_(r, in));
  b.output("p", r);
  Netlist m = b.take();
  const Subcircuit sub = extract_abstract_model(m, {r}, {r});
  EXPECT_EQ(sub.net.num_regs(), m.num_regs());
  EXPECT_EQ(sub.net.num_inputs(), m.num_inputs());
  EXPECT_TRUE(sub.pseudo_inputs.empty());
}

}  // namespace
}  // namespace rfn
