// Tests for the BLIF reader/writer: round-trip functional equivalence and
// hand-written BLIF parsing.

#include "netlist/blif.hpp"

#include <gtest/gtest.h>

#include "designs/fifo.hpp"
#include "netlist/builder.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

// Checks functional equivalence of two netlists with matching input /
// register / output names by lockstep random simulation.
void check_equivalent(const Netlist& a, const Netlist& b, int cycles, uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_regs(), b.num_regs());
  Sim64 sa(a), sb(b);
  Rng rng(seed), rinit(seed + 1), rinit2(seed + 1);
  sa.load_initial_state(rinit);
  sb.load_initial_state(rinit2);
  for (int c = 0; c < cycles; ++c) {
    for (GateId ia : a.inputs()) {
      const uint64_t w = rng.next();
      sa.set(ia, w);
      const GateId ib = b.find(a.name(ia));
      ASSERT_NE(ib, kNullGate) << "missing input " << a.name(ia);
      sb.set(ib, w);
    }
    sa.eval();
    sb.eval();
    for (const auto& [name, ga] : a.outputs()) {
      const GateId gb = b.output(name);
      ASSERT_NE(gb, kNullGate) << "missing output " << name;
      EXPECT_EQ(sa.value(ga), sb.value(gb)) << "output " << name << " cycle " << c;
    }
    sa.step();
    sb.step();
  }
}

TEST(Blif, RoundTripAllGateTypes) {
  NetBuilder b;
  const GateId i0 = b.input("i0");
  const GateId i1 = b.input("i1");
  const GateId i2 = b.input("i2");
  const GateId r = b.reg("state", Tri::T);
  // Exercise every primitive (builder folding is bypassed by using fresh
  // operand combinations).
  const GateId a = b.and_(i0, i1);
  const GateId o = b.or_(i1, i2);
  const GateId x = b.xor_(a, o);
  const GateId xn = b.xnor_(i0, i2);
  const GateId m = b.mux(i0, x, xn);
  const GateId nt = b.not_(m);
  b.set_next(r, nt);
  b.output("out", b.or_(r, i2));
  b.output("aux", m);
  Netlist n = b.take();

  const std::string blif = write_blif(n, "roundtrip");
  EXPECT_NE(blif.find(".model roundtrip"), std::string::npos);
  Netlist back = read_blif(blif);
  back.check();
  check_equivalent(n, back, 24, 17);
}

TEST(Blif, RoundTripFifoDesign) {
  const designs::FifoDesign fifo = designs::make_fifo({});
  const std::string blif = write_blif(fifo.netlist, "fifo");
  Netlist back = read_blif(blif);
  check_equivalent(fifo.netlist, back, 40, 99);
}

TEST(Blif, ParsesHandWrittenModel) {
  const char* text = R"(
# A tiny toggle counter with an enable.
.model toggle
.inputs en
.outputs q carry
.latch next q re clk 0
.names en q next
10 1
01 1
.names en q carry
11 1
.end
)";
  Netlist n = read_blif(text);
  n.check();
  EXPECT_EQ(n.num_inputs(), 1u);
  EXPECT_EQ(n.num_regs(), 1u);
  Sim64 sim(n);
  Rng rinit(1);
  sim.load_initial_state(rinit);
  const GateId en = n.find("en");
  const GateId q = n.output("q");
  // With en held high, q toggles 0,1,0,1...
  for (int c = 0; c < 6; ++c) {
    sim.set(en, ~0ULL);
    sim.eval();
    EXPECT_EQ(sim.value(q), (c % 2) ? ~0ULL : 0ULL) << "cycle " << c;
    sim.step();
  }
}

TEST(Blif, LatchInitValues) {
  const char* text = R"(
.model inits
.inputs d
.outputs a b c
.latch d a re clk 0
.latch d b re clk 1
.latch d c re clk 3
.end
)";
  Netlist n = read_blif(text);
  EXPECT_EQ(n.reg_init(n.find("a")), Tri::F);
  EXPECT_EQ(n.reg_init(n.find("b")), Tri::T);
  EXPECT_EQ(n.reg_init(n.find("c")), Tri::X);
}

TEST(Blif, ConstantsAndContinuations) {
  const char* text = ".model k\n.inputs a\n.outputs one zero w\n"
                     ".names one\n1\n.names zero\n"
                     "\n.names a \\\none w\n11 1\n.end\n";
  Netlist n = read_blif(text);
  Sim64 sim(n);
  sim.set(n.find("a"), ~0ULL);
  sim.eval();
  EXPECT_EQ(sim.value(n.output("one")), ~0ULL);
  EXPECT_EQ(sim.value(n.output("zero")), 0ULL);
  EXPECT_EQ(sim.value(n.output("w")), ~0ULL);
}

TEST(Blif, OutOfOrderCovers) {
  // w2 defined before its fanin w1: demand-driven resolution handles it.
  const char* text = R"(
.model ooo
.inputs a
.outputs w2
.names w1 w2
0 1
.names a w1
1 1
.end
)";
  Netlist n = read_blif(text);
  Sim64 sim(n);
  sim.set(n.find("a"), 0ULL);
  sim.eval();
  EXPECT_EQ(sim.value(n.output("w2")), ~0ULL);
}

}  // namespace
}  // namespace rfn
