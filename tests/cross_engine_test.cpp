// Cross-engine property tests: the independent engines must agree with
// each other on random designs.
//
//   * sequential ATPG vs BDD reachability: a target is reachable within k
//     cycles iff bounded reachability says so;
//   * BLIF round-trip: write+read preserves sequential behaviour;
//   * approximate traversal vs exact: over-approximation always contains
//     the exact reachable set (covered in approx_reach_test; here the
//     Proved verdicts are cross-checked against ATPG witnesses).

#include <gtest/gtest.h>

#include "atpg/seq_atpg.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "netlist/blif.hpp"
#include "netlist/builder.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

Netlist random_sequential(Rng& rng, size_t nins, size_t nregs, int gates,
                          std::vector<GateId>* regs_out) {
  NetBuilder b;
  std::vector<GateId> ins, regs, pool;
  for (size_t i = 0; i < nins; ++i) {
    ins.push_back(b.input("i" + std::to_string(i)));
    pool.push_back(ins.back());
  }
  for (size_t i = 0; i < nregs; ++i) {
    regs.push_back(b.reg("r" + std::to_string(i), rng.flip() ? Tri::F : Tri::T));
    pool.push_back(regs.back());
  }
  for (int i = 0; i < gates; ++i) {
    const GateId x = pool[rng.below(pool.size())];
    const GateId y = pool[rng.below(pool.size())];
    const GateId z = pool[rng.below(pool.size())];
    switch (rng.below(5)) {
      case 0: pool.push_back(b.and_(x, y)); break;
      case 1: pool.push_back(b.or_(x, y)); break;
      case 2: pool.push_back(b.xor_(x, y)); break;
      case 3: pool.push_back(b.not_(x)); break;
      case 4: pool.push_back(b.mux(x, y, z)); break;
    }
  }
  for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(8)]);
  b.output("probe", pool.back());
  if (regs_out) *regs_out = regs;
  return b.take();
}

class SeqAtpgVsBdd : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeqAtpgVsBdd, BoundedReachabilityAgrees) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    std::vector<GateId> regs;
    Netlist m = random_sequential(rng, 2, 4, 18, &regs);

    // Target: a random state cube over two registers.
    const size_t ia_idx = rng.below(regs.size());
    const size_t ib_idx = (ia_idx + 1 + rng.below(regs.size() - 1)) % regs.size();
    const GateId ra = regs[ia_idx];
    const GateId rb = regs[ib_idx];
    const bool va = rng.flip(), vb = rng.flip();

    // Ground truth: BDD rings.
    BddMgr mgr;
    Encoder enc(mgr, m);
    ImageComputer img(enc);
    const Bdd target = mgr.cube({{enc.state_var(ra), va}, {enc.state_var(rb), vb}});
    const ReachResult reach =
        forward_reach(img, enc.initial_states(), mgr.bdd_false());
    ASSERT_EQ(reach.status, ReachStatus::Proved);
    // reachable_at[k]: target intersects some ring with index <= k.
    std::vector<bool> reachable_at;
    bool seen = false;
    for (const Bdd& ring : reach.rings) {
      seen |= ring.intersects(target);
      reachable_at.push_back(seen);
    }

    for (size_t k = 1; k <= reach.rings.size() + 1; ++k) {
      std::vector<Cube> cubes(k);
      cubes[k - 1] = {{ra, va}, {rb, vb}};
      const SeqAtpgResult res = solve_cycle_cubes(m, cubes);
      ASSERT_NE(res.status, AtpgStatus::Abort);
      // ATPG at depth k asks for the target at exactly cycle k, i.e. after
      // k-1 steps: ring index k-1 (clamped to the fixpoint).
      const size_t ring_idx = std::min(k - 1, reach.rings.size() - 1);
      // A state first reached at ring j is reachable at any later cycle
      // only if revisitable; exact-cycle reachability is what ring j == k-1
      // certifies, so compare against "some ring at index exactly k-1" ...
      // rings are "first reached here", so exact-cycle containment at k-1
      // implies ATPG Sat; ATPG Sat implies reachable within k-1 steps.
      if (!reach.rings[ring_idx].is_false() &&
          reach.rings[ring_idx].intersects(target)) {
        EXPECT_EQ(res.status, AtpgStatus::Sat)
            << "round " << round << " depth " << k;
      }
      if (res.status == AtpgStatus::Sat) {
        EXPECT_TRUE(reachable_at[std::min(k - 1, reachable_at.size() - 1)])
            << "ATPG found a trace the BDD engine says cannot exist (depth " << k
            << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqAtpgVsBdd, ::testing::Values(7, 21, 42, 77));

class BlifRoundTripRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlifRoundTripRandom, PreservesSequentialBehaviour) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    Netlist m = random_sequential(rng, 3, 5, 25, nullptr);
    Netlist back = read_blif(write_blif(m, "rt"));
    back.check();

    Sim64 sa(m), sb(back);
    Rng stim(GetParam() + 1000 + static_cast<uint64_t>(round));
    Rng ia(5), ib(5);
    sa.load_initial_state(ia);
    sb.load_initial_state(ib);
    const GateId pa = m.output("probe");
    const GateId pb = back.output("probe");
    ASSERT_NE(pb, kNullGate);
    for (int c = 0; c < 16; ++c) {
      for (GateId in : m.inputs()) {
        const uint64_t w = stim.next();
        sa.set(in, w);
        sb.set(back.find(m.name(in)), w);
      }
      sa.eval();
      sb.eval();
      ASSERT_EQ(sa.value(pa), sb.value(pb)) << "cycle " << c;
      sa.step();
      sb.step();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundTripRandom, ::testing::Values(3, 9, 27));

}  // namespace
}  // namespace rfn
