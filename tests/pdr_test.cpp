// Tests for the IC3/PDR engine (src/pdr): unbounded Holds with the
// inductive frame discharged through the independent rfn-cert-v1 checker,
// counterexample traces that replay, pseudo-input abstraction semantics,
// frame/cancellation limits, the session-level `pdr` racer, and the
// proof-based shrink step it unlocks in core/refine.

#include "pdr/pdr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cert/check.hpp"
#include "core/certificate.hpp"
#include "core/certify.hpp"
#include "core/refine.hpp"
#include "core/rfn.hpp"
#include "designs/builtin.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"

namespace rfn {
namespace {

// Chain design: r0 <- driver, r_i <- r_{i-1}; watchdog = last register.
Netlist make_chain(size_t len, bool driver_is_input, GateId* bad_out) {
  NetBuilder b;
  std::vector<GateId> regs;
  for (size_t i = 0; i < len; ++i) regs.push_back(b.reg("r" + std::to_string(i)));
  const GateId driver = driver_is_input ? b.input("in") : b.constant(false);
  b.set_next(regs[0], driver);
  for (size_t i = 1; i < len; ++i) b.set_next(regs[i], regs[i - 1]);
  b.output("bad", regs.back());
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

std::vector<GateId> all_regs(const Netlist& m) {
  std::vector<GateId> regs(m.regs().begin(), m.regs().end());
  std::sort(regs.begin(), regs.end());
  return regs;
}

// Runs PDR with the full register set, expects Holds, and discharges the
// returned frame through the independent certificate checker.
void expect_pdr_proof_certifies(const Netlist& m, GateId bad,
                                const std::string& name) {
  Pdr engine(m, bad, all_regs(m));
  const PdrResult res = engine.run();
  ASSERT_EQ(res.status, PdrStatus::Holds) << name;
  ASSERT_FALSE(res.clauses.empty()) << name;

  PdrInvariantWitness inv;
  inv.present = true;
  inv.registers = res.scope;
  inv.clauses = res.clauses;
  const CertificateBuild build =
      build_holds_certificate_from_invariant(m, bad, name, inv);
  ASSERT_TRUE(build.ok) << build.detail;
  const cert::CheckResult check = cert::check_certificate(m, build.certificate);
  EXPECT_TRUE(check.ok) << check.obligation << ": " << check.detail;
}

TEST(Pdr, ProvesConstantChainAndFrameCertifies) {
  GateId bad;
  Netlist m = make_chain(4, false, &bad);
  expect_pdr_proof_certifies(m, bad, "chain4");
}

TEST(Pdr, ProvesBuiltinFifoAndFrameCertifies) {
  bool ok = false;
  Netlist m = designs::make_builtin("fifo", &ok);
  ASSERT_TRUE(ok);
  const GateId bad = m.find("bad_full_q");
  ASSERT_NE(bad, kNullGate);
  expect_pdr_proof_certifies(m, bad, "fifo.bad_full_q");
}

TEST(Pdr, ProvesBuiltinProcessorAndFrameCertifies) {
  bool ok = false;
  Netlist m = designs::make_builtin("processor", &ok);
  ASSERT_TRUE(ok);
  expect_pdr_proof_certifies(m, m.output("bad_mutex"), "processor.bad_mutex");
}

TEST(Pdr, CexTraceReplaysToBad) {
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  Pdr engine(m, bad, all_regs(m));
  const PdrResult res = engine.run();
  ASSERT_EQ(res.status, PdrStatus::Cex);
  ASSERT_FALSE(res.trace.steps.empty());
  // The trace is in original-design ids: plain 3-valued replay must raise
  // bad at the final cycle, and the independent trace certifier agrees.
  EXPECT_EQ(simulate_trace(m, res.trace, bad), Tri::T);
  const CertifyResult cert = certify_error_trace(m, res.trace, bad);
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(Pdr, PseudoInputAbstractionFindsSpuriousCex) {
  // Restricting the chain to its last register turns r2 into a free
  // pseudo-input, so the (spurious) abstract counterexample is one step.
  GateId bad;
  Netlist m = make_chain(4, false, &bad);
  const std::vector<GateId> regs = all_regs(m);
  Pdr engine(m, bad, {regs.back()});
  const PdrResult res = engine.run();
  EXPECT_EQ(res.status, PdrStatus::Cex);
}

TEST(Pdr, ClosedConeAbstractionProofCertifiesOnFullDesign) {
  // bad watches r0 whose cone is closed under {r0}: the one-register
  // abstraction proves it, and the invariant over that sub-scope must pass
  // the checker against the FULL design (pseudo-input obligations).
  NetBuilder b;
  const GateId r0 = b.reg("r0");
  const GateId r1 = b.reg("r1");
  b.set_next(r0, b.constant(false));
  b.set_next(r1, b.input("in"));
  b.output("bad", r0);
  Netlist m = b.take();
  const GateId bad = m.output("bad");

  Pdr engine(m, bad, {r0});
  const PdrResult res = engine.run();
  ASSERT_EQ(res.status, PdrStatus::Holds);
  EXPECT_EQ(res.scope, std::vector<GateId>{r0});

  PdrInvariantWitness inv;
  inv.present = true;
  inv.registers = res.scope;
  inv.clauses = res.clauses;
  const CertificateBuild build =
      build_holds_certificate_from_invariant(m, bad, "bad", inv);
  ASSERT_TRUE(build.ok) << build.detail;
  const cert::CheckResult check = cert::check_certificate(m, build.certificate);
  EXPECT_TRUE(check.ok) << check.obligation << ": " << check.detail;
}

TEST(Pdr, FrameLimitReportedWhenBoundTooTight) {
  bool ok = false;
  Netlist m = designs::make_builtin("fifo", &ok);
  ASSERT_TRUE(ok);
  const GateId bad = m.find("bad_full_q");
  Pdr engine(m, bad, all_regs(m));
  PdrOptions opt;
  opt.max_frames = 1;
  const PdrResult res = engine.run(opt);
  EXPECT_EQ(res.status, PdrStatus::FrameLimit);
}

TEST(Pdr, CancelledTokenStopsTheRun) {
  bool ok = false;
  Netlist m = designs::make_builtin("processor", &ok);
  ASSERT_TRUE(ok);
  CancelToken token;
  token.cancel();
  Pdr engine(m, m.output("bad_mutex"), all_regs(m));
  const PdrResult res = engine.run({}, &token);
  EXPECT_EQ(res.status, PdrStatus::Cancelled);
}

TEST(Pdr, SessionPdrOnlyProvesWithInvariantWitness) {
  GateId bad;
  Netlist m = make_chain(4, false, &bad);
  RfnOptions opt;
  opt.engines = {"pdr"};
  RfnVerifier rfn(m, bad, opt);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Holds);
  ASSERT_TRUE(res.pdr_invariant.present);
  const CertificateArtifact art = certify_with_witness(
      m, bad, "bad", res.verdict, res.error_trace, rfn.abstract_registers(), {},
      &res.pdr_invariant);
  EXPECT_TRUE(art.built) << art.detail;
  EXPECT_TRUE(art.checked) << art.obligation << ": " << art.detail;
}

TEST(Pdr, SessionPdrOnlyFindsConcreteCex) {
  GateId bad;
  Netlist m = make_chain(3, true, &bad);
  RfnOptions opt;
  opt.engines = {"pdr"};
  RfnVerifier rfn(m, bad, opt);
  const RfnResult res = rfn.run();
  ASSERT_EQ(res.verdict, Verdict::Fails);
  const CertifyResult cert = certify_error_trace(m, res.error_trace, bad);
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(Refine, ShrinkDropsNonCoreAndMarksSticky) {
  std::vector<GateId> included = {1, 3, 5, 7};
  std::vector<bool> sticky(10, false);
  sticky[1] = true;  // initial-abstraction register: never droppable
  const std::vector<GateId> core = {5};
  EXPECT_EQ(shrink_abstraction(&included, core, &sticky), 2u);
  EXPECT_EQ(included, (std::vector<GateId>{1, 5}));
  // Dropped registers became sticky so a later re-add can never re-drop.
  EXPECT_TRUE(sticky[3]);
  EXPECT_TRUE(sticky[7]);
  EXPECT_FALSE(sticky[5]);

  included = {1, 3, 5};  // refinement re-added 3
  EXPECT_EQ(shrink_abstraction(&included, {}, &sticky), 1u);
  EXPECT_EQ(included, (std::vector<GateId>{1, 3}));  // 3 survived via sticky
}

TEST(Refine, ProofShrinkDropsRegistersOnProcessor) {
  // The acceptance run: the processor mutex property refines through a
  // dozen-plus iterations, and with proof_shrink the bounded-UNSAT cores
  // demonstrably drop registers the proofs never touched — with the same
  // final verdict. workers = 0 keeps the race order (and so the exact
  // shrink count) deterministic.
  bool ok = false;
  Netlist m = designs::make_builtin("processor", &ok);
  ASSERT_TRUE(ok);
  const GateId bad = m.output("bad_mutex");
  RfnOptions opt;
  opt.engines = {"bdd", "sat"};
  opt.portfolio_workers = 0;
  opt.proof_shrink = true;
  RfnVerifier rfn(m, bad, opt);
  const RfnResult res = rfn.run();
  EXPECT_EQ(res.verdict, Verdict::Holds);
  size_t total_shrunk = 0;
  for (const RfnIteration& it : res.per_iteration)
    total_shrunk += it.shrunk_registers;
  EXPECT_GE(total_shrunk, 1u)
      << "proof shrink never dropped a register on the processor CEGAR run";
}

TEST(Refine, ProofShrinkNeverFlipsVerdicts) {
  // The property-tested invariant: grow/shrink and grow-only agree on every
  // verdict. Exercised on designs that refine (input-driven chains fail,
  // constant chains hold) plus a builtin with a non-trivial CEGAR loop.
  struct Case {
    Netlist m;
    GateId bad;
  };
  std::vector<Case> cases;
  {
    GateId bad;
    Netlist m = make_chain(5, false, &bad);
    cases.push_back({std::move(m), bad});
  }
  {
    GateId bad;
    Netlist m = make_chain(4, true, &bad);
    cases.push_back({std::move(m), bad});
  }
  {
    bool ok = false;
    Netlist m = designs::make_builtin("processor", &ok);
    ASSERT_TRUE(ok);
    const GateId bad = m.output("bad_mutex");
    cases.push_back({std::move(m), bad});
  }
  for (auto& c : cases) {
    RfnOptions grow_only;
    RfnOptions grow_shrink;
    grow_shrink.proof_shrink = true;
    RfnVerifier a(c.m, c.bad, grow_only);
    RfnVerifier b(c.m, c.bad, grow_shrink);
    const RfnResult ra = a.run();
    const RfnResult rb = b.run();
    EXPECT_EQ(ra.verdict, rb.verdict);
  }
}

}  // namespace
}  // namespace rfn
