// Tests for max-flow and min-cut design computation.

#include "mincut/mincut.hpp"

#include <gtest/gtest.h>

#include "mincut/maxflow.hpp"
#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

TEST(MaxFlow, TextbookNetwork) {
  // s -> a (3), s -> b (2), a -> b (1), a -> t (2), b -> t (3): max flow 5.
  MaxFlow f(4);
  f.add_edge(0, 1, 3);
  f.add_edge(0, 2, 2);
  f.add_edge(1, 2, 1);
  f.add_edge(1, 3, 2);
  f.add_edge(2, 3, 3);
  EXPECT_EQ(f.run(0, 3), 5);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 5);
  f.add_edge(2, 3, 5);
  EXPECT_EQ(f.run(0, 3), 0);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, MinCutMatchesFlowValue) {
  // Unit-capacity bipartite-ish graph.
  MaxFlow f(6);
  f.add_edge(0, 1, 1);
  f.add_edge(0, 2, 1);
  f.add_edge(1, 3, 1);
  f.add_edge(2, 3, 1);
  f.add_edge(1, 4, 1);
  f.add_edge(3, 5, 2);
  f.add_edge(4, 5, 1);
  const int64_t flow = f.run(0, 5);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[5]);
  (void)flow;
}

// A "wide-then-narrow" design: many inputs funnel through a narrow internal
// bus into the registers. The min cut must land on the narrow bus.
TEST(MinCut, FunnelDesignCutsAtNarrowWaist) {
  NetBuilder b;
  std::vector<GateId> ins;
  for (int i = 0; i < 16; ++i) ins.push_back(b.input("i" + std::to_string(i)));
  // Two waist signals, each a tree over 8 inputs.
  GateId w0 = ins[0];
  for (int i = 1; i < 8; ++i) w0 = b.xor_(w0, ins[i]);
  GateId w1 = ins[8];
  for (int i = 9; i < 16; ++i) w1 = b.and_(w1, ins[i]);
  // Registers read combinations of the two waists and each other.
  const GateId r0 = b.reg("r0");
  const GateId r1 = b.reg("r1");
  b.set_next(r0, b.and_(b.or_(w0, r1), b.not_(w1)));
  b.set_next(r1, b.xor_(b.xor_(w0, w1), r0));
  Netlist n = b.take();

  const MinCutResult mcr = compute_mincut_design(n);
  EXPECT_EQ(mcr.cone_inputs, 16u);
  EXPECT_EQ(mcr.cut_size, 2u);  // the two waist signals
  EXPECT_EQ(mcr.mc.net.num_inputs(), 2u);
  EXPECT_EQ(mcr.mc.net.num_regs(), 2u);

  // Functional check: MC with cut signals driven by N's internal values
  // computes the same next-state functions.
  Sim64 sim_n(n);
  Sim64 sim_mc(mcr.mc.net);
  Rng rng(5);
  Rng rng_init(9);
  sim_n.load_initial_state(rng_init);
  sim_mc.load_initial_state(rng_init);
  for (int round = 0; round < 10; ++round) {
    sim_n.randomize_inputs(rng);
    // Copy register values N -> MC (ids map through the subcircuit).
    for (GateId r : mcr.mc.net.regs()) sim_mc.set(r, sim_n.value(mcr.mc.to_old(r)));
    sim_n.eval();
    // Drive MC inputs with the values N computed for those signals.
    for (GateId i : mcr.mc.net.inputs()) sim_mc.set(i, sim_n.value(mcr.mc.to_old(i)));
    sim_mc.eval();
    for (GateId r : mcr.mc.net.regs()) {
      EXPECT_EQ(sim_mc.value(mcr.mc.net.reg_data(r)),
                sim_n.value(n.reg_data(mcr.mc.to_old(r))))
          << "round " << round;
    }
    sim_n.step();
  }
}

TEST(MinCut, FreeCutContainsRegisterToRegisterLogic) {
  // r0 -> g -> r1: g lies in both the fanout of r0 and the fanin of r1.
  NetBuilder b;
  const GateId in = b.input("in");
  const GateId r0 = b.reg("r0");
  const GateId r1 = b.reg("r1");
  b.set_next(r0, in);
  const GateId g = b.not_(r0);
  b.set_next(r1, g);
  Netlist n = b.take();
  const auto fc = free_cut_design(n);
  EXPECT_TRUE(fc[g]);
  EXPECT_TRUE(fc[r0]);
  EXPECT_TRUE(fc[r1]);
  EXPECT_FALSE(fc[in]);
}

TEST(MinCut, CutNeverExceedsNaiveInputCount) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    NetBuilder b;
    std::vector<GateId> pool;
    const size_t ni = 4 + rng.below(8);
    for (size_t i = 0; i < ni; ++i) pool.push_back(b.input("i" + std::to_string(i)));
    std::vector<GateId> regs;
    for (int i = 0; i < 4; ++i) regs.push_back(b.reg("r" + std::to_string(i)));
    for (GateId r : regs) pool.push_back(r);
    for (int i = 0; i < 30; ++i) {
      const GateId x = pool[rng.below(pool.size())];
      const GateId y = pool[rng.below(pool.size())];
      switch (rng.below(4)) {
        case 0: pool.push_back(b.and_(x, y)); break;
        case 1: pool.push_back(b.or_(x, y)); break;
        case 2: pool.push_back(b.xor_(x, y)); break;
        case 3: pool.push_back(b.not_(x)); break;
      }
    }
    for (GateId r : regs) b.set_next(r, pool[pool.size() - 1 - rng.below(8)]);
    Netlist n = b.take();

    const MinCutResult mcr = compute_mincut_design(n);
    EXPECT_LE(mcr.cut_size, mcr.cone_inputs);
    EXPECT_EQ(mcr.cut_signals.size(), mcr.cut_size);
    EXPECT_EQ(mcr.mc.net.num_regs(), n.num_regs());
    mcr.mc.net.check();
  }
}

}  // namespace
}  // namespace rfn
