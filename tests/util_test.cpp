// Tests for the utility layer: options parsing, tables, RNG, deadlines,
// logging plumbing, and the netlist writers.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/writer.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace rfn {
namespace {

TEST(Options, ParsesAllForms) {
  // Note the greedy "--key value" form: a bare --flag followed by a
  // non-dashed token consumes it as the flag's value, so positionals should
  // come first (as the examples' usage strings show) or flags use --k=v.
  const char* argv[] = {"prog", "pos1",       "--alpha=3", "--beta", "7",
                        "pos2", "--gamma=hi", "--flag",    "--ratio=2.5"};
  Options opts(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("alpha", 0), 3);
  EXPECT_EQ(opts.get_int("beta", 0), 7);
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_EQ(opts.get("gamma", ""), "hi");
  EXPECT_DOUBLE_EQ(opts.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(opts.get_int("missing", 42), 42);
  ASSERT_EQ(opts.positionals().size(), 2u);
  EXPECT_EQ(opts.positionals()[0], "pos1");
  EXPECT_FALSE(opts.has("absent"));
}

TEST(Options, BoolForms) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=no", "--d=1"};
  Options opts(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  EXPECT_FALSE(opts.get_bool("a", true));
  EXPECT_FALSE(opts.get_bool("b", true));
  EXPECT_FALSE(opts.get_bool("c", true));
  EXPECT_TRUE(opts.get_bool("d", false));
}

TEST(TableFormat, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name   | value"), std::string::npos);
  EXPECT_NE(s.find("-------+------"), std::string::npos);
  EXPECT_NE(s.find("longer | 22"), std::string::npos);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Rng, DeterministicAndWellDistributed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  // Different seeds diverge.
  Rng a2(123);
  bool diverged = false;
  for (int i = 0; i < 10; ++i) diverged |= a2.next() != c.next();
  EXPECT_TRUE(diverged);
  // below() respects the bound; uniform() in [0,1).
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e20);
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d(0.0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

TEST(LogLevelTest, SetAndGet) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(old);
}

TEST(Writer, DotContainsAllCells) {
  NetBuilder b;
  const GateId in = b.input("clk_in");
  const GateId r = b.reg("state");
  b.set_next(r, b.not_(in));
  Netlist n = b.take();
  const std::string dot = to_dot(n);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("clk_in"), std::string::npos);
  EXPECT_NE(dot.find("state"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Writer, StatsLine) {
  NetBuilder b;
  b.input("a");
  const GateId r = b.reg("r");
  b.set_next(r, r);
  Netlist n = b.take();
  EXPECT_EQ(stats_line(n), "inputs=1 regs=1 gates=0 outputs=0");
}

TEST(Writer, TraceToString) {
  NetBuilder b;
  const GateId in = b.input("go");
  const GateId r = b.reg("st");
  b.set_next(r, in);
  Netlist n = b.take();
  Trace t;
  t.steps.push_back({{{r, false}}, {{in, true}}});
  t.steps.push_back({{{r, true}}, {}});
  const std::string s = trace_to_string(n, t);
  EXPECT_NE(s.find("cycle 1"), std::string::npos);
  EXPECT_NE(s.find("go=1"), std::string::npos);
  EXPECT_NE(s.find("st=1"), std::string::npos);
}

}  // namespace
}  // namespace rfn
