// Tests for the Verilog-subset RTL frontend: lexer, parser, elaborator, and
// functional equivalence of elaborated designs against hand-built netlists.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "rtlv/elaborate.hpp"
#include "rtlv/lexer.hpp"
#include "rtlv/parser.hpp"
#include "sim/sim3.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace rfn {
namespace {

using rtlv::elaborate_verilog;

TEST(RtlvLexer, TokensAndLiterals) {
  const auto toks = rtlv::lex("module m; wire [3:0] w; assign w = 4'b1010 + 8'hff; // c\n");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, rtlv::Tok::KwModule);
  EXPECT_EQ(toks[1].text, "m");
  bool found_bin = false, found_hex = false;
  for (const auto& t : toks) {
    if (t.kind == rtlv::Tok::Number && t.width == 4) {
      EXPECT_EQ(t.value, 10u);
      found_bin = true;
    }
    if (t.kind == rtlv::Tok::Number && t.width == 8) {
      EXPECT_EQ(t.value, 255u);
      found_hex = true;
    }
  }
  EXPECT_TRUE(found_bin);
  EXPECT_TRUE(found_hex);
}

TEST(RtlvLexer, CommentsAndOperators) {
  const auto toks = rtlv::lex("a <= b /* x\ny */ == c != d && e || f");
  std::vector<rtlv::Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), rtlv::Tok::NonBlocking), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), rtlv::Tok::EqEq), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), rtlv::Tok::AmpAmp), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), rtlv::Tok::PipePipe), kinds.end());
}

TEST(RtlvParser, ModuleStructure) {
  const auto m = rtlv::parse_module(R"(
    module counter(clk, en, value);
      input clk;
      input en;
      output [3:0] value;
      reg [3:0] cnt = 0;
      assign value = cnt;
      always @(posedge clk) begin
        if (en) cnt <= cnt + 1;
      end
    endmodule
  )");
  EXPECT_EQ(m.name, "counter");
  EXPECT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.decls.size(), 4u);
  EXPECT_EQ(m.assigns.size(), 1u);
  ASSERT_EQ(m.always.size(), 1u);
  EXPECT_EQ(m.always[0].clock, "clk");
}

TEST(RtlvElaborate, CounterBehaviour) {
  const auto design = elaborate_verilog(R"(
    module counter(clk, en, value);
      input clk; input en;
      output [3:0] value;
      reg [3:0] cnt = 0;
      assign value = cnt;
      always @(posedge clk) if (en) cnt <= cnt + 1;
    endmodule
  )");
  const Netlist& n = design.netlist;
  EXPECT_EQ(design.module_name, "counter");
  EXPECT_EQ(n.num_regs(), 4u);
  EXPECT_EQ(n.num_inputs(), 1u);  // clk is implicit

  Sim3 sim(n);
  sim.load_initial_state();
  const GateId en = n.find("en");
  auto value = [&]() {
    uint64_t v = 0;
    for (int i = 0; i < 4; ++i)
      if (sim.value(n.output("value[" + std::to_string(i) + "]")) == Tri::T)
        v |= 1u << i;
    return v;
  };
  for (int c = 0; c < 5; ++c) {
    sim.set(en, tri_of(c % 2 == 0));  // count on even cycles
    sim.eval();
    sim.step();
  }
  EXPECT_EQ(value(), 3u);  // 3 enabled cycles (0,2,4)
}

TEST(RtlvElaborate, InitializersAndHold) {
  const auto design = elaborate_verilog(R"(
    module m(clk, o);
      input clk; output o;
      reg r = 1;
      reg held = 1;
      always @(posedge clk) r <= ~r;
      assign o = r & held;
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  sim.eval();
  EXPECT_EQ(sim.value(n.output("o")), Tri::T);
  sim.step();
  sim.eval();
  EXPECT_EQ(sim.value(n.output("o")), Tri::F);  // r toggled, held held
  sim.step();
  sim.eval();
  EXPECT_EQ(sim.value(n.output("o")), Tri::T);
}

TEST(RtlvElaborate, NestedIfElsePriority) {
  const auto design = elaborate_verilog(R"(
    module m(clk, a, b, o);
      input clk; input a; input b; output o;
      reg r = 0;
      always @(posedge clk) begin
        if (a) r <= 1;
        else if (b) r <= 0;
        else r <= r;
      end
      assign o = r;
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  sim.load_initial_state();
  const GateId a = n.find("a"), b = n.find("b");
  sim.set(a, Tri::T);
  sim.set(b, Tri::T);  // a wins
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.value(n.output("o")), Tri::T);
  sim.set(a, Tri::F);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.value(n.output("o")), Tri::F);  // b branch clears
}

TEST(RtlvElaborate, OperatorsMatchSemantics) {
  const auto design = elaborate_verilog(R"(
    module ops(clk, x, y, eq, lt, sum, red, mux);
      input clk;
      input [3:0] x;
      input [3:0] y;
      output eq; output lt; output [3:0] sum; output red; output mux;
      assign eq = x == y;
      assign lt = x < y;
      assign sum = x + y;
      assign red = ^x;
      assign mux = (x >= y) ? x[0] : y[3];
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim64 sim(n);
  Rng rng(3);
  Word xw, yw;
  for (int i = 0; i < 4; ++i) {
    xw.push_back(n.find("x[" + std::to_string(i) + "]"));
    yw.push_back(n.find("y[" + std::to_string(i) + "]"));
  }
  for (int round = 0; round < 4; ++round) {
    std::vector<uint64_t> xs(4), ys(4);
    for (int i = 0; i < 4; ++i) {
      xs[static_cast<size_t>(i)] = rng.next();
      ys[static_cast<size_t>(i)] = rng.next();
      sim.set(xw[static_cast<size_t>(i)], xs[static_cast<size_t>(i)]);
      sim.set(yw[static_cast<size_t>(i)], ys[static_cast<size_t>(i)]);
    }
    sim.eval();
    for (int k = 0; k < 64; ++k) {
      uint64_t xv = 0, yv = 0;
      for (int i = 0; i < 4; ++i) {
        xv |= static_cast<uint64_t>((xs[static_cast<size_t>(i)] >> k) & 1) << i;
        yv |= static_cast<uint64_t>((ys[static_cast<size_t>(i)] >> k) & 1) << i;
      }
      EXPECT_EQ(sim.value_bit(n.output("eq"), k), xv == yv);
      EXPECT_EQ(sim.value_bit(n.output("lt"), k), xv < yv);
      uint64_t sumv = 0;
      for (int i = 0; i < 4; ++i)
        sumv |= static_cast<uint64_t>(sim.value_bit(n.output("sum[" + std::to_string(i) + "]"), k)) << i;
      EXPECT_EQ(sumv, (xv + yv) & 0xF);
      EXPECT_EQ(sim.value_bit(n.output("red"), k), (__builtin_popcountll(xv) & 1) != 0);
      const bool expect_mux = xv >= yv ? ((xv >> 0) & 1) : ((yv >> 3) & 1);
      EXPECT_EQ(sim.value_bit(n.output("mux"), k), expect_mux);
    }
  }
}

TEST(RtlvElaborate, ConcatAndRanges) {
  const auto design = elaborate_verilog(R"(
    module m(clk, a, o);
      input clk;
      input [3:0] a;
      output [3:0] o;
      wire [3:0] swapped;
      assign swapped = {a[1:0], a[3:2]};
      assign o = swapped;
    endmodule
  )");
  const Netlist& n = design.netlist;
  Sim3 sim(n);
  // a = 0b0111 -> swapped = {2'b11, 2'b01} = 0b1101.
  for (int i = 0; i < 4; ++i)
    sim.set(n.find("a[" + std::to_string(i) + "]"), tri_of(i < 3));
  sim.eval();
  const bool expect[4] = {true, false, true, true};
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(sim.value(n.output("o[" + std::to_string(i) + "]")), tri_of(expect[i]))
        << "bit " << i;
}

TEST(RtlvElaborate, EquivalentToHandBuiltNetlist) {
  // The same design written in Verilog and via NetBuilder must agree on
  // random stimulus.
  const auto design = elaborate_verilog(R"(
    module gray(clk, en, q);
      input clk; input en;
      output [2:0] q;
      reg [2:0] cnt = 0;
      assign q = {cnt[2], cnt[2] ^ cnt[1], cnt[1] ^ cnt[0]};
      always @(posedge clk) if (en) cnt <= cnt + 1;
    endmodule
  )");

  NetBuilder b;
  const GateId en = b.input("en");
  const Word cnt = b.reg_word("cnt", 3, 0);
  b.set_next_word(cnt, b.mux_word(en, cnt, b.inc_word(cnt)));
  // q LSB-first: q[0] = cnt1^cnt0, q[1] = cnt2^cnt1, q[2] = cnt2.
  const Word q{b.xor_(cnt[1], cnt[0]), b.xor_(cnt[2], cnt[1]), b.buf(cnt[2])};
  Netlist hand = b.take();

  const Netlist& rtl = design.netlist;
  Sim64 s1(rtl), s2(hand);
  Rng rng(11), rinit(1);
  s1.load_initial_state(rinit);
  s2.load_initial_state(rinit);
  for (int c = 0; c < 12; ++c) {
    const uint64_t e = rng.next();
    s1.set(rtl.find("en"), e);
    s2.set(en, e);
    s1.eval();
    s2.eval();
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(s1.value(rtl.output("q[" + std::to_string(i) + "]")), s2.value(q[static_cast<size_t>(i)]))
          << "cycle " << c << " bit " << i;
    s1.step();
    s2.step();
  }
}

}  // namespace
}  // namespace rfn
