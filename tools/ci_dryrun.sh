#!/usr/bin/env bash
# Local dry-run of .github/workflows/ci.yml — same jobs, same commands —
# for machines without act or network access.
#
#   tools/ci_dryrun.sh            one matrix cell (gcc Release) + TSan +
#                                 bench gate + corpus gate + gate self-checks
#   tools/ci_dryrun.sh --full     the whole matrix and both sanitizers
#
# Cells whose toolchain is absent locally (clang, ccache) are skipped with a
# notice instead of failing: the hosted workflow installs them itself.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

note() { printf '\n=== %s ===\n' "$*"; }

build_and_test() { # <dir> <extra cmake args...>
  local dir=$1; shift
  cmake -B "$dir" -S . "$@" "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

# --- job: build-test matrix -------------------------------------------------
matrix_cells=("gcc Release")
if [[ $FULL == 1 ]]; then
  matrix_cells=("gcc Debug" "gcc Release" "clang Debug" "clang Release")
fi
for cell in "${matrix_cells[@]}"; do
  read -r compiler build_type <<<"$cell"
  cxx=$([[ $compiler == gcc ]] && echo g++ || echo clang++)
  if ! command -v "$cxx" >/dev/null 2>&1; then
    note "build-test ($cell): SKIPPED ($cxx not installed locally)"
    continue
  fi
  note "build-test ($cell)"
  build_and_test "build-ci-$compiler-$build_type" \
    -DCMAKE_BUILD_TYPE="$build_type" \
    -DCMAKE_C_COMPILER="$compiler" -DCMAKE_CXX_COMPILER="$cxx"
done

# --- job: sanitize ----------------------------------------------------------
sanitizers=(thread)
[[ $FULL == 1 ]] && sanitizers=(thread "address,undefined")
for san in "${sanitizers[@]}"; do
  note "sanitize ($san)"
  dir="build-ci-sanitize-${san//,/-}"
  build_and_test "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRFN_SANITIZE="$san"
  note "sanitize ($san): SAT engine suite + budgeted bdd+sat run"
  "./$dir/tests/sat_test"
  "./$dir/tools/rfn" verify builtin:processor --bad error_flag \
    --engine bdd,sat --workers 3 --budget-ms 5000 --certify
  note "sanitize ($san): PDR suite + budgeted bdd+sat+pdr certify runs"
  "./$dir/tests/pdr_test"
  for spec in "fifo bad_full_q" "processor bad_mutex" \
              "iu iu0" "usb bad_se1"; do
    read -r design prop <<<"$spec"
    "./$dir/tools/rfn" verify "builtin:$design" --bad "$prop" \
      --engine bdd,sat,pdr --workers 3 --budget-ms 10000 --certify
  done
  note "sanitize ($san): certificates checked by rfn_check"
  check_certs() { # <builddir> <design> <property args...>
    local bdir=$1 design=$2; shift 2
    "./$bdir/tools/rfn" verify "builtin:$design" "$@" \
      --cert-dir "$bdir/certs-$design"
    local cert
    for cert in "$bdir/certs-$design"/*.cert.json; do
      "./$bdir/tools/rfn_check" "$cert" "builtin:$design"
    done
  }
  check_certs "$dir" fifo --bad bad_full_q --bad bad_af_q --bad bad_hf_q
  check_certs "$dir" processor --bad bad_mutex --bad error_flag
  check_certs "$dir" iu --bad bad_dec --bad iu0
  check_certs "$dir" usb --bad bad_se1 --bad usb1_0
  if [[ $san == thread ]]; then
    note "sanitize (thread): concurrency suites"
    "./$dir/tests/portfolio_test"
    "./$dir/tests/netlist_fuzz_test"
    "./$dir/tests/trace_span_test"
    "./$dir/tests/prof_test"
    "./$dir/tests/sat_test"
    "./$dir/tests/serve_test"
    "./$dir/tests/pdr_test"
    note "sanitize (thread): serve daemon boot + replay"
    # Accept loop, connection threads, fair-share queue, executor workers
    # and the warm-cache lease hand-off all race by design — one
    # instrumented boot + replay watches the lot end to end.
    "./$dir/tools/rfn_serve" --socket "/tmp/rfn-tsan-$$.sock" \
      --workers 2 --admit-mem-mb 512 &
    serve_pid=$!
    for _ in $(seq 100); do [[ -S "/tmp/rfn-tsan-$$.sock" ]] && break; sleep 0.1; done
    python3 tools/serve_replay.py --socket "/tmp/rfn-tsan-$$.sock" \
      --log "$dir/tsan-serve-session.jsonl" --shutdown
    wait "$serve_pid"
    python3 tools/trace_report.py --serve "$dir/tsan-serve-session.jsonl"
    note "sanitize (thread): budgeted resource-out run"
    # Must degrade cleanly (exit exactly 1: inconclusive verdict, not a
    # TSan abort) with a budget-trip span.
    rc=0
    "./$dir/tools/rfn" verify tests/data/slow24.v --bad bad --workers 3 \
      --budget-ms 300 --trace-spans "$dir/tsan-spans.json" || rc=$?
    if [[ $rc != 1 ]]; then
      echo "ci_dryrun: budgeted run exited $rc (expected 1: resource-out)" >&2
      exit 1
    fi
    python3 tools/trace_report.py "$dir/tsan-spans.json" | grep budget_trip
    note "sanitize (thread): memory-budget resource-out run"
    # A 1 MiB RSS budget is below any live process's footprint: the run
    # must degrade to resource-out (exit 1, never an OOM kill or a hang)
    # with the tripped budget named in the trace. The watchdog's RSS poll
    # races the engines by design — TSan watches the trip hand-off.
    rc=0
    "./$dir/tools/rfn" verify tests/data/slow24.v --bad bad --workers 3 \
      --budget-mem-mb 1 --trace-json "$dir/tsan-mem-trace.jsonl" || rc=$?
    if [[ $rc != 1 ]]; then
      echo "ci_dryrun: memory-budgeted run exited $rc (expected 1)" >&2
      exit 1
    fi
    grep -q '"reason":"mem-budget"' "$dir/tsan-mem-trace.jsonl"
    "./$dir/tools/rfn" verify tests/data/demo.v --bad bad_q --workers 3 \
      --prof-json "$dir/tsan-prof.json" --prof-folded "$dir/tsan-prof.folded"
    python3 tools/trace_report.py --prof "$dir/tsan-prof.json"
  fi
done

# --- job: bench-gate --------------------------------------------------------
note "bench-gate"
cmake -B build-ci-bench -S . -DCMAKE_BUILD_TYPE=Release "${LAUNCHER_ARGS[@]}" >/dev/null
cmake --build build-ci-bench -j "$(nproc)" --target micro_engines rfn_cli rfn_check

note "bench-gate: trace tooling self-check"
python3 tools/trace_report.py --self-check

# Traces are recorded before the gate, like the hosted job, so a failing
# gate still leaves a profile behind (CI uploads it as an artifact).
note "bench-gate: record run traces"
./build-ci-bench/tools/rfn verify tests/data/demo.v --bad bad_q --workers 3 \
  --trace-spans build-ci-bench/run-spans.json \
  --trace-json build-ci-bench/run-trace.jsonl
python3 tools/trace_report.py build-ci-bench/run-spans.json
python3 tools/trace_report.py --run build-ci-bench/run-trace.jsonl

# Batch verification of every shipped design's property suite through a
# VerifySession, each rfn-trace-v2 artifact re-validated by trace_report.py.
# Exit 0 requires every verdict conclusive (the processor suite contains
# intentionally VIOLATED properties) and every conclusive verdict turned
# into an rfn-cert-v1 witness via --cert-dir (trace for Fails, inductive
# invariant for Holds); every witness is then re-validated by the
# independent rfn_check binary against a fresh design elaboration.
note "bench-gate: batch verification of the shipped designs"
# Each design also emits an rfn-prof-v1 artifact; trace_report.py --prof
# re-validates it, including the CPU-consistency bound (no engine set can
# burn more CPU than race-wall x workers allows).
run_batch() { # <out> <design> <property args...>
  local out=$1 design=$2; shift 2
  ./build-ci-bench/tools/rfn verify "builtin:$design" "$@" \
    --trace-json "$out" --cert-dir "build-ci-bench/certs-$design" \
    --prof-json "build-ci-bench/prof-$design.json"
  python3 tools/trace_report.py --batch "$out"
  python3 tools/trace_report.py --prof "build-ci-bench/prof-$design.json"
  local cert
  for cert in "build-ci-bench/certs-$design"/*.cert.json; do
    ./build-ci-bench/tools/rfn_check "$cert" "builtin:$design"
  done
}
run_batch build-ci-bench/batch-fifo.jsonl fifo \
  --bad bad_full_q --bad bad_af_q --bad bad_hf_q
run_batch build-ci-bench/batch-processor.jsonl processor \
  --bad bad_mutex --bad error_flag
run_batch build-ci-bench/batch-iu.jsonl iu \
  --bad bad_dec --bad iu0 --bad iu1 --bad iu2 --bad iu3 --bad iu4
run_batch build-ci-bench/batch-usb.jsonl usb \
  --bad bad_se1 --bad usb1_0 --bad usb1_1 --bad usb2_0 --bad usb2_1

./build-ci-bench/bench/micro_engines --benchmark_filter='Portfolio|Session|SatBmc' \
  --json build-ci-bench/bench-current.json
python3 tools/bench_gate.py --baseline BENCH_portfolio.json \
  --current build-ci-bench/bench-current.json

# --- bench_gate self-check: a synthetic 25% regression must fail the gate ---
note "bench-gate self-check (synthetic +25% regression must exit nonzero)"
python3 - <<'EOF'
import json
doc = json.load(open("build-ci-bench/bench-current.json"))
for b in doc["benchmarks"]:
    b["real_seconds_per_iter"] *= 1.25
json.dump(doc, open("build-ci-bench/bench-regressed.json", "w"))
EOF
if python3 tools/bench_gate.py --baseline build-ci-bench/bench-current.json \
    --current build-ci-bench/bench-regressed.json; then
  echo "ci_dryrun: bench_gate accepted a 25% regression" >&2
  exit 1
fi

# --- prof gate: subsystem peak bytes vs BENCH_prof.json ---------------------
# The profile is recorded sequentially (--workers 0): the arena capacities
# are then run-to-run identical, so the gate's 25% tolerance only absorbs
# allocator doubling granularity, not noise.
note "bench-gate: prof gate against BENCH_prof.json"
./build-ci-bench/tools/rfn verify builtin:processor --bad bad_mutex \
  --bad error_flag --workers 0 --engine bdd,sat \
  --prof-json build-ci-bench/prof-current.json
python3 tools/trace_report.py --prof build-ci-bench/prof-current.json
python3 tools/bench_gate.py --prof-baseline BENCH_prof.json \
  --prof-current build-ci-bench/prof-current.json

note "prof gate self-check (injected byte regression must exit nonzero)"
python3 - <<'EOF'
import json
doc = json.load(open("build-ci-bench/prof-current.json"))
bdd = doc["subsystems"]["bdd"]
bdd["peak_bytes"] = int(bdd["peak_bytes"] * 1.5)
json.dump(doc, open("build-ci-bench/prof-regressed.json", "w"))
EOF
if python3 tools/bench_gate.py --prof-baseline BENCH_prof.json \
    --prof-current build-ci-bench/prof-regressed.json; then
  echo "ci_dryrun: prof gate accepted an injected byte regression" >&2
  exit 1
fi
# --- job: serve smoke -------------------------------------------------------
# rfn_serve booted for real: three tenants replayed through one connection,
# repeats proving warm_cache.hits > 0 (a resident server that reloads cold
# every time is just a slow CLI), an oversubscribed request rejected by
# name, and the captured session log re-validated by trace_report --serve.
note "serve smoke"
cmake --build build-ci-bench -j "$(nproc)" --target rfn_serve serve_test
./build-ci-bench/tests/serve_test
./build-ci-bench/tools/rfn_serve --socket "/tmp/rfn-ci-$$.sock" \
  --workers 2 --admit-mem-mb 512 &
serve_pid=$!
for _ in $(seq 100); do [[ -S "/tmp/rfn-ci-$$.sock" ]] && break; sleep 0.1; done
python3 tools/serve_replay.py --socket "/tmp/rfn-ci-$$.sock" \
  --log build-ci-bench/serve-session.jsonl --shutdown
wait "$serve_pid"
python3 tools/trace_report.py --serve build-ci-bench/serve-session.jsonl \
  | tee build-ci-bench/serve-report.txt
grep -Eq 'warm_hits=[1-9]' build-ci-bench/serve-report.txt

# --- job: corpus ------------------------------------------------------------
# The committed AIGER corpus through batch sessions, every certificate
# re-checked by rfn_check, the summary gated against the checked-in
# baseline, then an injected verdict flip must fail the gate.
note "corpus gate"
python3 tools/corpus_run.py \
  --cli build-ci-bench/tools/rfn --check build-ci-bench/tools/rfn_check \
  --corpus tests/corpus --out build-ci-bench/corpus-current.json
python3 tools/trace_report.py --corpus build-ci-bench/corpus-current.json
python3 tools/bench_gate.py \
  --corpus-baseline tests/corpus/baseline.json \
  --corpus-current build-ci-bench/corpus-current.json

note "corpus gate self-check (injected verdict flip must exit nonzero)"
python3 - <<'EOF'
import json
doc = json.load(open("build-ci-bench/corpus-current.json"))
prop = doc["files"][0]["properties"][0]
prop["verdict"] = "F" if prop["verdict"] == "T" else "T"
json.dump(doc, open("build-ci-bench/corpus-flipped.json", "w"))
EOF
if python3 tools/bench_gate.py \
    --corpus-baseline tests/corpus/baseline.json \
    --corpus-current build-ci-bench/corpus-flipped.json; then
  echo "ci_dryrun: corpus gate accepted an injected verdict flip" >&2
  exit 1
fi

echo
echo "ci_dryrun: all jobs green"
