// rfn_serve — verification as a service.
//
//   rfn_serve --socket PATH | --port N [options]
//
// A long-lived daemon on the rfn::api surface: newline-delimited rfn-req-v1
// verify requests in, streamed rfn-trace-v2 records plus one final
// rfn-resp-v1 verdict line out per request (see serve/server.hpp for the
// protocol, including the "ping" and "shutdown" control types).
//
// What staying resident buys: a WarmStateCache keyed by design hash keeps
// each design's netlist instance and its ReuseCache — pooled incremental
// SAT solvers, the final BDD variable order, the subcircuit memo — alive
// across requests, so a repeat request on the same design starts warm. The
// cache is bounded by --warm-mb and evicts LRU. A bounded FairQueue
// schedules admitted jobs fair-share by tenant and rejects fast, with a
// named reason, when the declared watchdog budgets would oversubscribe the
// configured windows.
//
// Quickstart:
//
//   rfn_serve --socket /tmp/rfn.sock &
//   printf '%s\n' '{"type":"verify","version":"rfn-req-v1","id":"r1",
//     "design":{"path":"builtin:fifo"}}' | nc -U /tmp/rfn.sock
//
// Exit status: 0 clean shutdown, 2 usage or bind errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

using namespace rfn;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: rfn_serve (--socket PATH | --port N) [options]\n"
      "  --socket PATH        listen on a Unix-domain socket\n"
      "  --port N             listen on loopback TCP port N (0 = ephemeral)\n"
      "  --workers N          queue-draining worker threads (default 1)\n"
      "  --queue-cap N        admitted-but-unfinished job bound (default 64)\n"
      "  --admit-ms X         wall-time admission window over outstanding\n"
      "                       budget-ms/time-limit demands (default off)\n"
      "  --admit-mem-mb N     admission window over outstanding\n"
      "                       budget-mem-mb demands (default off)\n"
      "  --admit-bdd-nodes N  admission window over outstanding\n"
      "                       budget-bdd-nodes demands (default off)\n"
      "  --default-demand-ms X  time demand assumed for requests that\n"
      "                       declare no budget (default 300000)\n"
      "  --warm-mb N          warm-state cache byte budget in MB\n"
      "                       (default 256; 0 = unbounded)\n"
      "  --no-warm            serve every request cold\n");
  return 2;
}

bool parse_num(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](double* out) {
      if (i + 1 >= argc || !parse_num(argv[++i], out)) {
        std::fprintf(stderr, "rfn_serve: %s needs a numeric value\n",
                     arg.c_str());
        return false;
      }
      return true;
    };
    double num = 0;
    if (arg == "--socket" && i + 1 < argc) {
      opt.unix_socket = argv[++i];
    } else if (arg == "--port") {
      if (!value(&num)) return 2;
      opt.tcp_port = static_cast<int>(num);
    } else if (arg == "--workers") {
      if (!value(&num)) return 2;
      opt.workers = static_cast<size_t>(num);
    } else if (arg == "--queue-cap") {
      if (!value(&num)) return 2;
      opt.admission.queue_capacity = static_cast<size_t>(num);
    } else if (arg == "--admit-ms") {
      if (!value(&num)) return 2;
      opt.admission.time_window_ms = num;
    } else if (arg == "--admit-mem-mb") {
      if (!value(&num)) return 2;
      opt.admission.mem_window_mb = static_cast<int64_t>(num);
    } else if (arg == "--admit-bdd-nodes") {
      if (!value(&num)) return 2;
      opt.admission.bdd_node_window = static_cast<int64_t>(num);
    } else if (arg == "--default-demand-ms") {
      if (!value(&num)) return 2;
      opt.admission.default_demand_ms = num;
    } else if (arg == "--warm-mb") {
      if (!value(&num)) return 2;
      opt.warm_budget_bytes = static_cast<int64_t>(num) << 20;
    } else if (arg == "--no-warm") {
      opt.warm_enabled = false;
    } else {
      std::fprintf(stderr, "rfn_serve: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (opt.unix_socket.empty() && opt.tcp_port < 0) return usage();

  serve::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "rfn_serve: %s\n", error.c_str());
    return 2;
  }
  if (!opt.unix_socket.empty()) {
    std::fprintf(stderr, "rfn_serve: listening on %s\n",
                 opt.unix_socket.c_str());
  }
  if (opt.tcp_port >= 0) {
    std::fprintf(stderr, "rfn_serve: listening on 127.0.0.1:%d\n",
                 server.tcp_port());
  }
  std::fflush(stderr);
  server.wait();
  server.stop();
  serve::WarmStats ws = server.warm_stats();
  std::fprintf(stderr,
               "rfn_serve: served %zu requests (warm hits %zu, misses %zu, "
               "evictions %zu)\n",
               server.served(), ws.hits, ws.misses, ws.evictions);
  return 0;
}
