#!/usr/bin/env python3
"""Replay a multi-tenant request mix against a running rfn_serve.

The CI serve job's client: connects to an rfn_serve instance (Unix socket
or loopback TCP), replays a three-tenant request mix over the builtin
designs — with repeats, so the warm-state cache must show hits — and
captures every received line (streamed rfn-trace-v2 records and the
rfn-resp-v1 responses) into a session log that trace_report.py --serve
validates afterwards:

    build/tools/rfn_serve --socket /tmp/rfn.sock --admit-mem-mb 512 &
    tools/serve_replay.py --socket /tmp/rfn.sock --log serve.jsonl
    tools/trace_report.py --serve serve.jsonl

Exits nonzero when any request that must succeed fails, when the expected
admission rejection does not happen, or when the repeat requests finish
with zero warm-cache hits (the whole point of a resident server).

The mix (one connection; requests are served in order):
  * ping — readiness;
  * tenant alpha: builtin:fifo x3 properties, twice (cold miss, warm hit);
  * tenant beta: builtin:processor bad_mutex, twice;
  * tenant gamma: builtin:iu anchor, then builtin:usb crc_err;
  * tenant alpha: a request whose declared budget-mem-mb oversubscribes
    any admission window below 100000 MB — expected reject when the server
    runs with --admit-mem-mb (skipped check otherwise, since an unlimited
    server admits it);
  * optional --shutdown: asks the server to exit when the replay is done.
"""

import argparse
import json
import socket
import sys

TIME_LIMIT_S = 30.0


def request(rid, tenant, path, signals, mem_mb=None):
    req = {
        "type": "verify",
        "version": "rfn-req-v1",
        "id": rid,
        "tenant": tenant,
        "design": {"path": path},
        "props": [{"signal": s} for s in signals],
        "options": {"time-limit": TIME_LIMIT_S},
        "session": {"batch": True},
    }
    if mem_mb is not None:
        req["options"]["budget-mem-mb"] = mem_mb
    return req


MIX = [
    ("a1", "alpha", "builtin:fifo", ["bad_full_q", "bad_af_q", "bad_hf_q"]),
    ("b1", "beta", "builtin:processor", ["bad_mutex"]),
    ("a2", "alpha", "builtin:fifo", ["bad_full_q", "bad_af_q", "bad_hf_q"]),
    ("g1", "gamma", "builtin:iu", ["anchor"]),
    ("b2", "beta", "builtin:processor", ["bad_mutex"]),
    ("g2", "gamma", "builtin:usb", ["crc_err"]),
]


class Connection:
    def __init__(self, sock, log):
        self.file = sock.makefile("rw")
        self.log = log

    def transact(self, req):
        """Sends one request line; returns the response, logging every
        received line on the way."""
        self.file.write(json.dumps(req) + "\n")
        self.file.flush()
        while True:
            line = self.file.readline()
            if not line:
                print("serve_replay: connection closed before a response",
                      file=sys.stderr)
                sys.exit(1)
            if self.log:
                self.log.write(line)
            doc = json.loads(line)
            if doc.get("type") == "response":
                return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", help="Unix socket path of rfn_serve")
    group.add_argument("--port", type=int, help="loopback TCP port")
    ap.add_argument("--log", help="write the received session log here")
    ap.add_argument("--shutdown", action="store_true",
                    help="send a shutdown request after the replay")
    args = ap.parse_args()

    if args.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(args.socket)
    else:
        sock = socket.create_connection(("127.0.0.1", args.port))

    log = open(args.log, "w") if args.log else None
    conn = Connection(sock, log)
    failures = []

    pong = conn.transact({"type": "ping", "id": "p"})
    if not pong.get("ok"):
        failures.append(f"ping failed: {pong}")

    warm_hits = 0
    for rid, tenant, path, signals in MIX:
        resp = conn.transact(request(rid, tenant, path, signals))
        if not resp.get("ok"):
            failures.append(f"{rid} ({tenant}, {path}) failed: "
                            f"{resp.get('error')}")
            continue
        warm = resp.get("warm_cache", {})
        warm_hits = max(warm_hits, warm.get("hits", 0))
        verdicts = resp.get("verdicts", {})
        print(f"serve_replay: {rid} ({tenant}, {path}) ok "
              f"verdicts={verdicts} warm_hit={warm.get('hit')} "
              f"seconds={resp.get('seconds', 0.0):.3f}")

    # Repeats of fifo (a2) and processor (b2) must have found their design's
    # entry resident: a server that reloads cold every time is just a slow
    # CLI.
    if warm_hits < 2:
        failures.append(f"expected >= 2 warm-cache hits from the repeat "
                        f"requests, saw {warm_hits}")

    # Admission: a demand no sane window admits. Only asserted when the
    # server actually rejected it — an unlimited server admits everything.
    resp = conn.transact(request("big", "alpha", "builtin:fifo",
                                 ["bad_full_q"], mem_mb=100000))
    if resp.get("ok"):
        print("serve_replay: oversized request admitted "
              "(no admission window configured)")
    elif resp.get("reject_reason") != "mem-oversubscribed":
        failures.append(f"oversized request rejected with "
                        f"{resp.get('reject_reason')!r}, expected "
                        f"'mem-oversubscribed'")
    else:
        print("serve_replay: oversized request rejected: "
              f"{resp.get('error')}")

    if args.shutdown:
        conn.transact({"type": "shutdown", "id": "q"})

    if log:
        log.close()
    for f in failures:
        print(f"serve_replay: FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"serve_replay: ok ({len(MIX)} verify requests, "
              f"warm_hits={warm_hits})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
