#!/usr/bin/env python3
"""Offline analyzer for rfn span traces (Chrome trace-event JSON).

Folds a file produced by `rfn verify ... --trace-spans FILE` into a
per-engine / per-iteration wall-time breakdown:

    tools/trace_report.py spans.json [--top N]

Validates the file first (schema "rfn-spans-v1": version tag, per-thread
monotonic timestamps, balanced begin/end pairs, flow pairing) and exits
nonzero with a diagnostic on a malformed trace, so it doubles as the format
checker in tests and CI. `--self-check` runs the validators against
built-in good and bad synthetic traces and needs no input file.

With `--batch` the input is instead an rfn-trace-v2 JSON Lines file from a
batch run (`rfn verify ... --bad A --bad B --trace-json FILE`): one
"property" record per property, then — for --certify runs — one
"certificate" record per conclusive property, plus a final "batch-summary".
The validator checks the version tag, the per-record shape, the verdict and
certificate-kind spellings, that a failed certification names its failing
obligation (and a successful one does not), and that the summary's
property/verdict/certificate counts match the records, then prints a
per-property table, a certification summary line when certificates were
recorded, and a SAT-engine activity line (checks, conflicts,
refinement-hint registers) when the sat engine ran.

With `--run` the input is an rfn-trace-v1 JSON Lines file from a
single-property run (`rfn verify ... --bad A --trace-json FILE`): one
"iteration" record per CEGAR iteration, then a final "summary". The
validator checks the version tag, sequential iteration numbering, that
every engine block is present — including the IC3/PDR activity block
(obligations/clauses/frames, nonnegative numbers) and the refine block's
proof-shrink column (shrunk_registers, bounded by the abstraction size) —
and that the summary's iteration count matches the records, then prints a
per-iteration table with the PDR and shrink columns.

With `--corpus` the input is an rfn-corpus-v1 or -v2 summary from
tools/corpus_run.py. The validator checks the schema tag, the per-file and
per-property record shapes, the verdict spellings, and that the totals
block agrees with the records, then prints a per-file table. v2 records
additionally carry per-file resource columns (peak_rss_bytes, cpu_ms),
which the validator requires to be nonnegative numbers; v1 baselines
remain readable for the CI gate's back-compat.

With `--serve` the input is a server session log: the JSON Lines a client
(or the CI replay script) captured from one rfn_serve connection —
streamed rfn-trace-v2 records interleaved with rfn-resp-v1 response
lines. Requests on one connection are served sequentially, so the log
groups as [records..., response] repeated. The validator checks every
response's version tag and shape, that each ok verify response's preceding
record group is a well-formed rfn-trace-v2 stream (reusing the --batch
validator) whose property counts and verdicts match the response document,
that rejected requests name a known reject_reason and streamed nothing,
that the warm_cache block is complete with monotone cumulative counters,
then prints a per-request table and a machine-readable `warm_hits=` line
the CI serve job greps to prove cross-request state reuse happened.

With `--prof` the input is an rfn-prof-v1 resource profile from
`rfn verify ... --prof-json FILE`. The validator checks the format tag,
that every per-engine CPU figure is nonnegative and their sum is
consistent with the portfolio's race wall time for the recorded worker
count (CPU cannot exceed wall x workers, modulo slack for clock
granularity), that each subsystem's peak bytes dominate its live bytes,
and that the RSS timeline has monotone timestamps with its peak no
smaller than any sample, then prints a per-engine/per-subsystem digest.

Report sections:
  * run summary — total wall time reconstructed from the rfn.run span
    (machine-readable as `total_wall_s=...`), dropped-event count, any
    budget-trip annotation;
  * top-N hottest spans by self time (time in the span minus time in its
    children on the same thread);
  * per-iteration timeline (rfn.iteration spans);
  * race outcomes — wins per engine and % of job wall time that was
    cancelled or inconclusive (work the race discarded).
"""

import argparse
import collections
import json
import signal
import sys

# Die quietly when the consumer closes the pipe (trace_report ... | head).
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

TRACE_VERSION = "rfn-spans-v1"
BATCH_TRACE_VERSION = "rfn-trace-v2"
RUN_TRACE_VERSION = "rfn-trace-v1"
# Per-iteration record shape for single-run traces (`rfn verify --bad X
# --trace-json`): every engine block is always present, zeroed when the
# engine is disabled.
ITERATION_KEYS = ("iter", "abstraction", "reach", "bdd", "hybrid",
                  "trace_cycles", "concretize", "sat", "pdr", "refine",
                  "engines", "seconds")
# The IC3/PDR activity block and the proof-shrink column of the refine
# block, both added with the pdr engine.
PDR_ITER_KEYS = ("obligations", "clauses", "frames")
VERDICTS = ("T", "F", "?", "resource-out")
PROPERTY_KEYS = ("name", "bad", "verdict", "cluster", "clustered",
                 "iterations", "seconds")
CERTIFICATE_KEYS = ("property", "kind", "ok", "clauses", "trace_cycles",
                    "obligation", "seconds")
CERTIFICATE_KINDS = ("holds-invariant", "fails-trace")
CORPUS_SCHEMA = "rfn-corpus-v2"
CORPUS_SCHEMA_V1 = "rfn-corpus-v1"
CORPUS_STATUSES = ("ok", "resource-out", "error")
CORPUS_PROPERTY_KEYS = ("name", "verdict", "certified")
# v2 adds per-file resource columns recorded from each file's prof artifact.
CORPUS_V2_FILE_KEYS = ("peak_rss_bytes", "cpu_ms")
RESPONSE_VERSION = "rfn-resp-v1"
REJECT_REASONS = ("queue-full", "time-oversubscribed", "mem-oversubscribed",
                  "bdd-oversubscribed", "load-failed", "bad-request")
WARM_CACHE_KEYS = ("enabled", "hit", "hits", "misses", "evictions",
                   "entries", "bytes", "order_warm", "sat_pool_entries")
PROF_SCHEMA = "rfn-prof-v1"
# Sum of per-engine thread-CPU can exceed race wall time only through
# parallelism: bound it by wall x workers, with headroom for clock
# granularity and the slice of engine work that runs outside races.
PROF_CPU_SLACK = 1.25
PROF_CPU_SLACK_MS = 50.0


class TraceError(Exception):
    pass


def fail(msg):
    raise TraceError(msg)


def validate(doc):
    """Checks the document shape; returns the duration-event list."""
    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not a list")
    other = doc.get("otherData", {})
    version = other.get("trace_version")
    if version != TRACE_VERSION:
        fail(f"trace_version is {version!r}, expected {TRACE_VERSION!r}")

    last_ts = {}
    depth = collections.defaultdict(int)
    flows = collections.defaultdict(dict)
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph is None:
            fail(f"event {i} has no ph")
        if ph == "M":
            continue
        tid = e.get("tid")
        ts = e.get("ts")
        if tid is None or ts is None:
            fail(f"event {i} ({e.get('name')!r}) lacks tid/ts")
        if ts < last_ts.get(tid, 0.0):
            fail(f"event {i} ({e.get('name')!r}): timestamp {ts} goes "
                 f"backwards on tid {tid}")
        last_ts[tid] = ts
        if ph == "B":
            depth[tid] += 1
        elif ph == "E":
            if depth[tid] == 0:
                fail(f"event {i} ({e.get('name')!r}): end without begin on "
                     f"tid {tid}")
            depth[tid] -= 1
        elif ph in ("s", "f"):
            fid = e.get("id")
            if fid is None:
                fail(f"event {i}: flow event without id")
            flows[fid][ph] = tid
        elif ph != "i":
            fail(f"event {i}: unknown phase {ph!r}")
    for tid, d in depth.items():
        if d != 0:
            fail(f"tid {tid} has {d} unclosed span(s)")
    for fid, ends in flows.items():
        if set(ends) != {"s", "f"}:
            fail(f"flow {fid} is unpaired (has {sorted(ends)})")
    return events


def validate_batch(records):
    """Checks an rfn-trace-v2 record list (one parsed JSONL object per
    line); returns (property_records, certificate_records, summary)."""
    if not records:
        fail("empty batch trace")
    summary = records[-1]
    if summary.get("type") != "batch-summary":
        fail(f"last record has type {summary.get('type')!r}, "
             f"expected 'batch-summary'")
    version = summary.get("trace_version")
    if version != BATCH_TRACE_VERSION:
        fail(f"trace_version is {version!r}, expected {BATCH_TRACE_VERSION!r}")
    props, certs = [], []
    for i, r in enumerate(records[:-1]):
        kind = r.get("type")
        if kind == "property":
            if certs:
                fail(f"record {i}: property record after certificate records")
            props.append(r)
        elif kind == "certificate":
            certs.append(r)
        else:
            fail(f"record {i} has type {kind!r}, expected 'property' or "
                 f"'certificate'")
    counts = collections.Counter()
    for i, r in enumerate(props):
        for key in PROPERTY_KEYS:
            if key not in r:
                fail(f"property record {i} ({r.get('name')!r}) lacks {key!r}")
        verdict = r["verdict"]
        if verdict not in VERDICTS:
            fail(f"property record {i} ({r['name']!r}): unknown verdict "
                 f"{verdict!r}")
        counts[verdict] += 1
    cert_counts = collections.Counter()
    for i, r in enumerate(certs):
        for key in CERTIFICATE_KEYS:
            if key not in r:
                fail(f"certificate record {i} ({r.get('property')!r}) lacks "
                     f"{key!r}")
        if r["kind"] not in CERTIFICATE_KINDS:
            fail(f"certificate record {i} ({r['property']!r}): unknown kind "
                 f"{r['kind']!r}")
        if r["ok"] and r["obligation"]:
            fail(f"certificate record {i} ({r['property']!r}): ok but names "
                 f"a failing obligation {r['obligation']!r}")
        if not r["ok"] and not r["obligation"]:
            fail(f"certificate record {i} ({r['property']!r}): failed "
                 f"without naming the refuted obligation")
        cert_counts["ok" if r["ok"] else "failed"] += 1
    if summary.get("properties") != len(props):
        fail(f"summary counts {summary.get('properties')} properties, the "
             f"document has {len(props)} property records")
    declared = summary.get("verdicts", {})
    for verdict in VERDICTS:
        if declared.get(verdict, 0) != counts[verdict]:
            fail(f"summary says {declared.get(verdict, 0)} x {verdict!r}, "
                 f"property records say {counts[verdict]}")
    declared_certs = summary.get("certificates")
    if certs and declared_certs is None:
        fail("certificate records present but the summary has no "
             "'certificates' counts")
    if declared_certs is not None:
        for key in ("ok", "failed"):
            if declared_certs.get(key, 0) != cert_counts[key]:
                fail(f"summary says {declared_certs.get(key, 0)} {key} "
                     f"certificate(s), records say {cert_counts[key]}")
    metrics = summary.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            fail("summary metrics is not an object")
        counters = metrics.get("counters", {})
        if not isinstance(counters, dict):
            fail("summary metrics.counters is not an object")
    return props, certs, summary


def validate_run(records):
    """Checks an rfn-trace-v1 record list (one parsed JSONL object per
    line from a single-property `--trace-json` run); returns
    (iteration_records, summary)."""
    if not records:
        fail("empty run trace")
    summary = records[-1]
    if summary.get("type") != "summary":
        fail(f"last record has type {summary.get('type')!r}, "
             f"expected 'summary'")
    version = summary.get("trace_version")
    if version != RUN_TRACE_VERSION:
        fail(f"trace_version is {version!r}, expected {RUN_TRACE_VERSION!r}")
    if summary.get("verdict") not in VERDICTS:
        fail(f"summary: unknown verdict {summary.get('verdict')!r}")
    iters = records[:-1]
    for i, r in enumerate(iters):
        if r.get("type") != "iteration":
            fail(f"record {i} has type {r.get('type')!r}, "
                 f"expected 'iteration'")
        for key in ITERATION_KEYS:
            if key not in r:
                fail(f"iteration record {i} lacks {key!r}")
        if r["iter"] != i:
            fail(f"iteration record {i} is numbered {r['iter']!r}")
        pdr = r["pdr"]
        if not isinstance(pdr, dict):
            fail(f"iteration {i}: pdr block is not an object")
        for key in PDR_ITER_KEYS:
            value = pdr.get(key)
            if not _nonneg_number(value):
                fail(f"iteration {i}: pdr.{key} is {value!r}, expected a "
                     f"nonnegative number")
        refine = r["refine"]
        if not isinstance(refine, dict):
            fail(f"iteration {i}: refine block is not an object")
        shrunk = refine.get("shrunk_registers")
        if not _nonneg_number(shrunk):
            fail(f"iteration {i}: refine.shrunk_registers is {shrunk!r}, "
                 f"expected a nonnegative number")
        # A shrink that dropped more registers than the abstraction held is
        # arithmetically impossible — a corrupted or miscounted record.
        regs = r.get("abstraction", {})
        if (isinstance(regs, dict) and _nonneg_number(regs.get("regs")) and
                shrunk is not None and _nonneg_number(shrunk) and
                shrunk > regs.get("regs", 0)):
            fail(f"iteration {i}: refine.shrunk_registers={shrunk} exceeds "
                 f"the abstraction's {regs.get('regs')} registers")
    declared = summary.get("iterations")
    if declared != len(iters):
        fail(f"summary counts {declared} iterations, the document has "
             f"{len(iters)} iteration records")
    return iters, summary


def report_run(path):
    """Validates and summarizes an rfn-trace-v1 single-run JSONL file."""
    records = []
    try:
        with open(path) as fh:
            for lineno, line in enumerate(fh, 1):
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as err:
                    fail(f"line {lineno}: not JSON ({err})")
    except OSError as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return 1
    iters, summary = validate_run(records)

    print("== run summary ==")
    print(f"verdict={summary['verdict']} iterations={len(iters)} "
          f"final_abstract_regs={summary.get('final_abstract_regs', 0)} "
          f"total_wall_s={summary.get('seconds', 0.0):.6f}")
    print(f"\n{'iter':>4} {'regs':>5} {'reach':<14} {'abs-winner':<12} "
          f"{'pdr-obl':>8} {'pdr-cls':>8} {'frames':>6} {'shrunk':>6} "
          f"{'seconds':>9}")
    for r in iters:
        winner = r.get("engines", {}).get("abstract", {}).get("winner", "")
        print(f"{r['iter']:>4} {r.get('abstraction', {}).get('regs', 0):>5} "
              f"{r.get('reach', {}).get('status', ''):<14} "
              f"{(winner or '-'):<12} "
              f"{r['pdr'].get('obligations', 0):>8.0f} "
              f"{r['pdr'].get('clauses', 0):>8.0f} "
              f"{r['pdr'].get('frames', 0):>6.0f} "
              f"{r['refine'].get('shrunk_registers', 0):>6.0f} "
              f"{r.get('seconds', 0.0):>9.3f}")
    total_shrunk = sum(r["refine"].get("shrunk_registers", 0) for r in iters)
    if total_shrunk:
        print(f"\nproof_shrink: dropped {total_shrunk:.0f} register(s) "
              f"across {len(iters)} iteration(s)")
    return 0


def validate_corpus(doc):
    """Checks an rfn-corpus-v1/-v2 summary; returns the file-record list."""
    if not isinstance(doc, dict):
        fail("top level is not an object")
    schema = doc.get("schema")
    if schema not in (CORPUS_SCHEMA, CORPUS_SCHEMA_V1):
        fail(f"schema is {schema!r}, expected {CORPUS_SCHEMA!r} "
             f"(or {CORPUS_SCHEMA_V1!r} for old baselines)")
    v2 = schema == CORPUS_SCHEMA
    files = doc.get("files")
    if not isinstance(files, list):
        fail("files missing or not a list")
    verdicts = collections.Counter()
    certified = 0
    n_props = 0
    seen_files = set()
    for i, rec in enumerate(files):
        name = rec.get("file")
        if not name:
            fail(f"file record {i} has no 'file'")
        if name in seen_files:
            fail(f"file record {i}: duplicate file {name!r}")
        seen_files.add(name)
        if rec.get("status") not in CORPUS_STATUSES:
            fail(f"file record {i} ({name!r}): unknown status "
                 f"{rec.get('status')!r}")
        props = rec.get("properties")
        if not isinstance(props, list):
            fail(f"file record {i} ({name!r}): properties missing or not "
                 f"a list")
        if rec.get("status") == "ok" and not props:
            fail(f"file record {i} ({name!r}): status ok with no "
                 f"properties — every AIGER corpus file carries at least "
                 f"one bad")
        if v2:
            for key in CORPUS_V2_FILE_KEYS:
                value = rec.get(key)
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool) or value < 0:
                    fail(f"file record {i} ({name!r}): {key!r} missing or "
                         f"not a nonnegative number (got {value!r})")
        for j, p in enumerate(props):
            for key in CORPUS_PROPERTY_KEYS:
                if key not in p:
                    fail(f"{name}: property record {j} lacks {key!r}")
            if p["verdict"] not in VERDICTS:
                fail(f"{name}: property {p['name']!r}: unknown verdict "
                     f"{p['verdict']!r}")
            if not isinstance(p["certified"], bool):
                fail(f"{name}: property {p['name']!r}: certified is not "
                     f"a boolean")
            verdicts[p["verdict"]] += 1
            certified += p["certified"]
            n_props += 1
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        fail("totals missing or not an object")
    if totals.get("files") != len(files):
        fail(f"totals say {totals.get('files')} files, the document has "
             f"{len(files)} file records")
    if totals.get("properties") != n_props:
        fail(f"totals say {totals.get('properties')} properties, the "
             f"records have {n_props}")
    declared = totals.get("verdicts", {})
    for v in VERDICTS:
        if declared.get(v, 0) != verdicts[v]:
            fail(f"totals say {declared.get(v, 0)} x {v!r}, the records "
                 f"say {verdicts[v]}")
    if totals.get("certified") != certified:
        fail(f"totals say {totals.get('certified')} certified, the records "
             f"say {certified}")
    return files


def _nonneg_number(value):
    return isinstance(value, (int, float)) and \
        not isinstance(value, bool) and value >= 0


def validate_prof(doc):
    """Checks an rfn-prof-v1 resource profile; returns the document."""
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("format") != PROF_SCHEMA:
        fail(f"format is {doc.get('format')!r}, expected {PROF_SCHEMA!r}")
    for key in ("wall_ms", "total_cpu_ms"):
        if not _nonneg_number(doc.get(key)):
            fail(f"{key!r} missing or not a nonnegative number")
    workers = doc.get("workers")
    if not isinstance(workers, int) or isinstance(workers, bool) or \
            workers < 0:
        fail("'workers' missing or not a nonnegative integer")

    engines = doc.get("engines")
    if not isinstance(engines, list):
        fail("'engines' missing or not a list")
    seen = set()
    engine_cpu_ms = 0.0
    for i, e in enumerate(engines):
        name = e.get("name") if isinstance(e, dict) else None
        if not name or not isinstance(name, str):
            fail(f"engine record {i} lacks a name")
        if name in seen:
            fail(f"engine record {i}: duplicate engine {name!r}")
        seen.add(name)
        if not _nonneg_number(e.get("cpu_ms")):
            fail(f"engine {name!r}: cpu_ms missing or negative")
        engine_cpu_ms += e["cpu_ms"]

    portfolio = doc.get("portfolio")
    if not isinstance(portfolio, dict):
        fail("'portfolio' missing or not an object")
    for key in ("race_wall_ms", "race_cpu_ms"):
        if not _nonneg_number(portfolio.get(key)):
            fail(f"portfolio.{key} missing or negative")
    # CPU-vs-wall sanity: N threads can burn at most N seconds of CPU per
    # wall second. Slack covers clock granularity and engine work that runs
    # outside the races (e.g. setup inside the job wrapper).
    bound = portfolio["race_wall_ms"] * max(1, workers) * PROF_CPU_SLACK \
        + PROF_CPU_SLACK_MS
    if engine_cpu_ms > bound:
        fail(f"engine cpu_ms sum {engine_cpu_ms:.3f} exceeds "
             f"race_wall_ms x workers bound {bound:.3f} "
             f"(wall {portfolio['race_wall_ms']:.3f} ms x {max(1, workers)} "
             f"workers)")

    subsystems = doc.get("subsystems")
    if not isinstance(subsystems, dict):
        fail("'subsystems' missing or not an object")
    for sub in ("bdd", "sat"):
        rec = subsystems.get(sub)
        if not isinstance(rec, dict):
            fail(f"subsystems.{sub} missing or not an object")
        for key in ("live_bytes", "peak_bytes"):
            if not _nonneg_number(rec.get(key)):
                fail(f"subsystems.{sub}.{key} missing or negative")
        if rec["peak_bytes"] < rec["live_bytes"]:
            fail(f"subsystems.{sub}: peak_bytes {rec['peak_bytes']} below "
                 f"live_bytes {rec['live_bytes']}")

    rss = doc.get("rss")
    if not isinstance(rss, dict):
        fail("'rss' missing or not an object")
    if not _nonneg_number(rss.get("peak_bytes")):
        fail("rss.peak_bytes missing or negative")
    samples = rss.get("samples")
    if not isinstance(samples, list):
        fail("rss.samples missing or not a list")
    last_t = -1.0
    for i, s in enumerate(samples):
        if not isinstance(s, dict) or not _nonneg_number(s.get("t_ms")) or \
                not _nonneg_number(s.get("bytes")):
            fail(f"rss sample {i} malformed (needs nonnegative t_ms/bytes)")
        if s["t_ms"] < last_t:
            fail(f"rss sample {i}: timestamp {s['t_ms']} goes backwards")
        last_t = s["t_ms"]
        if s["bytes"] > rss["peak_bytes"]:
            fail(f"rss sample {i}: {s['bytes']} bytes above declared peak "
                 f"{rss['peak_bytes']}")
    return doc


def validate_serve(lines):
    """Checks one connection's session log (parsed JSONL objects); returns
    a list of (response, record_group) pairs in arrival order."""
    requests = []
    pending = []
    for i, rec in enumerate(lines):
        if not isinstance(rec, dict):
            fail(f"line {i + 1}: not a JSON object")
        if rec.get("type") == "response":
            requests.append((rec, pending))
            pending = []
        else:
            pending.append(rec)
    if pending:
        fail(f"{len(pending)} trailing record(s) after the last response — "
             f"the log was cut mid-request")
    if not requests:
        fail("no response lines in the session log")

    last_hits = last_misses = 0
    for idx, (resp, records) in enumerate(requests):
        where = f"response {idx} (id {resp.get('id')!r})"
        if resp.get("version") != RESPONSE_VERSION:
            fail(f"{where}: version is {resp.get('version')!r}, expected "
                 f"{RESPONSE_VERSION!r}")
        ok = resp.get("ok")
        if not isinstance(ok, bool):
            fail(f"{where}: 'ok' missing or not a boolean")
        if not ok:
            reason = resp.get("reject_reason")
            if reason not in REJECT_REASONS:
                fail(f"{where}: rejected with unknown reason {reason!r} "
                     f"(valid: {', '.join(REJECT_REASONS)})")
            if not resp.get("error"):
                fail(f"{where}: rejected without a diagnostic 'error'")
            if records:
                fail(f"{where}: rejected request streamed {len(records)} "
                     f"record(s) — rejects must answer before engine work")
            continue
        if "verdicts" not in resp:
            # A control response (ping / shutdown): nothing streams.
            if records:
                fail(f"{where}: control response preceded by "
                     f"{len(records)} stray record(s)")
            continue
        # An ok verify response: the preceding group must be a well-formed
        # rfn-trace-v2 stream whose counts agree with the response document.
        props, _, _ = validate_batch(records)
        if resp.get("properties") != len(props):
            fail(f"{where}: response says {resp.get('properties')} "
                 f"properties, the stream carried {len(props)}")
        counts = collections.Counter(r["verdict"] for r in props)
        declared = resp.get("verdicts", {})
        for v in VERDICTS:
            if declared.get(v, 0) != counts[v]:
                fail(f"{where}: response says {declared.get(v, 0)} x {v!r}, "
                     f"streamed records say {counts[v]}")
        if not resp.get("design_hash"):
            fail(f"{where}: ok verify response without a design_hash")
        warm = resp.get("warm_cache")
        if not isinstance(warm, dict):
            fail(f"{where}: warm_cache missing or not an object")
        for key in WARM_CACHE_KEYS:
            if key not in warm:
                fail(f"{where}: warm_cache lacks {key!r}")
        for key in ("hits", "misses", "evictions", "entries", "bytes",
                    "sat_pool_entries"):
            if not _nonneg_number(warm[key]):
                fail(f"{where}: warm_cache.{key} not a nonnegative number")
        if warm["hit"] and not warm["enabled"]:
            fail(f"{where}: warm_cache reports a hit while disabled")
        # The hit/miss counters are cumulative over the server's lifetime:
        # they can only grow as the session progresses.
        if warm["enabled"]:
            if warm["hits"] < last_hits or warm["misses"] < last_misses:
                fail(f"{where}: cumulative warm counters went backwards "
                     f"(hits {last_hits}->{warm['hits']}, misses "
                     f"{last_misses}->{warm['misses']})")
            last_hits, last_misses = warm["hits"], warm["misses"]
    return requests


def report_serve(path):
    """Validates and summarizes an rfn_serve session log."""
    lines = []
    try:
        with open(path) as fh:
            for lineno, line in enumerate(fh, 1):
                if not line.strip():
                    continue
                try:
                    lines.append(json.loads(line))
                except json.JSONDecodeError as err:
                    fail(f"line {lineno}: not JSON ({err})")
    except OSError as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return 1
    requests = validate_serve(lines)

    n_ok = n_rejected = n_control = 0
    warm_hits = 0
    print("== serve session ==")
    print(f"{'id':<12} {'kind':<8} {'ok':<3} {'verdicts/reason':<24} "
          f"{'warm':<5} {'seconds':>8}")
    for resp, _records in requests:
        rid = str(resp.get("id", ""))
        if not resp["ok"]:
            n_rejected += 1
            print(f"{rid:<12} {'reject':<8} {'no':<3} "
                  f"{resp['reject_reason']:<24} {'':<5} {'':>8}")
            continue
        if "verdicts" not in resp:
            n_control += 1
            print(f"{rid:<12} {'control':<8} {'yes':<3} {'':<24} {'':<5} "
                  f"{'':>8}")
            continue
        n_ok += 1
        declared = resp["verdicts"]
        verdicts = " ".join(f"{v}={declared.get(v, 0)}" for v in VERDICTS
                            if declared.get(v, 0))
        warm = resp["warm_cache"]
        warm_hits = max(warm_hits, warm["hits"])
        print(f"{rid:<12} {'verify':<8} {'yes':<3} {verdicts:<24} "
              f"{('hit' if warm['hit'] else 'miss'):<5} "
              f"{resp.get('seconds', 0.0):>8.3f}")
    print(f"\nrequests={len(requests)} verified={n_ok} "
          f"rejected={n_rejected} control={n_control}")
    # Machine-readable: the CI serve job greps this to prove repeat requests
    # actually reused warm state.
    print(f"warm_hits={warm_hits}")
    return 0


def report_prof(path):
    """Validates and summarizes an rfn-prof-v1 resource profile."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return 1
    validate_prof(doc)
    print("== resource profile ==")
    print(f"wall_ms={doc['wall_ms']:.3f} total_cpu_ms={doc['total_cpu_ms']:.3f} "
          f"workers={doc['workers']}")
    portfolio = doc["portfolio"]
    print(f"races: wall_ms={portfolio['race_wall_ms']:.3f} "
          f"cpu_ms={portfolio['race_cpu_ms']:.3f}")
    if doc["engines"]:
        print(f"\n{'engine':<16} {'cpu_ms':>10}")
        for e in sorted(doc["engines"], key=lambda e: -e["cpu_ms"]):
            print(f"{e['name']:<16} {e['cpu_ms']:>10.3f}")
    print(f"\n{'subsystem':<10} {'live_bytes':>12} {'peak_bytes':>12}")
    for sub, rec in sorted(doc["subsystems"].items()):
        print(f"{sub:<10} {rec['live_bytes']:>12} {rec['peak_bytes']:>12}")
    rss = doc["rss"]
    print(f"\nrss: peak_bytes={rss['peak_bytes']} "
          f"samples={len(rss['samples'])}")
    return 0


def report_corpus(path):
    """Validates and summarizes an rfn-corpus-v1 summary file."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return 1
    files = validate_corpus(doc)
    totals = doc["totals"]
    print("== corpus summary ==")
    print(f"files={totals['files']} properties={totals['properties']} "
          f"certified={totals['certified']}")
    declared = totals.get("verdicts", {})
    print("verdicts: " + " ".join(
        f"{v}={declared.get(v, 0)}" for v in VERDICTS))
    print(f"\n{'file':<28} {'status':<13} {'props':>5} {'T':>3} {'F':>3} "
          f"{'cert':>4} {'seconds':>8}")
    for rec in files:
        counts = collections.Counter(p["verdict"] for p in rec["properties"])
        cert = sum(p["certified"] for p in rec["properties"])
        print(f"{rec['file']:<28} {rec['status']:<13} "
              f"{len(rec['properties']):>5} {counts.get('T', 0):>3} "
              f"{counts.get('F', 0):>3} {cert:>4} "
              f"{rec.get('seconds', 0.0):>8.2f}")
    return 0


def sat_summary_line(summary):
    """One-line SAT-engine activity digest from the batch-summary metrics,
    or None when the sat engine never ran in this batch."""
    counters = summary.get("metrics", {}).get("counters", {})
    checks = counters.get("sat.checks", 0)
    if not checks:
        return None
    return (f"sat: checks={checks} conflicts={counters.get('sat.conflicts', 0)} "
            f"solve_calls={counters.get('sat.solve_calls', 0)} "
            f"core_registers={counters.get('sat.core_registers', 0)} "
            f"hint_registers={counters.get('rfn.sat_hint_registers', 0)} "
            f"wins={counters.get('portfolio.wins.sat-bmc', 0)}")


def report_batch(path):
    """Validates and summarizes an rfn-trace-v2 batch JSONL file."""
    records = []
    try:
        with open(path) as fh:
            for lineno, line in enumerate(fh, 1):
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as err:
                    fail(f"line {lineno}: not JSON ({err})")
    except OSError as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return 1
    props, certs, summary = validate_batch(records)

    print("== batch summary ==")
    print(f"properties={len(props)} clusters={summary.get('clusters')} "
          f"total_wall_s={summary.get('seconds', 0.0):.6f}")
    declared = summary.get("verdicts", {})
    print("verdicts: " + " ".join(
        f"{v}={declared.get(v, 0)}" for v in VERDICTS))
    print(f"\n{'property':<24} {'verdict':<12} {'cluster':>7} "
          f"{'clustered':>9} {'iters':>5} {'seconds':>9}")
    for r in props:
        print(f"{r['name']:<24} {r['verdict']:<12} {r['cluster']:>7} "
              f"{('yes' if r['clustered'] else 'no'):>9} "
              f"{r['iterations']:>5} {r['seconds']:>9.3f}")
    if certs:
        kinds = collections.Counter(r["kind"] for r in certs)
        ok = sum(1 for r in certs if r["ok"])
        line = f"\ncertificates: ok={ok} failed={len(certs) - ok}"
        for kind in CERTIFICATE_KINDS:
            if kinds[kind]:
                line += f" {kind}={kinds[kind]}"
        print(line)
        for r in certs:
            if not r["ok"]:
                print(f"  FAILED {r['property']}: obligation "
                      f"{r['obligation']}")
    sat_line = sat_summary_line(summary)
    if sat_line:
        print(f"\n{sat_line}")
    return 0


def fold_spans(events):
    """Reconstructs spans from B/E pairs. Returns a list of dicts with
    name, tid, start, dur, self (all in microseconds), args, depth."""
    spans = []
    stacks = collections.defaultdict(list)
    for e in events:
        ph = e.get("ph")
        tid = e.get("tid")
        if ph == "B":
            stacks[tid].append({
                "name": e["name"], "tid": tid, "start": e["ts"],
                "dur": 0.0, "child": 0.0, "args": {},
                "depth": len(stacks[tid]),
            })
        elif ph == "E":
            s = stacks[tid].pop()
            s["dur"] = e["ts"] - s["start"]
            s["args"] = e.get("args", {})
            s["self"] = s["dur"] - s.pop("child")
            if stacks[tid]:
                stacks[tid][-1]["child"] += s["dur"]
            spans.append(s)
    return spans


def report(doc, top_n):
    events = validate(doc)
    spans = fold_spans(events)
    instants = [e for e in events if e.get("ph") == "i"]
    dropped = doc.get("otherData", {}).get("dropped_events", 0)

    runs = [s for s in spans if s["name"] == "rfn.run"]
    total_us = runs[0]["dur"] if runs else max(
        (s["start"] + s["dur"] for s in spans), default=0.0)

    print("== run summary ==")
    # Machine-readable: tests cross-check this against the run's seconds.
    print(f"total_wall_s={total_us / 1e6:.6f}")
    print(f"spans={len(spans)} events={len(events)} dropped={dropped}")
    if runs and "verdict" in runs[0]["args"]:
        print(f"verdict={runs[0]['args']['verdict']}")
    for e in instants:
        if e.get("name") == "budget-trip":
            reason = e.get("args", {}).get("reason", "?")
            print(f"budget_trip reason={reason} at_s={e['ts'] / 1e6:.3f}")

    agg = collections.defaultdict(lambda: [0, 0.0, 0.0])  # count, dur, self
    for s in spans:
        a = agg[s["name"]]
        a[0] += 1
        a[1] += s["dur"]
        a[2] += s["self"]
    print(f"\n== top {top_n} spans by self time ==")
    print(f"{'span':<18} {'count':>6} {'total_ms':>10} {'self_ms':>10}")
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][2])[:top_n]
    for name, (count, dur, self_us) in ranked:
        print(f"{name:<18} {count:>6} {dur / 1e3:>10.3f} {self_us / 1e3:>10.3f}")

    iters = sorted((s for s in spans if s["name"] == "rfn.iteration"),
                   key=lambda s: s["start"])
    if iters:
        print("\n== iterations ==")
        print(f"{'iter':>4} {'start_ms':>10} {'dur_ms':>10}")
        for s in iters:
            idx = s["args"].get("iter", "?")
            print(f"{idx!s:>4} {s['start'] / 1e3:>10.3f} {s['dur'] / 1e3:>10.3f}")

    # Race arms carry an "outcome" annotation; everything the race discarded
    # (cancelled losers, inconclusive probes) is wall time the portfolio
    # spent buying latency. High %cancelled with the right winner is the
    # design working; high %inconclusive is budget misallocation.
    jobs = [s for s in spans if "outcome" in s["args"]]
    if jobs:
        outcomes = collections.defaultdict(lambda: [0, 0.0])
        wins = collections.Counter()
        for s in jobs:
            o = s["args"]["outcome"]
            outcomes[o][0] += 1
            outcomes[o][1] += s["dur"]
            if o == "won":
                wins[s["name"]] += 1
        job_total = sum(s["dur"] for s in jobs)
        print("\n== race outcomes ==")
        print(f"{'outcome':<14} {'jobs':>5} {'wall_ms':>10} {'%job_time':>10}")
        for o, (count, dur) in sorted(outcomes.items()):
            pct = 100.0 * dur / job_total if job_total else 0.0
            print(f"{o:<14} {count:>5} {dur / 1e3:>10.3f} {pct:>9.1f}%")
        for name, count in wins.most_common():
            print(f"  wins: {name} x{count}")
        discarded = sum(outcomes[o][1] for o in ("cancelled", "inconclusive")
                        if o in outcomes)
        pct = 100.0 * discarded / job_total if job_total else 0.0
        print(f"cancelled_or_inconclusive_pct={pct:.1f}")
    return 0


def synthetic_trace():
    """A minimal well-formed trace for --self-check."""
    ev = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "main"}},
        {"name": "rfn.run", "ph": "B", "cat": "rfn", "pid": 1, "tid": 1,
         "ts": 0.0},
        {"name": "rfn.iteration", "ph": "B", "cat": "rfn", "pid": 1,
         "tid": 1, "ts": 1.0},
        {"name": "job", "ph": "s", "cat": "flow", "id": 1, "pid": 1,
         "tid": 1, "ts": 2.0},
        {"name": "job", "ph": "B", "cat": "rfn", "pid": 1, "tid": 2,
         "ts": 3.0},
        {"name": "job", "ph": "f", "cat": "flow", "id": 1, "bp": "e",
         "pid": 1, "tid": 2, "ts": 3.5},
        {"name": "budget-trip", "ph": "i", "cat": "rfn", "s": "g", "pid": 1,
         "tid": 3, "ts": 4.0, "args": {"reason": "wall-budget"}},
        {"name": "job", "ph": "E", "cat": "rfn", "pid": 1, "tid": 2,
         "ts": 5.0, "args": {"outcome": "won"}},
        {"name": "rfn.iteration", "ph": "E", "cat": "rfn", "pid": 1,
         "tid": 1, "ts": 6.0, "args": {"iter": 0}},
        {"name": "rfn.run", "ph": "E", "cat": "rfn", "pid": 1, "tid": 1,
         "ts": 7.0, "args": {"verdict": "resource-out"}},
    ]
    return {"traceEvents": ev, "displayTimeUnit": "ms",
            "otherData": {"trace_version": TRACE_VERSION,
                          "dropped_events": 0}}


def synthetic_batch_trace():
    """A minimal well-formed rfn-trace-v2 record list for --self-check."""
    prop = {"type": "property", "bad": 7, "cluster": 0, "clustered": True,
            "order_seeded": False, "seeded_registers": 0, "iterations": 2,
            "final_abstract_regs": 3, "error_trace_cycles": 0,
            "seconds": 0.25, "note": ""}
    cert = {"type": "certificate", "clauses": 0, "trace_cycles": 0,
            "obligation": "", "seconds": 0.01}
    return [
        dict(prop, name="p0", verdict="T"),
        dict(prop, name="p1", verdict="F", error_trace_cycles=4),
        dict(cert, property="p0", kind="holds-invariant", ok=True, clauses=5),
        dict(cert, property="p1", kind="fails-trace", ok=False,
             trace_cycles=4, obligation="trace-replay"),
        {"type": "batch-summary", "trace_version": BATCH_TRACE_VERSION,
         "properties": 2, "clusters": 1,
         "verdicts": {"T": 1, "F": 1, "?": 0, "resource-out": 0},
         "certificates": {"ok": 1, "failed": 1},
         "seconds": 0.5,
         "metrics": {"counters": {"sat.checks": 3, "sat.conflicts": 17,
                                  "sat.solve_calls": 9,
                                  "rfn.sat_hint_registers": 2,
                                  "portfolio.wins.sat-bmc": 1}}},
    ]


def synthetic_run_trace():
    """A minimal well-formed rfn-trace-v1 record list for --self-check."""
    def iteration(i, regs, shrunk):
        return {
            "type": "iteration", "iter": i,
            "abstraction": {"regs": regs, "inputs": 2, "gates": 30},
            "reach": {"status": "bad-reachable" if i == 0 else "proved",
                      "steps": 3, "approx_used": False,
                      "approx_proved": False},
            "bdd": {"peak_nodes": 100, "cache_lookups": 10, "cache_hits": 5,
                    "cache_hit_rate": 0.5, "reorderings": 0},
            "hybrid": {"nocut_cubes": 0, "mincut_cubes": 0, "atpg_calls": 0,
                       "atpg_rejects": 0},
            "trace_cycles": 4 if i == 0 else 0,
            "concretize": {"status": "unsat" if i == 0 else "none"},
            "sat": {"conflicts": 7, "propagations": 90, "depth": 4,
                    "core_size": 2},
            "pdr": {"obligations": 12, "clauses": 5, "frames": 3},
            "refine": {"conflict_candidates": 1, "fallback_candidates": 0,
                       "hint_candidates": 2, "added_until_unsat": 1,
                       "removed_by_greedy": 0, "final_count": regs,
                       "atpg_calls": 1, "trace_invalidated": False,
                       "shrunk_registers": shrunk},
            "engines": {"abstract": {"winner": "pdr", "seconds": 0.01,
                                     "cpu_seconds": 0.01},
                        "concretize": {"winner": "sat-bmc", "seconds": 0.02,
                                       "cpu_seconds": 0.02}},
            "seconds": 0.05,
        }

    return [
        iteration(0, 3, 0),
        iteration(1, 4, 1),
        {"type": "summary", "trace_version": RUN_TRACE_VERSION,
         "verdict": "T", "iterations": 2, "final_abstract_regs": 4,
         "error_trace_cycles": 0, "seconds": 0.12, "cpu_seconds": 0.11,
         "note": "", "metrics_epoch": 0,
         "metrics": {"counters": {"pdr.runs": 2, "pdr.clauses": 5}}},
    ]


def synthetic_corpus():
    """A minimal well-formed rfn-corpus-v2 summary for --self-check."""
    return {
        "schema": CORPUS_SCHEMA,
        "corpus": "tests/corpus",
        "files": [
            {"file": "a.aag", "status": "ok", "seconds": 0.1,
             "peak_rss_bytes": 20 << 20, "cpu_ms": 95.0,
             "properties": [
                 {"name": "p0", "verdict": "T", "certified": True},
                 {"name": "p1", "verdict": "F", "certified": True},
             ],
             "engine_wins": {"bdd-reach": 2}},
            {"file": "b.aig", "status": "resource-out", "seconds": 120.0,
             "peak_rss_bytes": 128 << 20, "cpu_ms": 119000.0,
             "properties": [], "engine_wins": {}},
        ],
        "totals": {"files": 2, "properties": 2,
                   "verdicts": {"T": 1, "F": 1, "?": 0, "resource-out": 0},
                   "certified": 2},
    }


def synthetic_serve_log():
    """A minimal well-formed rfn_serve session log for --self-check: a ping,
    two verify requests (cold miss then warm hit), and a reject."""
    def verify_response(rid, hit, hits, misses):
        return {"type": "response", "version": RESPONSE_VERSION, "id": rid,
                "ok": True, "design_hash": "deadbeef", "properties": 2,
                "clusters": 1,
                "verdicts": {"T": 1, "F": 1, "?": 0, "resource-out": 0},
                "warm_cache": {"enabled": True, "hit": hit, "hits": hits,
                               "misses": misses, "evictions": 0,
                               "entries": 1, "bytes": 15232,
                               "order_warm": hit, "sat_pool_entries": 0},
                "seconds": 0.5}

    records = synthetic_batch_trace()
    log = [{"type": "response", "version": RESPONSE_VERSION, "id": "p",
            "ok": True}]
    log += records
    log.append(verify_response("r1", hit=False, hits=0, misses=1))
    log += records
    log.append(verify_response("r2", hit=True, hits=1, misses=1))
    log.append({"type": "response", "version": RESPONSE_VERSION, "id": "big",
                "ok": False, "reject_reason": "mem-oversubscribed",
                "error": "0 MB outstanding + 200 MB demanded > 100 MB window"})
    return log


def synthetic_prof():
    """A minimal well-formed rfn-prof-v1 profile for --self-check."""
    return {
        "format": PROF_SCHEMA,
        "wall_ms": 120.0,
        "total_cpu_ms": 180.0,
        "workers": 2,
        "engines": [
            {"name": "bdd-reach", "cpu_ms": 80.0},
            {"name": "sat-bmc", "cpu_ms": 60.0},
        ],
        "portfolio": {"race_wall_ms": 100.0, "race_cpu_ms": 140.0},
        "subsystems": {
            "bdd": {"live_bytes": 2 << 20, "peak_bytes": 2 << 20},
            "sat": {"live_bytes": 1 << 20, "peak_bytes": 3 << 20},
        },
        "rss": {"peak_bytes": 30 << 20, "samples": [
            {"t_ms": 10.0, "bytes": 20 << 20},
            {"t_ms": 60.0, "bytes": 30 << 20},
            {"t_ms": 110.0, "bytes": 28 << 20},
        ]},
    }


def self_check():
    """The validators must accept good traces and reject each corruption."""
    good = synthetic_trace()
    try:
        validate(good)
    except TraceError as err:
        print(f"self-check: valid trace rejected: {err}", file=sys.stderr)
        return 1

    def corrupt(mutate, expect):
        doc = json.loads(json.dumps(good))  # deep copy
        mutate(doc)
        try:
            validate(doc)
        except TraceError:
            return None
        return f"self-check: {expect} not detected"

    failures = [f for f in (
        corrupt(lambda d: d["otherData"].pop("trace_version"),
                "missing trace_version"),
        corrupt(lambda d: d["traceEvents"].pop(),  # drop rfn.run's E
                "unbalanced begin/end"),
        corrupt(lambda d: d["traceEvents"][2].update(ts=100.0),
                "non-monotonic timestamps"),
        corrupt(lambda d: d["traceEvents"].__delitem__(5),  # drop flow-end
                "unpaired flow"),
    ) if f]

    good_batch = synthetic_batch_trace()
    try:
        validate_batch(good_batch)
    except TraceError as err:
        print(f"self-check: valid batch trace rejected: {err}",
              file=sys.stderr)
        return 1

    def corrupt_batch(mutate, expect):
        doc = json.loads(json.dumps(good_batch))
        mutate(doc)
        try:
            validate_batch(doc)
        except TraceError:
            return None
        return f"self-check: {expect} not detected"

    sat_line = sat_summary_line(good_batch[-1])
    if not sat_line or "checks=3" not in sat_line or "hint_registers=2" not in sat_line:
        failures.append("self-check: SAT batch summary line malformed: "
                        f"{sat_line!r}")
    if sat_summary_line({"metrics": {"counters": {}}}) is not None:
        failures.append("self-check: SAT summary line printed for a batch "
                        "where the sat engine never ran")

    failures += [f for f in (
        corrupt_batch(lambda d: d[-1].update(trace_version="rfn-trace-v1"),
                      "wrong batch trace_version"),
        corrupt_batch(lambda d: d[-1].update(metrics=[1, 2]),
                      "non-object summary metrics"),
        corrupt_batch(lambda d: d.pop(),  # drop the batch-summary
                      "missing batch-summary"),
        corrupt_batch(lambda d: d.__delitem__(0),  # one record per property
                      "summary/record property-count mismatch"),
        corrupt_batch(lambda d: d[0].update(verdict="HOLDS"),
                      "non-canonical verdict spelling"),
        corrupt_batch(lambda d: d[0].pop("seconds"),
                      "property record missing a key"),
        corrupt_batch(lambda d: d[-1]["verdicts"].update(T=2),
                      "summary verdict-count mismatch"),
        corrupt_batch(lambda d: d[2].update(kind="holds-magic"),
                      "unknown certificate kind"),
        corrupt_batch(lambda d: d[2].update(obligation="safety"),
                      "ok certificate naming a failing obligation"),
        corrupt_batch(lambda d: d[3].update(obligation=""),
                      "failed certificate without an obligation"),
        corrupt_batch(lambda d: d[2].pop("clauses"),
                      "certificate record missing a key"),
        corrupt_batch(lambda d: d[-1]["certificates"].update(ok=2),
                      "summary certificate-count mismatch"),
        corrupt_batch(lambda d: d[-1].pop("certificates"),
                      "certificate records without summary counts"),
        corrupt_batch(lambda d: d.insert(3, dict(d[0])),
                      "property record after certificate records"),
    ) if f]

    good_run = synthetic_run_trace()
    try:
        validate_run(good_run)
    except TraceError as err:
        print(f"self-check: valid run trace rejected: {err}",
              file=sys.stderr)
        return 1

    def corrupt_run(mutate, expect):
        doc = json.loads(json.dumps(good_run))
        mutate(doc)
        try:
            validate_run(doc)
        except TraceError:
            return None
        return f"self-check: {expect} not detected"

    failures += [f for f in (
        corrupt_run(lambda d: d[-1].update(trace_version="rfn-trace-v2"),
                    "wrong run trace_version"),
        corrupt_run(lambda d: d.pop(),  # drop the summary
                    "missing run summary"),
        corrupt_run(lambda d: d[0].pop("pdr"),
                    "iteration record missing the pdr block"),
        corrupt_run(lambda d: d[0].update(pdr=[1, 2]),
                    "non-object pdr block"),
        corrupt_run(lambda d: d[0]["pdr"].pop("obligations"),
                    "pdr block missing a counter"),
        corrupt_run(lambda d: d[0]["pdr"].update(clauses=-3),
                    "negative pdr clause count"),
        corrupt_run(lambda d: d[0]["pdr"].update(frames="three"),
                    "non-numeric pdr frame count"),
        corrupt_run(lambda d: d[1]["refine"].pop("shrunk_registers"),
                    "refine block missing shrunk_registers"),
        corrupt_run(lambda d: d[1]["refine"].update(shrunk_registers=-1),
                    "negative shrunk_registers"),
        corrupt_run(lambda d: d[1]["refine"].update(shrunk_registers=99),
                    "shrink larger than the abstraction"),
        corrupt_run(lambda d: d[1].update(iter=5),
                    "non-sequential iteration numbering"),
        corrupt_run(lambda d: d[-1].update(iterations=3),
                    "summary iteration-count mismatch"),
    ) if f]

    good_corpus = synthetic_corpus()
    try:
        validate_corpus(good_corpus)
    except TraceError as err:
        print(f"self-check: valid corpus summary rejected: {err}",
              file=sys.stderr)
        return 1

    def corrupt_corpus(mutate, expect):
        doc = json.loads(json.dumps(good_corpus))
        mutate(doc)
        try:
            validate_corpus(doc)
        except TraceError:
            return None
        return f"self-check: {expect} not detected"

    failures += [f for f in (
        corrupt_corpus(lambda d: d.update(schema="rfn-corpus-v0"),
                       "wrong corpus schema tag"),
        corrupt_corpus(lambda d: d["files"][0]["properties"][0].update(
                           verdict="HOLDS"),
                       "non-canonical corpus verdict spelling"),
        corrupt_corpus(lambda d: d["files"][0].update(status="crashed"),
                       "unknown corpus file status"),
        corrupt_corpus(lambda d: d["files"][0]["properties"].pop(),
                       "corpus totals/record property-count mismatch"),
        corrupt_corpus(lambda d: d["totals"]["verdicts"].update(T=2),
                       "corpus totals verdict-count mismatch"),
        corrupt_corpus(lambda d: d["files"][0]["properties"][0].update(
                           certified="yes"),
                       "non-boolean certified flag"),
        corrupt_corpus(lambda d: d["totals"].update(certified=1),
                       "corpus certified-count mismatch"),
        corrupt_corpus(lambda d: d["files"].append(dict(d["files"][0])),
                       "duplicate corpus file record"),
        corrupt_corpus(lambda d: d["files"][0].pop("peak_rss_bytes"),
                       "v2 file record missing peak_rss_bytes"),
        corrupt_corpus(lambda d: d["files"][0].update(cpu_ms=-1.0),
                       "negative v2 cpu_ms"),
    ) if f]

    # A v1 baseline (no resource columns) must stay readable for the CI
    # gate's back-compat path.
    v1 = json.loads(json.dumps(good_corpus))
    v1["schema"] = CORPUS_SCHEMA_V1
    for rec in v1["files"]:
        rec.pop("peak_rss_bytes")
        rec.pop("cpu_ms")
    try:
        validate_corpus(v1)
    except TraceError as err:
        failures.append(f"self-check: v1 corpus baseline rejected: {err}")

    good_prof = synthetic_prof()
    try:
        validate_prof(good_prof)
    except TraceError as err:
        print(f"self-check: valid prof artifact rejected: {err}",
              file=sys.stderr)
        return 1

    def corrupt_prof(mutate, expect):
        doc = json.loads(json.dumps(good_prof))
        mutate(doc)
        try:
            validate_prof(doc)
        except TraceError:
            return None
        return f"self-check: {expect} not detected"

    failures += [f for f in (
        corrupt_prof(lambda d: d.update(format="rfn-prof-v0"),
                     "wrong prof format tag"),
        corrupt_prof(lambda d: d["engines"][0].update(cpu_ms=-5.0),
                     "negative engine cpu_ms"),
        corrupt_prof(lambda d: d["engines"].append(dict(d["engines"][0])),
                     "duplicate engine record"),
        corrupt_prof(lambda d: d["engines"][0].update(cpu_ms=1e6),
                     "engine CPU sum exceeding wall x workers"),
        corrupt_prof(lambda d: d["subsystems"]["sat"].update(peak_bytes=1),
                     "subsystem peak below live"),
        corrupt_prof(lambda d: d["subsystems"].pop("bdd"),
                     "missing bdd subsystem record"),
        corrupt_prof(lambda d: d["rss"]["samples"][1].update(t_ms=1.0),
                     "non-monotone rss timestamps"),
        corrupt_prof(lambda d: d["rss"].update(peak_bytes=1),
                     "rss sample above declared peak"),
        corrupt_prof(lambda d: d["rss"].pop("samples"),
                     "missing rss samples"),
        corrupt_prof(lambda d: d.update(workers="two"),
                     "non-integer workers"),
    ) if f]

    good_serve = synthetic_serve_log()
    try:
        validate_serve(good_serve)
    except TraceError as err:
        print(f"self-check: valid serve session log rejected: {err}",
              file=sys.stderr)
        return 1

    def corrupt_serve(mutate, expect):
        doc = json.loads(json.dumps(good_serve))
        mutate(doc)
        try:
            validate_serve(doc)
        except TraceError:
            return None
        return f"self-check: {expect} not detected"

    # Indices into the synthetic log: 0 = ping response, 1..5 = first
    # record group, 6 = cold verify response, 12 = warm verify response,
    # 13 = reject response.
    failures += [f for f in (
        corrupt_serve(lambda d: d[6].update(version="rfn-resp-v0"),
                      "wrong response version"),
        corrupt_serve(lambda d: d.pop(6),  # records with no response
                      "record group folded into the next request"),
        corrupt_serve(lambda d: d[6]["verdicts"].update(T=2),
                      "response/stream verdict mismatch"),
        corrupt_serve(lambda d: d[6].update(properties=3),
                      "response/stream property-count mismatch"),
        corrupt_serve(lambda d: d[6].pop("design_hash"),
                      "ok verify response without design_hash"),
        corrupt_serve(lambda d: d[6]["warm_cache"].pop("order_warm"),
                      "incomplete warm_cache block"),
        corrupt_serve(lambda d: d[6]["warm_cache"].update(hits=5),
                      "cumulative warm counters going backwards"),
        corrupt_serve(lambda d: d[12]["warm_cache"].update(enabled=False),
                      "warm hit while disabled"),
        corrupt_serve(lambda d: d[13].update(reject_reason="tuesday"),
                      "unknown reject reason"),
        corrupt_serve(lambda d: d[13].pop("error"),
                      "reject without a diagnostic"),
        corrupt_serve(lambda d: d.insert(13, dict(d[1])),
                      "records streamed before a reject"),
        corrupt_serve(lambda d: d.append(dict(d[1])),
                      "trailing records after the last response"),
    ) if f]
    # Dropping the reject response leaves a still-valid (shorter) log.
    shorter = json.loads(json.dumps(good_serve))[:-1]
    try:
        validate_serve(shorter)
    except TraceError as err:
        failures.append(f"self-check: truncated-but-complete serve log "
                        f"rejected: {err}")

    for f in failures:
        print(f, file=sys.stderr)
    if not failures:
        print("trace_report self-check: ok")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", help="span file from --trace-spans")
    ap.add_argument("--top", type=int, default=10,
                    help="hottest-span rows to print (default 10)")
    ap.add_argument("--self-check", action="store_true",
                    help="validate built-in good/bad traces and exit")
    ap.add_argument("--batch", action="store_true",
                    help="TRACE is an rfn-trace-v2 batch JSONL file")
    ap.add_argument("--run", action="store_true",
                    help="TRACE is an rfn-trace-v1 single-run JSONL file "
                         "(iteration records + summary)")
    ap.add_argument("--corpus", action="store_true",
                    help="TRACE is an rfn-corpus-v1/-v2 summary from "
                         "tools/corpus_run.py")
    ap.add_argument("--prof", action="store_true",
                    help="TRACE is an rfn-prof-v1 resource profile from "
                         "rfn verify --prof-json")
    ap.add_argument("--serve", action="store_true",
                    help="TRACE is an rfn_serve session log (streamed "
                         "records + rfn-resp-v1 lines from one connection)")
    args = ap.parse_args()

    if args.self_check:
        return self_check()
    if not args.trace:
        ap.error("a trace file is required (or --self-check)")
    if args.serve:
        try:
            return report_serve(args.trace)
        except TraceError as err:
            print(f"trace_report: invalid serve session log: {err}",
                  file=sys.stderr)
            return 1
    if args.prof:
        try:
            return report_prof(args.trace)
        except TraceError as err:
            print(f"trace_report: invalid prof artifact: {err}",
                  file=sys.stderr)
            return 1
    if args.corpus:
        try:
            return report_corpus(args.trace)
        except TraceError as err:
            print(f"trace_report: invalid corpus summary: {err}",
                  file=sys.stderr)
            return 1
    if args.batch:
        try:
            return report_batch(args.trace)
        except TraceError as err:
            print(f"trace_report: invalid batch trace: {err}", file=sys.stderr)
            return 1
    if args.run:
        try:
            return report_run(args.trace)
        except TraceError as err:
            print(f"trace_report: invalid run trace: {err}", file=sys.stderr)
            return 1
    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_report: cannot read {args.trace}: {err}",
              file=sys.stderr)
        return 1
    try:
        return report(doc, args.top)
    except TraceError as err:
        print(f"trace_report: invalid trace: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
