#!/usr/bin/env python3
"""Corpus harness: fan a directory of AIGER files through batch sessions.

Runs `rfn verify FILE --batch --cert-dir ... --trace-json ...` for every
`.aag`/`.aig` file in the corpus directory, each under its own watchdog
budget, re-validates every emitted certificate with `rfn_check` against the
same AIGER file, and writes an rfn-corpus-v2 JSON summary:

  {"schema": "rfn-corpus-v2",
   "corpus": "tests/corpus",
   "files": [{"file": "two_bads.aag",
              "status": "ok" | "resource-out" | "error",
              "seconds": 0.12,
              "peak_rss_bytes": 23318528,
              "cpu_ms": 9.31,
              "properties": [{"name": "both_high", "verdict": "T",
                              "certified": true}, ...],
              "engine_wins": {"bdd-reach": 2, ...}}, ...],
   "totals": {"files": N, "properties": M,
              "verdicts": {"T": ..., "F": ..., "?": ..., "resource-out": ...},
              "certified": K}}

Verdicts use the rfn-trace-v2 spellings ("T" holds, "F" fails, "?"
inconclusive, "resource-out"). A file whose verify process exceeds the
watchdog is recorded as status "resource-out" with no property records; a
crash or an unparseable trace is status "error". `certified` is true only
when the property's certificate exists AND rfn_check accepted it — a
conclusive verdict without a valid certificate is a gating failure waiting
to happen, not a soft state.

`engine_wins` (the portfolio.wins.* counters) are informational: races are
timing-dependent, so tools/bench_gate.py --corpus-baseline ignores them and
gates only on the file set, statuses, verdicts, and certification bits.

`peak_rss_bytes`/`cpu_ms` (new in v2) come from the rfn-prof-v1 artifact the
CLI emits per file (`--prof-json`): process-wide RSS high-water mark and
process CPU for the whole run. Like seconds and engine_wins they are
informational — machine-dependent, never gated. Both are 0 when the run
timed out, crashed, or the prof artifact was unreadable.
tools/trace_report.py --corpus still accepts rfn-corpus-v1 baselines
(without the two fields) so older committed baselines keep validating.

Usage:
  tools/corpus_run.py --cli build/tools/rfn --check build/tools/rfn_check \
      --corpus tests/corpus --out corpus_summary.json

Re-baselining (after adding a corpus file or an intentional verdict
change): regenerate and commit tests/corpus/baseline.json together with the
change that moved it, and say why in the commit message:

  tools/corpus_run.py --cli build/tools/rfn --check build/tools/rfn_check \
      --out tests/corpus/baseline.json
"""

import argparse
import collections
import json
import os
import subprocess
import sys
import tempfile
import time

SCHEMA = "rfn-corpus-v2"
AIGER_SUFFIXES = (".aag", ".aig")
ENGINE_WIN_PREFIX = "portfolio.wins."


def sanitize_file_stem(name):
    """Mirrors rfn_cli's cert-file naming for property names."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def parse_trace(path):
    """Reads an rfn-trace-v2 JSONL file; returns (property_records,
    engine_wins) or raises ValueError on a malformed artifact."""
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise ValueError(f"trace line {lineno}: not JSON ({err})")
    if not records or records[-1].get("type") != "batch-summary":
        raise ValueError("trace does not end in a batch-summary record")
    summary = records[-1]
    if summary.get("trace_version") != "rfn-trace-v2":
        raise ValueError(
            f"trace_version {summary.get('trace_version')!r} is not rfn-trace-v2")
    props = [r for r in records if r.get("type") == "property"]
    for r in props:
        if "name" not in r or "verdict" not in r:
            raise ValueError("property record lacks name/verdict")
    counters = summary.get("metrics", {}).get("counters", {})
    wins = {k[len(ENGINE_WIN_PREFIX):]: v for k, v in sorted(counters.items())
            if k.startswith(ENGINE_WIN_PREFIX) and v}
    return props, wins


def read_prof(path, name):
    """Harvests (peak_rss_bytes, cpu_ms) from an rfn-prof-v1 artifact;
    returns (0, 0) — never raises — when the file is missing or garbled, so
    a prof hiccup degrades the two informational fields instead of turning
    a perfectly good verify run into an "error" record."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("format") != "rfn-prof-v1":
            raise ValueError(f"format {doc.get('format')!r} is not rfn-prof-v1")
        return (int(doc["rss"]["peak_bytes"]),
                round(float(doc["total_cpu_ms"]), 3))
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"corpus_run: {name}: unusable prof artifact ({err})",
              file=sys.stderr)
        return 0, 0


def run_file(cli, check, path, workdir, timeout):
    """Verifies one AIGER file; returns its rfn-corpus-v2 file record."""
    name = os.path.basename(path)
    stem = sanitize_file_stem(name)
    cert_dir = os.path.join(workdir, stem + ".certs")
    trace = os.path.join(workdir, stem + ".jsonl")
    prof = os.path.join(workdir, stem + ".prof.json")
    cmd = [cli, "verify", path, "--batch",
           "--cert-dir", cert_dir, "--trace-json", trace,
           "--prof-json", prof]
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        print(f"corpus_run: {name}: watchdog budget ({timeout}s) exceeded",
              file=sys.stderr)
        return {"file": name, "status": "resource-out",
                "seconds": round(time.monotonic() - start, 3),
                "peak_rss_bytes": 0, "cpu_ms": 0,
                "properties": [], "engine_wins": {}}
    seconds = round(time.monotonic() - start, 3)
    peak_rss_bytes, cpu_ms = read_prof(prof, name)

    # Exit 0: all verdicts conclusive. Exit 1: at least one inconclusive /
    # resource-out property — still a parseable run, the verdicts tell the
    # story. Anything else (or a missing/garbled trace) is an error.
    if proc.returncode not in (0, 1):
        print(f"corpus_run: {name}: verify exited {proc.returncode}:\n"
              f"{proc.stderr.strip()}", file=sys.stderr)
        return {"file": name, "status": "error", "seconds": seconds,
                "peak_rss_bytes": peak_rss_bytes, "cpu_ms": cpu_ms,
                "properties": [], "engine_wins": {}}
    try:
        props, wins = parse_trace(trace)
    except (OSError, ValueError) as err:
        print(f"corpus_run: {name}: {err}", file=sys.stderr)
        return {"file": name, "status": "error", "seconds": seconds,
                "peak_rss_bytes": peak_rss_bytes, "cpu_ms": cpu_ms,
                "properties": [], "engine_wins": {}}

    properties = []
    for r in props:
        certified = False
        if r["verdict"] in ("T", "F"):
            cert = os.path.join(cert_dir,
                                sanitize_file_stem(r["name"]) + ".cert.json")
            if os.path.exists(cert):
                res = subprocess.run([check, cert, path],
                                     capture_output=True, text=True,
                                     timeout=timeout)
                certified = res.returncode == 0
                if not certified:
                    print(f"corpus_run: {name}: rfn_check refused the "
                          f"certificate for {r['name']!r}:\n"
                          f"{res.stderr.strip()}{res.stdout.strip()}",
                          file=sys.stderr)
            else:
                print(f"corpus_run: {name}: no certificate emitted for "
                      f"conclusive property {r['name']!r}", file=sys.stderr)
        properties.append({"name": r["name"], "verdict": r["verdict"],
                           "certified": certified})
    return {"file": name, "status": "ok", "seconds": seconds,
            "peak_rss_bytes": peak_rss_bytes, "cpu_ms": cpu_ms,
            "properties": properties, "engine_wins": wins}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cli", required=True, help="path to the rfn CLI binary")
    ap.add_argument("--check", required=True,
                    help="path to the rfn_check binary")
    ap.add_argument("--corpus", default="tests/corpus",
                    help="directory of .aag/.aig files (default tests/corpus)")
    ap.add_argument("--out", required=True,
                    help="where to write the rfn-corpus-v2 JSON summary")
    ap.add_argument("--timeout-per-file", type=float, default=120.0,
                    help="watchdog budget per file in seconds (default 120)")
    ap.add_argument("--keep-work", metavar="DIR",
                    help="keep certificates/traces in DIR instead of a "
                         "temporary directory")
    args = ap.parse_args()

    try:
        files = sorted(f for f in os.listdir(args.corpus)
                       if f.endswith(AIGER_SUFFIXES))
    except OSError as err:
        sys.exit(f"corpus_run: cannot list {args.corpus}: {err}")
    if not files:
        sys.exit(f"corpus_run: no .aag/.aig files in {args.corpus}")

    def run_all(workdir):
        records = []
        for f in files:
            rec = run_file(args.cli, args.check,
                           os.path.join(args.corpus, f), workdir,
                           args.timeout_per_file)
            certified = sum(p["certified"] for p in rec["properties"])
            print(f"corpus_run: {rec['file']}: {rec['status']} "
                  f"({len(rec['properties'])} properties, "
                  f"{certified} certified, {rec['seconds']:.2f}s)")
            records.append(rec)
        return records

    if args.keep_work:
        os.makedirs(args.keep_work, exist_ok=True)
        records = run_all(args.keep_work)
    else:
        with tempfile.TemporaryDirectory(prefix="rfn-corpus-") as workdir:
            records = run_all(workdir)

    verdicts = collections.Counter()
    certified = 0
    n_props = 0
    for rec in records:
        for p in rec["properties"]:
            verdicts[p["verdict"]] += 1
            certified += p["certified"]
            n_props += 1
    doc = {
        "schema": SCHEMA,
        "corpus": args.corpus,
        "files": records,
        "totals": {
            "files": len(records),
            "properties": n_props,
            "verdicts": {v: verdicts.get(v, 0)
                         for v in ("T", "F", "?", "resource-out")},
            "certified": certified,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    bad = [r["file"] for r in records if r["status"] != "ok"]
    print(f"corpus_run: {len(records)} files, {n_props} properties "
          f"({verdicts.get('T', 0)} hold, {verdicts.get('F', 0)} fail, "
          f"{certified} certified) -> {args.out}")
    if bad:
        print(f"corpus_run: non-ok files: {', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
