// rfn — command-line front door to the verifier.
//
//   rfn verify   <design> --bad SIGNAL [options]   property verification
//   rfn coverage <design> --signals a,b,c [options] unreachable-state analysis
//   rfn translate <design> [--format blif|aag|aig]  design format conversion
//   rfn stats    <design>                           design statistics
//
// <design> is a .v (Verilog subset), .blif, or AIGER 1.9 .aag/.aig file
// (format chosen by extension; --aiger forces AIGER for other names), or
// builtin:fifo|processor|iu|usb for the shipped generated designs (small
// parameterizations; CI's batch runs use these). For AIGER designs every
// bad-state property (or output, pre-1.9 style) becomes a verification
// obligation: with no --bad/--props the whole set runs as one batch
// session, so cone clustering, the ReuseCache, and all engines apply
// unchanged. Common options:
//   --time-limit S     wall-clock budget (default 300)
//   --workers N        engine-portfolio worker threads (default 0: sequential)
//   --engine LIST      engines entering the races, comma-separated subset of
//                      bdd,atpg,sim,sat (repeatable; default: all four).
//                      Unknown names are rejected up front. Only bdd can
//                      prove HOLDS; a list without it can only falsify.
//   --certify          build an rfn-cert-v1 witness for the verdict (an
//                      inductive invariant for HOLDS, the error trace for
//                      VIOLATED; see src/cert/format.hpp) and discharge it
//                      through the independent SAT checker — the same check
//                      tools/rfn_check.cpp runs out of process. Batch runs
//                      certify every HOLDS/VIOLATED member and add one
//                      "certificate" record per member to the rfn-trace-v2
//                      artifact
//   --cert-out FILE    write the single-run witness JSON to FILE (implies
//                      --certify)
//   --cert-dir DIR     batch runs: write each member's witness to
//                      DIR/<property>.cert.json (implies --certify)
//   --traces N         abstract traces per iteration (default 1)
//   --no-approx        disable the overlapping-partition fallback
//   --dump-trace       print the error trace on Fails
//   --top NAME         top module for multi-module Verilog
//   --trace-json FILE  write the CEGAR event trace as JSON Lines (one object
//                      per iteration plus a final summary; see
//                      src/core/trace_json.hpp for the schema)
//   --trace-spans FILE write a causal span trace in Chrome trace-event JSON
//                      (open in Perfetto / chrome://tracing, or analyze with
//                      tools/trace_report.py)
//   --budget-ms N      resource-watchdog wall budget; on overrun the run
//                      degrades to the resource-out verdict
//   --budget-bdd-nodes N  watchdog budget on BDD live nodes (memory proxy)
//   --budget-mem-mb N  watchdog budget on process RSS (MiB, sampled from
//                      /proc/self/statm); on overrun the run degrades to
//                      resource-out with the trip named "mem-budget"
//   --prof-json FILE   write an rfn-prof-v1 resource profile: per-engine
//                      thread-CPU, per-subsystem (bdd/sat) peak arena bytes,
//                      and the RSS timeline sampled by the watchdog thread
//                      (see src/util/prof.hpp for the schema; validate with
//                      tools/trace_report.py --prof FILE)
//   --prof-folded FILE write collapsed-stack self-time lines aggregated from
//                      the span rings (flamegraph.pl input; implies span
//                      tracing for the run even without --trace-spans)
//   --metrics          dump the full metrics registry as JSON on stdout
//
// Batch verification (a VerifySession instead of one RfnVerifier): repeat
// --bad, or point --props at a file with one property per line:
//   SIGNAL [name=LABEL] [time-limit=S] [max-iterations=N] [traces=N]
//          [budget-ms=N] [budget-bdd-nodes=N] [budget-mem-mb=N]
//                                                    (# starts a comment)
// Properties carrying per-line overrides run solo; the rest are clustered
// by register-cone overlap and answered through shared abstraction runs.
// With more than one property, --trace-json emits the rfn-trace-v2 batch
// schema (one "property" record each + a "batch-summary"); with exactly one
// it emits rfn-trace-v1 as before. Batch options:
//   --cluster-overlap X   Jaccard cone-overlap threshold (default 0.5)
//   --max-cluster N       max properties per shared run (default 4)
//   --session-workers N   cluster jobs run concurrently (default 0: inline)
//   --batch-budget-ms N   whole-batch wall budget, split fair-share
//   --no-reuse            disable the cross-property reuse cache
//   --batch               force the session path (and the rfn-trace-v2
//                         artifact schema) even for a single property —
//                         corpus harnesses rely on one parser for all runs
//
// AIGER-specific options:
//   --aiger               treat <design> as AIGER regardless of extension
//   --witness-dir DIR     batch runs: drop an AIGER-convention witness per
//                         conclusive property into DIR/<property>.wit
//                         ("1\nb<k>\n<state>\n<inputs per cycle>...\n." for
//                         VIOLATED, "0\nb<k>\n." for HOLDS)
//   --aiger-witness FILE  single runs: the same, to one file

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "aiger/aiger.hpp"
#include "cert/format.hpp"
#include "core/certificate.hpp"
#include "core/coverage.hpp"
#include "core/rfn.hpp"
#include "core/session.hpp"
#include "core/trace_json.hpp"
#include "designs/builtin.hpp"
#include "netlist/analysis.hpp"
#include "netlist/blif.hpp"
#include "netlist/writer.hpp"
#include "rtlv/elaborate.hpp"
#include "util/options.hpp"
#include "util/prof.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

using namespace rfn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rfn <verify|coverage|translate|stats> <design.v|design.blif> "
               "[options]\n       see the header of tools/rfn_cli.cpp for options\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(),
                                                suffix.size(), suffix) == 0;
}

/// The shipped generated designs, loadable without a file: builtin:fifo,
/// builtin:processor, builtin:iu, builtin:usb (small parameterizations —
/// the CI batch runs use these). Property-less designs expose their
/// coverage registers as named outputs (iu0..iu4, usb1_0.., usb2_0..) so
/// --bad / --props can target them.
Netlist load_builtin(const std::string& name, bool* ok) {
  Netlist n = designs::make_builtin(name, ok);
  if (!*ok)
    std::fprintf(stderr, "rfn: unknown builtin design '%s'\n", name.c_str());
  return n;
}

/// Loads a design of any supported format. For AIGER inputs, `aig` (when
/// non-null) receives the property list and header shape; its netlist member
/// is moved into the return value.
Netlist load_design(const std::string& path, const Options& opts, bool* ok,
                    aiger::AigerDesign* aig = nullptr) {
  *ok = true;
  if (path.rfind("builtin:", 0) == 0) return load_builtin(path.substr(8), ok);
  std::ifstream in(path, std::ios::binary);  // binary .aig is not line text
  if (!in) {
    std::fprintf(stderr, "rfn: cannot open %s\n", path.c_str());
    *ok = false;
    return Netlist{};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (opts.get_bool("aiger", false) || ends_with(path, ".aag") ||
      ends_with(path, ".aig")) {
    aiger::AigerDesign local;
    aiger::AigerDesign& d = aig ? *aig : local;
    std::string error;
    if (!aiger::read_aiger(buf.str(), &d, &error)) {
      std::fprintf(stderr, "rfn: %s: %s\n", path.c_str(), error.c_str());
      *ok = false;
      return Netlist{};
    }
    return std::move(d.netlist);
  }
  if (ends_with(path, ".blif")) return read_blif(buf.str());
  return rtlv::elaborate_verilog(buf.str(), opts.get("top", "")).netlist;
}

GateId find_signal(const Netlist& n, const std::string& name) {
  GateId g = n.find(name);
  if (g == kNullGate) g = n.output(name);
  return g;
}

std::string sanitize_file_stem(const std::string& property) {
  std::string out;
  for (const char c : property) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += keep ? c : '_';
  }
  return out;
}

std::string cert_file_name(const std::string& property) {
  return sanitize_file_stem(property) + ".cert.json";
}

/// AIGER witnesses name properties by index ("b<k>"): the index within the
/// source file's bad list when the design came from AIGER, else the
/// property's position in the run.
size_t witness_index(const std::vector<aiger::AigerProperty>& aprops,
                     const std::string& name, size_t fallback) {
  for (size_t i = 0; i < aprops.size(); ++i)
    if (aprops[i].name == name) return i;
  return fallback;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (out) out << body;
  if (!out) std::fprintf(stderr, "rfn: cannot write %s\n", path.c_str());
  return static_cast<bool>(out);
}

/// Builds + checks the witness for one concluded property and flattens the
/// outcome into the rfn-trace-v2 certificate record. `cert_dir` non-empty
/// writes the witness JSON to DIR/<property>.cert.json.
CertificateArtifact certify_property(const Netlist& design, GateId bad,
                                     const std::string& name, Verdict verdict,
                                     const Trace& trace,
                                     const std::vector<GateId>& final_registers,
                                     const std::string& cert_dir,
                                     CertificateRecord* rec, bool* io_ok) {
  CertificateArtifact art = certify_with_witness(design, bad, name, verdict,
                                                 trace, final_registers);
  rec->property = name;
  rec->kind = cert::cert_kind_name(art.certificate.kind);
  rec->ok = art.checked;
  rec->clauses = art.certificate.clauses.size();
  rec->trace_cycles = art.certificate.trace.cycles();
  rec->obligation = art.checked ? "" : (art.built ? art.obligation : "extraction");
  rec->seconds = art.seconds;
  if (art.built && !cert_dir.empty()) {
    const std::string path = cert_dir + "/" + cert_file_name(name);
    std::ofstream out(path);
    if (out) {
      out << cert::to_json(art.certificate);
    } else {
      std::fprintf(stderr, "rfn: cannot write %s\n", path.c_str());
      *io_ok = false;
    }
  }
  return art;
}

/// --prof-json epilogue: appends one final direct RSS sample (so the
/// timeline is never empty for runs shorter than a watchdog poll), stops the
/// log, assembles the rfn-prof-v1 document against the run's metrics
/// baseline, and writes it.
bool write_prof_json_file(const std::string& path,
                          const MetricsSnapshot& baseline, double wall_s,
                          double cpu_s, size_t workers) {
  prof::RssLog::global().sample();
  prof::RssLog::global().disable();
  const MetricsSnapshot now = MetricsRegistry::global().snapshot();
  const json::Value doc =
      prof::build_prof_json(baseline, now, wall_s, cpu_s, workers);
  std::ofstream out(path);
  if (out) out << doc.dump(2) << "\n";
  if (!out) std::fprintf(stderr, "rfn: cannot write %s\n", path.c_str());
  return static_cast<bool>(out);
}

/// --prof-folded: collapsed-stack self-time lines from the span rings
/// (tracing must have been enabled for the run and disabled again).
bool write_prof_folded_file(const std::string& path) {
  return write_text_file(
      path, prof::folded_stacks(SpanTracer::global().to_chrome_json()));
}

/// Rejects invalid options with the messages from RfnOptions::validate()
/// instead of letting the run clamp or abort mid-flight.
bool report_invalid(const RfnOptions& rfn_opts) {
  const std::vector<std::string> errors = rfn_opts.validate();
  for (const std::string& e : errors)
    std::fprintf(stderr, "rfn: invalid options: %s\n", e.c_str());
  return !errors.empty();
}

/// Parses one --props line: "SIGNAL [key=value...]". Returns false (with a
/// message) on unknown signals, malformed overrides, or unknown keys.
bool parse_props_line(const Netlist& design, const std::string& line,
                      size_t lineno, PropertyRequest* out) {
  std::stringstream ss(line);
  std::string signal;
  ss >> signal;
  const GateId bad = find_signal(design, signal);
  if (bad == kNullGate) {
    std::fprintf(stderr, "rfn: props line %zu: no signal named '%s'\n", lineno,
                 signal.c_str());
    return false;
  }
  out->bad = bad;
  std::string tok;
  while (ss >> tok) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "rfn: props line %zu: expected key=value, got '%s'\n",
                   lineno, tok.c_str());
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "name") {
      out->name = value;
    } else if (key == "time-limit") {
      out->overrides.time_limit_s = std::stod(value);
    } else if (key == "max-iterations") {
      out->overrides.max_iterations = std::stoul(value);
    } else if (key == "traces") {
      out->overrides.traces_per_iteration = std::stoul(value);
    } else if (key == "budget-ms") {
      out->overrides.budget_ms = std::stod(value);
    } else if (key == "budget-bdd-nodes") {
      out->overrides.budget_bdd_nodes = std::stoll(value);
    } else if (key == "budget-mem-mb") {
      out->overrides.budget_mem_mb = std::stoll(value);
    } else {
      std::fprintf(stderr, "rfn: props line %zu: unknown key '%s'\n", lineno,
                   key.c_str());
      return false;
    }
  }
  return true;
}

int cmd_verify_batch(const Netlist& design, const Options& opts,
                     std::vector<PropertyRequest> props,
                     const RfnOptions& rfn_opts,
                     const std::vector<aiger::AigerProperty>& aprops) {
  SessionOptions sopt;
  sopt.defaults = rfn_opts;
  sopt.cluster_overlap = opts.get_double("cluster-overlap", 0.5);
  sopt.max_cluster_size = static_cast<size_t>(opts.get_int("max-cluster", 4));
  sopt.workers = static_cast<size_t>(opts.get_int("session-workers", 0));
  sopt.batch_budget_ms = opts.get_double("batch-budget-ms", -1.0);
  sopt.reuse = !opts.get_bool("no-reuse", false);

  const std::string span_path = opts.get("trace-spans", "");
  const std::string prof_json_path = opts.get("prof-json", "");
  const std::string prof_folded_path = opts.get("prof-folded", "");
  const bool trace_spans = !span_path.empty() || !prof_folded_path.empty();
  if (trace_spans) {
    SpanTracer::global().enable();
    SpanTracer::global().set_thread_name("main");
  }
  if (!prof_json_path.empty()) prof::RssLog::global().enable();
  const int64_t pcpu0 = prof::process_cpu_ns();

  const MetricsSnapshot baseline = MetricsRegistry::global().snapshot();
  const Stopwatch watch;
  VerifySession session(design, sopt);
  const std::vector<PropertyResult> results = session.run(props);
  const double seconds = watch.seconds();
  const double proc_cpu_s =
      static_cast<double>(prof::process_cpu_ns() - pcpu0) * 1e-9;

  if (trace_spans) {
    SpanTracer::global().disable();
    if (!span_path.empty()) {
      std::ofstream out(span_path);
      if (!out) {
        std::fprintf(stderr, "rfn: cannot write %s\n", span_path.c_str());
        return 2;
      }
      SpanTracer::global().write_chrome_json(out);
    }
    if (!prof_folded_path.empty() && !write_prof_folded_file(prof_folded_path))
      return 2;
  }
  if (!prof_json_path.empty() &&
      !write_prof_json_file(prof_json_path, baseline, seconds, proc_cpu_s,
                            sopt.defaults.portfolio_workers))
    return 2;
  // --certify: every conclusive member verdict gains an rfn-cert-v1 witness
  // (trace for VIOLATED, inductive invariant on the final abstraction for
  // HOLDS) discharged through the independent SAT checker before the trace
  // artifact is written, so the certificate records land in rfn-trace-v2.
  // For clustered verdicts the shared run's final register set certifies the
  // member property: the member's bad signal implies the disjunction root,
  // so the abstraction that proved the disjunction unreachable covers the
  // member too.
  const std::string cert_dir = opts.get("cert-dir", "");
  const bool do_certify = opts.get_bool("certify", false) || !cert_dir.empty();
  std::vector<CertificateRecord> cert_records;
  bool certified_ok = true, cert_io_ok = true;
  if (do_certify) {
    if (!cert_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(cert_dir, ec);
    }
    for (const PropertyResult& r : results) {
      if (r.verdict != Verdict::Holds && r.verdict != Verdict::Fails) continue;
      CertificateRecord rec;
      certify_property(design, r.bad, r.name, r.verdict, r.trace,
                       r.stats.final_registers, cert_dir, &rec, &cert_io_ok);
      if (!rec.ok) certified_ok = false;
      cert_records.push_back(std::move(rec));
    }
  }

  // --witness-dir: conclusive verdicts additionally export AIGER-convention
  // witnesses, consumable by third-party checkers (aigsim-style stimulus for
  // VIOLATED, a claim line for HOLDS).
  const std::string wit_dir = opts.get("witness-dir", "");
  bool wit_io_ok = true;
  if (!wit_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(wit_dir, ec);
    for (size_t i = 0; i < results.size(); ++i) {
      const PropertyResult& r = results[i];
      const size_t idx = witness_index(aprops, r.name, i);
      std::string body;
      if (r.verdict == Verdict::Holds) {
        body = aiger::write_witness_holds(idx);
      } else if (r.verdict == Verdict::Fails) {
        body = aiger::write_witness_fails(design, idx, r.trace);
      } else {
        continue;
      }
      const std::string path =
          wit_dir + "/" + sanitize_file_stem(r.name) + ".wit";
      if (!write_text_file(path, body)) wit_io_ok = false;
    }
  }

  const std::string trace_path = opts.get("trace-json", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "rfn: cannot write %s\n", trace_path.c_str());
      return 2;
    }
    write_batch_trace_json(out, results, session.clusters().size(), seconds,
                           &baseline, do_certify ? &cert_records : nullptr);
  }

  std::printf("batch: %zu properties in %zu clusters, %.2f s\n", results.size(),
              session.clusters().size(), seconds);
  std::printf("%-24s %-12s %7s %9s %5s %8s\n", "property", "verdict", "cluster",
              "clustered", "iters", "seconds");
  bool all_conclusive = true;
  for (const PropertyResult& r : results) {
    std::printf("%-24s %-12s %7zu %9s %5zu %8.2f\n", r.name.c_str(),
                r.verdict == Verdict::Holds         ? "HOLDS"
                : r.verdict == Verdict::Fails       ? "VIOLATED"
                : r.verdict == Verdict::ResourceOut ? "RESOURCE-OUT"
                                                    : "UNKNOWN",
                r.cluster, r.clustered ? "yes" : "no", r.stats.iterations,
                r.stats.seconds);
    if (r.verdict != Verdict::Holds && r.verdict != Verdict::Fails)
      all_conclusive = false;
  }
  for (const CertificateRecord& rec : cert_records) {
    if (rec.ok) {
      std::printf("certificate %-24s OK (%s)\n", rec.property.c_str(),
                  rec.kind.c_str());
    } else {
      std::printf("certificate %-24s FAILED — obligation %s\n",
                  rec.property.c_str(), rec.obligation.c_str());
    }
  }
  if (opts.get_bool("metrics", false))
    std::printf("metrics: %s\n",
                MetricsRegistry::global().to_json(&baseline).dump(2).c_str());
  if (!cert_io_ok || !wit_io_ok) return 2;
  if (!certified_ok) return 3;
  return all_conclusive ? 0 : 1;
}

int cmd_verify(const Netlist& design, const Options& opts,
               const std::vector<aiger::AigerProperty>& aprops) {
  RfnOptions rfn_opts;
  rfn_opts.time_limit_s = opts.get_double("time-limit", 300.0);
  rfn_opts.traces_per_iteration = static_cast<size_t>(opts.get_int("traces", 1));
  rfn_opts.approx_fallback = !opts.get_bool("no-approx", false);
  rfn_opts.portfolio_workers = static_cast<size_t>(opts.get_int("workers", 0));
  rfn_opts.budget_ms = opts.get_double("budget-ms", -1.0);
  rfn_opts.budget_bdd_nodes = opts.get_int("budget-bdd-nodes", 0);
  rfn_opts.budget_mem_mb = opts.get_int("budget-mem-mb", 0);
  // --prof-json wants the RSS timeline: the watchdog monitor thread samples
  // /proc/self/statm each poll even when no budget is set.
  rfn_opts.sample_rss = !opts.get("prof-json", "").empty();
  for (const std::string& list : opts.get_all("engine")) {
    std::stringstream es(list);
    std::string e;
    while (std::getline(es, e, ','))
      if (!e.empty()) rfn_opts.engines.push_back(e);
  }
  if (report_invalid(rfn_opts)) return 2;

  // Collect the property set: every --bad plus every --props line. More
  // than one property routes through a VerifySession.
  std::vector<PropertyRequest> props;
  for (const std::string& bad_name : opts.get_all("bad")) {
    PropertyRequest p;
    p.bad = find_signal(design, bad_name);
    if (p.bad == kNullGate) {
      std::fprintf(stderr, "rfn: no signal named '%s'\n", bad_name.c_str());
      return 2;
    }
    // Keep the name the user asked for: two --bad outputs can resolve to
    // same-named gates (the iu coverage aliases), and --cert-dir derives
    // witness file names from the property name.
    p.name = bad_name;
    props.push_back(std::move(p));
  }
  const std::string props_path = opts.get("props", "");
  if (!props_path.empty()) {
    std::ifstream in(props_path);
    if (!in) {
      std::fprintf(stderr, "rfn: cannot open %s\n", props_path.c_str());
      return 2;
    }
    std::string line;
    for (size_t lineno = 1; std::getline(in, line); ++lineno) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      PropertyRequest p;
      if (!parse_props_line(design, line, lineno, &p)) return 2;
      props.push_back(std::move(p));
    }
  }
  // An AIGER design with no explicit selection verifies its whole property
  // list (each bad output, or each output pre-1.9 style) as one batch.
  if (props.empty() && !aprops.empty()) {
    for (const aiger::AigerProperty& ap : aprops) {
      PropertyRequest p;
      p.name = ap.name;
      p.bad = ap.signal;
      props.push_back(std::move(p));
    }
  }
  if (props.size() > 1 || opts.get_bool("batch", false)) {
    if (props.empty()) {
      // --batch with no property selection: the conventional default.
      PropertyRequest p;
      p.name = opts.get("bad", "bad");
      p.bad = find_signal(design, p.name);
      if (p.bad == kNullGate) {
        std::fprintf(stderr, "rfn: no signal named '%s'\n", p.name.c_str());
        return 2;
      }
      props.push_back(std::move(p));
    }
    return cmd_verify_batch(design, opts, std::move(props), rfn_opts, aprops);
  }

  const std::string bad_name =
      props.empty() ? opts.get("bad", "bad")
                    : (props.front().name.empty() ? opts.get("bad", "bad")
                                                  : props.front().name);
  const GateId bad =
      props.empty() ? find_signal(design, bad_name) : props.front().bad;
  if (bad == kNullGate) {
    std::fprintf(stderr, "rfn: no signal named '%s'\n", bad_name.c_str());
    return 2;
  }
  if (!props.empty() && props.front().overrides.any()) {
    // A one-line --props file still honors its per-property overrides.
    const PropertyRequest::Overrides& o = props.front().overrides;
    if (o.time_limit_s) rfn_opts.time_limit_s = *o.time_limit_s;
    if (o.max_iterations) rfn_opts.max_iterations = *o.max_iterations;
    if (o.traces_per_iteration)
      rfn_opts.traces_per_iteration = *o.traces_per_iteration;
    if (o.budget_ms) rfn_opts.budget_ms = *o.budget_ms;
    if (o.budget_bdd_nodes) rfn_opts.budget_bdd_nodes = *o.budget_bdd_nodes;
    if (o.budget_mem_mb) rfn_opts.budget_mem_mb = *o.budget_mem_mb;
    if (report_invalid(rfn_opts)) return 2;
  }

  const std::string span_path = opts.get("trace-spans", "");
  const std::string prof_json_path = opts.get("prof-json", "");
  const std::string prof_folded_path = opts.get("prof-folded", "");
  const bool trace_spans = !span_path.empty() || !prof_folded_path.empty();
  if (trace_spans) {
    SpanTracer::global().enable();
    SpanTracer::global().set_thread_name("main");
  }
  if (!prof_json_path.empty()) prof::RssLog::global().enable();
  const int64_t pcpu0 = prof::process_cpu_ns();

  RfnVerifier verifier(design, bad, rfn_opts);
  const RfnResult result = verifier.run();
  const double proc_cpu_s =
      static_cast<double>(prof::process_cpu_ns() - pcpu0) * 1e-9;

  if (trace_spans) {
    // run() has joined every thread it started (races and watchdog), so the
    // buffers are quiescent here.
    SpanTracer::global().disable();
    if (!span_path.empty()) {
      std::ofstream out(span_path);
      if (!out) {
        std::fprintf(stderr, "rfn: cannot write %s\n", span_path.c_str());
        return 2;
      }
      SpanTracer::global().write_chrome_json(out);
    }
    if (!prof_folded_path.empty() && !write_prof_folded_file(prof_folded_path))
      return 2;
  }
  if (!prof_json_path.empty() &&
      !write_prof_json_file(prof_json_path, result.metrics_baseline,
                            result.seconds, proc_cpu_s,
                            rfn_opts.portfolio_workers))
    return 2;

  const std::string trace_path = opts.get("trace-json", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "rfn: cannot write %s\n", trace_path.c_str());
      return 2;
    }
    write_trace_json(out, result);
  }

  std::printf("verdict: %s\n",
              result.verdict == Verdict::Holds         ? "HOLDS"
              : result.verdict == Verdict::Fails       ? "VIOLATED"
              : result.verdict == Verdict::ResourceOut ? "RESOURCE-OUT"
                                                       : "UNKNOWN");
  if (result.budget_trip.tripped)
    std::printf("budget trip: %s at %.3f s (bdd nodes %lld, rss %.1f MiB)\n",
                result.budget_trip.reason.c_str(), result.budget_trip.at_seconds,
                static_cast<long long>(result.budget_trip.bdd_nodes),
                static_cast<double>(result.budget_trip.rss_bytes) /
                    (1 << 20));
  std::printf("iterations: %zu, abstract model: %zu / %zu registers, %.2f s\n",
              result.iterations, result.final_abstract_regs, design.num_regs(),
              result.seconds);
  if (!result.note.empty()) std::printf("note: %s\n", result.note.c_str());
  // Engine effort and race outcomes come from the metrics registry, so they
  // are reported for sequential (--workers 0) runs too — the races still
  // happen, just inline in priority order.
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  std::printf("engines:\n");
  std::fputs(format_engine_stats(metrics).c_str(), stdout);
  std::printf("portfolio (%zu workers):\n", rfn_opts.portfolio_workers);
  std::fputs(format_portfolio_stats(metrics).c_str(), stdout);
  if (opts.get_bool("metrics", false))
    std::printf("metrics: %s\n",
                MetricsRegistry::global().to_json().dump(2).c_str());
  if (result.verdict == Verdict::Fails) {
    std::printf("error trace: %zu cycles\n", result.error_trace.cycles());
    if (opts.get_bool("dump-trace", false))
      std::fputs(trace_to_string(design, result.error_trace).c_str(), stdout);
  }
  const std::string aiger_wit = opts.get("aiger-witness", "");
  if (!aiger_wit.empty() &&
      (result.verdict == Verdict::Holds || result.verdict == Verdict::Fails)) {
    const size_t idx = witness_index(aprops, bad_name, 0);
    const std::string body =
        result.verdict == Verdict::Holds
            ? aiger::write_witness_holds(idx)
            : aiger::write_witness_fails(design, idx, result.error_trace);
    if (!write_text_file(aiger_wit, body)) return 2;
  }
  const std::string cert_out = opts.get("cert-out", "");
  if (opts.get_bool("certify", false) || !cert_out.empty()) {
    const CertificateArtifact art = certify_with_witness(
        design, bad, bad_name, result.verdict, result.error_trace,
        verifier.abstract_registers());
    std::string what = art.detail;
    if (!art.checked && art.built)
      what = "obligation " + art.obligation + ": " + what;
    if (art.checked)
      what += std::string(" [") + cert::cert_kind_name(art.certificate.kind) + "]";
    std::printf("certificate: %s — %s\n", art.checked ? "OK" : "FAILED",
                what.c_str());
    if (art.built && !cert_out.empty()) {
      std::ofstream out(cert_out);
      if (!out) {
        std::fprintf(stderr, "rfn: cannot write %s\n", cert_out.c_str());
        return 2;
      }
      out << cert::to_json(art.certificate);
      std::printf("certificate written: %s\n", cert_out.c_str());
    }
    if (!art.checked && result.verdict != Verdict::Unknown &&
        result.verdict != Verdict::ResourceOut)
      return 3;
  }
  return result.verdict == Verdict::Holds || result.verdict == Verdict::Fails
             ? 0
             : 1;
}

int cmd_coverage(const Netlist& design, const Options& opts) {
  const std::string list = opts.get("signals", "");
  if (list.empty()) {
    std::fprintf(stderr, "rfn: coverage needs --signals a,b,c\n");
    return 2;
  }
  std::vector<GateId> cov;
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    const GateId g = find_signal(design, name);
    if (g == kNullGate || !design.is_reg(g)) {
      std::fprintf(stderr, "rfn: coverage signal '%s' is not a register\n",
                   name.c_str());
      return 2;
    }
    cov.push_back(g);
  }

  CoverageOptions cov_opts;
  cov_opts.time_limit_s = opts.get_double("time-limit", 300.0);
  const CoverageResult r = rfn_coverage_analysis(design, cov, cov_opts);
  std::printf("coverage states: %zu total\n", r.total_states);
  std::printf("  unreachable: %zu (proved on the abstraction)\n", r.unreachable);
  std::printf("  reachable:   %zu (witnessed by concrete traces)\n", r.reachable);
  std::printf("  unknown:     %zu\n", r.unknown);
  std::printf("abstract model grew to %zu registers over %zu iterations (%.1f s)\n",
              r.final_abstract_regs, r.iterations, r.seconds);
  if (opts.get_bool("list-unreachable", false)) {
    for (size_t s = 0; s < r.state_class.size(); ++s) {
      if (r.state_class[s] != 1) continue;
      std::string bits;
      for (size_t i = 0; i < cov.size(); ++i) bits += ((s >> i) & 1) ? '1' : '0';
      std::printf("  unreachable: %s\n", bits.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.positionals().size() < 2) return usage();
  const std::string& command = opts.positionals()[0];
  const std::string& path = opts.positionals()[1];

  bool ok = false;
  aiger::AigerDesign aig;
  const Netlist design = load_design(path, opts, &ok, &aig);
  if (!ok) return 2;
  std::printf("loaded %s: %s\n", path.c_str(), stats_line(design).c_str());
  if (!aig.properties.empty())
    std::printf("aiger: %zu propert%s (%zu bad, %zu outputs, %zu constraints%s)\n",
                aig.properties.size(),
                aig.properties.size() == 1 ? "y" : "ies", aig.num_bad,
                aig.num_outputs, aig.num_constraints,
                aig.constraints_folded ? ", folded" : "");

  if (command == "verify") return cmd_verify(design, opts, aig.properties);
  if (command == "coverage") return cmd_coverage(design, opts);
  if (command == "translate") {
    const std::string format = opts.get("format", "blif");
    std::string body;
    if (format == "blif") {
      body = write_blif(design, "rfn_translated");
    } else if (format == "aag" || format == "aig") {
      body = aiger::write_aiger(design, format == "aig");
    } else {
      std::fprintf(stderr, "rfn: unknown translate format '%s'\n",
                   format.c_str());
      return 2;
    }
    const std::string out_path = opts.get("out", "");
    if (out_path.empty()) {
      std::fwrite(body.data(), 1, body.size(), stdout);  // .aig is raw bytes
    } else if (!write_text_file(out_path, body)) {
      return 2;
    }
    return 0;
  }
  if (command == "stats") {
    for (const auto& [name, g] : design.outputs()) {
      const auto regs = coi_registers(design, {g});
      std::printf("output %-24s COI: %zu registers\n", name.c_str(), regs.size());
    }
    return 0;
  }
  return usage();
}
