// rfn — command-line front door to the verifier.
//
//   rfn verify   <design> --bad SIGNAL [options]   property verification
//   rfn coverage <design> --signals a,b,c [options] unreachable-state analysis
//   rfn translate <design> [--top MODULE]           Verilog -> BLIF
//   rfn stats    <design>                           design statistics
//
// <design> is a .v (Verilog subset) or .blif file; the format is chosen by
// extension. Common options:
//   --time-limit S     wall-clock budget (default 300)
//   --workers N        engine-portfolio worker threads (default 0: sequential)
//   --certify          independently re-check the verdict
//   --traces N         abstract traces per iteration (default 1)
//   --no-approx        disable the overlapping-partition fallback
//   --dump-trace       print the error trace on Fails
//   --top NAME         top module for multi-module Verilog
//   --trace-json FILE  write the CEGAR event trace as JSON Lines (one object
//                      per iteration plus a final summary; see
//                      src/core/trace_json.hpp for the schema)
//   --trace-spans FILE write a causal span trace in Chrome trace-event JSON
//                      (open in Perfetto / chrome://tracing, or analyze with
//                      tools/trace_report.py)
//   --budget-ms N      resource-watchdog wall budget; on overrun the run
//                      degrades to the resource-out verdict
//   --budget-bdd-nodes N  watchdog budget on BDD live nodes (memory proxy)
//   --metrics          dump the full metrics registry as JSON on stdout

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/certify.hpp"
#include "core/coverage.hpp"
#include "core/rfn.hpp"
#include "core/trace_json.hpp"
#include "netlist/analysis.hpp"
#include "netlist/blif.hpp"
#include "netlist/writer.hpp"
#include "rtlv/elaborate.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

using namespace rfn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rfn <verify|coverage|translate|stats> <design.v|design.blif> "
               "[options]\n       see the header of tools/rfn_cli.cpp for options\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(),
                                                suffix.size(), suffix) == 0;
}

Netlist load_design(const std::string& path, const Options& opts, bool* ok) {
  *ok = true;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rfn: cannot open %s\n", path.c_str());
    *ok = false;
    return Netlist{};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (ends_with(path, ".blif")) return read_blif(buf.str());
  return rtlv::elaborate_verilog(buf.str(), opts.get("top", "")).netlist;
}

GateId find_signal(const Netlist& n, const std::string& name) {
  GateId g = n.find(name);
  if (g == kNullGate) g = n.output(name);
  return g;
}

int cmd_verify(const Netlist& design, const Options& opts) {
  const std::string bad_name = opts.get("bad", "bad");
  const GateId bad = find_signal(design, bad_name);
  if (bad == kNullGate) {
    std::fprintf(stderr, "rfn: no signal named '%s'\n", bad_name.c_str());
    return 2;
  }

  RfnOptions rfn_opts;
  rfn_opts.time_limit_s = opts.get_double("time-limit", 300.0);
  rfn_opts.traces_per_iteration = static_cast<size_t>(opts.get_int("traces", 1));
  rfn_opts.approx_fallback = !opts.get_bool("no-approx", false);
  rfn_opts.portfolio_workers = static_cast<size_t>(opts.get_int("workers", 0));
  rfn_opts.budget_ms = opts.get_double("budget-ms", -1.0);
  rfn_opts.budget_bdd_nodes = opts.get_int("budget-bdd-nodes", 0);

  const std::string span_path = opts.get("trace-spans", "");
  if (!span_path.empty()) {
    SpanTracer::global().enable();
    SpanTracer::global().set_thread_name("main");
  }

  RfnVerifier verifier(design, bad, rfn_opts);
  const RfnResult result = verifier.run();

  if (!span_path.empty()) {
    // run() has joined every thread it started (races and watchdog), so the
    // buffers are quiescent here.
    SpanTracer::global().disable();
    std::ofstream out(span_path);
    if (!out) {
      std::fprintf(stderr, "rfn: cannot write %s\n", span_path.c_str());
      return 2;
    }
    SpanTracer::global().write_chrome_json(out);
  }

  const std::string trace_path = opts.get("trace-json", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "rfn: cannot write %s\n", trace_path.c_str());
      return 2;
    }
    write_trace_json(out, result);
  }

  std::printf("verdict: %s\n",
              result.verdict == Verdict::Holds         ? "HOLDS"
              : result.verdict == Verdict::Fails       ? "VIOLATED"
              : result.verdict == Verdict::ResourceOut ? "RESOURCE-OUT"
                                                       : "UNKNOWN");
  if (result.budget_trip.tripped)
    std::printf("budget trip: %s at %.3f s (bdd nodes %lld)\n",
                result.budget_trip.reason.c_str(), result.budget_trip.at_seconds,
                static_cast<long long>(result.budget_trip.bdd_nodes));
  std::printf("iterations: %zu, abstract model: %zu / %zu registers, %.2f s\n",
              result.iterations, result.final_abstract_regs, design.num_regs(),
              result.seconds);
  if (!result.note.empty()) std::printf("note: %s\n", result.note.c_str());
  // Engine effort and race outcomes come from the metrics registry, so they
  // are reported for sequential (--workers 0) runs too — the races still
  // happen, just inline in priority order.
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  std::printf("engines:\n");
  std::fputs(format_engine_stats(metrics).c_str(), stdout);
  std::printf("portfolio (%zu workers):\n", rfn_opts.portfolio_workers);
  std::fputs(format_portfolio_stats(metrics).c_str(), stdout);
  if (opts.get_bool("metrics", false))
    std::printf("metrics: %s\n",
                MetricsRegistry::global().to_json().dump(2).c_str());
  if (result.verdict == Verdict::Fails) {
    std::printf("error trace: %zu cycles\n", result.error_trace.cycles());
    if (opts.get_bool("dump-trace", false))
      std::fputs(trace_to_string(design, result.error_trace).c_str(), stdout);
  }
  if (opts.get_bool("certify", false)) {
    const CertifyResult cert =
        certify(design, bad, result, verifier.abstract_registers());
    std::printf("certificate: %s%s%s\n", cert.ok ? "OK" : "FAILED",
                cert.ok ? "" : " — ", cert.ok ? "" : cert.detail.c_str());
    if (!cert.ok && result.verdict != Verdict::Unknown &&
        result.verdict != Verdict::ResourceOut)
      return 3;
  }
  return result.verdict == Verdict::Holds || result.verdict == Verdict::Fails
             ? 0
             : 1;
}

int cmd_coverage(const Netlist& design, const Options& opts) {
  const std::string list = opts.get("signals", "");
  if (list.empty()) {
    std::fprintf(stderr, "rfn: coverage needs --signals a,b,c\n");
    return 2;
  }
  std::vector<GateId> cov;
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    const GateId g = find_signal(design, name);
    if (g == kNullGate || !design.is_reg(g)) {
      std::fprintf(stderr, "rfn: coverage signal '%s' is not a register\n",
                   name.c_str());
      return 2;
    }
    cov.push_back(g);
  }

  CoverageOptions cov_opts;
  cov_opts.time_limit_s = opts.get_double("time-limit", 300.0);
  const CoverageResult r = rfn_coverage_analysis(design, cov, cov_opts);
  std::printf("coverage states: %zu total\n", r.total_states);
  std::printf("  unreachable: %zu (proved on the abstraction)\n", r.unreachable);
  std::printf("  reachable:   %zu (witnessed by concrete traces)\n", r.reachable);
  std::printf("  unknown:     %zu\n", r.unknown);
  std::printf("abstract model grew to %zu registers over %zu iterations (%.1f s)\n",
              r.final_abstract_regs, r.iterations, r.seconds);
  if (opts.get_bool("list-unreachable", false)) {
    for (size_t s = 0; s < r.state_class.size(); ++s) {
      if (r.state_class[s] != 1) continue;
      std::string bits;
      for (size_t i = 0; i < cov.size(); ++i) bits += ((s >> i) & 1) ? '1' : '0';
      std::printf("  unreachable: %s\n", bits.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.positionals().size() < 2) return usage();
  const std::string& command = opts.positionals()[0];
  const std::string& path = opts.positionals()[1];

  bool ok = false;
  const Netlist design = load_design(path, opts, &ok);
  if (!ok) return 2;
  std::printf("loaded %s: %s\n", path.c_str(), stats_line(design).c_str());

  if (command == "verify") return cmd_verify(design, opts);
  if (command == "coverage") return cmd_coverage(design, opts);
  if (command == "translate") {
    std::fputs(write_blif(design, "rfn_translated").c_str(), stdout);
    return 0;
  }
  if (command == "stats") {
    for (const auto& [name, g] : design.outputs()) {
      const auto regs = coi_registers(design, {g});
      std::printf("output %-24s COI: %zu registers\n", name.c_str(), regs.size());
    }
    return 0;
  }
  return usage();
}
