// rfn — command-line front door to the verifier.
//
//   rfn verify   <design> --bad SIGNAL [options]   property verification
//   rfn coverage <design> --signals a,b,c [options] unreachable-state analysis
//   rfn translate <design> [--format blif|aag|aig]  design format conversion
//   rfn stats    <design>                           design statistics
//
// <design> is a .v (Verilog subset), .blif, or AIGER 1.9 .aag/.aig file
// (format chosen by extension; --aiger forces AIGER for other names), or
// builtin:fifo|processor|iu|usb for the shipped generated designs (small
// parameterizations; CI's batch runs use these). For AIGER designs every
// bad-state property (or output, pre-1.9 style) becomes a verification
// obligation: with no --bad/--props the whole set runs as one batch
// session, so cone clustering, the ReuseCache, and all engines apply
// unchanged. Common options:
//   --time-limit S     wall-clock budget (default 300)
//   --workers N        engine-portfolio worker threads (default 0: sequential)
//   --engine LIST      engines entering the races, comma-separated subset of
//                      bdd,atpg,sim,sat,pdr (repeatable; default: all five).
//                      Unknown names are rejected up front. Only bdd and pdr
//                      can prove HOLDS; a list without either can only
//                      falsify.
//   --proof-shrink     proof-based abstraction shrinking: drop included
//                      registers a Step-3 bounded-UNSAT core never touched
//                      (alternating grow/shrink; never changes a verdict)
//   --pdr-max-frames N IC3/PDR frame bound per race (default 128)
//   --pdr-time S       IC3/PDR wall budget per race (default 10, 0=unlimited)
//   --certify          build an rfn-cert-v1 witness for the verdict (an
//                      inductive invariant for HOLDS, the error trace for
//                      VIOLATED; see src/cert/format.hpp) and discharge it
//                      through the independent SAT checker — the same check
//                      tools/rfn_check.cpp runs out of process. Batch runs
//                      certify every HOLDS/VIOLATED member and add one
//                      "certificate" record per member to the rfn-trace-v2
//                      artifact
//   --cert-out FILE    write the single-run witness JSON to FILE (implies
//                      --certify)
//   --cert-dir DIR     batch runs: write each member's witness to
//                      DIR/<property>.cert.json (implies --certify)
//   --traces N         abstract traces per iteration (default 1)
//   --no-approx        disable the overlapping-partition fallback
//   --dump-trace       print the error trace on Fails
//   --top NAME         top module for multi-module Verilog
//   --trace-json FILE  write the CEGAR event trace as JSON Lines (one object
//                      per iteration plus a final summary; see
//                      src/core/trace_json.hpp for the schema)
//   --trace-spans FILE write a causal span trace in Chrome trace-event JSON
//                      (open in Perfetto / chrome://tracing, or analyze with
//                      tools/trace_report.py)
//   --budget-ms N      resource-watchdog wall budget; on overrun the run
//                      degrades to the resource-out verdict
//   --budget-bdd-nodes N  watchdog budget on BDD live nodes (memory proxy)
//   --budget-mem-mb N  watchdog budget on process RSS (MiB, sampled from
//                      /proc/self/statm); on overrun the run degrades to
//                      resource-out with the trip named "mem-budget"
//   --prof-json FILE   write an rfn-prof-v1 resource profile: per-engine
//                      thread-CPU, per-subsystem (bdd/sat) peak arena bytes,
//                      and the RSS timeline sampled by the watchdog thread
//                      (see src/util/prof.hpp for the schema; validate with
//                      tools/trace_report.py --prof FILE)
//   --prof-folded FILE write collapsed-stack self-time lines aggregated from
//                      the span rings (flamegraph.pl input; implies span
//                      tracing for the run even without --trace-spans)
//   --metrics          dump the full metrics registry as JSON on stdout
//
// Batch verification (a VerifySession instead of one RfnVerifier): repeat
// --bad, or point --props at a file with one property per line:
//   SIGNAL [name=LABEL] [time-limit=S] [max-iterations=N] [traces=N]
//          [budget-ms=N] [budget-bdd-nodes=N] [budget-mem-mb=N]
//                                                    (# starts a comment)
// Properties carrying per-line overrides run solo; the rest are clustered
// by register-cone overlap and answered through shared abstraction runs.
// With more than one property, --trace-json emits the rfn-trace-v2 batch
// schema (one "property" record each + a "batch-summary"); with exactly one
// it emits rfn-trace-v1 as before. Batch options:
//   --cluster-overlap X   Jaccard cone-overlap threshold (default 0.5)
//   --max-cluster N       max properties per shared run (default 4)
//   --session-workers N   cluster jobs run concurrently (default 0: inline)
//   --batch-budget-ms N   whole-batch wall budget, split fair-share
//   --no-reuse            disable the cross-property reuse cache
//   --batch               force the session path (and the rfn-trace-v2
//                         artifact schema) even for a single property —
//                         corpus harnesses rely on one parser for all runs
//
// AIGER-specific options:
//   --aiger               treat <design> as AIGER regardless of extension
//   --witness-dir DIR     batch runs: drop an AIGER-convention witness per
//                         conclusive property into DIR/<property>.wit
//                         ("1\nb<k>\n<state>\n<inputs per cycle>...\n." for
//                         VIOLATED, "0\nb<k>\n." for HOLDS)
//   --aiger-witness FILE  single runs: the same, to one file
//
// This binary is a thin flag → api::VerifyRequest translator: design
// loading is api::load_design, the batch path is api::run_verify (the same
// run path rfn_serve drives from the socket — a command line and an
// rfn-req-v1 document are the same computation), and the single-run path is
// api::run_single. What remains here is flag parsing, the stdout report,
// and the file epilogues (span/prof artifacts, cert/witness exports).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "aiger/aiger.hpp"
#include "api/api.hpp"
#include "cert/format.hpp"
#include "core/coverage.hpp"
#include "netlist/analysis.hpp"
#include "netlist/blif.hpp"
#include "netlist/writer.hpp"
#include "util/options.hpp"
#include "util/prof.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

using namespace rfn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rfn <verify|coverage|translate|stats> <design.v|design.blif> "
               "[options]\n       see the header of tools/rfn_cli.cpp for options\n");
  return 2;
}

std::string sanitize_file_stem(const std::string& property) {
  std::string out;
  for (const char c : property) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += keep ? c : '_';
  }
  return out;
}

std::string cert_file_name(const std::string& property) {
  return sanitize_file_stem(property) + ".cert.json";
}

/// AIGER witnesses name properties by index ("b<k>"): the index within the
/// source file's bad list when the design came from AIGER, else the
/// property's position in the run.
size_t witness_index(const std::vector<aiger::AigerProperty>& aprops,
                     const std::string& name, size_t fallback) {
  for (size_t i = 0; i < aprops.size(); ++i)
    if (aprops[i].name == name) return i;
  return fallback;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (out) out << body;
  if (!out) std::fprintf(stderr, "rfn: cannot write %s\n", path.c_str());
  return static_cast<bool>(out);
}

/// --prof-json epilogue: appends one final direct RSS sample (so the
/// timeline is never empty for runs shorter than a watchdog poll), stops the
/// log, assembles the rfn-prof-v1 document against the run's metrics
/// baseline, and writes it.
bool write_prof_json_file(const std::string& path,
                          const MetricsSnapshot& baseline, double wall_s,
                          double cpu_s, size_t workers) {
  prof::RssLog::global().sample();
  prof::RssLog::global().disable();
  const MetricsSnapshot now = MetricsRegistry::global().snapshot();
  const json::Value doc =
      prof::build_prof_json(baseline, now, wall_s, cpu_s, workers);
  std::ofstream out(path);
  if (out) out << doc.dump(2) << "\n";
  if (!out) std::fprintf(stderr, "rfn: cannot write %s\n", path.c_str());
  return static_cast<bool>(out);
}

/// --prof-folded: collapsed-stack self-time lines from the span rings
/// (tracing must have been enabled for the run and disabled again).
bool write_prof_folded_file(const std::string& path) {
  return write_text_file(
      path, prof::folded_stacks(SpanTracer::global().to_chrome_json()));
}

/// Rejects invalid options with the messages from RfnOptions::validate()
/// instead of letting the run clamp or abort mid-flight.
bool report_invalid(const RfnOptions& rfn_opts) {
  const std::vector<std::string> errors = rfn_opts.validate();
  for (const std::string& e : errors)
    std::fprintf(stderr, "rfn: invalid options: %s\n", e.c_str());
  return !errors.empty();
}

/// Span/prof instrumentation around a run: the flags are epilogue artifacts,
/// so both verify paths share the enable/disable/write bracketing.
struct ProfScope {
  std::string span_path, prof_json_path, prof_folded_path;
  bool trace_spans = false;
  int64_t pcpu0 = 0;

  explicit ProfScope(const Options& opts) {
    span_path = opts.get("trace-spans", "");
    prof_json_path = opts.get("prof-json", "");
    prof_folded_path = opts.get("prof-folded", "");
    trace_spans = !span_path.empty() || !prof_folded_path.empty();
    if (trace_spans) {
      SpanTracer::global().enable();
      SpanTracer::global().set_thread_name("main");
    }
    if (!prof_json_path.empty()) prof::RssLog::global().enable();
    pcpu0 = prof::process_cpu_ns();
  }

  double cpu_seconds() const {
    return static_cast<double>(prof::process_cpu_ns() - pcpu0) * 1e-9;
  }

  /// Writes the span/prof artifacts; call once after the run's threads have
  /// joined (the span buffers are quiescent then). False on I/O errors.
  bool finish(const MetricsSnapshot& baseline, double wall_s, double cpu_s,
              size_t workers) {
    if (trace_spans) {
      SpanTracer::global().disable();
      if (!span_path.empty()) {
        std::ofstream out(span_path);
        if (!out) {
          std::fprintf(stderr, "rfn: cannot write %s\n", span_path.c_str());
          return false;
        }
        SpanTracer::global().write_chrome_json(out);
      }
      if (!prof_folded_path.empty() &&
          !write_prof_folded_file(prof_folded_path))
        return false;
    }
    if (!prof_json_path.empty() &&
        !write_prof_json_file(prof_json_path, baseline, wall_s, cpu_s,
                              workers))
      return false;
    return true;
  }
};

int cmd_verify_batch(const api::LoadedDesign& design, const Options& opts,
                     api::VerifyRequest req) {
  const std::string cert_dir = opts.get("cert-dir", "");
  req.certify = opts.get_bool("certify", false) || !cert_dir.empty();

  // The trace file opens before the run so an unwritable path fails before
  // minutes of engine work, not after.
  const std::string trace_path = opts.get("trace-json", "");
  std::ofstream trace_out;
  if (!trace_path.empty()) {
    trace_out.open(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "rfn: cannot write %s\n", trace_path.c_str());
      return 2;
    }
  }
  api::StreamTraceSink file_sink(trace_out);

  ProfScope prof(opts);
  api::RunOutput out;
  std::string error;
  if (!api::run_verify(design, req, trace_path.empty() ? nullptr : &file_sink,
                       /*stream_properties=*/false, nullptr, &out, &error)) {
    std::fprintf(stderr, "rfn: %s\n", error.c_str());
    return 2;
  }
  if (!prof.finish(out.baseline, out.seconds, prof.cpu_seconds(),
                   req.options.portfolio_workers))
    return 2;

  // --cert-dir: run_verify built and checked the witnesses (they are already
  // in the rfn-trace-v2 records); writing them to disk is CLI business.
  bool certified_ok = true, cert_io_ok = true;
  if (req.certify && !cert_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cert_dir, ec);
  }
  for (size_t i = 0; i < out.cert_records.size(); ++i) {
    const CertificateRecord& rec = out.cert_records[i];
    if (!rec.ok) certified_ok = false;
    const CertificateArtifact& art = out.cert_artifacts[i];
    if (art.built && !cert_dir.empty()) {
      const std::string path = cert_dir + "/" + cert_file_name(rec.property);
      std::ofstream cert_out(path);
      if (cert_out) {
        cert_out << cert::to_json(art.certificate);
      } else {
        std::fprintf(stderr, "rfn: cannot write %s\n", path.c_str());
        cert_io_ok = false;
      }
    }
  }

  // --witness-dir: conclusive verdicts additionally export AIGER-convention
  // witnesses, consumable by third-party checkers (aigsim-style stimulus for
  // VIOLATED, a claim line for HOLDS).
  const std::string wit_dir = opts.get("witness-dir", "");
  bool wit_io_ok = true;
  if (!wit_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(wit_dir, ec);
    for (size_t i = 0; i < out.results.size(); ++i) {
      const PropertyResult& r = out.results[i];
      const size_t idx = witness_index(design.aiger_properties, r.name, i);
      std::string body;
      if (r.verdict == Verdict::Holds) {
        body = aiger::write_witness_holds(idx);
      } else if (r.verdict == Verdict::Fails) {
        body = aiger::write_witness_fails(design.netlist, idx, r.trace);
      } else {
        continue;
      }
      const std::string path =
          wit_dir + "/" + sanitize_file_stem(r.name) + ".wit";
      if (!write_text_file(path, body)) wit_io_ok = false;
    }
  }

  std::printf("batch: %zu properties in %zu clusters, %.2f s\n",
              out.results.size(), out.clusters, out.seconds);
  std::printf("%-24s %-12s %7s %9s %5s %8s\n", "property", "verdict", "cluster",
              "clustered", "iters", "seconds");
  bool all_conclusive = true;
  for (const PropertyResult& r : out.results) {
    std::printf("%-24s %-12s %7zu %9s %5zu %8.2f\n", r.name.c_str(),
                r.verdict == Verdict::Holds         ? "HOLDS"
                : r.verdict == Verdict::Fails       ? "VIOLATED"
                : r.verdict == Verdict::ResourceOut ? "RESOURCE-OUT"
                                                    : "UNKNOWN",
                r.cluster, r.clustered ? "yes" : "no", r.stats.iterations,
                r.stats.seconds);
    if (r.verdict != Verdict::Holds && r.verdict != Verdict::Fails)
      all_conclusive = false;
  }
  for (const CertificateRecord& rec : out.cert_records) {
    if (rec.ok) {
      std::printf("certificate %-24s OK (%s)\n", rec.property.c_str(),
                  rec.kind.c_str());
    } else {
      std::printf("certificate %-24s FAILED — obligation %s\n",
                  rec.property.c_str(), rec.obligation.c_str());
    }
  }
  if (opts.get_bool("metrics", false))
    std::printf("metrics: %s\n",
                MetricsRegistry::global().to_json(&out.baseline).dump(2).c_str());
  if (!cert_io_ok || !wit_io_ok) return 2;
  if (!certified_ok) return 3;
  return all_conclusive ? 0 : 1;
}

int cmd_verify_single(const api::LoadedDesign& design, const Options& opts,
                      const api::VerifyRequest& req, GateId bad,
                      const std::string& bad_name) {
  const Netlist& net = design.netlist;
  RfnOptions rfn_opts = req.options;
  if (!req.props.empty() && req.props.front().overrides.any()) {
    // A one-line --props file still honors its per-property overrides.
    const PropertyRequest::Overrides& o = req.props.front().overrides;
    if (o.time_limit_s) rfn_opts.time_limit_s = *o.time_limit_s;
    if (o.max_iterations) rfn_opts.max_iterations = *o.max_iterations;
    if (o.traces_per_iteration)
      rfn_opts.traces_per_iteration = *o.traces_per_iteration;
    if (o.budget_ms) rfn_opts.budget_ms = *o.budget_ms;
    if (o.budget_bdd_nodes) rfn_opts.budget_bdd_nodes = *o.budget_bdd_nodes;
    if (o.budget_mem_mb) rfn_opts.budget_mem_mb = *o.budget_mem_mb;
    if (report_invalid(rfn_opts)) return 2;
  }

  ProfScope prof(opts);
  const RfnResult result = api::run_single(net, bad, rfn_opts);
  if (!prof.finish(result.metrics_baseline, result.seconds, prof.cpu_seconds(),
                   rfn_opts.portfolio_workers))
    return 2;

  const std::string trace_path = opts.get("trace-json", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "rfn: cannot write %s\n", trace_path.c_str());
      return 2;
    }
    write_trace_json(out, result);
  }

  std::printf("verdict: %s\n",
              result.verdict == Verdict::Holds         ? "HOLDS"
              : result.verdict == Verdict::Fails       ? "VIOLATED"
              : result.verdict == Verdict::ResourceOut ? "RESOURCE-OUT"
                                                       : "UNKNOWN");
  if (result.budget_trip.tripped)
    std::printf("budget trip: %s at %.3f s (bdd nodes %lld, rss %.1f MiB)\n",
                result.budget_trip.reason.c_str(), result.budget_trip.at_seconds,
                static_cast<long long>(result.budget_trip.bdd_nodes),
                static_cast<double>(result.budget_trip.rss_bytes) /
                    (1 << 20));
  std::printf("iterations: %zu, abstract model: %zu / %zu registers, %.2f s\n",
              result.iterations, result.final_abstract_regs, net.num_regs(),
              result.seconds);
  if (!result.note.empty()) std::printf("note: %s\n", result.note.c_str());
  // Engine effort and race outcomes come from the metrics registry, so they
  // are reported for sequential (--workers 0) runs too — the races still
  // happen, just inline in priority order.
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  std::printf("engines:\n");
  std::fputs(format_engine_stats(metrics).c_str(), stdout);
  std::printf("portfolio (%zu workers):\n", rfn_opts.portfolio_workers);
  std::fputs(format_portfolio_stats(metrics).c_str(), stdout);
  if (opts.get_bool("metrics", false))
    std::printf("metrics: %s\n",
                MetricsRegistry::global().to_json().dump(2).c_str());
  if (result.verdict == Verdict::Fails) {
    std::printf("error trace: %zu cycles\n", result.error_trace.cycles());
    if (opts.get_bool("dump-trace", false))
      std::fputs(trace_to_string(net, result.error_trace).c_str(), stdout);
  }
  const std::string aiger_wit = opts.get("aiger-witness", "");
  if (!aiger_wit.empty() &&
      (result.verdict == Verdict::Holds || result.verdict == Verdict::Fails)) {
    const size_t idx = witness_index(design.aiger_properties, bad_name, 0);
    const std::string body =
        result.verdict == Verdict::Holds
            ? aiger::write_witness_holds(idx)
            : aiger::write_witness_fails(net, idx, result.error_trace);
    if (!write_text_file(aiger_wit, body)) return 2;
  }
  const std::string cert_out = opts.get("cert-out", "");
  if (opts.get_bool("certify", false) || !cert_out.empty()) {
    const CertificateArtifact art = certify_with_witness(
        net, bad, bad_name, result.verdict, result.error_trace,
        result.final_registers, {},
        result.pdr_invariant.present ? &result.pdr_invariant : nullptr);
    std::string what = art.detail;
    if (!art.checked && art.built)
      what = "obligation " + art.obligation + ": " + what;
    if (art.checked)
      what += std::string(" [") + cert::cert_kind_name(art.certificate.kind) + "]";
    std::printf("certificate: %s — %s\n", art.checked ? "OK" : "FAILED",
                what.c_str());
    if (art.built && !cert_out.empty()) {
      std::ofstream out(cert_out);
      if (!out) {
        std::fprintf(stderr, "rfn: cannot write %s\n", cert_out.c_str());
        return 2;
      }
      out << cert::to_json(art.certificate);
      std::printf("certificate written: %s\n", cert_out.c_str());
    }
    if (!art.checked && result.verdict != Verdict::Unknown &&
        result.verdict != Verdict::ResourceOut)
      return 3;
  }
  return result.verdict == Verdict::Holds || result.verdict == Verdict::Fails
             ? 0
             : 1;
}

int cmd_verify(const api::LoadedDesign& design, const Options& opts) {
  // Flags → api::VerifyRequest: the same struct a server request parses to.
  api::VerifyRequest req;
  req.options.time_limit_s = opts.get_double("time-limit", 300.0);
  req.options.traces_per_iteration =
      static_cast<size_t>(opts.get_int("traces", 1));
  req.options.approx_fallback = !opts.get_bool("no-approx", false);
  req.options.portfolio_workers = static_cast<size_t>(opts.get_int("workers", 0));
  req.options.budget_ms = opts.get_double("budget-ms", -1.0);
  req.options.budget_bdd_nodes = opts.get_int("budget-bdd-nodes", 0);
  req.options.budget_mem_mb = opts.get_int("budget-mem-mb", 0);
  // --prof-json wants the RSS timeline: the watchdog monitor thread samples
  // /proc/self/statm each poll even when no budget is set.
  req.options.sample_rss = !opts.get("prof-json", "").empty();
  req.options.proof_shrink = opts.get_bool("proof-shrink", false);
  req.options.race_pdr_max_frames = static_cast<size_t>(
      opts.get_int("pdr-max-frames",
                   static_cast<int64_t>(req.options.race_pdr_max_frames)));
  req.options.race_pdr_time_s =
      opts.get_double("pdr-time", req.options.race_pdr_time_s);
  for (const std::string& list : opts.get_all("engine")) {
    std::stringstream es(list);
    std::string e;
    while (std::getline(es, e, ','))
      if (!e.empty()) req.options.engines.push_back(e);
  }
  if (report_invalid(req.options)) return 2;
  req.cluster_overlap = opts.get_double("cluster-overlap", 0.5);
  req.max_cluster_size = static_cast<size_t>(opts.get_int("max-cluster", 4));
  req.session_workers =
      static_cast<size_t>(opts.get_int("session-workers", 0));
  req.batch_budget_ms = opts.get_double("batch-budget-ms", -1.0);
  req.reuse = !opts.get_bool("no-reuse", false);
  req.batch = opts.get_bool("batch", false);

  // Collect the property set: every --bad plus every --props line. More
  // than one property routes through a VerifySession. Signals resolve
  // inside api::run_verify (api::resolve_properties) with the spec's origin
  // prefixed to any unknown-signal diagnostic.
  for (const std::string& bad_name : opts.get_all("bad")) {
    api::PropertySpec spec;
    spec.signal = bad_name;
    // Keep the name the user asked for: two --bad outputs can resolve to
    // same-named gates (the iu coverage aliases), and --cert-dir derives
    // witness file names from the property name.
    spec.name = bad_name;
    req.props.push_back(std::move(spec));
  }
  const std::string props_path = opts.get("props", "");
  if (!props_path.empty()) {
    std::ifstream in(props_path);
    if (!in) {
      std::fprintf(stderr, "rfn: cannot open %s\n", props_path.c_str());
      return 2;
    }
    std::string line;
    for (size_t lineno = 1; std::getline(in, line); ++lineno) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      api::PropertySpec spec;
      std::string perr;
      if (!api::parse_property_spec(line, &spec, &perr)) {
        std::fprintf(stderr, "rfn: props line %zu: %s\n", lineno, perr.c_str());
        return 2;
      }
      spec.origin = "props line " + std::to_string(lineno);
      req.props.push_back(std::move(spec));
    }
  }
  // An AIGER design with no explicit selection verifies its whole property
  // list (each bad output, or each output pre-1.9 style) as one batch.
  const size_t effective =
      req.props.empty() ? design.aiger_properties.size() : req.props.size();
  if (effective > 1 || req.batch)
    return cmd_verify_batch(design, opts, std::move(req));

  // Single-run path (rfn-trace-v1): exactly what `rfn verify` without a
  // batch always did. The property label and its gate resolve separately —
  // an unnamed one-line --props file keeps the conventional "bad" label
  // while verifying the signal the line named, and an AIGER property's
  // label ("b0") is not a netlist signal name at all.
  GateId bad = kNullGate;
  std::string bad_name;
  if (!req.props.empty()) {
    const api::PropertySpec& spec = req.props.front();
    bad = api::find_signal(design.netlist, spec.signal);
    if (bad == kNullGate) {
      if (spec.origin.empty()) {
        std::fprintf(stderr, "rfn: no signal named '%s'\n",
                     spec.signal.c_str());
      } else {
        std::fprintf(stderr, "rfn: %s: no signal named '%s'\n",
                     spec.origin.c_str(), spec.signal.c_str());
      }
      return 2;
    }
    bad_name = spec.name.empty() ? opts.get("bad", "bad") : spec.name;
  } else if (!design.aiger_properties.empty()) {
    bad = design.aiger_properties.front().signal;
    bad_name = design.aiger_properties.front().name;
  } else {
    bad_name = opts.get("bad", "bad");
    bad = api::find_signal(design.netlist, bad_name);
    if (bad == kNullGate) {
      std::fprintf(stderr, "rfn: no signal named '%s'\n", bad_name.c_str());
      return 2;
    }
  }
  return cmd_verify_single(design, opts, req, bad, bad_name);
}

int cmd_coverage(const Netlist& design, const Options& opts) {
  const std::string list = opts.get("signals", "");
  if (list.empty()) {
    std::fprintf(stderr, "rfn: coverage needs --signals a,b,c\n");
    return 2;
  }
  std::vector<GateId> cov;
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    const GateId g = api::find_signal(design, name);
    if (g == kNullGate || !design.is_reg(g)) {
      std::fprintf(stderr, "rfn: coverage signal '%s' is not a register\n",
                   name.c_str());
      return 2;
    }
    cov.push_back(g);
  }

  CoverageOptions cov_opts;
  cov_opts.time_limit_s = opts.get_double("time-limit", 300.0);
  const CoverageResult r = rfn_coverage_analysis(design, cov, cov_opts);
  std::printf("coverage states: %zu total\n", r.total_states);
  std::printf("  unreachable: %zu (proved on the abstraction)\n", r.unreachable);
  std::printf("  reachable:   %zu (witnessed by concrete traces)\n", r.reachable);
  std::printf("  unknown:     %zu\n", r.unknown);
  std::printf("abstract model grew to %zu registers over %zu iterations (%.1f s)\n",
              r.final_abstract_regs, r.iterations, r.seconds);
  if (opts.get_bool("list-unreachable", false)) {
    for (size_t s = 0; s < r.state_class.size(); ++s) {
      if (r.state_class[s] != 1) continue;
      std::string bits;
      for (size_t i = 0; i < cov.size(); ++i) bits += ((s >> i) & 1) ? '1' : '0';
      std::printf("  unreachable: %s\n", bits.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.positionals().size() < 2) return usage();
  const std::string& command = opts.positionals()[0];
  const std::string& path = opts.positionals()[1];

  api::DesignRef ref;
  ref.path = path;
  ref.top = opts.get("top", "");
  if (opts.get_bool("aiger", false)) ref.format = "aiger";
  api::LoadedDesign design;
  std::string error;
  if (!api::load_design(ref, &design, &error)) {
    std::fprintf(stderr, "rfn: %s\n", error.c_str());
    return 2;
  }
  std::printf("loaded %s: %s\n", path.c_str(),
              stats_line(design.netlist).c_str());
  if (!design.aiger_properties.empty())
    std::printf("aiger: %zu propert%s (%zu bad, %zu outputs, %zu constraints%s)\n",
                design.aiger_properties.size(),
                design.aiger_properties.size() == 1 ? "y" : "ies",
                design.aiger_bad, design.aiger_outputs,
                design.aiger_constraints,
                design.aiger_constraints_folded ? ", folded" : "");

  if (command == "verify") return cmd_verify(design, opts);
  if (command == "coverage") return cmd_coverage(design.netlist, opts);
  if (command == "translate") {
    const std::string format = opts.get("format", "blif");
    std::string body;
    if (format == "blif") {
      body = write_blif(design.netlist, "rfn_translated");
    } else if (format == "aag" || format == "aig") {
      body = aiger::write_aiger(design.netlist, format == "aig");
    } else {
      std::fprintf(stderr, "rfn: unknown translate format '%s'\n",
                   format.c_str());
      return 2;
    }
    const std::string out_path = opts.get("out", "");
    if (out_path.empty()) {
      std::fwrite(body.data(), 1, body.size(), stdout);  // .aig is raw bytes
    } else if (!write_text_file(out_path, body)) {
      return 2;
    }
    return 0;
  }
  if (command == "stats") {
    for (const auto& [name, g] : design.netlist.outputs()) {
      const auto regs = coi_registers(design.netlist, {g});
      std::printf("output %-24s COI: %zu registers\n", name.c_str(), regs.size());
    }
    return 0;
  }
  return usage();
}
