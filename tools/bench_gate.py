#!/usr/bin/env python3
"""Bench regression gate for rfn-bench-v1, rfn-corpus, and rfn-prof-v1 JSON.

Bench mode compares a fresh `bench/micro_engines --json` run against the
checked-in baseline (BENCH_portfolio.json) and exits nonzero when a
benchmark regressed:

  * wall time per iteration grew by more than --time-tolerance (default 20%),
  * the deterministic bdd_peak_nodes counter grew by more than
    --node-tolerance (default 10%),
  * or a baseline benchmark is missing from the current run.

It additionally enforces the batch-session invariant on the current run:
BM_SessionBatchFifo (one VerifySession over the four-property FIFO flag
suite, whose cones overlap) must finish in less wall time than
BM_SessionIndependentFifo (the same properties as independent runs) — the
whole point of batching.

Wall time is noisy on shared CI runners, hence the generous default
tolerance; the BDD peak-node counter is deterministic for a fixed workload
and is the gate's sharp edge.

Usage:
  bench/micro_engines --benchmark_filter='Portfolio|Session|SatBmc' --json current.json
  tools/bench_gate.py --baseline BENCH_portfolio.json --current current.json

Re-baselining (after an intentional perf change): regenerate the baseline
from a Release build and commit it together with the change that moved it:

  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
  ./build/bench/micro_engines --benchmark_filter='Portfolio|Session|SatBmc' \
      --json BENCH_portfolio.json

and say why in the commit message.

Prof mode diffs two rfn-prof-v1 documents (from `rfn verify --prof-json`):

  tools/bench_gate.py --prof-baseline BENCH_prof.json --prof-current prof.json

and fails when a subsystem's peak_bytes grew past --byte-tolerance (default
25%) over the baseline, or when a baseline subsystem is missing from the
current artifact. The arena byte counters (bdd node pool + unique-table
buckets + computed cache; SAT clause arena + watch lists) are byte-exact
and — for a fixed workload run with `--workers 0` — fully deterministic, so
the generous tolerance only absorbs allocator capacity-doubling
granularity, not noise. Engine CPU, wall time, and RSS are deliberately NOT
gated here: they are machine-dependent (the wall gate above already covers
time). Re-baselining after an intentional memory-footprint change (the
engine list keeps both arenas exercised — bdd-reach proves bad_mutex, the
SAT engine concretizes error_flag's counterexample):

  ./build/tools/rfn verify builtin:processor --bad bad_mutex \
      --bad error_flag --workers 0 --engine bdd,sat \
      --prof-json BENCH_prof.json

and commit BENCH_prof.json with the change that moved it, saying why.

Corpus mode diffs two corpus documents (from tools/corpus_run.py;
rfn-corpus-v2, with rfn-corpus-v1 baselines still accepted so pre-profiler
checkouts keep gating):

  tools/bench_gate.py --corpus-baseline tests/corpus/baseline.json \
      --corpus-current corpus_summary.json

and fails on any semantic drift: a baseline file or property missing from
the current run, a file status that degraded (ok -> resource-out/error), a
verdict flip, or a certification regression (certified true -> false).
Wall-clock seconds, engine_wins, and the v2 peak_rss_bytes/cpu_ms fields
are deliberately NOT gated — races are timing-dependent and RSS/CPU are
machine-dependent; the verdicts and certificates are not. New files or
properties in the current run are reported but do not fail the gate (they
fail corpus_run's own totals check if broken); commit a regenerated
baseline to start gating them.
"""

import argparse
import json
import sys

GATED_COUNTERS = ("bdd_peak_nodes",)
CORPUS_SCHEMAS = ("rfn-corpus-v2", "rfn-corpus-v1")
PROF_SCHEMA = "rfn-prof-v1"
# The subsystems whose byte-exact arena peaks the prof gate covers. A
# subsystem present in the baseline but absent from the current artifact is
# a schema break, not a memory win.
PROF_SUBSYSTEMS = ("bdd", "sat")

# The batch-session pair: one VerifySession over the FIFO flag suite vs
# the same properties as independent RfnVerifier runs.
BATCH_BENCH = "BM_SessionBatchFifo"
INDEPENDENT_BENCH = "BM_SessionIndependentFifo"

# The IC3/PDR engine must actually win races somewhere in the current
# artifact (wins_pdr >= 1 on at least one benchmark) — a portfolio whose
# unbounded prover never concludes is a wiring regression, not noise.
PDR_WINS_COUNTER = "wins_pdr"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rfn-bench-v1":
        sys.exit(f"bench_gate: {path}: not an rfn-bench-v1 document "
                 f"(schema={doc.get('schema')!r})")
    benchmarks = {}
    for i, b in enumerate(doc.get("benchmarks", [])):
        name = b.get("name")
        if not name:
            sys.exit(f"bench_gate: {path}: benchmark record {i} has no "
                     f"\"name\" — malformed artifact, not a regression")
        benchmarks[name] = b
    return benchmarks


def load_corpus(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in CORPUS_SCHEMAS:
        sys.exit(f"bench_gate: {path}: not an rfn-corpus document "
                 f"(schema={doc.get('schema')!r}, "
                 f"want one of {list(CORPUS_SCHEMAS)})")
    files = {}
    for i, rec in enumerate(doc.get("files", [])):
        name = rec.get("file")
        if not name:
            sys.exit(f"bench_gate: {path}: file record {i} has no \"file\" "
                     f"— malformed artifact, not a regression")
        files[name] = rec
    return files


def corpus_gate(baseline_path, current_path):
    baseline = load_corpus(baseline_path)
    current = load_corpus(current_path)

    failures = []
    checked = 0
    for fname, base in sorted(baseline.items()):
        cur = current.get(fname)
        if cur is None:
            failures.append(f"{fname}: missing from current run")
            continue
        base_status = base.get("status", "ok")
        cur_status = cur.get("status", "ok")
        if base_status == "ok" and cur_status != "ok":
            failures.append(f"{fname}: status degraded ok -> {cur_status}")
            continue
        cur_props = {p["name"]: p for p in cur.get("properties", [])}
        for p in base.get("properties", []):
            cp = cur_props.get(p["name"])
            checked += 1
            if cp is None:
                failures.append(f"{fname}: property {p['name']!r} missing "
                                f"from current run")
                continue
            if cp.get("verdict") != p.get("verdict"):
                failures.append(
                    f"{fname}: {p['name']}: verdict flipped "
                    f"{p.get('verdict')!r} -> {cp.get('verdict')!r}")
            if p.get("certified") and not cp.get("certified"):
                failures.append(
                    f"{fname}: {p['name']}: certification regressed "
                    f"(was certified, now is not)")
    for fname in sorted(set(current) - set(baseline)):
        print(f"bench_gate: {fname}: new file, not in the baseline "
              f"(re-baseline to start gating it)")

    if failures:
        print("bench_gate: corpus FAILED", file=sys.stderr)
        for f in failures:
            print(f"bench_gate:   {f}", file=sys.stderr)
        print("bench_gate: if the drift is intentional, regenerate "
              "tests/corpus/baseline.json (see the module docstring)",
              file=sys.stderr)
        return 1
    print(f"bench_gate: corpus PASSED ({len(baseline)} files, "
          f"{checked} properties)")
    return 0


def load_prof(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("format") != PROF_SCHEMA:
        sys.exit(f"bench_gate: {path}: not an {PROF_SCHEMA} document "
                 f"(format={doc.get('format')!r})")
    subsystems = doc.get("subsystems")
    if not isinstance(subsystems, dict):
        sys.exit(f"bench_gate: {path}: no \"subsystems\" object "
                 f"— malformed artifact, not a regression")
    return subsystems


def prof_gate(baseline_path, current_path, tolerance):
    baseline = load_prof(baseline_path)
    current = load_prof(current_path)

    failures = []
    for name in PROF_SUBSYSTEMS:
        base = baseline.get(name)
        if base is None:
            # A baseline from before a subsystem was instrumented: nothing
            # to gate against, and re-baselining is the forward path.
            print(f"bench_gate: {name}: not in the prof baseline "
                  f"(re-baseline to start gating it)")
            continue
        base_peak = base.get("peak_bytes", 0)
        cur = current.get(name)
        if cur is None or cur.get("peak_bytes") is None:
            failures.append(f"{name}: peak_bytes missing from current "
                            f"artifact (malformed or schema break)")
            continue
        cur_peak = cur["peak_bytes"]
        if base_peak > 0 and cur_peak > base_peak * (1.0 + tolerance):
            failures.append(
                f"{name}: peak_bytes {cur_peak} vs baseline {base_peak} "
                f"(+{(cur_peak / base_peak - 1.0) * 100.0:.1f}% > "
                f"{tolerance * 100.0:.0f}%)")
        else:
            print(f"bench_gate: {name}: peak_bytes ok "
                  f"({cur_peak} vs {base_peak})")

    if failures:
        print("bench_gate: prof FAILED", file=sys.stderr)
        for f in failures:
            print(f"bench_gate:   {f}", file=sys.stderr)
        print("bench_gate: if the footprint growth is intentional, "
              "regenerate BENCH_prof.json (see the module docstring)",
              file=sys.stderr)
        return 1
    print(f"bench_gate: prof PASSED ({len(PROF_SUBSYSTEMS)} subsystems)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="checked-in rfn-bench-v1 JSON")
    ap.add_argument("--current", help="freshly generated rfn-bench-v1 JSON")
    ap.add_argument("--corpus-baseline",
                    help="checked-in rfn-corpus JSON (corpus mode)")
    ap.add_argument("--corpus-current",
                    help="freshly generated rfn-corpus JSON (corpus mode)")
    ap.add_argument("--prof-baseline",
                    help="checked-in rfn-prof-v1 JSON (prof mode)")
    ap.add_argument("--prof-current",
                    help="freshly generated rfn-prof-v1 JSON (prof mode)")
    ap.add_argument("--time-tolerance", type=float, default=0.20,
                    help="allowed relative wall-time growth (default 0.20)")
    ap.add_argument("--node-tolerance", type=float, default=0.10,
                    help="allowed relative bdd_peak_nodes growth (default 0.10)")
    ap.add_argument("--byte-tolerance", type=float, default=0.25,
                    help="allowed relative subsystem peak_bytes growth in "
                         "prof mode (default 0.25)")
    args = ap.parse_args()

    if bool(args.corpus_baseline) != bool(args.corpus_current):
        ap.error("--corpus-baseline and --corpus-current go together")
    if bool(args.prof_baseline) != bool(args.prof_current):
        ap.error("--prof-baseline and --prof-current go together")
    modes = sum(bool(m) for m in (args.corpus_baseline, args.prof_baseline,
                                  args.baseline or args.current))
    if modes > 1:
        ap.error("bench, corpus, and prof modes are separate invocations")
    if args.corpus_baseline:
        return corpus_gate(args.corpus_baseline, args.corpus_current)
    if args.prof_baseline:
        return prof_gate(args.prof_baseline, args.prof_current,
                         args.byte_tolerance)
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or the "
                 "--corpus-* / --prof-* pair)")

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue

        base_t = base.get("real_seconds_per_iter", 0.0)
        cur_t = cur.get("real_seconds_per_iter")
        if cur_t is None:
            # A silent 0.0 here would make a broken artifact look like a
            # speedup; a baseline metric absent from the new artifact is a
            # schema break and must fail loudly.
            failures.append(f"{name}: real_seconds_per_iter missing from "
                            f"current run (malformed artifact?)")
            continue
        if base_t > 0 and cur_t > base_t * (1.0 + args.time_tolerance):
            failures.append(
                f"{name}: wall time {cur_t * 1e3:.3f} ms/iter vs baseline "
                f"{base_t * 1e3:.3f} ms/iter "
                f"(+{(cur_t / base_t - 1.0) * 100.0:.1f}% > "
                f"{args.time_tolerance * 100.0:.0f}%)")
        else:
            print(f"bench_gate: {name}: wall time ok "
                  f"({cur_t * 1e3:.3f} vs {base_t * 1e3:.3f} ms/iter)")

        for counter in GATED_COUNTERS:
            base_c = base.get("counters", {}).get(counter)
            cur_c = cur.get("counters", {}).get(counter)
            if base_c is None or base_c <= 0:
                continue
            if cur_c is None:
                failures.append(f"{name}: counter {counter} missing from current run")
            elif cur_c > base_c * (1.0 + args.node_tolerance):
                failures.append(
                    f"{name}: {counter} {cur_c:.0f} vs baseline {base_c:.0f} "
                    f"(+{(cur_c / base_c - 1.0) * 100.0:.1f}% > "
                    f"{args.node_tolerance * 100.0:.0f}%)")
            else:
                print(f"bench_gate: {name}: {counter} ok "
                      f"({cur_c:.0f} vs {base_c:.0f})")

    # The batch invariant is checked within the *current* artifact (not
    # against the baseline), so it holds on this machine regardless of how
    # the baseline host was loaded when the baseline was recorded.
    batch = current.get(BATCH_BENCH)
    indep = current.get(INDEPENDENT_BENCH)
    if batch is not None and indep is not None:
        batch_t = batch.get("real_seconds_per_iter", 0.0)
        indep_t = indep.get("real_seconds_per_iter", 0.0)
        if indep_t > 0 and batch_t >= indep_t:
            failures.append(
                f"{BATCH_BENCH}: batch wall {batch_t * 1e3:.3f} ms/iter is not "
                f"below independent runs ({INDEPENDENT_BENCH}: "
                f"{indep_t * 1e3:.3f} ms/iter) — batching stopped paying off")
        elif indep_t > 0:
            print(f"bench_gate: batch wall ok ({batch_t * 1e3:.3f} vs "
                  f"{indep_t * 1e3:.3f} ms/iter independent, "
                  f"{(1.0 - batch_t / indep_t) * 100.0:.1f}% saved)")

    # Like the batch invariant, the PDR-wins floor is checked within the
    # current artifact: some benchmark must report wins_pdr >= 1. Skipped
    # only when no current benchmark exports the counter at all (a filtered
    # run that excluded the portfolio benches).
    pdr_benches = {name: b.get("counters", {}).get(PDR_WINS_COUNTER)
                   for name, b in current.items()
                   if PDR_WINS_COUNTER in b.get("counters", {})}
    if pdr_benches:
        best = max(pdr_benches.values())
        if best < 1:
            failures.append(
                f"{PDR_WINS_COUNTER} < 1 on every benchmark that exports it "
                f"({', '.join(sorted(pdr_benches))}) — the IC3/PDR racer "
                f"never won a race")
        else:
            winner = max(pdr_benches, key=pdr_benches.get)
            print(f"bench_gate: {PDR_WINS_COUNTER} ok ({winner}: {best:.0f})")

    if failures:
        print("bench_gate: FAILED", file=sys.stderr)
        for f in failures:
            print(f"bench_gate:   {f}", file=sys.stderr)
        print("bench_gate: if the regression is intentional, re-baseline "
              "(see the module docstring)", file=sys.stderr)
        return 1
    print(f"bench_gate: PASSED ({len(baseline)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
