#!/usr/bin/env python3
"""Bench regression gate for rfn-bench-v1 and rfn-corpus-v1 JSON documents.

Bench mode compares a fresh `bench/micro_engines --json` run against the
checked-in baseline (BENCH_portfolio.json) and exits nonzero when a
benchmark regressed:

  * wall time per iteration grew by more than --time-tolerance (default 20%),
  * the deterministic bdd_peak_nodes counter grew by more than
    --node-tolerance (default 10%),
  * or a baseline benchmark is missing from the current run.

It additionally enforces the batch-session invariant on the current run:
BM_SessionBatchFifo (one VerifySession over the four-property FIFO flag
suite, whose cones overlap) must finish in less wall time than
BM_SessionIndependentFifo (the same properties as independent runs) — the
whole point of batching.

Wall time is noisy on shared CI runners, hence the generous default
tolerance; the BDD peak-node counter is deterministic for a fixed workload
and is the gate's sharp edge.

Usage:
  bench/micro_engines --benchmark_filter='Portfolio|Session|SatBmc' --json current.json
  tools/bench_gate.py --baseline BENCH_portfolio.json --current current.json

Re-baselining (after an intentional perf change): regenerate the baseline
from a Release build and commit it together with the change that moved it:

  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
  ./build/bench/micro_engines --benchmark_filter='Portfolio|Session|SatBmc' \
      --json BENCH_portfolio.json

and say why in the commit message.

Corpus mode diffs two rfn-corpus-v1 documents (from tools/corpus_run.py):

  tools/bench_gate.py --corpus-baseline tests/corpus/baseline.json \
      --corpus-current corpus_summary.json

and fails on any semantic drift: a baseline file or property missing from
the current run, a file status that degraded (ok -> resource-out/error), a
verdict flip, or a certification regression (certified true -> false).
Wall-clock seconds and engine_wins are deliberately NOT gated — races are
timing-dependent; the verdicts and certificates are not. New files or
properties in the current run are reported but do not fail the gate (they
fail corpus_run's own totals check if broken); commit a regenerated
baseline to start gating them.
"""

import argparse
import json
import sys

GATED_COUNTERS = ("bdd_peak_nodes",)

# The batch-session pair: one VerifySession over the FIFO flag suite vs
# the same properties as independent RfnVerifier runs.
BATCH_BENCH = "BM_SessionBatchFifo"
INDEPENDENT_BENCH = "BM_SessionIndependentFifo"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rfn-bench-v1":
        sys.exit(f"bench_gate: {path}: not an rfn-bench-v1 document "
                 f"(schema={doc.get('schema')!r})")
    benchmarks = {}
    for i, b in enumerate(doc.get("benchmarks", [])):
        name = b.get("name")
        if not name:
            sys.exit(f"bench_gate: {path}: benchmark record {i} has no "
                     f"\"name\" — malformed artifact, not a regression")
        benchmarks[name] = b
    return benchmarks


def load_corpus(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rfn-corpus-v1":
        sys.exit(f"bench_gate: {path}: not an rfn-corpus-v1 document "
                 f"(schema={doc.get('schema')!r})")
    files = {}
    for i, rec in enumerate(doc.get("files", [])):
        name = rec.get("file")
        if not name:
            sys.exit(f"bench_gate: {path}: file record {i} has no \"file\" "
                     f"— malformed artifact, not a regression")
        files[name] = rec
    return files


def corpus_gate(baseline_path, current_path):
    baseline = load_corpus(baseline_path)
    current = load_corpus(current_path)

    failures = []
    checked = 0
    for fname, base in sorted(baseline.items()):
        cur = current.get(fname)
        if cur is None:
            failures.append(f"{fname}: missing from current run")
            continue
        base_status = base.get("status", "ok")
        cur_status = cur.get("status", "ok")
        if base_status == "ok" and cur_status != "ok":
            failures.append(f"{fname}: status degraded ok -> {cur_status}")
            continue
        cur_props = {p["name"]: p for p in cur.get("properties", [])}
        for p in base.get("properties", []):
            cp = cur_props.get(p["name"])
            checked += 1
            if cp is None:
                failures.append(f"{fname}: property {p['name']!r} missing "
                                f"from current run")
                continue
            if cp.get("verdict") != p.get("verdict"):
                failures.append(
                    f"{fname}: {p['name']}: verdict flipped "
                    f"{p.get('verdict')!r} -> {cp.get('verdict')!r}")
            if p.get("certified") and not cp.get("certified"):
                failures.append(
                    f"{fname}: {p['name']}: certification regressed "
                    f"(was certified, now is not)")
    for fname in sorted(set(current) - set(baseline)):
        print(f"bench_gate: {fname}: new file, not in the baseline "
              f"(re-baseline to start gating it)")

    if failures:
        print("bench_gate: corpus FAILED", file=sys.stderr)
        for f in failures:
            print(f"bench_gate:   {f}", file=sys.stderr)
        print("bench_gate: if the drift is intentional, regenerate "
              "tests/corpus/baseline.json (see the module docstring)",
              file=sys.stderr)
        return 1
    print(f"bench_gate: corpus PASSED ({len(baseline)} files, "
          f"{checked} properties)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="checked-in rfn-bench-v1 JSON")
    ap.add_argument("--current", help="freshly generated rfn-bench-v1 JSON")
    ap.add_argument("--corpus-baseline",
                    help="checked-in rfn-corpus-v1 JSON (corpus mode)")
    ap.add_argument("--corpus-current",
                    help="freshly generated rfn-corpus-v1 JSON (corpus mode)")
    ap.add_argument("--time-tolerance", type=float, default=0.20,
                    help="allowed relative wall-time growth (default 0.20)")
    ap.add_argument("--node-tolerance", type=float, default=0.10,
                    help="allowed relative bdd_peak_nodes growth (default 0.10)")
    args = ap.parse_args()

    if bool(args.corpus_baseline) != bool(args.corpus_current):
        ap.error("--corpus-baseline and --corpus-current go together")
    if args.corpus_baseline:
        if args.baseline or args.current:
            ap.error("corpus mode and bench mode are separate invocations")
        return corpus_gate(args.corpus_baseline, args.corpus_current)
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or the "
                 "--corpus-* pair)")

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue

        base_t = base.get("real_seconds_per_iter", 0.0)
        cur_t = cur.get("real_seconds_per_iter")
        if cur_t is None:
            # A silent 0.0 here would make a broken artifact look like a
            # speedup; a baseline metric absent from the new artifact is a
            # schema break and must fail loudly.
            failures.append(f"{name}: real_seconds_per_iter missing from "
                            f"current run (malformed artifact?)")
            continue
        if base_t > 0 and cur_t > base_t * (1.0 + args.time_tolerance):
            failures.append(
                f"{name}: wall time {cur_t * 1e3:.3f} ms/iter vs baseline "
                f"{base_t * 1e3:.3f} ms/iter "
                f"(+{(cur_t / base_t - 1.0) * 100.0:.1f}% > "
                f"{args.time_tolerance * 100.0:.0f}%)")
        else:
            print(f"bench_gate: {name}: wall time ok "
                  f"({cur_t * 1e3:.3f} vs {base_t * 1e3:.3f} ms/iter)")

        for counter in GATED_COUNTERS:
            base_c = base.get("counters", {}).get(counter)
            cur_c = cur.get("counters", {}).get(counter)
            if base_c is None or base_c <= 0:
                continue
            if cur_c is None:
                failures.append(f"{name}: counter {counter} missing from current run")
            elif cur_c > base_c * (1.0 + args.node_tolerance):
                failures.append(
                    f"{name}: {counter} {cur_c:.0f} vs baseline {base_c:.0f} "
                    f"(+{(cur_c / base_c - 1.0) * 100.0:.1f}% > "
                    f"{args.node_tolerance * 100.0:.0f}%)")
            else:
                print(f"bench_gate: {name}: {counter} ok "
                      f"({cur_c:.0f} vs {base_c:.0f})")

    # The batch invariant is checked within the *current* artifact (not
    # against the baseline), so it holds on this machine regardless of how
    # the baseline host was loaded when the baseline was recorded.
    batch = current.get(BATCH_BENCH)
    indep = current.get(INDEPENDENT_BENCH)
    if batch is not None and indep is not None:
        batch_t = batch.get("real_seconds_per_iter", 0.0)
        indep_t = indep.get("real_seconds_per_iter", 0.0)
        if indep_t > 0 and batch_t >= indep_t:
            failures.append(
                f"{BATCH_BENCH}: batch wall {batch_t * 1e3:.3f} ms/iter is not "
                f"below independent runs ({INDEPENDENT_BENCH}: "
                f"{indep_t * 1e3:.3f} ms/iter) — batching stopped paying off")
        elif indep_t > 0:
            print(f"bench_gate: batch wall ok ({batch_t * 1e3:.3f} vs "
                  f"{indep_t * 1e3:.3f} ms/iter independent, "
                  f"{(1.0 - batch_t / indep_t) * 100.0:.1f}% saved)")

    if failures:
        print("bench_gate: FAILED", file=sys.stderr)
        for f in failures:
            print(f"bench_gate:   {f}", file=sys.stderr)
        print("bench_gate: if the regression is intentional, re-baseline "
              "(see the module docstring)", file=sys.stderr)
        return 1
    print(f"bench_gate: PASSED ({len(baseline)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
