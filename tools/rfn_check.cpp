// rfn_check — independent certificate verifier.
//
//   rfn_check <cert.json> <design.v|design.blif|design.aag|design.aig|
//              builtin:NAME> [--top MODULE]
//
// Re-elaborates the design, parses an rfn-cert-v1 witness (emitted by
// `rfn verify --certify`, see cert/format.hpp) and discharges its
// obligations with the CDCL SAT solver (cert/check.hpp):
//
//   holds-invariant:  initiation, consecution, safety
//   fails-trace:      trace replay through the BMC encoding
//
// Exit status: 0 the witness is valid; 1 an obligation was refuted (the
// failing obligation and a satisfying assignment are printed); 2 usage, I/O,
// format, or design-hash errors.
//
// This binary is the trust boundary of the verification service: it links
// only the netlist layer, the SAT solver, and the frontends needed to
// re-elaborate designs — never the BDD package, the model checker, or the
// CEGAR loop whose answers it audits (enforced by its CMake link list).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/load.hpp"
#include "cert/check.hpp"
#include "cert/format.hpp"

using namespace rfn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rfn_check <cert.json> <design.v|design.blif|builtin:NAME> "
               "[--top MODULE]\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cert_path, design_path, top;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) return usage();
      top = argv[++i];
    } else if (cert_path.empty()) {
      cert_path = arg;
    } else if (design_path.empty()) {
      design_path = arg;
    } else {
      return usage();
    }
  }
  if (cert_path.empty() || design_path.empty()) return usage();

  std::string text;
  if (!read_file(cert_path, &text)) {
    std::fprintf(stderr, "rfn_check: cannot open %s\n", cert_path.c_str());
    return 2;
  }
  cert::Certificate certificate;
  std::string error;
  if (!cert::from_json(text, &certificate, &error)) {
    std::fprintf(stderr, "rfn_check: FAILED — obligation %s: %s\n",
                 cert::kObligationFormat, error.c_str());
    return 2;
  }

  // api::load_design: the SAME resolution the verifier used, so the
  // witness's design hash is taken over an identically normalized netlist.
  // (rfn_load is a leaf library — linking it does not widen this binary's
  // trust boundary.)
  api::DesignRef ref;
  ref.path = design_path;
  ref.top = top;
  api::LoadedDesign loaded;
  if (!api::load_design(ref, &loaded, &error)) {
    std::fprintf(stderr, "rfn_check: %s\n", error.c_str());
    return 2;
  }
  const Netlist& design = loaded.netlist;

  std::printf("rfn_check: %s witness for property '%s' on %s\n",
              cert::cert_kind_name(certificate.kind),
              certificate.property_name.c_str(), design_path.c_str());
  const cert::CheckResult res = cert::check_certificate(design, certificate);
  if (!res.ok) {
    std::fprintf(stderr, "rfn_check: FAILED — obligation %s: %s\n",
                 res.obligation.c_str(), res.detail.c_str());
    return res.obligation == cert::kObligationFormat ||
                   res.obligation == cert::kObligationDesignHash
               ? 2
               : 1;
  }
  std::printf("rfn_check: OK — %s\n", res.detail.c_str());
  return 0;
}
