# Empty dependencies file for rfn_atpg.
# This may be replaced when dependencies are built.
