
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/comb_atpg.cpp" "src/CMakeFiles/rfn_atpg.dir/atpg/comb_atpg.cpp.o" "gcc" "src/CMakeFiles/rfn_atpg.dir/atpg/comb_atpg.cpp.o.d"
  "/root/repo/src/atpg/implication.cpp" "src/CMakeFiles/rfn_atpg.dir/atpg/implication.cpp.o" "gcc" "src/CMakeFiles/rfn_atpg.dir/atpg/implication.cpp.o.d"
  "/root/repo/src/atpg/seq_atpg.cpp" "src/CMakeFiles/rfn_atpg.dir/atpg/seq_atpg.cpp.o" "gcc" "src/CMakeFiles/rfn_atpg.dir/atpg/seq_atpg.cpp.o.d"
  "/root/repo/src/atpg/unroll.cpp" "src/CMakeFiles/rfn_atpg.dir/atpg/unroll.cpp.o" "gcc" "src/CMakeFiles/rfn_atpg.dir/atpg/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
