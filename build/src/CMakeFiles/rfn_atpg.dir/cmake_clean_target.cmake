file(REMOVE_RECURSE
  "librfn_atpg.a"
)
