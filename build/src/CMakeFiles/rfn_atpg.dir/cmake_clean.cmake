file(REMOVE_RECURSE
  "CMakeFiles/rfn_atpg.dir/atpg/comb_atpg.cpp.o"
  "CMakeFiles/rfn_atpg.dir/atpg/comb_atpg.cpp.o.d"
  "CMakeFiles/rfn_atpg.dir/atpg/implication.cpp.o"
  "CMakeFiles/rfn_atpg.dir/atpg/implication.cpp.o.d"
  "CMakeFiles/rfn_atpg.dir/atpg/seq_atpg.cpp.o"
  "CMakeFiles/rfn_atpg.dir/atpg/seq_atpg.cpp.o.d"
  "CMakeFiles/rfn_atpg.dir/atpg/unroll.cpp.o"
  "CMakeFiles/rfn_atpg.dir/atpg/unroll.cpp.o.d"
  "librfn_atpg.a"
  "librfn_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
