
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/approx_reach.cpp" "src/CMakeFiles/rfn_mc.dir/mc/approx_reach.cpp.o" "gcc" "src/CMakeFiles/rfn_mc.dir/mc/approx_reach.cpp.o.d"
  "/root/repo/src/mc/encoder.cpp" "src/CMakeFiles/rfn_mc.dir/mc/encoder.cpp.o" "gcc" "src/CMakeFiles/rfn_mc.dir/mc/encoder.cpp.o.d"
  "/root/repo/src/mc/image.cpp" "src/CMakeFiles/rfn_mc.dir/mc/image.cpp.o" "gcc" "src/CMakeFiles/rfn_mc.dir/mc/image.cpp.o.d"
  "/root/repo/src/mc/reach.cpp" "src/CMakeFiles/rfn_mc.dir/mc/reach.cpp.o" "gcc" "src/CMakeFiles/rfn_mc.dir/mc/reach.cpp.o.d"
  "/root/repo/src/mc/trace.cpp" "src/CMakeFiles/rfn_mc.dir/mc/trace.cpp.o" "gcc" "src/CMakeFiles/rfn_mc.dir/mc/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
