# Empty compiler generated dependencies file for rfn_mc.
# This may be replaced when dependencies are built.
