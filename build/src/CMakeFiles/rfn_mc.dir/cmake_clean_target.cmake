file(REMOVE_RECURSE
  "librfn_mc.a"
)
