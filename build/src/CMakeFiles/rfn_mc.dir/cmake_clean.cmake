file(REMOVE_RECURSE
  "CMakeFiles/rfn_mc.dir/mc/approx_reach.cpp.o"
  "CMakeFiles/rfn_mc.dir/mc/approx_reach.cpp.o.d"
  "CMakeFiles/rfn_mc.dir/mc/encoder.cpp.o"
  "CMakeFiles/rfn_mc.dir/mc/encoder.cpp.o.d"
  "CMakeFiles/rfn_mc.dir/mc/image.cpp.o"
  "CMakeFiles/rfn_mc.dir/mc/image.cpp.o.d"
  "CMakeFiles/rfn_mc.dir/mc/reach.cpp.o"
  "CMakeFiles/rfn_mc.dir/mc/reach.cpp.o.d"
  "CMakeFiles/rfn_mc.dir/mc/trace.cpp.o"
  "CMakeFiles/rfn_mc.dir/mc/trace.cpp.o.d"
  "librfn_mc.a"
  "librfn_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
