file(REMOVE_RECURSE
  "CMakeFiles/rfn_mincut.dir/mincut/maxflow.cpp.o"
  "CMakeFiles/rfn_mincut.dir/mincut/maxflow.cpp.o.d"
  "CMakeFiles/rfn_mincut.dir/mincut/mincut.cpp.o"
  "CMakeFiles/rfn_mincut.dir/mincut/mincut.cpp.o.d"
  "librfn_mincut.a"
  "librfn_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
