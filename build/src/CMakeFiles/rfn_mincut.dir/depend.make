# Empty dependencies file for rfn_mincut.
# This may be replaced when dependencies are built.
