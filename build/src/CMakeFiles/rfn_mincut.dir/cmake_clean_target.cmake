file(REMOVE_RECURSE
  "librfn_mincut.a"
)
