# Empty dependencies file for rfn_sim.
# This may be replaced when dependencies are built.
