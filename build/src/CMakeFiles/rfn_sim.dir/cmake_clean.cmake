file(REMOVE_RECURSE
  "CMakeFiles/rfn_sim.dir/sim/sim3.cpp.o"
  "CMakeFiles/rfn_sim.dir/sim/sim3.cpp.o.d"
  "CMakeFiles/rfn_sim.dir/sim/sim64.cpp.o"
  "CMakeFiles/rfn_sim.dir/sim/sim64.cpp.o.d"
  "librfn_sim.a"
  "librfn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
