file(REMOVE_RECURSE
  "librfn_sim.a"
)
