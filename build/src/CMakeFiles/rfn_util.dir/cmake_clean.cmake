file(REMOVE_RECURSE
  "CMakeFiles/rfn_util.dir/util/log.cpp.o"
  "CMakeFiles/rfn_util.dir/util/log.cpp.o.d"
  "CMakeFiles/rfn_util.dir/util/options.cpp.o"
  "CMakeFiles/rfn_util.dir/util/options.cpp.o.d"
  "CMakeFiles/rfn_util.dir/util/stats.cpp.o"
  "CMakeFiles/rfn_util.dir/util/stats.cpp.o.d"
  "librfn_util.a"
  "librfn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
