# Empty dependencies file for rfn_util.
# This may be replaced when dependencies are built.
