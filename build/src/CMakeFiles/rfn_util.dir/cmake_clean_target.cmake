file(REMOVE_RECURSE
  "librfn_util.a"
)
