
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtlv/elaborate.cpp" "src/CMakeFiles/rfn_rtlv.dir/rtlv/elaborate.cpp.o" "gcc" "src/CMakeFiles/rfn_rtlv.dir/rtlv/elaborate.cpp.o.d"
  "/root/repo/src/rtlv/lexer.cpp" "src/CMakeFiles/rfn_rtlv.dir/rtlv/lexer.cpp.o" "gcc" "src/CMakeFiles/rfn_rtlv.dir/rtlv/lexer.cpp.o.d"
  "/root/repo/src/rtlv/parser.cpp" "src/CMakeFiles/rfn_rtlv.dir/rtlv/parser.cpp.o" "gcc" "src/CMakeFiles/rfn_rtlv.dir/rtlv/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
