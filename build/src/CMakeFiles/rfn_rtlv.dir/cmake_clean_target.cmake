file(REMOVE_RECURSE
  "librfn_rtlv.a"
)
