# Empty dependencies file for rfn_rtlv.
# This may be replaced when dependencies are built.
