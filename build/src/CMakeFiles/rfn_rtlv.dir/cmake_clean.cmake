file(REMOVE_RECURSE
  "CMakeFiles/rfn_rtlv.dir/rtlv/elaborate.cpp.o"
  "CMakeFiles/rfn_rtlv.dir/rtlv/elaborate.cpp.o.d"
  "CMakeFiles/rfn_rtlv.dir/rtlv/lexer.cpp.o"
  "CMakeFiles/rfn_rtlv.dir/rtlv/lexer.cpp.o.d"
  "CMakeFiles/rfn_rtlv.dir/rtlv/parser.cpp.o"
  "CMakeFiles/rfn_rtlv.dir/rtlv/parser.cpp.o.d"
  "librfn_rtlv.a"
  "librfn_rtlv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_rtlv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
