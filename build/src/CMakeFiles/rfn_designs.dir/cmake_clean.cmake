file(REMOVE_RECURSE
  "CMakeFiles/rfn_designs.dir/designs/fifo.cpp.o"
  "CMakeFiles/rfn_designs.dir/designs/fifo.cpp.o.d"
  "CMakeFiles/rfn_designs.dir/designs/iu.cpp.o"
  "CMakeFiles/rfn_designs.dir/designs/iu.cpp.o.d"
  "CMakeFiles/rfn_designs.dir/designs/processor.cpp.o"
  "CMakeFiles/rfn_designs.dir/designs/processor.cpp.o.d"
  "CMakeFiles/rfn_designs.dir/designs/usb.cpp.o"
  "CMakeFiles/rfn_designs.dir/designs/usb.cpp.o.d"
  "librfn_designs.a"
  "librfn_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
