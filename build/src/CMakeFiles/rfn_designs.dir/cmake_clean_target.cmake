file(REMOVE_RECURSE
  "librfn_designs.a"
)
