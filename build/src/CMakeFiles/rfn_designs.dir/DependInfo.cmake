
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/fifo.cpp" "src/CMakeFiles/rfn_designs.dir/designs/fifo.cpp.o" "gcc" "src/CMakeFiles/rfn_designs.dir/designs/fifo.cpp.o.d"
  "/root/repo/src/designs/iu.cpp" "src/CMakeFiles/rfn_designs.dir/designs/iu.cpp.o" "gcc" "src/CMakeFiles/rfn_designs.dir/designs/iu.cpp.o.d"
  "/root/repo/src/designs/processor.cpp" "src/CMakeFiles/rfn_designs.dir/designs/processor.cpp.o" "gcc" "src/CMakeFiles/rfn_designs.dir/designs/processor.cpp.o.d"
  "/root/repo/src/designs/usb.cpp" "src/CMakeFiles/rfn_designs.dir/designs/usb.cpp.o" "gcc" "src/CMakeFiles/rfn_designs.dir/designs/usb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_rtlv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
