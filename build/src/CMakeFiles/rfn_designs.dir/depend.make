# Empty dependencies file for rfn_designs.
# This may be replaced when dependencies are built.
