file(REMOVE_RECURSE
  "CMakeFiles/rfn_netlist.dir/netlist/analysis.cpp.o"
  "CMakeFiles/rfn_netlist.dir/netlist/analysis.cpp.o.d"
  "CMakeFiles/rfn_netlist.dir/netlist/blif.cpp.o"
  "CMakeFiles/rfn_netlist.dir/netlist/blif.cpp.o.d"
  "CMakeFiles/rfn_netlist.dir/netlist/builder.cpp.o"
  "CMakeFiles/rfn_netlist.dir/netlist/builder.cpp.o.d"
  "CMakeFiles/rfn_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/rfn_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/rfn_netlist.dir/netlist/subcircuit.cpp.o"
  "CMakeFiles/rfn_netlist.dir/netlist/subcircuit.cpp.o.d"
  "CMakeFiles/rfn_netlist.dir/netlist/writer.cpp.o"
  "CMakeFiles/rfn_netlist.dir/netlist/writer.cpp.o.d"
  "librfn_netlist.a"
  "librfn_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
