file(REMOVE_RECURSE
  "librfn_netlist.a"
)
