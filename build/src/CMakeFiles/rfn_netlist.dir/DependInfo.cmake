
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/analysis.cpp" "src/CMakeFiles/rfn_netlist.dir/netlist/analysis.cpp.o" "gcc" "src/CMakeFiles/rfn_netlist.dir/netlist/analysis.cpp.o.d"
  "/root/repo/src/netlist/blif.cpp" "src/CMakeFiles/rfn_netlist.dir/netlist/blif.cpp.o" "gcc" "src/CMakeFiles/rfn_netlist.dir/netlist/blif.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/rfn_netlist.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/rfn_netlist.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/rfn_netlist.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/rfn_netlist.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/subcircuit.cpp" "src/CMakeFiles/rfn_netlist.dir/netlist/subcircuit.cpp.o" "gcc" "src/CMakeFiles/rfn_netlist.dir/netlist/subcircuit.cpp.o.d"
  "/root/repo/src/netlist/writer.cpp" "src/CMakeFiles/rfn_netlist.dir/netlist/writer.cpp.o" "gcc" "src/CMakeFiles/rfn_netlist.dir/netlist/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
