# Empty dependencies file for rfn_netlist.
# This may be replaced when dependencies are built.
