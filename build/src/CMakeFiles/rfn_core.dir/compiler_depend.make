# Empty compiler generated dependencies file for rfn_core.
# This may be replaced when dependencies are built.
