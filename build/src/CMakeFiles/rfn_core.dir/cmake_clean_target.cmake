file(REMOVE_RECURSE
  "librfn_core.a"
)
