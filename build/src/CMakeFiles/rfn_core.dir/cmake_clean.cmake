file(REMOVE_RECURSE
  "CMakeFiles/rfn_core.dir/core/abstraction.cpp.o"
  "CMakeFiles/rfn_core.dir/core/abstraction.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/bfs_baseline.cpp.o"
  "CMakeFiles/rfn_core.dir/core/bfs_baseline.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/certify.cpp.o"
  "CMakeFiles/rfn_core.dir/core/certify.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/concretize.cpp.o"
  "CMakeFiles/rfn_core.dir/core/concretize.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/coverage.cpp.o"
  "CMakeFiles/rfn_core.dir/core/coverage.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/hybrid_trace.cpp.o"
  "CMakeFiles/rfn_core.dir/core/hybrid_trace.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/plain_mc.cpp.o"
  "CMakeFiles/rfn_core.dir/core/plain_mc.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/refine.cpp.o"
  "CMakeFiles/rfn_core.dir/core/refine.cpp.o.d"
  "CMakeFiles/rfn_core.dir/core/rfn.cpp.o"
  "CMakeFiles/rfn_core.dir/core/rfn.cpp.o.d"
  "librfn_core.a"
  "librfn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
