
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abstraction.cpp" "src/CMakeFiles/rfn_core.dir/core/abstraction.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/abstraction.cpp.o.d"
  "/root/repo/src/core/bfs_baseline.cpp" "src/CMakeFiles/rfn_core.dir/core/bfs_baseline.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/bfs_baseline.cpp.o.d"
  "/root/repo/src/core/certify.cpp" "src/CMakeFiles/rfn_core.dir/core/certify.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/certify.cpp.o.d"
  "/root/repo/src/core/concretize.cpp" "src/CMakeFiles/rfn_core.dir/core/concretize.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/concretize.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/CMakeFiles/rfn_core.dir/core/coverage.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/coverage.cpp.o.d"
  "/root/repo/src/core/hybrid_trace.cpp" "src/CMakeFiles/rfn_core.dir/core/hybrid_trace.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/hybrid_trace.cpp.o.d"
  "/root/repo/src/core/plain_mc.cpp" "src/CMakeFiles/rfn_core.dir/core/plain_mc.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/plain_mc.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/CMakeFiles/rfn_core.dir/core/refine.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/refine.cpp.o.d"
  "/root/repo/src/core/rfn.cpp" "src/CMakeFiles/rfn_core.dir/core/rfn.cpp.o" "gcc" "src/CMakeFiles/rfn_core.dir/core/rfn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
