file(REMOVE_RECURSE
  "librfn_bdd.a"
)
