# Empty dependencies file for rfn_bdd.
# This may be replaced when dependencies are built.
