file(REMOVE_RECURSE
  "CMakeFiles/rfn_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/rfn_bdd.dir/bdd/bdd.cpp.o.d"
  "CMakeFiles/rfn_bdd.dir/bdd/bdd_ops.cpp.o"
  "CMakeFiles/rfn_bdd.dir/bdd/bdd_ops.cpp.o.d"
  "CMakeFiles/rfn_bdd.dir/bdd/reorder.cpp.o"
  "CMakeFiles/rfn_bdd.dir/bdd/reorder.cpp.o.d"
  "librfn_bdd.a"
  "librfn_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
