# Empty dependencies file for verilog_frontend.
# This may be replaced when dependencies are built.
