file(REMOVE_RECURSE
  "CMakeFiles/verilog_frontend.dir/verilog_frontend.cpp.o"
  "CMakeFiles/verilog_frontend.dir/verilog_frontend.cpp.o.d"
  "verilog_frontend"
  "verilog_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
