file(REMOVE_RECURSE
  "CMakeFiles/fifo_verification.dir/fifo_verification.cpp.o"
  "CMakeFiles/fifo_verification.dir/fifo_verification.cpp.o.d"
  "fifo_verification"
  "fifo_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
