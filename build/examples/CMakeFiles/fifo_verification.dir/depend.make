# Empty dependencies file for fifo_verification.
# This may be replaced when dependencies are built.
