file(REMOVE_RECURSE
  "CMakeFiles/coverage_analysis.dir/coverage_analysis.cpp.o"
  "CMakeFiles/coverage_analysis.dir/coverage_analysis.cpp.o.d"
  "coverage_analysis"
  "coverage_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
