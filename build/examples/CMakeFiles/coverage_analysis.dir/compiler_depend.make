# Empty compiler generated dependencies file for coverage_analysis.
# This may be replaced when dependencies are built.
