# Empty dependencies file for ablation_hybrid_preimage.
# This may be replaced when dependencies are built.
