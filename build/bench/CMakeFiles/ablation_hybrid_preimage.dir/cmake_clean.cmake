file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_preimage.dir/ablation_hybrid_preimage.cpp.o"
  "CMakeFiles/ablation_hybrid_preimage.dir/ablation_hybrid_preimage.cpp.o.d"
  "ablation_hybrid_preimage"
  "ablation_hybrid_preimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_preimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
