file(REMOVE_RECURSE
  "CMakeFiles/fig1_mincut_characterization.dir/fig1_mincut_characterization.cpp.o"
  "CMakeFiles/fig1_mincut_characterization.dir/fig1_mincut_characterization.cpp.o.d"
  "fig1_mincut_characterization"
  "fig1_mincut_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mincut_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
