file(REMOVE_RECURSE
  "CMakeFiles/ablation_guided_atpg.dir/ablation_guided_atpg.cpp.o"
  "CMakeFiles/ablation_guided_atpg.dir/ablation_guided_atpg.cpp.o.d"
  "ablation_guided_atpg"
  "ablation_guided_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guided_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
