# Empty compiler generated dependencies file for ablation_guided_atpg.
# This may be replaced when dependencies are built.
