file(REMOVE_RECURSE
  "CMakeFiles/table1_property_verification.dir/table1_property_verification.cpp.o"
  "CMakeFiles/table1_property_verification.dir/table1_property_verification.cpp.o.d"
  "table1_property_verification"
  "table1_property_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_property_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
