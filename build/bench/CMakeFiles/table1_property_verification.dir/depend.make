# Empty dependencies file for table1_property_verification.
# This may be replaced when dependencies are built.
