# Empty compiler generated dependencies file for table2_coverage_analysis.
# This may be replaced when dependencies are built.
