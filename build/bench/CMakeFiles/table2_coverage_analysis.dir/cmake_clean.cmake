file(REMOVE_RECURSE
  "CMakeFiles/table2_coverage_analysis.dir/table2_coverage_analysis.cpp.o"
  "CMakeFiles/table2_coverage_analysis.dir/table2_coverage_analysis.cpp.o.d"
  "table2_coverage_analysis"
  "table2_coverage_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_coverage_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
