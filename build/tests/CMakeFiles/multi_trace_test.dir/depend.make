# Empty dependencies file for multi_trace_test.
# This may be replaced when dependencies are built.
