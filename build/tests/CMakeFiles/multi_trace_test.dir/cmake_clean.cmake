file(REMOVE_RECURSE
  "CMakeFiles/multi_trace_test.dir/multi_trace_test.cpp.o"
  "CMakeFiles/multi_trace_test.dir/multi_trace_test.cpp.o.d"
  "multi_trace_test"
  "multi_trace_test.pdb"
  "multi_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
