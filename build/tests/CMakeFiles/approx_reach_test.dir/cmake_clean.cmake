file(REMOVE_RECURSE
  "CMakeFiles/approx_reach_test.dir/approx_reach_test.cpp.o"
  "CMakeFiles/approx_reach_test.dir/approx_reach_test.cpp.o.d"
  "approx_reach_test"
  "approx_reach_test.pdb"
  "approx_reach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_reach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
