
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approx_reach_test.cpp" "tests/CMakeFiles/approx_reach_test.dir/approx_reach_test.cpp.o" "gcc" "tests/CMakeFiles/approx_reach_test.dir/approx_reach_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_rtlv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
