# Empty dependencies file for approx_reach_test.
# This may be replaced when dependencies are built.
