file(REMOVE_RECURSE
  "CMakeFiles/rtlv_hierarchy_test.dir/rtlv_hierarchy_test.cpp.o"
  "CMakeFiles/rtlv_hierarchy_test.dir/rtlv_hierarchy_test.cpp.o.d"
  "rtlv_hierarchy_test"
  "rtlv_hierarchy_test.pdb"
  "rtlv_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlv_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
