# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rtlv_hierarchy_test.
