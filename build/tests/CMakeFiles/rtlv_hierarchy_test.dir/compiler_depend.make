# Empty compiler generated dependencies file for rtlv_hierarchy_test.
# This may be replaced when dependencies are built.
