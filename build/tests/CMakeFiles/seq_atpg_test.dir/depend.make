# Empty dependencies file for seq_atpg_test.
# This may be replaced when dependencies are built.
