file(REMOVE_RECURSE
  "CMakeFiles/seq_atpg_test.dir/seq_atpg_test.cpp.o"
  "CMakeFiles/seq_atpg_test.dir/seq_atpg_test.cpp.o.d"
  "seq_atpg_test"
  "seq_atpg_test.pdb"
  "seq_atpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_atpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
