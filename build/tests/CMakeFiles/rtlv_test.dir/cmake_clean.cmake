file(REMOVE_RECURSE
  "CMakeFiles/rtlv_test.dir/rtlv_test.cpp.o"
  "CMakeFiles/rtlv_test.dir/rtlv_test.cpp.o.d"
  "rtlv_test"
  "rtlv_test.pdb"
  "rtlv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
