# Empty dependencies file for rtlv_test.
# This may be replaced when dependencies are built.
