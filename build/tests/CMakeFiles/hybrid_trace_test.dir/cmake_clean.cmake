file(REMOVE_RECURSE
  "CMakeFiles/hybrid_trace_test.dir/hybrid_trace_test.cpp.o"
  "CMakeFiles/hybrid_trace_test.dir/hybrid_trace_test.cpp.o.d"
  "hybrid_trace_test"
  "hybrid_trace_test.pdb"
  "hybrid_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
