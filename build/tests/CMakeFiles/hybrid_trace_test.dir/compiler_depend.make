# Empty compiler generated dependencies file for hybrid_trace_test.
# This may be replaced when dependencies are built.
