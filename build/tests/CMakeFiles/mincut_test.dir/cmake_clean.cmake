file(REMOVE_RECURSE
  "CMakeFiles/mincut_test.dir/mincut_test.cpp.o"
  "CMakeFiles/mincut_test.dir/mincut_test.cpp.o.d"
  "mincut_test"
  "mincut_test.pdb"
  "mincut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
