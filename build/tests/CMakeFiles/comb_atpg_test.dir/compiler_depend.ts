# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for comb_atpg_test.
