# Empty compiler generated dependencies file for comb_atpg_test.
# This may be replaced when dependencies are built.
