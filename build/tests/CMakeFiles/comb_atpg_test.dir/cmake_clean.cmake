file(REMOVE_RECURSE
  "CMakeFiles/comb_atpg_test.dir/comb_atpg_test.cpp.o"
  "CMakeFiles/comb_atpg_test.dir/comb_atpg_test.cpp.o.d"
  "comb_atpg_test"
  "comb_atpg_test.pdb"
  "comb_atpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comb_atpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
