# Empty dependencies file for bdd_property_test.
# This may be replaced when dependencies are built.
