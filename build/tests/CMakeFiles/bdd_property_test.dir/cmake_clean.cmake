file(REMOVE_RECURSE
  "CMakeFiles/bdd_property_test.dir/bdd_property_test.cpp.o"
  "CMakeFiles/bdd_property_test.dir/bdd_property_test.cpp.o.d"
  "bdd_property_test"
  "bdd_property_test.pdb"
  "bdd_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
