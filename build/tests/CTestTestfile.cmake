# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/subcircuit_test[1]_include.cmake")
include("/root/repo/build/tests/blif_test[1]_include.cmake")
include("/root/repo/build/tests/certify_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_reorder_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_property_test[1]_include.cmake")
include("/root/repo/build/tests/implication_test[1]_include.cmake")
include("/root/repo/build/tests/comb_atpg_test[1]_include.cmake")
include("/root/repo/build/tests/seq_atpg_test[1]_include.cmake")
include("/root/repo/build/tests/mincut_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/approx_reach_test[1]_include.cmake")
include("/root/repo/build/tests/cross_engine_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/rtlv_test[1]_include.cmake")
include("/root/repo/build/tests/rtlv_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/designs_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_trace_test[1]_include.cmake")
include("/root/repo/build/tests/multi_trace_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
