file(REMOVE_RECURSE
  "CMakeFiles/rfn_cli.dir/rfn_cli.cpp.o"
  "CMakeFiles/rfn_cli.dir/rfn_cli.cpp.o.d"
  "rfn"
  "rfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
