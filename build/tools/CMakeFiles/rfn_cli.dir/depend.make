# Empty dependencies file for rfn_cli.
# This may be replaced when dependencies are built.
