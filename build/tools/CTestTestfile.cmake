# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_verify_holds "/root/repo/build/tools/rfn" "verify" "/root/repo/tools/../tests/data/demo.v" "--bad" "bad_q" "--certify")
set_tests_properties(cli_verify_holds PROPERTIES  PASS_REGULAR_EXPRESSION "certificate: OK" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify_fails "/root/repo/build/tools/rfn" "verify" "/root/repo/tools/../tests/data/demo_buggy.v" "--bad" "bad_q" "--certify" "--dump-trace")
set_tests_properties(cli_verify_fails PROPERTIES  PASS_REGULAR_EXPRESSION "certificate: OK" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_coverage "/root/repo/build/tools/rfn" "coverage" "/root/repo/tools/../tests/data/demo.v" "--signals" "cnt[0],cnt[1],cnt[2]")
set_tests_properties(cli_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_translate "/root/repo/build/tools/rfn" "translate" "/root/repo/tools/../tests/data/demo.v")
set_tests_properties(cli_translate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
