// Figure 1 — No-cut cubes and min-cut cubes.
//
// The paper's Figure 1 is a structural diagram of the abstract model N, its
// min-cut design MC, and which signals appear in no-cut vs min-cut cubes.
// We reproduce it as a *measured* characterization: for the abstract models
// RFN actually visits on the Table 1 workloads, report
//   * the number of primary inputs of N (what naive pre-image would face),
//   * the number of primary inputs in the registers' fanin cone,
//   * the number of primary inputs of MC (the min-cut), and
//   * how many trace-extraction cubes were no-cut vs min-cut (i.e. needed
//     combinational ATPG justification).
//
// The paper's headline: "the min-cut subcircuits of abstract models that
// contain thousands of primary inputs tend to contain less than a couple
// hundred primary inputs".

#include <algorithm>
#include <cstdio>

#include "core/abstraction.hpp"
#include "core/hybrid_trace.hpp"
#include "core/refine.hpp"
#include "core/rfn.hpp"
#include "designs/fifo.hpp"
#include "designs/processor.hpp"
#include "mc/image.hpp"
#include "mincut/mincut.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

using namespace rfn;
using namespace rfn::designs;

namespace {

// Runs RFN while instrumenting every iteration's abstract model with
// min-cut statistics (recomputed standalone so the numbers are exact even
// for Proved iterations that never ran the hybrid engine).
void characterize(const char* design_name, const Netlist& m, GateId bad, Table& table,
                  double time_limit) {
  std::vector<GateId> included = initial_abstraction_registers(m, {bad});
  const std::vector<GateId> roots{bad};
  const Deadline deadline(time_limit);

  for (size_t iter = 0; iter < 64 && !deadline.expired(); ++iter) {
    std::sort(included.begin(), included.end());
    const Subcircuit sub = extract_abstract_model(m, roots, included);
    const MinCutResult mcr = compute_mincut_design(sub.net);

    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    mgr.set_auto_reorder(true);
    ImageComputer img(enc);
    const GateId bad_new = sub.to_new(bad);
    const Bdd bad_set = mgr.exists(enc.signal_fn(bad_new), enc.input_vars());
    ReachOptions ropt;
    ropt.time_limit_s = deadline.remaining_seconds();
    const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set, ropt);

    HybridTraceStats st;
    st.model_inputs = sub.net.num_inputs();
    st.cone_inputs = mcr.cone_inputs;
    st.mc_inputs = mcr.mc.net.num_inputs();
    Trace abs_trace_n;
    if (reach.status == ReachStatus::BadReachable)
      abs_trace_n = hybrid_error_trace(enc, sub.net, reach, bad_set, {}, &st);

    table.add_row({std::string(design_name) + " iter " + std::to_string(iter),
                   fmt_int(static_cast<int64_t>(sub.net.num_regs())),
                   fmt_int(static_cast<int64_t>(st.model_inputs)),
                   fmt_int(static_cast<int64_t>(st.cone_inputs)),
                   fmt_int(static_cast<int64_t>(st.mc_inputs)),
                   fmt_int(static_cast<int64_t>(st.nocut_cubes)),
                   fmt_int(static_cast<int64_t>(st.mincut_cubes)),
                   to_string(reach.status)});

    if (reach.status != ReachStatus::BadReachable || abs_trace_n.empty()) break;
    const Trace abs_trace = sub.trace_to_old(abs_trace_n);
    const std::vector<GateId> crucial =
        identify_crucial_registers(m, roots, bad, included, abs_trace);
    if (crucial.empty()) break;
    for (GateId r : crucial) included.push_back(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bool small = opts.get("scale", "paper") == "small";
  ProcessorParams proc_params = paper_scale_processor();
  if (small) {
    proc_params.units = 4;
    proc_params.pipe_depth = 6;
    proc_params.result_regs = 24;
  }
  const ProcessorDesign proc = make_processor(proc_params);
  const FifoDesign fifo = make_fifo({});

  std::printf("Figure 1 (measured): abstract-model inputs vs min-cut inputs, and\n"
              "no-cut vs min-cut cube counts during hybrid trace extraction\n\n");
  Table table({"abstract model", "regs", "N inputs", "cone inputs", "MC inputs",
               "no-cut cubes", "min-cut cubes", "step-2 status"});
  characterize("mutex", proc.netlist, proc.bad_mutex, table,
               opts.get_double("time-limit", 300.0));
  characterize("psh_full", fifo.netlist, fifo.bad_push_full, table,
               opts.get_double("time-limit", 300.0));
  table.print();
  std::printf("\nshape check: MC inputs should stay far below N inputs once the\n"
              "abstraction grows (paper: thousands of inputs -> a couple hundred).\n");
  return 0;
}
