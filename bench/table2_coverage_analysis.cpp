// Table 2 — Unreachable-coverage-state analysis results.
//
// Reproduces the paper's second experiment: seven coverage-signal sets
// (IU1..IU5 with 10 signals / 1,024 coverage states each; USB1 with 6;
// USB2 with 21), analyzed by RFN under a time budget and by the BFS
// topological baseline of Ho et al. [8] with a fixed 60-register abstract
// model.
//
//   paper columns: set | regs in COI | gates in COI | RFN unreachable |
//                  RFN abstract regs | BFS unreachable | BFS time (s)
//
// The paper's qualitative claims to reproduce: "RFN uniformly beats or
// matches the BFS results" and "the time taken by BFS is more unpredictable
// than RFN".
//
// Flags: --scale small|paper, --time-limit S (RFN budget per set, paper
// used 1800), --bfs-regs K (paper used 60), --bfs-time S.

#include <algorithm>
#include <cstdio>

#include "core/bfs_baseline.hpp"
#include "core/coverage.hpp"
#include "designs/iu.hpp"
#include "designs/usb.hpp"
#include "netlist/analysis.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

using namespace rfn;
using namespace rfn::designs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bool small = opts.get("scale", "paper") == "small";

  IuParams iu_params = small ? IuParams{} : paper_scale_iu();
  UsbParams usb_params = small ? UsbParams{} : paper_scale_usb();
  const IuDesign iu = make_iu(iu_params);
  const UsbDesign usb = make_usb(usb_params);

  std::printf("Table 2. Unreachable-coverage-state analysis results\n");
  std::printf("designs: IU %zu regs / %zu gates; USB %zu regs / %zu gates\n",
              iu.netlist.num_regs(), iu.netlist.num_gates(), usb.netlist.num_regs(),
              usb.netlist.num_gates());
  const double rfn_budget = opts.get_double("time-limit", 120.0);
  const size_t bfs_regs = static_cast<size_t>(opts.get_int("bfs-regs", 60));
  std::printf("RFN budget %.0f s per set; BFS abstract models of %zu registers\n\n",
              rfn_budget, bfs_regs);

  struct SetRow {
    const char* name;
    const Netlist* design;
    const std::vector<GateId>* signals;
  };
  const SetRow sets[] = {
      {"IU1", &iu.netlist, &iu.coverage_sets[0]},
      {"IU2", &iu.netlist, &iu.coverage_sets[1]},
      {"IU3", &iu.netlist, &iu.coverage_sets[2]},
      {"IU4", &iu.netlist, &iu.coverage_sets[3]},
      {"IU5", &iu.netlist, &iu.coverage_sets[4]},
      {"USB1", &usb.netlist, &usb.usb1},
      {"USB2", &usb.netlist, &usb.usb2},
  };

  Table table({"set", "regs in COI", "gates in COI", "RFN unreach", "RFN abs regs",
               "RFN time (s)", "BFS unreach", "BFS time (s)"});
  size_t rfn_wins = 0, ties = 0;
  double bfs_min = 1e30, bfs_max = 0.0;
  for (const SetRow& set : sets) {
    const auto mask = coi(*set.design, *set.signals);
    const auto [coi_regs, coi_gates] = count_regs_gates(*set.design, mask);

    CoverageOptions cov_opts;
    cov_opts.time_limit_s = rfn_budget;
    const CoverageResult r = rfn_coverage_analysis(*set.design, *set.signals, cov_opts);

    BfsBaselineOptions bfs_opts;
    bfs_opts.num_registers = bfs_regs;
    bfs_opts.reach.time_limit_s = opts.get_double("bfs-time", 300.0);
    const BfsBaselineResult bfs = bfs_coverage_analysis(*set.design, *set.signals, bfs_opts);

    table.add_row({set.name, fmt_int(static_cast<int64_t>(coi_regs)),
                   fmt_int(static_cast<int64_t>(coi_gates)),
                   fmt_int(static_cast<int64_t>(r.unreachable)),
                   fmt_int(static_cast<int64_t>(r.final_abstract_regs)),
                   fmt_double(r.seconds, 1), fmt_int(static_cast<int64_t>(bfs.unreachable)),
                   fmt_double(bfs.seconds, 1)});
    if (r.unreachable > bfs.unreachable) ++rfn_wins;
    if (r.unreachable == bfs.unreachable) ++ties;
    bfs_min = std::min(bfs_min, bfs.seconds);
    bfs_max = std::max(bfs_max, bfs.seconds);
  }
  table.print();
  std::printf("\nRFN beats BFS on %zu sets and matches it on %zu of 7 "
              "(paper: \"RFN uniformly beats or matches the BFS results\").\n",
              rfn_wins, ties);
  std::printf("BFS time spread: %.1f s .. %.1f s (paper: \"the time taken by BFS is "
              "more unpredictable\").\n",
              bfs_min, bfs_max);
  return 0;
}
