// Table 1 — Property Verification Results.
//
// Reproduces the paper's first experiment: five safety properties, each
// modeled as an unreachability property with a watchdog register, verified
// by RFN; plain symbolic model checking with COI reduction runs alongside
// under the same resource budget (the paper: "Our symbolic model checker
// failed to verify any of the above five properties").
//
//   paper columns: property | regs in COI | gates in COI | time (s) |
//                  result | regs in abstract model
//
// Flags: --scale small|paper (default paper), --time-limit S, --mc-time S,
//        --mc-nodes N.

#include <algorithm>
#include <cstdio>

#include "core/certify.hpp"
#include "core/plain_mc.hpp"
#include "core/rfn.hpp"
#include "designs/fifo.hpp"
#include "designs/processor.hpp"
#include "netlist/analysis.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

using namespace rfn;
using namespace rfn::designs;

namespace {

struct Row {
  const char* name;
  const Netlist* design;
  GateId bad;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bool small = opts.get("scale", "paper") == "small";

  ProcessorParams proc_params = paper_scale_processor();
  FifoParams fifo_params;
  if (small) {
    proc_params.units = 4;
    proc_params.pipe_depth = 6;
    proc_params.pipe_width = 6;
    proc_params.result_regs = 24;
  }
  const ProcessorDesign proc = make_processor(proc_params);
  const FifoDesign fifo = make_fifo(fifo_params);

  const Row rows[] = {
      {"mutex", &proc.netlist, proc.bad_mutex},
      {"error_flag", &proc.netlist, proc.error_flag},
      {"psh_hf", &fifo.netlist, fifo.bad_push_hf},
      {"psh_af", &fifo.netlist, fifo.bad_push_af},
      {"psh_full", &fifo.netlist, fifo.bad_push_full},
  };

  std::printf("Table 1. Property Verification Results (RFN)\n");
  std::printf("designs: processor %zu regs / %zu gates; FIFO %zu regs / %zu gates\n\n",
              proc.netlist.num_regs(), proc.netlist.num_gates(), fifo.netlist.num_regs(),
              fifo.netlist.num_gates());

  Table table({"property", "regs in COI", "gates in COI", "time (s)", "result",
               "regs in abstract model", "certified"});
  std::vector<Verdict> verdicts;
  for (const Row& row : rows) {
    const auto mask = coi(*row.design, {row.bad});
    const auto [coi_regs, coi_gates] = count_regs_gates(*row.design, mask);

    RfnOptions rfn_opts;
    rfn_opts.time_limit_s = opts.get_double("time-limit", 900.0);
    RfnVerifier verifier(*row.design, row.bad, rfn_opts);
    const RfnResult r = verifier.run();
    verdicts.push_back(r.verdict);
    // Every verdict is re-checked through the independent certifier (trace
    // replay for F, inductive invariant for T).
    const CertifyResult cert =
        certify(*row.design, row.bad, r, verifier.abstract_registers());
    table.add_row({row.name, fmt_int(static_cast<int64_t>(coi_regs)),
                   fmt_int(static_cast<int64_t>(coi_gates)), fmt_double(r.seconds, 1),
                   to_string(r.verdict),
                   fmt_int(static_cast<int64_t>(r.final_abstract_regs)),
                   cert.ok ? "yes" : ("NO: " + cert.detail)});
    if (r.verdict == Verdict::Fails)
      std::printf("  [%s] violated: error trace of %zu cycles\n", row.name,
                  r.error_trace.cycles());
  }
  std::printf("\n");
  table.print();

  // Baseline: plain symbolic MC with COI reduction under a bounded budget.
  std::printf("\nBaseline: plain symbolic model checking with COI reduction "
              "(budget: %.0f s, %lld nodes)\n",
              opts.get_double("mc-time", 60.0),
              static_cast<long long>(opts.get_int("mc-nodes", 1 << 21)));
  Table mc_table({"property", "plain MC result", "time (s)", "fixpoint steps"});
  size_t mc_failures = 0;
  for (const Row& row : rows) {
    ReachOptions mc_opts;
    mc_opts.time_limit_s = opts.get_double("mc-time", 60.0);
    mc_opts.max_live_nodes = static_cast<size_t>(opts.get_int("mc-nodes", 1 << 21));
    const PlainMcResult mc = plain_model_check(*row.design, row.bad, mc_opts);
    if (mc.verdict == Verdict::Unknown) ++mc_failures;
    mc_table.add_row({row.name,
                      mc.verdict == Verdict::Unknown ? "fails (resources)"
                                                     : to_string(mc.verdict),
                      fmt_double(mc.seconds, 1), fmt_int(static_cast<int64_t>(mc.steps))});
  }
  mc_table.print();
  std::printf("\nplain MC exhausted resources on %zu of 5 properties; "
              "RFN produced a verdict on %zu of 5.\n",
              mc_failures,
              static_cast<size_t>(std::count_if(verdicts.begin(), verdicts.end(),
                                                [](Verdict v) { return v != Verdict::Unknown; })));
  return 0;
}
