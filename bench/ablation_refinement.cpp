// Ablation — the two-phase refinement of Section 2.4.
//
// Instruments every RFN iteration on the Table 1 workloads and reports how
// many crucial-register candidates 3-valued simulation produced, how many
// survived the greedy sequential-ATPG minimization, and whether the trace
// was actually invalidated. Also compares against the naive alternative of
// adding *all* phase-1 candidates (no greedy pass): total registers the
// final abstraction would carry.

#include <algorithm>
#include <cstdio>

#include "core/abstraction.hpp"
#include "core/concretize.hpp"
#include "core/hybrid_trace.hpp"
#include "core/refine.hpp"
#include "core/rfn.hpp"
#include "designs/fifo.hpp"
#include "designs/processor.hpp"
#include "mc/image.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

using namespace rfn;
using namespace rfn::designs;

namespace {

struct LoopTotals {
  size_t final_regs_greedy = 0;
  size_t final_regs_naive = 0;
  size_t iterations = 0;
  Verdict verdict = Verdict::Unknown;
};

LoopTotals run_instrumented(const char* name, const Netlist& m, GateId bad, Table& table,
                            bool greedy, double time_limit) {
  LoopTotals totals;
  std::vector<GateId> included = initial_abstraction_registers(m, {bad});
  const std::vector<GateId> roots{bad};
  const Deadline deadline(time_limit);

  for (size_t iter = 0; iter < 128 && !deadline.expired(); ++iter) {
    ++totals.iterations;
    std::sort(included.begin(), included.end());
    const Subcircuit sub = extract_abstract_model(m, roots, included);
    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    mgr.set_auto_reorder(true);
    ImageComputer img(enc);
    const Bdd bad_set =
        mgr.exists(enc.signal_fn(sub.to_new(bad)), enc.input_vars());
    ReachOptions ropt;
    ropt.time_limit_s = deadline.remaining_seconds();
    const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set, ropt);
    if (reach.status == ReachStatus::Proved) {
      totals.verdict = Verdict::Holds;
      break;
    }
    if (reach.status != ReachStatus::BadReachable) break;
    const Trace abs_trace_n = hybrid_error_trace(enc, sub.net, reach, bad_set);
    if (abs_trace_n.empty()) break;
    const Trace abs_trace = sub.trace_to_old(abs_trace_n);
    const ConcretizeResult conc = concretize_trace(m, abs_trace, bad);
    if (conc.status == AtpgStatus::Sat) {
      totals.verdict = Verdict::Fails;
      break;
    }

    if (greedy) {
      RefineStats st;
      const std::vector<GateId> crucial =
          identify_crucial_registers(m, roots, bad, included, abs_trace, {}, &st);
      table.add_row({std::string(name) + " iter " + std::to_string(iter),
                     fmt_int(static_cast<int64_t>(abs_trace.cycles())),
                     fmt_int(static_cast<int64_t>(st.conflict_candidates)),
                     fmt_int(static_cast<int64_t>(st.final_count)),
                     st.trace_invalidated ? "yes" : "no",
                     fmt_int(static_cast<int64_t>(st.atpg_calls))});
      if (crucial.empty()) break;
      for (GateId r : crucial) included.push_back(r);
    } else {
      const std::vector<GateId> candidates =
          crucial_candidates_by_simulation(m, abs_trace, included, 8);
      if (candidates.empty()) break;
      for (GateId r : candidates) included.push_back(r);
    }
  }
  std::sort(included.begin(), included.end());
  included.erase(std::unique(included.begin(), included.end()), included.end());
  (greedy ? totals.final_regs_greedy : totals.final_regs_naive) = included.size();
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double time_limit = opts.get_double("time-limit", 300.0);
  ProcessorParams proc_params;
  proc_params.units = 6;
  proc_params.pipe_depth = 8;
  proc_params.pipe_width = 8;
  proc_params.result_regs = 64;
  const ProcessorDesign proc = make_processor(proc_params);
  const FifoDesign fifo = make_fifo({});

  std::printf("Ablation: two-phase refinement (Section 2.4)\n\n");
  Table table({"refinement", "trace cycles", "phase-1 candidates", "kept after greedy",
               "trace invalidated", "ATPG calls"});

  struct Job {
    const char* name;
    const Netlist* m;
    GateId bad;
  };
  const Job jobs[] = {
      {"mutex", &proc.netlist, proc.bad_mutex},
      {"psh_full", &fifo.netlist, fifo.bad_push_full},
  };
  Table summary({"property", "verdict", "final regs (greedy)", "final regs (naive)"});
  for (const Job& job : jobs) {
    const LoopTotals g = run_instrumented(job.name, *job.m, job.bad, table, true,
                                          time_limit);
    const LoopTotals n = run_instrumented(job.name, *job.m, job.bad, table, false,
                                          time_limit);
    summary.add_row({job.name, to_string(g.verdict),
                     fmt_int(static_cast<int64_t>(g.final_regs_greedy)),
                     fmt_int(static_cast<int64_t>(n.final_regs_naive))});
  }
  table.print();
  std::printf("\nfinal abstraction sizes, greedy minimization vs adding all phase-1 "
              "candidates:\n");
  summary.print();
  return 0;
}
