// Ablation — the hybrid BDD-ATPG engine vs pure BDD pre-image (paper
// Section 2.2: "a subcircuit containing 50 registers might contain 1,000
// inputs. As a result, the pre-image computation cannot complete").
//
// Build abstract models with a growing number of pseudo-inputs (each
// register's next-state logic fans in from `fan` cut registers through a
// mixing tree), then time
//   (a) pure BDD pre-image with inputs on the model itself, and
//   (b) the min-cut pre-image the hybrid engine uses,
// both under the same node/time budget.

#include <cstdio>

#include "mc/image.hpp"
#include "mincut/mincut.hpp"
#include "netlist/builder.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

using namespace rfn;

namespace {

// Abstract-model shape: `regs` registers, each updated from a mixing tree
// over `fan` dedicated pseudo-inputs. The tree is input-only, so it lies
// outside the free-cut design and each register's logic funnels through a
// single waist signal: the min cut has one input per register while the
// model itself has regs*fan primary inputs — exactly the "50 registers,
// 1,000 inputs" shape of the paper.
Netlist make_wide_model(size_t regs, size_t fan, Rng& rng) {
  NetBuilder b;
  Word r(regs);
  for (size_t i = 0; i < regs; ++i) r[i] = b.reg("r" + std::to_string(i));
  for (size_t i = 0; i < regs; ++i) {
    GateId mix = b.input("x" + std::to_string(i) + "_0");
    for (size_t j = 1; j < fan; ++j) {
      const GateId in = b.input("x" + std::to_string(i) + "_" + std::to_string(j));
      switch (rng.below(3)) {
        case 0: mix = b.xor_(mix, in); break;
        case 1: mix = b.or_(mix, in); break;
        default: mix = b.and_(mix, b.not_(in)); break;
      }
    }
    const GateId funnel = mix;  // the narrow waist (one signal per register)
    b.set_next(r[i], b.mux(r[(i + 1) % regs], b.xor_(funnel, r[i]),
                           b.and_(funnel, r[(i + 2) % regs])));
  }
  b.output("anchor", r[0]);
  return b.take();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double time_budget = opts.get_double("op-time", 15.0);
  const size_t node_budget = static_cast<size_t>(opts.get_int("nodes", 1 << 21));
  Rng rng(2024);

  std::printf("Ablation: pure BDD pre-image vs min-cut pre-image (Section 2.2)\n");
  std::printf("budget per pre-image: %.0f s / %zu nodes\n\n", time_budget, node_budget);

  Table table({"regs", "model inputs", "MC inputs", "pure pre-image",
               "pure time (s)", "mincut pre-image", "mincut time (s)"});

  for (size_t regs : {12u, 20u, 28u, 36u}) {
    const size_t fan = 24;
    const Netlist n = make_wide_model(regs, fan, rng);
    const MinCutResult mcr = compute_mincut_design(n);

    BddMgr mgr;
    Encoder enc(mgr, n);
    mgr.set_auto_reorder(true);
    mgr.set_node_budget(node_budget);

    // Target cube: a random valuation of half the registers.
    std::vector<BddLit> target_lits;
    for (size_t i = 0; i < regs; i += 2)
      target_lits.push_back({enc.state_var(n.regs()[i]), rng.flip()});
    const Bdd target = mgr.cube(target_lits);

    // (a) pure BDD pre-image on the model itself.
    std::string pure_result = "ok";
    double pure_time = 0.0;
    {
      const Deadline deadline(time_budget);
      mgr.set_deadline(&deadline);
      Stopwatch w;
      ImageComputer img(enc);
      Bdd pre;
      if (img.aborted())
        pure_result = "blowup (build)";
      else
        pre = img.pre_image_with_inputs(target);
      if (pure_result == "ok" && pre.is_null()) pure_result = "blowup";
      pure_time = w.seconds();
      mgr.set_deadline(nullptr);
    }

    // (b) min-cut pre-image (fresh manager so (a)'s wreckage is not reused).
    std::string mc_result = "ok";
    double mc_time = 0.0;
    {
      BddMgr mgr2;
      Encoder enc2(mgr2, n);
      mgr2.set_auto_reorder(true);
      mgr2.set_node_budget(node_budget);
      Encoder enc_mc(mgr2, mcr.mc, enc2);
      const Deadline deadline(time_budget);
      mgr2.set_deadline(&deadline);
      Stopwatch w;
      ImageComputer img_mc(enc_mc);
      std::vector<BddLit> lits2;
      for (size_t i = 0; i < regs; i += 2)
        lits2.push_back({enc2.state_var(n.regs()[i]), target_lits[i / 2].positive});
      const Bdd target2 = mgr2.cube(lits2);
      Bdd pre;
      if (img_mc.aborted())
        mc_result = "blowup (build)";
      else
        pre = img_mc.pre_image_with_inputs(target2);
      if (mc_result == "ok" && pre.is_null()) mc_result = "blowup";
      mc_time = w.seconds();
      mgr2.set_deadline(nullptr);
    }

    table.add_row({fmt_int(static_cast<int64_t>(regs)),
                   fmt_int(static_cast<int64_t>(n.num_inputs())),
                   fmt_int(static_cast<int64_t>(mcr.mc.net.num_inputs())), pure_result,
                   fmt_double(pure_time, 2), mc_result, fmt_double(mc_time, 2)});
  }
  table.print();
  std::printf("\nshape check: the pure pre-image should blow up (or slow down sharply)\n"
              "as model inputs grow, while the min-cut pre-image stays cheap.\n");
  return 0;
}
