// Ablation — abstract-trace guidance for sequential ATPG (paper Section
// 2.3: "In some of our experiments, sequential ATPG with guidance can
// search for an order of magnitude more cycles").
//
// Sweep the required trace depth on a gated-counter design (each extra
// counter bit roughly doubles the depth) and compare unguided sequential
// ATPG against the same search guided by per-cycle constraint cubes of the
// kind an abstract error trace provides.

#include <cstdio>

#include "atpg/seq_atpg.hpp"
#include "core/status.hpp"
#include "netlist/builder.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

using namespace rfn;

namespace {

struct Target {
  Netlist netlist;
  GateId en = kNullGate;
  GateId hit = kNullGate;
};

// Gated counter with distracting side inputs: reaching `value` requires
// enable high for `value` consecutive cycles while the distractors make the
// unguided search space wide.
Target make_target(size_t bits, uint64_t value, size_t distractors) {
  NetBuilder b;
  Target t;
  t.en = b.input("en");
  std::vector<GateId> noise;
  for (size_t i = 0; i < distractors; ++i) noise.push_back(b.input("d" + std::to_string(i)));
  const Word cnt = b.reg_word("cnt", bits, 0);
  // Distractor registers shift the noise around; they gate nothing but give
  // the backtracer plenty of irrelevant X paths.
  Word shadow = b.reg_word("shadow", distractors, 0);
  for (size_t i = 0; i < distractors; ++i)
    b.set_next(shadow[i], b.xor_(noise[i], shadow[(i + 1) % distractors]));
  b.set_next_word(cnt, b.mux_word(t.en, cnt, b.inc_word(cnt)));
  t.hit = b.and_(b.eq_const(cnt, value), b.not_(b.and_(shadow[0], b.not_(shadow[0]))));
  b.output("hit", t.hit);
  t.netlist = b.take();
  t.en = t.netlist.find("en");
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const uint64_t backtrack_budget =
      static_cast<uint64_t>(opts.get_int("backtracks", 50000));
  const double time_budget = opts.get_double("atpg-time", 20.0);

  std::printf("Ablation: guided vs unguided sequential ATPG (Section 2.3)\n");
  std::printf("budget per run: %llu backtracks / %.0f s\n\n",
              static_cast<unsigned long long>(backtrack_budget), time_budget);

  Table table({"depth (cycles)", "unguided", "unguided backtracks", "unguided time (s)",
               "guided", "guided backtracks", "guided time (s)"});

  size_t deepest_unguided = 0, deepest_guided = 0;
  for (size_t bits = 3; bits <= 7; ++bits) {
    const uint64_t value = (1ull << bits) - 2;
    const size_t depth = static_cast<size_t>(value) + 1;
    Target t = make_target(bits, value, 6);

    AtpgOptions budget;
    budget.max_backtracks = backtrack_budget;
    budget.time_limit_s = time_budget;

    Stopwatch uw;
    const SeqAtpgResult unguided =
        reach_target(t.netlist, depth, t.hit, true, {}, budget);
    const double ut = uw.seconds();

    std::vector<Cube> guidance(depth);
    for (size_t c = 0; c + 1 < depth; ++c) guidance[c] = {{t.en, true}};
    Stopwatch gw;
    const SeqAtpgResult guided =
        reach_target(t.netlist, depth, t.hit, true, guidance, budget);
    const double gt = gw.seconds();

    if (unguided.status == AtpgStatus::Sat) deepest_unguided = depth;
    if (guided.status == AtpgStatus::Sat) deepest_guided = depth;

    table.add_row({fmt_int(static_cast<int64_t>(depth)), to_string(unguided.status),
                   fmt_int(static_cast<int64_t>(unguided.backtracks)), fmt_double(ut, 2),
                   to_string(guided.status),
                   fmt_int(static_cast<int64_t>(guided.backtracks)), fmt_double(gt, 2)});
  }
  table.print();
  std::printf("\ndeepest trace found: unguided %zu cycles, guided %zu cycles "
              "(%.1fx deeper with guidance)\n",
              deepest_unguided, deepest_guided,
              deepest_unguided ? static_cast<double>(deepest_guided) /
                                     static_cast<double>(deepest_unguided)
                               : 0.0);
  return 0;
}
