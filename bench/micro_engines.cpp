// Engine-level micro benchmarks (google-benchmark): BDD operations,
// simulators, ATPG justification, min-cut computation, and image steps.
// These are not paper artifacts; they track the performance of the
// substrates everything else is built on.
//
// In addition to the normal google-benchmark flags, `--json FILE` writes an
// "rfn-bench-v1" document: one record per benchmark (wall/cpu seconds per
// iteration plus the user counters) and the final metrics-registry dump.
// tools/bench_gate.py diffs that file against the checked-in
// BENCH_portfolio.json baseline in CI.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>

#include "atpg/comb_atpg.hpp"
#include "atpg/seq_atpg.hpp"
#include "bdd/bdd.hpp"
#include "core/portfolio.hpp"
#include "core/rfn.hpp"
#include "core/session.hpp"
#include "designs/fifo.hpp"
#include "designs/iu.hpp"
#include "designs/usb.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "mincut/mincut.hpp"
#include "netlist/builder.hpp"
#include "sat/bmc.hpp"
#include "sim/sim3.hpp"
#include "sim/sim64.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace rfn;

Netlist random_netlist(size_t inputs, size_t gates, uint64_t seed) {
  Rng rng(seed);
  NetBuilder b;
  std::vector<GateId> pool;
  for (size_t i = 0; i < inputs; ++i) pool.push_back(b.input("i" + std::to_string(i)));
  for (size_t i = 0; i < gates; ++i) {
    const GateId x = pool[rng.below(pool.size())];
    const GateId y = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(b.and_(x, y)); break;
      case 1: pool.push_back(b.or_(x, y)); break;
      case 2: pool.push_back(b.xor_(x, y)); break;
      case 3: pool.push_back(b.not_(x)); break;
    }
  }
  b.output("root", pool.back());
  return b.take();
}

void BM_BddApply(benchmark::State& state) {
  const auto nvars = static_cast<uint32_t>(state.range(0));
  BddMgr mgr(nvars);
  Rng rng(7);
  std::vector<Bdd> pool;
  for (uint32_t v = 0; v < nvars; ++v) pool.push_back(mgr.var(v));
  for (auto _ : state) {
    const Bdd a = pool[rng.below(pool.size())];
    const Bdd b = pool[rng.below(pool.size())];
    Bdd r = rng.flip() ? (a & b) : (a ^ b);
    benchmark::DoNotOptimize(r.id());
    pool.push_back(std::move(r));
    // Random combination chains grow without bound; periodically restart
    // from the literals so the benchmark measures apply, not blowup.
    if (pool.size() > 256 || mgr.live_nodes() > 200000) {
      pool.resize(nvars);
      mgr.garbage_collect();
    }
  }
  state.counters["live_nodes"] = static_cast<double>(mgr.live_nodes());
}
BENCHMARK(BM_BddApply)->Arg(16)->Arg(64);

void BM_BddAndExists(benchmark::State& state) {
  BddMgr mgr(28);
  Rng rng(11);
  // Random clause conjunctions as relation/state stand-ins.
  auto random_fn = [&](int clauses) {
    Bdd acc = mgr.bdd_true();
    for (int i = 0; i < clauses; ++i) {
      Bdd clause = mgr.bdd_false();
      for (int j = 0; j < 3; ++j) {
        const BddVar v = static_cast<BddVar>(rng.below(28));
        clause |= rng.flip() ? mgr.var(v) : mgr.nvar(v);
      }
      acc &= clause;
    }
    return acc;
  };
  const Bdd f = random_fn(14);
  const Bdd g = random_fn(14);
  std::vector<BddVar> vars{0, 2, 4, 6, 8, 10, 12, 14};
  for (auto _ : state) {
    Bdd r = mgr.and_exists(f, g, vars);
    benchmark::DoNotOptimize(r.id());
  }
}
BENCHMARK(BM_BddAndExists);

void BM_BddSift(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BddMgr mgr(24);
    Bdd f = mgr.bdd_true();
    for (BddVar i = 0; i < 12; ++i) f &= !(mgr.var(i) ^ mgr.var(i + 12));
    state.ResumeTiming();
    mgr.reorder_sift();
    benchmark::DoNotOptimize(mgr.live_nodes());
  }
}
BENCHMARK(BM_BddSift);

void BM_Sim3Cycle(benchmark::State& state) {
  const rfn::designs::IuDesign iu = rfn::designs::make_iu({});
  Sim3 sim(iu.netlist);
  sim.load_initial_state();
  Rng rng(3);
  for (auto _ : state) {
    for (GateId in : iu.netlist.inputs())
      sim.set(in, rng.flip() ? Tri::T : Tri::F);
    sim.eval();
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(iu.netlist.num_gates()));
}
BENCHMARK(BM_Sim3Cycle);

void BM_Sim64Cycle(benchmark::State& state) {
  const rfn::designs::IuDesign iu = rfn::designs::make_iu({});
  Sim64 sim(iu.netlist);
  Rng rng(3);
  sim.load_initial_state(rng);
  for (auto _ : state) {
    sim.randomize_inputs(rng);
    sim.eval();
    sim.step();
  }
  // 64 patterns per pass.
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<int64_t>(iu.netlist.num_gates()));
}
BENCHMARK(BM_Sim64Cycle);

void BM_CombAtpgJustify(benchmark::State& state) {
  const Netlist n = random_netlist(48, 1200, 5);
  const GateId root = n.output("root");
  int polarity = 0;
  for (auto _ : state) {
    const CombAtpgResult r = justify(n, {{root, (polarity++ & 1) != 0}});
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_CombAtpgJustify);

void BM_MinCut(benchmark::State& state) {
  const rfn::designs::UsbDesign usb = rfn::designs::make_usb({});
  for (auto _ : state) {
    const MinCutResult r = compute_mincut_design(usb.netlist);
    benchmark::DoNotOptimize(r.cut_size);
  }
}
BENCHMARK(BM_MinCut);

void BM_PostImage(benchmark::State& state) {
  const rfn::designs::UsbDesign usb = rfn::designs::make_usb({});
  // Abstract the packet engine: a realistic Step-2 workload.
  std::vector<GateId> regs;
  for (GateId g : usb.usb2) regs.push_back(g);
  const Subcircuit sub = extract_abstract_model(usb.netlist, regs, regs);
  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  mgr.set_auto_reorder(true);
  ImageComputer img(enc);
  Bdd states = enc.initial_states();
  for (auto _ : state) {
    states = img.post_image(states) | states;
    benchmark::DoNotOptimize(states.id());
  }
  state.counters["live_nodes"] = static_cast<double>(mgr.live_nodes());
}
BENCHMARK(BM_PostImage);

// The portfolio benches reset the global registry up front, so the raw
// snapshot at the end is this benchmark's own tally. bdd_peak_nodes is the
// deterministic capacity counter the CI regression gate keys on.
void export_portfolio_counters(benchmark::State& state) {
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  // Win counters are exported generically from the portfolio.wins.* keys,
  // so a new engine (job name) surfaces as wins_<short> with no bench
  // change. The known job names map to their historical short names; an
  // unknown job falls back to its raw name with '-' normalized to '_'.
  static const std::map<std::string, std::string> kShortNames = {
      {"bdd-reach", "bdd"}, {"seq-atpg", "atpg"}, {"rand-sim", "sim"},
      {"sat-bmc", "sat"},   {"pdr", "pdr"},
  };
  for (const auto& [k, v] : kShortNames)
    state.counters["wins_" + v] = s.value("portfolio.wins." + k);
  constexpr std::string_view kWinsPrefix = "portfolio.wins.";
  for (const auto& [key, value] : s.values) {
    if (key.rfind(kWinsPrefix, 0) != 0) continue;
    std::string job = key.substr(kWinsPrefix.size());
    const auto it = kShortNames.find(job);
    if (it == kShortNames.end()) {
      for (char& c : job) c = c == '-' ? '_' : c;
      state.counters["wins_" + job] = value;
    }
  }
  state.counters["jobs_cancelled"] = s.value("portfolio.jobs_cancelled");
  state.counters["bdd_peak_nodes"] = s.value("bdd.peak_live_nodes.max");
  // Byte-exact arena peaks (see util/prof and DESIGN.md "Resource
  // profiling"). Informational in the per-bench counters — the CI byte gate
  // runs on rfn-prof-v1 artifacts from deterministic --workers 0 CLI runs
  // (tools/bench_gate.py --prof-baseline), not on these.
  state.counters["bdd_peak_heap_bytes"] = s.value("bdd.heap_bytes.max");
  state.counters["sat_peak_heap_bytes"] = s.value("sat.heap_bytes.max");
}

// Full RFN runs on the FIFO psh_full property, sequential (workers = 0)
// vs portfolio: the same verdict either way, the arg only changes who
// races whom in Steps 2 and 3.
void BM_RfnPortfolioFifo(benchmark::State& state) {
  const rfn::designs::FifoDesign fifo =
      rfn::designs::make_fifo({.addr_bits = 3, .data_bits = 2});
  MetricsRegistry::global().reset();
  for (auto _ : state) {
    RfnOptions opt;
    opt.portfolio_workers = static_cast<size_t>(state.range(0));
    opt.race_probe_time_s = 1.0;
    RfnVerifier v(fifo.netlist, fifo.bad_push_full, opt);
    const RfnResult res = v.run();
    if (res.verdict != Verdict::Holds) state.SkipWithError("psh_full must hold");
  }
  export_portfolio_counters(state);
}
BENCHMARK(BM_RfnPortfolioFifo)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// The batch-session workload: the three FIFO occupancy-flag properties
// plus the composite "some flag errs" line (their disjunction — the kind of
// any-error output industrial testbenches expose). Four properties, one
// heavily shared register cone, all Holds. Verified independently the
// composite costs a full proof of its own; a session recognizes the cone
// overlap and answers the whole suite with shared abstraction runs.
struct SessionSuite {
  Netlist design;
  std::vector<std::pair<const char*, GateId>> props;
};

SessionSuite fifo_session_suite() {
  rfn::designs::FifoDesign fifo =
      rfn::designs::make_fifo({.addr_bits = 3, .data_bits = 2});
  SessionSuite suite;
  const GateId any = append_disjunction(
      fifo.netlist, {fifo.bad_push_full, fifo.bad_push_af, fifo.bad_push_hf},
      "bad_any");
  suite.props = {{"bad_full", fifo.bad_push_full},
                 {"bad_af", fifo.bad_push_af},
                 {"bad_hf", fifo.bad_push_hf},
                 {"bad_any", any}};
  suite.design = std::move(fifo.netlist);
  return suite;
}

// The suite verified independently: four fresh RfnVerifier runs, nothing
// shared. This is the baseline the batch session below must beat;
// bench_gate.py enforces batch < independent on every run.
void BM_SessionIndependentFifo(benchmark::State& state) {
  const SessionSuite suite = fifo_session_suite();
  MetricsRegistry::global().reset();
  for (auto _ : state) {
    for (const auto& [name, bad] : suite.props) {
      RfnOptions opt;
      opt.race_probe_time_s = 1.0;
      RfnVerifier v(suite.design, bad, opt);
      if (v.run().verdict != Verdict::Holds)
        state.SkipWithError("fifo suite must hold");
    }
  }
  export_portfolio_counters(state);
}
BENCHMARK(BM_SessionIndependentFifo)->Unit(benchmark::kMillisecond);

// The same four properties through one VerifySession: one cone cluster,
// answered by shared disjunction runs with the cross-property reuse cache.
// Per-property seconds land in the JSON artifact as counters (for a
// clustered property that is the answering run's wall time).
void BM_SessionBatchFifo(benchmark::State& state) {
  const SessionSuite suite = fifo_session_suite();
  MetricsRegistry::global().reset();
  std::vector<PropertyResult> results;
  size_t clusters = 0;
  for (auto _ : state) {
    SessionOptions sopt;
    sopt.defaults.race_probe_time_s = 1.0;
    VerifySession session(suite.design, sopt);
    std::vector<PropertyRequest> requests;
    for (const auto& [name, bad] : suite.props)
      requests.push_back({name, bad, {}});
    results = session.run(requests);
    clusters = session.clusters().size();
    for (const PropertyResult& r : results)
      if (r.verdict != Verdict::Holds)
        state.SkipWithError("fifo suite must hold");
  }
  state.counters["clusters"] = static_cast<double>(clusters);
  for (const PropertyResult& r : results) {
    state.counters["seconds_" + r.name] = r.stats.seconds;
    state.counters["clustered_" + r.name] = r.clustered ? 1.0 : 0.0;
  }
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  state.counters["clustered_verdicts"] = s.value("session.clustered_verdicts");
  state.counters["memo_hits"] = s.value("session.subcircuit_memo.hits");
  export_portfolio_counters(state);
}
BENCHMARK(BM_SessionBatchFifo)->Unit(benchmark::kMillisecond);

// Full RFN runs with the race lineup pinned to IC3/PDR alone: the clause-
// learning prover carries both the abstract probe and the concrete check,
// proving psh_full unboundedly with no BDD fixpoint. Every race has one
// racer, so wins_pdr counts both races per iteration — the counter
// bench_gate.py requires to stay >= 1.
void BM_PortfolioPdrFifo(benchmark::State& state) {
  const rfn::designs::FifoDesign fifo =
      rfn::designs::make_fifo({.addr_bits = 3, .data_bits = 2});
  MetricsRegistry::global().reset();
  for (auto _ : state) {
    RfnOptions opt;
    opt.engines = {"pdr"};
    opt.portfolio_workers = static_cast<size_t>(state.range(0));
    RfnVerifier v(fifo.netlist, fifo.bad_push_full, opt);
    const RfnResult res = v.run();
    if (res.verdict != Verdict::Holds) state.SkipWithError("psh_full must hold");
    if (!res.pdr_invariant.present)
      state.SkipWithError("pdr verdict must carry its inductive frame");
  }
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  state.counters["pdr_obligations"] = s.value("pdr.obligations");
  state.counters["pdr_clauses"] = s.value("pdr.clauses");
  export_portfolio_counters(state);
}
BENCHMARK(BM_PortfolioPdrFifo)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// The SAT BMC engine in isolation: one fresh incremental instance per
// iteration answering the concrete bounded question on the FIFO psh_full
// property (all registers enabled, bound 12 — the property holds, so every
// depth is UNSAT). Measures encode + solve from cold; the incremental
// reuse across depths is inside the single check() call.
void BM_SatBmcFifo(benchmark::State& state) {
  const rfn::designs::FifoDesign fifo =
      rfn::designs::make_fifo({.addr_bits = 3, .data_bits = 2});
  const std::vector<GateId> regs = fifo.netlist.regs();
  MetricsRegistry::global().reset();
  for (auto _ : state) {
    SatBmc bmc(fifo.netlist);
    const SatBmcResult r = bmc.check(fifo.bad_push_full, 12, regs);
    if (r.status != AtpgStatus::Unsat)
      state.SkipWithError("psh_full must be bounded-UNSAT");
    benchmark::DoNotOptimize(r.core_registers.data());
  }
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  state.counters["sat_conflicts"] = s.value("sat.conflicts");
  state.counters["sat_checks"] = s.value("sat.checks");
}
BENCHMARK(BM_SatBmcFifo)->Unit(benchmark::kMillisecond);

// Full RFN runs with the race lineup pinned to bdd + sat: the SAT engine
// carries the whole falsification side (abstract probes and concretization)
// that seq-atpg / rand-sim / guided-atpg handle in the default portfolio.
void BM_PortfolioWithSatFifo(benchmark::State& state) {
  const rfn::designs::FifoDesign fifo =
      rfn::designs::make_fifo({.addr_bits = 3, .data_bits = 2});
  MetricsRegistry::global().reset();
  for (auto _ : state) {
    RfnOptions opt;
    opt.engines = {"bdd", "sat"};
    opt.portfolio_workers = static_cast<size_t>(state.range(0));
    opt.race_probe_time_s = 1.0;
    RfnVerifier v(fifo.netlist, fifo.bad_push_full, opt);
    const RfnResult res = v.run();
    if (res.verdict != Verdict::Holds) state.SkipWithError("psh_full must hold");
  }
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  state.counters["sat_conflicts"] = s.value("sat.conflicts");
  state.counters["sat_checks"] = s.value("sat.checks");
  export_portfolio_counters(state);
}
BENCHMARK(BM_PortfolioWithSatFifo)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// The Step-2 race in isolation on the USB packet-engine abstraction:
// bounded BDD reachability vs iterative-deepening ATPG vs random simulation
// chasing a coverage register, sequential vs four workers.
void BM_PortfolioRaceUsb(benchmark::State& state) {
  const rfn::designs::UsbDesign usb = rfn::designs::make_usb({});
  const Subcircuit sub = extract_abstract_model(usb.netlist, usb.usb2, usb.usb2);
  const GateId target = sub.to_new(usb.usb2.front());
  Portfolio portfolio(static_cast<size_t>(state.range(0)));
  MetricsRegistry::global().reset();
  for (auto _ : state) {
    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    mgr.set_auto_reorder(true);
    ImageComputer img(enc);
    const Bdd bad_set = mgr.exists(enc.signal_fn(target), enc.input_vars());
    std::vector<PortfolioJob> jobs;
    jobs.push_back({"bdd-reach", -1.0, [&](const CancelToken& token) {
                      ReachOptions ro;
                      ro.max_steps = 32;
                      ro.cancel = &token;
                      const ReachResult r =
                          forward_reach(img, enc.initial_states(), bad_set, ro);
                      return r.status != ReachStatus::ResourceOut;
                    }});
    jobs.push_back({"seq-atpg", 1.0, [&](const CancelToken& token) {
                      AtpgOptions ao;
                      ao.max_backtracks = 1u << 14;
                      ao.cancel = &token;
                      for (size_t k = 1; k <= 16; ++k) {
                        if (token.cancelled()) return false;
                        if (reach_target(sub.net, k, target, true, {}, ao).status ==
                            AtpgStatus::Sat)
                          return true;
                      }
                      return false;
                    }});
    jobs.push_back({"rand-sim", 1.0, [&](const CancelToken& token) {
                      return !random_sim_error_trace(sub.net, target, 256, 17,
                                                     &token)
                                  .empty();
                    }});
    const RaceResult r = portfolio.race(jobs);
    benchmark::DoNotOptimize(r.conclusive);
    // This bench owns the iteration's manager, so it flushes the BDD stats
    // (once per manager, same as the CEGAR loop does for its own managers).
    publish_bdd_metrics(mgr.stats());
  }
  export_portfolio_counters(state);
}
BENCHMARK(BM_PortfolioRaceUsb)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

/// Console reporter that additionally captures every run for the
/// rfn-bench-v1 JSON document.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_seconds_per_iter = 0.0;  // wall seconds per iteration
    double cpu_seconds_per_iter = 0.0;
    int64_t iterations = 0;
    std::map<std::string, double> counters;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.error_occurred) continue;
      Captured c;
      c.name = r.benchmark_name();
      c.iterations = r.iterations;
      if (r.iterations > 0) {
        c.real_seconds_per_iter =
            r.real_accumulated_time / static_cast<double>(r.iterations);
        c.cpu_seconds_per_iter =
            r.cpu_accumulated_time / static_cast<double>(r.iterations);
      }
      for (const auto& [name, counter] : r.counters) c.counters[name] = counter;
      runs_.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Captured>& runs() const { return runs_; }

 private:
  std::vector<Captured> runs_;
};

bool write_bench_json(const std::string& path,
                      const std::vector<CapturingReporter::Captured>& runs) {
  json::Value doc = json::Value::object();
  doc.set("schema", "rfn-bench-v1");
  json::Value benches = json::Value::array();
  for (const auto& r : runs) {
    json::Value b = json::Value::object();
    b.set("name", r.name);
    b.set("real_seconds_per_iter", r.real_seconds_per_iter);
    b.set("cpu_seconds_per_iter", r.cpu_seconds_per_iter);
    b.set("iterations", r.iterations);
    json::Value counters = json::Value::object();
    for (const auto& [name, v] : r.counters) counters.set(name, v);
    b.set("counters", std::move(counters));
    benches.push(std::move(b));
  }
  doc.set("benchmarks", std::move(benches));
  doc.set("metrics", MetricsRegistry::global().to_json());
  std::ofstream out(path);
  if (!out) return false;
  out << doc.dump(2) << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  // Pull our own `--json FILE` out of argv before google-benchmark sees it.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !write_bench_json(json_path, reporter.runs())) {
    std::fprintf(stderr, "micro_engines: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
