// Engine-level micro benchmarks (google-benchmark): BDD operations,
// simulators, ATPG justification, min-cut computation, and image steps.
// These are not paper artifacts; they track the performance of the
// substrates everything else is built on.

#include <benchmark/benchmark.h>

#include "atpg/comb_atpg.hpp"
#include "atpg/seq_atpg.hpp"
#include "bdd/bdd.hpp"
#include "core/portfolio.hpp"
#include "core/rfn.hpp"
#include "designs/fifo.hpp"
#include "designs/iu.hpp"
#include "designs/usb.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "mincut/mincut.hpp"
#include "netlist/builder.hpp"
#include "sim/sim3.hpp"
#include "sim/sim64.hpp"
#include "util/rng.hpp"

namespace {

using namespace rfn;

Netlist random_netlist(size_t inputs, size_t gates, uint64_t seed) {
  Rng rng(seed);
  NetBuilder b;
  std::vector<GateId> pool;
  for (size_t i = 0; i < inputs; ++i) pool.push_back(b.input("i" + std::to_string(i)));
  for (size_t i = 0; i < gates; ++i) {
    const GateId x = pool[rng.below(pool.size())];
    const GateId y = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(b.and_(x, y)); break;
      case 1: pool.push_back(b.or_(x, y)); break;
      case 2: pool.push_back(b.xor_(x, y)); break;
      case 3: pool.push_back(b.not_(x)); break;
    }
  }
  b.output("root", pool.back());
  return b.take();
}

void BM_BddApply(benchmark::State& state) {
  const auto nvars = static_cast<uint32_t>(state.range(0));
  BddMgr mgr(nvars);
  Rng rng(7);
  std::vector<Bdd> pool;
  for (uint32_t v = 0; v < nvars; ++v) pool.push_back(mgr.var(v));
  for (auto _ : state) {
    const Bdd a = pool[rng.below(pool.size())];
    const Bdd b = pool[rng.below(pool.size())];
    Bdd r = rng.flip() ? (a & b) : (a ^ b);
    benchmark::DoNotOptimize(r.id());
    pool.push_back(std::move(r));
    // Random combination chains grow without bound; periodically restart
    // from the literals so the benchmark measures apply, not blowup.
    if (pool.size() > 256 || mgr.live_nodes() > 200000) {
      pool.resize(nvars);
      mgr.garbage_collect();
    }
  }
  state.counters["live_nodes"] = static_cast<double>(mgr.live_nodes());
}
BENCHMARK(BM_BddApply)->Arg(16)->Arg(64);

void BM_BddAndExists(benchmark::State& state) {
  BddMgr mgr(28);
  Rng rng(11);
  // Random clause conjunctions as relation/state stand-ins.
  auto random_fn = [&](int clauses) {
    Bdd acc = mgr.bdd_true();
    for (int i = 0; i < clauses; ++i) {
      Bdd clause = mgr.bdd_false();
      for (int j = 0; j < 3; ++j) {
        const BddVar v = static_cast<BddVar>(rng.below(28));
        clause |= rng.flip() ? mgr.var(v) : mgr.nvar(v);
      }
      acc &= clause;
    }
    return acc;
  };
  const Bdd f = random_fn(14);
  const Bdd g = random_fn(14);
  std::vector<BddVar> vars{0, 2, 4, 6, 8, 10, 12, 14};
  for (auto _ : state) {
    Bdd r = mgr.and_exists(f, g, vars);
    benchmark::DoNotOptimize(r.id());
  }
}
BENCHMARK(BM_BddAndExists);

void BM_BddSift(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BddMgr mgr(24);
    Bdd f = mgr.bdd_true();
    for (BddVar i = 0; i < 12; ++i) f &= !(mgr.var(i) ^ mgr.var(i + 12));
    state.ResumeTiming();
    mgr.reorder_sift();
    benchmark::DoNotOptimize(mgr.live_nodes());
  }
}
BENCHMARK(BM_BddSift);

void BM_Sim3Cycle(benchmark::State& state) {
  const rfn::designs::IuDesign iu = rfn::designs::make_iu({});
  Sim3 sim(iu.netlist);
  sim.load_initial_state();
  Rng rng(3);
  for (auto _ : state) {
    for (GateId in : iu.netlist.inputs())
      sim.set(in, rng.flip() ? Tri::T : Tri::F);
    sim.eval();
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(iu.netlist.num_gates()));
}
BENCHMARK(BM_Sim3Cycle);

void BM_Sim64Cycle(benchmark::State& state) {
  const rfn::designs::IuDesign iu = rfn::designs::make_iu({});
  Sim64 sim(iu.netlist);
  Rng rng(3);
  sim.load_initial_state(rng);
  for (auto _ : state) {
    sim.randomize_inputs(rng);
    sim.eval();
    sim.step();
  }
  // 64 patterns per pass.
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<int64_t>(iu.netlist.num_gates()));
}
BENCHMARK(BM_Sim64Cycle);

void BM_CombAtpgJustify(benchmark::State& state) {
  const Netlist n = random_netlist(48, 1200, 5);
  const GateId root = n.output("root");
  int polarity = 0;
  for (auto _ : state) {
    const CombAtpgResult r = justify(n, {{root, (polarity++ & 1) != 0}});
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_CombAtpgJustify);

void BM_MinCut(benchmark::State& state) {
  const rfn::designs::UsbDesign usb = rfn::designs::make_usb({});
  for (auto _ : state) {
    const MinCutResult r = compute_mincut_design(usb.netlist);
    benchmark::DoNotOptimize(r.cut_size);
  }
}
BENCHMARK(BM_MinCut);

void BM_PostImage(benchmark::State& state) {
  const rfn::designs::UsbDesign usb = rfn::designs::make_usb({});
  // Abstract the packet engine: a realistic Step-2 workload.
  std::vector<GateId> regs;
  for (GateId g : usb.usb2) regs.push_back(g);
  const Subcircuit sub = extract_abstract_model(usb.netlist, regs, regs);
  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  mgr.set_auto_reorder(true);
  ImageComputer img(enc);
  Bdd states = enc.initial_states();
  for (auto _ : state) {
    states = img.post_image(states) | states;
    benchmark::DoNotOptimize(states.id());
  }
  state.counters["live_nodes"] = static_cast<double>(mgr.live_nodes());
}
BENCHMARK(BM_PostImage);

void export_portfolio_counters(benchmark::State& state, const PortfolioStats& s) {
  auto wins = [&s](const char* name) {
    const auto it = s.wins.find(name);
    return it == s.wins.end() ? 0.0 : static_cast<double>(it->second);
  };
  state.counters["wins_bdd"] = wins("bdd-reach");
  state.counters["wins_atpg"] = wins("seq-atpg");
  state.counters["wins_sim"] = wins("rand-sim");
  state.counters["jobs_cancelled"] = static_cast<double>(s.jobs_cancelled);
}

// Full RFN runs on the FIFO psh_full property, sequential (workers = 0)
// vs portfolio: the same verdict either way, the arg only changes who
// races whom in Steps 2 and 3.
void BM_RfnPortfolioFifo(benchmark::State& state) {
  const rfn::designs::FifoDesign fifo =
      rfn::designs::make_fifo({.addr_bits = 3, .data_bits = 2});
  PortfolioStats total;
  for (auto _ : state) {
    RfnOptions opt;
    opt.portfolio_workers = static_cast<size_t>(state.range(0));
    opt.race_probe_time_s = 1.0;
    RfnVerifier v(fifo.netlist, fifo.bad_push_full, opt);
    const RfnResult res = v.run();
    if (res.verdict != Verdict::Holds) state.SkipWithError("psh_full must hold");
    total.merge(res.portfolio);
  }
  export_portfolio_counters(state, total);
}
BENCHMARK(BM_RfnPortfolioFifo)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// The Step-2 race in isolation on the USB packet-engine abstraction:
// bounded BDD reachability vs iterative-deepening ATPG vs random simulation
// chasing a coverage register, sequential vs four workers.
void BM_PortfolioRaceUsb(benchmark::State& state) {
  const rfn::designs::UsbDesign usb = rfn::designs::make_usb({});
  const Subcircuit sub = extract_abstract_model(usb.netlist, usb.usb2, usb.usb2);
  const GateId target = sub.to_new(usb.usb2.front());
  Portfolio portfolio(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    mgr.set_auto_reorder(true);
    ImageComputer img(enc);
    const Bdd bad_set = mgr.exists(enc.signal_fn(target), enc.input_vars());
    std::vector<PortfolioJob> jobs;
    jobs.push_back({"bdd-reach", -1.0, [&](const CancelToken& token) {
                      ReachOptions ro;
                      ro.max_steps = 32;
                      ro.cancel = &token;
                      const ReachResult r =
                          forward_reach(img, enc.initial_states(), bad_set, ro);
                      return r.status != ReachStatus::ResourceOut;
                    }});
    jobs.push_back({"seq-atpg", 1.0, [&](const CancelToken& token) {
                      AtpgOptions ao;
                      ao.max_backtracks = 1u << 14;
                      ao.cancel = &token;
                      for (size_t k = 1; k <= 16; ++k) {
                        if (token.cancelled()) return false;
                        if (reach_target(sub.net, k, target, true, {}, ao).status ==
                            AtpgStatus::Sat)
                          return true;
                      }
                      return false;
                    }});
    jobs.push_back({"rand-sim", 1.0, [&](const CancelToken& token) {
                      return !random_sim_error_trace(sub.net, target, 256, 17,
                                                     &token)
                                  .empty();
                    }});
    const RaceResult r = portfolio.race(jobs);
    benchmark::DoNotOptimize(r.conclusive);
  }
  export_portfolio_counters(state, portfolio.stats());
}
BENCHMARK(BM_PortfolioRaceUsb)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
