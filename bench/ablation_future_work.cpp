// Ablation — the paper's two future-work directions (Section 5), both
// implemented in this repository:
//
//   1. "To prove the property on abstract models containing hundreds of
//      registers, we plan to use the overlapping partition technique from
//      [5][7]" — compare exact fixpoint vs the overlapping-partition
//      approximate traversal on abstractions of growing size.
//
//   2. "To enhance the capability of finding error traces on the original
//      design, we plan to develop techniques of guiding ATPG with a set of
//      error traces rather than a single error trace" — compare RFN with
//      1 vs 4 abstract traces per iteration on designs where the first
//      abstract trace is spurious.

#include <algorithm>
#include <cstdio>

#include "core/rfn.hpp"
#include "mc/approx_reach.hpp"
#include "mc/image.hpp"
#include "netlist/builder.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

using namespace rfn;

namespace {

// A bank of loosely-coupled gated counters: the exact reachable set needs
// the product space, while per-block traversal stays tiny.
Netlist make_counter_bank(size_t counters, size_t bits, GateId* bad_out) {
  NetBuilder b;
  std::vector<Word> banks;
  for (size_t c = 0; c < counters; ++c) {
    const GateId en = b.input("en" + std::to_string(c));
    const Word cnt = b.reg_word("c" + std::to_string(c), bits, 0);
    const GateId wrap = b.eq_const(cnt, (1u << bits) - 3);
    const Word next = b.mux_word(wrap, b.inc_word(cnt), b.constant_word(0, bits));
    b.set_next_word(cnt, b.mux_word(en, cnt, next));
    banks.push_back(cnt);
  }
  // Bad: any counter reaches its excluded top value.
  GateId bad_sig = b.constant(false);
  for (const Word& cnt : banks)
    bad_sig = b.or_(bad_sig, b.eq_const(cnt, (1u << bits) - 1));
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, bad_sig));
  b.output("bad", bad);
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

// The multi-trace scenario: `spurious_cuts` stuck-at-0 registers and one
// real path feed an XOR-tree watchdog. Abstract traces that pick a stuck
// register are spurious; only traces through the live register concretize.
Netlist make_decoy_design(size_t decoys, GateId* bad_out) {
  NetBuilder b;
  const GateId in = b.input("in");
  // Stuck-at-0 decoys XORed against one live register: the fattest cube of
  // OR_i(decoy_i ^ live) is {decoy_0=1, live=0} — spurious, since decoys
  // can never rise. Only the {decoy_i=0, live=1} family concretizes.
  std::vector<GateId> xors;
  const GateId live = b.reg("live", Tri::X);
  b.set_next(live, in);
  for (size_t i = 0; i < decoys; ++i) {
    const GateId d = b.reg("decoy" + std::to_string(i));
    b.set_next(d, b.constant(false));
    xors.push_back(b.xor_(d, live));
  }
  GateId any = xors[0];
  for (size_t i = 1; i < xors.size(); ++i) any = b.or_(any, xors[i]);
  const GateId bad = b.reg("bad");
  b.set_next(bad, b.or_(bad, any));
  b.output("bad", bad);
  Netlist n = b.take();
  *bad_out = n.output("bad");
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  std::printf("Ablation: the paper's future-work features (Section 5)\n\n");

  // --- Part 1: exact vs overlapping-partition approximate traversal ---
  std::printf("1. Overlapping-partition traversal vs exact fixpoint\n");
  Table t1({"registers", "exact status", "exact time (s)", "approx status",
            "approx time (s)", "approx rounds"});
  for (size_t counters : {8u, 16u, 32u, 64u}) {
    GateId bad;
    Netlist n = make_counter_bank(counters, 4, &bad);
    BddMgr mgr;
    Encoder enc(mgr, n);
    mgr.set_auto_reorder(true);
    const Bdd bad_set = mgr.var(enc.state_var(bad));

    Stopwatch we;
    ReachOptions exact_opt;
    exact_opt.time_limit_s = opts.get_double("exact-time", 20.0);
    exact_opt.max_live_nodes = 1u << 20;
    ImageComputer img(enc);
    const ReachResult exact = forward_reach(img, enc.initial_states(), bad_set, exact_opt);
    const double exact_time = we.seconds();

    Stopwatch wa;
    ApproxReachOptions aopt;
    aopt.block_size = 10;
    aopt.overlap = 2;
    aopt.time_limit_s = opts.get_double("approx-time", 60.0);
    const ApproxReachResult approx =
        approx_forward_reach(enc, enc.initial_states(), bad_set, aopt);
    const double approx_time = wa.seconds();

    t1.add_row({fmt_int(static_cast<int64_t>(n.num_regs())),
                to_string(exact.status), fmt_double(exact_time, 2),
                approx_status_name(approx.status), fmt_double(approx_time, 2),
                fmt_int(static_cast<int64_t>(approx.rounds))});
  }
  t1.print();

  // --- Part 2: single vs multi-trace guided concretization ---
  std::printf("\n2. Guiding ATPG with a set of error traces\n");
  Table t2({"decoy registers", "traces/iter", "verdict", "iterations",
            "final abs regs", "time (s)"});
  for (size_t decoys : {2u, 4u, 8u}) {
    for (size_t traces : {1u, 4u}) {
      GateId bad;
      Netlist n = make_decoy_design(decoys, &bad);
      RfnOptions ropt;
      ropt.time_limit_s = 60.0;
      ropt.traces_per_iteration = traces;
      Stopwatch w;
      RfnVerifier v(n, bad, ropt);
      const RfnResult r = v.run();
      t2.add_row({fmt_int(static_cast<int64_t>(decoys)),
                  fmt_int(static_cast<int64_t>(traces)), to_string(r.verdict),
                  fmt_int(static_cast<int64_t>(r.iterations)),
                  fmt_int(static_cast<int64_t>(r.final_abstract_regs)),
                  fmt_double(w.seconds(), 2)});
    }
  }
  t2.print();
  std::printf("\nshape check: approx stays cheap as registers grow; the multi-trace\n"
              "runs reach a verdict in no more iterations than single-trace.\n");
  return 0;
}
