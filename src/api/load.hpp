#pragma once
// api::load_design — the one design loader behind every front door.
//
// Builtin/AIGER/Verilog/BLIF loading used to be resolved three times, with
// three drifting error vocabularies: rfn_cli (all formats + --aiger
// forcing), rfn_check (the same minus AIGER property harvesting), and
// designs/builtin (the `builtin:` scheme). This header is the single
// resolution point: a DesignRef names the design (a path, a `builtin:NAME`,
// or inline text with an explicit format) and load_design elaborates it the
// same way no matter which binary asked, so a certificate produced by one
// binary hashes identically when re-elaborated by another, and a server
// request elaborates exactly like the CLI invocation it replaces.
//
// Error messages are uniform and self-describing — an unknown `builtin:`
// name lists the valid set, the same convention RfnOptions::validate() uses
// for engine names.
//
// Deliberately a leaf library (netlist + frontends + designs, never the
// engines): rfn_check links it without widening its trust boundary.

#include <string>
#include <vector>

#include "aiger/aiger.hpp"
#include "netlist/netlist.hpp"

namespace rfn::api {

/// Names a design to load. Either `text` (inline source, `format` required)
/// or `path` (a file, a `builtin:NAME`, format by extension unless forced).
struct DesignRef {
  /// File path or "builtin:NAME". Ignored when `text` is set.
  std::string path;
  /// Inline design source (server requests that ship the design in-band).
  std::string text;
  /// "verilog" | "blif" | "aiger"; empty = by extension (.aag/.aig → aiger,
  /// .blif → blif, anything else → verilog — the historical CLI rule).
  /// Required for inline text. "aiger" on a path forces AIGER regardless of
  /// extension (the old --aiger flag).
  std::string format;
  /// Top module for multi-module Verilog.
  std::string top;
};

/// A loaded design plus everything the request path needs to know about it:
/// the AIGER property list (each bad output becomes a verification
/// obligation when the request names none) and the design fingerprint that
/// keys certificates and the server's warm-state cache.
struct LoadedDesign {
  Netlist netlist;
  /// AIGER bads/outputs as named properties (empty for other formats).
  std::vector<aiger::AigerProperty> aiger_properties;
  /// AIGER header shape, for diagnostics (zeros for other formats).
  size_t aiger_bad = 0;
  size_t aiger_outputs = 0;
  size_t aiger_constraints = 0;
  bool aiger_constraints_folded = false;
  /// netlist/analysis design_hash over the elaborated netlist.
  uint64_t hash = 0;
  std::string hash_hex;
  /// The path (or "<inline>") for diagnostics.
  std::string source;
};

/// Loads `ref` into `out`. On failure returns false with a one-line
/// diagnostic in `error` (no binary prefix — callers add their own).
bool load_design(const DesignRef& ref, LoadedDesign* out, std::string* error);

}  // namespace rfn::api
