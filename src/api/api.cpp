#include "api/api.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "cert/format.hpp"
#include "util/stopwatch.hpp"

namespace rfn::api {

namespace {

std::string join_semicolon(const std::vector<std::string>& parts) {
  std::string s;
  for (const auto& p : parts) {
    if (!s.empty()) s += "; ";
    s += p;
  }
  return s;
}

// --- strict-codec helpers: every shape error names the offending key -------

bool want_string(const json::Value& v, const std::string& ctx, std::string* out,
                 std::string* error) {
  if (!v.is_string()) {
    *error = ctx + " must be a string";
    return false;
  }
  *out = v.as_string();
  return true;
}

bool want_bool(const json::Value& v, const std::string& ctx, bool* out,
               std::string* error) {
  if (!v.is_bool()) {
    *error = ctx + " must be a boolean";
    return false;
  }
  *out = v.as_bool();
  return true;
}

bool want_double(const json::Value& v, const std::string& ctx, double* out,
                 std::string* error) {
  if (!v.is_number()) {
    *error = ctx + " must be a number";
    return false;
  }
  *out = v.as_double();
  return true;
}

bool want_size(const json::Value& v, const std::string& ctx, size_t* out,
               std::string* error) {
  if (!v.is_number() || v.as_double() < 0) {
    *error = ctx + " must be a non-negative number";
    return false;
  }
  *out = static_cast<size_t>(v.as_double());
  return true;
}

bool want_int64(const json::Value& v, const std::string& ctx, int64_t* out,
                std::string* error) {
  if (!v.is_number()) {
    *error = ctx + " must be a number";
    return false;
  }
  *out = static_cast<int64_t>(v.as_double());
  return true;
}

/// Override values arrive as JSON numbers over the wire and as text from
/// --props lines; normalizing to text lets one parser serve both.
std::string override_text(const json::Value& v) {
  return v.is_string() ? v.as_string() : v.dump();
}

}  // namespace

GateId find_signal(const Netlist& n, const std::string& name) {
  GateId g = n.find(name);
  if (g == kNullGate) g = n.output(name);
  return g;
}

bool apply_override(const std::string& key, const std::string& value,
                    PropertySpec* out, std::string* error) {
  try {
    if (key == "name") {
      out->name = value;
    } else if (key == "time-limit") {
      out->overrides.time_limit_s = std::stod(value);
    } else if (key == "max-iterations") {
      out->overrides.max_iterations = std::stoul(value);
    } else if (key == "traces") {
      out->overrides.traces_per_iteration = std::stoul(value);
    } else if (key == "budget-ms") {
      out->overrides.budget_ms = std::stod(value);
    } else if (key == "budget-bdd-nodes") {
      out->overrides.budget_bdd_nodes = std::stoll(value);
    } else if (key == "budget-mem-mb") {
      out->overrides.budget_mem_mb = std::stoll(value);
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  } catch (const std::exception&) {
    *error = "invalid value '" + value + "' for '" + key + "'";
    return false;
  }
  return true;
}

bool parse_property_spec(const std::string& line, PropertySpec* out,
                         std::string* error) {
  *out = PropertySpec{};
  std::stringstream ss(line);
  std::string signal;
  ss >> signal;
  if (signal.empty()) {
    *error = "empty property line";
    return false;
  }
  out->signal = signal;
  std::string tok;
  while (ss >> tok) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + tok + "'";
      return false;
    }
    if (!apply_override(tok.substr(0, eq), tok.substr(eq + 1), out, error))
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// VerifyRequest

std::vector<std::string> VerifyRequest::validate() const {
  // The single choke point: the engine knobs' own validation. Session knobs
  // are self-clamping by construction (cluster_by_cone_overlap treats
  // max_cluster_size 0 as 1; non-positive overlap disables clustering).
  return options.validate();
}

json::Value VerifyRequest::to_json() const {
  using json::Value;
  Value o = Value::object();
  o.set("type", "verify");
  o.set("version", kRequestVersion);
  if (!id.empty()) o.set("id", id);
  if (!tenant.empty()) o.set("tenant", tenant);

  Value d = Value::object();
  if (!design.path.empty()) d.set("path", design.path);
  if (!design.text.empty()) d.set("text", design.text);
  if (!design.format.empty()) d.set("format", design.format);
  if (!design.top.empty()) d.set("top", design.top);
  o.set("design", std::move(d));

  if (!props.empty()) {
    Value arr = Value::array();
    for (const PropertySpec& p : props) {
      Value s = Value::object();
      s.set("signal", p.signal);
      if (!p.name.empty()) s.set("name", p.name);
      if (p.overrides.any()) {
        Value ov = Value::object();
        if (p.overrides.time_limit_s)
          ov.set("time-limit", *p.overrides.time_limit_s);
        if (p.overrides.max_iterations)
          ov.set("max-iterations", *p.overrides.max_iterations);
        if (p.overrides.traces_per_iteration)
          ov.set("traces", *p.overrides.traces_per_iteration);
        if (p.overrides.budget_ms) ov.set("budget-ms", *p.overrides.budget_ms);
        if (p.overrides.budget_bdd_nodes)
          ov.set("budget-bdd-nodes", *p.overrides.budget_bdd_nodes);
        if (p.overrides.budget_mem_mb)
          ov.set("budget-mem-mb", *p.overrides.budget_mem_mb);
        s.set("overrides", std::move(ov));
      }
      arr.push(std::move(s));
    }
    o.set("props", std::move(arr));
  }

  Value opt = Value::object();
  opt.set("time-limit", options.time_limit_s);
  opt.set("max-iterations", options.max_iterations);
  opt.set("traces", options.traces_per_iteration);
  opt.set("workers", options.portfolio_workers);
  if (!options.engines.empty()) {
    Value engines = Value::array();
    for (const std::string& e : options.engines) engines.push(e);
    opt.set("engines", std::move(engines));
  }
  opt.set("approx-fallback", options.approx_fallback);
  opt.set("proof-shrink", options.proof_shrink);
  opt.set("pdr-max-frames", options.race_pdr_max_frames);
  opt.set("pdr-time", options.race_pdr_time_s);
  opt.set("budget-ms", options.budget_ms);
  opt.set("budget-bdd-nodes", options.budget_bdd_nodes);
  opt.set("budget-mem-mb", options.budget_mem_mb);
  o.set("options", std::move(opt));

  Value sess = Value::object();
  sess.set("cluster-overlap", cluster_overlap);
  sess.set("max-cluster", max_cluster_size);
  sess.set("workers", session_workers);
  sess.set("batch-budget-ms", batch_budget_ms);
  sess.set("reuse", reuse);
  sess.set("batch", batch);
  o.set("session", std::move(sess));

  o.set("certify", certify);
  o.set("inline-certificates", inline_certificates);
  return o;
}

namespace {

bool parse_design(const json::Value& v, DesignRef* out, std::string* error) {
  if (!v.is_object()) {
    *error = "'design' must be an object";
    return false;
  }
  for (const auto& [key, val] : v.members()) {
    const std::string ctx = "design." + key;
    if (key == "path") {
      if (!want_string(val, ctx, &out->path, error)) return false;
    } else if (key == "text") {
      if (!want_string(val, ctx, &out->text, error)) return false;
    } else if (key == "format") {
      if (!want_string(val, ctx, &out->format, error)) return false;
    } else if (key == "top") {
      if (!want_string(val, ctx, &out->top, error)) return false;
    } else {
      *error = "unknown key 'design." + key + "'";
      return false;
    }
  }
  if (out->path.empty() && out->text.empty()) {
    *error = "'design' needs a path or inline text";
    return false;
  }
  return true;
}

bool parse_prop(const json::Value& v, size_t index, PropertySpec* out,
                std::string* error) {
  const std::string where = "props[" + std::to_string(index) + "]";
  if (!v.is_object()) {
    *error = where + " must be an object";
    return false;
  }
  for (const auto& [key, val] : v.members()) {
    if (key == "signal") {
      if (!want_string(val, where + ".signal", &out->signal, error))
        return false;
    } else if (key == "name") {
      if (!want_string(val, where + ".name", &out->name, error)) return false;
    } else if (key == "overrides") {
      if (!val.is_object()) {
        *error = where + ".overrides must be an object";
        return false;
      }
      for (const auto& [ok, ov] : val.members()) {
        std::string why;
        if (!apply_override(ok, override_text(ov), out, &why)) {
          *error = where + ".overrides: " + why;
          return false;
        }
      }
    } else {
      *error = "unknown key '" + where + "." + key + "'";
      return false;
    }
  }
  if (out->signal.empty()) {
    *error = where + " needs a signal";
    return false;
  }
  out->origin = where;
  return true;
}

bool parse_options(const json::Value& v, RfnOptions* out, std::string* error) {
  if (!v.is_object()) {
    *error = "'options' must be an object";
    return false;
  }
  for (const auto& [key, val] : v.members()) {
    const std::string ctx = "options." + key;
    if (key == "time-limit") {
      if (!want_double(val, ctx, &out->time_limit_s, error)) return false;
    } else if (key == "max-iterations") {
      if (!want_size(val, ctx, &out->max_iterations, error)) return false;
    } else if (key == "traces") {
      if (!want_size(val, ctx, &out->traces_per_iteration, error)) return false;
    } else if (key == "workers") {
      if (!want_size(val, ctx, &out->portfolio_workers, error)) return false;
    } else if (key == "engines") {
      if (!val.is_array()) {
        *error = ctx + " must be an array of engine names";
        return false;
      }
      for (const json::Value& e : val.items()) {
        std::string name;
        if (!want_string(e, ctx + " entry", &name, error)) return false;
        out->engines.push_back(std::move(name));
      }
    } else if (key == "approx-fallback") {
      if (!want_bool(val, ctx, &out->approx_fallback, error)) return false;
    } else if (key == "proof-shrink") {
      if (!want_bool(val, ctx, &out->proof_shrink, error)) return false;
    } else if (key == "pdr-max-frames") {
      if (!want_size(val, ctx, &out->race_pdr_max_frames, error)) return false;
    } else if (key == "pdr-time") {
      if (!want_double(val, ctx, &out->race_pdr_time_s, error)) return false;
    } else if (key == "budget-ms") {
      if (!want_double(val, ctx, &out->budget_ms, error)) return false;
    } else if (key == "budget-bdd-nodes") {
      if (!want_int64(val, ctx, &out->budget_bdd_nodes, error)) return false;
    } else if (key == "budget-mem-mb") {
      if (!want_int64(val, ctx, &out->budget_mem_mb, error)) return false;
    } else {
      *error = "unknown key 'options." + key + "'";
      return false;
    }
  }
  return true;
}

bool parse_session(const json::Value& v, VerifyRequest* out,
                   std::string* error) {
  if (!v.is_object()) {
    *error = "'session' must be an object";
    return false;
  }
  for (const auto& [key, val] : v.members()) {
    const std::string ctx = "session." + key;
    if (key == "cluster-overlap") {
      if (!want_double(val, ctx, &out->cluster_overlap, error)) return false;
    } else if (key == "max-cluster") {
      if (!want_size(val, ctx, &out->max_cluster_size, error)) return false;
    } else if (key == "workers") {
      if (!want_size(val, ctx, &out->session_workers, error)) return false;
    } else if (key == "batch-budget-ms") {
      if (!want_double(val, ctx, &out->batch_budget_ms, error)) return false;
    } else if (key == "reuse") {
      if (!want_bool(val, ctx, &out->reuse, error)) return false;
    } else if (key == "batch") {
      if (!want_bool(val, ctx, &out->batch, error)) return false;
    } else {
      *error = "unknown key 'session." + key + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

bool VerifyRequest::from_json(const json::Value& v, VerifyRequest* out,
                              std::string* error) {
  *out = VerifyRequest{};
  if (!v.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  bool saw_type = false, saw_version = false, saw_design = false;
  for (const auto& [key, val] : v.members()) {
    if (key == "type") {
      std::string type;
      if (!want_string(val, "'type'", &type, error)) return false;
      if (type != "verify") {
        *error = "unknown request type '" + type + "' (valid: verify)";
        return false;
      }
      saw_type = true;
    } else if (key == "version") {
      std::string version;
      if (!want_string(val, "'version'", &version, error)) return false;
      if (version != kRequestVersion) {
        *error = "unsupported request version '" + version + "' (valid: " +
                 std::string(kRequestVersion) + ")";
        return false;
      }
      saw_version = true;
    } else if (key == "id") {
      if (!want_string(val, "'id'", &out->id, error)) return false;
    } else if (key == "tenant") {
      if (!want_string(val, "'tenant'", &out->tenant, error)) return false;
    } else if (key == "design") {
      if (!parse_design(val, &out->design, error)) return false;
      saw_design = true;
    } else if (key == "props") {
      if (!val.is_array()) {
        *error = "'props' must be an array";
        return false;
      }
      for (size_t i = 0; i < val.items().size(); ++i) {
        PropertySpec spec;
        if (!parse_prop(val.items()[i], i, &spec, error)) return false;
        out->props.push_back(std::move(spec));
      }
    } else if (key == "options") {
      if (!parse_options(val, &out->options, error)) return false;
    } else if (key == "session") {
      if (!parse_session(val, out, error)) return false;
    } else if (key == "certify") {
      if (!want_bool(val, "'certify'", &out->certify, error)) return false;
    } else if (key == "inline-certificates") {
      if (!want_bool(val, "'inline-certificates'", &out->inline_certificates,
                     error))
        return false;
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  if (!saw_type || !saw_version) {
    *error = "request needs \"type\":\"verify\" and \"version\":\"" +
             std::string(kRequestVersion) + "\"";
    return false;
  }
  if (!saw_design) {
    *error = "request needs a 'design'";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// VerifyResponse

json::Value VerifyResponse::to_json() const {
  using json::Value;
  Value o = Value::object();
  o.set("type", "response");
  o.set("version", kResponseVersion);
  o.set("id", id);
  o.set("ok", ok);
  if (!ok) {
    o.set("error", error);
    if (!reject_reason.empty()) o.set("reject_reason", reject_reason);
    return o;
  }
  o.set("design_hash", design_hash);
  o.set("properties", properties);
  o.set("clusters", clusters);
  Value verdicts = Value::object();
  verdicts.set(to_string(Verdict::Holds), holds);
  verdicts.set(to_string(Verdict::Fails), fails);
  verdicts.set(to_string(Verdict::Unknown), unknown);
  verdicts.set(to_string(Verdict::ResourceOut), resource_out);
  o.set("verdicts", std::move(verdicts));
  Value rs = Value::array();
  for (const PropertyVerdict& r : results) {
    Value e = Value::object();
    e.set("name", r.name);
    e.set("verdict", r.verdict);
    e.set("cluster", r.cluster);
    e.set("clustered", r.clustered);
    e.set("order_seeded", r.order_seeded);
    e.set("seeded_registers", r.seeded_registers);
    e.set("iterations", r.iterations);
    e.set("seconds", r.seconds);
    e.set("note", r.note);
    rs.push(std::move(e));
  }
  o.set("results", std::move(rs));
  if (certified) {
    Value certs = Value::object();
    certs.set("ok", cert_ok);
    certs.set("failed", cert_failed);
    if (!certificates.empty()) {
      Value docs = Value::array();
      for (const json::Value& c : certificates) docs.push(c);
      certs.set("docs", std::move(docs));
    }
    o.set("certificates", std::move(certs));
  }
  Value warm_o = Value::object();
  warm_o.set("enabled", warm.enabled);
  warm_o.set("hit", warm.hit);
  warm_o.set("hits", warm.hits);
  warm_o.set("misses", warm.misses);
  warm_o.set("evictions", warm.evictions);
  warm_o.set("entries", warm.entries);
  warm_o.set("bytes", warm.bytes);
  warm_o.set("order_warm", warm.order_warm);
  warm_o.set("sat_pool_entries", warm.sat_pool_entries);
  o.set("warm_cache", std::move(warm_o));
  o.set("seconds", seconds);
  return o;
}

bool VerifyResponse::from_json(const json::Value& v, VerifyResponse* out,
                               std::string* error) {
  *out = VerifyResponse{};
  if (!v.is_object()) {
    *error = "response must be a JSON object";
    return false;
  }
  const json::Value* version = v.find("version");
  if (version == nullptr || !version->is_string() ||
      version->as_string() != kResponseVersion) {
    *error = "not an rfn-resp-v1 response";
    return false;
  }
  for (const auto& [key, val] : v.members()) {
    if (key == "type" || key == "version") {
      continue;
    } else if (key == "id") {
      if (!want_string(val, "'id'", &out->id, error)) return false;
    } else if (key == "ok") {
      if (!want_bool(val, "'ok'", &out->ok, error)) return false;
    } else if (key == "error") {
      if (!want_string(val, "'error'", &out->error, error)) return false;
    } else if (key == "reject_reason") {
      if (!want_string(val, "'reject_reason'", &out->reject_reason, error))
        return false;
    } else if (key == "design_hash") {
      if (!want_string(val, "'design_hash'", &out->design_hash, error))
        return false;
    } else if (key == "properties") {
      if (!want_size(val, "'properties'", &out->properties, error))
        return false;
    } else if (key == "clusters") {
      if (!want_size(val, "'clusters'", &out->clusters, error)) return false;
    } else if (key == "verdicts") {
      if (!val.is_object()) {
        *error = "'verdicts' must be an object";
        return false;
      }
      for (const auto& [vk, vv] : val.members()) {
        size_t n = 0;
        if (!want_size(vv, "verdicts." + vk, &n, error)) return false;
        if (vk == to_string(Verdict::Holds)) out->holds = n;
        else if (vk == to_string(Verdict::Fails)) out->fails = n;
        else if (vk == to_string(Verdict::Unknown)) out->unknown = n;
        else if (vk == to_string(Verdict::ResourceOut)) out->resource_out = n;
        else {
          *error = "unknown verdict '" + vk + "'";
          return false;
        }
      }
    } else if (key == "results") {
      if (!val.is_array()) {
        *error = "'results' must be an array";
        return false;
      }
      for (const json::Value& e : val.items()) {
        if (!e.is_object()) {
          *error = "results entries must be objects";
          return false;
        }
        PropertyVerdict r;
        for (const auto& [rk, rv] : e.members()) {
          const std::string ctx = "results." + rk;
          if (rk == "name") {
            if (!want_string(rv, ctx, &r.name, error)) return false;
          } else if (rk == "verdict") {
            if (!want_string(rv, ctx, &r.verdict, error)) return false;
          } else if (rk == "cluster") {
            if (!want_size(rv, ctx, &r.cluster, error)) return false;
          } else if (rk == "clustered") {
            if (!want_bool(rv, ctx, &r.clustered, error)) return false;
          } else if (rk == "order_seeded") {
            if (!want_bool(rv, ctx, &r.order_seeded, error)) return false;
          } else if (rk == "seeded_registers") {
            if (!want_size(rv, ctx, &r.seeded_registers, error)) return false;
          } else if (rk == "iterations") {
            if (!want_size(rv, ctx, &r.iterations, error)) return false;
          } else if (rk == "seconds") {
            if (!want_double(rv, ctx, &r.seconds, error)) return false;
          } else if (rk == "note") {
            if (!want_string(rv, ctx, &r.note, error)) return false;
          } else {
            *error = "unknown key '" + ctx + "'";
            return false;
          }
        }
        out->results.push_back(std::move(r));
      }
    } else if (key == "certificates") {
      if (!val.is_object()) {
        *error = "'certificates' must be an object";
        return false;
      }
      out->certified = true;
      for (const auto& [ck, cv] : val.members()) {
        if (ck == "ok") {
          if (!want_size(cv, "certificates.ok", &out->cert_ok, error))
            return false;
        } else if (ck == "failed") {
          if (!want_size(cv, "certificates.failed", &out->cert_failed, error))
            return false;
        } else if (ck == "docs") {
          if (!cv.is_array()) {
            *error = "certificates.docs must be an array";
            return false;
          }
          for (const json::Value& doc : cv.items())
            out->certificates.push_back(doc);
        } else {
          *error = "unknown key 'certificates." + ck + "'";
          return false;
        }
      }
    } else if (key == "warm_cache") {
      if (!val.is_object()) {
        *error = "'warm_cache' must be an object";
        return false;
      }
      for (const auto& [wk, wv] : val.members()) {
        const std::string ctx = "warm_cache." + wk;
        if (wk == "enabled") {
          if (!want_bool(wv, ctx, &out->warm.enabled, error)) return false;
        } else if (wk == "hit") {
          if (!want_bool(wv, ctx, &out->warm.hit, error)) return false;
        } else if (wk == "hits") {
          if (!want_size(wv, ctx, &out->warm.hits, error)) return false;
        } else if (wk == "misses") {
          if (!want_size(wv, ctx, &out->warm.misses, error)) return false;
        } else if (wk == "evictions") {
          if (!want_size(wv, ctx, &out->warm.evictions, error)) return false;
        } else if (wk == "entries") {
          if (!want_size(wv, ctx, &out->warm.entries, error)) return false;
        } else if (wk == "bytes") {
          if (!want_int64(wv, ctx, &out->warm.bytes, error)) return false;
        } else if (wk == "order_warm") {
          if (!want_bool(wv, ctx, &out->warm.order_warm, error)) return false;
        } else if (wk == "sat_pool_entries") {
          if (!want_size(wv, ctx, &out->warm.sat_pool_entries, error))
            return false;
        } else {
          *error = "unknown key '" + ctx + "'";
          return false;
        }
      }
    } else if (key == "seconds") {
      if (!want_double(val, "'seconds'", &out->seconds, error)) return false;
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  return true;
}

VerifyResponse VerifyResponse::reject(const std::string& id,
                                      const std::string& reason,
                                      const std::string& detail) {
  VerifyResponse r;
  r.id = id;
  r.ok = false;
  r.reject_reason = reason;
  r.error = detail;
  return r;
}

// ---------------------------------------------------------------------------
// The shared run path

bool resolve_properties(const Netlist& n,
                        const std::vector<aiger::AigerProperty>& aiger_props,
                        const std::vector<PropertySpec>& specs,
                        std::vector<PropertyRequest>* out, std::string* error) {
  out->clear();
  if (!specs.empty()) {
    for (const PropertySpec& s : specs) {
      const GateId bad = find_signal(n, s.signal);
      if (bad == kNullGate) {
        *error = (s.origin.empty() ? "" : s.origin + ": ") +
                 "no signal named '" + s.signal + "'";
        return false;
      }
      PropertyRequest p;
      p.bad = bad;
      p.name = s.name;
      p.overrides = s.overrides;
      out->push_back(std::move(p));
    }
    return true;
  }
  if (!aiger_props.empty()) {
    // An AIGER design with no explicit selection verifies its whole property
    // list (each bad output, or each output pre-1.9 style).
    for (const aiger::AigerProperty& ap : aiger_props) {
      PropertyRequest p;
      p.name = ap.name;
      p.bad = ap.signal;
      out->push_back(std::move(p));
    }
    return true;
  }
  // The conventional default: a signal literally named "bad".
  PropertyRequest p;
  p.name = "bad";
  p.bad = find_signal(n, "bad");
  if (p.bad == kNullGate) {
    *error = "no signal named 'bad'";
    return false;
  }
  out->push_back(std::move(p));
  return true;
}

CertificateArtifact certify_property(const Netlist& design, GateId bad,
                                     const std::string& name, Verdict verdict,
                                     const Trace& trace,
                                     const std::vector<GateId>& final_registers,
                                     CertificateRecord* rec,
                                     const PdrInvariantWitness* pdr_invariant) {
  CertificateArtifact art =
      certify_with_witness(design, bad, name, verdict, trace, final_registers,
                           {}, pdr_invariant);
  rec->property = name;
  rec->kind = cert::cert_kind_name(art.certificate.kind);
  rec->ok = art.checked;
  rec->clauses = art.certificate.clauses.size();
  rec->trace_cycles = art.certificate.trace.cycles();
  rec->obligation =
      art.checked ? "" : (art.built ? art.obligation : "extraction");
  rec->seconds = art.seconds;
  return art;
}

bool run_verify(const LoadedDesign& design, const VerifyRequest& req,
                TraceSink* sink, bool stream_properties, ReuseCache* warm,
                RunOutput* out, std::string* error) {
  *out = RunOutput{};
  const std::vector<std::string> errors = req.validate();
  if (!errors.empty()) {
    *error = "invalid options: " + join_semicolon(errors);
    return false;
  }
  std::vector<PropertyRequest> props;
  if (!resolve_properties(design.netlist, design.aiger_properties, req.props,
                          &props, error))
    return false;

  SessionOptions sopt;
  sopt.defaults = req.options;
  sopt.cluster_overlap = req.cluster_overlap;
  sopt.max_cluster_size = req.max_cluster_size;
  sopt.workers = req.session_workers;
  sopt.batch_budget_ms = req.batch_budget_ms;
  sopt.reuse = req.reuse;
  sopt.shared_cache = warm;
  if (sink != nullptr && stream_properties)
    sopt.on_property = [sink](const PropertyResult& r) {
      sink->record(property_json(r));
    };

  // The batch summary diffs the process-global registry against this
  // baseline. With one run per process (the CLI) the diff is exactly this
  // run's work; under rfn_serve, concurrent requests overlap the window,
  // so server-mode summary metrics are process-cumulative, not per-request
  // (documented in DESIGN.md §15).
  out->baseline = MetricsRegistry::global().snapshot();
  const Stopwatch watch;
  VerifySession session(design.netlist, sopt);
  out->results = session.run(props);
  out->seconds = watch.seconds();
  out->clusters = session.clusters().size();

  // Certification happens before the batch summary is rendered so the
  // summary's metrics dump includes the checker's work — the ordering the
  // CLI always had.
  const bool do_certify = req.certify || req.inline_certificates;
  if (do_certify) {
    for (const PropertyResult& r : out->results) {
      if (r.verdict != Verdict::Holds && r.verdict != Verdict::Fails) continue;
      CertificateRecord rec;
      CertificateArtifact art =
          certify_property(design.netlist, r.bad, r.name, r.verdict, r.trace,
                           r.stats.final_registers, &rec,
                           r.stats.pdr_invariant.present
                               ? &r.stats.pdr_invariant
                               : nullptr);
      out->cert_records.push_back(std::move(rec));
      out->cert_artifacts.push_back(std::move(art));
    }
  }

  if (sink != nullptr) {
    // Streaming mode already emitted each property record as its verdict
    // landed (completion order); the file mode emits post-run in request
    // order — the historical --trace-json byte layout.
    if (!stream_properties)
      for (const PropertyResult& r : out->results)
        sink->record(property_json(r));
    for (const CertificateRecord& rec : out->cert_records)
      sink->record(certificate_json(rec));
    sink->record(batch_summary_json(out->results, out->clusters, out->seconds,
                                    &out->baseline,
                                    do_certify ? &out->cert_records : nullptr));
  }

  VerifyResponse& resp = out->response;
  resp.id = req.id;
  resp.ok = true;
  resp.design_hash = design.hash_hex;
  resp.properties = out->results.size();
  resp.clusters = out->clusters;
  resp.seconds = out->seconds;
  for (const PropertyResult& r : out->results) {
    switch (r.verdict) {
      case Verdict::Holds: ++resp.holds; break;
      case Verdict::Fails: ++resp.fails; break;
      case Verdict::Unknown: ++resp.unknown; break;
      case Verdict::ResourceOut: ++resp.resource_out; break;
    }
    PropertyVerdict pv;
    pv.name = r.name;
    pv.verdict = to_string(r.verdict);
    pv.cluster = r.cluster;
    pv.clustered = r.clustered;
    pv.order_seeded = r.order_seeded;
    pv.seeded_registers = r.seeded_registers;
    pv.iterations = r.stats.iterations;
    pv.seconds = r.stats.seconds;
    pv.note = r.stats.note;
    resp.results.push_back(std::move(pv));
  }
  resp.certified = do_certify;
  for (size_t i = 0; i < out->cert_records.size(); ++i) {
    ++(out->cert_records[i].ok ? resp.cert_ok : resp.cert_failed);
    if (req.inline_certificates && out->cert_artifacts[i].built) {
      // cert::to_json emits the rfn-cert-v1 document as text; re-parsing it
      // embeds the certificate as structured JSON rather than a string blob.
      json::Value doc =
          json::parse(cert::to_json(out->cert_artifacts[i].certificate));
      if (!doc.is_null()) resp.certificates.push_back(std::move(doc));
    }
  }
  return true;
}

RfnResult run_single(const Netlist& m, GateId bad, const RfnOptions& opt) {
  // Equivalent to a fresh RfnVerifier (its initial-register seeding is a
  // no-op on the first run, and validated options never carry the
  // traces_per_iteration == 0 case its clamp exists for).
  return run_property(m, bad, opt);
}

}  // namespace rfn::api
