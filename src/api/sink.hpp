#pragma once
// TraceSink: one interface behind which every rfn-trace-v2 record —
// property, certificate, batch-summary — leaves the run path.
//
// Before the rfn::api extraction, emission was a set of path-string options
// threaded through the CLI (write to --trace-json, print, etc.), which a
// long-lived server cannot reuse: it needs the records pushed to a socket
// as they are produced, not written to a file after the run. The sink
// abstraction gives both consumers the same producer:
//
//   * StreamTraceSink  — JSON Lines to an ostream, byte-identical to the
//     pre-extraction `--trace-json` output (one compact dump() per line);
//   * CallbackTraceSink — each record handed to a closure; rfn_serve wraps
//     one around its connection writer to stream records mid-run;
//   * CollectTraceSink — records buffered in memory for tests and for the
//     CLI-vs-server equivalence checks.
//
// Sinks are not thread-safe by themselves; api::run_verify serializes its
// calls (the session's on_property callback fires under the session's
// emission mutex).

#include <functional>
#include <ostream>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace rfn::api {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Accepts one rfn-trace-v2 record (a self-contained JSON object).
  virtual void record(const json::Value& rec) = 0;
};

/// JSON Lines to a stream: exactly the historical --trace-json byte format.
class StreamTraceSink : public TraceSink {
 public:
  explicit StreamTraceSink(std::ostream& os) : os_(os) {}
  void record(const json::Value& rec) override { os_ << rec.dump() << "\n"; }

 private:
  std::ostream& os_;
};

/// Each record handed to a closure (the server's per-connection writer).
class CallbackTraceSink : public TraceSink {
 public:
  explicit CallbackTraceSink(std::function<void(const json::Value&)> fn)
      : fn_(std::move(fn)) {}
  void record(const json::Value& rec) override { fn_(rec); }

 private:
  std::function<void(const json::Value&)> fn_;
};

/// Records buffered in memory (tests, equivalence checks).
class CollectTraceSink : public TraceSink {
 public:
  void record(const json::Value& rec) override { records_.push_back(rec); }
  const std::vector<json::Value>& records() const { return records_; }

 private:
  std::vector<json::Value> records_;
};

}  // namespace rfn::api
