#pragma once
// rfn::api — the request/response surface every front door drives.
//
// Before this facade, tools/rfn_cli.cpp owned the whole parse → validate →
// load-design → run-session pipeline inline (~770 lines), which made a
// long-lived server impossible to build without forking that logic. The
// redesign splits the pipeline into data and one run path:
//
//   VerifyRequest   — everything a verification asks for: the design
//                     (api::DesignRef), the property set (PropertySpec),
//                     the engine knobs (RfnOptions embedded verbatim) and
//                     the session knobs. Serializes as rfn-req-v1; the CLI
//                     builds the same struct from flags, so a request over
//                     a socket and a command line are the same computation.
//   run_verify      — the one shared run path: validate (the single choke
//                     point calling VerifyRequest::validate), resolve
//                     properties, run the VerifySession, certify, and emit
//                     rfn-trace-v2 records through a TraceSink (file sink =
//                     the historical --trace-json bytes; callback sink =
//                     the server's mid-run streaming).
//   VerifyResponse  — the final verdict document (rfn-resp-v1): per-
//                     property verdicts, verdict counts, certificate
//                     outcomes, warm-cache effects, wall time.
//
// The schemas are versioned ("rfn-req-v1"/"rfn-resp-v1") and the codecs are
// strict: unknown keys are rejected, so a typo'd option fails the request
// instead of silently running with defaults.

#include <string>
#include <vector>

#include "api/load.hpp"
#include "api/sink.hpp"
#include "core/certificate.hpp"
#include "core/rfn.hpp"
#include "core/session.hpp"
#include "core/trace_json.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace rfn::api {

inline constexpr const char* kRequestVersion = "rfn-req-v1";
inline constexpr const char* kResponseVersion = "rfn-resp-v1";

/// Resolves a property signal the way every front door always has: by gate
/// name first, then by output name.
GateId find_signal(const Netlist& n, const std::string& name);

/// One property selection inside a request, before resolution against the
/// loaded design. The override vocabulary is exactly the --props file's
/// (time-limit, max-iterations, traces, budget-ms, budget-bdd-nodes,
/// budget-mem-mb) — one codec serves the file, the flags, and the wire.
struct PropertySpec {
  /// Signal name in the design (gate or output name).
  std::string signal;
  /// Label override; empty keeps the signal's design name.
  std::string name;
  PropertyRequest::Overrides overrides;
  /// Diagnostic prefix for resolution errors ("props line 3"); never
  /// serialized.
  std::string origin;
};

/// Applies one key=value override ("name" included). False with a message
/// on unknown keys; the same spellings everywhere.
bool apply_override(const std::string& key, const std::string& value,
                    PropertySpec* out, std::string* error);

/// Parses one --props line: "SIGNAL [key=value...]". Resolution against the
/// design happens later (resolve_properties).
bool parse_property_spec(const std::string& line, PropertySpec* out,
                         std::string* error);

/// A verification request: rfn-req-v1.
///
///   {"type":"verify","version":"rfn-req-v1","id":"..","tenant":"..",
///    "design":{"path":"..","text":"..","format":"..","top":".."},
///    "props":[{"signal":"..","name":"..",
///              "overrides":{"time-limit":..,"max-iterations":..,
///                           "traces":..,"budget-ms":..,
///                           "budget-bdd-nodes":..,"budget-mem-mb":..}}],
///    "options":{"time-limit":..,"max-iterations":..,"traces":..,
///               "workers":..,"engines":["bdd",..],"approx-fallback":..,
///               "budget-ms":..,"budget-bdd-nodes":..,"budget-mem-mb":..},
///    "session":{"cluster-overlap":..,"max-cluster":..,"workers":..,
///               "batch-budget-ms":..,"reuse":..,"batch":..},
///    "certify":..,"inline-certificates":..}
///
/// Every field except "type"/"version"/"design" is optional and defaults as
/// the CLI always has. An empty "props" falls back to the design's AIGER
/// property list, then to the conventional "bad" signal.
struct VerifyRequest {
  /// Client-chosen id, echoed in every record and the response.
  std::string id;
  /// Fair-share scheduling key (the server's admission unit). Empty is a
  /// valid tenant of its own.
  std::string tenant;
  DesignRef design;
  std::vector<PropertySpec> props;
  /// Engine knobs, embedded verbatim — RfnOptions::validate() is the single
  /// validation choke point for them (called from validate() below).
  RfnOptions options;
  // Session knobs (SessionOptions sans defaults/hooks).
  double cluster_overlap = 0.5;
  size_t max_cluster_size = 4;
  size_t session_workers = 0;
  double batch_budget_ms = -1.0;
  bool reuse = true;
  /// Forces the session path (and rfn-trace-v2) even for one property.
  bool batch = false;
  /// Certify every conclusive verdict through the independent SAT checker.
  bool certify = false;
  /// Ship each built rfn-cert-v1 document inline in the response.
  bool inline_certificates = false;

  /// The one validation choke point: RfnOptions::validate() plus the
  /// session knobs. Empty means valid.
  std::vector<std::string> validate() const;

  json::Value to_json() const;
  /// Strict rfn-req-v1 parse: wrong type/version, non-object shapes, and
  /// unknown keys are all errors.
  static bool from_json(const json::Value& v, VerifyRequest* out,
                        std::string* error);
};

/// Per-property verdict inside a response.
struct PropertyVerdict {
  std::string name;
  std::string verdict;  // "T" | "F" | "?" | "resource-out"
  size_t cluster = 0;
  bool clustered = false;
  bool order_seeded = false;
  size_t seeded_registers = 0;
  size_t iterations = 0;
  double seconds = 0.0;
  std::string note;
};

/// Warm-state effects of a served request (filled by rfn_serve; all-default
/// for CLI runs, where every request is cold by construction).
struct WarmCacheInfo {
  bool enabled = false;
  /// The design's cache entry existed before this request.
  bool hit = false;
  /// Cache-level lookup counters, cumulative over the server's lifetime.
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  /// Entries and charged bytes after this request.
  size_t entries = 0;
  int64_t bytes = 0;
  /// Pre-existing warm state the run could reuse: a saved BDD variable
  /// order, and pooled incremental SAT instances.
  bool order_warm = false;
  size_t sat_pool_entries = 0;
};

/// The final verdict document: rfn-resp-v1.
///
///   {"type":"response","version":"rfn-resp-v1","id":"..","ok":..,
///    ["error":"..","reject_reason":"..",]              // failures only
///    "design_hash":"..","properties":..,"clusters":..,
///    "verdicts":{"T":..,"F":..,"?":..,"resource-out":..},
///    "results":[{"name":..,"verdict":..,"cluster":..,"clustered":..,
///                "order_seeded":..,"seeded_registers":..,"iterations":..,
///                "seconds":..,"note":..}],
///    ["certificates":{"ok":..,"failed":..[,"docs":[..]]},]  // certify only
///    "warm_cache":{"enabled":..,"hit":..,"hits":..,"misses":..,
///                  "evictions":..,"entries":..,"bytes":..,
///                  "order_warm":..,"sat_pool_entries":..},
///    "seconds":..}
struct VerifyResponse {
  std::string id;
  bool ok = false;
  std::string error;
  /// Named admission-control reason when the server rejected the request
  /// without running it: "queue-full", "time-oversubscribed",
  /// "mem-oversubscribed", "bdd-oversubscribed", "load-failed",
  /// "bad-request".
  std::string reject_reason;
  std::string design_hash;
  size_t properties = 0;
  size_t clusters = 0;
  size_t holds = 0, fails = 0, unknown = 0, resource_out = 0;
  std::vector<PropertyVerdict> results;
  bool certified = false;
  size_t cert_ok = 0, cert_failed = 0;
  /// Inline rfn-cert-v1 documents (VerifyRequest::inline_certificates).
  std::vector<json::Value> certificates;
  WarmCacheInfo warm;
  double seconds = 0.0;

  json::Value to_json() const;
  static bool from_json(const json::Value& v, VerifyResponse* out,
                        std::string* error);
  /// A failure response (admission rejects, malformed requests).
  static VerifyResponse reject(const std::string& id, const std::string& reason,
                               const std::string& detail);
};

/// Resolves the request's property selection against the loaded design:
/// explicit specs first, else the design's AIGER property list, else the
/// conventional "bad" signal. False with a one-line error (prefixed by the
/// spec's origin, when set) on unknown signals.
bool resolve_properties(const Netlist& n,
                        const std::vector<aiger::AigerProperty>& aiger_props,
                        const std::vector<PropertySpec>& specs,
                        std::vector<PropertyRequest>* out, std::string* error);

/// Builds + checks the witness for one concluded property and flattens the
/// outcome into the rfn-trace-v2 certificate record (no file I/O — callers
/// owning a --cert-dir write the artifact themselves). When the run's PDR
/// engine concluded Holds, pass its invariant (RfnResult::pdr_invariant) so
/// the witness comes from the inductive frame instead of a recomputed BDD
/// fixpoint — the frame's register scope may not support one.
CertificateArtifact certify_property(const Netlist& design, GateId bad,
                                     const std::string& name, Verdict verdict,
                                     const Trace& trace,
                                     const std::vector<GateId>& final_registers,
                                     CertificateRecord* rec,
                                     const PdrInvariantWitness* pdr_invariant = nullptr);

/// Everything run_verify produced, for callers that post-process beyond the
/// response (the CLI's table, witness export, cert-dir writing).
struct RunOutput {
  VerifyResponse response;
  std::vector<PropertyResult> results;
  /// Parallel arrays: one record + artifact per certified property.
  std::vector<CertificateRecord> cert_records;
  std::vector<CertificateArtifact> cert_artifacts;
  size_t clusters = 0;
  double seconds = 0.0;
  /// Metrics snapshot taken when the run started (scopes the batch-summary
  /// metrics dump and the CLI's --prof-json epilogue).
  MetricsSnapshot baseline;
};

/// The one shared run path: validate → resolve properties → VerifySession →
/// certify → emit rfn-trace-v2 through `sink` (null skips emission).
///
/// `stream_properties` false (the CLI) emits property records post-run in
/// request order — byte-identical to the historical write_batch_trace_json
/// file. True (the server) emits each property record as its verdict lands
/// (completion order), then certificates and the batch summary post-run.
///
/// `warm` (optional) is the server's per-design warm cache entry, passed to
/// SessionOptions::shared_cache; honored only when session_workers == 0.
///
/// Returns false — with a one-line `error` and nothing emitted — on invalid
/// options or unresolvable properties; the design is assumed loaded.
bool run_verify(const LoadedDesign& design, const VerifyRequest& req,
                TraceSink* sink, bool stream_properties, ReuseCache* warm,
                RunOutput* out, std::string* error);

/// The legacy single-property path (rfn-trace-v1): one run_property call
/// with no session machinery, exactly what `rfn verify` without a batch
/// does. RfnResult::final_registers feeds certification.
RfnResult run_single(const Netlist& m, GateId bad, const RfnOptions& opt);

}  // namespace rfn::api
