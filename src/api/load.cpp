#include "api/load.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "designs/builtin.hpp"
#include "netlist/analysis.hpp"
#include "netlist/blif.hpp"
#include "rtlv/elaborate.hpp"

namespace rfn::api {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

void stamp(LoadedDesign* out, std::string source) {
  out->hash = design_hash(out->netlist);
  out->hash_hex = design_hash_hex(out->netlist);
  out->source = std::move(source);
}

}  // namespace

bool load_design(const DesignRef& ref, LoadedDesign* out, std::string* error) {
  *out = LoadedDesign{};
  std::string format = ref.format;
  std::string text;

  if (!ref.text.empty()) {
    if (format.empty()) {
      *error = "inline designs need an explicit format (valid: verilog, blif, aiger)";
      return false;
    }
    text = ref.text;
  } else if (ref.path.rfind("builtin:", 0) == 0) {
    const std::string name = ref.path.substr(8);
    bool ok = false;
    out->netlist = designs::make_builtin(name, &ok);
    if (!ok) {
      *error = "unknown builtin design '" + name +
               "' (valid: " + join(designs::builtin_names()) + ")";
      return false;
    }
    stamp(out, ref.path);
    return true;
  } else {
    std::ifstream in(ref.path, std::ios::binary);  // binary .aig is not line text
    if (!in) {
      *error = "cannot open " + ref.path;
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    if (format.empty())
      format = ends_with(ref.path, ".aag") || ends_with(ref.path, ".aig")
                   ? "aiger"
               : ends_with(ref.path, ".blif") ? "blif"
                                              : "verilog";
  }

  const std::string source = ref.text.empty() ? ref.path : "<inline>";
  if (format == "aiger") {
    aiger::AigerDesign d;
    std::string aiger_error;
    if (!aiger::read_aiger(text, &d, &aiger_error)) {
      *error = source + ": " + aiger_error;
      return false;
    }
    out->netlist = std::move(d.netlist);
    out->aiger_properties = std::move(d.properties);
    out->aiger_bad = d.num_bad;
    out->aiger_outputs = d.num_outputs;
    out->aiger_constraints = d.num_constraints;
    out->aiger_constraints_folded = d.constraints_folded;
  } else if (format == "blif") {
    out->netlist = read_blif(text);
  } else if (format == "verilog") {
    out->netlist = rtlv::elaborate_verilog(text, ref.top).netlist;
  } else {
    *error = "unknown design format '" + format +
             "' (valid: verilog, blif, aiger)";
    return false;
  }
  stamp(out, source);
  return true;
}

}  // namespace rfn::api
