#pragma once
// Forward reachability: fixpoint with onion rings and on-the-fly target
// detection (Step 2 of RFN).

#include <vector>

#include "mc/image.hpp"
#include "util/cancel.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

struct ReachOptions {
  /// Wall-clock budget in seconds; negative = unlimited.
  double time_limit_s = -1.0;
  /// Abort when the manager's live node count exceeds this.
  size_t max_live_nodes = 4u << 20;
  /// Abort after this many image steps.
  size_t max_steps = 1u << 20;
  /// Cooperative should-stop hook, polled once per image step; a cancelled
  /// fixpoint reports ResourceOut. Used by the portfolio scheduler.
  const CancelToken* cancel = nullptr;
};

enum class ReachStatus {
  Proved,        // fixpoint reached, no target state reachable
  BadReachable,  // some target state reached at step `steps`
  ResourceOut,   // time / node / step budget exhausted
};
// The canonical spelling lives in core/status.hpp: to_string(ReachStatus).

struct ReachResult {
  ReachStatus status = ReachStatus::ResourceOut;
  /// Onion rings: rings[i] = states first reached at exactly step i
  /// (rings[0] = initial set). Every state in rings[i] (i>0) has a
  /// predecessor in rings[i-1], which is what backward trace extraction
  /// relies on. On BadReachable the last ring intersects `bad`.
  std::vector<Bdd> rings;
  /// Union of all rings (the fixpoint when status == Proved).
  Bdd reached;
  size_t steps = 0;
  double seconds = 0.0;
};

/// BFS forward fixpoint from `init`, stopping early if `bad` is hit.
ReachResult forward_reach(ImageComputer& img, const Bdd& init, const Bdd& bad,
                          const ReachOptions& opt = {});

}  // namespace rfn
