#include "mc/approx_reach.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace rfn {

const char* approx_status_name(ApproxStatus s) {
  switch (s) {
    case ApproxStatus::Proved: return "proved";
    case ApproxStatus::Inconclusive: return "inconclusive";
    case ApproxStatus::ResourceOut: return "resource-out";
  }
  return "?";
}

namespace {

struct Block {
  std::vector<GateId> regs;
  std::vector<BddVar> state_vars;
  std::vector<BddVar> next_vars;
  std::vector<Bdd> clusters;  // T_b split into manageable conjuncts
};

}  // namespace

ApproxReachResult approx_forward_reach(Encoder& enc, const Bdd& init, const Bdd& bad,
                                       const ApproxReachOptions& opt) {
  BddMgr& mgr = enc.mgr();
  const Netlist& n = enc.netlist();
  const Deadline deadline(opt.time_limit_s);
  ApproxReachResult res;
  RFN_CHECK(opt.block_size > opt.overlap, "block_size must exceed overlap");

  const size_t saved_budget = mgr.node_budget();
  mgr.set_node_budget(opt.max_live_nodes);
  mgr.set_deadline(&deadline);
  auto restore = [&]() {
    mgr.set_deadline(nullptr);
    mgr.set_node_budget(saved_budget);
  };

  // Overlapping sliding-window blocks over the register list.
  const std::vector<GateId>& regs = n.regs();
  const size_t stride = opt.block_size - opt.overlap;
  std::vector<Block> blocks;
  for (size_t start = 0; start < regs.size(); start += stride) {
    Block b;
    for (size_t i = start; i < std::min(start + opt.block_size, regs.size()); ++i) {
      b.regs.push_back(regs[i]);
      b.state_vars.push_back(enc.state_var(regs[i]));
      b.next_vars.push_back(enc.next_var(regs[i]));
    }
    blocks.push_back(std::move(b));
    if (start + opt.block_size >= regs.size()) break;
  }
  res.blocks = blocks.size();

  // Per-block transition clusters.
  for (Block& b : blocks) {
    Bdd current = mgr.bdd_true();
    size_t count = 0;
    for (GateId r : b.regs) {
      const Bdd fn = enc.next_fn(r);
      const Bdd nv = mgr.var(enc.next_var(r));
      current &= !(nv ^ fn);
      if (current.is_null()) {
        restore();
        return res;  // ResourceOut
      }
      if (++count >= 8 || mgr.node_count(current) > 2000) {
        b.clusters.push_back(current);
        current = mgr.bdd_true();
        count = 0;
      }
    }
    if (!current.is_true()) b.clusters.push_back(current);
  }

  // Initial per-block projections of the initial set.
  std::vector<Bdd> R(blocks.size());
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    std::vector<BddVar> others;
    for (BddVar v : enc.state_vars())
      if (std::find(blocks[bi].state_vars.begin(), blocks[bi].state_vars.end(), v) ==
          blocks[bi].state_vars.end())
        others.push_back(v);
    R[bi] = mgr.exists(init, others);
    if (R[bi].is_null()) {
      restore();
      return res;
    }
  }

  // Rename map: next(B) -> state(B), identity elsewhere.
  std::vector<BddVar> rename_map(mgr.num_vars());
  for (BddVar v = 0; v < mgr.num_vars(); ++v) rename_map[v] = v;
  for (GateId r : n.regs()) rename_map[enc.next_var(r)] = enc.state_var(r);

  // Machine-by-machine rounds.
  bool changed = true;
  while (changed && res.rounds < opt.max_rounds) {
    if (deadline.expired()) {
      restore();
      return res;
    }
    changed = false;
    ++res.rounds;
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
      const Block& b = blocks[bi];
      // Operand sequence: every block's current set, then T_b's clusters;
      // each state/input variable is quantified at its last occurrence.
      std::vector<const Bdd*> operands;
      for (const Bdd& r : R) operands.push_back(&r);
      for (const Bdd& c : b.clusters) operands.push_back(&c);

      std::vector<int> last_use(mgr.num_vars(), -1);
      for (size_t oi = 0; oi < operands.size(); ++oi)
        for (BddVar v : mgr.support(*operands[oi]))
          if (enc.is_state_var(v) || enc.is_input_var(v))
            last_use[v] = static_cast<int>(oi);

      Bdd acc = mgr.bdd_true();
      for (size_t oi = 0; oi < operands.size(); ++oi) {
        std::vector<BddVar> now;
        for (BddVar v = 0; v < mgr.num_vars(); ++v)
          if (last_use[v] == static_cast<int>(oi)) now.push_back(v);
        acc = mgr.and_exists(acc, *operands[oi], now);
        if (acc.is_null()) {
          restore();
          return res;
        }
      }
      const Bdd img = mgr.rename(acc, rename_map);
      const Bdd grown = R[bi] | img;
      if (grown.is_null()) {
        restore();
        return res;
      }
      if (!(grown == R[bi])) {
        R[bi] = grown;
        changed = true;
      }
    }
    RFN_DEBUG("approx round %zu: mgr=%zu nodes", res.rounds, mgr.live_nodes());
  }
  if (changed) {  // max_rounds exhausted before the fixpoint
    restore();
    return res;
  }

  // Verdict: conjoin block sets against bad with early exit.
  Bdd hit = bad;
  for (const Bdd& r : R) {
    hit &= r;
    if (hit.is_null()) {
      restore();
      return res;
    }
    if (hit.is_false()) break;
  }
  res.block_sets = std::move(R);
  res.status = hit.is_false() ? ApproxStatus::Proved : ApproxStatus::Inconclusive;
  res.seconds = deadline.elapsed_seconds();
  restore();
  return res;
}

}  // namespace rfn
