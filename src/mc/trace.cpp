#include "mc/trace.hpp"

namespace rfn {

Trace extract_trace_bdd(ImageComputer& img, const ReachResult& reach, const Bdd& bad) {
  Encoder& enc = img.encoder();
  BddMgr& mgr = enc.mgr();
  RFN_CHECK(reach.status == ReachStatus::BadReachable, "no abstract error trace");

  // Find the earliest ring that hits the target set.
  size_t k = 0;
  while (k < reach.rings.size() && !reach.rings[k].intersects(bad)) ++k;
  RFN_CHECK(k < reach.rings.size(), "rings do not intersect bad");

  Trace trace;
  trace.steps.resize(k + 1);

  // Fattest cube in the intersection at cycle k (paper: "least number of
  // assignments").
  Bdd target_set = reach.rings[k] & bad;
  std::vector<BddLit> lits = mgr.shortest_cube(target_set);
  {
    Cube state, inputs;
    std::vector<BddLit> other;
    enc.split_lits(lits, state, inputs, other);
    RFN_CHECK(other.empty(), "target cube mentions non-state vars");
    RFN_CHECK(inputs.empty(), "target cube mentions inputs");
    trace.steps[k].state = state;
  }

  // Walk backward: at each step intersect the pre-image (with inputs kept)
  // with the previous ring and pick a fat cube.
  Cube next_state = trace.steps[k].state;
  for (size_t i = k; i-- > 0;) {
    const Bdd target_cube = enc.cube_bdd(next_state);
    const Bdd pre = img.pre_image_with_inputs(target_cube);
    const Bdd step_set = pre & reach.rings[i];
    RFN_CHECK(!step_set.is_false(), "trace extraction dead-ends at step %zu", i);
    lits = mgr.shortest_cube(step_set);
    Cube state, inputs;
    std::vector<BddLit> other;
    enc.split_lits(lits, state, inputs, other);
    RFN_CHECK(other.empty(), "pre-image cube mentions unknown vars");
    trace.steps[i].state = state;
    trace.steps[i].inputs = inputs;
    next_state = state;
  }
  return trace;
}

}  // namespace rfn
