#pragma once
// Pure-BDD error-trace extraction — the "standard method" of paper Section
// 2.2 that pre-images directly on the abstract model. Works when the model
// has few primary inputs; the hybrid engine (core/hybrid_trace.hpp) replaces
// it when it does not. Kept as a baseline for the ablation bench.

#include "mc/reach.hpp"

namespace rfn {

/// Extracts an error trace from the onion rings of a BadReachable
/// reachability result: walks fattest cubes backward through
/// pre_image_with_inputs. The returned trace's state/input cubes are over
/// the encoder's netlist signals; the final state satisfies `bad`.
Trace extract_trace_bdd(ImageComputer& img, const ReachResult& reach, const Bdd& bad);

}  // namespace rfn
