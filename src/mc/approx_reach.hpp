#pragma once
// Approximate forward reachability by overlapping register partitions.
//
// Implements the paper's first future-work direction ("to prove the
// property on abstract models containing hundreds of registers, we plan to
// use the overlapping partition technique from [5][7]" — Cho et al.'s
// machine-by-machine approximate traversal / Govindaraju-Dill's overlapping
// projections). Registers are grouped into overlapping blocks; each block
// keeps an over-approximate reachable set over its own variables, and
// blocks are traversed round-robin, each constrained by the others' current
// sets, until a global fixpoint. The conjunction of the per-block sets
// over-approximates the exact reachable set, so
//   (/\_i R_i) intersect bad == empty  ==>  the property holds.
// The converse does not hold: an intersection is inconclusive.

#include <vector>

#include "mc/encoder.hpp"
#include "mc/reach.hpp"

namespace rfn {

struct ApproxReachOptions {
  /// Registers per block and how many of them each neighbor block shares.
  size_t block_size = 12;
  size_t overlap = 4;
  /// Give up after this many full rounds over all blocks.
  size_t max_rounds = 64;
  double time_limit_s = -1.0;
  size_t max_live_nodes = 4u << 20;
};

enum class ApproxStatus {
  Proved,        // over-approximation avoids all bad states
  Inconclusive,  // over-approximation touches bad: no verdict
  ResourceOut,
};

const char* approx_status_name(ApproxStatus s);

struct ApproxReachResult {
  ApproxStatus status = ApproxStatus::ResourceOut;
  /// Per-block over-approximations (each over its block's state vars).
  std::vector<Bdd> block_sets;
  size_t rounds = 0;
  size_t blocks = 0;
  double seconds = 0.0;
};

/// Runs the overlapping-partition traversal on `enc`'s netlist from `init`;
/// checks the product against `bad` (both over state variables).
ApproxReachResult approx_forward_reach(Encoder& enc, const Bdd& init, const Bdd& bad,
                                       const ApproxReachOptions& opt = {});

}  // namespace rfn
