#include "mc/image.hpp"

#include <algorithm>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfn {

ImageComputer::ImageComputer(Encoder& enc, const ImageOptions& opt) : enc_(&enc) {
  BddMgr& mgr = enc.mgr();
  const Netlist& n = enc.netlist();

  // Cluster next-state constraints in register order.
  Bdd current = mgr.bdd_true();
  std::vector<BddVar> current_next;
  auto flush = [&]() {
    if (current_next.empty()) return;
    partitions_.push_back(current);
    part_next_.push_back(current_next);
    current = mgr.bdd_true();
    current_next.clear();
  };
  for (GateId r : n.regs()) {
    const Bdd fn = enc.next_fn(r);
    const Bdd nv = mgr.var(enc.next_var(r));
    current &= !(nv ^ fn);  // n_r == f_r
    if (current.is_null()) {
      // Resource guard / node budget hit while building: give up cleanly.
      aborted_ = true;
      partitions_.clear();
      part_next_.clear();
      break;
    }
    current_next.push_back(enc.next_var(r));
    if (current_next.size() >= opt.cluster_max_regs ||
        mgr.node_count(current) > opt.cluster_node_limit)
      flush();
  }
  if (!aborted_) flush();

  // Variable maps for next<->state renaming.
  rename_next_to_state_.resize(mgr.num_vars());
  rename_state_to_next_.resize(mgr.num_vars());
  for (BddVar v = 0; v < mgr.num_vars(); ++v) {
    rename_next_to_state_[v] = v;
    rename_state_to_next_[v] = v;
  }
  for (GateId r : n.regs()) {
    rename_next_to_state_[enc.next_var(r)] = enc.state_var(r);
    rename_state_to_next_[enc.state_var(r)] = enc.next_var(r);
  }
}

Bdd ImageComputer::post_image(const Bdd& states) {
  if (aborted_ || states.is_null()) return Bdd();
  Span span("bdd.image");
  // Resolved per call, not cached in a static: a static would pin whichever
  // registry the first call's thread had bound, leaking one request's
  // counters into another under rfn_serve's per-request MetricsScope. The
  // find is one mutex + map lookup per image step — noise next to the step.
  MetricsRegistry::global().counter("mc.post_images").add(1);
  BddMgr& mgr = enc_->mgr();
  // Early-quantification schedule: each state/input variable is eliminated
  // at the last partition whose support mentions it.
  const size_t np = partitions_.size();
  std::vector<int> last_use(mgr.num_vars(), -1);
  for (size_t i = 0; i < np; ++i) {
    for (BddVar v : mgr.support(partitions_[i])) {
      if (enc_->is_state_var(v) || enc_->is_input_var(v))
        last_use[v] = static_cast<int>(i);
    }
  }
  // Variables never read by any partition are dropped from the source set
  // immediately.
  std::vector<BddVar> dead;
  for (BddVar v : mgr.support(states))
    if (last_use[v] < 0) dead.push_back(v);
  Bdd acc = dead.empty() ? states : mgr.exists(states, dead);

  for (size_t i = 0; i < np; ++i) {
    std::vector<BddVar> now;
    for (BddVar v = 0; v < mgr.num_vars(); ++v)
      if (last_use[v] == static_cast<int>(i)) now.push_back(v);
    acc = mgr.and_exists(acc, partitions_[i], now);
  }
  return mgr.rename(acc, rename_next_to_state_);
}

Bdd ImageComputer::pre_image_with_inputs(const Bdd& target) {
  if (aborted_ || target.is_null()) return Bdd();
  Span span("bdd.preimage");
  // Per call, not a static cache — see post_image.
  MetricsRegistry::global().counter("mc.pre_images").add(1);
  BddMgr& mgr = enc_->mgr();
  Bdd acc = mgr.rename(target, rename_state_to_next_);
  // Each partition's next vars occur only in that partition (and in acc),
  // so they can be eliminated as soon as the partition is conjoined.
  for (size_t i = 0; i < partitions_.size(); ++i)
    acc = mgr.and_exists(acc, partitions_[i], part_next_[i]);
  return acc;
}

Bdd ImageComputer::pre_image(const Bdd& target) {
  return enc_->mgr().exists(pre_image_with_inputs(target), enc_->input_vars());
}

}  // namespace rfn
