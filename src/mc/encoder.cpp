#include "mc/encoder.hpp"

#include "netlist/analysis.hpp"

namespace rfn {

Encoder::Encoder(BddMgr& mgr, const Netlist& n) : mgr_(&mgr), n_(&n) {
  for (GateId r : n.regs()) {
    state_var_.emplace(r, mgr.new_var());
    next_var_.emplace(r, mgr.new_var());
  }
  for (GateId i : n.inputs()) input_var_.emplace(i, mgr.new_var());
  index_vars();
}

Encoder::Encoder(BddMgr& mgr, const Subcircuit& sub, const Encoder& parent)
    : mgr_(&mgr), n_(&sub.net) {
  RFN_CHECK(&parent.mgr() == &mgr, "parent encoder uses a different manager");
  for (GateId r : sub.net.regs()) {
    const GateId old = sub.to_old(r);
    state_var_.emplace(r, parent.state_var(old));
    next_var_.emplace(r, parent.next_var(old));
  }
  for (GateId i : sub.net.inputs()) {
    const GateId old = sub.to_old(i);
    // The original signal may be a real primary input of the parent (share
    // its variable) or an internal signal / cut register (fresh variable).
    const auto it = parent.input_var_.find(old);
    if (it != parent.input_var_.end()) {
      input_var_.emplace(i, it->second);
    } else if (parent.state_var_.count(old) > 0) {
      // A register of the parent that became a pseudo-input here: share the
      // parent's *state* variable so cubes line up across models.
      input_var_.emplace(i, parent.state_var(old));
    } else {
      input_var_.emplace(i, mgr.new_var());
    }
  }
  index_vars();
}

void Encoder::index_vars() {
  var_kind_.assign(mgr_->num_vars(), VarKind::None);
  var_gate_.assign(mgr_->num_vars(), kNullGate);
  for (GateId r : n_->regs()) {
    const BddVar s = state_var_.at(r), x = next_var_.at(r);
    var_kind_[s] = VarKind::State;
    var_gate_[s] = r;
    var_kind_[x] = VarKind::Next;
    var_gate_[x] = r;
    state_vars_flat_.push_back(s);
    next_vars_flat_.push_back(x);
  }
  for (GateId i : n_->inputs()) {
    const BddVar v = input_var_.at(i);
    // A shared parent-state variable keeps its State kind in the parent; in
    // this encoder it acts as an input.
    var_kind_[v] = VarKind::Input;
    var_gate_[v] = i;
    input_vars_flat_.push_back(v);
  }
  signal_memo_.assign(n_->size(), Bdd());
  signal_ready_.assign(n_->size(), 0);
}

BddVar Encoder::state_var(GateId reg) const {
  const auto it = state_var_.find(reg);
  RFN_CHECK(it != state_var_.end(), "no state var for gate %u", reg);
  return it->second;
}

BddVar Encoder::next_var(GateId reg) const {
  const auto it = next_var_.find(reg);
  RFN_CHECK(it != next_var_.end(), "no next var for gate %u", reg);
  return it->second;
}

BddVar Encoder::input_var(GateId input) const {
  const auto it = input_var_.find(input);
  RFN_CHECK(it != input_var_.end(), "no input var for gate %u", input);
  return it->second;
}

GateId Encoder::reg_of_var(BddVar v) const {
  if (v >= var_kind_.size()) return kNullGate;
  return (var_kind_[v] == VarKind::State || var_kind_[v] == VarKind::Next)
             ? var_gate_[v]
             : kNullGate;
}

GateId Encoder::input_of_var(BddVar v) const {
  if (v >= var_kind_.size()) return kNullGate;
  return var_kind_[v] == VarKind::Input ? var_gate_[v] : kNullGate;
}

bool Encoder::is_state_var(BddVar v) const {
  return v < var_kind_.size() && var_kind_[v] == VarKind::State;
}
bool Encoder::is_next_var(BddVar v) const {
  return v < var_kind_.size() && var_kind_[v] == VarKind::Next;
}
bool Encoder::is_input_var(BddVar v) const {
  return v < var_kind_.size() && var_kind_[v] == VarKind::Input;
}

void Encoder::set_resource_guard(const Deadline* deadline, size_t max_live_nodes) {
  guard_deadline_ = deadline;
  guard_max_nodes_ = max_live_nodes;
}

Bdd Encoder::signal_fn(GateId g) {
  if (guard_tripped_) return Bdd();
  if (signal_ready_[g]) return signal_memo_[g];
  // Iterative bottom-up evaluation over the needed cone (avoids deep
  // recursion on long gate chains).
  std::vector<GateId> stack{g};
  size_t guard_tick = 0;
  while (!stack.empty()) {
    if ((++guard_tick & 0xFF) == 0 &&
        ((guard_deadline_ && guard_deadline_->expired()) ||
         (guard_max_nodes_ && mgr_->live_nodes() > guard_max_nodes_))) {
      guard_tripped_ = true;
      return Bdd();
    }
    const GateId cur = stack.back();
    if (signal_ready_[cur]) {
      stack.pop_back();
      continue;
    }
    bool deps_ready = true;
    if (n_->is_comb(cur)) {
      for (GateId f : n_->fanins(cur)) {
        if (!signal_ready_[f]) {
          if (deps_ready) deps_ready = false;
          stack.push_back(f);
        }
      }
    }
    if (!deps_ready) continue;
    stack.pop_back();
    Bdd r;
    switch (n_->type(cur)) {
      case GateType::Input: r = mgr_->var(input_var(cur)); break;
      case GateType::Reg: r = mgr_->var(state_var(cur)); break;
      case GateType::Const0: r = mgr_->bdd_false(); break;
      case GateType::Const1: r = mgr_->bdd_true(); break;
      case GateType::Buf: r = signal_memo_[n_->fanins(cur)[0]]; break;
      case GateType::Not: r = !signal_memo_[n_->fanins(cur)[0]]; break;
      case GateType::And:
      case GateType::Nand: {
        r = mgr_->bdd_true();
        for (GateId f : n_->fanins(cur)) r &= signal_memo_[f];
        if (n_->type(cur) == GateType::Nand) r = !r;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        r = mgr_->bdd_false();
        for (GateId f : n_->fanins(cur)) r |= signal_memo_[f];
        if (n_->type(cur) == GateType::Nor) r = !r;
        break;
      }
      case GateType::Xor:
        r = signal_memo_[n_->fanins(cur)[0]] ^ signal_memo_[n_->fanins(cur)[1]];
        break;
      case GateType::Xnor:
        r = !(signal_memo_[n_->fanins(cur)[0]] ^ signal_memo_[n_->fanins(cur)[1]]);
        break;
      case GateType::Mux:
        r = mgr_->ite(signal_memo_[n_->fanins(cur)[0]],
                      signal_memo_[n_->fanins(cur)[2]],
                      signal_memo_[n_->fanins(cur)[1]]);
        break;
    }
    signal_memo_[cur] = std::move(r);
    signal_ready_[cur] = 1;
  }
  return signal_memo_[g];
}

Bdd Encoder::initial_states() {
  std::vector<BddLit> lits;
  for (GateId r : n_->regs()) {
    const Tri init = n_->reg_init(r);
    if (init != Tri::X) lits.push_back({state_var(r), init == Tri::T});
  }
  return mgr_->cube(lits);
}

Bdd Encoder::cube_bdd(const Cube& c) {
  std::vector<BddLit> lits;
  lits.reserve(c.size());
  for (const Literal& lit : c) {
    if (n_->is_reg(lit.signal))
      lits.push_back({state_var(lit.signal), lit.value});
    else if (n_->is_input(lit.signal))
      lits.push_back({input_var(lit.signal), lit.value});
    else
      fatal("cube_bdd literal on internal signal; use constraint_bdd");
  }
  return mgr_->cube(lits);
}

Bdd Encoder::constraint_bdd(const Cube& c) {
  Bdd acc = mgr_->bdd_true();
  for (const Literal& lit : c) {
    const Bdd fn = signal_fn(lit.signal);
    acc &= lit.value ? fn : !fn;
  }
  return acc;
}

Cube Encoder::lits_to_cube(const std::vector<BddLit>& lits) const {
  Cube c;
  c.reserve(lits.size());
  for (const BddLit& l : lits) {
    GateId g = kNullGate;
    if (is_state_var(l.var))
      g = var_gate_[l.var];
    else if (is_input_var(l.var))
      g = var_gate_[l.var];
    RFN_CHECK(g != kNullGate, "literal on unknown/next var %u", l.var);
    c.push_back({g, l.positive});
  }
  return c;
}

void Encoder::split_lits(const std::vector<BddLit>& lits, Cube& state, Cube& inputs,
                         std::vector<BddLit>& other) const {
  for (const BddLit& l : lits) {
    if (is_state_var(l.var))
      state.push_back({var_gate_[l.var], l.positive});
    else if (is_input_var(l.var))
      inputs.push_back({var_gate_[l.var], l.positive});
    else
      other.push_back(l);
  }
}

}  // namespace rfn
