#pragma once
// Netlist-to-BDD encoder: variable management and symbolic signal functions.
//
// Every register gets a (current-state, next-state) variable pair, allocated
// adjacently so related variables stay close in the initial order; every
// primary input gets one variable. Signal functions are built bottom-up over
// the combinational logic and memoized.
//
// A second constructor builds an encoder for a subcircuit (e.g. the min-cut
// design MC) that *shares* the variables of a parent encoder through the
// subcircuit's old-id mapping: MC's registers reuse N's state/next vars and
// MC's cut inputs get fresh variables. Sharing is what lets the hybrid
// engine intersect MC pre-images with reachable-state rings computed on N.

#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"
#include "netlist/subcircuit.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

class Encoder {
 public:
  /// Fresh encoding of `n` in `mgr`.
  Encoder(BddMgr& mgr, const Netlist& n);

  /// Encoding of subcircuit `sub.net` (a subcircuit of the parent encoder's
  /// netlist) sharing the parent's variables: registers map to the parent's
  /// state/next pairs; inputs whose original signal has a parent input
  /// variable reuse it; other inputs (internal cut signals) get fresh vars.
  Encoder(BddMgr& mgr, const Subcircuit& sub, const Encoder& parent);

  BddMgr& mgr() const { return *mgr_; }
  const Netlist& netlist() const { return *n_; }

  BddVar state_var(GateId reg) const;
  BddVar next_var(GateId reg) const;
  BddVar input_var(GateId input) const;
  /// All current-state variables (netlist register order).
  const std::vector<BddVar>& state_vars() const { return state_vars_flat_; }
  const std::vector<BddVar>& next_vars() const { return next_vars_flat_; }
  const std::vector<BddVar>& input_vars() const { return input_vars_flat_; }

  /// Register whose state (or next) variable is `v`; kNullGate otherwise.
  GateId reg_of_var(BddVar v) const;
  /// Input whose variable is `v`; kNullGate otherwise.
  GateId input_of_var(BddVar v) const;
  bool is_state_var(BddVar v) const;
  bool is_next_var(BddVar v) const;
  bool is_input_var(BddVar v) const;

  /// Installs a resource guard: when the deadline expires or the manager's
  /// live node count crosses the cap, signal_fn starts returning null BDDs
  /// instead of building further. Callers built for big designs (plain MC,
  /// image construction) treat a null as "resources exceeded" — the paper's
  /// expected outcome for plain symbolic MC on real-world designs.
  void set_resource_guard(const Deadline* deadline, size_t max_live_nodes);
  bool guard_tripped() const { return guard_tripped_; }

  /// Symbolic function of a signal over state+input variables (memoized).
  /// Null when the resource guard has tripped.
  Bdd signal_fn(GateId g);
  /// Next-state function of a register.
  Bdd next_fn(GateId reg) { return signal_fn(netlist().reg_data(reg)); }

  /// Conjunction of initial register values (X-init registers unconstrained).
  Bdd initial_states();

  /// BDD of a cube over registers (state vars) and inputs (input vars).
  Bdd cube_bdd(const Cube& c);
  /// BDD of a cube over arbitrary signals: conjunction of signal_fn == value.
  Bdd constraint_bdd(const Cube& c);

  /// Translates BDD literals back into a netlist cube. Literals on next or
  /// unknown variables are rejected (check) unless `drop_unknown`.
  Cube lits_to_cube(const std::vector<BddLit>& lits) const;
  /// Splits BDD literals into (state cube, input cube); literals on other
  /// variables are returned in `other`.
  void split_lits(const std::vector<BddLit>& lits, Cube& state, Cube& inputs,
                  std::vector<BddLit>& other) const;

 private:
  void index_vars();

  BddMgr* mgr_;
  const Netlist* n_;
  std::unordered_map<GateId, BddVar> state_var_;
  std::unordered_map<GateId, BddVar> next_var_;
  std::unordered_map<GateId, BddVar> input_var_;
  std::vector<BddVar> state_vars_flat_, next_vars_flat_, input_vars_flat_;
  enum class VarKind : uint8_t { None, State, Next, Input };
  std::vector<VarKind> var_kind_;      // indexed by BddVar
  std::vector<GateId> var_gate_;       // indexed by BddVar
  std::vector<Bdd> signal_memo_;       // indexed by GateId
  std::vector<uint8_t> signal_ready_;  // indexed by GateId
  const Deadline* guard_deadline_ = nullptr;
  size_t guard_max_nodes_ = 0;  // 0 = unlimited
  bool guard_tripped_ = false;
};

}  // namespace rfn
