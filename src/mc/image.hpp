#pragma once
// Symbolic post-image / pre-image computation with partitioned transition
// functions and early quantification.
//
// The transition relation is never built monolithically: next-state
// constraints (n_r == f_r(s, x)) are clustered into partitions, and image
// computation interleaves conjunction with existential quantification,
// eliminating each variable at the last partition that mentions it. This is
// what makes post-image tolerant of abstract models with thousands of
// primary inputs (paper Section 2.2: "most of the primary inputs will be
// quantified out early").

#include <vector>

#include "mc/encoder.hpp"

namespace rfn {

struct ImageOptions {
  /// Soft cap on the BDD size of one partition during clustering.
  size_t cluster_node_limit = 2000;
  /// Hard cap on registers per partition.
  size_t cluster_max_regs = 16;
};

class ImageComputer {
 public:
  explicit ImageComputer(Encoder& enc, const ImageOptions& opt = {});

  Encoder& encoder() const { return *enc_; }
  size_t num_partitions() const { return partitions_.size(); }

  /// True when construction ran out of resources (encoder guard tripped or
  /// the manager's node budget was exhausted while building the transition
  /// partitions). Image operations on an aborted computer return null.
  bool aborted() const { return aborted_; }

  /// States reachable in exactly one step from `states` (over state vars).
  Bdd post_image(const Bdd& states);

  /// (state, input) pairs whose successor lies in `target` (target over
  /// state vars; result over state+input vars). This is the form the trace
  /// engines need: the input literals become part of the error trace.
  Bdd pre_image_with_inputs(const Bdd& target);

  /// States with some input leading into `target` (inputs quantified).
  Bdd pre_image(const Bdd& target);

 private:
  Encoder* enc_;
  bool aborted_ = false;
  std::vector<Bdd> partitions_;            // T_i(s, x, n_i)
  std::vector<std::vector<BddVar>> part_next_;  // next vars constrained by T_i
  std::vector<BddVar> rename_next_to_state_;    // var map
  std::vector<BddVar> rename_state_to_next_;
};

}  // namespace rfn
