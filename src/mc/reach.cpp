#include "mc/reach.hpp"

#include "core/status.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfn {

namespace {

/// Flushes one fixpoint's outcome into the registry ("mc.reach.*").
void record_reach_metrics(const ReachResult& res) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.counter("mc.reach.calls").add(1);
  m.counter("mc.reach.image_steps").add(res.steps);
  m.timer("mc.reach").record(res.seconds);
  switch (res.status) {
    case ReachStatus::Proved: m.counter("mc.reach.proved").add(1); break;
    case ReachStatus::BadReachable: m.counter("mc.reach.bad_reachable").add(1); break;
    case ReachStatus::ResourceOut: m.counter("mc.reach.resource_out").add(1); break;
  }
}

}  // namespace

namespace {

ReachResult forward_reach_impl(ImageComputer& img, const Bdd& init, const Bdd& bad,
                               const ReachOptions& opt) {
  BddMgr& mgr = img.encoder().mgr();
  const Deadline deadline(opt.time_limit_s);
  ReachResult res;
  if (img.aborted() || init.is_null() || bad.is_null()) {
    res.status = ReachStatus::ResourceOut;
    return res;
  }
  res.rings.push_back(init);
  res.reached = init;

  if (init.intersects(bad)) {
    res.status = ReachStatus::BadReachable;
    res.seconds = deadline.elapsed_seconds();
    return res;
  }

  Bdd frontier = init;
  while (res.steps < opt.max_steps) {
    if (deadline.expired() || should_stop(opt.cancel) ||
        mgr.live_nodes() > opt.max_live_nodes) {
      res.status = ReachStatus::ResourceOut;
      res.seconds = deadline.elapsed_seconds();
      return res;
    }
    const Bdd img_states = img.post_image(frontier);
    const Bdd fresh = img_states.diff(res.reached);
    if (fresh.is_null()) {  // node budget exhausted mid-step
      res.status = ReachStatus::ResourceOut;
      res.seconds = deadline.elapsed_seconds();
      return res;
    }
    ++res.steps;
    if (fresh.is_false()) {
      res.status = ReachStatus::Proved;
      res.seconds = deadline.elapsed_seconds();
      return res;
    }
    res.reached |= fresh;
    res.rings.push_back(fresh);
    RFN_DEBUG("reach step %zu: reached nodes=%zu mgr=%zu", res.steps,
              mgr.node_count(res.reached), mgr.live_nodes());
    if (fresh.intersects(bad)) {
      res.status = ReachStatus::BadReachable;
      res.seconds = deadline.elapsed_seconds();
      return res;
    }
    frontier = fresh;
  }
  res.status = ReachStatus::ResourceOut;
  res.seconds = deadline.elapsed_seconds();
  return res;
}

}  // namespace

ReachResult forward_reach(ImageComputer& img, const Bdd& init, const Bdd& bad,
                          const ReachOptions& opt) {
  Span span("mc.reach");
  ReachResult res = forward_reach_impl(img, init, bad, opt);
  span.annotate("status", to_string(res.status));
  record_reach_metrics(res);
  return res;
}

}  // namespace rfn
