#pragma once
// Tseitin CNF encoding of a time-frame-expanded netlist — the single-instance
// incremental formulation (Eén/Mishchenko/Amla) behind the SAT BMC engine.
//
// One encoder owns one growing unrolling of one design inside one Solver.
// It extends lazily along two axes, never re-encoding what already exists:
//
//   * depth: extend_to(k) appends frames k'+1..k. Every frame materializes
//     the same signal set — atpg/unroll's stable_frame_cone of the roots —
//     so appending a frame never disturbs earlier ones (the property
//     unroll_cone's shrinking per-frame cones cannot give an incremental
//     consumer);
//   * width: add_root(g) widens the cone to cover a new root's COI and
//     back-fills the missing variables/clauses in every existing frame. The
//     session layer uses this to keep one encoder alive while a batch run
//     appends disjunction roots to its design.
//
// Register semantics carry an *enable assumption literal* per register r:
//
//   enable(r) -> (r@1 = init)           initial-state constraint
//   enable(r) -> (r@f = data(r)@f-1)    transition constraint, f > 1
//
// Nothing else constrains r@f, so solving without assuming enable(r) leaves
// r free at every frame — exactly the pseudo-input semantics a register gets
// when excluded from an abstract model (netlist/subcircuit.hpp). Excluding a
// register from the abstraction is therefore one assumption flip, and the
// final_conflict() of an UNSAT answer names the registers the bounded
// refutation needed. X-initialized registers get no frame-1 constraint (free
// either way, matching unroll.cpp's fresh-input treatment).
//
// The property side uses per-(root, frame) *trigger* assumption literals:
// trigger(g, f) -> g@f. Assuming the trigger asks "can g rise at frame f";
// leaving it out vacuously satisfies the clause, so one clause set serves
// every depth of an iterative deepening.

#include <cstdint>
#include <map>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace rfn::sat {

class BmcEncoder {
 public:
  /// `m` and `s` must outlive the encoder. The netlist may grow behind the
  /// encoder's back (append_disjunction on a session's augmented design);
  /// existing GateIds stay valid and new gates are picked up by the next
  /// add_root() that needs them.
  BmcEncoder(const Netlist& m, Solver& s);

  /// Ensures `root`'s COI is part of the stable cone, back-filling every
  /// existing frame. No-op when already covered.
  void add_root(GateId root);

  /// Ensures frames 1..k are encoded. No-op when k <= frames().
  void extend_to(size_t frames);
  size_t frames() const { return frames_; }

  /// The solver literal of signal `g` at 1-based frame `f`. The signal must
  /// be materialized (in some added root's cone, frame encoded).
  Lit lit(size_t frame, GateId g) const;
  bool materialized(size_t frame, GateId g) const;

  /// Enable assumption literal of register `r` (created when the register
  /// enters the cone; kUndefLit for registers outside it).
  Lit enable(GateId r) const;
  /// Trigger assumption literal asserting `root` is 1 at frame `f` (creates
  /// it on first use; `root` must be materialized at `f`).
  Lit trigger(GateId root, size_t frame);

  /// Registers inside the stable cone, sorted by GateId.
  const std::vector<GateId>& cone_registers() const { return cone_regs_; }
  bool in_cone(GateId g) const { return g < cone_.size() && cone_[g]; }

  /// Maps an enable literal from a final conflict back to its register;
  /// kNullGate when the literal is not an enable.
  GateId register_of_enable(Lit l) const;

  /// Decodes the solver's model into a `depth`-cycle error trace over the
  /// design's signals. Registers in `included` (sorted) land in the state
  /// cubes; cone registers outside it — free pseudo-inputs of the
  /// abstraction — and primary inputs land in the input cubes, the same
  /// placement Subcircuit::trace_to_old gives abstract traces, so
  /// refinement, concretization and certify_error_trace consume the result
  /// unchanged.
  Trace decode_trace(size_t depth, const std::vector<GateId>& included) const;

 private:
  void encode_frame_signals(size_t frame);
  Lit fresh();
  Lit const_lit(bool value);
  void add2(Lit a, Lit b) { s_->add_clause({a, b}); }
  void add3(Lit a, Lit b, Lit c) { s_->add_clause({a, b, c}); }
  /// out <-> AND(ins); negate literals to express OR/NAND/NOR.
  void add_and(Lit out, const std::vector<Lit>& ins);
  void add_xor(Lit out, Lit a, Lit b);

  const Netlist* m_;
  Solver* s_;
  std::vector<bool> cone_;             // stable materialization mask
  std::vector<GateId> order_;          // topo order filtered to the cone
  std::vector<GateId> roots_;
  std::vector<GateId> cone_regs_;      // sorted
  std::vector<Lit> enable_;            // per GateId; kUndefLit when absent
  std::vector<std::vector<Lit>> vars_; // vars_[f-1][g]
  std::map<std::pair<GateId, size_t>, Lit> triggers_;
  size_t frames_ = 0;
  Lit true_lit_ = kUndefLit;           // shared constant
};

}  // namespace rfn::sat
