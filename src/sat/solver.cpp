#include "sat/solver.hpp"

#include <algorithm>
#include <bit>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rfn::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
uint64_t luby(uint64_t i) {
  // Find the finite subsequence containing index i and its position in it.
  uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  phase_.push_back(0);  // default polarity false: BMC models are mostly zeros
  level_.push_back(0);
  reason_.push_back(kNullClause);
  activity_.push_back(0.0);
  heap_pos_.push_back(kNoHeapPos);
  seen_.push_back(0);
  model_.push_back(LBool::Undef);
  const size_t before = watches_.capacity();
  watches_.emplace_back();
  watches_.emplace_back();
  heap_track(before * sizeof(std::vector<Watch>),
             watches_.capacity() * sizeof(std::vector<Watch>));
  heap_insert(v);
  return v;
}

float Solver::clause_activity(ClauseRef c) const {
  return std::bit_cast<float>(arena_[c + 1]);
}

void Solver::set_clause_activity(ClauseRef c, float a) {
  arena_[c + 1] = std::bit_cast<uint32_t>(a);
}

Solver::ClauseRef Solver::alloc_clause(const std::vector<Lit>& lits, bool learnt) {
  const ClauseRef c = static_cast<ClauseRef>(arena_.size());
  const size_t before = arena_.capacity();
  arena_.push_back(static_cast<uint32_t>(lits.size()) << 2 | (learnt ? 2u : 0u));
  arena_.push_back(std::bit_cast<uint32_t>(0.0f));
  for (const Lit l : lits) arena_.push_back(l.x);
  heap_track(before * sizeof(uint32_t), arena_.capacity() * sizeof(uint32_t));
  return c;
}

size_t Solver::heap_bytes_recomputed() const {
  size_t bytes = arena_.capacity() * sizeof(uint32_t) +
                 watches_.capacity() * sizeof(std::vector<Watch>);
  for (const std::vector<Watch>& ws : watches_)
    bytes += ws.capacity() * sizeof(Watch);
  return bytes;
}

void Solver::watch_push(uint32_t lit_index, Watch w) {
  std::vector<Watch>& ws = watches_[lit_index];
  const size_t before = ws.capacity();
  ws.push_back(w);
  heap_track(before * sizeof(Watch), ws.capacity() * sizeof(Watch));
}

void Solver::attach_clause(ClauseRef c) {
  const Lit* lits = clause_lits(c);
  watch_push((~lits[0]).index(), {c, lits[1]});
  watch_push((~lits[1]).index(), {c, lits[0]});
}

void Solver::detach_clause(ClauseRef c) {
  const Lit* lits = clause_lits(c);
  for (const Lit w : {lits[0], lits[1]}) {
    auto& ws = watches_[(~w).index()];
    for (size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == c) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  RFN_CHECK(decision_level() == 0, "add_clause mid-search");
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.index() < b.index(); });
  // Simplify: drop duplicates and level-0-false literals; tautologies and
  // clauses with a level-0-true literal are already satisfied.
  std::vector<Lit> out;
  Lit prev = kUndefLit;
  for (const Lit l : lits) {
    RFN_CHECK(l.var() < num_vars(), "literal over unknown variable");
    if (l == prev) continue;
    if (prev != kUndefLit && l.var() == prev.var()) return true;  // l and ~l
    if (assign_value(l) == LBool::True) return true;
    if (assign_value(l) == LBool::False) continue;
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNullClause);
    if (propagate() != kNullClause) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const ClauseRef c = alloc_clause(out, /*learnt=*/false);
  clauses_.push_back(c);
  attach_clause(c);
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = l.var();
  RFN_CHECK(assigns_[v] == LBool::Undef, "enqueue of assigned variable");
  assigns_[v] = lbool_of(!l.neg());
  phase_[v] = l.neg() ? 0 : 1;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kNullClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; visit clauses watching ~p
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watch w = ws[i++];
      if (assign_value(w.blocker) == LBool::True) {
        ws[j++] = w;
        continue;
      }
      const ClauseRef c = w.cref;
      Lit* lits = clause_lits(c);
      const uint32_t size = clause_size(c);
      // Normalize: the false watched literal goes to slot 1.
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      if (assign_value(lits[0]) == LBool::True) {
        ws[j++] = {c, lits[0]};
        continue;
      }
      // Look for an unfalsified replacement watch.
      bool moved = false;
      for (uint32_t k = 2; k < size; ++k) {
        if (assign_value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watch_push((~lits[1]).index(), {c, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[j++] = {c, lits[0]};
      if (assign_value(lits[0]) == LBool::False) {
        confl = c;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      enqueue(lits[0], c);
    }
    ws.resize(j);
    if (confl != kNullClause) break;
  }
  return confl;
}

void Solver::cancel_until(uint32_t level) {
  if (decision_level() <= level) return;
  for (size_t i = trail_.size(); i-- > trail_lim_[level];) {
    const Var v = trail_[i].var();
    assigns_[v] = LBool::Undef;
    reason_[v] = kNullClause;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[level]);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt, uint32_t& bt_level) {
  learnt.clear();
  learnt.push_back(kUndefLit);  // slot for the asserting (1UIP) literal
  std::vector<Var> to_clear;
  uint32_t path_count = 0;
  Lit p = kUndefLit;
  size_t index = trail_.size();

  do {
    RFN_CHECK(confl != kNullClause, "conflict analysis lost the reason chain");
    if (clause_learnt(confl)) clause_bump(confl);
    const Lit* lits = clause_lits(confl);
    const uint32_t size = clause_size(confl);
    for (uint32_t k = (p == kUndefLit ? 0 : 1); k < size; ++k) {
      const Var v = lits[k].var();
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      to_clear.push_back(v);
      var_bump(v);
      if (level_[v] >= decision_level()) {
        ++path_count;
      } else {
        learnt.push_back(lits[k]);
      }
    }
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[index - 1];
    --index;
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  learnt[0] = ~p;

  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    // Second-highest decision level watches slot 1 (the backjump target).
    size_t max_i = 1;
    for (size_t k = 2; k < learnt.size(); ++k)
      if (level_[learnt[k].var()] > level_[learnt[max_i].var()]) max_i = k;
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
  for (const Var v : to_clear) seen_[v] = 0;
}

void Solver::analyze_final(Lit p, std::vector<Lit>& out) {
  // Expresses the falsification of assumption `p` as a subset of the
  // assumption literals: every decision reached by walking the implication
  // graph backward from ~p is, during the assumption prefix, an assumption.
  out.clear();
  out.push_back(p);
  if (decision_level() == 0) return;
  std::vector<Var> to_clear{p.var()};
  seen_[p.var()] = 1;
  for (size_t i = trail_.size(); i-- > trail_lim_[0];) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == kNullClause) {
      RFN_CHECK(level_[v] > 0, "level-0 decision on the trail");
      out.push_back(trail_[i]);
    } else {
      const Lit* lits = clause_lits(reason_[v]);
      const uint32_t size = clause_size(reason_[v]);
      for (uint32_t k = 1; k < size; ++k) {
        const Var u = lits[k].var();
        if (level_[u] > 0 && !seen_[u]) {
          seen_[u] = 1;
          to_clear.push_back(u);
        }
      }
    }
  }
  for (const Var v : to_clear) seen_[v] = 0;
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == LBool::Undef)
      return Lit::make(v, /*neg=*/phase_[v] == 0);
  }
  return kUndefLit;
}

void Solver::var_bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_update(v);
}

void Solver::clause_bump(ClauseRef c) {
  float a = clause_activity(c) + static_cast<float>(clause_inc_);
  if (a > 1e20f) {
    for (const ClauseRef lc : learnts_)
      if (!clause_deleted(lc)) set_clause_activity(lc, clause_activity(lc) * 1e-20f);
    clause_inc_ *= 1e-20;
    a = clause_activity(c) + static_cast<float>(clause_inc_);
  }
  set_clause_activity(c, a);
}

bool Solver::locked(ClauseRef c) const {
  const Lit first = clause_lits(c)[0];
  return reason_[first.var()] == c && assign_value(first) == LBool::True;
}

void Solver::reduce_db() {
  // Drop the low-activity half of the learnt clauses (locked ones stay: they
  // are reasons on the current trail). Arena holes are not reclaimed — see
  // the arena comment in the header.
  std::vector<ClauseRef> sorted = learnts_;
  std::sort(sorted.begin(), sorted.end(), [this](ClauseRef a, ClauseRef b) {
    return clause_activity(a) < clause_activity(b);
  });
  const size_t limit = sorted.size() / 2;
  std::vector<uint8_t> drop(sorted.size(), 0);
  size_t dropped = 0;
  for (size_t i = 0; i < limit; ++i) {
    const ClauseRef c = sorted[i];
    if (locked(c) || clause_size(c) <= 2) continue;
    detach_clause(c);
    arena_[c] |= 1u;  // deleted
    ++dropped;
  }
  std::vector<ClauseRef> keep;
  keep.reserve(learnts_.size() - dropped);
  for (const ClauseRef c : learnts_)
    if (!clause_deleted(c)) keep.push_back(c);
  learnts_ = std::move(keep);
  stats_.deleted_clauses += dropped;
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions,
                             const CancelToken* cancel) {
  ++stats_.solves;
  final_conflict_.clear();
  if (!ok_) return Result::Unsat;
  cancel_until(0);
  if (propagate() != kNullClause) {
    ok_ = false;
    return Result::Unsat;
  }
  max_learnts_ = std::max<size_t>(256, clauses_.size() / 3);

  std::vector<Lit> learnt;
  uint64_t restart_seq = 0;
  uint64_t restart_budget = 64 * luby(restart_seq);
  uint64_t restart_conflicts = 0;
  uint64_t steps = 0;

  for (;;) {
    if ((++steps & 0xFFu) == 0 && should_stop(cancel)) {
      cancel_until(0);
      return Result::Undef;
    }
    const ClauseRef confl = propagate();
    if (confl != kNullClause) {
      ++stats_.conflicts;
      ++restart_conflicts;
      if (decision_level() == 0) {
        // Conflict below every assumption: the clause set itself is UNSAT.
        ok_ = false;
        return Result::Unsat;
      }
      uint32_t bt_level = 0;
      analyze(confl, learnt, bt_level);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNullClause);
      } else {
        const ClauseRef c = alloc_clause(learnt, /*learnt=*/true);
        learnts_.push_back(c);
        attach_clause(c);
        clause_bump(c);
        enqueue(learnt[0], c);
      }
      ++stats_.learned_clauses;
      stats_.learned_literals += learnt.size();
      var_decay();
      clause_inc_ *= 1.0 / 0.999;
    } else {
      if (restart_conflicts >= restart_budget) {
        ++stats_.restarts;
        ++restart_seq;
        restart_budget = 64 * luby(restart_seq);
        restart_conflicts = 0;
        cancel_until(0);
        continue;
      }
      if (learnts_.size() >= max_learnts_ + trail_.size()) reduce_db();

      Lit next = kUndefLit;
      while (decision_level() < assumptions.size()) {
        const Lit p = assumptions[decision_level()];
        RFN_CHECK(p.var() < num_vars(), "assumption over unknown variable");
        const LBool v = assign_value(p);
        if (v == LBool::True) {
          new_decision_level();  // already implied: dummy level keeps indices aligned
        } else if (v == LBool::False) {
          analyze_final(p, final_conflict_);
          cancel_until(0);
          return Result::Unsat;
        } else {
          next = p;
          break;
        }
      }
      if (next == kUndefLit) {
        next = pick_branch_lit();
        if (next == kUndefLit) {
          model_ = assigns_;  // total: every variable is assigned
          cancel_until(0);
          return Result::Sat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, kNullClause);
    }
  }
}

// --- decision-order heap (binary max-heap on VSIDS activity) ---

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<uint32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) { heap_sift_up(heap_pos_[v]); }

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = kNoHeapPos;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<uint32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<uint32_t>(i);
}

void Solver::heap_sift_down(size_t i) {
  const Var v = heap_[i];
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<uint32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<uint32_t>(i);
}

}  // namespace rfn::sat
