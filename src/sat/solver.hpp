#pragma once
// Incremental CDCL SAT solver (MiniSat lineage) for the BMC engine.
//
// Feature set matches what the single-instance BMC formulation needs and
// nothing more: two-watched-literal propagation, VSIDS variable activities
// with phase saving, first-UIP clause learning, Luby restarts, activity-based
// learnt-clause reduction, and — the load-bearing part — *incremental solving
// under assumptions*. Clauses persist across solve() calls; each call takes a
// list of assumption literals that are decided before any free variable, and
// an UNSAT answer exposes final_conflict(): the subset of assumptions the
// refutation actually used. The BMC encoder maps register-enable assumptions
// back through that core to name the registers a bounded proof needed.
//
// Cancellation is cooperative, like every engine in this codebase: solve()
// polls its CancelToken at propagation boundaries (never mid-propagation), so
// a cancelled solver unwinds to decision level 0 with all internal state
// intact and remains usable for the next incremental call.

#include <cstdint>
#include <vector>

#include "util/cancel.hpp"

namespace rfn::sat {

using Var = uint32_t;

/// A literal in MiniSat packing: index() = 2*var + (1 if negated). The
/// default-constructed literal is the sentinel kUndefLit.
struct Lit {
  uint32_t x = 0xFFFFFFFFu;

  static Lit make(Var v, bool neg = false) { return Lit{(v << 1) | (neg ? 1u : 0u)}; }
  Var var() const { return x >> 1; }
  bool neg() const { return (x & 1u) != 0; }
  uint32_t index() const { return x; }

  friend Lit operator~(Lit l) { return Lit{l.x ^ 1u}; }
  friend bool operator==(const Lit&, const Lit&) = default;
};

inline constexpr Lit kUndefLit{};

enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lbool_of(bool b) { return b ? LBool::True : LBool::False; }

struct SolverStats {
  uint64_t solves = 0;
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;
  uint64_t learned_clauses = 0;
  uint64_t learned_literals = 0;
  uint64_t deleted_clauses = 0;
};

class Solver {
 public:
  enum class Result { Sat, Unsat, Undef };  // Undef = cancelled

  Solver();

  /// Creates a fresh variable. Variables may be added between solve() calls.
  Var new_var();
  size_t num_vars() const { return assigns_.size(); }

  /// Adds a clause over existing variables. Returns false when the clause
  /// makes the formula trivially unsatisfiable at level 0 (the solver is
  /// then permanently UNSAT: ok() turns false and solve() answers Unsat with
  /// an empty final conflict). Tautologies and duplicate literals are
  /// simplified away.
  bool add_clause(std::vector<Lit> lits);

  /// Solves the clause set under `assumptions`. Sat: model_value() is valid
  /// for every variable until the next add_clause/solve. Unsat:
  /// final_conflict() names the failing assumption subset (empty when the
  /// clause set itself is UNSAT). Undef: cancelled; internal state stays
  /// consistent and the instance remains usable.
  Result solve(const std::vector<Lit>& assumptions = {},
               const CancelToken* cancel = nullptr);

  /// Model access after a Sat answer.
  LBool value(Var v) const { return model_[v]; }
  LBool lit_value(Lit l) const {
    const LBool v = model_[l.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return lbool_of((v == LBool::True) != l.neg());
  }

  /// After an Unsat answer: the subset of the assumption literals (as
  /// passed, not negated) whose joint enforcement the refutation used.
  const std::vector<Lit>& final_conflict() const { return final_conflict_; }

  bool ok() const { return ok_; }
  const SolverStats& stats() const { return stats_; }

  /// Byte-exact footprint of the two dominant heaps: the clause arena's
  /// capacity plus the watch lists' capacities (outer vector and every inner
  /// list). Maintained incrementally at the growth sites;
  /// heap_bytes_recomputed() walks the containers and must agree exactly
  /// (prof_test pins this). Watch lists can be compacted by propagation but
  /// never release capacity, so live == peak within one instance; both are
  /// kept for vocabulary parity with BddMgr and rfn-prof-v1.
  size_t heap_bytes() const { return heap_bytes_; }
  size_t heap_bytes_peak() const { return heap_peak_bytes_; }
  size_t heap_bytes_recomputed() const;

 private:
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kNullClause = 0xFFFFFFFFu;

  // Clause arena. Layout per clause: [header][activity][lit0 ... litN-1]
  // where header = size << 2 | learnt << 1 | deleted. Deleted learnt clauses
  // leave holes until the instance dies — BMC instances are per-design and
  // per-session, so the arena's lifetime is bounded and relocation would buy
  // complexity, not memory that matters here.
  uint32_t clause_size(ClauseRef c) const { return arena_[c] >> 2; }
  bool clause_learnt(ClauseRef c) const { return (arena_[c] & 2u) != 0; }
  bool clause_deleted(ClauseRef c) const { return (arena_[c] & 1u) != 0; }
  float clause_activity(ClauseRef c) const;
  void set_clause_activity(ClauseRef c, float a);
  Lit* clause_lits(ClauseRef c) { return reinterpret_cast<Lit*>(&arena_[c + 2]); }
  const Lit* clause_lits(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(&arena_[c + 2]);
  }
  ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learnt);

  struct Watch {
    ClauseRef cref = kNullClause;
    Lit blocker = kUndefLit;  // clause skipped without a lookup when true
  };

  LBool assign_value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return lbool_of((v == LBool::True) != l.neg());
  }
  uint32_t decision_level() const { return static_cast<uint32_t>(trail_lim_.size()); }
  void new_decision_level() { trail_lim_.push_back(static_cast<uint32_t>(trail_.size())); }

  void attach_clause(ClauseRef c);
  void detach_clause(ClauseRef c);
  /// push_back onto watches_[lit_index] that keeps heap_bytes_ exact across
  /// the inner vector's capacity growth. Every watch insertion goes through
  /// here; removals (swap-with-back, resize) never change capacity.
  void watch_push(uint32_t lit_index, Watch w);
  void heap_track(size_t before_bytes, size_t after_bytes) {
    heap_bytes_ += after_bytes - before_bytes;
    if (heap_bytes_ > heap_peak_bytes_) heap_peak_bytes_ = heap_bytes_;
  }
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void cancel_until(uint32_t level);
  void analyze(ClauseRef confl, std::vector<Lit>& learnt, uint32_t& bt_level);
  void analyze_final(Lit p, std::vector<Lit>& out);
  Lit pick_branch_lit();
  void var_bump(Var v);
  void var_decay() { var_inc_ *= (1.0 / 0.95); }
  void clause_bump(ClauseRef c);
  void reduce_db();
  bool locked(ClauseRef c) const;

  // Binary max-heap over VSIDS activity (decision order).
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_contains(Var v) const { return heap_pos_[v] != kNoHeapPos; }
  void heap_sift_up(size_t i);
  void heap_sift_down(size_t i);
  static constexpr uint32_t kNoHeapPos = 0xFFFFFFFFu;

  std::vector<uint32_t> arena_;
  std::vector<ClauseRef> clauses_;  // problem clauses
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watch>> watches_;  // indexed by Lit::index()

  std::vector<LBool> assigns_;
  std::vector<uint8_t> phase_;       // saved phase: last assigned sign
  std::vector<uint32_t> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<uint32_t> trail_lim_;
  size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<uint32_t> heap_pos_;
  double clause_inc_ = 1.0;

  std::vector<uint8_t> seen_;
  std::vector<LBool> model_;
  std::vector<Lit> final_conflict_;
  size_t max_learnts_ = 256;

  bool ok_ = true;
  SolverStats stats_;
  size_t heap_bytes_ = 0;
  size_t heap_peak_bytes_ = 0;
};

}  // namespace rfn::sat
