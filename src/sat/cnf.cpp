#include "sat/cnf.hpp"

#include <algorithm>

#include "atpg/unroll.hpp"
#include "netlist/analysis.hpp"
#include "util/log.hpp"

namespace rfn::sat {

BmcEncoder::BmcEncoder(const Netlist& m, Solver& s) : m_(&m), s_(&s) {}

Lit BmcEncoder::fresh() { return Lit::make(s_->new_var()); }

Lit BmcEncoder::const_lit(bool value) {
  if (true_lit_ == kUndefLit) {
    true_lit_ = fresh();
    s_->add_clause({true_lit_});
  }
  return value ? true_lit_ : ~true_lit_;
}

void BmcEncoder::add_and(Lit out, const std::vector<Lit>& ins) {
  std::vector<Lit> big;
  big.reserve(ins.size() + 1);
  for (const Lit in : ins) {
    add2(~out, in);  // out -> in
    big.push_back(~in);
  }
  big.push_back(out);  // all ins -> out
  s_->add_clause(std::move(big));
}

void BmcEncoder::add_xor(Lit out, Lit a, Lit b) {
  add3(~out, a, b);
  add3(~out, ~a, ~b);
  add3(out, ~a, b);
  add3(out, a, ~b);
}

void BmcEncoder::add_root(GateId root) {
  RFN_CHECK(root < m_->size(), "BMC root out of range");
  if (in_cone(root)) return;
  roots_.push_back(root);
  cone_ = stable_frame_cone(*m_, roots_);
  order_.clear();
  for (GateId g : topo_order(*m_))
    if (cone_[g]) order_.push_back(g);
  cone_regs_.clear();
  for (GateId r : m_->regs())
    if (cone_[r]) cone_regs_.push_back(r);
  std::sort(cone_regs_.begin(), cone_regs_.end());
  enable_.resize(m_->size(), kUndefLit);
  // Enable literals exist as soon as a register enters the cone (not at first
  // frame materialization): callers assemble assumption sets before deciding
  // how deep to unroll.
  for (const GateId r : cone_regs_)
    if (enable_[r] == kUndefLit) enable_[r] = fresh();
  // Back-fill the widened cone into every frame already encoded. New
  // signals' fanins are either newly materialized too (visited earlier in
  // topo order / the previous frame, by the stable-cone fixpoint) or were
  // present before — existing clauses are never touched.
  for (size_t f = 1; f <= frames_; ++f) {
    vars_[f - 1].resize(m_->size(), kUndefLit);
    encode_frame_signals(f);
  }
}

void BmcEncoder::extend_to(size_t frames) {
  while (frames_ < frames) {
    ++frames_;
    vars_.emplace_back(m_->size(), kUndefLit);
    encode_frame_signals(frames_);
  }
}

void BmcEncoder::encode_frame_signals(size_t frame) {
  auto& map_f = vars_[frame - 1];
  for (const GateId g : order_) {
    if (map_f[g] != kUndefLit) continue;
    switch (m_->type(g)) {
      case GateType::Input:
        map_f[g] = fresh();
        break;
      case GateType::Const0:
        map_f[g] = const_lit(false);
        break;
      case GateType::Const1:
        map_f[g] = const_lit(true);
        break;
      case GateType::Reg: {
        const Lit v = fresh();
        map_f[g] = v;
        const Lit en = enable_[g];
        RFN_CHECK(en != kUndefLit, "cone register lacks an enable literal");
        if (frame == 1) {
          switch (m_->reg_init(g)) {
            case Tri::F: add2(~en, ~v); break;
            case Tri::T: add2(~en, v); break;
            case Tri::X: break;  // unconstrained either way
          }
        } else {
          const Lit d = vars_[frame - 2][m_->reg_data(g)];
          RFN_CHECK(d != kUndefLit, "register data missing at frame %zu", frame - 1);
          add3(~en, ~v, d);
          add3(~en, v, ~d);
        }
        break;
      }
      case GateType::Buf: {
        const Lit a = map_f[m_->fanins(g)[0]];
        map_f[g] = a;  // alias: no fresh variable needed
        break;
      }
      case GateType::Not: {
        const Lit a = map_f[m_->fanins(g)[0]];
        map_f[g] = ~a;
        break;
      }
      case GateType::Mux: {
        const Lit v = fresh();
        map_f[g] = v;
        const auto& fi = m_->fanins(g);
        const Lit sel = map_f[fi[0]], d0 = map_f[fi[1]], d1 = map_f[fi[2]];
        add3(~sel, ~d1, v);
        add3(~sel, d1, ~v);
        add3(sel, ~d0, v);
        add3(sel, d0, ~v);
        // Redundant but propagation-strengthening: d0 = d1 implies v.
        add3(~d0, ~d1, v);
        add3(d0, d1, ~v);
        break;
      }
      default: {  // And/Or/Nand/Nor/Xor/Xnor
        const Lit v = fresh();
        map_f[g] = v;
        std::vector<Lit> ins;
        ins.reserve(m_->fanins(g).size());
        for (const GateId fi : m_->fanins(g)) {
          RFN_CHECK(map_f[fi] != kUndefLit, "fanin missing at frame %zu", frame);
          ins.push_back(map_f[fi]);
        }
        switch (m_->type(g)) {
          case GateType::And: add_and(v, ins); break;
          case GateType::Nand: add_and(~v, ins); break;
          case GateType::Or:
            for (Lit& in : ins) in = ~in;
            add_and(~v, ins);
            break;
          case GateType::Nor:
            for (Lit& in : ins) in = ~in;
            add_and(v, ins);
            break;
          case GateType::Xor: add_xor(v, ins[0], ins[1]); break;
          case GateType::Xnor: add_xor(~v, ins[0], ins[1]); break;
          default: RFN_CHECK(false, "unexpected gate type in CNF encoding");
        }
        break;
      }
    }
  }
}

Lit BmcEncoder::lit(size_t frame, GateId g) const {
  RFN_CHECK(frame >= 1 && frame <= frames_, "frame %zu out of range", frame);
  const Lit l = vars_[frame - 1][g];
  RFN_CHECK(l != kUndefLit, "signal %u not materialized at frame %zu", g, frame);
  return l;
}

bool BmcEncoder::materialized(size_t frame, GateId g) const {
  return frame >= 1 && frame <= frames_ && g < vars_[frame - 1].size() &&
         vars_[frame - 1][g] != kUndefLit;
}

Lit BmcEncoder::enable(GateId r) const {
  return r < enable_.size() ? enable_[r] : kUndefLit;
}

Lit BmcEncoder::trigger(GateId root, size_t frame) {
  const auto key = std::make_pair(root, frame);
  const auto it = triggers_.find(key);
  if (it != triggers_.end()) return it->second;
  const Lit t = fresh();
  add2(~t, lit(frame, root));
  triggers_.emplace(key, t);
  return t;
}

GateId BmcEncoder::register_of_enable(Lit l) const {
  for (const GateId r : cone_regs_)
    if (enable_[r] == l) return r;
  return kNullGate;
}

Trace BmcEncoder::decode_trace(size_t depth,
                               const std::vector<GateId>& included) const {
  RFN_CHECK(depth >= 1 && depth <= frames_, "decode depth out of range");
  Trace t;
  t.steps.resize(depth);
  const auto model_bit = [this](Lit l) {
    return s_->lit_value(l) == LBool::True;
  };
  for (size_t f = 1; f <= depth; ++f) {
    TraceStep& step = t.steps[f - 1];
    for (const GateId r : cone_regs_) {
      const Lit l = vars_[f - 1][r];
      if (l == kUndefLit) continue;
      const bool kept = std::binary_search(included.begin(), included.end(), r);
      cube_add(kept ? step.state : step.inputs, {r, model_bit(l)});
    }
    for (const GateId g : m_->inputs()) {
      if (g >= vars_[f - 1].size()) continue;
      const Lit l = vars_[f - 1][g];
      if (l == kUndefLit) continue;
      cube_add(step.inputs, {g, model_bit(l)});
    }
  }
  return t;
}

}  // namespace rfn::sat
