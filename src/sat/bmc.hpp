#pragma once
// SAT-based bounded model checking over one long-lived incremental solver —
// the portfolio's fourth engine.
//
// A SatBmc owns one Solver plus one BmcEncoder for one design and answers
// repeated bounded questions "can `bad` rise within k cycles of the
// abstraction whose included register set is R?" purely through assumption
// flips: enables for R, the per-depth trigger, nothing re-encoded, learned
// clauses shared across depths, register sets, roots, and — via the session
// layer's pool — across the properties of a batch run.
//
// Answer semantics (AtpgStatus vocabulary, like the ATPG engines):
//   Sat    — found a length-`depth` error trace of the abstraction. With R =
//            all registers this is a real error trace of the design; the
//            decoded Trace is consumed unchanged by certify_error_trace and
//            Step-3 concretization.
//   Unsat  — no trace of length <= max_depth exists. A *bounded* result:
//            conclusive for Step-3 concretization (the abstract trace's
//            length bounds the question) but never a Holds verdict.
//            core_registers carries the refinement hint: registers whose
//            enable assumptions the refutation used (hints only, never
//            verdicts — the same contract as the session ReuseCache).
//   Abort  — cancelled (lost the race / watchdog).

#include <cstddef>
#include <vector>

#include "atpg/comb_atpg.hpp"  // AtpgStatus
#include "netlist/netlist.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/cancel.hpp"

namespace rfn {

struct SatBmcResult {
  AtpgStatus status = AtpgStatus::Abort;
  /// Sat: the decoded error trace (length = depth).
  Trace trace;
  /// Sat: trace length (the first SAT depth). Unsat: the proven bound.
  size_t depth = 0;
  /// Unsat: registers named by the UNSAT assumption cores, union over all
  /// depths up to the bound, sorted. Subset of the `included` argument.
  std::vector<GateId> core_registers;
};

/// Single-owner like a BddMgr: the instance may move between portfolio
/// worker threads across races (race() is the happens-before edge) but no
/// two concurrent jobs may share it.
class SatBmc {
 public:
  explicit SatBmc(const Netlist& m);

  /// Iteratively deepens k = 1..max_depth asking "bad at frame k" on the
  /// abstraction containing `included` (sorted original register ids;
  /// registers of bad's COI outside it stay free). Returns at the first SAT
  /// depth, on cancellation, or after proving the whole bound UNSAT. Polls
  /// `cancel` between depths and inside the solver.
  SatBmcResult check(GateId bad, size_t max_depth,
                     const std::vector<GateId>& included,
                     const CancelToken* cancel = nullptr);

  const sat::SolverStats& solver_stats() const { return solver_.stats(); }
  size_t frames() const { return enc_.frames(); }
  /// Byte-exact clause-arena + watch-list footprint of the owned solver
  /// (see Solver::heap_bytes); the session layer reports these per property.
  size_t solver_heap_bytes() const { return solver_.heap_bytes(); }
  size_t solver_heap_bytes_peak() const { return solver_.heap_bytes_peak(); }

 private:
  const Netlist* m_;
  sat::Solver solver_;
  sat::BmcEncoder enc_;
};

}  // namespace rfn
