#include "sat/bmc.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfn {

using sat::Lit;
using sat::Solver;

SatBmc::SatBmc(const Netlist& m) : m_(&m), enc_(m, solver_) {}

SatBmcResult SatBmc::check(GateId bad, size_t max_depth,
                           const std::vector<GateId>& included,
                           const CancelToken* cancel) {
  RFN_CHECK(max_depth >= 1, "BMC bound must be >= 1");
  Span span("sat.bmc");
  const sat::SolverStats before = solver_.stats();

  SatBmcResult result;
  enc_.add_root(bad);

  // Enable assumptions for the included registers that the cone knows about;
  // everything else in the cone stays a free pseudo-input.
  std::vector<Lit> enables;
  for (const GateId r : enc_.cone_registers())
    if (std::binary_search(included.begin(), included.end(), r))
      enables.push_back(enc_.enable(r));

  std::vector<GateId> core;
  size_t k = 0;
  for (k = 1; k <= max_depth; ++k) {
    if (should_stop(cancel)) break;
    enc_.extend_to(k);
    std::vector<Lit> assumptions;
    assumptions.reserve(enables.size() + 1);
    assumptions.push_back(enc_.trigger(bad, k));
    assumptions.insert(assumptions.end(), enables.begin(), enables.end());
    const Solver::Result r = solver_.solve(assumptions, cancel);
    if (r == Solver::Result::Undef) break;
    if (r == Solver::Result::Sat) {
      result.status = AtpgStatus::Sat;
      result.depth = k;
      result.trace = enc_.decode_trace(k, included);
      break;
    }
    // UNSAT at depth k: harvest the enable assumptions the refutation used.
    for (const Lit l : solver_.final_conflict()) {
      const GateId reg = enc_.register_of_enable(l);
      if (reg != kNullGate) core.push_back(reg);
    }
  }
  if (result.status != AtpgStatus::Sat) {
    if (k > max_depth) {
      result.status = AtpgStatus::Unsat;
      result.depth = max_depth;
      std::sort(core.begin(), core.end());
      core.erase(std::unique(core.begin(), core.end()), core.end());
      result.core_registers = std::move(core);
    } else {
      result.status = AtpgStatus::Abort;  // cancelled mid-deepening
      result.depth = k > 0 ? k - 1 : 0;
    }
  }

  const sat::SolverStats& after = solver_.stats();
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("sat.checks").add(1);
  reg.counter("sat.solve_calls").add(after.solves - before.solves);
  reg.counter("sat.conflicts").add(after.conflicts - before.conflicts);
  reg.counter("sat.decisions").add(after.decisions - before.decisions);
  reg.counter("sat.propagations").add(after.propagations - before.propagations);
  reg.counter("sat.restarts").add(after.restarts - before.restarts);
  reg.counter("sat.learned_clauses").add(after.learned_clauses - before.learned_clauses);
  reg.gauge("sat.frames").record_max(static_cast<int64_t>(enc_.frames()));
  // Arena bytes (flush-once, like every sat.* metric here): level = this
  // solver's footprint, max = the largest any solver reached this run
  // (rfn-prof-v1's sat.peak_bytes).
  reg.gauge("sat.heap_bytes").set(static_cast<int64_t>(solver_.heap_bytes()));
  reg.gauge("sat.heap_bytes")
      .record_max(static_cast<int64_t>(solver_.heap_bytes_peak()));
  if (result.status == AtpgStatus::Unsat)
    reg.counter("sat.core_registers").add(result.core_registers.size());
  // Same spelling as core/status.hpp's to_string(AtpgStatus) without the
  // include: sat/ stays self-contained below core/.
  span.annotate("status", result.status == AtpgStatus::Sat     ? "sat"
                          : result.status == AtpgStatus::Unsat ? "unsat"
                                                               : "abort");
  return result;
}

}  // namespace rfn
