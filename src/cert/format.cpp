#include "cert/format.hpp"

#include <cmath>

#include "util/json.hpp"

namespace rfn::cert {

const char* cert_kind_name(CertKind k) {
  return k == CertKind::HoldsInvariant ? "holds-invariant" : "fails-trace";
}

namespace {

std::string hash_hex(uint64_t h) {
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i)
    out[15 - i] = "0123456789abcdef"[(h >> (4 * i)) & 0xF];
  return out;
}

json::Value cube_json(const Cube& c) {
  json::Value arr = json::Value::array();
  for (const Literal& lit : c) {
    json::Value pair = json::Value::array();
    pair.push(json::Value(uint64_t{lit.signal}));
    pair.push(json::Value(lit.value ? 1 : 0));
    arr.push(std::move(pair));
  }
  return arr;
}

}  // namespace

std::string to_json(const Certificate& c) {
  json::Value doc = json::Value::object();
  doc.set("format", "rfn-cert-v1");
  doc.set("kind", cert_kind_name(c.kind));
  json::Value design = json::Value::object();
  design.set("hash", hash_hex(c.design_hash));
  design.set("regs", uint64_t{c.design_regs});
  design.set("inputs", uint64_t{c.design_inputs});
  design.set("gates", uint64_t{c.design_gates});
  doc.set("design", std::move(design));
  json::Value prop = json::Value::object();
  prop.set("name", c.property_name);
  prop.set("bad", uint64_t{c.bad});
  doc.set("property", std::move(prop));
  if (c.kind == CertKind::HoldsInvariant) {
    json::Value regs = json::Value::array();
    for (GateId r : c.registers) regs.push(json::Value(uint64_t{r}));
    doc.set("abstraction", json::Value::object().set("registers", std::move(regs)));
    json::Value clauses = json::Value::array();
    for (const std::vector<int32_t>& clause : c.clauses) {
      json::Value cl = json::Value::array();
      for (int32_t lit : clause) cl.push(json::Value(int64_t{lit}));
      clauses.push(std::move(cl));
    }
    doc.set("invariant", json::Value::object().set("clauses", std::move(clauses)));
  } else {
    json::Value steps = json::Value::array();
    for (const TraceStep& step : c.trace.steps) {
      json::Value s = json::Value::object();
      s.set("state", cube_json(step.state));
      s.set("inputs", cube_json(step.inputs));
      steps.push(std::move(s));
    }
    doc.set("trace", json::Value::object().set("steps", std::move(steps)));
  }
  return doc.dump(2) + "\n";
}

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool parse_uint(const json::Value* v, uint64_t* out) {
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->as_double();
  if (d < 0 || d != std::floor(d)) return false;
  *out = static_cast<uint64_t>(d);
  return true;
}

bool parse_cube(const json::Value* v, Cube* out, std::string* error,
                const char* what) {
  if (v == nullptr || !v->is_array())
    return fail(error, std::string("trace step missing ") + what + " array");
  for (const json::Value& pair : v->items()) {
    if (!pair.is_array() || pair.items().size() != 2)
      return fail(error, std::string(what) + " literal is not an [id, value] pair");
    uint64_t id = 0, value = 0;
    if (!parse_uint(&pair.items()[0], &id) || !parse_uint(&pair.items()[1], &value) ||
        value > 1)
      return fail(error, std::string(what) + " literal has a non-binary value");
    out->push_back({static_cast<GateId>(id), value == 1});
  }
  return true;
}

}  // namespace

bool from_json(std::string_view text, Certificate* out, std::string* error) {
  std::string parse_error;
  const json::Value doc = json::parse(text, &parse_error);
  if (doc.is_null()) return fail(error, "not valid JSON: " + parse_error);
  if (!doc.is_object()) return fail(error, "top-level value is not an object");
  const json::Value* format = doc.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "rfn-cert-v1")
    return fail(error, "missing or unsupported \"format\" (want rfn-cert-v1)");
  const json::Value* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string())
    return fail(error, "missing \"kind\"");
  Certificate c;
  if (kind->as_string() == "holds-invariant") {
    c.kind = CertKind::HoldsInvariant;
  } else if (kind->as_string() == "fails-trace") {
    c.kind = CertKind::FailsTrace;
  } else {
    return fail(error, "unknown kind \"" + kind->as_string() + "\"");
  }

  const json::Value* hash = doc.find_path("design.hash");
  if (hash == nullptr || !hash->is_string() || hash->as_string().size() != 16)
    return fail(error, "design.hash must be 16 hex digits");
  c.design_hash = 0;
  for (char ch : hash->as_string()) {
    uint32_t nibble = 0;
    if (ch >= '0' && ch <= '9') {
      nibble = static_cast<uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      nibble = static_cast<uint32_t>(ch - 'a' + 10);
    } else {
      return fail(error, "design.hash must be 16 hex digits");
    }
    c.design_hash = (c.design_hash << 4) | nibble;
  }
  uint64_t u = 0;
  if (parse_uint(doc.find_path("design.regs"), &u)) c.design_regs = u;
  if (parse_uint(doc.find_path("design.inputs"), &u)) c.design_inputs = u;
  if (parse_uint(doc.find_path("design.gates"), &u)) c.design_gates = u;

  const json::Value* name = doc.find_path("property.name");
  if (name == nullptr || !name->is_string())
    return fail(error, "missing property.name");
  c.property_name = name->as_string();
  if (!parse_uint(doc.find_path("property.bad"), &u))
    return fail(error, "missing property.bad");
  c.bad = static_cast<GateId>(u);

  if (c.kind == CertKind::HoldsInvariant) {
    const json::Value* regs = doc.find_path("abstraction.registers");
    if (regs == nullptr || !regs->is_array())
      return fail(error, "missing abstraction.registers");
    for (const json::Value& r : regs->items()) {
      if (!parse_uint(&r, &u))
        return fail(error, "abstraction.registers entry is not an id");
      if (!c.registers.empty() && c.registers.back() >= u)
        return fail(error, "abstraction.registers must be sorted and unique");
      c.registers.push_back(static_cast<GateId>(u));
    }
    const json::Value* clauses = doc.find_path("invariant.clauses");
    if (clauses == nullptr || !clauses->is_array())
      return fail(error, "missing invariant.clauses");
    for (const json::Value& cl : clauses->items()) {
      if (!cl.is_array() || cl.items().empty())
        return fail(error, "invariant clause is empty or not an array");
      std::vector<int32_t> clause;
      for (const json::Value& lit : cl.items()) {
        if (!lit.is_number()) return fail(error, "clause literal is not a number");
        const double d = lit.as_double();
        if (d != std::floor(d)) return fail(error, "clause literal is not an integer");
        const auto v = static_cast<int64_t>(d);
        const auto mag = static_cast<uint64_t>(v < 0 ? -v : v);
        if (mag == 0 || mag > c.registers.size())
          return fail(error, "clause literal indexes outside the register list");
        clause.push_back(static_cast<int32_t>(v));
      }
      c.clauses.push_back(std::move(clause));
    }
  } else {
    const json::Value* steps = doc.find_path("trace.steps");
    if (steps == nullptr || !steps->is_array() || steps->items().empty())
      return fail(error, "fails-trace certificate needs a non-empty trace.steps");
    for (const json::Value& step : steps->items()) {
      TraceStep ts;
      if (!parse_cube(step.find("state"), &ts.state, error, "state") ||
          !parse_cube(step.find("inputs"), &ts.inputs, error, "inputs"))
        return false;
      c.trace.steps.push_back(std::move(ts));
    }
  }
  *out = std::move(c);
  return true;
}

}  // namespace rfn::cert
