#include "cert/check.hpp"

#include <vector>

#include "netlist/analysis.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/log.hpp"

namespace rfn::cert {

namespace {

using sat::LBool;
using sat::Lit;
using sat::Solver;

/// Tseitin encoding of combinational cones cut at *every* register boundary:
/// registers and primary inputs become free solver variables (the scope
/// registers' variables double as the invariant's current-state variables),
/// and each gate's function is encoded on demand, memoized per signal. One
/// encoder instance per obligation keeps the instances independent.
class CutEncoder {
 public:
  CutEncoder(const Netlist& m, Solver& s)
      : m_(m), s_(s), lit_(m.size(), sat::kUndefLit) {}

  Lit lit(GateId g) {
    if (lit_[g] == sat::kUndefLit) encode(g);
    return lit_[g];
  }

 private:
  Lit fresh() { return Lit::make(s_.new_var()); }

  Lit true_lit() {
    if (true_lit_ == sat::kUndefLit) {
      true_lit_ = fresh();
      s_.add_clause({true_lit_});
    }
    return true_lit_;
  }

  /// out <-> AND(ins); negate out/ins to express NAND/OR/NOR.
  void encode_and(Lit out, const std::vector<Lit>& ins) {
    std::vector<Lit> big{out};
    for (Lit in : ins) {
      s_.add_clause({~out, in});
      big.push_back(~in);
    }
    s_.add_clause(std::move(big));
  }

  void encode_xor(Lit out, Lit a, Lit b) {
    s_.add_clause({~out, a, b});
    s_.add_clause({~out, ~a, ~b});
    s_.add_clause({out, ~a, b});
    s_.add_clause({out, a, ~b});
  }

  void encode(GateId root) {
    // Explicit DFS: combinational chains can outrun the call stack.
    std::vector<GateId> stack{root};
    while (!stack.empty()) {
      const GateId g = stack.back();
      if (lit_[g] != sat::kUndefLit) {
        stack.pop_back();
        continue;
      }
      const Gate& gate = m_.gate(g);
      if (gate.type == GateType::Input || gate.type == GateType::Reg) {
        lit_[g] = fresh();  // free cut variable
        stack.pop_back();
        continue;
      }
      if (gate.type == GateType::Const0 || gate.type == GateType::Const1) {
        lit_[g] = gate.type == GateType::Const1 ? true_lit() : ~true_lit();
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (GateId in : gate.fanins) {
        if (lit_[in] == sat::kUndefLit) {
          stack.push_back(in);
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      std::vector<Lit> ins;
      ins.reserve(gate.fanins.size());
      for (GateId in : gate.fanins) ins.push_back(lit_[in]);
      const Lit out = fresh();
      switch (gate.type) {
        case GateType::Buf:
          s_.add_clause({~out, ins[0]});
          s_.add_clause({out, ~ins[0]});
          break;
        case GateType::Not:
          s_.add_clause({~out, ~ins[0]});
          s_.add_clause({out, ins[0]});
          break;
        case GateType::And:
          encode_and(out, ins);
          break;
        case GateType::Nand:
          encode_and(~out, ins);
          break;
        case GateType::Or:
          for (Lit& in : ins) in = ~in;
          encode_and(~out, ins);
          break;
        case GateType::Nor:
          for (Lit& in : ins) in = ~in;
          encode_and(out, ins);
          break;
        case GateType::Xor:
          encode_xor(out, ins[0], ins[1]);
          break;
        case GateType::Xnor:
          encode_xor(~out, ins[0], ins[1]);
          break;
        case GateType::Mux:
          // out <-> (sel ? d1 : d0)
          s_.add_clause({~ins[0], ~ins[2], out});
          s_.add_clause({~ins[0], ins[2], ~out});
          s_.add_clause({ins[0], ~ins[1], out});
          s_.add_clause({ins[0], ins[1], ~out});
          break;
        default:
          RFN_CHECK(false, "cut encoder: unexpected gate type");
      }
      lit_[g] = out;
    }
  }

  const Netlist& m_;
  Solver& s_;
  std::vector<Lit> lit_;
  Lit true_lit_ = sat::kUndefLit;
};

Lit clause_lit(int32_t dimacs, const std::vector<Lit>& regs) {
  const size_t idx = static_cast<size_t>(dimacs < 0 ? -dimacs : dimacs) - 1;
  return dimacs < 0 ? ~regs[idx] : regs[idx];
}

/// Asserts Inv: one solver clause per certificate clause over `regs`.
void add_invariant(Solver& s, const Certificate& c, const std::vector<Lit>& regs) {
  for (const std::vector<int32_t>& clause : c.clauses) {
    std::vector<Lit> lits;
    lits.reserve(clause.size());
    for (int32_t l : clause) lits.push_back(clause_lit(l, regs));
    s.add_clause(std::move(lits));
  }
}

/// Asserts ¬Inv over `regs`: per-clause selector s_i with s_i -> every
/// literal of clause i false, plus the disjunction of the selectors. Must
/// not be called with an empty clause list (¬true is unsatisfiable; callers
/// pass such obligations trivially).
void add_not_invariant(Solver& s, const Certificate& c, const std::vector<Lit>& regs) {
  std::vector<Lit> selectors;
  selectors.reserve(c.clauses.size());
  for (const std::vector<int32_t>& clause : c.clauses) {
    const Lit sel = Lit::make(s.new_var());
    for (int32_t l : clause) s.add_clause({~sel, ~clause_lit(l, regs)});
    selectors.push_back(sel);
  }
  s.add_clause(std::move(selectors));
}

std::string assignment_string(const Netlist& m, const Certificate& c,
                              const Solver& s, const std::vector<Lit>& regs,
                              const std::vector<Lit>* next) {
  std::string out;
  constexpr size_t kMaxShown = 32;
  for (size_t i = 0; i < c.registers.size() && i < kMaxShown; ++i) {
    if (!out.empty()) out += ' ';
    const GateId r = c.registers[i];
    out += m.has_name(r) ? m.name(r) : "g" + std::to_string(r);
    const LBool v = s.lit_value(regs[i]);
    out += v == LBool::True ? "=1" : (v == LBool::False ? "=0" : "=x");
    if (next != nullptr) {
      const LBool nv = s.lit_value((*next)[i]);
      out += nv == LBool::True ? "->1" : (nv == LBool::False ? "->0" : "->x");
    }
  }
  if (c.registers.size() > kMaxShown) out += " ...";
  return out;
}

CheckResult refuted(const char* obligation, const std::string& assignment) {
  CheckResult res;
  res.obligation = obligation;
  res.detail = "satisfying assignment: " + assignment;
  return res;
}

CheckResult check_holds(const Netlist& m, const Certificate& c) {
  CheckResult res;

  // Obligation 1 — initiation: the initial states (scope registers at their
  // reset values, X-init registers free) must satisfy Inv.
  if (!c.clauses.empty()) {
    Solver s;
    std::vector<Lit> regs;
    regs.reserve(c.registers.size());
    for (size_t i = 0; i < c.registers.size(); ++i)
      regs.push_back(Lit::make(s.new_var()));
    add_not_invariant(s, c, regs);
    std::vector<Lit> assumptions;
    for (size_t i = 0; i < c.registers.size(); ++i) {
      const Tri init = m.reg_init(c.registers[i]);
      if (init != Tri::X) assumptions.push_back(init == Tri::T ? regs[i] : ~regs[i]);
    }
    if (s.solve(assumptions) == Solver::Result::Sat)
      return refuted(kObligationInitiation,
                     assignment_string(m, c, s, regs, nullptr));
  }

  // Obligation 2 — consecution: Inv ∧ T ⇒ Inv′ with one copy of each scope
  // register's next-state cone, every register boundary cut free.
  if (!c.clauses.empty()) {
    Solver s;
    CutEncoder enc(m, s);
    std::vector<Lit> regs, next;
    regs.reserve(c.registers.size());
    next.reserve(c.registers.size());
    for (GateId r : c.registers) regs.push_back(enc.lit(r));
    for (GateId r : c.registers) next.push_back(enc.lit(m.reg_data(r)));
    add_invariant(s, c, regs);
    add_not_invariant(s, c, next);
    if (s.solve() == Solver::Result::Sat)
      return refuted(kObligationConsecution,
                     assignment_string(m, c, s, regs, &next));
  }

  // Obligation 3 — safety: no state satisfying Inv can raise bad under any
  // input (inputs and out-of-scope registers are free in the cut cone).
  {
    Solver s;
    CutEncoder enc(m, s);
    std::vector<Lit> regs;
    regs.reserve(c.registers.size());
    for (GateId r : c.registers) regs.push_back(enc.lit(r));
    add_invariant(s, c, regs);
    const Lit bad = enc.lit(c.bad);
    s.add_clause({bad});
    if (s.solve() == Solver::Result::Sat)
      return refuted(kObligationSafety, assignment_string(m, c, s, regs, nullptr));
  }

  res.ok = true;
  res.detail = "initiation, consecution, safety discharged (" +
               std::to_string(c.clauses.size()) + " clauses over " +
               std::to_string(c.registers.size()) + " registers)";
  return res;
}

CheckResult check_fails(const Netlist& m, const Certificate& c) {
  CheckResult res;
  if (c.trace.empty()) {
    res.obligation = kObligationFormat;
    res.detail = "fails-trace certificate carries an empty trace";
    return res;
  }
  Solver s;
  sat::BmcEncoder enc(m, s);
  enc.add_root(c.bad);
  const size_t depth = c.trace.cycles();
  enc.extend_to(depth);

  // Enable every cone register's init + transition semantics, then pin the
  // trace's state and input literals (signals outside the cone cannot affect
  // bad and are skipped). Sat proves a real trace raises bad at `depth`.
  std::vector<Lit> assumptions;
  for (GateId r : enc.cone_registers()) assumptions.push_back(enc.enable(r));
  for (size_t i = 0; i < depth; ++i) {
    const size_t frame = i + 1;
    for (const Literal& lit : c.trace.steps[i].state) {
      if (lit.signal >= m.size() || !m.is_reg(lit.signal)) continue;
      if (!enc.materialized(frame, lit.signal)) continue;
      const Lit l = enc.lit(frame, lit.signal);
      assumptions.push_back(lit.value ? l : ~l);
    }
    for (const Literal& lit : c.trace.steps[i].inputs) {
      if (lit.signal >= m.size() || !m.is_input(lit.signal)) continue;
      if (!enc.materialized(frame, lit.signal)) continue;
      const Lit l = enc.lit(frame, lit.signal);
      assumptions.push_back(lit.value ? l : ~l);
    }
  }
  assumptions.push_back(enc.trigger(c.bad, depth));
  if (s.solve(assumptions) != Solver::Result::Sat) {
    res.obligation = kObligationTraceReplay;
    res.detail = "the trace does not drive the property signal to 1 at cycle " +
                 std::to_string(depth);
    return res;
  }
  res.ok = true;
  res.detail = "trace replays to bad = 1 at cycle " + std::to_string(depth);
  return res;
}

}  // namespace

CheckResult check_certificate(const Netlist& m, const Certificate& cert) {
  CheckResult res;
  if (design_hash(m) != cert.design_hash) {
    res.obligation = kObligationDesignHash;
    res.detail = "certificate was issued for a different design (hash " +
                 design_hash_hex(m) + " expected)";
    return res;
  }
  if (cert.bad >= m.size()) {
    res.obligation = kObligationFormat;
    res.detail = "property root " + std::to_string(cert.bad) +
                 " does not exist in the design";
    return res;
  }
  for (GateId r : cert.registers) {
    if (r >= m.size() || !m.is_reg(r)) {
      res.obligation = kObligationFormat;
      res.detail = "scope id " + std::to_string(r) + " is not a register";
      return res;
    }
  }
  return cert.kind == CertKind::HoldsInvariant ? check_holds(m, cert)
                                               : check_fails(m, cert);
}

}  // namespace rfn::cert
