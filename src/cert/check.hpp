#pragma once
// Independent certificate checker: discharges an rfn-cert-v1 witness
// against a re-elaborated design using only the netlist layer and the CDCL
// SAT solver — no BDDs, no model checker, none of the engines whose answer
// the witness is supposed to vouch for. This is the trust boundary of the
// whole verification service: a consumer need only trust this checker (and
// the solver under it), never the CEGAR loop.
//
// For a holds-invariant witness the invariant Inv — a conjunction of
// clauses over the abstraction's registers, every other register and every
// primary input left free (the abstraction's pseudo-input semantics) — is
// checked inductive and safe via three SAT obligations, each of which must
// be UNSAT:
//
//   initiation   init ∧ ¬Inv            (binary-initialized scope registers
//                                        pinned to their reset values)
//   consecution  Inv ∧ T ∧ ¬Inv′        (T = one copy of each scope
//                                        register's next-state cone, cut at
//                                        all register boundaries)
//   safety       Inv ∧ bad              (bad's combinational cone, cut the
//                                        same way)
//
// For a fails-trace witness the embedded trace is replayed through the SAT
// BMC encoding with every cone register's semantics enabled and the trace's
// state/input literals assumed: a Sat answer proves the design truly
// reaches bad at the trace's final cycle.
//
// A refuted obligation comes back by name together with the satisfying
// assignment over the scope registers, so a bogus witness is a diagnosis,
// not a shrug.

#include <string>

#include "cert/format.hpp"
#include "netlist/netlist.hpp"

namespace rfn::cert {

// Obligation names reported on refutation (stable strings; tests and the
// trace schema match on them).
inline constexpr const char* kObligationFormat = "format";
inline constexpr const char* kObligationDesignHash = "design-hash";
inline constexpr const char* kObligationInitiation = "initiation";
inline constexpr const char* kObligationConsecution = "consecution";
inline constexpr const char* kObligationSafety = "safety";
inline constexpr const char* kObligationTraceReplay = "trace-replay";

struct CheckResult {
  bool ok = false;
  /// Empty when ok; otherwise the failing obligation (one of the
  /// kObligation* constants above).
  std::string obligation;
  /// Human diagnostic; on a refuted SAT obligation includes the satisfying
  /// assignment over the scope registers.
  std::string detail;
};

/// Checks `cert` against design `m`. Verifies the design fingerprint first
/// (kObligationDesignHash), then the structural fit of the witness to the
/// design (kObligationFormat: property root and scope registers must exist),
/// then discharges the kind-specific obligations described above.
CheckResult check_certificate(const Netlist& m, const Certificate& cert);

}  // namespace rfn::cert
