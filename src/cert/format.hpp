#pragma once
// The `rfn-cert-v1` witness format: a self-contained, serializable proof
// artifact for a concluded property, checkable without trusting (or even
// linking) the engines that produced the verdict.
//
// Two kinds, one per verdict polarity:
//
//   * holds-invariant — an inductive invariant over the final abstraction's
//     registers, in clause form. `registers` lists the abstraction's
//     register GateIds (sorted ascending); each clause is a list of
//     DIMACS-style literals ±(index+1) into that list. The invariant is the
//     conjunction of the clauses; a state satisfies a clause when some
//     literal matches the state's value of the indexed register. Because
//     the abstraction frees every other register (netlist/subcircuit.hpp
//     pseudo-input semantics), an invariant inductive for the abstraction
//     is inductive for the design, so the three checker obligations
//     (cert/check.hpp) discharge the original property.
//
//   * fails-trace — the error trace embedded verbatim: per cycle a register
//     state cube and an input cube, signals named by design GateId.
//
// Both carry the design fingerprint (netlist/analysis.hpp design_hash) so a
// witness cannot be replayed against a different design, plus the property
// root's GateId and output name.
//
// JSON schema ("rfn-cert-v1", one object per file):
//   {"format":"rfn-cert-v1","kind":"holds-invariant|fails-trace",
//    "design":{"hash":"<16 hex>","regs":..,"inputs":..,"gates":..},
//    "property":{"name":"..","bad":..},
//    "abstraction":{"registers":[..]},        // holds-invariant only
//    "invariant":{"clauses":[[±lit,..],..]},  // holds-invariant only
//    "trace":{"steps":[{"state":[[id,0|1],..],
//                       "inputs":[[id,0|1],..]},..]}}  // fails-trace only
//
// This header deliberately depends on nothing beyond the netlist layer:
// rfn_check links it together with cert/check.hpp and the SAT solver only.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace rfn::cert {

enum class CertKind : uint8_t { HoldsInvariant, FailsTrace };

const char* cert_kind_name(CertKind k);  // "holds-invariant" / "fails-trace"

struct Certificate {
  CertKind kind = CertKind::HoldsInvariant;
  /// netlist/analysis.hpp design_hash of the design the witness is for.
  uint64_t design_hash = 0;
  /// Informational shape of that design (regs/inputs/comb gates).
  size_t design_regs = 0, design_inputs = 0, design_gates = 0;
  std::string property_name;
  GateId bad = kNullGate;

  // holds-invariant payload.
  std::vector<GateId> registers;              // sorted ascending, unique
  std::vector<std::vector<int32_t>> clauses;  // ±(index into registers + 1)

  // fails-trace payload.
  Trace trace;
};

/// Serializes to the rfn-cert-v1 JSON document (pretty-printed).
std::string to_json(const Certificate& c);

/// Strict parse + structural validation of an rfn-cert-v1 document. On
/// failure returns false and stores a one-line diagnostic in `error`
/// (missing/mistyped fields, unsorted register list, out-of-range clause
/// literals, empty clause, malformed trace, truncated JSON, ...).
bool from_json(std::string_view text, Certificate* out, std::string* error);

}  // namespace rfn::cert
