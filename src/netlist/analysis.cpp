#include "netlist/analysis.hpp"

#include <algorithm>
#include <deque>

namespace rfn {

std::vector<GateId> topo_order(const Netlist& n) {
  std::vector<GateId> order;
  order.reserve(n.size());
  std::vector<uint8_t> done(n.size(), 0);
  // Sources first.
  for (GateId g = 0; g < n.size(); ++g) {
    if (!n.is_comb(g)) {
      order.push_back(g);
      done[g] = 1;
    }
  }
  // Iterative post-order DFS over combinational gates.
  std::vector<std::pair<GateId, size_t>> stack;
  for (GateId root = 0; root < n.size(); ++root) {
    if (done[root]) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [g, next] = stack.back();
      if (done[g]) {
        stack.pop_back();
        continue;
      }
      if (next < n.fanins(g).size()) {
        const GateId f = n.fanins(g)[next++];
        if (!done[f]) stack.emplace_back(f, 0);
      } else {
        done[g] = 1;
        order.push_back(g);
        stack.pop_back();
      }
    }
  }
  return order;
}

std::vector<std::vector<GateId>> fanout_lists(const Netlist& n) {
  std::vector<std::vector<GateId>> fanouts(n.size());
  for (GateId g = 0; g < n.size(); ++g)
    for (GateId f : n.fanins(g)) fanouts[f].push_back(g);
  return fanouts;
}

std::vector<bool> comb_fanin_cone(const Netlist& n, const std::vector<GateId>& roots) {
  std::vector<bool> mask(n.size(), false);
  std::vector<GateId> stack;
  for (GateId r : roots) {
    if (!mask[r]) {
      mask[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (!n.is_comb(g)) continue;  // stop at registers / inputs / constants
    for (GateId f : n.fanins(g)) {
      if (!mask[f]) {
        mask[f] = true;
        stack.push_back(f);
      }
    }
  }
  return mask;
}

std::vector<bool> coi(const Netlist& n, const std::vector<GateId>& roots) {
  std::vector<bool> mask(n.size(), false);
  std::vector<GateId> stack;
  for (GateId r : roots) {
    if (!mask[r]) {
      mask[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId f : n.fanins(g)) {  // registers traversed through their data input
      if (f != kNullGate && !mask[f]) {
        mask[f] = true;
        stack.push_back(f);
      }
    }
  }
  return mask;
}

std::vector<GateId> coi_registers(const Netlist& n, const std::vector<GateId>& roots) {
  const std::vector<bool> mask = coi(n, roots);
  std::vector<GateId> regs;
  for (GateId r : n.regs())
    if (mask[r]) regs.push_back(r);
  return regs;
}

std::pair<size_t, size_t> count_regs_gates(const Netlist& n, const std::vector<bool>& mask) {
  size_t regs = 0, gates = 0;
  for (GateId g = 0; g < n.size(); ++g) {
    if (!mask[g]) continue;
    if (n.is_reg(g))
      ++regs;
    else if (n.is_comb(g))
      ++gates;
  }
  return {regs, gates};
}

std::vector<GateId> support_registers(const Netlist& n, const std::vector<GateId>& roots) {
  const std::vector<bool> cone = comb_fanin_cone(n, roots);
  std::vector<GateId> regs;
  for (GateId r : n.regs())
    if (cone[r]) regs.push_back(r);
  return regs;
}

std::vector<GateId> support_inputs(const Netlist& n, const std::vector<GateId>& roots) {
  const std::vector<bool> cone = comb_fanin_cone(n, roots);
  std::vector<GateId> ins;
  for (GateId i : n.inputs())
    if (cone[i]) ins.push_back(i);
  return ins;
}

std::vector<int> register_bfs_distance(const Netlist& n, const std::vector<GateId>& roots) {
  std::vector<int> dist(n.size(), -1);
  std::deque<GateId> frontier;
  for (GateId r : support_registers(n, roots)) {
    dist[r] = 1;
    frontier.push_back(r);
  }
  while (!frontier.empty()) {
    const GateId r = frontier.front();
    frontier.pop_front();
    const GateId data = n.reg_data(r);
    if (data == kNullGate) continue;
    for (GateId next : support_registers(n, {data})) {
      if (dist[next] == -1) {
        dist[next] = dist[r] + 1;
        frontier.push_back(next);
      }
    }
  }
  return dist;
}

std::vector<GateId> closest_registers(const Netlist& n, const std::vector<GateId>& roots,
                                      size_t k) {
  const std::vector<int> dist = register_bfs_distance(n, roots);
  std::vector<GateId> regs;
  for (GateId r : n.regs())
    if (dist[r] >= 0) regs.push_back(r);
  std::sort(regs.begin(), regs.end(), [&](GateId a, GateId b) {
    return dist[a] != dist[b] ? dist[a] < dist[b] : a < b;
  });
  if (regs.size() > k) regs.resize(k);
  return regs;
}

double jaccard_overlap(const std::vector<GateId>& a, const std::vector<GateId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

struct Fnv1a {
  uint64_t h = 0xCBF29CE484222325ull;

  void byte(uint8_t b) { h = (h ^ b) * 0x00000100000001B3ull; }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    for (char c : s) byte(static_cast<uint8_t>(c));
  }
};

}  // namespace

uint64_t design_hash(const Netlist& n) {
  Fnv1a f;
  f.u32(static_cast<uint32_t>(n.size()));
  for (GateId g = 0; g < n.size(); ++g) {
    const Gate& gate = n.gate(g);
    f.byte(static_cast<uint8_t>(gate.type));
    f.byte(gate.type == GateType::Reg ? static_cast<uint8_t>(gate.init) : 0);
    f.u32(static_cast<uint32_t>(gate.fanins.size()));
    for (GateId in : gate.fanins) f.u32(in);
  }
  f.u32(static_cast<uint32_t>(n.outputs().size()));
  for (const auto& [name, g] : n.outputs()) {
    f.str(name);
    f.u32(g);
  }
  return f.h;
}

std::string design_hash_hex(const Netlist& n) {
  const uint64_t h = design_hash(n);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i)
    out[15 - i] = "0123456789abcdef"[(h >> (4 * i)) & 0xF];
  return out;
}

}  // namespace rfn
