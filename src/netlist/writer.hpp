#pragma once
// Diagnostics output: DOT export for small netlists and one-line design
// statistics used in logs and EXPERIMENTS.md.

#include <string>

#include "netlist/netlist.hpp"

namespace rfn {

/// Graphviz DOT rendering. Intended for designs small enough to look at
/// (tests, documentation); large designs render but are not useful.
std::string to_dot(const Netlist& n);

/// "inputs=3 regs=5 gates=17 outputs=2" summary string.
std::string stats_line(const Netlist& n);

/// Human-readable multi-line trace dump (cycle-by-cycle states and inputs).
std::string trace_to_string(const Netlist& n, const Trace& t);

}  // namespace rfn
