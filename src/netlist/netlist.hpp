#pragma once
// Gate-level netlist: the common design representation of the whole tool.
//
// Terminology follows the paper (Section 2): a gate-level design M = (G, L)
// is a set of gates G and registers L. A *signal* is a gate output; every
// cell here produces exactly one output, so signals are identified with the
// GateId of their driver. Primary inputs are modeled as gates of type Input.
// The *transitive fanin* of a signal is the set of gates that transitively
// drive it through gates (stopping at registers and primary inputs);
// subcircuits/abstract models are built by cutting at register boundaries
// (see subcircuit.hpp).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/log.hpp"

namespace rfn {

using GateId = uint32_t;
inline constexpr GateId kNullGate = 0xFFFFFFFFu;

/// Three-valued logic constant: the simulator, ATPG implication engine and
/// register initial values all use this domain.
enum class Tri : uint8_t { F = 0, T = 1, X = 2 };

inline Tri tri_of(bool b) { return b ? Tri::T : Tri::F; }
inline char tri_char(Tri v) { return v == Tri::F ? '0' : (v == Tri::T ? '1' : 'x'); }

enum class GateType : uint8_t {
  Input,   // primary input; no fanins
  Const0,  // constant false; no fanins
  Const1,  // constant true; no fanins
  Buf,     // 1 fanin
  Not,     // 1 fanin
  And,     // >= 2 fanins
  Or,      // >= 2 fanins
  Nand,    // >= 2 fanins
  Nor,     // >= 2 fanins
  Xor,     // exactly 2 fanins
  Xnor,    // exactly 2 fanins
  Mux,     // 3 fanins: sel, d0 (sel=0), d1 (sel=1)
  Reg,     // 1 fanin: next-state data input; has an initial value
};

const char* gate_type_name(GateType t);

/// One cell (gate, register, or primary input). The cell's output signal has
/// the same id as the cell itself.
struct Gate {
  GateType type = GateType::Input;
  /// Register initial value. Tri::X means the register powers up
  /// unconstrained, i.e. the set of initial states is a cube, not a single
  /// state. Ignored for non-registers.
  Tri init = Tri::F;
  std::vector<GateId> fanins;
};

/// A literal: signal `signal` carries value `value`.
struct Literal {
  GateId signal = kNullGate;
  bool value = false;

  friend bool operator==(const Literal&, const Literal&) = default;
};

/// A cube (partial valuation of signals), kept as a flat literal list.
/// Invariant maintained by producers: no signal appears twice.
using Cube = std::vector<Literal>;

/// One step of a trace: the (possibly partial) register state at the start
/// of the cycle and the (possibly partial) input vector applied during it.
struct TraceStep {
  Cube state;
  Cube inputs;
};

/// A k-cycle trace a1,v1,a2,v2,...,ak (paper Section 2). steps[i].state is
/// a_{i+1}; steps[i].inputs is v_{i+1} (empty for the final step).
struct Trace {
  std::vector<TraceStep> steps;

  size_t cycles() const { return steps.size(); }
  bool empty() const { return steps.empty(); }
};

/// Gate-level design. Construction happens through NetBuilder (builder.hpp)
/// or the RTL frontend; analyses live in analysis.hpp / subcircuit.hpp.
class Netlist {
 public:
  Netlist() = default;

  // --- construction (used by NetBuilder / subcircuit extraction) ---

  GateId add(GateType type, std::vector<GateId> fanins = {}, Tri init = Tri::F);

  /// Rebinds a register's data input. Registers are created before their
  /// next-state logic exists (sequential loops), so the data fanin is
  /// patched in afterwards.
  void set_reg_data(GateId reg, GateId data);

  void set_name(GateId g, const std::string& name);
  /// Marks a signal as a design output (observable point / property signal).
  void add_output(const std::string& name, GateId g);

  // --- structure access ---

  size_t size() const { return gates_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }
  GateType type(GateId g) const { return gates_[g].type; }
  const std::vector<GateId>& fanins(GateId g) const { return gates_[g].fanins; }

  bool is_input(GateId g) const { return gates_[g].type == GateType::Input; }
  bool is_reg(GateId g) const { return gates_[g].type == GateType::Reg; }
  bool is_const(GateId g) const {
    return gates_[g].type == GateType::Const0 || gates_[g].type == GateType::Const1;
  }
  /// Combinational gate: not an input, register, or constant.
  bool is_comb(GateId g) const { return !is_input(g) && !is_reg(g) && !is_const(g); }

  GateId reg_data(GateId reg) const {
    RFN_CHECK(is_reg(reg), "gate %u is not a register", reg);
    return gates_[reg].fanins[0];
  }
  Tri reg_init(GateId reg) const {
    RFN_CHECK(is_reg(reg), "gate %u is not a register", reg);
    return gates_[reg].init;
  }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& regs() const { return regs_; }

  size_t num_inputs() const { return inputs_.size(); }
  size_t num_regs() const { return regs_.size(); }
  /// Number of combinational gates (excludes inputs, registers, constants).
  size_t num_gates() const;

  // --- names and outputs ---

  const std::string& name(GateId g) const;
  bool has_name(GateId g) const;
  /// Returns kNullGate when no signal has this name.
  GateId find(const std::string& name) const;

  const std::vector<std::pair<std::string, GateId>>& outputs() const { return outputs_; }
  /// Looks up a design output by name; kNullGate if absent.
  GateId output(const std::string& name) const;

  /// Validates structural invariants (arities, fanin validity, acyclicity of
  /// combinational logic). Aborts with a diagnostic on violation; call after
  /// construction in tests and frontends.
  void check() const;

 private:
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> regs_;
  std::unordered_map<GateId, std::string> names_;
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<std::pair<std::string, GateId>> outputs_;
};

/// Evaluates one gate over three-valued fanin values (X-pessimistic, i.e.
/// controlling values dominate X; see sim3.cpp for the simulator built on
/// this). `vals` must supply values for all fanins. Not meaningful for
/// Input/Reg (their values come from the environment/state).
Tri eval_gate3(GateType type, const Tri* vals, size_t n);

/// Convenience: evaluates a gate over binary fanin values.
bool eval_gate2(GateType type, const bool* vals, size_t n);

// --- Cube helpers (used by ATPG, the trace engines, and refinement) ---

/// Looks up a signal's value in a cube; Tri::X if unassigned.
Tri cube_lookup(const Cube& c, GateId signal);

/// Adds `lit` to the cube. Returns false (cube unchanged) on conflict with
/// an existing opposite-polarity literal; true otherwise (duplicate
/// same-polarity literals are not re-added).
bool cube_add(Cube& c, Literal lit);

/// True when every literal of `sub` appears in `sup` with the same polarity.
bool cube_subsumes(const Cube& sup, const Cube& sub);

std::string cube_to_string(const Netlist& n, const Cube& c);

}  // namespace rfn
