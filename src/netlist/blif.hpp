#pragma once
// BLIF (Berkeley Logic Interchange Format) reader/writer.
//
// The bridge to the rest of the open-source EDA world: designs can be
// exported for inspection with ABC/SIS-family tools, and gate-level BLIF
// produced elsewhere can be verified with RFN. The subset covers what
// sequential gate-level designs need: one .model with .inputs/.outputs,
// .latch (with initial values 0/1/2/3 — 2 and 3 map to an unconstrained
// power-up), and single-output .names with ON-set covers.

#include <string>

#include "netlist/netlist.hpp"

namespace rfn {

/// Serializes the netlist as BLIF. Every cell gets a stable name (its
/// design name when present, otherwise n<id>).
std::string write_blif(const Netlist& n, const std::string& model_name = "rfn");

/// Parses a BLIF model into a netlist. Covers become OR-of-AND networks;
/// latches become registers. Aborts with a diagnostic on malformed input.
Netlist read_blif(const std::string& text);

}  // namespace rfn
