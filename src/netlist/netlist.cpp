#include "netlist/netlist.hpp"

#include <algorithm>

namespace rfn {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::Input: return "input";
    case GateType::Const0: return "const0";
    case GateType::Const1: return "const1";
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Or: return "or";
    case GateType::Nand: return "nand";
    case GateType::Nor: return "nor";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Mux: return "mux";
    case GateType::Reg: return "reg";
  }
  return "?";
}

namespace {

bool arity_ok(GateType t, size_t n) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return n == 0;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Reg:
      return n == 1;
    case GateType::And:
    case GateType::Or:
    case GateType::Nand:
    case GateType::Nor:
      return n >= 2;
    case GateType::Xor:
    case GateType::Xnor:
      return n == 2;
    case GateType::Mux:
      return n == 3;
  }
  return false;
}

}  // namespace

GateId Netlist::add(GateType type, std::vector<GateId> fanins, Tri init) {
  // Registers may be created with a placeholder data input (kNullGate) that
  // is patched later via set_reg_data; everything else must be fully wired.
  if (type == GateType::Reg && fanins.empty()) fanins.push_back(kNullGate);
  RFN_CHECK(arity_ok(type, fanins.size()), "bad arity %zu for %s", fanins.size(),
            gate_type_name(type));
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.init = type == GateType::Reg ? init : Tri::F;
  g.fanins = std::move(fanins);
  gates_.push_back(std::move(g));
  if (type == GateType::Input) inputs_.push_back(id);
  if (type == GateType::Reg) regs_.push_back(id);
  return id;
}

void Netlist::set_reg_data(GateId reg, GateId data) {
  RFN_CHECK(is_reg(reg), "set_reg_data on non-register %u", reg);
  RFN_CHECK(data < gates_.size(), "dangling data fanin %u", data);
  gates_[reg].fanins[0] = data;
}

void Netlist::set_name(GateId g, const std::string& name) {
  names_[g] = name;
  by_name_[name] = g;
}

void Netlist::add_output(const std::string& name, GateId g) {
  RFN_CHECK(g < gates_.size(), "output %s references dangling gate", name.c_str());
  outputs_.emplace_back(name, g);
  // Give the gate the output's name only if it has none: a register named
  // "state" exported as output "p" keeps its own name.
  if (by_name_.find(name) == by_name_.end() && !has_name(g)) set_name(g, name);
}

size_t Netlist::num_gates() const {
  size_t n = 0;
  for (GateId g = 0; g < gates_.size(); ++g)
    if (is_comb(g)) ++n;
  return n;
}

const std::string& Netlist::name(GateId g) const {
  static const std::string empty;
  const auto it = names_.find(g);
  return it == names_.end() ? empty : it->second;
}

bool Netlist::has_name(GateId g) const { return names_.count(g) > 0; }

GateId Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNullGate : it->second;
}

GateId Netlist::output(const std::string& name) const {
  for (const auto& [n, g] : outputs_)
    if (n == name) return g;
  return kNullGate;
}

void Netlist::check() const {
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    RFN_CHECK(arity_ok(gate.type, gate.fanins.size()), "gate %u (%s) has arity %zu", g,
              gate_type_name(gate.type), gate.fanins.size());
    for (GateId f : gate.fanins)
      RFN_CHECK(f < gates_.size(), "gate %u has dangling fanin %u", g, f);
  }
  // Combinational acyclicity via iterative DFS over comb gates only
  // (register data inputs break the cycles by construction: we do not
  // traverse *through* a register's output here, we start from every gate).
  enum : uint8_t { White, Grey, Black };
  std::vector<uint8_t> color(gates_.size(), White);
  std::vector<std::pair<GateId, size_t>> stack;
  for (GateId root = 0; root < gates_.size(); ++root) {
    if (color[root] != White || !is_comb(root)) continue;
    stack.emplace_back(root, 0);
    color[root] = Grey;
    while (!stack.empty()) {
      auto& [g, next] = stack.back();
      if (next < gates_[g].fanins.size()) {
        const GateId f = gates_[g].fanins[next++];
        if (!is_comb(f)) continue;
        RFN_CHECK(color[f] != Grey, "combinational cycle through gate %u", f);
        if (color[f] == White) {
          color[f] = Grey;
          stack.emplace_back(f, 0);
        }
      } else {
        color[g] = Black;
        stack.pop_back();
      }
    }
  }
}

Tri eval_gate3(GateType type, const Tri* vals, size_t n) {
  auto and_all = [&]() {
    bool any_x = false;
    for (size_t i = 0; i < n; ++i) {
      if (vals[i] == Tri::F) return Tri::F;
      any_x |= vals[i] == Tri::X;
    }
    return any_x ? Tri::X : Tri::T;
  };
  auto or_all = [&]() {
    bool any_x = false;
    for (size_t i = 0; i < n; ++i) {
      if (vals[i] == Tri::T) return Tri::T;
      any_x |= vals[i] == Tri::X;
    }
    return any_x ? Tri::X : Tri::F;
  };
  auto neg = [](Tri v) { return v == Tri::X ? Tri::X : (v == Tri::T ? Tri::F : Tri::T); };

  switch (type) {
    case GateType::Const0: return Tri::F;
    case GateType::Const1: return Tri::T;
    case GateType::Buf: return vals[0];
    case GateType::Not: return neg(vals[0]);
    case GateType::And: return and_all();
    case GateType::Or: return or_all();
    case GateType::Nand: return neg(and_all());
    case GateType::Nor: return neg(or_all());
    case GateType::Xor:
      if (vals[0] == Tri::X || vals[1] == Tri::X) return Tri::X;
      return tri_of(vals[0] != vals[1]);
    case GateType::Xnor:
      if (vals[0] == Tri::X || vals[1] == Tri::X) return Tri::X;
      return tri_of(vals[0] == vals[1]);
    case GateType::Mux:
      // X-optimistic mux: if both data inputs agree on a binary value, the
      // select being X does not matter. This tightens 3-valued simulation
      // without losing conservatism.
      if (vals[0] == Tri::F) return vals[1];
      if (vals[0] == Tri::T) return vals[2];
      if (vals[1] == vals[2] && vals[1] != Tri::X) return vals[1];
      return Tri::X;
    case GateType::Input:
    case GateType::Reg:
      break;
  }
  fatal("eval_gate3 on input/register");
}

bool eval_gate2(GateType type, const bool* vals, size_t n) {
  Tri tmp[3];
  RFN_CHECK(n <= 3 || type == GateType::And || type == GateType::Or ||
                type == GateType::Nand || type == GateType::Nor,
            "eval_gate2 arity");
  if (n <= 3) {
    for (size_t i = 0; i < n; ++i) tmp[i] = tri_of(vals[i]);
    return eval_gate3(type, tmp, n) == Tri::T;
  }
  // Wide and/or/nand/nor.
  bool acc = (type == GateType::And || type == GateType::Nand);
  for (size_t i = 0; i < n; ++i) {
    if (type == GateType::And || type == GateType::Nand)
      acc = acc && vals[i];
    else
      acc = acc || vals[i];
  }
  if (type == GateType::Nand || type == GateType::Nor) acc = !acc;
  return acc;
}

Tri cube_lookup(const Cube& c, GateId signal) {
  for (const Literal& lit : c)
    if (lit.signal == signal) return tri_of(lit.value);
  return Tri::X;
}

bool cube_add(Cube& c, Literal lit) {
  for (const Literal& existing : c) {
    if (existing.signal == lit.signal) return existing.value == lit.value;
  }
  c.push_back(lit);
  return true;
}

bool cube_subsumes(const Cube& sup, const Cube& sub) {
  return std::all_of(sub.begin(), sub.end(), [&](const Literal& lit) {
    return cube_lookup(sup, lit.signal) == tri_of(lit.value);
  });
}

std::string cube_to_string(const Netlist& n, const Cube& c) {
  std::string out = "{";
  for (size_t i = 0; i < c.size(); ++i) {
    if (i) out += ", ";
    if (n.has_name(c[i].signal))
      out += n.name(c[i].signal);
    else
      out += "g" + std::to_string(c[i].signal);
    out += c[i].value ? "=1" : "=0";
  }
  out += "}";
  return out;
}

}  // namespace rfn
