#pragma once
// Subcircuit / abstract-model extraction (Step 1 of RFN).
//
// An abstract model N of a design M is the subcircuit containing a chosen
// set of *included registers*, their transitive fanin cones up to register
// outputs, and the fanin cones of the property signals. Registers of M that
// feed the subcircuit but are not included become fresh primary inputs of N
// ("primary inputs of N but register outputs of M" in the paper's Figure 1).
// Because those pseudo-inputs are unconstrained in N, N over-approximates M:
// a property True on N is True on M.

#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace rfn {

class Subcircuit {
 public:
  /// The extracted gate-level design N.
  Netlist net;

  /// new GateId -> original GateId.
  std::vector<GateId> old_of_new;

  /// Primary inputs of N that are register outputs of M (new ids). These are
  /// the refinement candidates of Step 4.
  std::vector<GateId> pseudo_inputs;

  /// Original ids of the registers kept in N (the "included" set).
  std::vector<GateId> kept_regs_old;

  GateId to_new(GateId old) const {
    const auto it = new_of_old_.find(old);
    return it == new_of_old_.end() ? kNullGate : it->second;
  }
  GateId to_old(GateId nw) const { return old_of_new[nw]; }
  bool contains_old(GateId old) const { return new_of_old_.count(old) > 0; }

  /// Translates a cube over N's signals to the corresponding cube over M's
  /// signals (all N signals map to M signals by construction).
  Cube cube_to_old(const Cube& c) const;
  /// Translates a cube over M's signals, dropping literals on signals absent
  /// from N.
  Cube cube_to_new(const Cube& c) const;
  Trace trace_to_old(const Trace& t) const;

  std::unordered_map<GateId, GateId> new_of_old_;  // filled by extract
};

/// Builds the abstract model containing `included_regs` (original register
/// ids) plus the combinational fanin cones of `property_roots` and of the
/// included registers' data inputs. Signal names and outputs present in the
/// cone are carried over.
Subcircuit extract_abstract_model(const Netlist& m,
                                  const std::vector<GateId>& property_roots,
                                  const std::vector<GateId>& included_regs);

/// Cone-of-influence reduction: the abstract model whose included registers
/// are all registers in the COI of the roots. The result has no
/// pseudo-inputs and is trace-equivalent to M w.r.t. the roots.
Subcircuit coi_reduce(const Netlist& m, const std::vector<GateId>& property_roots);

/// Generalized extraction with an arbitrary signal cut: the backward
/// traversal from `roots` stops at `cut_signals` (which become primary
/// inputs of the result, recorded in pseudo_inputs), at registers (which are
/// kept as registers, with their data cones included), and at the primary
/// inputs/constants of `m`. Used to build the min-cut design MC (paper
/// Section 2.2), whose primary inputs are internal signals of the abstract
/// model.
Subcircuit extract_with_cut(const Netlist& m, const std::vector<GateId>& roots,
                            const std::vector<GateId>& cut_signals);

/// Appends a disjunction gate over `signals` to `n` (a Buf for a single
/// signal) and names it `name`; returns the new root. Existing gate ids are
/// untouched, so state/input cubes, traces, and saved variable orders of the
/// original design remain valid on the extended one — the property a batch
/// session relies on when it answers a cone cluster through one
/// "any property fails" root and maps the artifacts back per property.
GateId append_disjunction(Netlist& n, const std::vector<GateId>& signals,
                          const std::string& name);

}  // namespace rfn
