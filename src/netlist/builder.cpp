#include "netlist/builder.hpp"

#include <algorithm>

namespace rfn {

Netlist NetBuilder::take() {
  n_.check();
  strash_.clear();
  const0_ = const1_ = kNullGate;
  return std::move(n_);
}

GateId NetBuilder::input(const std::string& name) {
  const GateId g = n_.add(GateType::Input);
  if (!name.empty()) n_.set_name(g, name);
  return g;
}

GateId NetBuilder::constant(bool value) {
  GateId& cache = value ? const1_ : const0_;
  if (cache == kNullGate) cache = n_.add(value ? GateType::Const1 : GateType::Const0);
  return cache;
}

GateId NetBuilder::reg(const std::string& name, Tri init) {
  const GateId g = n_.add(GateType::Reg, {}, init);
  if (!name.empty()) n_.set_name(g, name);
  return g;
}

GateId NetBuilder::unary(GateType t, GateId a) {
  // Constant folding and double-negation elimination.
  if (t == GateType::Buf) return a;
  if (t == GateType::Not) {
    if (a == const0_ && const0_ != kNullGate) return constant(true);
    if (a == const1_ && const1_ != kNullGate) return constant(false);
    if (n_.type(a) == GateType::Not) return n_.fanins(a)[0];
  }
  const Key key{t, a, kNullGate, kNullGate};
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  const GateId g = n_.add(t, {a});
  strash_.emplace(key, g);
  return g;
}

GateId NetBuilder::binary(GateType t, GateId a, GateId b) {
  const bool commutative = t != GateType::Mux;
  if (commutative && a > b) std::swap(a, b);
  // Constant and trivial-operand folding for the common connectives.
  const bool a0 = a == const0_ && const0_ != kNullGate;
  const bool a1 = a == const1_ && const1_ != kNullGate;
  const bool b0 = b == const0_ && const0_ != kNullGate;
  const bool b1 = b == const1_ && const1_ != kNullGate;
  switch (t) {
    case GateType::And:
      if (a0 || b0) return constant(false);
      if (a1) return b;
      if (b1) return a;
      if (a == b) return a;
      break;
    case GateType::Or:
      if (a1 || b1) return constant(true);
      if (a0) return b;
      if (b0) return a;
      if (a == b) return a;
      break;
    case GateType::Xor:
      if (a0) return b;
      if (b0) return a;
      if (a1) return unary(GateType::Not, b);
      if (b1) return unary(GateType::Not, a);
      if (a == b) return constant(false);
      break;
    case GateType::Xnor:
      if (a0) return unary(GateType::Not, b);
      if (b0) return unary(GateType::Not, a);
      if (a1) return b;
      if (b1) return a;
      if (a == b) return constant(true);
      break;
    case GateType::Nand:
      return unary(GateType::Not, binary(GateType::And, a, b));
    case GateType::Nor:
      return unary(GateType::Not, binary(GateType::Or, a, b));
    default:
      break;
  }
  const Key key{t, a, b, kNullGate};
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  const GateId g = n_.add(t, {a, b});
  strash_.emplace(key, g);
  return g;
}

GateId NetBuilder::buf(GateId a) { return unary(GateType::Buf, a); }
GateId NetBuilder::not_(GateId a) { return unary(GateType::Not, a); }
GateId NetBuilder::and_(GateId a, GateId b) { return binary(GateType::And, a, b); }
GateId NetBuilder::or_(GateId a, GateId b) { return binary(GateType::Or, a, b); }
GateId NetBuilder::nand_(GateId a, GateId b) { return binary(GateType::Nand, a, b); }
GateId NetBuilder::nor_(GateId a, GateId b) { return binary(GateType::Nor, a, b); }
GateId NetBuilder::xor_(GateId a, GateId b) { return binary(GateType::Xor, a, b); }
GateId NetBuilder::xnor_(GateId a, GateId b) { return binary(GateType::Xnor, a, b); }

GateId NetBuilder::mux(GateId sel, GateId d0, GateId d1) {
  if (d0 == d1) return d0;
  const bool s0 = sel == const0_ && const0_ != kNullGate;
  const bool s1 = sel == const1_ && const1_ != kNullGate;
  if (s0) return d0;
  if (s1) return d1;
  const Key key{GateType::Mux, sel, d0, d1};
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  const GateId g = n_.add(GateType::Mux, {sel, d0, d1});
  strash_.emplace(key, g);
  return g;
}

GateId NetBuilder::and_n(const std::vector<GateId>& xs) {
  RFN_CHECK(!xs.empty(), "and_n of empty list");
  GateId acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = and_(acc, xs[i]);
  return acc;
}

GateId NetBuilder::or_n(const std::vector<GateId>& xs) {
  RFN_CHECK(!xs.empty(), "or_n of empty list");
  GateId acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = or_(acc, xs[i]);
  return acc;
}

Word NetBuilder::input_word(const std::string& name, size_t width) {
  Word w(width);
  for (size_t i = 0; i < width; ++i) w[i] = input(name + "[" + std::to_string(i) + "]");
  return w;
}

Word NetBuilder::reg_word(const std::string& name, size_t width, uint64_t init) {
  Word w(width);
  for (size_t i = 0; i < width; ++i)
    w[i] = reg(name + "[" + std::to_string(i) + "]", tri_of((init >> i) & 1));
  return w;
}

void NetBuilder::set_next_word(const Word& regs, const Word& data) {
  RFN_CHECK(regs.size() == data.size(), "width mismatch %zu vs %zu", regs.size(),
            data.size());
  for (size_t i = 0; i < regs.size(); ++i) set_next(regs[i], data[i]);
}

Word NetBuilder::constant_word(uint64_t value, size_t width) {
  Word w(width);
  for (size_t i = 0; i < width; ++i) w[i] = constant((value >> i) & 1);
  return w;
}

Word NetBuilder::not_word(const Word& a) {
  Word w(a.size());
  for (size_t i = 0; i < a.size(); ++i) w[i] = not_(a[i]);
  return w;
}

Word NetBuilder::and_word(const Word& a, const Word& b) {
  RFN_CHECK(a.size() == b.size(), "width mismatch");
  Word w(a.size());
  for (size_t i = 0; i < a.size(); ++i) w[i] = and_(a[i], b[i]);
  return w;
}

Word NetBuilder::or_word(const Word& a, const Word& b) {
  RFN_CHECK(a.size() == b.size(), "width mismatch");
  Word w(a.size());
  for (size_t i = 0; i < a.size(); ++i) w[i] = or_(a[i], b[i]);
  return w;
}

Word NetBuilder::xor_word(const Word& a, const Word& b) {
  RFN_CHECK(a.size() == b.size(), "width mismatch");
  Word w(a.size());
  for (size_t i = 0; i < a.size(); ++i) w[i] = xor_(a[i], b[i]);
  return w;
}

Word NetBuilder::mux_word(GateId sel, const Word& d0, const Word& d1) {
  RFN_CHECK(d0.size() == d1.size(), "width mismatch");
  Word w(d0.size());
  for (size_t i = 0; i < d0.size(); ++i) w[i] = mux(sel, d0[i], d1[i]);
  return w;
}

Word NetBuilder::add_word(const Word& a, const Word& b, GateId carry_in) {
  RFN_CHECK(a.size() == b.size(), "width mismatch");
  Word sum(a.size());
  GateId carry = carry_in == kNullGate ? constant(false) : carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    const GateId axb = xor_(a[i], b[i]);
    sum[i] = xor_(axb, carry);
    carry = or_(and_(a[i], b[i]), and_(axb, carry));
  }
  return sum;
}

Word NetBuilder::sub_word(const Word& a, const Word& b) {
  // a - b == a + ~b + 1
  return add_word(a, not_word(b), constant(true));
}

Word NetBuilder::inc_word(const Word& a) {
  return add_word(a, constant_word(0, a.size()), constant(true));
}

Word NetBuilder::dec_word(const Word& a) {
  return sub_word(a, constant_word(1, a.size()));
}

GateId NetBuilder::eq_word(const Word& a, const Word& b) {
  RFN_CHECK(a.size() == b.size(), "width mismatch");
  std::vector<GateId> bits(a.size());
  for (size_t i = 0; i < a.size(); ++i) bits[i] = xnor_(a[i], b[i]);
  return and_n(bits);
}

GateId NetBuilder::eq_const(const Word& a, uint64_t value) {
  std::vector<GateId> bits(a.size());
  for (size_t i = 0; i < a.size(); ++i)
    bits[i] = ((value >> i) & 1) ? a[i] : not_(a[i]);
  return and_n(bits);
}

GateId NetBuilder::lt_word(const Word& a, const Word& b) {
  RFN_CHECK(a.size() == b.size(), "width mismatch");
  // MSB-first comparison chain: lt_i = (!a_i & b_i) | (a_i==b_i) & lt_{i-1}
  GateId lt = constant(false);
  for (size_t i = 0; i < a.size(); ++i) {
    lt = or_(and_(not_(a[i]), b[i]), and_(xnor_(a[i], b[i]), lt));
  }
  return lt;
}

Word NetBuilder::decode(const Word& a) {
  RFN_CHECK(a.size() <= 16, "decode of %zu-bit word", a.size());
  Word out(size_t{1} << a.size());
  for (size_t v = 0; v < out.size(); ++v) out[v] = eq_const(a, v);
  return out;
}

}  // namespace rfn
