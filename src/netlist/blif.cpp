#include "netlist/blif.hpp"

#include <map>
#include <set>
#include <sstream>

#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"
#include "util/log.hpp"

namespace rfn {

namespace {

std::string blif_name(const Netlist& n, GateId g) {
  if (n.has_name(g)) {
    // BLIF tokens are whitespace-delimited; our names never contain spaces.
    return n.name(g);
  }
  return "n" + std::to_string(g);
}

}  // namespace

std::string write_blif(const Netlist& n, const std::string& model_name) {
  std::ostringstream out;
  out << ".model " << model_name << "\n";

  out << ".inputs";
  for (GateId i : n.inputs()) out << " " << blif_name(n, i);
  out << "\n";

  // Outputs are exported under their *output* names; when that differs from
  // the driving gate's own name, a buffer cover aliases the two.
  std::vector<std::pair<std::string, std::string>> aliases;  // gate -> output
  out << ".outputs";
  if (n.outputs().empty()) {
    // BLIF requires outputs; export every register as an implicit observable
    // when the design declares none.
    for (GateId r : n.regs()) out << " " << blif_name(n, r);
  } else {
    for (const auto& [name, g] : n.outputs()) {
      out << " " << name;
      if (name != blif_name(n, g)) aliases.emplace_back(blif_name(n, g), name);
    }
  }
  out << "\n";
  for (const auto& [gate, output] : aliases)
    out << ".names " << gate << " " << output << "\n1 1\n";

  for (GateId r : n.regs()) {
    // .latch <data-in> <output> [<type> <control>] <init>
    const char init = n.reg_init(r) == Tri::F ? '0' : (n.reg_init(r) == Tri::T ? '1' : '3');
    out << ".latch " << blif_name(n, n.reg_data(r)) << " " << blif_name(n, r) << " re clk "
        << init << "\n";
  }

  for (GateId g = 0; g < n.size(); ++g) {
    if (!n.is_comb(g) && !n.is_const(g)) continue;
    out << ".names";
    for (GateId f : n.fanins(g)) out << " " << blif_name(n, f);
    out << " " << blif_name(n, g) << "\n";
    const size_t k = n.fanins(g).size();
    switch (n.type(g)) {
      case GateType::Const0:
        break;  // empty ON-set
      case GateType::Const1:
        out << "1\n";
        break;
      case GateType::Buf:
        out << "1 1\n";
        break;
      case GateType::Not:
        out << "0 1\n";
        break;
      case GateType::And:
        out << std::string(k, '1') << " 1\n";
        break;
      case GateType::Nand:
        for (size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '0';
          out << row << " 1\n";
        }
        break;
      case GateType::Or:
        for (size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '1';
          out << row << " 1\n";
        }
        break;
      case GateType::Nor:
        out << std::string(k, '0') << " 1\n";
        break;
      case GateType::Xor:
        out << "01 1\n10 1\n";
        break;
      case GateType::Xnor:
        out << "00 1\n11 1\n";
        break;
      case GateType::Mux:
        // fanins: sel d0 d1; ON: sel=0 & d0, sel=1 & d1.
        out << "01- 1\n1-1 1\n";
        break;
      case GateType::Input:
      case GateType::Reg:
        break;
    }
  }
  out << ".end\n";
  return out.str();
}

namespace {

struct BlifCover {
  std::vector<std::string> fanins;
  std::string output;
  std::vector<std::string> rows;  // "<input pattern> <output bit>"
  int line = 0;
};

}  // namespace

Netlist read_blif(const std::string& text) {
  // Tokenize into logical lines (handling '\' continuations and comments).
  std::vector<std::pair<int, std::string>> lines;
  {
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    std::string pending;
    int pending_line = 0;
    while (std::getline(in, raw)) {
      ++lineno;
      const size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      // Trim.
      while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ' || raw.back() == '\t'))
        raw.pop_back();
      size_t start = raw.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      std::string body = raw.substr(start);
      const bool continued = !body.empty() && body.back() == '\\';
      if (continued) body.pop_back();
      if (pending.empty()) pending_line = lineno;
      pending += body + (continued ? " " : "");
      if (!continued) {
        lines.emplace_back(pending_line, pending);
        pending.clear();
      }
    }
    RFN_CHECK(pending.empty(), "BLIF ends inside a continued line");
  }

  auto split = [](const std::string& s) {
    std::vector<std::string> toks;
    std::istringstream in(s);
    std::string t;
    while (in >> t) toks.push_back(t);
    return toks;
  };

  std::vector<std::string> inputs, outputs;
  struct Latch {
    std::string data, out;
    Tri init;
    int line;
  };
  std::vector<Latch> latches;
  std::vector<BlifCover> covers;

  // Pass 1: structure.
  for (size_t li = 0; li < lines.size(); ++li) {
    const auto& [lineno, line] = lines[li];
    const std::vector<std::string> toks = split(line);
    if (toks.empty()) continue;
    if (toks[0] == ".model" || toks[0] == ".end") continue;
    if (toks[0] == ".inputs") {
      inputs.insert(inputs.end(), toks.begin() + 1, toks.end());
    } else if (toks[0] == ".outputs") {
      outputs.insert(outputs.end(), toks.begin() + 1, toks.end());
    } else if (toks[0] == ".latch") {
      RFN_CHECK(toks.size() >= 3, "line %d: malformed .latch", lineno);
      Latch l;
      l.data = toks[1];
      l.out = toks[2];
      l.line = lineno;
      // Optional "<type> <control>" pair before the init value.
      const std::string init_tok = toks.size() >= 4 ? toks.back() : "3";
      l.init = init_tok == "0" ? Tri::F : (init_tok == "1" ? Tri::T : Tri::X);
      latches.push_back(std::move(l));
    } else if (toks[0] == ".names") {
      BlifCover c;
      c.line = lineno;
      RFN_CHECK(toks.size() >= 2, "line %d: malformed .names", lineno);
      c.output = toks.back();
      c.fanins.assign(toks.begin() + 1, toks.end() - 1);
      // Consume the cover rows that follow.
      while (li + 1 < lines.size() && lines[li + 1].second[0] != '.') {
        c.rows.push_back(lines[++li].second);
      }
      covers.push_back(std::move(c));
    } else {
      fatal(detail::format("line %d: unsupported BLIF construct '%s'", lineno,
                           toks[0].c_str()));
    }
  }

  // Pass 2: build. Latch outputs and inputs are sources; covers are built
  // on demand (recursively) so declaration order does not matter.
  NetBuilder b;
  std::map<std::string, GateId> sig;
  std::map<std::string, const BlifCover*> cover_of;
  for (const BlifCover& c : covers) {
    RFN_CHECK(cover_of.emplace(c.output, &c).second, "line %d: '%s' multiply defined",
              c.line, c.output.c_str());
  }
  for (const std::string& name : inputs) sig[name] = b.input(name);
  for (const Latch& l : latches) {
    RFN_CHECK(sig.find(l.out) == sig.end(), "line %d: latch output redefined", l.line);
    sig[l.out] = b.reg(l.out, l.init);
  }

  std::set<std::string> resolving;
  auto resolve = [&](auto&& self, const std::string& name) -> GateId {
    const auto it = sig.find(name);
    if (it != sig.end()) return it->second;
    const auto cit = cover_of.find(name);
    RFN_CHECK(cit != cover_of.end(), "signal '%s' has no driver", name.c_str());
    RFN_CHECK(resolving.insert(name).second, "combinational cycle through '%s'",
              name.c_str());
    const BlifCover& c = *cit->second;
    std::vector<GateId> fin;
    fin.reserve(c.fanins.size());
    for (const std::string& f : c.fanins) fin.push_back(self(self, f));
    // ON-set cover -> OR of AND terms. Empty cover = const0; a row with an
    // empty input pattern = const1.
    GateId acc = b.constant(false);
    for (const std::string& row : c.rows) {
      const std::vector<std::string> parts = split(row);
      RFN_CHECK(!parts.empty(), "line %d: empty cover row", c.line);
      const std::string& out_bit = parts.back();
      RFN_CHECK(out_bit == "1", "line %d: only ON-set covers supported", c.line);
      const std::string pattern = parts.size() >= 2 ? parts[0] : "";
      RFN_CHECK(pattern.size() == fin.size(), "line %d: pattern width mismatch",
                c.line);
      GateId term = b.constant(true);
      for (size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i] == '1')
          term = b.and_(term, fin[i]);
        else if (pattern[i] == '0')
          term = b.and_(term, b.not_(fin[i]));
        else
          RFN_CHECK(pattern[i] == '-', "line %d: bad cover character '%c'", c.line,
                    pattern[i]);
      }
      acc = b.or_(acc, term);
    }
    resolving.erase(name);
    sig[name] = acc;
    return acc;
  };

  for (const Latch& l : latches) b.set_next(sig.at(l.out), resolve(resolve, l.data));
  for (const std::string& name : outputs) b.output(name, resolve(resolve, name));
  return b.take();
}

}  // namespace rfn
