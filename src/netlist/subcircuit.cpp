#include "netlist/subcircuit.hpp"

#include <algorithm>

#include "netlist/analysis.hpp"

namespace rfn {

Cube Subcircuit::cube_to_old(const Cube& c) const {
  Cube out;
  out.reserve(c.size());
  for (const Literal& lit : c) out.push_back({to_old(lit.signal), lit.value});
  return out;
}

Cube Subcircuit::cube_to_new(const Cube& c) const {
  Cube out;
  for (const Literal& lit : c) {
    const GateId nw = to_new(lit.signal);
    if (nw != kNullGate) out.push_back({nw, lit.value});
  }
  return out;
}

Trace Subcircuit::trace_to_old(const Trace& t) const {
  Trace out;
  out.steps.reserve(t.steps.size());
  for (const TraceStep& step : t.steps)
    out.steps.push_back({cube_to_old(step.state), cube_to_old(step.inputs)});
  return out;
}

Subcircuit extract_abstract_model(const Netlist& m,
                                  const std::vector<GateId>& property_roots,
                                  const std::vector<GateId>& included_regs) {
  std::vector<bool> included(m.size(), false);
  for (GateId r : included_regs) {
    RFN_CHECK(m.is_reg(r), "included gate %u is not a register", r);
    included[r] = true;
  }

  // Roots of the combinational cone: the property signals plus the data
  // inputs of every included register.
  std::vector<GateId> roots = property_roots;
  for (GateId r : included_regs) roots.push_back(m.reg_data(r));
  std::vector<bool> cone = comb_fanin_cone(m, roots);
  // Included registers belong to N even if nothing in the cone reads them.
  for (GateId r : included_regs) cone[r] = true;

  Subcircuit sub;
  auto map_new = [&](GateId old, GateId nw) {
    sub.new_of_old_.emplace(old, nw);
    RFN_CHECK(sub.old_of_new.size() == nw, "non-contiguous new ids");
    sub.old_of_new.push_back(old);
    if (m.has_name(old)) sub.net.set_name(nw, m.name(old));
  };

  // Pass 1: create all sources (inputs, constants, registers) so that
  // combinational gates can reference them, and register data inputs can be
  // patched after pass 2.
  for (GateId g = 0; g < m.size(); ++g) {
    if (!cone[g]) continue;
    if (m.is_input(g)) {
      map_new(g, sub.net.add(GateType::Input));
    } else if (m.is_const(g)) {
      map_new(g, sub.net.add(m.type(g)));
    } else if (m.is_reg(g)) {
      if (included[g]) {
        const GateId nw = sub.net.add(GateType::Reg, {}, m.reg_init(g));
        map_new(g, nw);
        sub.kept_regs_old.push_back(g);
      } else {
        // Cut register: becomes a pseudo primary input of N.
        const GateId nw = sub.net.add(GateType::Input);
        map_new(g, nw);
        sub.pseudo_inputs.push_back(nw);
      }
    }
  }

  // Pass 2: combinational gates in topological order.
  for (GateId g : topo_order(m)) {
    if (!cone[g] || !m.is_comb(g)) continue;
    std::vector<GateId> fanins;
    fanins.reserve(m.fanins(g).size());
    for (GateId f : m.fanins(g)) {
      const GateId nf = sub.to_new(f);
      RFN_CHECK(nf != kNullGate, "cone gate %u has unmapped fanin %u", g, f);
      fanins.push_back(nf);
    }
    map_new(g, sub.net.add(m.type(g), std::move(fanins)));
  }

  // Pass 3: patch register data inputs.
  for (GateId r : sub.kept_regs_old) {
    const GateId data_old = m.reg_data(r);
    const GateId data_new = sub.to_new(data_old);
    RFN_CHECK(data_new != kNullGate, "register %u data cone missing", r);
    sub.net.set_reg_data(sub.to_new(r), data_new);
  }

  // Carry over design outputs that survived.
  for (const auto& [name, g] : m.outputs()) {
    const GateId nw = sub.to_new(g);
    if (nw != kNullGate) sub.net.add_output(name, nw);
  }

  sub.net.check();
  return sub;
}

Subcircuit coi_reduce(const Netlist& m, const std::vector<GateId>& property_roots) {
  return extract_abstract_model(m, property_roots, coi_registers(m, property_roots));
}

Subcircuit extract_with_cut(const Netlist& m, const std::vector<GateId>& roots,
                            const std::vector<GateId>& cut_signals) {
  std::vector<bool> is_cut(m.size(), false);
  for (GateId c : cut_signals) is_cut[c] = true;

  // Backward closure from the roots: through combinational gates, stopping
  // at cut signals, primary inputs, constants; registers are kept and their
  // data nets become roots in turn.
  std::vector<bool> in_model(m.size(), false);
  std::vector<GateId> stack;
  auto visit = [&](GateId g) {
    if (!in_model[g]) {
      in_model[g] = true;
      stack.push_back(g);
    }
  };
  for (GateId r : roots) visit(r);
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (is_cut[g] || m.is_input(g) || m.is_const(g)) continue;
    if (m.is_reg(g)) {
      visit(m.reg_data(g));
      continue;
    }
    for (GateId f : m.fanins(g)) visit(f);
  }

  Subcircuit sub;
  auto map_new = [&](GateId old, GateId nw) {
    sub.new_of_old_.emplace(old, nw);
    RFN_CHECK(sub.old_of_new.size() == nw, "non-contiguous new ids");
    sub.old_of_new.push_back(old);
    if (m.has_name(old)) sub.net.set_name(nw, m.name(old));
  };

  // Sources first (cut signals and primary inputs become inputs; registers
  // and constants keep their type), then combinational gates in topo order.
  for (GateId g = 0; g < m.size(); ++g) {
    if (!in_model[g]) continue;
    if (is_cut[g] || m.is_input(g)) {
      const GateId nw = sub.net.add(GateType::Input);
      map_new(g, nw);
      sub.pseudo_inputs.push_back(nw);
    } else if (m.is_const(g)) {
      map_new(g, sub.net.add(m.type(g)));
    } else if (m.is_reg(g)) {
      map_new(g, sub.net.add(GateType::Reg, {}, m.reg_init(g)));
      sub.kept_regs_old.push_back(g);
    }
  }
  for (GateId g : topo_order(m)) {
    if (!in_model[g] || !m.is_comb(g) || is_cut[g]) continue;
    std::vector<GateId> fanins;
    fanins.reserve(m.fanins(g).size());
    for (GateId f : m.fanins(g)) {
      const GateId nf = sub.to_new(f);
      RFN_CHECK(nf != kNullGate, "cut-extraction gate %u missing fanin %u", g, f);
      fanins.push_back(nf);
    }
    map_new(g, sub.net.add(m.type(g), std::move(fanins)));
  }
  for (GateId r : sub.kept_regs_old) {
    const GateId data_new = sub.to_new(m.reg_data(r));
    RFN_CHECK(data_new != kNullGate, "register %u data cone missing", r);
    sub.net.set_reg_data(sub.to_new(r), data_new);
  }
  sub.net.check();
  return sub;
}

GateId append_disjunction(Netlist& n, const std::vector<GateId>& signals,
                          const std::string& name) {
  RFN_CHECK(!signals.empty(), "disjunction over no signals");
  for (GateId s : signals)
    RFN_CHECK(s < n.size(), "disjunction signal %u out of range", s);
  const GateId root =
      signals.size() == 1
          ? n.add(GateType::Buf, {signals.front()})
          : n.add(GateType::Or, std::vector<GateId>(signals.begin(), signals.end()));
  if (!name.empty()) {
    n.set_name(root, name);
    n.add_output(name, root);
  }
  return root;
}

}  // namespace rfn
