#include "netlist/writer.hpp"

#include "util/log.hpp"

namespace rfn {

std::string to_dot(const Netlist& n) {
  std::string out = "digraph netlist {\n  rankdir=LR;\n";
  for (GateId g = 0; g < n.size(); ++g) {
    std::string label = gate_type_name(n.type(g));
    if (n.has_name(g)) label += "\\n" + n.name(g);
    const char* shape = n.is_reg(g) ? "box" : (n.is_input(g) ? "invtriangle" : "ellipse");
    out += "  g" + std::to_string(g) + " [label=\"" + label + "\", shape=" + shape + "];\n";
  }
  for (GateId g = 0; g < n.size(); ++g) {
    for (GateId f : n.fanins(g)) {
      out += "  g" + std::to_string(f) + " -> g" + std::to_string(g);
      if (n.is_reg(g)) out += " [style=dashed]";
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string stats_line(const Netlist& n) {
  return detail::format("inputs=%zu regs=%zu gates=%zu outputs=%zu", n.num_inputs(),
                        n.num_regs(), n.num_gates(), n.outputs().size());
}

std::string trace_to_string(const Netlist& n, const Trace& t) {
  std::string out;
  for (size_t i = 0; i < t.steps.size(); ++i) {
    out += detail::format("cycle %zu:\n", i + 1);
    out += "  state  " + cube_to_string(n, t.steps[i].state) + "\n";
    if (!t.steps[i].inputs.empty())
      out += "  inputs " + cube_to_string(n, t.steps[i].inputs) + "\n";
  }
  return out;
}

}  // namespace rfn
