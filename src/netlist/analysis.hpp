#pragma once
// Structural analyses over netlists: topological order, fanout lists,
// transitive fanin, cone-of-influence, and register BFS distances.
//
// These are the graph primitives behind abstract-model generation (Step 1 of
// RFN), COI reduction for the plain-MC baseline, and the BFS abstraction
// baseline of Ho et al. [8].

#include <vector>

#include "netlist/netlist.hpp"

namespace rfn {

/// Topological order of all cells: inputs, constants and registers first
/// (they are sources for combinational evaluation), then combinational gates
/// in dependency order. Evaluating gates in this order visits every fanin
/// before its fanout.
std::vector<GateId> topo_order(const Netlist& n);

/// Fanout adjacency: fanouts[g] lists every cell that has g as a fanin
/// (register data inputs included).
std::vector<std::vector<GateId>> fanout_lists(const Netlist& n);

/// Transitive fanin of `roots` *through combinational gates only*: traversal
/// stops at (and includes) registers, primary inputs, and constants.
/// Returns a membership mask indexed by GateId. This is the paper's
/// "transitive fanins up to register outputs".
std::vector<bool> comb_fanin_cone(const Netlist& n, const std::vector<GateId>& roots);

/// Cone of influence of `roots`: all cells that can affect the roots through
/// any number of register boundaries. Returns a membership mask.
std::vector<bool> coi(const Netlist& n, const std::vector<GateId>& roots);

/// Registers contained in the COI of `roots`.
std::vector<GateId> coi_registers(const Netlist& n, const std::vector<GateId>& roots);

/// Counts (registers, combinational gates) inside a membership mask.
std::pair<size_t, size_t> count_regs_gates(const Netlist& n, const std::vector<bool>& mask);

/// Registers whose outputs feed the combinational cone of `roots` directly,
/// i.e. the support registers of the next-cycle functions of the roots.
std::vector<GateId> support_registers(const Netlist& n, const std::vector<GateId>& roots);

/// Primary inputs in the combinational cone of `roots`.
std::vector<GateId> support_inputs(const Netlist& n, const std::vector<GateId>& roots);

/// BFS register distance from `roots` (paper [8]'s "closest k registers"):
/// distance 1 = registers in the combinational cone of the roots; distance
/// d+1 = registers in the combinational cone of the data inputs of
/// distance-<=d registers. Returns distances indexed by GateId
/// (only meaningful for registers; -1 when unreachable).
std::vector<int> register_bfs_distance(const Netlist& n, const std::vector<GateId>& roots);

/// The `k` registers closest to `roots` per register_bfs_distance, ties
/// broken by GateId for determinism. May return fewer than k if the COI is
/// smaller.
std::vector<GateId> closest_registers(const Netlist& n, const std::vector<GateId>& roots,
                                      size_t k);

/// Jaccard overlap |a ∩ b| / |a ∪ b| of two *sorted, duplicate-free* id
/// sets; 1.0 when both are empty. The session layer clusters properties by
/// the overlap of their register cones (coi_registers).
double jaccard_overlap(const std::vector<GateId>& a, const std::vector<GateId>& b);

/// FNV-1a structural fingerprint of a design: gate types, fanin lists,
/// register initial values, and the named-output table. Two elaborations of
/// the same source hash equal, and any edit that can change verification
/// semantics changes the hash. Certificates (cert/format.hpp) embed it so a
/// witness can never be checked against the wrong design.
uint64_t design_hash(const Netlist& n);

/// design_hash rendered as 16 lowercase hex digits.
std::string design_hash_hex(const Netlist& n);

}  // namespace rfn
