#pragma once
// Fluent construction API for gate-level designs.
//
// The design generators (src/designs/) and tests build netlists through this
// class. It layers two conveniences over Netlist::add:
//   * bit-level helpers with constant folding and structural hashing of
//     2-input gates, so generated designs do not balloon with duplicates;
//   * word-level helpers (Word = LSB-first vector of signals) implementing
//     the usual RTL datapath idioms: adders, comparators, muxes, counters.

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace rfn {

/// LSB-first bundle of signals.
using Word = std::vector<GateId>;

class NetBuilder {
 public:
  NetBuilder() = default;

  Netlist& netlist() { return n_; }
  const Netlist& netlist() const { return n_; }
  /// Finalizes: runs structural checks and moves the netlist out.
  Netlist take();

  // --- bit level ---

  GateId input(const std::string& name);
  GateId constant(bool value);
  /// Creates a register with the given initial value; wire its next-state
  /// input later with set_next.
  GateId reg(const std::string& name, Tri init = Tri::F);
  void set_next(GateId reg, GateId data) { n_.set_reg_data(reg, data); }

  GateId buf(GateId a);
  GateId not_(GateId a);
  GateId and_(GateId a, GateId b);
  GateId or_(GateId a, GateId b);
  GateId nand_(GateId a, GateId b);
  GateId nor_(GateId a, GateId b);
  GateId xor_(GateId a, GateId b);
  GateId xnor_(GateId a, GateId b);
  /// sel ? d1 : d0
  GateId mux(GateId sel, GateId d0, GateId d1);
  GateId and_n(const std::vector<GateId>& xs);
  GateId or_n(const std::vector<GateId>& xs);
  /// a & !b
  GateId and_not(GateId a, GateId b) { return and_(a, not_(b)); }
  /// a -> b  ==  !a | b
  GateId implies(GateId a, GateId b) { return or_(not_(a), b); }

  void name(GateId g, const std::string& s) { n_.set_name(g, s); }
  void output(const std::string& s, GateId g) { n_.add_output(s, g); }

  // --- word level (LSB first) ---

  Word input_word(const std::string& name, size_t width);
  Word reg_word(const std::string& name, size_t width, uint64_t init = 0);
  void set_next_word(const Word& regs, const Word& data);
  Word constant_word(uint64_t value, size_t width);

  Word not_word(const Word& a);
  Word and_word(const Word& a, const Word& b);
  Word or_word(const Word& a, const Word& b);
  Word xor_word(const Word& a, const Word& b);
  Word mux_word(GateId sel, const Word& d0, const Word& d1);

  /// Ripple-carry a + b (+ carry_in); result truncated to a.size() bits.
  Word add_word(const Word& a, const Word& b, GateId carry_in = kNullGate);
  Word sub_word(const Word& a, const Word& b);
  Word inc_word(const Word& a);
  Word dec_word(const Word& a);

  GateId eq_word(const Word& a, const Word& b);
  GateId eq_const(const Word& a, uint64_t value);
  /// Unsigned a < b.
  GateId lt_word(const Word& a, const Word& b);
  GateId le_word(const Word& a, const Word& b) { return not_(lt_word(b, a)); }

  /// OR-reduction / AND-reduction.
  GateId any(const Word& a) { return or_n(a); }
  GateId all(const Word& a) { return and_n(a); }

  /// One-hot decoder: out[i] = (a == i), for i in [0, 1<<a.size()).
  Word decode(const Word& a);

 private:
  GateId binary(GateType t, GateId a, GateId b);
  GateId unary(GateType t, GateId a);

  Netlist n_;
  GateId const0_ = kNullGate;
  GateId const1_ = kNullGate;
  // Structural hashing for 1-3 input gates: (type, fanins) -> gate.
  struct Key {
    GateType type;
    GateId a, b, c;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = static_cast<size_t>(k.type);
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      h = h * 1000003u ^ k.c;
      return h;
    }
  };
  std::unordered_map<Key, GateId, KeyHash> strash_;
};

}  // namespace rfn
