#include "atpg/unroll.hpp"

#include "netlist/analysis.hpp"

namespace rfn {

Unrolled unroll_cone(const Netlist& m, size_t frames,
                     const std::vector<std::vector<GateId>>& needed) {
  RFN_CHECK(frames >= 1, "unroll of zero frames");
  RFN_CHECK(needed.size() == frames, "needed has %zu entries for %zu frames",
            needed.size(), frames);

  // Backward pass: which cells must exist at each frame. A register in
  // frame f's cone requires its data cone in frame f-1.
  std::vector<std::vector<bool>> cone(frames);
  for (size_t f = frames; f >= 1; --f) {
    std::vector<GateId> roots = needed[f - 1];
    if (f < frames) {
      for (GateId r : m.regs())
        if (cone[f][r]) roots.push_back(m.reg_data(r));
    }
    cone[f - 1] = comb_fanin_cone(m, roots);
  }

  Unrolled u;
  u.frames = frames;
  u.map.assign(frames, std::vector<GateId>(m.size(), kNullGate));
  const std::vector<GateId> order = topo_order(m);

  for (size_t f = 1; f <= frames; ++f) {
    auto& map_f = u.map[f - 1];
    for (GateId g : order) {
      if (!cone[f - 1][g]) continue;
      switch (m.type(g)) {
        case GateType::Input: {
          const GateId nw = u.net.add(GateType::Input);
          if (m.has_name(g))
            u.net.set_name(nw, m.name(g) + "@" + std::to_string(f));
          map_f[g] = nw;
          break;
        }
        case GateType::Const0:
        case GateType::Const1:
          map_f[g] = u.net.add(m.type(g));
          break;
        case GateType::Reg: {
          if (f == 1) {
            switch (m.reg_init(g)) {
              case Tri::F: map_f[g] = u.net.add(GateType::Const0); break;
              case Tri::T: map_f[g] = u.net.add(GateType::Const1); break;
              case Tri::X: {
                const GateId nw = u.net.add(GateType::Input);
                if (m.has_name(g)) u.net.set_name(nw, m.name(g) + "@init");
                map_f[g] = nw;
                break;
              }
            }
          } else {
            // Alias: the register output at frame f IS the data net at f-1.
            const GateId prev = u.map[f - 2][m.reg_data(g)];
            RFN_CHECK(prev != kNullGate, "register %u data missing at frame %zu", g,
                      f - 1);
            map_f[g] = prev;
          }
          break;
        }
        default: {  // combinational gate
          std::vector<GateId> fanins;
          fanins.reserve(m.fanins(g).size());
          for (GateId fi : m.fanins(g)) {
            RFN_CHECK(map_f[fi] != kNullGate, "fanin %u missing at frame %zu", fi, f);
            fanins.push_back(map_f[fi]);
          }
          map_f[g] = u.net.add(m.type(g), std::move(fanins));
          break;
        }
      }
    }
  }
  u.net.check();
  return u;
}

Unrolled unroll_full(const Netlist& m, size_t frames) {
  std::vector<GateId> all;
  for (GateId g = 0; g < m.size(); ++g) all.push_back(g);
  return unroll_cone(m, frames, std::vector<std::vector<GateId>>(frames, all));
}

std::vector<bool> stable_frame_cone(const Netlist& m,
                                    const std::vector<GateId>& roots) {
  // One backward pass per newly discovered register layer; terminates because
  // the register set only grows.
  std::vector<GateId> all_roots = roots;
  std::vector<bool> in_roots(m.size(), false);
  for (GateId r : roots) in_roots[r] = true;
  for (;;) {
    const std::vector<bool> cone = comb_fanin_cone(m, all_roots);
    bool grew = false;
    for (GateId r : m.regs()) {
      if (!cone[r] || in_roots[m.reg_data(r)]) continue;
      in_roots[m.reg_data(r)] = true;
      all_roots.push_back(m.reg_data(r));
      grew = true;
    }
    if (!grew) return cone;
  }
}

}  // namespace rfn
