#include "atpg/seq_atpg.hpp"

#include "atpg/unroll.hpp"
#include "core/status.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfn {

namespace {

/// One flush per sequential solve ("atpg.seq.*"). The embedded
/// justification call reports its own search effort under "atpg.comb.*";
/// the sequential tier counts solves, solved depths and outcomes.
void record_seq_metrics(const SeqAtpgResult& res, size_t cycles) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.counter("atpg.seq.calls").add(1);
  m.counter("atpg.seq.backtracks").add(res.backtracks);
  m.counter("atpg.seq.decisions").add(res.decisions);
  m.counter("atpg.seq.cycles_searched").add(cycles);
  switch (res.status) {
    case AtpgStatus::Sat: m.counter("atpg.seq.sat").add(1); break;
    case AtpgStatus::Unsat: m.counter("atpg.seq.unsat").add(1); break;
    case AtpgStatus::Abort: m.counter("atpg.seq.aborts").add(1); break;
  }
}

SeqAtpgResult solve_cycle_cubes_impl(const Netlist& m, const std::vector<Cube>& cubes,
                                     const AtpgOptions& opt) {
  SeqAtpgResult res;
  const size_t k = cubes.size();
  RFN_CHECK(k >= 1, "solve_cycle_cubes with no cycles");

  // Step-boundary should-stop poll before the (potentially large) time-frame
  // expansion; the justification search polls the same token per backtrack.
  if (should_stop(opt.cancel)) return res;  // status stays Abort

  std::vector<std::vector<GateId>> needed(k);
  for (size_t f = 0; f < k; ++f)
    for (const Literal& lit : cubes[f]) needed[f].push_back(lit.signal);

  const Unrolled u = unroll_cone(m, k, needed);

  // Map the cycle cubes into the flat model. Constant-folded literals are
  // checked immediately; a mismatch with a register's hard initial value (or
  // a constant) is a definitive Unsat.
  Cube flat;
  for (size_t f = 1; f <= k; ++f) {
    for (const Literal& lit : cubes[f - 1]) {
      const GateId g = u.at(f, lit.signal);
      RFN_CHECK(g != kNullGate, "needed signal not materialized");
      if (u.net.type(g) == GateType::Const0 || u.net.type(g) == GateType::Const1) {
        if ((u.net.type(g) == GateType::Const1) != lit.value) {
          res.status = AtpgStatus::Unsat;
          return res;
        }
        continue;
      }
      if (!cube_add(flat, {g, lit.value})) {
        // Two cycle cubes demand opposite values of the same flat net
        // (aliasing through registers): unsatisfiable.
        res.status = AtpgStatus::Unsat;
        return res;
      }
    }
  }

  CombAtpgResult comb = justify(u.net, flat, opt);
  res.status = comb.status;
  res.backtracks = comb.backtracks;
  res.decisions = comb.decisions;
  if (comb.status != AtpgStatus::Sat) return res;

  // Reconstruct the trace cycle by cycle from the flat valuation.
  res.trace.steps.resize(k);
  for (size_t f = 1; f <= k; ++f) {
    TraceStep& step = res.trace.steps[f - 1];
    for (GateId r : m.regs()) {
      const GateId g = u.at(f, r);
      if (g == kNullGate) continue;
      Tri v;
      if (u.net.type(g) == GateType::Const0)
        v = Tri::F;
      else if (u.net.type(g) == GateType::Const1)
        v = Tri::T;
      else
        v = comb.valuation[g];
      if (v != Tri::X) cube_add(step.state, {r, v == Tri::T});
    }
    for (GateId in : m.inputs()) {
      const GateId g = u.at(f, in);
      if (g == kNullGate) continue;
      const Tri v = comb.valuation[g];
      if (v != Tri::X) cube_add(step.inputs, {in, v == Tri::T});
    }
  }
  return res;
}

}  // namespace

SeqAtpgResult solve_cycle_cubes(const Netlist& m, const std::vector<Cube>& cubes,
                                const AtpgOptions& opt) {
  Span span("atpg.seq");
  SeqAtpgResult res = solve_cycle_cubes_impl(m, cubes, opt);
  span.annotate("status", to_string(res.status));
  record_seq_metrics(res, cubes.size());
  return res;
}

SeqAtpgResult reach_target(const Netlist& m, size_t cycles, GateId target, bool value,
                           const std::vector<Cube>& guidance, const AtpgOptions& opt) {
  RFN_CHECK(guidance.empty() || guidance.size() == cycles,
            "guidance must cover every cycle");
  std::vector<Cube> cubes = guidance.empty() ? std::vector<Cube>(cycles) : guidance;
  if (!cube_add(cubes[cycles - 1], {target, value})) {
    SeqAtpgResult res;
    res.status = AtpgStatus::Unsat;
    return res;
  }
  return solve_cycle_cubes(m, cubes, opt);
}

}  // namespace rfn
