#pragma once
// Three-valued implication engine over a gate-level netlist.
//
// This is the deduction core of the ATPG engines: given a set of required
// signal values it propagates forward (fanin values determine an output) and
// backward (an output value forces fanin values, e.g. AND=1 forces all
// fanins to 1), detecting conflicts. Assignments are recorded on a trail so
// the branch-and-bound search can backtrack in O(undone assignments).
//
// Registers are treated exactly like primary inputs: the engine works either
// on an unrolled (purely combinational) model, or on a single frame of a
// sequential design where register outputs are free cut points.

#include <deque>
#include <vector>

#include "netlist/netlist.hpp"

namespace rfn {

class ImplicationEngine {
 public:
  explicit ImplicationEngine(const Netlist& n);

  const Netlist& netlist() const { return *n_; }

  /// Asserts signal g = value and runs implication to closure.
  /// Returns false on conflict (state remains valid; caller must undo).
  bool assign(GateId g, bool value);

  Tri value(GateId g) const { return vals_[g]; }
  const std::vector<Tri>& values() const { return vals_; }

  /// Free signals are the decision variables: primary inputs and register
  /// outputs.
  bool is_free(GateId g) const { return n_->is_input(g) || n_->is_reg(g); }

  /// Trail position to pass to undo_to later.
  size_t mark() const { return trail_.size(); }
  /// Rolls assignments back to a previous mark.
  void undo_to(size_t mark);
  const std::vector<GateId>& trail() const { return trail_; }

  /// A combinational gate is justified when its fanin values force its
  /// assigned output value. Gates with X output are trivially justified.
  bool justified(GateId g) const;

  /// First unjustified gate on the trail, or kNullGate when the current
  /// partial assignment is self-consistent (J-frontier empty).
  GateId find_unjustified() const;

 private:
  bool set_value(GateId g, Tri v);  // trail + queue bookkeeping; false = conflict
  bool imply_gate(GateId g);        // local forward+backward rules
  bool propagate();

  Tri forward_value(GateId g) const;

  const Netlist* n_;
  std::vector<Tri> vals_;
  std::vector<GateId> trail_;
  std::deque<GateId> queue_;
  std::vector<uint8_t> in_queue_;
  std::vector<std::vector<GateId>> fanouts_;
};

}  // namespace rfn
