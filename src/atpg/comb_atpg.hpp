#pragma once
// Combinational justification ATPG.
//
// Contract (paper Section 2): given a design and a cube of required signal
// values, report
//   * Sat    — an assignment of the free signals (primary inputs and
//              register outputs) satisfying the cube, plus the implied full
//              valuation;
//   * Unsat  — no assignment exists;
//   * Abort  — a resource limit (backtracks / time) was exceeded.
//
// The search is PODEM-style: decisions are made only on free signals,
// located by backtracing the current justification objective through an
// X-path; conflicts trigger chronological backtracking with both branches
// explored, which makes the search complete.

#include "atpg/implication.hpp"
#include "netlist/netlist.hpp"
#include "util/cancel.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

enum class AtpgStatus { Sat, Unsat, Abort };
// The canonical spelling lives in core/status.hpp: to_string(AtpgStatus).

struct AtpgOptions {
  /// Backtrack budget; the engine aborts beyond it (paper: "some resource
  /// limits are exceeded").
  uint64_t max_backtracks = 1u << 20;
  /// Wall-clock budget in seconds; negative = unlimited.
  double time_limit_s = -1.0;
  /// Perturbs the backtrace value heuristic: decision i's default value is
  /// XORed with bit (i mod 64) of the seed. Zero keeps the plain heuristic.
  /// Used to diversify otherwise-deterministic justifications (multi-trace
  /// extraction).
  uint64_t decision_seed = 0;
  /// Cooperative should-stop hook, polled per backtrack and per decision
  /// batch; a cancelled search reports Abort. Flows through every engine
  /// built on this options struct (sequential ATPG, hybrid trace engine,
  /// concretization), which is how the portfolio scheduler cuts them short.
  const CancelToken* cancel = nullptr;
};

struct CombAtpgResult {
  AtpgStatus status = AtpgStatus::Abort;
  /// Assignment of free signals only (Sat only). Free signals the search
  /// never constrained are omitted and may take any value.
  Cube free_assignment;
  /// Full implied valuation indexed by GateId (Sat only).
  std::vector<Tri> valuation;
  uint64_t backtracks = 0;
  uint64_t decisions = 0;
};

/// Finds an assignment of free signals satisfying all literals of `targets`.
CombAtpgResult justify(const Netlist& n, const Cube& targets,
                       const AtpgOptions& opt = {});

}  // namespace rfn
