#pragma once
// Time-frame expansion (iterative logic array) for sequential ATPG.
//
// The sequential design is flattened into a purely combinational model of k
// frames. Registers disappear: a register's output at frame f aliases its
// data net at frame f-1; at frame 1 it is the initial value (a constant, or
// a fresh free input for X-initialized registers). Only the backward cone of
// the signals the caller needs at each frame is materialized, which keeps
// deep unrollings of large designs tractable.

#include <vector>

#include "netlist/netlist.hpp"

namespace rfn {

struct Unrolled {
  Netlist net;
  size_t frames = 0;
  /// map[f][g] = unrolled gate for original signal g at frame f (1-based
  /// frames stored at index f-1); kNullGate when not materialized.
  std::vector<std::vector<GateId>> map;

  GateId at(size_t frame, GateId g) const {
    RFN_CHECK(frame >= 1 && frame <= frames, "frame %zu out of range", frame);
    return map[frame - 1][g];
  }
};

/// Unrolls `m` for `frames` cycles, materializing per frame only the cone of
/// `needed[f-1]` (signals required at frame f) plus whatever earlier frames
/// must provide for register data. `needed` must have `frames` entries.
Unrolled unroll_cone(const Netlist& m, size_t frames,
                     const std::vector<std::vector<GateId>>& needed);

/// Full unroll: every signal materialized in every frame.
Unrolled unroll_full(const Netlist& m, size_t frames);

/// Frame-invariant materialization set for an *incrementally extended*
/// unrolling: the fixpoint of "combinational cone of `roots` plus the data
/// cones of every register already in the set" (equivalently, the COI of the
/// roots). unroll_cone computes the minimal per-frame cones for a fixed
/// depth — those shrink toward the first frame, so appending frame k+1 would
/// disturb frames 1..k. A consumer that keeps one growing unrolling alive
/// (the SAT BMC encoder's single-instance formulation) materializes this set
/// in every frame instead: appending a frame then never touches the ones
/// before it. Returns a membership mask indexed by GateId.
std::vector<bool> stable_frame_cone(const Netlist& m, const std::vector<GateId>& roots);

}  // namespace rfn
