#include "atpg/comb_atpg.hpp"

#include "core/status.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfn {

namespace {

/// Walks from an unjustified gate objective down an X-path to a free signal
/// decision (signal, value). The chosen value is a heuristic; the search
/// explores the flip on conflict.
std::pair<GateId, bool> backtrace(const ImplicationEngine& eng, GateId g, bool v) {
  const Netlist& n = eng.netlist();
  while (!eng.is_free(g)) {
    const auto& fi = n.fanins(g);
    GateId next = kNullGate;
    bool next_v = v;
    auto first_x = [&]() {
      for (GateId f : fi)
        if (eng.value(f) == Tri::X) return f;
      return kNullGate;
    };
    switch (n.type(g)) {
      case GateType::Buf:
        next = fi[0];
        next_v = v;
        break;
      case GateType::Not:
        next = fi[0];
        next_v = !v;
        break;
      case GateType::And:
      case GateType::Nand: {
        const bool conj = n.type(g) == GateType::And ? v : !v;
        next = first_x();
        next_v = conj ? true : false;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const bool disj = n.type(g) == GateType::Or ? v : !v;
        next = first_x();
        next_v = disj ? true : false;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        const bool parity = n.type(g) == GateType::Xor ? v : !v;
        const Tri a = eng.value(fi[0]);
        const Tri b = eng.value(fi[1]);
        if (a != Tri::X) {
          next = fi[1];
          next_v = (a == Tri::T) != parity;
        } else if (b != Tri::X) {
          next = fi[0];
          next_v = (b == Tri::T) != parity;
        } else {
          next = fi[0];
          next_v = false;  // arbitrary; flip explored on conflict
        }
        break;
      }
      case GateType::Mux: {
        const Tri sel = eng.value(fi[0]);
        if (sel == Tri::F) {
          next = fi[1];
          next_v = v;
        } else if (sel == Tri::T) {
          next = fi[2];
          next_v = v;
        } else if (eng.value(fi[1]) == tri_of(v)) {
          next = fi[0];  // steer the select toward the agreeing data input
          next_v = false;
        } else if (eng.value(fi[2]) == tri_of(v)) {
          next = fi[0];
          next_v = true;
        } else {
          next = fi[0];
          next_v = false;
        }
        break;
      }
      default:
        fatal(detail::format("backtrace through non-combinational gate %u type=%s val=%c",
                             g, gate_type_name(n.type(g)), tri_char(eng.value(g))));
    }
    RFN_CHECK(next != kNullGate, "backtrace found no X fanin at gate %u", g);
    g = next;
    v = next_v;
  }
  return {g, v};
}

CombAtpgResult justify_impl(const Netlist& n, const Cube& targets,
                            const AtpgOptions& opt) {
  CombAtpgResult res;
  ImplicationEngine eng(n);
  const Deadline deadline(opt.time_limit_s);

  // Assert the target cube. A conflict here is a definitive Unsat.
  for (const Literal& lit : targets) {
    if (!eng.assign(lit.signal, lit.value)) {
      res.status = AtpgStatus::Unsat;
      return res;
    }
  }

  struct Decision {
    GateId signal;
    bool value;
    bool flipped;
    size_t mark;
  };
  std::vector<Decision> stack;

  bool conflict = false;
  for (;;) {
    if (conflict) {
      ++res.backtracks;
      if (res.backtracks > opt.max_backtracks || deadline.expired() ||
          should_stop(opt.cancel)) {
        res.status = AtpgStatus::Abort;
        return res;
      }
      // Chronological backtracking: flip the most recent unflipped decision.
      conflict = false;
      for (;;) {
        if (stack.empty()) {
          res.status = AtpgStatus::Unsat;
          return res;
        }
        Decision& d = stack.back();
        eng.undo_to(d.mark);
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          if (eng.assign(d.signal, d.value)) break;
          // Flip also conflicts: pop and continue unwinding.
        }
        stack.pop_back();
      }
      continue;
    }

    const GateId obj = eng.find_unjustified();
    if (obj == kNullGate) {
      // All required values are justified by the free-signal assignment.
      res.status = AtpgStatus::Sat;
      for (GateId g : eng.trail()) {
        if (eng.is_free(g)) res.free_assignment.push_back({g, eng.value(g) == Tri::T});
      }
      res.valuation = eng.values();
      return res;
    }

    auto [signal, value] = backtrace(eng, obj, eng.value(obj) == Tri::T);
    if (opt.decision_seed != 0)
      value ^= ((opt.decision_seed >> (res.decisions % 64)) & 1) != 0;
    ++res.decisions;
    stack.push_back({signal, value, false, eng.mark()});
    if (!eng.assign(signal, value)) conflict = true;
    if ((res.decisions & 0x3FF) == 0 &&
        (deadline.expired() || should_stop(opt.cancel))) {
      res.status = AtpgStatus::Abort;
      return res;
    }
  }
}

}  // namespace

CombAtpgResult justify(const Netlist& n, const Cube& targets, const AtpgOptions& opt) {
  Span span("atpg.comb");
  CombAtpgResult res = justify_impl(n, targets, opt);
  span.annotate("status", to_string(res.status));
  // One flush per call: the search itself stays registry-free.
  MetricsRegistry& m = MetricsRegistry::global();
  m.counter("atpg.comb.calls").add(1);
  m.counter("atpg.comb.backtracks").add(res.backtracks);
  m.counter("atpg.comb.decisions").add(res.decisions);
  if (res.status == AtpgStatus::Abort) m.counter("atpg.comb.aborts").add(1);
  return res;
}

}  // namespace rfn
