#pragma once
// Sequential ATPG by time-frame expansion.
//
// Implements the paper's sequential ATPG contract (Section 2): given a
// design M, a cycle count k and a sequence of cubes C_1..C_k, decide whether
// some k-cycle trace of M from its initial states satisfies every cube at
// its cycle — reporting Sat (with the trace), Unsat, or Abort on resource
// exhaustion. Guidance (Step 3) and the refinement satisfiability checks
// (Step 4) are both expressed through the constraint cubes.

#include "atpg/comb_atpg.hpp"
#include "netlist/netlist.hpp"

namespace rfn {

struct SeqAtpgResult {
  AtpgStatus status = AtpgStatus::Abort;
  /// Sat only: a k-cycle trace. Each step's state cube assigns every
  /// materialized register (binary-initialized registers at cycle 1 take
  /// their initial value); the input cubes assign the inputs the search
  /// constrained.
  Trace trace;
  uint64_t backtracks = 0;
  uint64_t decisions = 0;
};

/// cubes[i] is the cube that must hold at cycle i+1 (states and/or inputs
/// and/or internal signals of that cycle).
SeqAtpgResult solve_cycle_cubes(const Netlist& m, const std::vector<Cube>& cubes,
                                const AtpgOptions& opt = {});

/// Convenience: is there a k-cycle trace reaching `target`=value at cycle k,
/// subject to optional per-cycle guidance cubes (empty = unguided)?
SeqAtpgResult reach_target(const Netlist& m, size_t cycles, GateId target, bool value,
                           const std::vector<Cube>& guidance = {},
                           const AtpgOptions& opt = {});

}  // namespace rfn
