#include "atpg/implication.hpp"

#include "netlist/analysis.hpp"

namespace rfn {

ImplicationEngine::ImplicationEngine(const Netlist& n)
    : n_(&n),
      vals_(n.size(), Tri::X),
      in_queue_(n.size(), 0),
      fanouts_(fanout_lists(n)) {
  bool have_consts = false;
  for (GateId g = 0; g < n.size(); ++g) {
    if (n.type(g) == GateType::Const0) vals_[g] = Tri::F;
    if (n.type(g) == GateType::Const1) vals_[g] = Tri::T;
    have_consts |= n.is_const(g);
  }
  if (have_consts) {
    // Propagate the constant cones up front: gates fed (transitively) by
    // constants must carry their implied values before any search starts,
    // otherwise backtrace could chase an X path into a constant.
    for (GateId g = 0; g < n.size(); ++g) {
      if (!n.is_const(g)) continue;
      for (GateId fo : fanouts_[g]) {
        if (n.is_comb(fo) && !in_queue_[fo]) {
          in_queue_[fo] = 1;
          queue_.push_back(fo);
        }
      }
    }
    const bool ok = propagate();
    RFN_CHECK(ok, "constant propagation conflict");
  }
}

Tri ImplicationEngine::forward_value(GateId g) const {
  const auto& fi = n_->fanins(g);
  Tri buf[8];
  std::vector<Tri> wide;
  const Tri* vals;
  if (fi.size() <= 8) {
    for (size_t i = 0; i < fi.size(); ++i) buf[i] = vals_[fi[i]];
    vals = buf;
  } else {
    wide.reserve(fi.size());
    for (GateId f : fi) wide.push_back(vals_[f]);
    vals = wide.data();
  }
  return eval_gate3(n_->type(g), vals, fi.size());
}

bool ImplicationEngine::set_value(GateId g, Tri v) {
  RFN_CHECK(v != Tri::X, "set_value with X");
  if (vals_[g] != Tri::X) return vals_[g] == v;
  vals_[g] = v;
  trail_.push_back(g);
  // Re-examine the driving gate (backward rules may now fire) and all
  // fanout gates (forward rules).
  if (n_->is_comb(g) && !in_queue_[g]) {
    in_queue_[g] = 1;
    queue_.push_back(g);
  }
  for (GateId fo : fanouts_[g]) {
    if (n_->is_comb(fo) && !in_queue_[fo]) {
      in_queue_[fo] = 1;
      queue_.push_back(fo);
    }
  }
  return true;
}

bool ImplicationEngine::imply_gate(GateId g) {
  const GateType t = n_->type(g);
  const auto& fi = n_->fanins(g);
  const Tri out = vals_[g];

  // Forward: fanins determine the output.
  const Tri fwd = forward_value(g);
  if (fwd != Tri::X) {
    if (!set_value(g, fwd)) return false;
  }

  // Backward: output value constrains fanins.
  if (out == Tri::X) return true;
  const bool v = out == Tri::T;
  auto need = [&](GateId f, bool val) { return set_value(f, tri_of(val)); };

  switch (t) {
    case GateType::Buf:
      return need(fi[0], v);
    case GateType::Not:
      return need(fi[0], !v);
    case GateType::And:
    case GateType::Nand: {
      const bool conj = t == GateType::And ? v : !v;
      if (conj) {
        // Output of the conjunction is 1: every fanin must be 1.
        for (GateId f : fi)
          if (!need(f, true)) return false;
      } else {
        // Conjunction is 0: if exactly one fanin is X and the rest are 1,
        // the X fanin must be 0.
        GateId unknown = kNullGate;
        for (GateId f : fi) {
          if (vals_[f] == Tri::F) return true;  // already justified
          if (vals_[f] == Tri::X) {
            if (unknown != kNullGate) return true;  // two unknowns: no implication
            unknown = f;
          }
        }
        if (unknown == kNullGate) return false;  // all 1 but output 0: conflict
        return need(unknown, false);
      }
      return true;
    }
    case GateType::Or:
    case GateType::Nor: {
      const bool disj = t == GateType::Or ? v : !v;
      if (!disj) {
        for (GateId f : fi)
          if (!need(f, false)) return false;
      } else {
        GateId unknown = kNullGate;
        for (GateId f : fi) {
          if (vals_[f] == Tri::T) return true;
          if (vals_[f] == Tri::X) {
            if (unknown != kNullGate) return true;
            unknown = f;
          }
        }
        if (unknown == kNullGate) return false;
        return need(unknown, true);
      }
      return true;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      const bool parity = t == GateType::Xor ? v : !v;  // fanin0 ^ fanin1 == parity
      const Tri a = vals_[fi[0]], b = vals_[fi[1]];
      if (a != Tri::X && b == Tri::X) return need(fi[1], (a == Tri::T) != parity);
      if (b != Tri::X && a == Tri::X) return need(fi[0], (b == Tri::T) != parity);
      return true;
    }
    case GateType::Mux: {
      const Tri sel = vals_[fi[0]], d0 = vals_[fi[1]], d1 = vals_[fi[2]];
      if (sel == Tri::F) return need(fi[1], v);
      if (sel == Tri::T) return need(fi[2], v);
      // sel unknown: a data input that already disagrees with the output
      // forces the select to the other branch.
      if (d0 != Tri::X && (d0 == Tri::T) != v) {
        if (!need(fi[0], true)) return false;
        return need(fi[2], v);
      }
      if (d1 != Tri::X && (d1 == Tri::T) != v) {
        if (!need(fi[0], false)) return false;
        return need(fi[1], v);
      }
      return true;
    }
    case GateType::Input:
    case GateType::Reg:
    case GateType::Const0:
    case GateType::Const1:
      return true;
  }
  return true;
}

bool ImplicationEngine::propagate() {
  while (!queue_.empty()) {
    const GateId g = queue_.front();
    queue_.pop_front();
    in_queue_[g] = 0;
    if (!imply_gate(g)) {
      // Flush the queue: the caller will undo the trail.
      while (!queue_.empty()) {
        in_queue_[queue_.front()] = 0;
        queue_.pop_front();
      }
      return false;
    }
  }
  return true;
}

bool ImplicationEngine::assign(GateId g, bool value) {
  if (!set_value(g, tri_of(value))) return false;
  return propagate();
}

void ImplicationEngine::undo_to(size_t mark) {
  RFN_CHECK(mark <= trail_.size(), "undo_to beyond trail");
  while (trail_.size() > mark) {
    vals_[trail_.back()] = Tri::X;
    trail_.pop_back();
  }
}

bool ImplicationEngine::justified(GateId g) const {
  if (!n_->is_comb(g)) return true;
  if (vals_[g] == Tri::X) return true;
  return forward_value(g) == vals_[g];
}

GateId ImplicationEngine::find_unjustified() const {
  for (GateId g : trail_) {
    if (!justified(g)) return g;
  }
  return kNullGate;
}

}  // namespace rfn
