#include "core/certify.hpp"

#include "mc/image.hpp"
#include "netlist/subcircuit.hpp"
#include "sim/sim3.hpp"
#include "util/log.hpp"

namespace rfn {

CertifyResult certify_error_trace(const Netlist& m, const Trace& trace, GateId bad) {
  CertifyResult res;
  if (trace.empty()) {
    res.detail = "empty trace";
    return res;
  }
  Sim3 sim(m);
  sim.load_initial_state();
  // Registers with a hard initial value must agree with the trace's first
  // state cube; X-init registers take the trace's choice.
  for (const Literal& lit : trace.steps[0].state) {
    const Tri have = sim.value(lit.signal);
    if (have == Tri::X) {
      sim.set(lit.signal, tri_of(lit.value));
    } else if (have != tri_of(lit.value)) {
      res.detail = detail::format("trace starts outside the initial states (reg %u)",
                                  lit.signal);
      return res;
    }
  }
  for (size_t c = 0; c < trace.steps.size(); ++c) {
    sim.clear_inputs();
    for (const Literal& lit : trace.steps[c].inputs) {
      if (!m.is_input(lit.signal)) continue;
      sim.set(lit.signal, tri_of(lit.value));
    }
    sim.eval();
    if (c + 1 < trace.steps.size()) sim.step();
  }
  if (sim.value(bad) != Tri::T) {
    res.detail = detail::format("property signal is %c at the final cycle",
                                tri_char(sim.value(bad)));
    return res;
  }
  res.ok = true;
  return res;
}

CertifyResult certify_holds(const Netlist& m, GateId bad,
                            const std::vector<GateId>& included_regs,
                            const ReachOptions& opt) {
  CertifyResult res;
  const Subcircuit sub = extract_abstract_model(m, {bad}, included_regs);
  const GateId bad_new = sub.to_new(bad);
  if (bad_new == kNullGate) {
    res.detail = "property signal missing from the abstraction";
    return res;
  }

  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  mgr.set_auto_reorder(true);
  mgr.set_node_budget(opt.max_live_nodes);
  ImageComputer img(enc);
  if (img.aborted()) {
    res.detail = "resource limit while rebuilding the transition relation";
    return res;
  }
  const Bdd bad_set = mgr.exists(enc.signal_fn(bad_new), enc.input_vars());
  const Bdd init = enc.initial_states();
  const ReachResult reach = forward_reach(img, init, mgr.bdd_false(), opt);
  if (reach.status != ReachStatus::Proved) {
    res.detail = "could not recompute the fixpoint within the budget";
    return res;
  }
  const Bdd inv = reach.reached;

  // 1. Initiation: init -> Inv.
  if (!init.implies(inv)) {
    res.detail = "initial states escape the invariant";
    return res;
  }
  // 2. Consecution: post(Inv) -> Inv.
  const Bdd post = img.post_image(inv);
  if (post.is_null() || !post.implies(inv)) {
    res.detail = "invariant is not inductive";
    return res;
  }
  // 3. Safety: Inv & bad == false.
  if (inv.intersects(bad_set)) {
    res.detail = "invariant intersects the bad states";
    return res;
  }
  res.ok = true;
  return res;
}

CertifyResult certify(const Netlist& m, GateId bad, const RfnResult& result,
                      const std::vector<GateId>& included_regs) {
  switch (result.verdict) {
    case Verdict::Fails:
      return certify_error_trace(m, result.error_trace, bad);
    case Verdict::Holds:
      return certify_holds(m, bad, included_regs);
    case Verdict::Unknown:
    case Verdict::ResourceOut: {
      CertifyResult res;
      res.detail = "inconclusive verdicts carry no certificate";
      return res;
    }
  }
  return {};
}

}  // namespace rfn
