#include "core/plain_mc.hpp"

#include "mc/image.hpp"
#include "netlist/subcircuit.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

PlainMcResult plain_model_check(const Netlist& m, GateId bad, const ReachOptions& opt,
                                bool dynamic_reordering) {
  PlainMcResult res;
  const Stopwatch watch;

  const Subcircuit sub = coi_reduce(m, {bad});
  res.coi_regs = sub.net.num_regs();

  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  mgr.set_auto_reorder(dynamic_reordering);
  // The whole run — including transition-relation construction, which is
  // where plain MC typically dies on big designs — obeys the time and node
  // budgets, so "failed to verify" (the paper's outcome for all five
  // properties) is reported within the budget rather than hanging.
  const Deadline deadline(opt.time_limit_s);
  enc.set_resource_guard(&deadline, opt.max_live_nodes);
  mgr.set_node_budget(opt.max_live_nodes);
  mgr.set_deadline(&deadline);
  ImageComputer img(enc);
  const GateId bad_new = sub.to_new(bad);
  const Bdd bad_set = mgr.exists(enc.signal_fn(bad_new), enc.input_vars());
  if (img.aborted() || bad_set.is_null()) {
    res.verdict = Verdict::Unknown;
    res.reach_status = ReachStatus::ResourceOut;
    res.seconds = watch.seconds();
    return res;
  }

  ReachOptions reach_opt = opt;
  reach_opt.time_limit_s = deadline.remaining_seconds();
  const ReachResult reach = forward_reach(img, enc.initial_states(), bad_set, reach_opt);
  mgr.set_deadline(nullptr);
  res.reach_status = reach.status;
  res.steps = reach.steps;
  switch (reach.status) {
    case ReachStatus::Proved: res.verdict = Verdict::Holds; break;
    case ReachStatus::BadReachable: res.verdict = Verdict::Fails; break;
    case ReachStatus::ResourceOut: res.verdict = Verdict::Unknown; break;
  }
  res.seconds = watch.seconds();
  return res;
}

}  // namespace rfn
