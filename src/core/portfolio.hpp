#pragma once
// Engine-portfolio scheduler: race heterogeneous engines against one proof
// obligation and keep the first conclusive verdict.
//
// The paper's power comes from combining formal, simulation and hybrid
// engines; this scheduler lets them run concurrently instead of
// back-to-back. Each engine is wrapped as a closure that polls a CancelToken
// at its step boundaries and returns true when it reached a conclusive
// verdict (storing its payload wherever the closure captured it — each job
// writes only its own slot, so slots need no locking). race() returns after
// every *started* job has finished, which is what makes reading the slots
// afterwards data-race-free; losers are expected to notice the cancelled
// token within one engine step, and the portfolio tests pin that latency.
//
// Ownership rule the tests lock in: BDD managers are single-owner. A job
// that needs BDDs creates (or exclusively borrows) its own BddMgr; no two
// concurrent jobs may ever touch the same manager. Netlists are immutable
// after construction and safe to share read-only.
//
// With a zero- or one-worker executor the race degrades to sequential
// in-order execution: the first conclusive job cancels the ones behind it in
// the queue, which then never run. Sequential order is therefore also the
// engine priority order.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace rfn {

struct PortfolioJob {
  /// Engine name for the winner histogram and logs.
  std::string name;
  /// Per-job wall-clock budget (seconds); negative = unlimited. The budget
  /// starts when the job starts running, not when it is enqueued.
  double time_limit_s = -1.0;
  /// The engine closure. Must poll `cancel` at step boundaries and return
  /// true iff it reached a conclusive verdict.
  std::function<bool(const CancelToken&)> run;
};

struct RaceResult {
  /// True when some job reported a conclusive verdict.
  bool conclusive = false;
  /// Index of the winning job in the vector passed to race().
  size_t winner = static_cast<size_t>(-1);
  std::string winner_name;
  double seconds = 0.0;
  /// Thread-CPU seconds summed over every launched job (winner, losers and
  /// cancelled alike), measured per job via CLOCK_THREAD_CPUTIME_ID. With
  /// workers racing this exceeds `seconds`; sequential it cannot.
  double cpu_seconds = 0.0;
  size_t launched = 0;
  size_t cancelled = 0;
};

class Portfolio {
 public:
  /// `workers` = 0 runs jobs sequentially inline; otherwise a fixed pool of
  /// that many threads is shared by all races of this portfolio.
  explicit Portfolio(size_t workers);

  /// Races `jobs` and returns once every started job has finished. The
  /// first job to report a conclusive verdict wins and cancels the rest
  /// (running jobs see their token flip; queued jobs are skipped). An
  /// optional `parent` token cancels the whole race from outside.
  /// Not itself thread-safe: one race at a time per Portfolio.
  RaceResult race(const std::vector<PortfolioJob>& jobs,
                  const CancelToken* parent = nullptr);

  size_t workers() const { return exec_.workers(); }

 private:
  Executor exec_;
};

// --- Engine adapters ---

/// Random-simulation engine: drives `n` with 64 random patterns per cycle
/// from the initial states and watches `bad`. When some lane raises `bad`
/// within `max_cycles`, deterministically re-simulates that lane and returns
/// its full binary trace (every register and input assigned at every cycle,
/// `bad` raised at the last); otherwise returns an empty trace. Polls
/// `cancel` once per simulated cycle.
Trace random_sim_error_trace(const Netlist& n, GateId bad, size_t max_cycles,
                             uint64_t seed, const CancelToken* cancel = nullptr);

}  // namespace rfn
