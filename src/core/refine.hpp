#pragma once
// Step 4: identifying crucial registers for refinement (paper Section 2.4).
//
// Two-phase algorithm:
//   Phase 1 (3-valued simulation): replay the abstract error trace on the
//   full design with everything unassigned held at X. A register outside the
//   abstract model whose simulated value *conflicts* with the value the
//   trace assumed for it is a crucial-register candidate; after flagging,
//   the trace value overrides the simulated one and the replay continues.
//   If no conflict arises (rare), the registers appearing most often in the
//   trace are taken instead.
//
//   Phase 2 (greedy ATPG minimization): add candidates one at a time to the
//   abstract model until sequential ATPG proves the error trace
//   unsatisfiable on the refined model; then try to remove earlier
//   candidates again, keeping only those whose removal would make the trace
//   satisfiable.

#include <vector>

#include "atpg/seq_atpg.hpp"
#include "netlist/subcircuit.hpp"

namespace rfn {

struct RefineOptions {
  AtpgOptions atpg;
  /// Cap on fallback candidates when phase 1 finds no conflicts.
  size_t max_fallback_candidates = 8;
  /// Candidate registers to try *before* the phase-1 simulation candidates
  /// (e.g. the registers a SAT bounded-UNSAT assumption core named). Hints
  /// steer which registers greedy minimization examines first — they are
  /// filtered against the current model, deduplicated, and remain subject
  /// to the phase-2b removal pass — so they never decide a verdict.
  std::vector<GateId> hints;
};

struct RefineStats {
  size_t conflict_candidates = 0;  // phase-1 candidates from conflicts
  size_t fallback_candidates = 0;  // phase-1 candidates from frequency
  size_t hint_candidates = 0;      // externally hinted candidates tried first
  size_t added_until_unsat = 0;    // prefix length that invalidated the trace
  size_t removed_by_greedy = 0;    // registers dropped by the backward pass
  size_t final_count = 0;
  size_t atpg_calls = 0;
  bool trace_invalidated = false;  // ATPG reached Unsat at some prefix
};

/// Phase 1 only: crucial-register candidates (ids of M registers outside
/// the abstract model), in discovery order.
std::vector<GateId> crucial_candidates_by_simulation(const Netlist& m,
                                                     const Trace& abs_trace,
                                                     const std::vector<GateId>& current_regs,
                                                     size_t max_fallback);

/// Full two-phase identification. `current_regs` is the abstract model's
/// included register set; `abs_trace` is in M ids; `property_roots` are the
/// property signals (needed to rebuild candidate abstract models); `bad` is
/// the property signal an error trace must raise.
std::vector<GateId> identify_crucial_registers(const Netlist& m,
                                               const std::vector<GateId>& property_roots,
                                               GateId bad,
                                               const std::vector<GateId>& current_regs,
                                               const Trace& abs_trace,
                                               const RefineOptions& opt = {},
                                               RefineStats* stats = nullptr);

/// Proof-driven shrink (the Eén/Mishchenko/Amla counterpart to grow): drop
/// from `included` (sorted) every register that is neither in
/// `core_registers` (sorted; the registers a bounded-UNSAT refutation's
/// assumption core needed) nor marked in `sticky`. Dropped registers are
/// marked in `sticky` so a register refinement later re-adds can never be
/// dropped again — the termination guarantee for the grow/shrink
/// alternation. `included` stays sorted. Returns the number dropped.
///
/// Soundness: the abstract check over-approximates for EVERY included set
/// and concrete checks always run on the full design, so shrinking changes
/// which abstractions the loop visits, never what a verdict means.
size_t shrink_abstraction(std::vector<GateId>* included,
                          const std::vector<GateId>& core_registers,
                          std::vector<bool>* sticky);

/// Helper shared with phase 2: is the abstract error trace still satisfiable
/// on the abstract model over `regs`? Maps the trace into the subcircuit,
/// adds the property target at the last cycle, and runs sequential ATPG.
AtpgStatus trace_satisfiable_on(const Netlist& m,
                                const std::vector<GateId>& property_roots, GateId bad,
                                const std::vector<GateId>& regs, const Trace& abs_trace,
                                const AtpgOptions& opt);

}  // namespace rfn
