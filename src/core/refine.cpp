#include "core/refine.hpp"

#include <algorithm>
#include <map>

#include "sim/sim3.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace rfn {

std::vector<GateId> crucial_candidates_by_simulation(const Netlist& m,
                                                     const Trace& abs_trace,
                                                     const std::vector<GateId>& current_regs,
                                                     size_t max_fallback) {
  std::vector<bool> in_model(m.size(), false);
  for (GateId r : current_regs) in_model[r] = true;

  // The trace assigns register values through both the state cube (kept
  // registers) and the input cube (cut registers appear as abstract-model
  // inputs).
  auto trace_reg_value = [&](const TraceStep& step, GateId r) -> Tri {
    const Tri s = cube_lookup(step.state, r);
    if (s != Tri::X) return s;
    return cube_lookup(step.inputs, r);
  };

  std::vector<GateId> candidates;
  std::vector<bool> is_candidate(m.size(), false);

  Sim3 sim(m);
  // Paper: initialize with the beginning state of the abstract model;
  // everything unassigned is X (not M's reset values — the replay follows
  // the abstract trace, which may start anywhere the abstract init allows).
  for (GateId r : m.regs()) sim.set(r, Tri::X);
  for (const Literal& lit : abs_trace.steps[0].state) sim.set(lit.signal, tri_of(lit.value));
  for (const Literal& lit : abs_trace.steps[0].inputs)
    if (m.is_reg(lit.signal)) sim.set(lit.signal, tri_of(lit.value));

  for (size_t c = 0; c < abs_trace.steps.size(); ++c) {
    const TraceStep& step = abs_trace.steps[c];
    if (c > 0) {
      // Compare the simulated register values against the trace's
      // assignments for this cycle; binary disagreement on an out-of-model
      // register flags it, then the trace value wins.
      for (GateId r : m.regs()) {
        const Tri want = trace_reg_value(step, r);
        if (want == Tri::X) continue;
        const Tri have = sim.value(r);
        if (have != Tri::X && have != want) {
          if (!in_model[r] && !is_candidate[r]) {
            is_candidate[r] = true;
            candidates.push_back(r);
          }
          sim.set(r, want);
        } else if (have == Tri::X) {
          sim.set(r, want);
        }
      }
    }
    sim.clear_inputs();
    for (const Literal& lit : step.inputs)
      if (m.is_input(lit.signal)) sim.set(lit.signal, tri_of(lit.value));
    sim.eval();
    if (c + 1 < abs_trace.steps.size()) sim.step();
  }

  if (candidates.empty()) {
    // Fallback: registers appearing most frequently in the trace.
    std::map<GateId, size_t> freq;
    for (const TraceStep& step : abs_trace.steps) {
      for (const Literal& lit : step.state)
        if (!in_model[lit.signal] && m.is_reg(lit.signal)) ++freq[lit.signal];
      for (const Literal& lit : step.inputs)
        if (m.is_reg(lit.signal) && !in_model[lit.signal]) ++freq[lit.signal];
    }
    std::vector<std::pair<size_t, GateId>> ranked;
    for (const auto& [r, f] : freq) ranked.emplace_back(f, r);
    std::sort(ranked.rbegin(), ranked.rend());
    for (const auto& [f, r] : ranked) {
      candidates.push_back(r);
      if (candidates.size() >= max_fallback) break;
    }
  }
  return candidates;
}

AtpgStatus trace_satisfiable_on(const Netlist& m,
                                const std::vector<GateId>& property_roots, GateId bad,
                                const std::vector<GateId>& regs, const Trace& abs_trace,
                                const AtpgOptions& opt) {
  const Subcircuit sub = extract_abstract_model(m, property_roots, regs);
  std::vector<Cube> cubes(abs_trace.steps.size());
  for (size_t c = 0; c < abs_trace.steps.size(); ++c) {
    for (const Literal& lit : abs_trace.steps[c].state) {
      const GateId nw = sub.to_new(lit.signal);
      if (nw != kNullGate) cube_add(cubes[c], {nw, lit.value});
    }
    for (const Literal& lit : abs_trace.steps[c].inputs) {
      const GateId nw = sub.to_new(lit.signal);
      if (nw != kNullGate) cube_add(cubes[c], {nw, lit.value});
    }
  }
  // bad == kNullGate means the trace itself encodes the violation (coverage
  // analysis: the last state cube is the targeted coverage state).
  if (bad != kNullGate) {
    const GateId bad_new = sub.to_new(bad);
    RFN_CHECK(bad_new != kNullGate, "property signal missing from abstract model");
    if (!cube_add(cubes.back(), {bad_new, true})) return AtpgStatus::Unsat;
  }
  return solve_cycle_cubes(sub.net, cubes, opt).status;
}

std::vector<GateId> identify_crucial_registers(const Netlist& m,
                                               const std::vector<GateId>& property_roots,
                                               GateId bad,
                                               const std::vector<GateId>& current_regs,
                                               const Trace& abs_trace,
                                               const RefineOptions& opt,
                                               RefineStats* stats) {
  Span span("refine");
  RefineStats local;
  RefineStats& st = stats ? *stats : local;

  std::vector<GateId> candidates = crucial_candidates_by_simulation(
      m, abs_trace, current_regs, opt.max_fallback_candidates);
  st.conflict_candidates = candidates.size();

  // Hinted registers (a SAT bounded-UNSAT core, typically) go in front of
  // the simulation candidates: they come from a proof that the spurious
  // trace cannot concretize, so phase 2a tends to invalidate the trace
  // within the hint prefix. They pass through the same greedy machinery as
  // every other candidate, so hints steer the search without deciding it.
  if (!opt.hints.empty()) {
    std::vector<bool> skip(m.size(), false);
    for (GateId r : current_regs) skip[r] = true;
    for (GateId r : candidates) skip[r] = true;
    std::vector<GateId> merged;
    for (GateId r : opt.hints) {
      if (r >= m.size() || !m.is_reg(r) || skip[r]) continue;
      skip[r] = true;
      merged.push_back(r);
    }
    st.hint_candidates = merged.size();
    merged.insert(merged.end(), candidates.begin(), candidates.end());
    candidates = std::move(merged);
  }

  if (candidates.empty()) {
    st.final_count = 0;
    return candidates;
  }

  // Phase 2a: add candidates one by one until the trace dies.
  std::vector<GateId> added;
  std::vector<GateId> model = current_regs;
  bool invalidated = false;
  for (GateId r : candidates) {
    added.push_back(r);
    model.push_back(r);
    ++st.atpg_calls;
    const AtpgStatus s =
        trace_satisfiable_on(m, property_roots, bad, model, abs_trace, opt.atpg);
    if (s == AtpgStatus::Unsat) {
      invalidated = true;
      break;
    }
    // Sat or Abort: keep adding. (Abort counts as "maybe satisfiable"; the
    // paper falls back to including all candidates in that situation.)
  }
  st.added_until_unsat = added.size();
  st.trace_invalidated = invalidated;
  if (!invalidated) {
    st.final_count = added.size();
    return added;  // all candidates (paper's resource-limit fallback)
  }

  // Phase 2b: try to remove previously added registers (not the last one).
  for (size_t i = 0; i + 1 < added.size();) {
    std::vector<GateId> trial = current_regs;
    for (size_t j = 0; j < added.size(); ++j)
      if (j != i) trial.push_back(added[j]);
    ++st.atpg_calls;
    const AtpgStatus s =
        trace_satisfiable_on(m, property_roots, bad, trial, abs_trace, opt.atpg);
    if (s == AtpgStatus::Unsat) {
      // Still invalidated without added[i]: drop it for good.
      added.erase(added.begin() + static_cast<long>(i));
      ++st.removed_by_greedy;
    } else {
      ++i;  // needed (or unknown): keep it
    }
  }
  st.final_count = added.size();
  return added;
}

size_t shrink_abstraction(std::vector<GateId>* included,
                          const std::vector<GateId>& core_registers,
                          std::vector<bool>* sticky) {
  RFN_CHECK(included != nullptr && sticky != nullptr,
            "shrink_abstraction needs an included set and a sticky map");
  size_t dropped = 0;
  auto out = included->begin();
  for (GateId r : *included) {
    const bool keep =
        (r < sticky->size() && (*sticky)[r]) ||
        std::binary_search(core_registers.begin(), core_registers.end(), r);
    if (keep) {
      *out++ = r;
    } else {
      if (r < sticky->size()) (*sticky)[r] = true;
      ++dropped;
    }
  }
  included->erase(out, included->end());
  return dropped;
}

}  // namespace rfn
