#pragma once
// Certificate construction: turns a concluded verdict into a checkable
// rfn-cert-v1 witness (cert/format.hpp).
//
//   * Holds — the fixpoint on the final abstraction is recomputed (same
//     recipe as core/certify.hpp) and its complement enumerated as an
//     irredundant cube cover (BddMgr::isop_cover); each cube, negated and
//     mapped from state variables back to original register ids, becomes
//     one clause of the inductive invariant.
//   * Fails — the error trace is embedded verbatim.
//
// The builder also self-checks every witness through the independent SAT
// checker (cert/check.hpp) before handing it out, recording `cert.*`
// metrics, so a verdict whose artifact would not survive an external
// `rfn_check` run is reported as a certification failure right away.

#include <string>
#include <vector>

#include "cert/check.hpp"
#include "cert/format.hpp"
#include "core/rfn.hpp"
#include "netlist/netlist.hpp"

namespace rfn {

/// Cap on invariant clauses during extraction; covers past this size are
/// reported as extraction failures rather than truncated (a truncated cover
/// would not be an invariant at all).
inline constexpr size_t kMaxInvariantClauses = 1u << 14;

struct CertificateBuild {
  bool ok = false;
  std::string detail;  // diagnostic when extraction failed
  cert::Certificate certificate;
};

/// Extracts a holds-invariant witness for `bad` from the abstraction over
/// `included_regs`. Fails (ok = false) when the fixpoint cannot be
/// recomputed within `opt`'s budget or the ISOP cover overflows
/// `max_clauses`.
CertificateBuild build_holds_certificate(const Netlist& m, GateId bad,
                                         const std::string& property_name,
                                         const std::vector<GateId>& included_regs,
                                         const ReachOptions& opt = {},
                                         size_t max_clauses = kMaxInvariantClauses);

/// Wraps a concrete error trace as a fails-trace witness.
CertificateBuild build_fails_certificate(const Netlist& m, GateId bad,
                                         const std::string& property_name,
                                         const Trace& trace);

/// Packages a PDR inductive frame (RfnResult::pdr_invariant) as a
/// holds-invariant witness without recomputing anything: the engine already
/// emits its clauses in the rfn-cert-v1 convention over a sorted register
/// scope, so this is a format fill plus validation. Used when PDR concluded
/// Holds — the frame's scope may be a register set no BDD fixpoint was ever
/// run on, so the recompute path of build_holds_certificate would not apply.
CertificateBuild build_holds_certificate_from_invariant(
    const Netlist& m, GateId bad, const std::string& property_name,
    const PdrInvariantWitness& inv);

/// A built-and-checked certificate for one concluded property: what the CLI
/// emits and what lands in the rfn-trace-v2 `certificate` record.
struct CertificateArtifact {
  /// Extraction produced a witness (false for inconclusive verdicts and
  /// budget/overflow failures; `certificate` is then meaningless).
  bool built = false;
  /// The witness survived the independent checker (implies built).
  bool checked = false;
  /// Failing obligation name when built && !checked (cert/check.hpp).
  std::string obligation;
  std::string detail;
  double seconds = 0.0;
  cert::Certificate certificate;
};

/// Builds the kind matching `verdict` and discharges it through
/// cert::check_certificate. Records cert.* metrics: counters cert.built /
/// cert.build_failed / cert.check_ok / cert.check_failed / cert.clauses,
/// timers cert.build / cert.check. Inconclusive verdicts return an
/// unbuilt artifact with a diagnostic, mirroring core/certify.hpp.
/// `pdr_invariant` (optional): when present and the verdict is Holds, the
/// witness comes from the PDR frame instead of a recomputed BDD fixpoint —
/// the self-check through the independent checker still runs either way.
CertificateArtifact certify_with_witness(const Netlist& m, GateId bad,
                                         const std::string& property_name,
                                         Verdict verdict, const Trace& error_trace,
                                         const std::vector<GateId>& final_registers,
                                         const ReachOptions& opt = {},
                                         const PdrInvariantWitness* pdr_invariant = nullptr);

}  // namespace rfn
