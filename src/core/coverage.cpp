#include "core/coverage.hpp"

#include <algorithm>

#include "core/abstraction.hpp"
#include "core/concretize.hpp"
#include "core/hybrid_trace.hpp"
#include "mc/image.hpp"
#include "netlist/subcircuit.hpp"
#include "sim/sim3.hpp"
#include "util/log.hpp"

namespace rfn {

namespace {

/// Builds the BDD (over the given variables) of the characteristic function
/// of a bitset: state s is in the set iff bits[s], where bit i of s is the
/// value of vars[i].
Bdd bdd_from_bitset(BddMgr& mgr, const std::vector<BddVar>& vars,
                    const std::vector<uint8_t>& bits, uint8_t wanted) {
  auto rec = [&](auto&& self, size_t i, size_t base) -> Bdd {
    if (i == vars.size())
      return bits[base] == wanted ? mgr.bdd_true() : mgr.bdd_false();
    const Bdd lo = self(self, i + 1, base);
    const Bdd hi = self(self, i + 1, base | (size_t{1} << i));
    return mgr.ite(mgr.var(vars[i]), hi, lo);
  };
  return rec(rec, 0, 0);
}

/// Evaluates membership of every coverage state in a BDD over the coverage
/// variables. Non-coverage variables are irrelevant by construction.
std::vector<uint8_t> membership(BddMgr& mgr, const Bdd& f,
                                const std::vector<BddVar>& vars) {
  std::vector<uint8_t> out(size_t{1} << vars.size(), 0);
  std::vector<bool> assign(mgr.num_vars(), false);
  for (size_t s = 0; s < out.size(); ++s) {
    for (size_t i = 0; i < vars.size(); ++i) assign[vars[i]] = (s >> i) & 1;
    out[s] = mgr.eval(f, assign) ? 1 : 0;
  }
  return out;
}

}  // namespace

CoverageResult rfn_coverage_analysis(const Netlist& m,
                                     const std::vector<GateId>& coverage_regs,
                                     const CoverageOptions& opt) {
  RFN_CHECK(coverage_regs.size() <= 24, "too many coverage signals (%zu)",
            coverage_regs.size());
  for (GateId r : coverage_regs)
    RFN_CHECK(m.is_reg(r), "coverage signal %u is not a register", r);

  const Deadline deadline(opt.time_limit_s);
  CoverageResult result;
  result.total_states = size_t{1} << coverage_regs.size();
  result.state_class.assign(result.total_states, 0);

  // Included registers start as the coverage registers themselves (their
  // outputs are the "property signals" of this analysis).
  std::vector<GateId> included = initial_abstraction_registers(
      m, std::vector<GateId>(coverage_regs.begin(), coverage_regs.end()));
  for (GateId r : coverage_regs)
    if (std::find(included.begin(), included.end(), r) == included.end())
      included.push_back(r);
  const std::vector<GateId> roots(coverage_regs.begin(), coverage_regs.end());

  SavedOrder saved_order;
  auto mark_trace_reachable = [&](const Trace& t) {
    // Complete the (possibly partial) concrete trace deterministically and
    // record the coverage state of every cycle as reachable.
    Sim3 sim(m);
    sim.load_initial_state();
    for (GateId r : m.regs())
      if (sim.value(r) == Tri::X)
        sim.set(r, cube_lookup(t.steps[0].state, r) == Tri::T ? Tri::T : Tri::F);
    for (size_t c = 0; c < t.steps.size(); ++c) {
      for (GateId in : m.inputs()) {
        const Tri v = cube_lookup(t.steps[c].inputs, in);
        sim.set(in, v == Tri::X ? Tri::F : v);
      }
      sim.eval();
      size_t s = 0;
      bool all_binary = true;
      for (size_t i = 0; i < coverage_regs.size(); ++i) {
        const Tri v = sim.value(coverage_regs[i]);
        if (v == Tri::X) all_binary = false;
        if (v == Tri::T) s |= size_t{1} << i;
      }
      if (all_binary && result.state_class[s] == 0) result.state_class[s] = 2;
      if (c + 1 < t.steps.size()) sim.step();
    }
  };

  for (size_t iter = 0; iter < opt.max_iterations; ++iter) {
    if (deadline.expired()) break;
    const size_t unknown_before =
        static_cast<size_t>(std::count(result.state_class.begin(),
                                       result.state_class.end(), 0));
    if (unknown_before == 0) break;
    ++result.iterations;

    std::sort(included.begin(), included.end());
    included.erase(std::unique(included.begin(), included.end()), included.end());
    const Subcircuit sub = extract_abstract_model(m, roots, included);

    BddMgr mgr;
    Encoder enc(mgr, sub.net);
    if (!saved_order.empty()) apply_saved_order(mgr, enc, sub, saved_order);
    mgr.set_auto_reorder(opt.dynamic_reordering);
    mgr.set_node_budget(opt.reach.max_live_nodes);
    ImageComputer img(enc);
    if (img.aborted()) {
      RFN_WARN("coverage iter %zu: abstract model exceeded node budget", iter);
      break;
    }

    std::vector<BddVar> cov_vars;
    for (GateId r : coverage_regs) cov_vars.push_back(enc.state_var(sub.to_new(r)));

    // Full fixpoint on the abstract model (no early stop: the projection of
    // the complete fixpoint is what classifies unreachable states).
    ReachOptions reach_opt = opt.reach;
    const double rem = deadline.remaining_seconds();
    reach_opt.time_limit_s =
        reach_opt.time_limit_s < 0.0 ? rem : std::min(reach_opt.time_limit_s, rem);
    const ReachResult reach =
        forward_reach(img, enc.initial_states(), mgr.bdd_false(), reach_opt);
    saved_order = save_order(mgr, enc, sub);
    if (reach.status != ReachStatus::Proved) {
      RFN_WARN("coverage iter %zu: abstract fixpoint did not complete", iter);
      break;
    }

    // Classify: coverage states outside the projected fixpoint are
    // unreachable on the over-approximating abstraction, hence on M.
    std::vector<BddVar> non_cov;
    for (BddVar v : enc.state_vars())
      if (std::find(cov_vars.begin(), cov_vars.end(), v) == cov_vars.end())
        non_cov.push_back(v);
    const Bdd projected = mgr.exists(reach.reached, non_cov);
    const std::vector<uint8_t> in_proj = membership(mgr, projected, cov_vars);
    for (size_t s = 0; s < result.total_states; ++s)
      if (!in_proj[s] && result.state_class[s] == 0) result.state_class[s] = 1;

    // Remaining unknown states: try to witness some of them.
    const Bdd targets = bdd_from_bitset(mgr, cov_vars, result.state_class, 0);
    if (targets.is_false()) break;

    bool refined = false;
    size_t attempts = 0;
    Bdd remaining = targets;
    while (attempts < opt.traces_per_iteration && !remaining.is_false() &&
           !deadline.expired()) {
      ++attempts;
      // Reuse the rings: find the first ring that hits the remaining
      // targets and extract a hybrid trace to it.
      if (!reach.reached.intersects(remaining)) break;
      ReachResult hit = reach;
      hit.status = ReachStatus::BadReachable;
      const Trace abs_trace_n =
          hybrid_error_trace(enc, sub.net, hit, remaining, HybridTraceOptions{});
      if (abs_trace_n.empty()) break;
      const Trace abs_trace = sub.trace_to_old(abs_trace_n);

      // Concretize: succeed -> mark reachable states; fail -> refine.
      // The "bad" signal for coverage is implicit (a specific coverage
      // state); concretization targets the final state cube directly.
      std::vector<Cube> cubes = guidance_cubes(m, abs_trace);
      const SeqAtpgResult seq = solve_cycle_cubes(m, cubes, opt.concretize_atpg);
      if (seq.status == AtpgStatus::Sat) {
        mark_trace_reachable(seq.trace);
        // Exclude the targeted coverage state from this iteration's
        // remaining set either way.
        const Bdd final_cube = enc.cube_bdd(sub.cube_to_new(abs_trace.steps.back().state));
        remaining = remaining.diff(mgr.exists(final_cube, non_cov));
      } else {
        // Spurious: refine with this trace. The property signal for the
        // refinement replay is not a single wire; pass the coverage target
        // via trace satisfiability on the final state cube only.
        RefineStats rst;
        const std::vector<GateId> crucial = identify_crucial_registers(
            m, roots, /*bad=*/kNullGate, included, abs_trace, opt.refine, &rst);
        if (!crucial.empty()) {
          for (GateId r : crucial) included.push_back(r);
          refined = true;
        }
        break;
      }
    }
    if (!refined && attempts == 0) break;  // nothing more to do
    if (!refined && reach.status == ReachStatus::Proved && attempts > 0) {
      // We witnessed some states but had no refinement; loop again only if
      // progress was made.
      const size_t unknown_after =
          static_cast<size_t>(std::count(result.state_class.begin(),
                                         result.state_class.end(), 0));
      if (unknown_after == unknown_before) break;
    }
  }

  for (uint8_t c : result.state_class) {
    if (c == 1) ++result.unreachable;
    if (c == 2) ++result.reachable;
  }
  result.unknown = result.total_states - result.unreachable - result.reachable;
  result.final_abstract_regs = included.size();
  result.seconds = deadline.elapsed_seconds();
  return result;
}

}  // namespace rfn
