#include "core/concretize.hpp"

#include <algorithm>

#include "sim/sim3.hpp"
#include "util/trace.hpp"

namespace rfn {

std::vector<Cube> guidance_cubes(const Netlist& m, const Trace& abs_trace) {
  (void)m;  // kept in the signature for symmetry with consensus_guidance
  std::vector<Cube> cubes(abs_trace.steps.size());
  for (size_t c = 0; c < abs_trace.steps.size(); ++c) {
    for (const Literal& lit : abs_trace.steps[c].state) cube_add(cubes[c], lit);
    // Input literals of the abstract model are either real primary inputs
    // of M or outputs of cut registers; both are just signals of M here.
    for (const Literal& lit : abs_trace.steps[c].inputs) cube_add(cubes[c], lit);
  }
  return cubes;
}

ConcretizeResult concretize_trace(const Netlist& m, const Trace& abs_trace, GateId bad,
                                  const AtpgOptions& opt) {
  Span span("concretize");
  ConcretizeResult res;
  RFN_CHECK(!abs_trace.empty(), "concretize of empty trace");
  const size_t k = abs_trace.steps.size();

  // Fast path: replay the abstract trace's primary-input assignments on M
  // from its real initial state. If the property signal fires, the abstract
  // trace already is a concrete error trace (the paper's "contains only
  // assignments to the primary inputs of the original design" case, checked
  // semantically instead of syntactically).
  {
    Sim3 sim(m);
    sim.load_initial_state();
    Trace direct;
    direct.steps.resize(k);
    bool init_consistent = true;
    // Cycle-1 register assignments must agree with M's initial values.
    for (const Literal& lit : abs_trace.steps[0].state) {
      const Tri have = sim.value(lit.signal);
      if (have != Tri::X && have != tri_of(lit.value)) init_consistent = false;
    }
    for (const Literal& lit : abs_trace.steps[0].inputs) {
      if (!m.is_reg(lit.signal)) continue;
      const Tri have = sim.value(lit.signal);
      if (have != Tri::X && have != tri_of(lit.value)) init_consistent = false;
    }
    if (init_consistent) {
      for (size_t c = 0; c < k; ++c) {
        sim.clear_inputs();
        for (const Literal& lit : abs_trace.steps[c].inputs)
          if (m.is_input(lit.signal)) {
            sim.set(lit.signal, tri_of(lit.value));
            direct.steps[c].inputs.push_back(lit);
          }
        sim.eval();
        for (GateId r : m.regs())
          if (sim.value(r) != Tri::X)
            direct.steps[c].state.push_back({r, sim.value(r) == Tri::T});
        if (c + 1 < k) sim.step();
      }
      if (sim.value(bad) == Tri::T) {
        res.status = AtpgStatus::Sat;
        res.trace = direct;
        res.direct_replay = true;
        return res;
      }
    }
  }

  // Guided sequential ATPG at the abstract trace's depth.
  std::vector<Cube> cubes = guidance_cubes(m, abs_trace);
  if (!cube_add(cubes[k - 1], {bad, true})) {
    res.status = AtpgStatus::Unsat;
    return res;
  }
  SeqAtpgResult seq = solve_cycle_cubes(m, cubes, opt);
  res.status = seq.status;
  res.backtracks = seq.backtracks;
  if (seq.status == AtpgStatus::Sat) res.trace = std::move(seq.trace);
  return res;
}

std::vector<Cube> consensus_guidance(const Netlist& m, const std::vector<Trace>& traces,
                                     size_t cycles) {
  std::vector<Cube> cubes(cycles);
  bool first = true;
  for (const Trace& t : traces) {
    if (t.steps.size() != cycles) continue;
    const std::vector<Cube> own = guidance_cubes(m, t);
    if (first) {
      cubes = own;
      first = false;
      continue;
    }
    for (size_t c = 0; c < cycles; ++c) {
      Cube agreed;
      for (const Literal& lit : cubes[c])
        if (cube_lookup(own[c], lit.signal) == tri_of(lit.value)) agreed.push_back(lit);
      cubes[c] = std::move(agreed);
    }
  }
  return cubes;
}

ConcretizeResult concretize_with_traces(const Netlist& m,
                                        const std::vector<Trace>& traces, GateId bad,
                                        const AtpgOptions& opt) {
  ConcretizeResult last;
  RFN_CHECK(!traces.empty(), "concretize_with_traces needs traces");
  bool all_unsat = true;

  // Pass 1: each trace's own guidance (strongest constraints first).
  for (const Trace& t : traces) {
    const ConcretizeResult res = concretize_trace(m, t, bad, opt);
    if (res.status == AtpgStatus::Sat) return res;
    all_unsat &= res.status == AtpgStatus::Unsat;
    last = res;
  }

  // Pass 2: consensus guidance per trace length — weaker cubes, so a trace
  // of the same depth that deviates from any single abstract trace can
  // still be found.
  std::vector<size_t> lengths;
  for (const Trace& t : traces)
    if (std::find(lengths.begin(), lengths.end(), t.steps.size()) == lengths.end())
      lengths.push_back(t.steps.size());
  for (size_t cycles : lengths) {
    size_t group = 0;
    for (const Trace& t : traces) group += t.steps.size() == cycles;
    if (group < 2) continue;  // consensus of one is pass 1 again
    std::vector<Cube> cubes = consensus_guidance(m, traces, cycles);
    if (!cube_add(cubes[cycles - 1], {bad, true})) continue;
    SeqAtpgResult seq = solve_cycle_cubes(m, cubes, opt);
    if (seq.status == AtpgStatus::Sat) {
      ConcretizeResult res;
      res.status = AtpgStatus::Sat;
      res.trace = std::move(seq.trace);
      res.backtracks = seq.backtracks;
      return res;
    }
    all_unsat &= seq.status == AtpgStatus::Unsat;
  }
  last.status = all_unsat ? AtpgStatus::Unsat : AtpgStatus::Abort;
  return last;
}

}  // namespace rfn
