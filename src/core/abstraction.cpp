#include "core/abstraction.hpp"

#include <algorithm>
#include <map>

#include "netlist/analysis.hpp"

namespace rfn {

std::vector<GateId> initial_abstraction_registers(const Netlist& m,
                                                  const std::vector<GateId>& property_roots) {
  // If a property root is itself a register (the usual watchdog idiom),
  // include it; support_registers alone would stop at it without including
  // its next-state cone.
  std::vector<GateId> regs = support_registers(m, property_roots);
  for (GateId r : property_roots) {
    if (m.is_reg(r) && std::find(regs.begin(), regs.end(), r) == regs.end())
      regs.push_back(r);
  }
  return regs;
}

SavedOrder save_order(const BddMgr& mgr, const Encoder& enc, const Subcircuit& sub) {
  SavedOrder saved;
  for (uint32_t lvl = 0; lvl < mgr.num_vars(); ++lvl) {
    const BddVar v = mgr.var_at_level(lvl);
    const GateId reg = enc.reg_of_var(v);
    if (reg != kNullGate) {
      saved.tokens.push_back({enc.is_next_var(v) ? SavedOrder::Kind::Next
                                                 : SavedOrder::Kind::Cur,
                              sub.to_old(reg)});
      continue;
    }
    const GateId input = enc.input_of_var(v);
    if (input != kNullGate)
      saved.tokens.push_back({SavedOrder::Kind::Cur, sub.to_old(input)});
  }
  return saved;
}

void apply_saved_order(BddMgr& mgr, const Encoder& enc, const Subcircuit& sub,
                       const SavedOrder& saved) {
  if (saved.empty()) return;
  // Map (kind, m_id) -> var in the new encoder. The "current value" of an
  // original signal is its state var if it is a kept register, or its input
  // var if it appears as a (pseudo-)input.
  std::map<std::pair<int, GateId>, BddVar> var_of;
  const Netlist& n = enc.netlist();
  for (GateId r : n.regs()) {
    var_of[{0, sub.to_old(r)}] = enc.state_var(r);
    var_of[{1, sub.to_old(r)}] = enc.next_var(r);
  }
  for (GateId i : n.inputs()) var_of[{0, sub.to_old(i)}] = enc.input_var(i);

  std::vector<bool> placed(mgr.num_vars(), false);
  std::vector<BddVar> order;
  order.reserve(mgr.num_vars());
  for (const SavedOrder::Token& t : saved.tokens) {
    const auto it = var_of.find({t.kind == SavedOrder::Kind::Next ? 1 : 0, t.m_id});
    if (it == var_of.end() || placed[it->second]) continue;
    placed[it->second] = true;
    order.push_back(it->second);
  }
  // Remaining variables keep their current relative order at the bottom.
  for (uint32_t lvl = 0; lvl < mgr.num_vars(); ++lvl) {
    const BddVar v = mgr.var_at_level(lvl);
    if (!placed[v]) order.push_back(v);
  }
  mgr.set_order(order);
}

}  // namespace rfn
