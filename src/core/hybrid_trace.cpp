#include "core/hybrid_trace.hpp"

#include "mc/image.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfn {

namespace {

/// One flush per public trace-extraction call ("hybrid.*"). The
/// no-cut vs min-cut split is the paper's Figure-1 quantity: how often the
/// pre-image cube was usable directly vs routed through combinational ATPG.
void record_hybrid_metrics(const HybridTraceStats& st, size_t traces) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.counter("hybrid.walks").add(1);
  m.counter("hybrid.traces").add(traces);
  m.counter("hybrid.nocut_cubes").add(st.nocut_cubes);
  m.counter("hybrid.mincut_cubes").add(st.mincut_cubes);
  m.counter("hybrid.atpg_calls").add(st.atpg_calls);
  m.counter("hybrid.atpg_rejects").add(st.atpg_rejects);
  m.gauge("hybrid.mc_inputs").set(static_cast<int64_t>(st.mc_inputs));
  m.gauge("hybrid.model_inputs").set(static_cast<int64_t>(st.model_inputs));
}

}  // namespace

namespace {

/// Splits a BDD cube into N-cube parts. Literals on MC-input variables that
/// correspond to internal signals of N land in `internal`; those on N's
/// registers/inputs land in `state`/`inputs`.
struct SplitCube {
  Cube state;     // over N's registers
  Cube inputs;    // over N's primary inputs
  Cube internal;  // over internal signals of N (cut variables)
};

SplitCube split_mc_cube(const Encoder& enc_n, const Encoder& enc_mc,
                        const Subcircuit& mc, const Netlist& n,
                        const std::vector<BddLit>& lits) {
  SplitCube out;
  for (const BddLit& l : lits) {
    if (enc_n.is_state_var(l.var)) {
      out.state.push_back({enc_n.reg_of_var(l.var), l.positive});
      continue;
    }
    const GateId n_input = enc_n.input_of_var(l.var);
    if (n_input != kNullGate) {
      out.inputs.push_back({n_input, l.positive});
      continue;
    }
    // Must be a fresh MC input variable: translate through MC to N ids.
    const GateId mc_input = enc_mc.input_of_var(l.var);
    RFN_CHECK(mc_input != kNullGate, "cube literal on unknown var %u", l.var);
    const GateId n_sig = mc.to_old(mc_input);
    RFN_CHECK(n.is_comb(n_sig), "cut signal %u is not internal", n_sig);
    out.internal.push_back({n_sig, l.positive});
  }
  return out;
}

/// Shared machinery for one or many backward walks over the same min-cut
/// design, encoders and rings.
class HybridWalker {
 public:
  HybridWalker(Encoder& enc, const Netlist& n, const ReachResult& reach,
               const Bdd& bad, const HybridTraceOptions& opt, HybridTraceStats& st)
      : enc_(enc),
        n_(n),
        reach_(reach),
        opt_(opt),
        st_(st),
        mcr_(compute_mincut_design(n)),
        enc_mc_(enc.mgr(), mcr_.mc, enc),
        img_mc_(enc_mc_) {
    st_.mc_inputs = mcr_.mc.net.num_inputs();
    st_.model_inputs = n.num_inputs();
    st_.cone_inputs = mcr_.cone_inputs;
    RFN_INFO("hybrid: model inputs=%zu cone inputs=%zu mincut inputs=%zu",
             st_.model_inputs, st_.cone_inputs, st_.mc_inputs);
    while (k_ < reach.rings.size() && !reach.rings[k_].intersects(bad)) ++k_;
    RFN_CHECK(k_ < reach.rings.size(), "rings do not intersect bad");
    target_set_ = reach.rings[k_] & bad;
  }

  size_t k() const { return k_; }

  /// Candidate starting cubes over the bad intersection (fattest first,
  /// then DFS path cubes).
  std::vector<std::vector<BddLit>> start_cubes(size_t count) {
    BddMgr& mgr = enc_.mgr();
    std::vector<std::vector<BddLit>> cubes;
    cubes.push_back(mgr.shortest_cube(target_set_));
    for (auto& c : mgr.first_cubes(target_set_, count)) {
      if (c != cubes.front()) cubes.push_back(std::move(c));
      if (cubes.size() >= count) break;
    }
    return cubes;
  }

  /// Walks backward from one starting cube; empty trace on failure.
  /// `variant` rotates the candidate-cube order at every backward step, so
  /// different variants explore different abstract traces.
  Trace walk(const std::vector<BddLit>& start_lits, size_t variant = 0) {
    BddMgr& mgr = enc_.mgr();
    Trace trace;
    trace.steps.resize(k_ + 1);
    {
      Cube state, inputs;
      std::vector<BddLit> other;
      enc_.split_lits(start_lits, state, inputs, other);
      RFN_CHECK(other.empty() && inputs.empty(), "bad set mentions non-state vars");
      trace.steps[k_].state = state;
    }

    Cube target = trace.steps[k_].state;
    for (size_t i = k_; i-- > 0;) {
      if (should_stop(opt_.cancel)) return Trace{};
      const Bdd target_bdd = enc_.cube_bdd(target);
      const Bdd pre = img_mc_.pre_image_with_inputs(target_bdd);
      const Bdd step_set = pre & reach_.rings[i];
      RFN_CHECK(!step_set.is_false(), "hybrid trace dead-ends at step %zu", i);

      // Candidate cubes: the fattest cube first, then path cubes in DFS
      // order.
      std::vector<std::vector<BddLit>> candidates;
      candidates.push_back(mgr.shortest_cube(step_set));
      for (auto& c : mgr.first_cubes(step_set, opt_.cube_limit))
        candidates.push_back(std::move(c));

      bool accepted = false;
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        const auto& lits = candidates[(ci + variant) % candidates.size()];
        SplitCube sc = split_mc_cube(enc_, enc_mc_, mcr_.mc, n_, lits);
        if (sc.internal.empty()) {
          // No-cut cube: accept directly.
          ++st_.nocut_cubes;
          trace.steps[i].state = sc.state;
          trace.steps[i].inputs = sc.inputs;
          target = sc.state;
          accepted = true;
          break;
        }
        // Min-cut cube: ask combinational ATPG on N for a consistent no-cut
        // cube. Registers of N are free signals for the justification.
        ++st_.mincut_cubes;
        ++st_.atpg_calls;
        Cube targets = sc.internal;
        for (const Literal& lit : sc.state) cube_add(targets, lit);
        for (const Literal& lit : sc.inputs) cube_add(targets, lit);
        AtpgOptions atpg_opt = opt_.atpg;
        // Each walk variant perturbs the justification's decisions so the
        // extracted no-cut cubes (and hence the traces) diversify.
        atpg_opt.decision_seed = variant * 0x9E3779B97F4A7C15ULL;
        const CombAtpgResult res = justify(n_, targets, atpg_opt);
        if (res.status != AtpgStatus::Sat) {
          ++st_.atpg_rejects;
          continue;
        }
        Cube state, inputs;
        for (const Literal& lit : res.free_assignment) {
          if (n_.is_reg(lit.signal))
            cube_add(state, lit);
          else
            cube_add(inputs, lit);
        }
        // The justified assignment must still cover the min-cut cube's
        // state literals (they were targets, so it does); keep them
        // explicit.
        for (const Literal& lit : sc.state) cube_add(state, lit);
        for (const Literal& lit : sc.inputs) cube_add(inputs, lit);
        trace.steps[i].state = state;
        trace.steps[i].inputs = inputs;
        target = state;
        accepted = true;
        break;
      }
      if (!accepted) {
        RFN_WARN("hybrid trace: all %zu candidate cubes rejected at step %zu",
                 candidates.size(), i);
        return Trace{};
      }
    }
    return trace;
  }

 private:
  Encoder& enc_;
  const Netlist& n_;
  const ReachResult& reach_;
  const HybridTraceOptions& opt_;
  HybridTraceStats& st_;
  MinCutResult mcr_;
  Encoder enc_mc_;
  ImageComputer img_mc_;
  size_t k_ = 0;
  Bdd target_set_;
};

bool same_trace(const Trace& a, const Trace& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].state != b.steps[i].state) return false;
    if (a.steps[i].inputs != b.steps[i].inputs) return false;
  }
  return true;
}

}  // namespace

Trace hybrid_error_trace(Encoder& enc, const Netlist& n, const ReachResult& reach,
                         const Bdd& bad, const HybridTraceOptions& opt,
                         HybridTraceStats* stats) {
  Span span("hybrid.walk");
  HybridTraceStats local_stats;
  HybridTraceStats& st = stats ? *stats : local_stats;
  RFN_CHECK(reach.status == ReachStatus::BadReachable, "no abstract error trace");
  HybridWalker walker(enc, n, reach, bad, opt, st);
  Trace t = walker.walk(walker.start_cubes(1).front(), 0);
  record_hybrid_metrics(st, t.empty() ? 0 : 1);
  return t;
}

std::vector<Trace> hybrid_error_traces(Encoder& enc, const Netlist& n,
                                       const ReachResult& reach, const Bdd& bad,
                                       size_t count, const HybridTraceOptions& opt,
                                       HybridTraceStats* stats) {
  Span span("hybrid.walk");
  HybridTraceStats local_stats;
  HybridTraceStats& st = stats ? *stats : local_stats;
  RFN_CHECK(reach.status == ReachStatus::BadReachable, "no abstract error trace");
  RFN_CHECK(count >= 1, "need at least one trace");
  HybridWalker walker(enc, n, reach, bad, opt, st);

  std::vector<Trace> traces;
  const auto starts = walker.start_cubes(count);
  for (size_t variant = 0; variant < count && traces.size() < count; ++variant) {
    for (const auto& start : starts) {
      if (should_stop(opt.cancel)) {
        record_hybrid_metrics(st, traces.size());
        return traces;
      }
      Trace t = walker.walk(start, variant);
      if (t.empty()) continue;
      // Different starts/variants can converge onto the same trace.
      bool duplicate = false;
      for (const Trace& seen : traces)
        if (same_trace(seen, t)) {
          duplicate = true;
          break;
        }
      if (!duplicate) traces.push_back(std::move(t));
      if (traces.size() >= count) break;
    }
  }
  record_hybrid_metrics(st, traces.size());
  return traces;
}

}  // namespace rfn
