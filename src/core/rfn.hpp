#pragma once
// RFN: the abstraction-refinement property verifier (the paper's core).
//
// Verifies an unreachability property — "the `bad` signal never rises" — on
// a gate-level design by iterating:
//   1. build the abstract model (subcircuit) for the current register set;
//   2. BDD forward fixpoint on the abstract model; Proved there implies
//      Proved on the original design (subcircuit over-approximation), else
//      extract an abstract error trace with the BDD-ATPG hybrid engine;
//   3. concretize on the original design with guided sequential ATPG;
//   4. on spurious traces, refine via 3-valued simulation + greedy ATPG
//      register minimization.
// RFN never performs symbolic image computation on the original design.

#include <string>
#include <vector>

#include "atpg/comb_atpg.hpp"
#include "core/hybrid_trace.hpp"
#include "core/status.hpp"
#include "core/refine.hpp"
#include "mc/reach.hpp"
#include "netlist/netlist.hpp"
#include "util/executor.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

struct RfnOptions {
  /// Overall wall-clock budget (seconds); negative = unlimited.
  double time_limit_s = -1.0;
  size_t max_iterations = 1000;
  /// Per-iteration reachability budget on the abstract model.
  ReachOptions reach;
  /// Resource limits for the Step 3 guided search on the original design.
  AtpgOptions concretize_atpg;
  /// Resource limits for Step 4's greedy minimization.
  RefineOptions refine;
  HybridTraceOptions hybrid;
  /// Enable dynamic variable reordering during Step 2 and carry the order
  /// to the next iteration (paper Section 2.2).
  bool dynamic_reordering = true;
  bool save_var_order = true;
  /// When the exact fixpoint on an abstract model exceeds its resources,
  /// retry with the overlapping-partition approximate traversal (the
  /// paper's future-work engine): a Proved there is still a proof.
  bool approx_fallback = true;
  /// Block sizing for the approximate traversal.
  size_t approx_block_size = 12;
  size_t approx_overlap = 4;
  /// How many abstract error traces Step 2 extracts per iteration. With
  /// more than one, Step 3 guides sequential ATPG with the whole set (the
  /// paper's second future-work direction), falling back to consensus
  /// guidance when each individual trace is spurious.
  size_t traces_per_iteration = 1;
  /// Worker threads for the Step-2 / Step-3 engine races. 0 runs the race
  /// jobs sequentially inline in priority order (BDD reachability before the
  /// ATPG/simulation probes; guided ATPG before random simulation), which
  /// keeps the pre-portfolio behavior: the probe engines only run when the
  /// primary engine is inconclusive. Verdicts are identical either way —
  /// every engine is sound — only the winner (and wall time) changes.
  size_t portfolio_workers = 0;
  /// Cycle budget per race for the random-simulation engines (64 random
  /// patterns per cycle).
  size_t race_sim_cycles = 512;
  /// Iterative-deepening bound and per-depth backtrack budget for the
  /// sequential-ATPG engine racing the abstract check.
  size_t race_atpg_max_depth = 48;
  uint64_t race_atpg_backtracks = 1u << 14;
  /// Wall budget (seconds) for each probe engine per race; the primary
  /// engines (BDD fixpoint, guided ATPG) keep their own limits.
  double race_probe_time_s = 2.0;
  /// Engines entering the Step-2 / Step-3 races. Empty = all of
  /// {"bdd", "atpg", "sim", "sat", "pdr"}; a non-empty list must be a
  /// subset of those names (validate() rejects anything else). Only "bdd"
  /// and "pdr" can prove Holds, so a list with neither restricts the loop
  /// to falsification: a run that finds no error trace ends Unknown.
  std::vector<std::string> engines;
  /// Iterative-deepening bound for the SAT BMC engine's abstract probe
  /// (Step 2). The Step-3 concrete check is bounded by the abstract trace
  /// length instead, where bounded UNSAT is conclusive.
  size_t race_sat_max_depth = 48;
  /// Frame bound for the IC3/PDR engine in both races. PDR is complete —
  /// given enough frames it always converges — so this is purely a resource
  /// valve against designs whose inductive proofs are deep.
  size_t race_pdr_max_frames = 128;
  /// Wall budget (seconds) per race for the PDR engine (0 = unlimited).
  /// Unlike the probe engines, PDR can conclude Holds, but an unlimited PDR
  /// job in an otherwise-winnerless race would stall the loop, so it gets
  /// its own limit rather than race_probe_time_s.
  double race_pdr_time_s = 10.0;
  /// Feed the registers named by Step-3 bounded-UNSAT assumption cores to
  /// Step-4 refinement as crucial-register hints. Hints only — they reorder
  /// which candidates greedy minimization tries first, never what a verdict
  /// means — so this is a performance switch, not a soundness one.
  bool sat_core_hints = true;
  /// Proof-based abstraction shrinking (Eén/Mishchenko/Amla): after a
  /// Step-3 bounded-UNSAT concrete check, drop included registers that the
  /// proof's assumption core never touched, alternating counterexample-
  /// driven grow with proof-driven shrink. Sound for any included set — the
  /// abstract check over-approximates and concrete checks always run on the
  /// full design — so shrinking can change iteration counts and the final
  /// register set but never a verdict. Registers from the initial
  /// abstraction and registers re-added after a previous shrink (sticky)
  /// are never dropped, which guarantees loop progress.
  bool proof_shrink = false;

  /// True when `name` ("bdd", "atpg", "sim", "sat", "pdr") participates in
  /// races.
  bool engine_enabled(const char* name) const;
  /// External cancellation of the whole run: polled at iteration boundaries
  /// and chained into every engine race.
  const CancelToken* cancel = nullptr;
  /// Resource-watchdog budgets. When either is positive a monitor thread
  /// polls the run and cancels it on overrun; the run then degrades to the
  /// ResourceOut verdict with the trip recorded in RfnResult::budget_trip.
  /// budget_ms bounds wall time (<= 0: off); budget_bdd_nodes bounds the
  /// live-node count of the current iteration's BDD manager (<= 0: off);
  /// budget_mem_mb bounds process RSS as sampled from /proc/self/statm each
  /// watchdog poll (<= 0: off; no-op off-Linux where RSS reads return 0).
  double budget_ms = -1.0;
  int64_t budget_bdd_nodes = 0;
  int64_t budget_mem_mb = 0;
  /// Sample RSS into prof::RssLog on every watchdog poll even when no
  /// memory budget is set — the monitor thread then runs purely as the
  /// profiler's sampler (rfn_cli --prof-json sets this).
  bool sample_rss = false;

  /// Checks the options for consistency and returns human-readable errors
  /// (empty = valid) instead of clamping silently at run time. The CLI and
  /// VerifySession reject invalid options up front with these messages;
  /// RfnVerifier::run() keeps its historical clamping (see run()) so the
  /// compatibility path behaves exactly as before.
  std::vector<std::string> validate() const;
};

struct RfnIteration {
  size_t abstract_regs = 0;
  size_t abstract_inputs = 0;
  size_t abstract_gates = 0;
  ReachStatus reach_status{};
  size_t reach_steps = 0;
  /// BDD-manager internals for this iteration's abstract model (each
  /// iteration owns a fresh manager, so these are per-iteration exact).
  size_t bdd_peak_nodes = 0;
  size_t bdd_cache_lookups = 0;
  size_t bdd_cache_hits = 0;
  size_t bdd_reorderings = 0;
  /// Whether the approximate-traversal fallback ran and what it returned.
  bool approx_used = false;
  bool approx_proved = false;
  size_t trace_cycles = 0;          // abstract error trace length (0 = none)
  AtpgStatus concretize_status{};   // meaningful when a trace was found
  RefineStats refine;
  HybridTraceStats hybrid;
  /// Which engine won each race (empty = race had no conclusive winner).
  std::string abstract_engine;
  std::string concretize_engine;
  /// SAT BMC activity this iteration (zeros when the engine is disabled):
  /// solver-stat deltas over the shared incremental instance, the deepest
  /// frame it was asked, and the size of the Step-3 bounded-UNSAT assumption
  /// core handed to refinement as hints (0 = no core).
  uint64_t sat_conflicts = 0;
  uint64_t sat_propagations = 0;
  size_t sat_depth = 0;
  size_t sat_core_size = 0;
  /// IC3/PDR activity this iteration (zeros when the engine is disabled):
  /// totals across this iteration's abstract + concrete runs, and the
  /// highest frame either run opened.
  uint64_t pdr_obligations = 0;
  uint64_t pdr_clauses = 0;
  size_t pdr_frames = 0;
  /// Registers dropped by proof-based shrink this iteration (0 when
  /// proof_shrink is off or no bounded-UNSAT proof was available).
  size_t shrunk_registers = 0;
  /// Wall time of the Step-2 / Step-3 engine races, and the thread-CPU time
  /// their jobs burned (winner, losers and cancelled alike; see
  /// RaceResult::cpu_seconds).
  double abstract_race_seconds = 0.0;
  double concretize_race_seconds = 0.0;
  double abstract_race_cpu_seconds = 0.0;
  double concretize_race_cpu_seconds = 0.0;
  double seconds = 0.0;
};

/// What the resource watchdog observed when it fired (RfnResult::budget_trip).
struct BudgetTrip {
  bool tripped = false;
  std::string reason;      // "wall-budget" | "bdd-node-budget" | "mem-budget"
  double at_seconds = 0.0;
  int64_t bdd_nodes = 0;   // live nodes at the trip (node-budget trips)
  int64_t rss_bytes = 0;   // process RSS at the trip (0 when not sampled)
};

/// Inductive invariant carried out of a PDR Holds so certification can emit
/// an rfn-cert-v1 witness without recomputing a BDD fixpoint (the PDR frame
/// may hold over a register scope no BDD traversal was ever run on).
/// `registers` is sorted ascending; `clauses` already use the rfn-cert-v1
/// convention: literal ±(index into `registers` + 1).
struct PdrInvariantWitness {
  bool present = false;
  std::vector<GateId> registers;
  std::vector<std::vector<int32_t>> clauses;
};

struct RfnResult {
  Verdict verdict = Verdict::Unknown;
  /// Error trace on the original design (Fails only).
  Trace error_trace;
  size_t iterations = 0;
  size_t final_abstract_regs = 0;
  /// The included register set when the run ended (sorted): the final
  /// abstract model. Lets callers resume refinement or seed a later run.
  std::vector<GateId> final_registers;
  double seconds = 0.0;
  /// Thread-CPU seconds attributable to this run: the calling thread's CPU
  /// over run() plus, when portfolio workers raced off-thread, the CPU their
  /// jobs burned (sequential runs execute jobs inline, already counted).
  double cpu_seconds = 0.0;
  std::vector<RfnIteration> per_iteration;
  std::string note;  // diagnostic for Unknown/ResourceOut verdicts
  BudgetTrip budget_trip;
  /// Metrics isolation for this run: the registry snapshot taken at run()
  /// entry and the epoch id. Serializing the registry against the baseline
  /// (to_json(&metrics_baseline)) yields only this run's work even when
  /// several runs share the process.
  MetricsSnapshot metrics_baseline;
  uint64_t metrics_epoch = 0;
  /// Set when a PDR run concluded the verdict Holds: the inductive frame
  /// certification should turn into the witness (see PdrInvariantWitness).
  PdrInvariantWitness pdr_invariant;
};

/// Single-property compatibility wrapper over the session engine
/// (run_property in core/session.hpp). Kept as the stable entry point for
/// one-off verification; batches of properties on one design should go
/// through VerifySession, which adds cone clustering and cross-property
/// reuse on top of the same engine.
class RfnVerifier {
 public:
  /// `bad` is a signal of `m`; the property is "bad never becomes 1 in any
  /// reachable state/input". Safety properties are modeled by a watchdog
  /// whose output (or state) is `bad` (paper Section 3).
  RfnVerifier(const Netlist& m, GateId bad, RfnOptions opt = {});

  RfnResult run();

  /// The included register set after run() (the final abstract model).
  const std::vector<GateId>& abstract_registers() const { return included_; }

 private:
  const Netlist* m_;
  GateId bad_;
  RfnOptions opt_;
  std::vector<GateId> included_;
};

}  // namespace rfn
