#include "core/portfolio.hpp"

#include <bit>
#include <memory>

#include "sim/sim64.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/prof.hpp"
#include "util/trace.hpp"

namespace rfn {

Portfolio::Portfolio(size_t workers) : exec_(workers) {}

RaceResult Portfolio::race(const std::vector<PortfolioJob>& jobs,
                           const CancelToken* parent) {
  const Stopwatch watch;
  RaceResult res;
  if (jobs.empty()) return res;
  Span race_span("portfolio.race");

  // Heap-allocated and shared with every wrapper so the condvar/mutex stay
  // alive until the last worker leaves its epilogue, even though race()
  // returns as soon as it observes remaining == 0.
  struct Shared {
    explicit Shared(const CancelToken* parent) : cancel(-1.0, parent) {}
    std::mutex mu;
    std::condition_variable done_cv;
    CancelToken cancel;  // race-wide token: raised by the winner
    size_t remaining = 0;
    size_t winner = static_cast<size_t>(-1);
    size_t launched = 0;
    size_t cancelled = 0;
    size_t inconclusive = 0;
    // Per-job thread-CPU nanoseconds; each wrapper writes only its own slot
    // (same discipline as the jobs' result slots), read after the wait.
    std::vector<int64_t> cpu_ns;
  };
  auto sh = std::make_shared<Shared>(parent);
  sh->remaining = jobs.size();
  sh->cpu_ns.assign(jobs.size(), 0);

  SpanTracer& tracer = SpanTracer::global();
  for (size_t i = 0; i < jobs.size(); ++i) {
    // Causality across the executor boundary: the race thread emits the
    // flow origin, the worker binds its job span to the same id. The name
    // is interned because the worker's span outlives the race call frame.
    const char* span_name =
        tracer.enabled() ? tracer.intern(jobs[i].name) : "job";
    const uint64_t flow = tracer.flow_out(span_name);
    exec_.submit([sh, &jobs, i, span_name, flow] {
      SpanTracer::global().set_thread_name("portfolio-worker");
      Span job_span(span_name);
      SpanTracer::global().flow_in(span_name, flow);
      bool skip;
      {
        std::lock_guard<std::mutex> lk(sh->mu);
        skip = sh->cancel.cancelled();
        if (skip)
          ++sh->cancelled;
        else
          ++sh->launched;
      }
      bool won = false;
      if (!skip) {
        // The per-job budget starts now, not at enqueue time.
        const int64_t cpu0 = prof::thread_cpu_ns();
        CancelToken token(jobs[i].time_limit_s, &sh->cancel);
        won = jobs[i].run(token);
        sh->cpu_ns[i] = prof::thread_cpu_ns() - cpu0;
      }
      const char* outcome = "skipped";
      std::lock_guard<std::mutex> lk(sh->mu);
      if (!skip) {
        if (won && sh->winner == static_cast<size_t>(-1)) {
          sh->winner = i;
          sh->cancel.cancel();
          outcome = "won";
        } else if (sh->cancel.cancelled()) {
          // Cut short by the winner (or the parent token), or conclusive but
          // beaten to the verdict: either way the result was discarded.
          ++sh->cancelled;
          outcome = "cancelled";
        } else {
          ++sh->inconclusive;
          outcome = "inconclusive";
        }
      }
      job_span.annotate("outcome", outcome);
      job_span.end();
      if (--sh->remaining == 0) sh->done_cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lk(sh->mu);
    sh->done_cv.wait(lk, [&] { return sh->remaining == 0; });
    res.winner = sh->winner;
    res.launched = sh->launched;
    res.cancelled = sh->cancelled;
  }
  res.conclusive = res.winner != static_cast<size_t>(-1);
  if (res.conclusive) res.winner_name = jobs[res.winner].name;
  res.seconds = watch.seconds();
  if (tracer.enabled())
    race_span.annotate("winner", res.conclusive
                                     ? tracer.intern(res.winner_name)
                                     : "(none)");

  // One flush per race ("portfolio.*" and "engine.cpu.*"): the race's hot
  // path (job wrappers) touches only the Shared block, never the registry.
  MetricsRegistry& m = MetricsRegistry::global();
  m.counter("portfolio.races").add(1);
  m.counter("portfolio.jobs_launched").add(res.launched);
  m.counter("portfolio.jobs_cancelled").add(res.cancelled);
  m.counter("portfolio.jobs_inconclusive").add(sh->inconclusive);
  m.timer("portfolio.race").record(res.seconds);
  if (res.conclusive) m.counter("portfolio.wins." + res.winner_name).add(1);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (sh->cpu_ns[i] == 0) continue;  // skipped, or no thread-CPU clock
    const double cpu = static_cast<double>(sh->cpu_ns[i]) * 1e-9;
    res.cpu_seconds += cpu;
    m.timer("engine.cpu." + jobs[i].name).record(cpu);
  }
  RFN_DEBUG("portfolio race: winner=%s launched=%zu cancelled=%zu %.3fs",
            res.conclusive ? res.winner_name.c_str() : "(none)", res.launched,
            res.cancelled, res.seconds);
  return res;
}

Trace random_sim_error_trace(const Netlist& n, GateId bad, size_t max_cycles,
                             uint64_t seed, const CancelToken* cancel) {
  // Pass 1: cheap detection across 64 lanes at once.
  size_t hit_cycle = 0;
  int hit_lane = -1;
  {
    Rng rng(seed);
    Sim64 sim(n);
    sim.load_initial_state(rng);
    for (size_t c = 0; c < max_cycles; ++c) {
      if (should_stop(cancel)) return Trace{};
      sim.randomize_inputs(rng);
      sim.eval();
      if (const uint64_t word = sim.value(bad); word != 0) {
        hit_cycle = c;
        hit_lane = std::countr_zero(word);
        break;
      }
      sim.step();
    }
  }
  if (hit_lane < 0) return Trace{};

  // Pass 2: re-simulate the identical stimulus and transcribe the hit lane
  // into a fully-assigned binary trace.
  Trace trace;
  trace.steps.resize(hit_cycle + 1);
  Rng rng(seed);
  Sim64 sim(n);
  sim.load_initial_state(rng);
  for (size_t c = 0; c <= hit_cycle; ++c) {
    TraceStep& step = trace.steps[c];
    for (GateId r : n.regs()) step.state.push_back({r, sim.value_bit(r, hit_lane)});
    sim.randomize_inputs(rng);
    for (GateId in : n.inputs())
      step.inputs.push_back({in, sim.value_bit(in, hit_lane)});
    sim.eval();
    if (c < hit_cycle) sim.step();
  }
  RFN_CHECK(sim.value_bit(bad, hit_lane), "replay lost the simulation hit");
  return trace;
}

}  // namespace rfn
