#pragma once
// Plain symbolic model checking with cone-of-influence reduction — the
// baseline RFN is compared against in Table 1 ("to be fair, we perform
// symbolic model checking with COI reduction").

#include "core/rfn.hpp"
#include "mc/reach.hpp"

namespace rfn {

struct PlainMcResult {
  Verdict verdict = Verdict::Unknown;
  ReachStatus reach_status = ReachStatus::ResourceOut;
  size_t coi_regs = 0;
  size_t steps = 0;
  double seconds = 0.0;
};

/// Runs BDD reachability on the COI-reduced design. Fails/Holds are exact
/// (COI reduction preserves the property); Unknown means resources ran out —
/// the expected outcome on designs beyond BDD capacity.
PlainMcResult plain_model_check(const Netlist& m, GateId bad, const ReachOptions& opt,
                                bool dynamic_reordering = true);

}  // namespace rfn
