#pragma once
// Step 1 helpers: initial abstraction and BDD variable-order persistence.
//
// The very first abstract model is the subcircuit containing the transitive
// fanins (up to register outputs) of the property signals. At the end of
// each Step 2 the current BDD variable order is saved — keyed by original-
// design signal — and replayed as the initial order of the next iteration's
// fresh manager (paper Section 2.2, last paragraph).

#include <vector>

#include "bdd/bdd.hpp"
#include "mc/encoder.hpp"
#include "netlist/netlist.hpp"
#include "netlist/subcircuit.hpp"

namespace rfn {

/// Registers of the initial abstract model: those whose outputs lie in the
/// combinational fanin cone of the property signals.
std::vector<GateId> initial_abstraction_registers(const Netlist& m,
                                                  const std::vector<GateId>& property_roots);

/// A variable order expressed in original-design terms so it can be carried
/// across abstract models of different sizes.
struct SavedOrder {
  enum class Kind : uint8_t { Cur, Next };
  struct Token {
    Kind kind;
    GateId m_id;  // original-design signal: register, input, or cut signal
  };
  std::vector<Token> tokens;  // top level first
  bool empty() const { return tokens.empty(); }
};

/// Captures the manager's current order, translating each variable of `enc`
/// through `sub` into original-design ids. Variables the encoder does not
/// know (e.g. a min-cut child encoder's cut vars) are skipped.
SavedOrder save_order(const BddMgr& mgr, const Encoder& enc, const Subcircuit& sub);

/// Reorders `mgr` so that variables whose token appears in `saved` follow the
/// saved relative order; unknown variables keep their relative order after
/// them. Call right after constructing the encoder, before building any
/// large BDDs.
void apply_saved_order(BddMgr& mgr, const Encoder& enc, const Subcircuit& sub,
                       const SavedOrder& saved);

}  // namespace rfn
