#pragma once
// Step 3: searching for an error trace on the original design, guided by the
// abstract error trace (paper Section 2.3).
//
// The abstract trace bounds the depth (the real shortest trace is at least
// as long) and supplies cycle-by-cycle constraint cubes that steer the
// sequential ATPG search. RFN never performs symbolic image computation on
// the original design.

#include "atpg/seq_atpg.hpp"
#include "netlist/subcircuit.hpp"

namespace rfn {

struct ConcretizeResult {
  /// Sat: `trace` violates the property on the original design.
  /// Unsat: the abstract trace is spurious at this depth under guidance.
  /// Abort: resource limits hit.
  AtpgStatus status = AtpgStatus::Abort;
  Trace trace;
  uint64_t backtracks = 0;
  /// True when the abstract trace replayed concretely without any search.
  bool direct_replay = false;
};

/// `abs_trace` must be expressed in the original design's signal ids (use
/// Subcircuit::trace_to_old on the hybrid engine's output). `bad` is the
/// property signal of `m` that an error trace must raise at its last cycle.
ConcretizeResult concretize_trace(const Netlist& m, const Trace& abs_trace, GateId bad,
                                  const AtpgOptions& opt = {});

/// Converts an abstract trace (in M ids) into per-cycle guidance cubes over
/// M: register literals (both kept registers and cut-register pseudo-input
/// assignments) form the state cube, primary-input literals the input cube.
std::vector<Cube> guidance_cubes(const Netlist& m, const Trace& abs_trace);

/// Per-cycle guidance shared by all same-length traces in the set: only the
/// literals on which every trace agrees survive. The result is weaker (and
/// therefore more permissive) guidance than any single trace's.
std::vector<Cube> consensus_guidance(const Netlist& m, const std::vector<Trace>& traces,
                                     size_t cycles);

/// Step-3 concretization guided by a *set* of abstract traces (the paper's
/// second future-work direction). Tries each trace's full guidance in
/// order, then the consensus guidance of each trace-length group. Returns
/// the first Sat; Unsat only if every attempt was Unsat; Abort otherwise.
ConcretizeResult concretize_with_traces(const Netlist& m,
                                        const std::vector<Trace>& traces, GateId bad,
                                        const AtpgOptions& opt = {});

}  // namespace rfn
