#include "core/certificate.hpp"

#include <algorithm>

#include "mc/encoder.hpp"
#include "mc/image.hpp"
#include "mc/reach.hpp"
#include "netlist/analysis.hpp"
#include "netlist/subcircuit.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rfn {

namespace {

void fill_design(const Netlist& m, GateId bad, const std::string& property_name,
                 cert::Certificate* c) {
  c->design_hash = design_hash(m);
  c->design_regs = m.num_regs();
  c->design_inputs = m.num_inputs();
  c->design_gates = m.num_gates();
  c->property_name = property_name;
  c->bad = bad;
}

CertificateBuild failed(CertificateBuild res, std::string detail) {
  res.ok = false;
  res.detail = std::move(detail);
  return res;
}

}  // namespace

CertificateBuild build_holds_certificate(const Netlist& m, GateId bad,
                                         const std::string& property_name,
                                         const std::vector<GateId>& included_regs,
                                         const ReachOptions& opt,
                                         size_t max_clauses) {
  CertificateBuild res;
  res.certificate.kind = cert::CertKind::HoldsInvariant;
  fill_design(m, bad, property_name, &res.certificate);

  const Subcircuit sub = extract_abstract_model(m, {bad}, included_regs);
  const GateId bad_new = sub.to_new(bad);
  if (bad_new == kNullGate)
    return failed(std::move(res), "property signal missing from the abstraction");

  // Recompute the fixpoint on the abstraction — the same recipe as
  // core/certify.hpp, deliberately not reusing any state from the run that
  // produced the verdict.
  BddMgr mgr;
  Encoder enc(mgr, sub.net);
  mgr.set_auto_reorder(true);
  mgr.set_node_budget(opt.max_live_nodes);
  ImageComputer img(enc);
  if (img.aborted())
    return failed(std::move(res),
                  "resource limit while rebuilding the transition relation");
  const Bdd bad_set = mgr.exists(enc.signal_fn(bad_new), enc.input_vars());
  if (bad_set.is_null())
    return failed(std::move(res), "resource limit while encoding the bad states");
  const ReachResult reach =
      forward_reach(img, enc.initial_states(), mgr.bdd_false(), opt);
  if (reach.status != ReachStatus::Proved)
    return failed(std::move(res), "could not recompute the fixpoint within the budget");
  const Bdd inv = reach.reached;
  if (inv.intersects(bad_set))
    return failed(std::move(res), "recomputed invariant intersects the bad states");

  // Scope: the abstraction's registers, by original id, sorted.
  std::vector<GateId>& regs = res.certificate.registers;
  for (const GateId r : sub.net.regs()) regs.push_back(sub.to_old(r));
  std::sort(regs.begin(), regs.end());

  // Clause form: every ISOP cube of ¬Inv, negated, is one clause of Inv.
  const Bdd neg = !inv;
  if (neg.is_null())
    return failed(std::move(res), "resource limit while complementing the invariant");
  std::vector<std::vector<BddLit>> cubes;
  if (!mgr.isop_cover(neg, max_clauses, &cubes))
    return failed(std::move(res),
                  "invariant cube cover exceeds " + std::to_string(max_clauses) +
                      " clauses");
  for (const std::vector<BddLit>& cube : cubes) {
    std::vector<int32_t> clause;
    clause.reserve(cube.size());
    for (const BddLit& lit : cube) {
      if (!enc.is_state_var(lit.var))
        return failed(std::move(res),
                      "reached set depends on a non-state variable");
      const GateId old = sub.to_old(enc.reg_of_var(lit.var));
      const auto it = std::lower_bound(regs.begin(), regs.end(), old);
      const auto idx = static_cast<int32_t>(it - regs.begin()) + 1;
      // A cube literal reg=1 excludes those states, so the clause carries
      // the negated register, and vice versa.
      clause.push_back(lit.positive ? -idx : idx);
    }
    std::sort(clause.begin(), clause.end(), [](int32_t a, int32_t b) {
      return (a < 0 ? -a : a) < (b < 0 ? -b : b);
    });
    res.certificate.clauses.push_back(std::move(clause));
  }
  res.ok = true;
  return res;
}

CertificateBuild build_fails_certificate(const Netlist& m, GateId bad,
                                         const std::string& property_name,
                                         const Trace& trace) {
  CertificateBuild res;
  res.certificate.kind = cert::CertKind::FailsTrace;
  fill_design(m, bad, property_name, &res.certificate);
  if (trace.empty()) return failed(std::move(res), "empty error trace");
  res.certificate.trace = trace;
  res.ok = true;
  return res;
}

CertificateBuild build_holds_certificate_from_invariant(
    const Netlist& m, GateId bad, const std::string& property_name,
    const PdrInvariantWitness& inv) {
  CertificateBuild res;
  res.certificate.kind = cert::CertKind::HoldsInvariant;
  fill_design(m, bad, property_name, &res.certificate);
  if (!inv.present)
    return failed(std::move(res), "no PDR invariant in the result");
  if (!std::is_sorted(inv.registers.begin(), inv.registers.end()))
    return failed(std::move(res), "PDR invariant scope is not sorted");
  for (const std::vector<int32_t>& clause : inv.clauses) {
    if (clause.empty())
      return failed(std::move(res), "PDR invariant contains an empty clause");
    for (int32_t lit : clause) {
      const auto idx = static_cast<size_t>(lit < 0 ? -lit : lit);
      if (idx == 0 || idx > inv.registers.size())
        return failed(std::move(res), "PDR invariant literal out of scope");
    }
  }
  res.certificate.registers = inv.registers;
  res.certificate.clauses = inv.clauses;
  res.ok = true;
  return res;
}

CertificateArtifact certify_with_witness(const Netlist& m, GateId bad,
                                         const std::string& property_name,
                                         Verdict verdict, const Trace& error_trace,
                                         const std::vector<GateId>& final_registers,
                                         const ReachOptions& opt,
                                         const PdrInvariantWitness* pdr_invariant) {
  MetricsRegistry& reg = MetricsRegistry::global();
  CertificateArtifact art;
  if (verdict != Verdict::Holds && verdict != Verdict::Fails) {
    art.detail = "inconclusive verdicts carry no certificate";
    return art;
  }

  Stopwatch total;
  {
    Stopwatch build;
    const bool from_pdr = verdict == Verdict::Holds &&
                          pdr_invariant != nullptr && pdr_invariant->present;
    CertificateBuild b =
        from_pdr ? build_holds_certificate_from_invariant(m, bad, property_name,
                                                          *pdr_invariant)
        : verdict == Verdict::Holds
            ? build_holds_certificate(m, bad, property_name, final_registers, opt)
            : build_fails_certificate(m, bad, property_name, error_trace);
    if (from_pdr) reg.counter("cert.from_pdr").add();
    reg.timer("cert.build").record(build.seconds());
    if (!b.ok) {
      reg.counter("cert.build_failed").add();
      art.detail = b.detail;
      art.seconds = total.seconds();
      return art;
    }
    reg.counter("cert.built").add();
    reg.counter("cert.clauses").add(b.certificate.clauses.size());
    art.built = true;
    art.certificate = std::move(b.certificate);
  }

  Stopwatch check;
  const cert::CheckResult c = cert::check_certificate(m, art.certificate);
  reg.timer("cert.check").record(check.seconds());
  reg.counter(c.ok ? "cert.check_ok" : "cert.check_failed").add();
  art.checked = c.ok;
  art.obligation = c.obligation;
  art.detail = c.detail;
  art.seconds = total.seconds();
  return art;
}

}  // namespace rfn
