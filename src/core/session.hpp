#pragma once
// Batch verification sessions: many unreachability properties of one design
// answered by one stateful run (the paper's industrial workload — Table 1
// verifies whole property suites on a single gate-level netlist).
//
// A VerifySession accepts a design plus a list of PropertyRequests and
// returns per-property PropertyResults. Internally it:
//
//   1. computes each property's register cone (coi_registers) and greedily
//      clusters properties whose cones overlap above a Jaccard threshold;
//   2. answers each cluster through ONE abstraction-refinement run on the
//      design extended with a disjunction root "any member fails"
//      (append_disjunction): a Holds there proves every member; a Fails is
//      attributed to the members whose bad signal the concrete error trace
//      raises (3-valued replay) and the cluster re-runs on the rest; an
//      inconclusive run falls back to independent per-property runs;
//   3. carries a cross-property ReuseCache inside each cluster — memoized
//      subcircuit extraction keyed by (roots, register set), the final BDD
//      variable order of property k seeding property k+1's first manager,
//      and the crucial registers that mattered for property k seeding
//      property k+1's initial abstraction. The cache carries *hints* only
//      (orders, refinement seeds), never verdicts, so disabling it can only
//      change wall time, not results;
//   4. schedules cluster jobs across util/executor with fair-share wall/BDD
//      budgets per property (enforced by the per-run resource watchdog), so
//      one hard property cannot starve the batch.
//
// RfnVerifier (core/rfn.hpp) is the single-request compatibility wrapper
// over run_property(), the one-property engine that also powers every
// cluster job here.

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/abstraction.hpp"
#include "core/rfn.hpp"
#include "netlist/netlist.hpp"
#include "netlist/subcircuit.hpp"
#include "sat/bmc.hpp"

namespace rfn {

/// One unreachability obligation handed to a VerifySession: "`bad` never
/// rises on any trace of the session's design".
struct PropertyRequest {
  /// Label used in results, the batch trace, and logs. Empty: the signal's
  /// design name, or "p<index>" when the signal is unnamed.
  std::string name;
  /// Property signal of the session's design.
  GateId bad = kNullGate;
  /// Per-property overrides on top of SessionOptions::defaults; unset
  /// fields inherit. A property with any override set is never clustered
  /// (it runs solo), so the override applies to exactly this property.
  struct Overrides {
    std::optional<double> time_limit_s;
    std::optional<size_t> max_iterations;
    std::optional<size_t> traces_per_iteration;
    std::optional<double> budget_ms;
    std::optional<int64_t> budget_bdd_nodes;
    std::optional<int64_t> budget_mem_mb;

    bool any() const {
      return time_limit_s || max_iterations || traces_per_iteration ||
             budget_ms || budget_bdd_nodes || budget_mem_mb;
    }
  } overrides;
};

/// Per-property outcome of a session run.
struct PropertyResult {
  std::string name;
  GateId bad = kNullGate;
  Verdict verdict = Verdict::Unknown;
  /// Error trace on the session's design (Fails only).
  Trace trace;
  /// The full run record behind the verdict. For a property answered by a
  /// cluster's shared run this describes that shared run (its iterations,
  /// budget trip, metrics baseline); wall time of the run, not of the
  /// property alone.
  RfnResult stats;
  /// Index of the cone cluster the property was grouped into.
  size_t cluster = 0;
  /// True when the verdict came from the cluster's shared disjunction run;
  /// false for solo and fallback runs.
  bool clustered = false;
  /// Reuse-cache effects: whether this run's first BDD manager was seeded
  /// with an earlier property's variable order, and how many crucial-
  /// register hints from earlier properties seeded the initial abstraction.
  bool order_seeded = false;
  size_t seeded_registers = 0;
};

struct ReuseCache;

struct SessionOptions {
  /// Baseline RfnOptions each property run starts from.
  RfnOptions defaults;
  /// Cluster two properties when the Jaccard overlap of their register
  /// cones reaches this threshold; <= 0 disables clustering (every property
  /// runs solo), > 1 can never trigger.
  double cluster_overlap = 0.5;
  /// Upper bound on properties answered by one disjunction run.
  size_t max_cluster_size = 4;
  /// Worker threads running cluster jobs concurrently (0 = inline,
  /// deterministic cluster order). Independent of the per-run
  /// RfnOptions::portfolio_workers engine races.
  size_t workers = 0;
  /// Whole-batch wall budget, split fair-share across properties: each
  /// cluster run gets (budget / #properties) * #members, enforced through
  /// the per-run resource watchdog, so one hard property cannot starve the
  /// batch. <= 0: no batch budget (defaults.budget_ms still applies per
  /// run).
  double batch_budget_ms = -1.0;
  /// Enables the cross-property reuse cache (subcircuit memo, variable-
  /// order seeding, crucial-register hints). Hints only — never verdicts —
  /// so this is a performance switch, not a soundness one.
  bool reuse = true;
  /// Invoked once per property, as its result is finalized (completion
  /// order, which for workers == 0 is cluster order, not request order).
  /// Runs under the session's emission mutex, so the callback itself needs
  /// no locking. This is how rfn_serve streams rfn-trace-v2 property
  /// records mid-run; null keeps the historical collect-then-report shape.
  std::function<void(const PropertyResult&)> on_property;
  /// Cross-request warm state (the server's per-design cache entry): the
  /// session reads and writes this ReuseCache instead of a per-cluster one,
  /// so SavedOrder / SatBmcPool / SubcircuitMemo survive into the next
  /// session on the same design. Honored only when workers == 0 (the memo,
  /// pool, and order are single-threaded by design); runs on augmented
  /// disjunction copies still use cluster-local memo/pool — their netlists
  /// die with the cluster, and a pooled SatBmc must never outlive the
  /// netlist it references. The caller must construct every warmed session
  /// over the SAME Netlist instance (pool entries are keyed by address).
  ReuseCache* shared_cache = nullptr;
};

/// Memoized subcircuit extraction keyed by (property roots, included
/// register set). Single-threaded by design: each cluster job owns one
/// cache; caches are never shared across executor threads.
class SubcircuitMemo {
 public:
  /// Returns the memoized extraction for (roots, included) or runs
  /// extract_abstract_model and stores it. `included` must be sorted.
  std::shared_ptr<const Subcircuit> get(const Netlist& m,
                                        const std::vector<GateId>& roots,
                                        const std::vector<GateId>& included);

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

  /// Rough resident-byte estimate of the memoized subcircuits (structural:
  /// gates x a nominal per-gate footprint plus the id maps). Feeds the
  /// server's warm-state byte budget; exactness is not required there, only
  /// monotonicity in the cached volume.
  int64_t approx_bytes() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const Subcircuit>> map_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

/// Pool of long-lived incremental SAT BMC instances keyed by design
/// identity. One instance accumulates learned clauses and unrolled frames
/// across every solve it answers, so handing the same instance to every run
/// on a design is where the incremental formulation pays off. Like
/// SubcircuitMemo it is single-threaded by design: each cluster job owns one
/// pool, and within a run the portfolio's race barrier is the happens-before
/// edge between uses (same single-owner rule as a BddMgr).
class SatBmcPool {
 public:
  /// Returns the pooled instance for `m`, creating it on first use. The
  /// netlist is keyed by address and must stay alive (and only grow — see
  /// BmcEncoder) for the pool's lifetime.
  SatBmc& get(const Netlist& m);

  size_t size() const { return map_.size(); }

  /// Byte-exact heap footprint of the pooled solvers (sum of each
  /// instance's tracked clause-arena + watch-list bytes; see
  /// sat::Solver::heap_bytes). The dominant term of a warm cache entry.
  int64_t heap_bytes() const;

 private:
  std::unordered_map<const Netlist*, std::unique_ptr<SatBmc>> map_;
};

/// Cross-property reuse state carried along one cluster's runs.
struct ReuseCache {
  SubcircuitMemo subcircuits;
  /// Incremental SAT BMC instances shared across the cluster's runs.
  SatBmcPool sat_bmc;
  /// Final variable order of the previous run (original-design ids —
  /// portable across the augmented and original netlists, whose ids
  /// coincide).
  SavedOrder order;
  /// Union of crucial registers identified by refinement so far, in
  /// discovery order.
  std::vector<GateId> crucial_hints;

  /// Resident-byte estimate of the whole cache: exact solver arenas plus
  /// structural estimates for the memo, order, and hints. The server's
  /// WarmStateCache charges each design entry by this figure.
  int64_t approx_bytes() const;
};

/// Optional hooks run_property() threads through one CEGAR run; all fields
/// may be null. This is how the session injects its reuse cache without the
/// engine knowing about sessions.
struct RunHooks {
  /// Memoized Step-1 subcircuit extraction.
  SubcircuitMemo* subcircuits = nullptr;
  /// In: initial variable-order seed (may be empty). Out: the final saved
  /// order of the run. Requires opt.save_var_order.
  SavedOrder* order_io = nullptr;
  /// Out: set true when a non-empty seed order was applied to the first
  /// iteration's manager.
  bool* order_seeded = nullptr;
  /// Registers unioned into the initial abstraction (refinement seeds from
  /// earlier properties). Sound: a larger register set only tightens the
  /// over-approximation.
  const std::vector<GateId>* seed_registers = nullptr;
  /// Out: every crucial register chosen by Step 4, appended in discovery
  /// order (duplicates possible across iterations are not re-added).
  std::vector<GateId>* crucial_out = nullptr;
  /// Pooled incremental SAT BMC instances; null makes the run build its own
  /// per-run instance when the "sat" engine is enabled.
  SatBmcPool* sat_bmc = nullptr;
};

/// The single-property abstraction-refinement engine (the loop that used to
/// live in RfnVerifier::run). Verifies "`bad` never rises" on `m` under
/// `opt`, with optional session hooks.
RfnResult run_property(const Netlist& m, GateId bad, const RfnOptions& opt,
                       const RunHooks& hooks = {});

/// Greedy cone clustering (exposed for tests): walks properties in index
/// order, joining property i to the first cluster whose representative
/// (first member) cone has Jaccard overlap >= threshold, subject to
/// max_cluster_size; otherwise i starts a new cluster. `cones[i]` must be
/// sorted. `solo[i]` (optional) forces property i into its own cluster.
std::vector<std::vector<size_t>> cluster_by_cone_overlap(
    const std::vector<std::vector<GateId>>& cones, double threshold,
    size_t max_cluster_size, const std::vector<bool>& solo = {});

class VerifySession {
 public:
  /// `m` must outlive the session.
  explicit VerifySession(const Netlist& m, SessionOptions opt = {});

  /// Verifies the batch and returns one result per request, in request
  /// order. Validates SessionOptions::defaults up front (RfnOptions::
  /// validate) and aborts with the collected messages on invalid options.
  std::vector<PropertyResult> run(const std::vector<PropertyRequest>& props);

  /// Clusters computed by the last run(): request indices per cluster.
  const std::vector<std::vector<size_t>>& clusters() const { return clusters_; }

 private:
  void run_cluster(const std::vector<PropertyRequest>& props,
                   const std::vector<std::vector<GateId>>& cones,
                   const std::vector<size_t>& members, size_t cluster_id,
                   double share_ms, std::vector<PropertyResult>& results) const;

  /// Fires SessionOptions::on_property under emit_mu_ (no-op when unset).
  void notify(const PropertyResult& r) const;

  const Netlist* m_;
  SessionOptions opt_;
  std::vector<std::vector<size_t>> clusters_;
  /// Serializes SessionOptions::on_property across cluster jobs.
  mutable std::mutex emit_mu_;
};

}  // namespace rfn
