#pragma once
// JSON event trace for the CEGAR loop.
//
// The sink renders one self-contained JSON object per CEGAR iteration plus
// one final summary object, written as JSON Lines (one object per line) so
// a consumer can stream a long run without a closing bracket ever arriving.
// rfn_cli exposes it as `--trace-json FILE`; the benches emit the same
// iteration schema inside their run records, which is what lets the CI
// regression gate read both with one parser.
//
// Schema (trace version "rfn-trace-v1"):
//   {"type":"iteration","iter":k,
//    "abstraction":{"regs":..,"inputs":..,"gates":..},
//    "reach":{"status":"proved|bad-reachable|resource-out","steps":..,
//             "approx_used":..,"approx_proved":..},
//    "bdd":{"peak_nodes":..,"cache_lookups":..,"cache_hits":..,
//           "cache_hit_rate":..,"reorderings":..},
//    "hybrid":{"nocut_cubes":..,"mincut_cubes":..,"atpg_calls":..,
//              "atpg_rejects":..},
//    "trace_cycles":..,
//    "concretize":{"status":"sat|unsat|abort"},
//    "refine":{"conflict_candidates":..,"fallback_candidates":..,
//              "added_until_unsat":..,"removed_by_greedy":..,
//              "final_count":..,"atpg_calls":..,"trace_invalidated":..},
//    "engines":{"abstract":{"winner":"..","seconds":..,"cpu_seconds":..},
//               "concretize":{"winner":"..","seconds":..,"cpu_seconds":..}},
//    "seconds":..}
//   {"type":"summary","trace_version":"rfn-trace-v1",
//    "verdict":"T|F|?|resource-out",
//    "iterations":..,"final_abstract_regs":..,"seconds":..,"cpu_seconds":..,
//    "note":"..",
//    ["budget_trip":{"reason":"wall-budget|bdd-node-budget|mem-budget",
//                    "at_seconds":..,"bdd_nodes":..,"rss_bytes":..},]
//                                                       // watchdog trips only
//    "metrics_epoch":..,
//    "metrics":{<MetricsRegistry::to_json(run baseline)>}}
//
// "metrics" is serialized relative to the snapshot taken when the run
// started (RfnResult::metrics_baseline): counters and timer count/seconds
// cover only this run, so two runs in one process do not conflate.
//
// Batch schema (trace version "rfn-trace-v2", written by the session path):
//   {"type":"property","name":"..","bad":..,
//    "verdict":"T|F|?|resource-out",
//    "cluster":..,"clustered":..,"order_seeded":..,"seeded_registers":..,
//    "iterations":..,"final_abstract_regs":..,"error_trace_cycles":..,
//    "seconds":..,"cpu_ms":..,"note":"..",
//    ["budget_trip":{...}]}                                // one per property
//   {"type":"batch-summary","trace_version":"rfn-trace-v2",
//    "properties":..,"clusters":..,
//    "verdicts":{"T":..,"F":..,"?":..,"resource-out":..},
//    "seconds":..,
//    "metrics":{<MetricsRegistry::to_json(batch baseline)>}}
//
// v2 deliberately keeps per-iteration detail out of the property records: a
// clustered property's verdict comes from a shared run whose iterations are
// not per-property quantities. A property's "seconds" is the wall time of
// the run that answered it (shared for clustered members).

#include <ostream>
#include <vector>

#include "core/rfn.hpp"
#include "core/session.hpp"
#include "util/json.hpp"

namespace rfn {

/// One CEGAR iteration as a JSON object (`"type":"iteration"`).
json::Value iteration_json(size_t index, const RfnIteration& it);

/// The run summary object (`"type":"summary"`), embedding the global
/// metrics registry dump — relative to the run's baseline — under
/// "metrics".
json::Value summary_json(const RfnResult& res);

/// Writes the whole run as JSON Lines: every iteration, then the summary.
void write_trace_json(std::ostream& os, const RfnResult& res);

/// One session property outcome as a JSON object (`"type":"property"`).
json::Value property_json(const PropertyResult& r);

/// One certification outcome per conclusive property, written by --certify
/// runs between the property records and the batch summary:
///   {"type":"certificate","property":"..","kind":"holds-invariant|fails-trace",
///    "ok":..,"clauses":..,"trace_cycles":..,"obligation":"..","seconds":..}
/// `obligation` is empty when ok; otherwise the failing checker obligation
/// (cert/check.hpp) or "extraction" when no witness could be built.
struct CertificateRecord {
  std::string property;
  std::string kind;
  bool ok = false;
  size_t clauses = 0;
  size_t trace_cycles = 0;
  std::string obligation;
  double seconds = 0.0;
};

json::Value certificate_json(const CertificateRecord& r);

/// The batch-summary record (`"type":"batch-summary"`): verdict counts over
/// `results`, certificate ok/failed counts when `certificates` is non-null,
/// and the metrics dump against `baseline`. This is the record
/// write_batch_trace_json ends with; exposed so a streaming emitter
/// (api::run_verify, rfn_serve) produces the identical bytes.
json::Value batch_summary_json(const std::vector<PropertyResult>& results,
                               size_t num_clusters, double seconds,
                               const MetricsSnapshot* baseline = nullptr,
                               const std::vector<CertificateRecord>* certificates = nullptr);

/// Writes a session batch as JSON Lines (rfn-trace-v2): one property record
/// per result, then one certificate record per entry of `certificates`
/// (when non-null; --certify batches pass the per-property certification
/// outcomes), then the batch summary — which gains a "certificates"
/// {"ok":..,"failed":..} object when records were written. `seconds` is the
/// batch wall time; `baseline` (optional) scopes the embedded metrics dump
/// to the batch.
void write_batch_trace_json(std::ostream& os,
                            const std::vector<PropertyResult>& results,
                            size_t num_clusters, double seconds,
                            const MetricsSnapshot* baseline = nullptr,
                            const std::vector<CertificateRecord>* certificates = nullptr);

}  // namespace rfn
