#include "core/trace_json.hpp"

#include "util/metrics.hpp"

namespace rfn {

json::Value iteration_json(size_t index, const RfnIteration& it) {
  using json::Value;
  Value o = Value::object();
  o.set("type", "iteration");
  o.set("iter", index);

  Value abstraction = Value::object();
  abstraction.set("regs", it.abstract_regs);
  abstraction.set("inputs", it.abstract_inputs);
  abstraction.set("gates", it.abstract_gates);
  o.set("abstraction", std::move(abstraction));

  Value reach = Value::object();
  reach.set("status", to_string(it.reach_status));
  reach.set("steps", it.reach_steps);
  reach.set("approx_used", it.approx_used);
  reach.set("approx_proved", it.approx_proved);
  o.set("reach", std::move(reach));

  Value bdd = Value::object();
  bdd.set("peak_nodes", it.bdd_peak_nodes);
  bdd.set("cache_lookups", it.bdd_cache_lookups);
  bdd.set("cache_hits", it.bdd_cache_hits);
  bdd.set("cache_hit_rate",
          it.bdd_cache_lookups == 0
              ? 0.0
              : static_cast<double>(it.bdd_cache_hits) /
                    static_cast<double>(it.bdd_cache_lookups));
  bdd.set("reorderings", it.bdd_reorderings);
  o.set("bdd", std::move(bdd));

  Value hybrid = Value::object();
  hybrid.set("nocut_cubes", it.hybrid.nocut_cubes);
  hybrid.set("mincut_cubes", it.hybrid.mincut_cubes);
  hybrid.set("atpg_calls", it.hybrid.atpg_calls);
  hybrid.set("atpg_rejects", it.hybrid.atpg_rejects);
  o.set("hybrid", std::move(hybrid));

  o.set("trace_cycles", it.trace_cycles);

  Value conc = Value::object();
  conc.set("status", to_string(it.concretize_status));
  o.set("concretize", std::move(conc));

  // SAT BMC activity (solver-stat deltas over the shared incremental
  // instance); all-zero when the engine is disabled.
  Value sat = Value::object();
  sat.set("conflicts", it.sat_conflicts);
  sat.set("propagations", it.sat_propagations);
  sat.set("depth", it.sat_depth);
  sat.set("core_size", it.sat_core_size);
  o.set("sat", std::move(sat));

  // IC3/PDR activity (abstract + concrete runs combined); all-zero when the
  // engine is disabled.
  Value pdr = Value::object();
  pdr.set("obligations", it.pdr_obligations);
  pdr.set("clauses", it.pdr_clauses);
  pdr.set("frames", it.pdr_frames);
  o.set("pdr", std::move(pdr));

  Value refine = Value::object();
  refine.set("conflict_candidates", it.refine.conflict_candidates);
  refine.set("fallback_candidates", it.refine.fallback_candidates);
  refine.set("hint_candidates", it.refine.hint_candidates);
  refine.set("added_until_unsat", it.refine.added_until_unsat);
  refine.set("removed_by_greedy", it.refine.removed_by_greedy);
  refine.set("final_count", it.refine.final_count);
  refine.set("atpg_calls", it.refine.atpg_calls);
  refine.set("trace_invalidated", it.refine.trace_invalidated);
  refine.set("shrunk_registers", it.shrunk_registers);
  o.set("refine", std::move(refine));

  // Portfolio outcome per race: the winning engine ("" = inconclusive) and
  // the race's wall time.
  Value engines = Value::object();
  Value abs_race = Value::object();
  abs_race.set("winner", it.abstract_engine);
  abs_race.set("seconds", it.abstract_race_seconds);
  abs_race.set("cpu_seconds", it.abstract_race_cpu_seconds);
  engines.set("abstract", std::move(abs_race));
  Value conc_race = Value::object();
  conc_race.set("winner", it.concretize_engine);
  conc_race.set("seconds", it.concretize_race_seconds);
  conc_race.set("cpu_seconds", it.concretize_race_cpu_seconds);
  engines.set("concretize", std::move(conc_race));
  o.set("engines", std::move(engines));

  o.set("seconds", it.seconds);
  return o;
}

json::Value summary_json(const RfnResult& res) {
  using json::Value;
  Value o = Value::object();
  o.set("type", "summary");
  o.set("trace_version", "rfn-trace-v1");
  o.set("verdict", to_string(res.verdict));
  o.set("iterations", res.iterations);
  o.set("final_abstract_regs", res.final_abstract_regs);
  o.set("error_trace_cycles", res.error_trace.cycles());
  o.set("seconds", res.seconds);
  o.set("cpu_seconds", res.cpu_seconds);
  o.set("note", res.note);
  if (res.budget_trip.tripped) {
    Value trip = Value::object();
    trip.set("reason", res.budget_trip.reason);
    trip.set("at_seconds", res.budget_trip.at_seconds);
    trip.set("bdd_nodes", res.budget_trip.bdd_nodes);
    trip.set("rss_bytes", res.budget_trip.rss_bytes);
    o.set("budget_trip", std::move(trip));
  }
  // The registry is process-global; serializing against the run's baseline
  // keeps the summary scoped to this run even with several runs per process.
  o.set("metrics_epoch", res.metrics_epoch);
  o.set("metrics",
        MetricsRegistry::global().to_json(&res.metrics_baseline));
  return o;
}

void write_trace_json(std::ostream& os, const RfnResult& res) {
  for (size_t i = 0; i < res.per_iteration.size(); ++i)
    os << iteration_json(i, res.per_iteration[i]).dump() << "\n";
  os << summary_json(res).dump() << "\n";
}

json::Value property_json(const PropertyResult& r) {
  using json::Value;
  Value o = Value::object();
  o.set("type", "property");
  o.set("name", r.name);
  o.set("bad", static_cast<size_t>(r.bad));
  o.set("verdict", to_string(r.verdict));
  o.set("cluster", r.cluster);
  o.set("clustered", r.clustered);
  o.set("order_seeded", r.order_seeded);
  o.set("seeded_registers", r.seeded_registers);
  o.set("iterations", r.stats.iterations);
  o.set("final_abstract_regs", r.stats.final_abstract_regs);
  o.set("error_trace_cycles", r.trace.cycles());
  o.set("seconds", r.stats.seconds);
  o.set("cpu_ms", r.stats.cpu_seconds * 1e3);
  o.set("note", r.stats.note);
  if (r.stats.budget_trip.tripped) {
    Value trip = Value::object();
    trip.set("reason", r.stats.budget_trip.reason);
    trip.set("at_seconds", r.stats.budget_trip.at_seconds);
    trip.set("bdd_nodes", r.stats.budget_trip.bdd_nodes);
    trip.set("rss_bytes", r.stats.budget_trip.rss_bytes);
    o.set("budget_trip", std::move(trip));
  }
  return o;
}

json::Value certificate_json(const CertificateRecord& r) {
  using json::Value;
  Value o = Value::object();
  o.set("type", "certificate");
  o.set("property", r.property);
  o.set("kind", r.kind);
  o.set("ok", r.ok);
  o.set("clauses", r.clauses);
  o.set("trace_cycles", r.trace_cycles);
  o.set("obligation", r.obligation);
  o.set("seconds", r.seconds);
  return o;
}

json::Value batch_summary_json(const std::vector<PropertyResult>& results,
                               size_t num_clusters, double seconds,
                               const MetricsSnapshot* baseline,
                               const std::vector<CertificateRecord>* certificates) {
  using json::Value;
  size_t holds = 0, fails = 0, unknown = 0, resource_out = 0;
  for (const PropertyResult& r : results) {
    switch (r.verdict) {
      case Verdict::Holds: ++holds; break;
      case Verdict::Fails: ++fails; break;
      case Verdict::Unknown: ++unknown; break;
      case Verdict::ResourceOut: ++resource_out; break;
    }
  }
  size_t cert_ok = 0, cert_failed = 0;
  if (certificates != nullptr)
    for (const CertificateRecord& r : *certificates) ++(r.ok ? cert_ok : cert_failed);
  Value o = Value::object();
  o.set("type", "batch-summary");
  o.set("trace_version", "rfn-trace-v2");
  o.set("properties", results.size());
  o.set("clusters", num_clusters);
  Value verdicts = Value::object();
  verdicts.set(to_string(Verdict::Holds), holds);
  verdicts.set(to_string(Verdict::Fails), fails);
  verdicts.set(to_string(Verdict::Unknown), unknown);
  verdicts.set(to_string(Verdict::ResourceOut), resource_out);
  o.set("verdicts", std::move(verdicts));
  if (certificates != nullptr) {
    Value certs = Value::object();
    certs.set("ok", cert_ok);
    certs.set("failed", cert_failed);
    o.set("certificates", std::move(certs));
  }
  o.set("seconds", seconds);
  o.set("metrics", MetricsRegistry::global().to_json(baseline));
  return o;
}

void write_batch_trace_json(std::ostream& os,
                            const std::vector<PropertyResult>& results,
                            size_t num_clusters, double seconds,
                            const MetricsSnapshot* baseline,
                            const std::vector<CertificateRecord>* certificates) {
  for (const PropertyResult& r : results)
    os << property_json(r).dump() << "\n";
  if (certificates != nullptr)
    for (const CertificateRecord& r : *certificates)
      os << certificate_json(r).dump() << "\n";
  os << batch_summary_json(results, num_clusters, seconds, baseline,
                           certificates)
            .dump()
     << "\n";
}

}  // namespace rfn
