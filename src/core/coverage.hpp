#pragma once
// Unreachable-coverage-state analysis (paper Section 3, second experiment).
//
// Given a set of coverage signals (registers encoding control FSMs), find as
// many coverage states (valuations of those signals) as possible that are
// unreachable on the original design. RFN mode: run the abstract-model
// fixpoint, classify coverage states outside the projected fixpoint as
// unreachable (sound: the abstraction over-approximates), concretize traces
// to candidate states to mark them reachable, and refine on spurious traces;
// the still-unclassified states become the next iteration's targets.

#include <vector>

#include "atpg/comb_atpg.hpp"
#include "core/refine.hpp"
#include "mc/reach.hpp"
#include "netlist/netlist.hpp"

namespace rfn {

struct CoverageOptions {
  /// Wall-clock budget (paper: 1,800 CPU seconds per experiment).
  double time_limit_s = 1800.0;
  size_t max_iterations = 1000;
  ReachOptions reach;
  AtpgOptions concretize_atpg;
  RefineOptions refine;
  /// How many candidate traces to concretize per iteration.
  size_t traces_per_iteration = 4;
  bool dynamic_reordering = true;
};

struct CoverageResult {
  size_t total_states = 0;
  size_t unreachable = 0;  // proved unreachable on the original design
  size_t reachable = 0;    // witnessed by a concrete trace
  size_t unknown = 0;      // unclassified when the loop stopped
  size_t iterations = 0;
  size_t final_abstract_regs = 0;
  double seconds = 0.0;
  /// Per-state classification, indexed by the coverage-state encoding
  /// (bit i = value of coverage_regs[i]).
  std::vector<uint8_t> state_class;  // 0 unknown, 1 unreachable, 2 reachable
};

/// RFN-based analysis. `coverage_regs` must be registers of `m`.
CoverageResult rfn_coverage_analysis(const Netlist& m,
                                     const std::vector<GateId>& coverage_regs,
                                     const CoverageOptions& opt = {});

}  // namespace rfn
